//! # mlql — multilingual query operators in a relational engine
//!
//! Umbrella crate for the reproduction of *On Pushing Multilingual Query
//! Operators into Relational Engines* (Kumaran, Chowdary & Haritsa,
//! ICDE 2006).  Re-exports every component crate; see the README for the
//! architecture overview and `examples/` for runnable entry points.
//!
//! ```
//! use mlql::kernel::Database;
//! use mlql::mural::install;
//!
//! let mut db = Database::new_in_memory();
//! let _mural = install(&mut db).unwrap();
//! db.execute("CREATE TABLE book (author UNITEXT)").unwrap();
//! db.execute("INSERT INTO book VALUES (unitext('Nehru', 'English'))").unwrap();
//! let n = db.query("SELECT count(*) FROM book WHERE author LEXEQUAL unitext('Neru','English')").unwrap();
//! assert_eq!(n[0][0].as_int(), Some(1));
//! ```

pub use mlql_datagen as datagen;
pub use mlql_kernel as kernel;
pub use mlql_mtree as mtree;
pub use mlql_mural as mural;
pub use mlql_phonetics as phonetics;
pub use mlql_taxonomy as taxonomy;
pub use mlql_unitext as unitext;
