//! Interactive SQL shell over an in-memory engine with the Mural
//! extension installed — poke at LexEQUAL/SemEQUAL by hand.
//!
//! ```text
//! cargo run --release --example sql_shell
//! mlql> CREATE TABLE book (author UNITEXT);
//! mlql> INSERT INTO book VALUES (unitext('நேரு', 'Tamil'));
//! mlql> SELECT text_of(author) FROM book WHERE author LEXEQUAL unitext('Nehru','English');
//! ```
//!
//! Commands: SQL statements (one per line), `\d` to list tables,
//! `\timing` to toggle timings, `\q` to quit.  A small demo catalog is
//! preloaded.

use mlql::kernel::Database;
use mlql::mural::{install, unitext_from_bytes};
use std::io::{BufRead, Write};

fn render(d: &mlql::kernel::Datum) -> String {
    match d.as_ext() {
        Some((_, bytes)) => unitext_from_bytes(bytes)
            .map(|v| format!("⟨{}⟩", v.text()))
            .unwrap_or_else(|_| d.to_string()),
        None => d.to_string(),
    }
}

fn main() {
    let mut db = Database::new_in_memory();
    let _mural = install(&mut db).expect("install mural");
    // Demo data so SELECTs work immediately.
    db.execute("CREATE TABLE book (author UNITEXT, title TEXT, category UNITEXT)")
        .unwrap();
    for (a, al, t, c, cl) in [
        (
            "Nehru",
            "English",
            "Glimpses of World History",
            "History",
            "English",
        ),
        ("नेहरू", "Hindi", "Hindustan ki Kahani", "History", "English"),
        ("நேரு", "Tamil", "Kadithangal", "சரித்திரம்", "Tamil"),
        (
            "Gandhi",
            "English",
            "My Experiments with Truth",
            "Autobiography",
            "English",
        ),
    ] {
        db.execute(&format!(
            "INSERT INTO book VALUES (unitext('{a}','{al}'), '{t}', unitext('{c}','{cl}'))"
        ))
        .unwrap();
    }
    db.execute("ANALYZE book").unwrap();

    println!("mlql shell — demo table `book` loaded; \\d lists tables, \\q quits.");
    let stdin = std::io::stdin();
    let mut timing = false;
    loop {
        print!("mlql> ");
        std::io::stdout().flush().unwrap();
        let mut line = String::new();
        match stdin.lock().read_line(&mut line) {
            Ok(0) => break, // EOF
            Ok(_) => {}
            Err(e) => {
                eprintln!("read error: {e}");
                break;
            }
        }
        let line = line.trim();
        match line {
            "" => continue,
            "\\q" => break,
            "\\timing" => {
                timing = !timing;
                println!("timing {}", if timing { "on" } else { "off" });
                continue;
            }
            "\\d" => {
                for t in db.catalog().tables() {
                    println!("{} {}", t.name, t.schema);
                }
                continue;
            }
            _ => {}
        }
        let start = std::time::Instant::now();
        match db.execute(line) {
            Ok(result) => {
                if !result.schema.is_empty() {
                    let header: Vec<&str> = result
                        .schema
                        .columns()
                        .iter()
                        .map(|c| c.name.as_str())
                        .collect();
                    println!("{}", header.join(" | "));
                }
                for row in &result.rows {
                    let cells: Vec<String> = row.iter().map(render).collect();
                    println!("{}", cells.join(" | "));
                }
                if result.affected > 0 {
                    println!("({} rows affected)", result.affected);
                } else if !result.rows.is_empty() {
                    println!("({} rows)", result.rows.len());
                }
                if timing {
                    println!("time: {:?}", start.elapsed());
                }
            }
            Err(e) => println!("ERROR: {e}"),
        }
    }
}
