//! Multilingual name search: probe a names corpus phonemically from the
//! command line.
//!
//! Builds the generated multilingual names table (Latin, Devanagari, Tamil
//! and Kannada scripts), then searches it for every name given on the
//! command line — showing the matches in all scripts, the threshold
//! behaviour, and the engine's plan.
//!
//! Run: `cargo run --release --example name_search -- Nehru Miller`
//! (defaults to a demo probe set; env `ROWS` overrides the corpus size).

use mlql::kernel::Database;
use mlql::mural::{install, unitext_from_bytes};
use std::time::Instant;

fn main() {
    let rows: usize = std::env::var("ROWS")
        .ok()
        .and_then(|r| r.parse().ok())
        .unwrap_or(20_000);
    let probes: Vec<String> = {
        let args: Vec<String> = std::env::args().skip(1).collect();
        if args.is_empty() {
            vec!["Nehru".into(), "Krishnan".into(), "Meyer".into()]
        } else {
            args
        }
    };

    let mut db = Database::new_in_memory();
    let mural = install(&mut db).expect("install mural");
    println!("loading {rows} multilingual names ...");
    db.execute("CREATE TABLE names (name UNITEXT)").unwrap();
    let data = mlql::datagen::names_dataset(
        &mural.langs,
        &mlql::datagen::NamesConfig {
            records: rows,
            noise: 0.25,
            seed: 99,
            ..Default::default()
        },
    );
    for rec in data {
        let d = mlql::mural::types::unitext_datum(mural.unitext_type, &rec.name);
        db.insert_row("names", vec![d]).unwrap();
    }
    db.execute("ANALYZE names").unwrap();
    db.execute("CREATE INDEX names_mt ON names (name) USING mtree")
        .unwrap();

    for probe in &probes {
        println!("\n=== {probe} ===");
        for k in [1i64, 2] {
            db.execute(&format!("SET lexequal.threshold = {k}"))
                .unwrap();
            let sql = format!(
                "SELECT name, lang_of(name) FROM names WHERE name LEXEQUAL unitext('{probe}','English')"
            );
            let t = Instant::now();
            let result = db.execute(&sql).unwrap();
            let dt = t.elapsed();
            println!("threshold {k}: {} matches in {dt:?}", result.rows.len());
            // Show a sample, one per language.
            let mut seen = std::collections::HashSet::new();
            for row in result.rows.iter() {
                let lang = row[1].as_text().unwrap_or("?").to_string();
                if seen.insert(lang.clone()) && seen.len() <= 4 {
                    let text = row[0]
                        .as_ext()
                        .and_then(|(_, b)| unitext_from_bytes(b).ok())
                        .map(|v| v.text().to_string())
                        .unwrap_or_default();
                    println!("    {text}  [{lang}]");
                }
            }
        }
    }

    // "Best match": k-nearest phonemic neighbours through the M-Tree.
    println!(
        "\n=== nearest neighbours of '{}' (kNN through the M-Tree) ===",
        probes[0]
    );
    let probe = mural.unitext(&probes[0], "English").unwrap();
    for row in mural.nearest(&db, "names", "names_mt", &probe, 5).unwrap() {
        if let Some((_, bytes)) = row[0].as_ext() {
            if let Ok(v) = unitext_from_bytes(bytes) {
                println!("    {}", v.text());
            }
        }
    }

    // Show what the optimizer does for a selective probe.
    db.execute("SET lexequal.threshold = 1").unwrap();
    let explain = db
        .execute(&format!(
            "EXPLAIN SELECT count(*) FROM names WHERE name LEXEQUAL unitext('{}','English')",
            probes[0]
        ))
        .unwrap();
    println!("\nplan at threshold 1:\n{}", explain.explain.unwrap());
}
