//! Quickstart: the paper's two running examples end to end.
//!
//! Builds the Books.com catalog of Figure 1, then runs the Figure 2
//! LexEQUAL query (phonemic name matching across scripts) and the Figure 4
//! SemEQUAL query (concept matching across languages), showing results and
//! `EXPLAIN` plans.
//!
//! Run: `cargo run --release --example quickstart`

use mlql::kernel::Database;
use mlql::mural::install;

fn show(db: &mut Database, sql: &str) {
    println!("mlql> {sql}");
    match db.execute(sql) {
        Ok(result) => {
            if let Some(plan) = &result.explain {
                if sql.trim_start().to_lowercase().starts_with("explain") {
                    println!("{plan}");
                    return;
                }
            }
            let names: Vec<&str> = result
                .schema
                .columns()
                .iter()
                .map(|c| c.name.as_str())
                .collect();
            if !names.is_empty() {
                println!("  {}", names.join(" | "));
            }
            for row in &result.rows {
                let cells: Vec<String> = row
                    .iter()
                    .map(|d| match d.as_ext() {
                        Some((_, bytes)) => mlql::mural::unitext_from_bytes(bytes)
                            .map(|v| v.text().to_string())
                            .unwrap_or_else(|_| d.to_string()),
                        None => d.to_string(),
                    })
                    .collect();
                println!("  {}", cells.join(" | "));
            }
            if result.affected > 0 {
                println!("  ({} rows affected)", result.affected);
            }
            println!();
        }
        Err(e) => println!("  ERROR: {e}\n"),
    }
}

fn main() {
    let mut db = Database::new_in_memory();
    let _mural = install(&mut db).expect("install the Mural extension");

    println!("=== The Books.com catalog (paper, Figure 1) ===\n");
    show(&mut db, "CREATE TABLE book (author UNITEXT, title UNITEXT, category UNITEXT, language TEXT, price FLOAT)");
    for (author, title, cat, cat_lang, lang, price) in [
        (
            "Nehru",
            "Glimpses of World History",
            "History",
            "English",
            "English",
            15.95,
        ),
        (
            "Nehru",
            "Letters from a Father",
            "Autobiography",
            "English",
            "English",
            12.50,
        ),
        (
            "नेहरू",
            "हिंदुस्तान की कहानी",
            "History",
            "English",
            "Hindi",
            9.75,
        ),
        ("நேரு", "கடிதங்கள்", "சரித்திரம்", "Tamil", "Tamil", 8.20),
        (
            "Gandhi",
            "The Story of My Experiments with Truth",
            "Autobiography",
            "English",
            "English",
            14.00,
        ),
        (
            "Michelet",
            "Histoire de France",
            "Histoire",
            "French",
            "French",
            22.40,
        ),
        (
            "Tolkien",
            "The Fellowship of the Ring",
            "Novel",
            "English",
            "English",
            18.00,
        ),
    ] {
        show(
            &mut db,
            &format!(
                "INSERT INTO book VALUES (unitext('{author}', '{lang}'), unitext('{title}', '{lang}'), unitext('{cat}', '{cat_lang}'), '{lang}', {price})"
            ),
        );
    }
    show(&mut db, "ANALYZE book");

    println!("=== Figure 2: multilingual name query (LexEQUAL) ===\n");
    show(&mut db, "SET lexequal.threshold = 2");
    show(
        &mut db,
        "SELECT author, title, language FROM book WHERE author LEXEQUAL unitext('Nehru','English') IN (English, Hindi, Tamil)",
    );
    show(
        &mut db,
        "EXPLAIN SELECT author, title, language FROM book WHERE author LEXEQUAL unitext('Nehru','English') IN (English, Hindi, Tamil)",
    );

    println!("=== Figure 4: multilingual concept query (SemEQUAL) ===\n");
    show(
        &mut db,
        "SELECT author, title, category FROM book WHERE category SEMEQUAL unitext('History','English') IN (English, French, Tamil)",
    );

    println!("=== UniText behaves like Text for ordinary operators (§3.2.1) ===\n");
    show(
        &mut db,
        "SELECT title FROM book WHERE price < 10.0 ORDER BY author",
    );
    show(
        &mut db,
        "SELECT language, count(*) FROM book GROUP BY language ORDER BY language",
    );
}
