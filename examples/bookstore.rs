//! Bookstore: a generated multilingual catalog at scale, exercising the
//! optimizer the way the paper's §5.2.1 example does.
//!
//! Loads a datagen Books.com catalog plus Author/Publisher side tables,
//! then runs: a phonemic author search with and without the M-Tree index,
//! a category SemEQUAL rollup, and the Example 5 three-way join — printing
//! `EXPLAIN` output so the plan choices are visible.
//!
//! Run: `cargo run --release --example bookstore [rows]`

use mlql::datagen::{books_catalog, names_dataset, NamesConfig};
use mlql::kernel::{Database, Datum};
use mlql::mural::install;
use mlql::mural::types::unitext_datum;
use std::time::Instant;

fn main() {
    let rows: usize = std::env::args()
        .nth(1)
        .and_then(|a| a.parse().ok())
        .unwrap_or(5000);
    let mut db = Database::new_in_memory();
    let mural = install(&mut db).expect("install mural");

    println!("loading {rows}-row catalog ...");
    db.execute("CREATE TABLE book (id INT, author UNITEXT, title UNITEXT, category UNITEXT, language TEXT, price FLOAT)")
        .unwrap();
    for r in books_catalog(&mural.langs, rows, 42) {
        db.insert_row(
            "book",
            vec![
                Datum::Int(r.id),
                unitext_datum(mural.unitext_type, &r.author),
                unitext_datum(mural.unitext_type, &r.title),
                unitext_datum(mural.unitext_type, &r.category),
                Datum::text(&r.language),
                Datum::Float(r.price),
            ],
        )
        .unwrap();
    }
    db.execute("CREATE TABLE publisher (pubid INT, pname UNITEXT)")
        .unwrap();
    for (i, rec) in names_dataset(
        &mural.langs,
        &NamesConfig {
            records: rows / 20 + 10,
            noise: 0.2,
            seed: 7,
            ..Default::default()
        },
    )
    .iter()
    .enumerate()
    {
        db.insert_row(
            "publisher",
            vec![
                Datum::Int(i as i64),
                unitext_datum(mural.unitext_type, &rec.name),
            ],
        )
        .unwrap();
    }
    db.execute("ANALYZE book").unwrap();
    db.execute("ANALYZE publisher").unwrap();
    db.execute("SET lexequal.threshold = 2").unwrap();

    // --- Phonemic author search, seq scan vs M-Tree. ---
    let search = "SELECT count(*) FROM book WHERE author LEXEQUAL unitext('Nehru','English')";
    let t = Instant::now();
    let n = db.query(search).unwrap();
    let seq = t.elapsed();
    println!(
        "\nauthor ~ 'Nehru' (seq scan): {} matches in {seq:?}",
        n[0][0]
    );

    db.execute("CREATE INDEX book_author_mt ON book (author) USING mtree")
        .unwrap();
    db.execute("SET enable_seqscan = 0").unwrap();
    let t = Instant::now();
    let n2 = db.query(search).unwrap();
    let idx = t.elapsed();
    db.execute("SET enable_seqscan = 1").unwrap();
    println!(
        "author ~ 'Nehru' (M-Tree):   {} matches in {idx:?}",
        n2[0][0]
    );
    assert!(n[0][0].eq_sql(&n2[0][0]), "index and scan must agree");

    // --- Category rollup through SemEQUAL. ---
    let rollup = "SELECT count(*) FROM book WHERE category SEMEQUAL unitext('History','English')";
    let t = Instant::now();
    let hist = db.query(rollup).unwrap();
    println!(
        "\nbooks under the History concept (all languages): {} in {:?}",
        hist[0][0],
        t.elapsed()
    );

    // --- Example 5: books whose author sounds like a publisher. ---
    db.execute("SET lexequal.threshold = 3").unwrap();
    let ex5 = "SELECT count(*) FROM book b, publisher p WHERE b.author LEXEQUAL p.pname";
    println!("\nExample-5-style join plan:");
    let plan = db.plan_select(ex5).unwrap();
    println!("{}", plan.explain());
    let t = Instant::now();
    let join = db.query(ex5).unwrap();
    println!(
        "matching (book, publisher) pairs: {} in {:?}",
        join[0][0],
        t.elapsed()
    );
}
