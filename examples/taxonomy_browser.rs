//! Taxonomy browser: SemEQUAL over a WordNet-scale hierarchy.
//!
//! Generates a multilingual linked taxonomy (the paper's §5.1 replication
//! methodology), installs it as Ω's pinned hierarchy, loads a documents
//! table categorized by random concepts, and answers subsumption queries —
//! showing closure sizes, memoization behaviour, and query times.
//!
//! Run: `cargo run --release --example taxonomy_browser [synsets]`

use mlql::kernel::{Database, Datum};
use mlql::mural::install_with_taxonomy;
use mlql::mural::types::unitext_datum;
use mlql::taxonomy::{generate, synsets_near_closure_sizes, GeneratorConfig};
use mlql::unitext::{LanguageRegistry, UniText};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::time::Instant;

fn main() {
    let synsets: usize = std::env::args()
        .nth(1)
        .and_then(|a| a.parse().ok())
        .unwrap_or(30_000);
    let langs = LanguageRegistry::new();
    let en = langs.id_of("English");

    println!("generating a {synsets}-synset hierarchy and linking a French copy ...");
    let mut taxonomy = generate(
        en,
        &GeneratorConfig {
            synsets,
            ..GeneratorConfig::default()
        },
    );
    let fr = langs.id_of("French");
    taxonomy.replicate_linked(&[fr], |w, _| format!("{w}_fr"));
    let stats = taxonomy.stats();
    println!(
        "taxonomy: {} synsets, {} word forms, {} relationships, height {}, avg fan-out {:.2}",
        stats.synsets, stats.word_forms, stats.relationships, stats.height, stats.avg_fanout
    );

    // Pick concepts with interesting closure sizes before installing.
    let picks = synsets_near_closure_sizes(&taxonomy, &[100, 1000, 5000]);
    let concept_words: Vec<(String, usize)> = picks
        .iter()
        .map(|&(_, synset, approx)| (taxonomy.words(synset)[0].clone(), approx))
        .collect();

    let mut db = Database::new_in_memory();
    let mural = install_with_taxonomy(&mut db, taxonomy).expect("install mural");

    // A documents table categorized by random synset word forms.
    println!("\nloading 20000 documents with random categories ...");
    db.execute("CREATE TABLE docs (id INT, category UNITEXT)")
        .unwrap();
    let mut rng = StdRng::seed_from_u64(4);
    let taxonomy = mural.sem.taxonomy();
    for i in 0..20_000 {
        let sid = mlql::taxonomy::SynsetId(rng.gen_range(0..synsets as u32));
        let word = &taxonomy.words(sid)[0];
        let v = UniText::compose(word.clone(), en);
        db.insert_row(
            "docs",
            vec![Datum::Int(i), unitext_datum(mural.unitext_type, &v)],
        )
        .unwrap();
    }
    db.execute("ANALYZE docs").unwrap();

    for (word, approx_closure) in &concept_words {
        let sql = format!(
            "SELECT count(*) FROM docs WHERE category SEMEQUAL unitext('{word}','English')"
        );
        // Cold: includes the closure computation.
        let t = Instant::now();
        let n = db.query(&sql).unwrap();
        let cold = t.elapsed();
        // Warm: the closure is memoized (§4.3).
        let t = Instant::now();
        let n2 = db.query(&sql).unwrap();
        let warm = t.elapsed();
        assert!(n[0][0].eq_sql(&n2[0][0]));
        println!(
            "concept {word:>14} (closure ≈ {approx_closure:>5}): {} docs — cold {cold:?}, warm {warm:?}",
            n[0][0]
        );
    }

    let (hits, misses) = mural.sem.cache.stats();
    println!("\nclosure cache: {misses} computed, {hits} reused");
    println!(
        "selectivity of the largest concept: {:.4} (exact-closure estimator, §3.4.2)",
        mural
            .sem
            .closure_size_of(&UniText::compose(concept_words[2].0.clone(), en))
            .unwrap() as f64
            / (stats.synsets as f64)
    );
}
