#!/usr/bin/env bash
# CI perf + hygiene gate.
#
#  1. Lint gate: no stray println!/print! in the kernel — all diagnostics
#     must flow through the query log or the obs metrics layer.
#  2. Perf gate: run the §5.1 regression_check harness with JSON output and
#     compare its normalized latency (extended/plain ratio) against the
#     committed baseline; >20% regression fails (the threshold lives in
#     crates/bench/src/bin/regression_check.rs).
#
# Extra cargo flags (e.g. an offline [patch] config) can be injected via
# MLQL_CARGO_FLAGS / MLQL_BUILD_FLAGS:
#   MLQL_CARGO_FLAGS="--config /path/to/patch-config.toml" \
#   MLQL_BUILD_FLAGS="--offline" scripts/bench_check.sh
# Note: `cargo clippy` does not forward `--config` to its inner cargo
# invocation — for patched/offline setups put the config in
# $CARGO_HOME/config.toml instead.
set -euo pipefail
cd "$(dirname "$0")/.."

CARGO=${CARGO:-cargo}
BASELINE=benchmarks/baseline/BENCH_regression_check.json

echo "== clippy gate: deny println!/print! in mlql-kernel =="
if $CARGO ${MLQL_CARGO_FLAGS:-} clippy --version >/dev/null 2>&1; then
    $CARGO ${MLQL_CARGO_FLAGS:-} clippy -p mlql-kernel --lib ${MLQL_BUILD_FLAGS:-} -- \
        -D clippy::print_stdout -D warnings
else
    echo "clippy unavailable in this toolchain; skipping lint gate"
fi

echo "== perf gate: regression_check vs $BASELINE =="
if [ ! -f "$BASELINE" ]; then
    echo "missing baseline $BASELINE — run:" >&2
    echo "  MLQL_BENCH_DIR=benchmarks/baseline $CARGO run --release -p mlql-bench --bin regression_check" >&2
    exit 1
fi
$CARGO ${MLQL_CARGO_FLAGS:-} run --release -p mlql-bench --bin regression_check \
    ${MLQL_BUILD_FLAGS:-} -- --baseline "$BASELINE"

echo "bench_check: OK"
