//! End-to-end SQL tests through the umbrella crate: the full pipeline
//! (parse → bind → optimize → execute) over multilingual data.

use mlql::kernel::{Database, Datum};
use mlql::mural::install;

fn db() -> Database {
    let mut db = Database::new_in_memory();
    install(&mut db).unwrap();
    db
}

#[test]
fn full_books_scenario() {
    let mut db = db();
    db.execute("CREATE TABLE book (id INT, author UNITEXT, category UNITEXT, price FLOAT)")
        .unwrap();
    let rows = [
        (1, "Nehru", "English", "History", "English", 15.0),
        (2, "नेहरू", "Hindi", "History", "English", 9.0),
        (3, "நேரு", "Tamil", "சரித்திரம்", "Tamil", 8.0),
        (4, "Gandhi", "English", "Autobiography", "English", 14.0),
        (5, "Tolkien", "English", "Novel", "English", 18.0),
    ];
    for (id, author, alang, cat, clang, price) in rows {
        db.execute(&format!(
            "INSERT INTO book VALUES ({id}, unitext('{author}','{alang}'), unitext('{cat}','{clang}'), {price})"
        ))
        .unwrap();
    }
    db.execute("ANALYZE book").unwrap();
    db.execute("SET lexequal.threshold = 2").unwrap();

    // ψ across three scripts.
    let r = db
        .query("SELECT id FROM book WHERE author LEXEQUAL unitext('Nehru','English') ORDER BY id")
        .unwrap();
    let ids: Vec<i64> = r.iter().map(|row| row[0].as_int().unwrap()).collect();
    assert_eq!(ids, vec![1, 2, 3]);

    // Ω pulls everything under History, including the Tamil equivalent.
    let r = db
        .query("SELECT count(*) FROM book WHERE category SEMEQUAL unitext('History','English')")
        .unwrap();
    assert_eq!(r[0][0].as_int(), Some(4));

    // ψ + ordinary predicate compose.
    let r = db
        .query(
            "SELECT count(*) FROM book WHERE author LEXEQUAL unitext('Nehru','English') AND price < 10.0",
        )
        .unwrap();
    assert_eq!(r[0][0].as_int(), Some(2));
}

#[test]
fn operator_is_first_class_in_joins() {
    let mut db = db();
    db.execute("CREATE TABLE a (n UNITEXT)").unwrap();
    db.execute("CREATE TABLE b (n UNITEXT)").unwrap();
    db.execute("INSERT INTO a VALUES (unitext('Nehru','English')), (unitext('Patel','English'))")
        .unwrap();
    db.execute("INSERT INTO b VALUES (unitext('நேரு','Tamil')), (unitext('Meyer','German'))")
        .unwrap();
    db.execute("SET lexequal.threshold = 2").unwrap();
    // ψ as a join predicate (Example 3 of the paper).
    let r = db
        .query("SELECT count(*) FROM a, b WHERE a.n LEXEQUAL b.n")
        .unwrap();
    assert_eq!(r[0][0].as_int(), Some(1));
    // Commutativity (Table 1): swapping operand sides gives the same count.
    let r2 = db
        .query("SELECT count(*) FROM a, b WHERE b.n LEXEQUAL a.n")
        .unwrap();
    assert_eq!(r2[0][0].as_int(), Some(1));
}

#[test]
fn threshold_is_session_scoped() {
    let mut db = db();
    db.execute("CREATE TABLE t (n UNITEXT)").unwrap();
    db.execute("INSERT INTO t VALUES (unitext('Miller','English'))")
        .unwrap();
    // d(/miler/, /mila/) = 2: visible at threshold 2, not at 1.
    for (k, expect) in [(1i64, 0i64), (2, 1)] {
        db.execute(&format!("SET lexequal.threshold = {k}"))
            .unwrap();
        let r = db
            .query("SELECT count(*) FROM t WHERE n LEXEQUAL unitext('Mila','English')")
            .unwrap();
        assert_eq!(r[0][0].as_int(), Some(expect), "threshold {k}");
    }
}

#[test]
fn uniteq_identity_vs_text_equality() {
    let mut db = db();
    db.execute("CREATE TABLE t (v UNITEXT)").unwrap();
    db.execute("INSERT INTO t VALUES (unitext('History','English'))")
        .unwrap();
    db.execute("INSERT INTO t VALUES (unitext('History','French'))")
        .unwrap();
    // Text `=` sees only the text component (§3.2.1): both rows.
    let eq = db
        .query("SELECT count(*) FROM t WHERE v = unitext('History','English')")
        .unwrap();
    assert_eq!(eq[0][0].as_int(), Some(2));
    // ≐ compares both components: one row.
    let ident = db
        .query("SELECT count(*) FROM t WHERE v UNITEQ unitext('History','English')")
        .unwrap();
    assert_eq!(ident[0][0].as_int(), Some(1));
}

#[test]
fn nulls_and_errors() {
    let mut db = db();
    db.execute("CREATE TABLE t (v UNITEXT, n INT)").unwrap();
    db.execute("INSERT INTO t VALUES (unitext('x','English'), NULL)")
        .unwrap();
    db.execute("INSERT INTO t VALUES (NULL, 1)").unwrap();
    // NULL never matches ψ.
    let r = db
        .query("SELECT count(*) FROM t WHERE v LEXEQUAL unitext('x','English')")
        .unwrap();
    assert_eq!(r[0][0].as_int(), Some(1));
    let r = db.query("SELECT count(*) FROM t WHERE v IS NULL").unwrap();
    assert_eq!(r[0][0].as_int(), Some(1));
    // Unknown language in the constructor is an execution error.
    assert!(db
        .execute("SELECT count(*) FROM t WHERE v LEXEQUAL unitext('x','Qqq')")
        .is_err());
    // Unknown operator is a binder error.
    assert!(db
        .execute("SELECT * FROM t WHERE v FOO unitext('x','English')")
        .is_err());
}

#[test]
fn explain_shows_extension_operator_and_costs() {
    let mut db = db();
    db.execute("CREATE TABLE t (v UNITEXT)").unwrap();
    for i in 0..100 {
        db.execute(&format!(
            "INSERT INTO t VALUES (unitext('name{i}','English'))"
        ))
        .unwrap();
    }
    db.execute("ANALYZE t").unwrap();
    let r = db
        .execute("EXPLAIN SELECT count(*) FROM t WHERE v LEXEQUAL unitext('name1','English') IN (English)")
        .unwrap();
    let text = r.explain.unwrap();
    assert!(text.contains("LEXEQUAL"), "{text}");
    assert!(text.contains("IN (English)"), "{text}");
    assert!(text.contains("cost="), "{text}");
}

#[test]
fn aggregates_group_by_language() {
    let mut db = db();
    db.execute("CREATE TABLE t (v UNITEXT)").unwrap();
    for (name, lang, copies) in [("a", "English", 3), ("b", "Tamil", 2), ("c", "Hindi", 1)] {
        for _ in 0..copies {
            db.execute(&format!(
                "INSERT INTO t VALUES (unitext('{name}','{lang}'))"
            ))
            .unwrap();
        }
    }
    let r = db
        .query("SELECT lang_of(v), count(*) FROM t GROUP BY lang_of(v) ORDER BY count(*) DESC")
        .unwrap();
    assert_eq!(r.len(), 3);
    assert_eq!(r[0][1].as_int(), Some(3));
    assert_eq!(r[0][0].as_text(), Some("English"));
}

#[test]
fn delete_respects_psi_predicate() {
    let mut db = db();
    db.execute("CREATE TABLE t (v UNITEXT)").unwrap();
    db.execute("INSERT INTO t VALUES (unitext('Nehru','English'))")
        .unwrap();
    db.execute("INSERT INTO t VALUES (unitext('Gandhi','English'))")
        .unwrap();
    db.execute("SET lexequal.threshold = 1").unwrap();
    let r = db
        .execute("DELETE FROM t WHERE v LEXEQUAL unitext('Neru','English')")
        .unwrap();
    assert_eq!(r.affected, 1);
    let left = db.query("SELECT text_of(v) FROM t").unwrap();
    assert_eq!(left[0][0].as_text(), Some("Gandhi"));
}

#[test]
fn multi_statement_session_flow() {
    let mut db = db();
    db.execute("CREATE TABLE t (v UNITEXT, k INT)").unwrap();
    // Large enough that a point probe beats the sequential scan.
    for i in 0..2000 {
        db.execute(&format!(
            "INSERT INTO t VALUES (unitext('w{i}','English'), {i})"
        ))
        .unwrap();
    }
    db.execute("CREATE INDEX t_k ON t (k) USING btree").unwrap();
    db.execute("ANALYZE t").unwrap();
    // B-Tree point query on the int column coexists with the extension.
    let r = db.execute("SELECT text_of(v) FROM t WHERE k = 33").unwrap();
    assert_eq!(r.rows[0][0].as_text(), Some("w33"));
    assert!(r.explain.unwrap().contains("Index Scan"));
    // SHOW reflects SET.
    db.execute("SET lexequal.threshold = 7").unwrap();
    let shown = db.query("SHOW lexequal.threshold").unwrap();
    assert_eq!(shown[0][0].as_text(), Some("7"));
}

#[test]
fn limit_and_order_interact() {
    let mut db = db();
    db.execute("CREATE TABLE t (v UNITEXT, p FLOAT)").unwrap();
    for (i, name) in ["zeta", "alpha", "mid"].iter().enumerate() {
        db.execute(&format!(
            "INSERT INTO t VALUES (unitext('{name}','English'), {i}.5)"
        ))
        .unwrap();
    }
    let r = db
        .query("SELECT text_of(v) FROM t ORDER BY v LIMIT 2")
        .unwrap();
    assert_eq!(r.len(), 2);
    assert_eq!(r[0][0].as_text(), Some("alpha"));
    assert_eq!(r[1][0].as_text(), Some("mid"));
}

#[test]
fn insert_rejects_wrong_types() {
    let mut db = db();
    db.execute("CREATE TABLE t (v UNITEXT)").unwrap();
    assert!(db.execute("INSERT INTO t VALUES (42)").is_err());
    assert!(
        db.execute("INSERT INTO t VALUES ('bare text')").is_err(),
        "text is not unitext"
    );
    // And the right way works.
    db.execute("INSERT INTO t VALUES (unitext('ok','English'))")
        .unwrap();
    let n = db.query("SELECT count(*) FROM t").unwrap();
    assert!(n[0][0].eq_sql(&Datum::Int(1)));
}

#[test]
fn unitext_equality_consistent_across_join_strategies_and_indexes() {
    // Regression: `=` on UniText is text-only (§3.2.1).  A hash join or a
    // raw-byte B-Tree probe must never produce different answers than the
    // type-aware comparison.
    let mut db = db();
    db.execute("CREATE TABLE a (u UNITEXT, pad INT)").unwrap();
    db.execute("CREATE TABLE b (u UNITEXT, pad INT)").unwrap();
    for i in 0..300 {
        db.execute(&format!(
            "INSERT INTO a VALUES (unitext('w{i}','English'), {i})"
        ))
        .unwrap();
        db.execute(&format!(
            "INSERT INTO b VALUES (unitext('w{i}','French'), {i})"
        ))
        .unwrap();
    }
    db.execute("ANALYZE a").unwrap();
    db.execute("ANALYZE b").unwrap();
    // Same texts, different language tags: all 300 must join.
    let n = db
        .query("SELECT count(*) FROM a, b WHERE a.u = b.u")
        .unwrap();
    assert_eq!(n[0][0].as_int(), Some(300));
    // A B-Tree on the UniText column must not hijack the probe (raw-byte
    // order disagrees with text-only equality) — even when the seq scan is
    // penalized off.
    db.execute("CREATE INDEX a_u ON a (u) USING btree").unwrap();
    db.execute("SET enable_seqscan = 0").unwrap();
    let r = db
        .execute("SELECT count(*) FROM a WHERE u = unitext('w5','Tamil')")
        .unwrap();
    assert_eq!(r.rows[0][0].as_int(), Some(1), "{}", r.explain.unwrap());
    db.execute("SET enable_seqscan = 1").unwrap();
}

#[test]
fn unitext_compares_with_text_literals() {
    // Regression: the binder admits `unitext_col <op> 'literal'`; the
    // evaluator must route it through the type's text comparator instead
    // of falling back to cross-type discriminant ordering.
    let mut db = db();
    db.execute("CREATE TABLE t (u UNITEXT)").unwrap();
    for (w, l) in [
        ("apple", "English"),
        ("banana", "Tamil"),
        ("cherry", "French"),
    ] {
        db.execute(&format!("INSERT INTO t VALUES (unitext('{w}','{l}'))"))
            .unwrap();
    }
    let eq = db
        .query("SELECT count(*) FROM t WHERE u = 'banana'")
        .unwrap();
    assert_eq!(eq[0][0].as_int(), Some(1));
    let lt = db.query("SELECT count(*) FROM t WHERE u < 'b'").unwrap();
    assert_eq!(lt[0][0].as_int(), Some(1)); // apple
    let ge = db
        .query("SELECT count(*) FROM t WHERE 'banana' <= u")
        .unwrap();
    assert_eq!(ge[0][0].as_int(), Some(2)); // banana, cherry
}
