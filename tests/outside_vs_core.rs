//! Equivalence tests: the outside-the-server PL implementations must be
//! *functionally identical* to the in-kernel operators — the paper's
//! Table 4 / Figure 8 comparisons are only meaningful because both sides
//! compute the same answers.

use mlql::datagen::{names_dataset, NamesConfig};
use mlql::kernel::pl::PlRuntime;
use mlql::kernel::{Database, Datum};
use mlql::mural::types::unitext_datum;
use mlql::mural::{install, mdi, outside, Mural};

fn corpus(records: usize) -> (Database, Mural) {
    let mut db = Database::new_in_memory();
    let mural = install(&mut db).unwrap();
    db.execute("CREATE TABLE names (name UNITEXT)").unwrap();
    db.execute("CREATE TABLE names_out (name TEXT, ph TEXT, mdi INT)")
        .unwrap();
    let data = names_dataset(
        &mural.langs,
        &NamesConfig {
            records,
            noise: 0.3,
            seed: 77,
            distinct: 200,
        },
    );
    for rec in data {
        db.insert_row("names", vec![unitext_datum(mural.unitext_type, &rec.name)])
            .unwrap();
        let ph = mural.converters.phonemes_of(&rec.name);
        db.insert_row(
            "names_out",
            vec![
                Datum::text(rec.name.text()),
                Datum::text(String::from_utf8_lossy(ph.as_bytes())),
                Datum::Int(mdi::mdi_key(ph.as_bytes(), mdi::DEFAULT_ANCHOR)),
            ],
        )
        .unwrap();
    }
    db.execute("CREATE INDEX names_out_mdi ON names_out (mdi) USING btree")
        .unwrap();
    (db, mural)
}

fn sorted_texts(rows: &[Vec<Datum>]) -> Vec<String> {
    let mut v: Vec<String> = rows
        .iter()
        .map(|r| match r[0].as_ext() {
            Some((_, bytes)) => mlql::mural::unitext_from_bytes(bytes)
                .unwrap()
                .text()
                .to_string(),
            None => r[0].as_text().unwrap().to_string(),
        })
        .collect();
    v.sort();
    v
}

#[test]
fn scan_results_identical_across_implementations() {
    let (mut db, mural) = corpus(400);
    for (probe, k) in [("Nehru", 1i64), ("Gandhi", 2), ("Sharma", 2), ("Xyzzy", 1)] {
        db.execute(&format!("SET lexequal.threshold = {k}"))
            .unwrap();
        // Core.
        let core = db
            .query(&format!(
                "SELECT name FROM names WHERE name LEXEQUAL unitext('{probe}','English')"
            ))
            .unwrap();
        // Outside, full scan with the *interpreted* edit distance.
        let v = mural.unitext(probe, "English").unwrap();
        let (_, bytes) = v.as_ext().unwrap();
        let ph = mlql::mural::types::phoneme_slice(bytes).unwrap().to_vec();
        let ph_text = String::from_utf8_lossy(&ph).into_owned();
        let scan_fn = outside::lexequal_scan_fn("names_out", "name", "ph");
        let mut rt = PlRuntime::new(&mut db);
        rt.register_function(outside::editdistance_pl_fn());
        let out_full = rt
            .call(&scan_fn, &[Datum::text(&ph_text), Datum::Int(k)])
            .unwrap();
        // Outside, MDI-banded.
        let mdi_fn = outside::lexequal_scan_mdi_fn("names_out", "name", "ph", "mdi");
        let key = mdi::mdi_key(&ph, mdi::DEFAULT_ANCHOR);
        let out_mdi = rt
            .call(
                &mdi_fn,
                &[Datum::text(&ph_text), Datum::Int(k), Datum::Int(key)],
            )
            .unwrap();

        let a = sorted_texts(&core);
        let b = sorted_texts(&out_full);
        let c = sorted_texts(&out_mdi);
        assert_eq!(a, b, "core vs outside full scan, probe {probe} k {k}");
        assert_eq!(b, c, "outside full vs MDI, probe {probe} k {k}");
    }
}

#[test]
fn join_results_identical_across_implementations() {
    let (mut db, mural) = corpus(150);
    // A small probe side.
    db.execute("CREATE TABLE probes (name UNITEXT)").unwrap();
    db.execute("CREATE TABLE probes_out (name TEXT, ph TEXT, mdi INT)")
        .unwrap();
    let data = names_dataset(
        &mural.langs,
        &NamesConfig {
            records: 25,
            noise: 0.3,
            seed: 5,
            distinct: 40,
        },
    );
    for rec in data {
        db.insert_row("probes", vec![unitext_datum(mural.unitext_type, &rec.name)])
            .unwrap();
        let ph = mural.converters.phonemes_of(&rec.name);
        db.insert_row(
            "probes_out",
            vec![
                Datum::text(rec.name.text()),
                Datum::text(String::from_utf8_lossy(ph.as_bytes())),
                Datum::Int(mdi::mdi_key(ph.as_bytes(), mdi::DEFAULT_ANCHOR)),
            ],
        )
        .unwrap();
    }
    db.execute("SET lexequal.threshold = 2").unwrap();
    let core = db
        .query("SELECT count(*) FROM probes p, names n WHERE p.name LEXEQUAL n.name")
        .unwrap();

    let join_fn = outside::lexequal_join_fn("probes_out", "name", "ph", "names_out", "name", "ph");
    let join_mdi = outside::lexequal_join_mdi_fn(
        "probes_out",
        "name",
        "ph",
        "mdi",
        "names_out",
        "name",
        "ph",
        "mdi",
    );
    let mut rt = PlRuntime::new(&mut db);
    rt.register_function(outside::editdistance_pl_fn());
    let full = rt.call(&join_fn, &[Datum::Int(2)]).unwrap();
    let banded = rt.call(&join_mdi, &[Datum::Int(2)]).unwrap();
    assert_eq!(
        core[0][0].as_int(),
        Some(full.len() as i64),
        "core vs outside join"
    );
    assert_eq!(full.len(), banded.len(), "outside join vs MDI join");
}

#[test]
fn closure_identical_between_sql_expansion_and_pinned() {
    use mlql::taxonomy::{generate, synsets_near_closure_sizes, GeneratorConfig};
    let mut db = Database::new_in_memory();
    let langs = mlql::unitext::LanguageRegistry::new();
    let taxonomy = generate(
        langs.id_of("English"),
        &GeneratorConfig {
            synsets: 3000,
            ..Default::default()
        },
    );
    let picks = synsets_near_closure_sizes(&taxonomy, &[30, 120, 400]);
    db.execute("CREATE TABLE edges (child INT, parent INT)")
        .unwrap();
    for id in taxonomy.ids() {
        for &c in taxonomy.children(id) {
            db.execute(&format!(
                "INSERT INTO edges VALUES ({}, {})",
                c.raw(),
                id.raw()
            ))
            .unwrap();
        }
    }
    db.execute("CREATE INDEX edges_parent ON edges (parent) USING btree")
        .unwrap();
    db.execute("CREATE TABLE scratch (id INT, done INT)")
        .unwrap();
    let f = outside::semequal_closure_fn("edges", "scratch");
    for (_, synset, expected) in picks {
        db.execute("DELETE FROM scratch").unwrap();
        let mut rt = PlRuntime::new(&mut db);
        let rows = rt.call(&f, &[Datum::Int(synset.raw() as i64)]).unwrap();
        let pinned = mlql::taxonomy::closure::compute_closure(&taxonomy, synset);
        assert_eq!(rows.len(), expected);
        assert_eq!(rows.len(), pinned.len());
        // Same members, not just the same count.
        let mut sql_ids: Vec<i64> = rows.iter().map(|r| r[0].as_int().unwrap()).collect();
        sql_ids.sort_unstable();
        let mut pin_ids: Vec<i64> = pinned.iter().map(|s| s.raw() as i64).collect();
        pin_ids.sort_unstable();
        assert_eq!(sql_ids, pin_ids);
    }
}
