//! Durability tests: WAL replay recovers heaps; indexes — which, like
//! PostgreSQL-7.4 GiST (paper §4.2.1), are *not* WAL-logged — are rebuilt
//! from the recovered heaps and must serve queries correctly afterwards.

use mlql::kernel::{db::rebuild_indexes, Database};
use mlql::mural::install;
use std::path::PathBuf;

fn tmpdir(tag: &str) -> PathBuf {
    let d = std::env::temp_dir().join(format!("mlql-it-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&d);
    d
}

fn open_mural(dir: &PathBuf) -> (Database, mlql::mural::Mural) {
    let mut slot = None;
    let db = Database::open_with_extensions(dir, |db| {
        slot = Some(install(db)?);
        Ok(())
    })
    .unwrap();
    (db, slot.unwrap())
}

#[test]
fn multilingual_data_survives_crash() {
    let dir = tmpdir("crash");
    {
        let (mut db, _mural) = open_mural(&dir);
        db.execute("CREATE TABLE book (author UNITEXT, price FLOAT)")
            .unwrap();
        db.execute("CREATE INDEX book_mt ON book (author) USING mtree")
            .unwrap();
        for (n, l) in [("Nehru", "English"), ("नेहरू", "Hindi"), ("நேரு", "Tamil")]
        {
            db.execute(&format!(
                "INSERT INTO book VALUES (unitext('{n}','{l}'), 10.0)"
            ))
            .unwrap();
        }
        db.execute("DELETE FROM book WHERE price > 100.0").unwrap(); // no-op delete logged
                                                                     // No clean shutdown: drop emulates a crash (the WAL has everything).
    }
    let (mut db, _mural) = open_mural(&dir);
    db.execute("SET lexequal.threshold = 2").unwrap();
    let n = db.query("SELECT count(*) FROM book").unwrap();
    assert_eq!(n[0][0].as_int(), Some(3));
    // The M-Tree was rebuilt during replay (CREATE INDEX re-ran, inserts
    // re-applied); force the index path to prove it serves queries.
    db.execute("SET enable_seqscan = 0").unwrap();
    let r = db
        .execute("SELECT count(*) FROM book WHERE author LEXEQUAL unitext('Nehru','English')")
        .unwrap();
    assert_eq!(r.rows[0][0].as_int(), Some(3));
    assert!(r.explain.unwrap().contains("Index Scan"));
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn deletes_replay_correctly() {
    let dir = tmpdir("deletes");
    {
        let mut db = Database::open(&dir).unwrap();
        db.execute("CREATE TABLE t (id INT, tag TEXT)").unwrap();
        for i in 0..20 {
            db.execute(&format!("INSERT INTO t VALUES ({i}, 'keep')"))
                .unwrap();
        }
        db.execute("DELETE FROM t WHERE id < 5").unwrap();
        db.execute("INSERT INTO t VALUES (100, 'late')").unwrap();
    }
    let mut db = Database::open(&dir).unwrap();
    let n = db.query("SELECT count(*) FROM t").unwrap();
    assert_eq!(n[0][0].as_int(), Some(16));
    let late = db.query("SELECT count(*) FROM t WHERE id = 100").unwrap();
    assert_eq!(late[0][0].as_int(), Some(1));
    let gone = db.query("SELECT count(*) FROM t WHERE id < 5").unwrap();
    assert_eq!(gone[0][0].as_int(), Some(0));
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn repeated_reopen_is_idempotent() {
    let dir = tmpdir("reopen");
    {
        let mut db = Database::open(&dir).unwrap();
        db.execute("CREATE TABLE t (id INT)").unwrap();
        db.execute("INSERT INTO t VALUES (1), (2)").unwrap();
    }
    for _ in 0..3 {
        let mut db = Database::open(&dir).unwrap();
        let n = db.query("SELECT count(*) FROM t").unwrap();
        assert_eq!(n[0][0].as_int(), Some(2), "reopen must not duplicate rows");
    }
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn manual_index_rebuild_matches_fresh_build() {
    // The recovery path for non-WAL-logged indexes, exercised directly.
    let mut db = Database::new_in_memory();
    install(&mut db).unwrap();
    db.execute("CREATE TABLE t (v UNITEXT)").unwrap();
    db.execute("CREATE INDEX t_mt ON t (v) USING mtree")
        .unwrap();
    for i in 0..200 {
        db.execute(&format!(
            "INSERT INTO t VALUES (unitext('name{i}','English'))"
        ))
        .unwrap();
    }
    db.execute("SET lexequal.threshold = 1").unwrap();
    db.execute("SET enable_seqscan = 0").unwrap();
    let before = db
        .query("SELECT count(*) FROM t WHERE v LEXEQUAL unitext('name5','English')")
        .unwrap();
    rebuild_indexes(&mut db).unwrap();
    let after = db
        .query("SELECT count(*) FROM t WHERE v LEXEQUAL unitext('name5','English')")
        .unwrap();
    assert!(before[0][0].eq_sql(&after[0][0]));
    assert!(before[0][0].as_int().unwrap() >= 1);
}
