//! Durability tests: WAL replay recovers heaps; indexes — which, like
//! PostgreSQL-7.4 GiST (paper §4.2.1), are *not* WAL-logged — are rebuilt
//! from the recovered heaps and must serve queries correctly afterwards.

use mlql::kernel::{db::rebuild_indexes, Database};
use mlql::mural::install;
use std::path::PathBuf;

fn tmpdir(tag: &str) -> PathBuf {
    let d = std::env::temp_dir().join(format!("mlql-it-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&d);
    d
}

fn open_mural(dir: &PathBuf) -> (Database, mlql::mural::Mural) {
    let mut slot = None;
    let db = Database::open_with_extensions(dir, |db| {
        slot = Some(install(db)?);
        Ok(())
    })
    .unwrap();
    (db, slot.unwrap())
}

#[test]
fn multilingual_data_survives_crash() {
    let dir = tmpdir("crash");
    {
        let (mut db, _mural) = open_mural(&dir);
        db.execute("CREATE TABLE book (author UNITEXT, price FLOAT)")
            .unwrap();
        db.execute("CREATE INDEX book_mt ON book (author) USING mtree")
            .unwrap();
        for (n, l) in [("Nehru", "English"), ("नेहरू", "Hindi"), ("நேரு", "Tamil")]
        {
            db.execute(&format!(
                "INSERT INTO book VALUES (unitext('{n}','{l}'), 10.0)"
            ))
            .unwrap();
        }
        db.execute("DELETE FROM book WHERE price > 100.0").unwrap(); // no-op delete logged
                                                                     // No clean shutdown: drop emulates a crash (the WAL has everything).
    }
    let (mut db, _mural) = open_mural(&dir);
    db.execute("SET lexequal.threshold = 2").unwrap();
    let n = db.query("SELECT count(*) FROM book").unwrap();
    assert_eq!(n[0][0].as_int(), Some(3));
    // The M-Tree was rebuilt during replay (CREATE INDEX re-ran, inserts
    // re-applied); force the index path to prove it serves queries.
    db.execute("SET enable_seqscan = 0").unwrap();
    let r = db
        .execute("SELECT count(*) FROM book WHERE author LEXEQUAL unitext('Nehru','English')")
        .unwrap();
    assert_eq!(r.rows[0][0].as_int(), Some(3));
    assert!(r.explain.unwrap().contains("Index Scan"));
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn deletes_replay_correctly() {
    let dir = tmpdir("deletes");
    {
        let mut db = Database::open(&dir).unwrap();
        db.execute("CREATE TABLE t (id INT, tag TEXT)").unwrap();
        for i in 0..20 {
            db.execute(&format!("INSERT INTO t VALUES ({i}, 'keep')"))
                .unwrap();
        }
        db.execute("DELETE FROM t WHERE id < 5").unwrap();
        db.execute("INSERT INTO t VALUES (100, 'late')").unwrap();
    }
    let mut db = Database::open(&dir).unwrap();
    let n = db.query("SELECT count(*) FROM t").unwrap();
    assert_eq!(n[0][0].as_int(), Some(16));
    let late = db.query("SELECT count(*) FROM t WHERE id = 100").unwrap();
    assert_eq!(late[0][0].as_int(), Some(1));
    let gone = db.query("SELECT count(*) FROM t WHERE id < 5").unwrap();
    assert_eq!(gone[0][0].as_int(), Some(0));
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn repeated_reopen_is_idempotent() {
    let dir = tmpdir("reopen");
    {
        let mut db = Database::open(&dir).unwrap();
        db.execute("CREATE TABLE t (id INT)").unwrap();
        db.execute("INSERT INTO t VALUES (1), (2)").unwrap();
    }
    for _ in 0..3 {
        let mut db = Database::open(&dir).unwrap();
        let n = db.query("SELECT count(*) FROM t").unwrap();
        assert_eq!(n[0][0].as_int(), Some(2), "reopen must not duplicate rows");
    }
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn manual_index_rebuild_matches_fresh_build() {
    // The recovery path for non-WAL-logged indexes, exercised directly.
    let mut db = Database::new_in_memory();
    install(&mut db).unwrap();
    db.execute("CREATE TABLE t (v UNITEXT)").unwrap();
    db.execute("CREATE INDEX t_mt ON t (v) USING mtree")
        .unwrap();
    for i in 0..200 {
        db.execute(&format!(
            "INSERT INTO t VALUES (unitext('name{i}','English'))"
        ))
        .unwrap();
    }
    db.execute("SET lexequal.threshold = 1").unwrap();
    db.execute("SET enable_seqscan = 0").unwrap();
    let before = db
        .query("SELECT count(*) FROM t WHERE v LEXEQUAL unitext('name5','English')")
        .unwrap();
    rebuild_indexes(&mut db).unwrap();
    let after = db
        .query("SELECT count(*) FROM t WHERE v LEXEQUAL unitext('name5','English')")
        .unwrap();
    assert!(before[0][0].eq_sql(&after[0][0]));
    assert!(before[0][0].as_int().unwrap() >= 1);
}

/// A crash with one committed and one still-open transaction in the WAL
/// tail: replay must keep every row of the committed transaction, drop
/// every row of the uncommitted one (no orphan versions reachable by any
/// scan, ψ scans included), and rebuild indexes from the surviving heap
/// only.
#[test]
fn committed_txn_survives_crash_uncommitted_is_dropped() {
    let dir = tmpdir("txn-tail");
    {
        let (db, _mural) = open_mural(&dir);
        let mut setup = db.connect();
        setup
            .execute("CREATE TABLE book (author UNITEXT, price FLOAT)")
            .unwrap();
        setup
            .execute("CREATE INDEX book_mt ON book (author) USING mtree")
            .unwrap();
        setup
            .execute("INSERT INTO book VALUES (unitext('Miller','English'), 1.0)")
            .unwrap();

        // Transaction A: three cross-script homophones, committed.
        let mut a = db.connect();
        a.execute("BEGIN").unwrap();
        for (n, l) in [("Nehru", "English"), ("नेहरू", "Hindi"), ("நேரு", "Tamil")]
        {
            a.execute(&format!(
                "INSERT INTO book VALUES (unitext('{n}','{l}'), 10.0)"
            ))
            .unwrap();
        }
        a.execute("COMMIT").unwrap();

        // Transaction B: in flight at the crash — never committed.  The
        // session is leaked so not even an Abort record reaches the log:
        // the WAL tail ends with bare in-flight DML, exactly what a kill
        // mid-transaction leaves behind.
        let mut b = db.connect();
        b.execute("BEGIN").unwrap();
        for i in 0..3 {
            b.execute(&format!(
                "INSERT INTO book VALUES (unitext('Orphan{i}','English'), 66.0)"
            ))
            .unwrap();
        }
        b.execute("DELETE FROM book WHERE price = 1.0").unwrap();
        std::mem::forget(b);
        // No clean shutdown: drop emulates the crash.
    }
    let (mut db, _mural) = open_mural(&dir);
    db.execute("SET lexequal.threshold = 2").unwrap();
    // A's rows survived; B's inserts are gone and B's delete never
    // happened — the pre-crash row is still there.
    assert_eq!(
        db.query("SELECT count(*) FROM book").unwrap()[0][0].as_int(),
        Some(4)
    );
    assert_eq!(
        db.query("SELECT count(*) FROM book WHERE price = 66.0")
            .unwrap()[0][0]
            .as_int(),
        Some(0),
        "uncommitted insert leaked through recovery"
    );
    assert_eq!(
        db.query("SELECT count(*) FROM book WHERE price = 1.0")
            .unwrap()[0][0]
            .as_int(),
        Some(1),
        "uncommitted delete was replayed"
    );
    // ψ through the rebuilt index: exactly the committed homophones.
    db.execute("SET enable_seqscan = 0").unwrap();
    let r = db
        .execute("SELECT count(*) FROM book WHERE author LEXEQUAL unitext('Nehru','English')")
        .unwrap();
    assert_eq!(r.rows[0][0].as_int(), Some(3));
    assert!(r.explain.unwrap().contains("Index Scan"));
    // And a second reopen stays put (replay is idempotent on the mix).
    drop(db);
    let (mut db, _mural) = open_mural(&dir);
    assert_eq!(
        db.query("SELECT count(*) FROM book").unwrap()[0][0].as_int(),
        Some(4)
    );
    std::fs::remove_dir_all(&dir).unwrap();
}

/// Same shape, but the open transaction's session is dropped normally, so
/// an Abort record *does* reach the WAL: replay must treat "aborted" and
/// "vanished" identically — only Commit records make work durable.
#[test]
fn aborted_txn_in_wal_tail_is_dropped_on_recovery() {
    let dir = tmpdir("txn-abort-tail");
    {
        let mut db = Database::open(&dir).unwrap();
        db.execute("CREATE TABLE t (id INT)").unwrap();
        db.execute("INSERT INTO t VALUES (1)").unwrap();
        let db = db; // sessions below borrow the engine
        let mut a = db.connect();
        a.execute("BEGIN").unwrap();
        a.execute("INSERT INTO t VALUES (2)").unwrap();
        a.execute("COMMIT").unwrap();
        let mut b = db.connect();
        b.execute("BEGIN").unwrap();
        b.execute("INSERT INTO t VALUES (3)").unwrap();
        drop(b); // logs Abort, crash before any checkpoint
    }
    let mut db = Database::open(&dir).unwrap();
    let mut ids: Vec<i64> = db
        .query("SELECT id FROM t")
        .unwrap()
        .iter()
        .map(|r| r[0].as_int().unwrap())
        .collect();
    ids.sort_unstable();
    assert_eq!(ids, vec![1, 2], "only committed work may survive");
    std::fs::remove_dir_all(&dir).unwrap();
}
