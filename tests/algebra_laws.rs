//! Property tests for the Mural composition rules (the paper's Table 1):
//!
//! | Oper | Commutes | Distributes over ∪ |
//! |------|----------|--------------------|
//! | ψ    | yes      | yes                |
//! | Ω    | no       | yes                |
//!
//! The laws are checked on the *definitional* set semantics of
//! `mlql::mural::algebra` over randomized multilingual inputs, plus a SQL
//! round-trip asserting the optimizer's use of commutativity (operand
//! swapping) is observable-equivalent.

use mlql::mural::algebra::{
    canon_omega, canon_psi, canon_psi_swapped, omega, psi, psi_select, union,
};
use mlql::mural::semequal::SemState;
use mlql::phonetics::ConverterRegistry;
use mlql::taxonomy::books_fragment;
use mlql::unitext::{LanguageRegistry, UniText};
use proptest::prelude::*;
use std::sync::Arc;

fn langs() -> Arc<LanguageRegistry> {
    Arc::new(LanguageRegistry::new())
}

/// Strategy: a small set of UniText names over a tight alphabet so that
/// near-collisions (edit distance ≤ 2) actually occur.
fn unitext_set(reg: Arc<LanguageRegistry>) -> impl Strategy<Value = Vec<UniText>> {
    let lang_names = ["English", "French", "Tamil", "Hindi"];
    proptest::collection::vec(("[nrtk][aeu]{1,3}[nrs]?", 0usize..4), 0..6).prop_map(move |items| {
        items
            .into_iter()
            .map(|(text, li)| UniText::compose(text, reg.id_of(lang_names[li % 4])))
            .collect()
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn psi_commutes(a in unitext_set(langs()), b in unitext_set(langs())) {
        let reg = langs();
        let convs = ConverterRegistry::with_builtins(&reg);
        prop_assert_eq!(
            canon_psi(psi(&a, &b, &convs)),
            canon_psi_swapped(psi(&b, &a, &convs))
        );
    }

    #[test]
    fn psi_distributes_over_union(
        a in unitext_set(langs()),
        b in unitext_set(langs()),
        c in unitext_set(langs()),
    ) {
        let reg = langs();
        let convs = ConverterRegistry::with_builtins(&reg);
        let lhs = canon_psi(psi(&union(&a, &b), &c, &convs));
        let rhs = canon_psi([psi(&a, &c, &convs), psi(&b, &c, &convs)].concat());
        prop_assert_eq!(lhs, rhs);
    }

    #[test]
    fn psi_select_is_a_restriction(
        a in unitext_set(langs()),
        b in unitext_set(langs()),
        k in 0usize..3,
    ) {
        let reg = langs();
        let convs = ConverterRegistry::with_builtins(&reg);
        let full = psi(&a, &b, &convs);
        let selected = psi_select(&a, &b, k, &convs);
        // σ_{d ≤ k}(ψ) keeps exactly the qualifying tagged tuples.
        prop_assert!(selected.iter().all(|t| t.2 <= k));
        let expect: Vec<_> = full.into_iter().filter(|t| t.2 <= k).collect();
        prop_assert_eq!(canon_psi(selected), canon_psi(expect));
    }

    #[test]
    fn omega_distributes_over_union(
        a in unitext_set(langs()),
        b in unitext_set(langs()),
    ) {
        let reg = langs();
        let (taxonomy, _) = books_fragment(&reg);
        let state = SemState::new(Arc::new(taxonomy));
        let c = vec![UniText::compose("History", reg.id_of("English"))];
        let lhs = canon_omega(omega(&union(&a, &b), &c, &state));
        let rhs = canon_omega([omega(&a, &c, &state), omega(&b, &c, &state)].concat());
        prop_assert_eq!(lhs, rhs);
    }

    #[test]
    fn omega_tags_preserve_inputs(a in unitext_set(langs()), b in unitext_set(langs())) {
        // "This operation preserves both the input strings" (§3.2): the
        // output is exactly the tagged Cartesian product.
        let reg = langs();
        let (taxonomy, _) = books_fragment(&reg);
        let state = SemState::new(Arc::new(taxonomy));
        let out = omega(&a, &b, &state);
        prop_assert_eq!(out.len(), a.len() * b.len());
    }
}

#[test]
fn omega_is_not_commutative_witness() {
    // Table 1 marks Ω non-commutative; exhibit the witness.
    let reg = langs();
    let (taxonomy, _) = books_fragment(&reg);
    let state = SemState::new(Arc::new(taxonomy));
    let bio = vec![UniText::compose("Biography", reg.id_of("English"))];
    let hist = vec![UniText::compose("History", reg.id_of("English"))];
    let fwd = omega(&bio, &hist, &state);
    let bwd = omega(&hist, &bio, &state);
    assert!(
        fwd[0].2 && !bwd[0].2,
        "Biography ⊑ History but not conversely"
    );
}

#[test]
fn sql_respects_psi_commutativity() {
    // The optimizer may swap ψ operands (it normalizes const-vs-column
    // using Table 1); both spellings must return identical rows.
    use mlql::kernel::Database;
    use mlql::mural::install;
    let mut db = Database::new_in_memory();
    install(&mut db).unwrap();
    db.execute("CREATE TABLE t (v UNITEXT)").unwrap();
    for n in ["Nehru", "Neru", "Gandhi"] {
        db.execute(&format!("INSERT INTO t VALUES (unitext('{n}','English'))"))
            .unwrap();
    }
    db.execute("SET lexequal.threshold = 1").unwrap();
    let a = db
        .query("SELECT count(*) FROM t WHERE v LEXEQUAL unitext('Nehru','English')")
        .unwrap();
    let b = db
        .query("SELECT count(*) FROM t WHERE unitext('Nehru','English') LEXEQUAL v")
        .unwrap();
    assert!(a[0][0].eq_sql(&b[0][0]));
    assert_eq!(a[0][0].as_int(), Some(2));
}
