//! Observability-layer integration tests: per-operator EXPLAIN ANALYZE
//! actuals for the paper's ψ and Ω plans, the SHOW STATS / mlql_stats()
//! SQL surface, and the engine metric counters behind Figures 6–8.

use mlql::kernel::{obs, Database};
use mlql::mural::install;

fn db() -> Database {
    let mut db = Database::new_in_memory();
    install(&mut db).unwrap();
    db
}

/// The per-node `actual rows=` values of an EXPLAIN ANALYZE text, in plan
/// (pre-order) line order, paired with the full line for context.
fn node_actuals(text: &str) -> Vec<(u64, String)> {
    text.lines()
        .filter(|l| l.contains("(actual rows="))
        .map(|l| {
            let tail = l.split("(actual rows=").nth(1).unwrap();
            let n: u64 = tail
                .chars()
                .take_while(|c| c.is_ascii_digit())
                .collect::<String>()
                .parse()
                .unwrap();
            (n, l.to_string())
        })
        .collect()
}

/// Golden test: a LexEQUAL M-Tree index-scan plan reports per-node
/// actuals that reconcile with the handcrafted data.
#[test]
fn explain_analyze_lexequal_index_scan_actuals() {
    let mut db = db();
    db.execute("CREATE TABLE names (name UNITEXT)").unwrap();
    // /nehru/ matches நேரு (/neru/) and नेहरू (/nehru/) at k=2; the
    // others are phonemically far.
    for (n, lang) in [
        ("Nehru", "English"),
        ("நேரு", "Tamil"),
        ("नेहरू", "Hindi"),
        ("Gandhi", "English"),
        ("Patel", "English"),
    ] {
        db.execute(&format!(
            "INSERT INTO names VALUES (unitext('{n}','{lang}'))"
        ))
        .unwrap();
    }
    db.execute("CREATE INDEX names_mt ON names (name) USING mtree")
        .unwrap();
    db.execute("ANALYZE names").unwrap();
    db.execute("SET lexequal.threshold = 2").unwrap();
    db.execute("SET enable_seqscan = 0").unwrap();

    let r = db
        .execute(
            "EXPLAIN ANALYZE SELECT count(*) FROM names \
             WHERE name LEXEQUAL unitext('Nehru','English')",
        )
        .unwrap();
    let text = r.explain.expect("explain text");

    let nodes = node_actuals(&text);
    assert!(nodes.len() >= 2, "at least aggregate + scan nodes:\n{text}");
    // Every annotated node prints the full actuals quadruple.
    for (_, line) in &nodes {
        assert!(line.contains("loops="), "{line}");
        assert!(line.contains("time="), "{line}");
        assert!(line.contains("pages="), "{line}");
    }
    // Pre-order: the root aggregate emits exactly one row...
    let (agg_rows, agg_line) = &nodes[0];
    assert!(
        agg_line.contains("Aggregate"),
        "root is the count(*):\n{text}"
    );
    assert_eq!(*agg_rows, 1, "{text}");
    assert!(agg_line.contains("loops=1"), "{agg_line}");
    // ...and the index scan leaf yields the three cross-script homophones.
    let (scan_rows, scan_line) = nodes.last().unwrap();
    assert!(
        scan_line.contains("Index Scan using names_mt"),
        "ψ probe must use the M-Tree:\n{text}"
    );
    assert_eq!(*scan_rows, 3, "Nehru/நேரு/नेहरू at k=2:\n{text}");
    // Query-level trailer and stage trace ride along.
    assert!(text.contains("Actual: rows=1"), "{text}");
    assert!(text.contains("index_node_visits="), "{text}");
    assert!(text.contains("Stages: "), "{text}");
    assert!(text.contains("execute="), "{text}");
}

/// Golden test: a SemEQUAL closure plan attributes rows and ext-op calls
/// to the scan node evaluating Ω.
#[test]
fn explain_analyze_semequal_closure_actuals() {
    let mut db = db();
    db.execute("CREATE TABLE book (id INT, category UNITEXT)")
        .unwrap();
    // Four of five categories sit in History's closure (the fixture
    // taxonomy of Figure 4); Novel does not.
    for (id, cat, lang) in [
        (1, "History", "English"),
        (2, "Historiography", "English"),
        (3, "Autobiography", "English"),
        (4, "சரித்திரம்", "Tamil"),
        (5, "Novel", "English"),
    ] {
        db.execute(&format!(
            "INSERT INTO book VALUES ({id}, unitext('{cat}','{lang}'))"
        ))
        .unwrap();
    }
    db.execute("ANALYZE book").unwrap();
    // Pin the closure-walk strategy: the interval index (the default)
    // decides containment without touching the closure cache, so the
    // cache-hit assertions below only hold on the fallback path.
    db.execute("SET enable_omega_intervals = 0").unwrap();
    // Warm the shared closure cache (batch eval resolves each closure at
    // most once per query, so hits only show up on a repeated RHS root).
    db.execute(
        "SELECT count(*) FROM book \
         WHERE category SEMEQUAL unitext('History','English')",
    )
    .unwrap();

    let hits_before = obs::metrics().taxonomy_closure_cache_hits_total.get();
    let r = db
        .execute(
            "EXPLAIN ANALYZE SELECT count(*) FROM book \
             WHERE category SEMEQUAL unitext('History','English')",
        )
        .unwrap();
    let text = r.explain.expect("explain text");

    let nodes = node_actuals(&text);
    let (scan_rows, scan_line) = nodes.last().unwrap();
    assert!(scan_line.contains("Seq Scan on book"), "{text}");
    assert!(
        scan_line.contains("Containment: closure-fallback"),
        "{text}"
    );
    assert_eq!(*scan_rows, 4, "closure members under History:\n{text}");
    // Ω evaluated once per scanned row — the reconciliation the cost
    // model's per-tuple charge assumes.
    assert!(text.contains("ext_op_calls=5"), "{text}");
    // Repeated RHS roots hit the memoized closure.
    let hits_after = obs::metrics().taxonomy_closure_cache_hits_total.get();
    assert!(
        hits_after > hits_before,
        "closure cache hits must be counted"
    );
}

/// The default interval-labeled Ω path is surfaced by EXPLAIN and never
/// touches the closure cache for a tree-shaped taxonomy.
#[test]
fn explain_analyze_semequal_interval_strategy() {
    let mut db = db();
    db.execute("CREATE TABLE book (id INT, category UNITEXT)")
        .unwrap();
    for (id, cat, lang) in [
        (1, "History", "English"),
        (2, "Historiography", "English"),
        (3, "Autobiography", "English"),
        (4, "Novel", "English"),
    ] {
        db.execute(&format!(
            "INSERT INTO book VALUES ({id}, unitext('{cat}','{lang}'))"
        ))
        .unwrap();
    }
    db.execute("ANALYZE book").unwrap();

    let hits_before = obs::metrics().omega_interval_hits_total.get();
    let r = db
        .execute(
            "EXPLAIN ANALYZE SELECT count(*) FROM book \
             WHERE category SEMEQUAL unitext('History','English')",
        )
        .unwrap();
    let text = r.explain.expect("explain text");

    let nodes = node_actuals(&text);
    let (scan_rows, scan_line) = nodes.last().unwrap();
    assert!(scan_line.contains("Containment: intervals"), "{text}");
    assert_eq!(*scan_rows, 3, "closure members under History:\n{text}");
    let hits_after = obs::metrics().omega_interval_hits_total.get();
    assert!(
        hits_after > hits_before,
        "interval-decided probes must be counted"
    );
}

/// Acceptance: a three-operator plan (aggregate over join over scans)
/// prints actuals on every node.
#[test]
fn explain_analyze_annotates_every_node_of_a_join_plan() {
    let mut db = db();
    db.execute("CREATE TABLE a (n UNITEXT)").unwrap();
    db.execute("CREATE TABLE b (n UNITEXT)").unwrap();
    db.execute("INSERT INTO a VALUES (unitext('Nehru','English')), (unitext('Patel','English'))")
        .unwrap();
    db.execute("INSERT INTO b VALUES (unitext('நேரு','Tamil')), (unitext('Meyer','German'))")
        .unwrap();
    db.execute("ANALYZE a").unwrap();
    db.execute("ANALYZE b").unwrap();
    db.execute("SET lexequal.threshold = 2").unwrap();
    // Force the rescanned nested loop so per-node loop counts are visible.
    db.execute("SET enable_material = 0").unwrap();

    let r = db
        .execute("EXPLAIN ANALYZE SELECT count(*) FROM a, b WHERE a.n LEXEQUAL b.n")
        .unwrap();
    let text = r.explain.expect("explain text");
    let plan_lines: Vec<&str> = text
        .lines()
        .take_while(|l| !l.starts_with("Actual:"))
        .filter(|l| !l.trim().is_empty())
        .collect();
    assert!(plan_lines.len() >= 3, "3-operator plan:\n{text}");
    for line in &plan_lines {
        assert!(
            line.contains("(actual rows="),
            "unannotated node {line:?}:\n{text}"
        );
        assert!(line.contains("loops="), "{line}");
        assert!(line.contains("time="), "{line}");
        assert!(line.contains("pages="), "{line}");
    }
    // The inner side of the nested loop rescans once per outer row.
    assert!(
        text.lines().any(|l| l.contains("loops=2")),
        "inner scan must report 2 loops:\n{text}"
    );
}

/// Acceptance: SHOW STATS returns ≥10 distinct engine metrics, and the
/// same registry renders both Prometheus text and JSON.
#[test]
fn show_stats_exposes_at_least_ten_metrics_in_both_formats() {
    let mut db = db();
    db.execute("CREATE TABLE t (id INT)").unwrap();
    db.execute("INSERT INTO t VALUES (1), (2), (3)").unwrap();
    db.execute("SELECT count(*) FROM t").unwrap();
    // One-row table to drive the scalar stats functions (the SQL dialect
    // has no FROM-less SELECT).
    db.execute("CREATE TABLE dual (x INT)").unwrap();
    db.execute("INSERT INTO dual VALUES (1)").unwrap();

    // Tabular form: one row per sample, metric names distinct.
    let rows = db.query("SHOW STATS").unwrap();
    let names: std::collections::HashSet<String> = rows
        .iter()
        .map(|r| r[0].as_text().unwrap().to_string())
        .collect();
    assert!(names.len() >= 10, "got {} metrics: {names:?}", names.len());
    assert!(names.iter().all(|n| n.starts_with("mlql_")), "{names:?}");
    assert!(names.contains("mlql_queries_total"));
    assert!(names.contains("mlql_bufferpool_logical_reads_total"));

    // JSON form (both the SHOW alias and the SQL function).
    let json = db.query("SHOW STATS_JSON").unwrap()[0][0]
        .as_text()
        .unwrap()
        .to_string();
    assert!(json.matches("\"type\":").count() >= 10, "{json}");
    let via_fn = db.query("SELECT mlql_stats() FROM dual").unwrap()[0][0]
        .as_text()
        .unwrap()
        .to_string();
    assert!(via_fn.matches("\"type\":").count() >= 10);

    // Prometheus text form.
    let prom = db
        .query("SELECT mlql_stats_prometheus() FROM dual")
        .unwrap()[0][0]
        .as_text()
        .unwrap()
        .to_string();
    assert!(prom.matches("# TYPE mlql_").count() >= 10, "{prom}");
    assert!(
        prom.contains("# TYPE mlql_query_latency_seconds histogram"),
        "{prom}"
    );
    assert!(
        prom.contains("mlql_query_latency_seconds_bucket{le=\"+Inf\"}"),
        "{prom}"
    );
    let show_prom = db.query("SHOW STATS_PROMETHEUS").unwrap()[0][0]
        .as_text()
        .unwrap()
        .to_string();
    assert!(show_prom.matches("# TYPE mlql_").count() >= 10);
}

/// The ψ hot-path counters move with the work actually done (Figure 6's
/// cost drivers: edit-distance calls and phoneme conversions).
#[test]
fn psi_counters_track_distance_calls() {
    let mut db = db();
    db.execute("CREATE TABLE names (name UNITEXT)").unwrap();
    for n in ["Nehru", "Gandhi", "Patel", "Bose"] {
        db.execute(&format!(
            "INSERT INTO names VALUES (unitext('{n}','English'))"
        ))
        .unwrap();
    }
    db.execute("SET lexequal.threshold = 2").unwrap();

    let m = obs::metrics();
    let dist_before = m.psi_distance_calls_total.get();
    let ext_before = m.ext_op_calls_total.get();
    db.query("SELECT count(*) FROM names WHERE name LEXEQUAL unitext('Nehru','English')")
        .unwrap();
    // One ψ evaluation per scanned row, each reaching the banded DP
    // (every name here has a phoneme string).
    assert!(m.psi_distance_calls_total.get() >= dist_before + 4);
    assert!(m.ext_op_calls_total.get() >= ext_before + 4);
}

/// Golden test for EXPLAIN ANALYZE under parallelism: the plan renders a
/// `Parallel:` summary plus one `Worker i:` line per worker, the
/// per-worker row actuals sum exactly to the scan node's actual rows, and
/// that total matches the serial (workers=1) run of the same query.
#[test]
fn explain_analyze_parallel_worker_actuals_reconcile() {
    let mut db = db();
    db.execute("CREATE TABLE names (name UNITEXT)").unwrap();
    // A table big enough to cross the planner's parallel gate.
    for i in 0..1200 {
        let n = match i % 4 {
            0 => "Nehru",
            1 => "Gandhi",
            2 => "Miller",
            _ => "Krishnan",
        };
        db.execute(&format!(
            "INSERT INTO names VALUES (unitext('{n}{i}','English'))"
        ))
        .unwrap();
    }
    db.execute("ANALYZE names").unwrap();
    db.execute("SET lexequal.threshold = 1").unwrap();
    let sql = "EXPLAIN ANALYZE SELECT count(*) FROM names \
               WHERE name LEXEQUAL unitext('Nehru1','English')";

    // Serial reference.
    db.execute("SET parallel_workers = 1").unwrap();
    let serial = db.execute(sql).unwrap().explain.expect("explain text");
    assert!(
        serial.contains("Seq Scan on names") && !serial.contains("Parallel Seq Scan"),
        "serial plan expected:\n{serial}"
    );
    let serial_scan_rows = node_actuals(&serial)
        .into_iter()
        .find(|(_, l)| l.contains("Seq Scan on names"))
        .expect("scan node")
        .0;

    // Parallel run of the identical query.
    db.execute("SET parallel_workers = 4").unwrap();
    let text = db.execute(sql).unwrap().explain.expect("explain text");
    assert!(
        text.contains("Parallel Seq Scan on names  (workers=4)"),
        "parallel plan expected:\n{text}"
    );
    let par_scan_rows = node_actuals(&text)
        .into_iter()
        .find(|(_, l)| l.contains("Parallel Seq Scan on names"))
        .expect("parallel scan node")
        .0;
    assert_eq!(par_scan_rows, serial_scan_rows, "{text}");

    // The Parallel: summary line.
    let summary = text
        .lines()
        .find(|l| l.starts_with("Parallel: "))
        .unwrap_or_else(|| panic!("missing Parallel: line:\n{text}"));
    assert!(summary.contains("workers=4"), "{summary}");
    assert!(summary.contains("gather_wait="), "{summary}");
    let morsels: u64 = summary
        .split("morsels=")
        .nth(1)
        .unwrap()
        .chars()
        .take_while(|c| c.is_ascii_digit())
        .collect::<String>()
        .parse()
        .unwrap();
    assert!(morsels >= 1, "{summary}");

    // Per-worker actuals: one line each, rows summing to the scan total.
    let workers: Vec<(u64, f64)> = text
        .lines()
        .filter(|l| l.trim_start().starts_with("Worker "))
        .map(|l| {
            let rows: u64 = l
                .split("rows=")
                .nth(1)
                .unwrap()
                .chars()
                .take_while(|c| c.is_ascii_digit())
                .collect::<String>()
                .parse()
                .unwrap();
            let time: f64 = l
                .split("time=")
                .nth(1)
                .unwrap()
                .trim_end_matches("ms")
                .parse()
                .unwrap();
            (rows, time)
        })
        .collect();
    assert_eq!(workers.len(), 4, "one actuals line per worker:\n{text}");
    let worker_row_sum: u64 = workers.iter().map(|(r, _)| r).sum();
    assert_eq!(
        worker_row_sum, serial_scan_rows,
        "per-worker rows must sum to the serial scan total:\n{text}"
    );
    assert!(
        workers.iter().all(|(_, t)| *t >= 0.0),
        "worker times must parse:\n{text}"
    );

    // The parallel counters are visible through SHOW STATS.
    let shown = db.execute("SHOW stats").unwrap();
    let stats_text: Vec<String> = shown
        .rows
        .iter()
        .map(|r| format!("{} {}", r[0], r[1]))
        .collect();
    let stats_text = stats_text.join("\n");
    for metric in [
        "mlql_parallel_morsels_dispatched_total",
        "mlql_parallel_worker_busy_ns_total",
        "mlql_parallel_gather_wait_ns_total",
    ] {
        assert!(stats_text.contains(metric), "SHOW STATS missing {metric}");
    }
}

/// Golden test for the live activity view: while one session loops a
/// parallel ψ scan, a second session polls `SHOW ACTIVITY` and must
/// observe the statement mid-execution — stage `execute`, the parallel
/// workers it claimed, and rows accumulating — without ever blocking it.
#[test]
fn show_activity_observes_live_parallel_scan_from_second_session() {
    use std::sync::atomic::{AtomicBool, Ordering};
    use std::time::{Duration, Instant};

    let mut db = db();
    db.execute("CREATE TABLE names (name UNITEXT)").unwrap();
    for i in 0..1500 {
        let n = match i % 4 {
            0 => "Nehru",
            1 => "Gandhi",
            2 => "Miller",
            _ => "Krishnan",
        };
        db.execute(&format!(
            "INSERT INTO names VALUES (unitext('{n}{i}','English'))"
        ))
        .unwrap();
    }
    db.execute("ANALYZE names").unwrap();
    db.execute("SET lexequal.threshold = 2").unwrap();
    db.execute("SET parallel_workers = 4").unwrap();
    // Returning rows (not an aggregate) so the activity row counter moves
    // while the gather drains worker batches.
    let sql = "SELECT name FROM names WHERE name LEXEQUAL unitext('Nehru1','English')";

    // The observer is a *different* session on the same engine.
    let mut observer = db.connect();
    let stop = AtomicBool::new(false);
    let (mut saw_execute, mut saw_workers, mut saw_rows) = (false, false, false);
    let mut saw_sql = false;

    std::thread::scope(|scope| {
        let stop = &stop;
        let worker = scope.spawn(move || {
            let mut n = 0u64;
            while !stop.load(Ordering::Relaxed) {
                let rows = db.query(sql).unwrap();
                assert!(!rows.is_empty(), "Nehru1 matches itself at k=2");
                n += 1;
            }
            n
        });

        let deadline = Instant::now() + Duration::from_secs(10);
        while Instant::now() < deadline && !(saw_execute && saw_workers && saw_rows) {
            let shown = observer.execute("SHOW ACTIVITY").unwrap();
            // Columns: session_id, query_id, txn, stage, rows, workers,
            // elapsed_ms, sql.
            for row in &shown.rows {
                let stage = row[3].as_text().unwrap();
                let rows_so_far = row[4].as_int().unwrap();
                let workers = row[5].as_int().unwrap();
                let snippet = row[7].as_text().unwrap();
                if !snippet.contains("LEXEQUAL") {
                    continue; // the observer's own SHOW ACTIVITY row
                }
                saw_sql = true;
                assert_eq!(
                    row[2].as_int(),
                    Some(0),
                    "autocommit statements report txn = 0"
                );
                if stage == "execute" {
                    saw_execute = true;
                    assert!(
                        row[6].as_float().unwrap() >= 0.0,
                        "elapsed must be non-negative"
                    );
                    assert!(row[1].as_int().unwrap() > 0, "query id assigned");
                }
                if workers >= 2 {
                    saw_workers = true;
                }
                if rows_so_far > 0 {
                    saw_rows = true;
                }
            }
            std::thread::sleep(Duration::from_micros(200));
        }
        stop.store(true, Ordering::Relaxed);
        let iterations = worker.join().unwrap();
        assert!(iterations > 0, "the observed session made progress");
    });

    assert!(saw_sql, "observer never saw the ψ statement at all");
    assert!(saw_execute, "never observed stage=execute");
    assert!(saw_workers, "never observed the claimed parallel workers");
    assert!(saw_rows, "never observed rows-so-far > 0");
}

/// EXPLAIN ANALYZE's span tree reconciles with its printed actuals: the
/// `execute` stage carries one child per plan operator (inclusive times
/// bounded by the stage) plus a per-worker subtree whose spans mirror the
/// `Worker i:` trailer lines.
#[test]
fn explain_analyze_span_tree_reconciles_with_worker_actuals() {
    let mut db = db();
    db.execute("CREATE TABLE names (name UNITEXT)").unwrap();
    for i in 0..1200 {
        db.execute(&format!(
            "INSERT INTO names VALUES (unitext('Nehru{i}','English'))"
        ))
        .unwrap();
    }
    db.execute("ANALYZE names").unwrap();
    db.execute("SET lexequal.threshold = 1").unwrap();
    db.execute("SET parallel_workers = 4").unwrap();

    let r = db
        .execute(
            "EXPLAIN ANALYZE SELECT count(*) FROM names \
             WHERE name LEXEQUAL unitext('Nehru1','English')",
        )
        .unwrap();
    let text = r.explain.expect("explain text");
    assert!(text.contains("Parallel Seq Scan"), "{text}");
    let trace = r.stats.trace.expect("trace rides on RunStats");
    assert!(trace.query_id() > 0, "trace tagged with its query id");
    assert!(
        r.stats.plan_digest.unwrap_or(0) != 0,
        "plan digest recorded"
    );

    let execute = trace
        .spans()
        .iter()
        .find(|s| s.name == "execute")
        .expect("execute stage span");
    assert!(
        !execute.children.is_empty(),
        "execute span must carry the operator tree:\n{}",
        trace.render_tree()
    );

    // Child 0 is the plan's span tree, pre-order, inclusive times.
    let op_root = &execute.children[0];
    assert!(
        op_root.name.starts_with("Aggregate"),
        "plan root is the count(*): {}",
        trace.render_tree()
    );
    assert_eq!(op_root.children.len(), 1, "aggregate has one input");
    // Inclusive times nest all the way down to the scan leaf.
    assert!(
        op_root.duration <= execute.duration,
        "operator time is contained in the stage time"
    );
    let mut node = op_root;
    loop {
        for c in &node.children {
            assert!(c.duration <= node.duration, "inclusive times nest");
        }
        if node.name.starts_with("Parallel Seq Scan") {
            break;
        }
        node = node
            .children
            .first()
            .unwrap_or_else(|| panic!("no scan leaf in:\n{}", trace.render_tree()));
    }

    // The per-worker subtree mirrors the printed `Worker i:` lines.
    let scan_spans: Vec<_> = execute
        .children
        .iter()
        .filter(|s| s.name.starts_with("parallel scan"))
        .collect();
    assert_eq!(scan_spans.len(), 1, "{}", trace.render_tree());
    let workers = &scan_spans[0].children;
    assert_eq!(workers.len(), 4, "one span per worker");
    let span_sum: std::time::Duration = workers.iter().map(|w| w.duration).sum();
    assert_eq!(
        span_sum, scan_spans[0].duration,
        "worker spans sum to the scan subtree total"
    );
    let printed: Vec<f64> = text
        .lines()
        .filter(|l| l.trim_start().starts_with("Worker "))
        .map(|l| {
            l.split("time=")
                .nth(1)
                .unwrap()
                .trim_end_matches("ms")
                .parse()
                .unwrap()
        })
        .collect();
    assert_eq!(printed.len(), workers.len(), "{text}");
    for (w, p) in workers.iter().zip(&printed) {
        let span_ms = w.duration.as_secs_f64() * 1e3;
        assert!(
            (span_ms - p).abs() < 0.002,
            "span {span_ms:.3}ms vs printed {p:.3}ms:\n{text}"
        );
    }
}

/// The flight recorder captures completed statements according to
/// `slow_query_ms`, and both SQL surfaces (`SHOW FLIGHT_RECORDER` /
/// `mlql_flight_recorder()`) expose them.
#[test]
fn flight_recorder_respects_slow_query_ms_threshold() {
    let mut db = db();
    db.execute("CREATE TABLE t (a INT)").unwrap();
    db.execute("INSERT INTO t VALUES (1), (2), (3)").unwrap();

    // Default (0): everything is recorded.
    db.query("SELECT a FROM t WHERE a = 2").unwrap();
    let shown = db.execute("SHOW FLIGHT RECORDER").unwrap();
    assert_eq!(shown.schema.columns()[0].name, "flight_record");
    let records: Vec<String> = shown
        .rows
        .iter()
        .map(|r| r[0].as_text().unwrap().to_string())
        .collect();
    assert!(
        records.iter().any(|r| r.contains("WHERE a = 2")),
        "recorded statement visible: {records:?}"
    );
    let with_digest = records.iter().find(|r| r.contains("WHERE a = 2")).unwrap();
    assert!(with_digest.contains("\"plan_digest\":\""), "{with_digest}");
    assert!(with_digest.contains("\"trace\":{"), "{with_digest}");
    assert!(with_digest.contains("\"waits\":"), "{with_digest}");

    // Negative threshold: record nothing.
    db.execute("SET slow_query_ms = -1").unwrap();
    db.query("SELECT a FROM t WHERE a = 3").unwrap();
    let shown = db.execute("SHOW FLIGHT_RECORDER").unwrap();
    assert!(
        !shown
            .rows
            .iter()
            .any(|r| r[0].as_text().unwrap().contains("WHERE a = 3")),
        "threshold -1 must suppress recording"
    );

    // A high threshold filters fast statements too.
    db.execute("SET slow_query_ms = 60000").unwrap();
    db.query("SELECT a FROM t WHERE a = 1").unwrap();
    let shown = db.execute("SHOW FLIGHT_RECORDER").unwrap();
    assert!(
        !shown
            .rows
            .iter()
            .any(|r| r[0].as_text().unwrap().contains("WHERE a = 1")),
        "sub-threshold statements are not recorded"
    );

    // The SQL function sees the process-wide ring (ours included).
    db.execute("SET slow_query_ms = 0").unwrap();
    db.execute("CREATE TABLE dual (x INT)").unwrap();
    db.execute("INSERT INTO dual VALUES (1)").unwrap();
    let json = db.query("SELECT mlql_flight_recorder() FROM dual").unwrap()[0][0]
        .as_text()
        .unwrap()
        .to_string();
    assert!(json.starts_with('['), "{json}");
    assert!(json.contains("WHERE a = 2"), "{json}");

    // mlql_activity() renders the live view as JSON: the issuing
    // statement observes itself mid-lifecycle (the exact stage depends
    // on where expression evaluation happens, e.g. plan-time folding).
    let act = db.query("SELECT mlql_activity() FROM dual").unwrap()[0][0]
        .as_text()
        .unwrap()
        .to_string();
    assert!(act.contains("mlql_activity"), "{act}");
    assert!(act.contains("\"stage\":\""), "{act}");
}

/// Golden test for the batch execution spine: every annotated node prints
/// a `batches=` counter, the scan's count reconciles with its row count
/// under the session batch size (ceil(rows/batch_size) ≤ batches ≤ rows,
/// since producers never emit empty or oversized batches), the query-level
/// trailer and RunStats carry the root batch count, flight-recorder
/// records persist it, and `SET enable_batch = 0` pins every counter to
/// zero without changing row counts.
#[test]
fn explain_analyze_batch_counters_reconcile_with_rows() {
    let mut db = db();
    db.execute("CREATE TABLE names (name UNITEXT)").unwrap();
    for i in 0..1000 {
        db.execute(&format!(
            "INSERT INTO names VALUES (unitext('Nehru{i}','English'))"
        ))
        .unwrap();
    }
    db.execute("ANALYZE names").unwrap();
    db.execute("SET lexequal.threshold = 1").unwrap();
    db.execute("SET batch_size = 128").unwrap();
    db.execute("SET parallel_workers = 1").unwrap();

    let batches_of = |line: &str| -> u64 {
        line.split("batches=")
            .nth(1)
            .unwrap_or_else(|| panic!("no batches= in {line:?}"))
            .chars()
            .take_while(|c| c.is_ascii_digit())
            .collect::<String>()
            .parse()
            .unwrap()
    };

    let sql = "EXPLAIN ANALYZE SELECT name FROM names \
               WHERE name LEXEQUAL unitext('Nehru7','English')";
    let r = db.execute(sql).unwrap();
    let text = r.explain.expect("explain text");
    let nodes = node_actuals(&text);
    assert!(!nodes.is_empty(), "{text}");
    for (_, line) in &nodes {
        assert!(line.contains("batches="), "{line}");
    }

    // The scan leaf is batch-driven: every batch it emits is non-empty
    // and capped at batch_size, so the counter brackets against rows.
    let (scan_rows, scan_line) = nodes
        .iter()
        .find(|(_, l)| l.contains("Seq Scan on names"))
        .expect("scan node");
    assert!(*scan_rows > 0, "Nehru7 matches at least itself:\n{text}");
    let scan_batches = batches_of(scan_line);
    assert!(
        scan_batches >= scan_rows.div_ceil(128),
        "too few batches for rows={scan_rows}: {scan_line}"
    );
    assert!(scan_batches <= *scan_rows, "{scan_line}");

    // Query-level trailer and RunStats agree on the root batch count.
    let trailer = text
        .lines()
        .find(|l| l.starts_with("Actual: "))
        .unwrap_or_else(|| panic!("missing Actual: trailer:\n{text}"));
    let root_batches = batches_of(trailer);
    assert!(root_batches >= 1, "{trailer}");
    assert_eq!(r.stats.batches, root_batches, "{trailer}");

    // A plain run of the same predicate leaves a flight record carrying
    // the batch count alongside rows.
    db.query("SELECT name FROM names WHERE name LEXEQUAL unitext('Nehru7','English')")
        .unwrap();
    let shown = db.execute("SHOW FLIGHT_RECORDER").unwrap();
    let rec = shown
        .rows
        .iter()
        .map(|row| row[0].as_text().unwrap().to_string())
        .rfind(|j| j.contains("Nehru7") && !j.contains("EXPLAIN"))
        .expect("flight record of the batch-mode query");
    assert!(rec.contains("\"batches\":"), "{rec}");
    assert!(
        batches_of(&rec.replace("\"batches\":", "batches=")) >= 1,
        "{rec}"
    );

    // Row mode zeroes every batch counter but leaves rows identical.
    db.execute("SET enable_batch = 0").unwrap();
    let r2 = db.execute(sql).unwrap();
    let text2 = r2.explain.expect("explain text");
    let nodes2 = node_actuals(&text2);
    for (_, line) in &nodes2 {
        assert_eq!(batches_of(line), 0, "row mode: {line}");
    }
    let (scan_rows2, _) = nodes2
        .iter()
        .find(|(_, l)| l.contains("Seq Scan on names"))
        .expect("scan node");
    assert_eq!(scan_rows2, scan_rows, "row/batch modes agree on rows");
    assert!(text2.contains(" batches=0 "), "{text2}");
    assert_eq!(r2.stats.batches, 0);
}

/// Wait-event instrumentation: contended catalog acquisition surfaces in
/// both the per-class global histogram and the query's own wait profile.
#[test]
fn wait_events_are_charged_to_global_histograms() {
    let mut db = db();
    db.execute("CREATE TABLE t (a INT)").unwrap();
    db.execute("INSERT INTO t VALUES (1)").unwrap();
    db.query("SELECT count(*) FROM t").unwrap();
    // All five wait classes are registered up front, so the Prometheus
    // surface always shows them (count may be 0 on an idle engine).
    let prom = obs::global().render_prometheus();
    for class in [
        "mlql_wait_catalog_seconds",
        "mlql_wait_buffer_pool_seconds",
        "mlql_wait_wal_commit_seconds",
        "mlql_wait_index_read_seconds",
        "mlql_wait_omega_cache_seconds",
    ] {
        assert!(prom.contains(class), "missing {class}");
    }
}

/// Satellite fix: sub-one row estimates print as `rows=<1` instead of
/// being truncated to `rows=0` (two unique-column equality conjuncts on
/// a 20-row table estimate 20 · 1/20 · 1/20 = 0.05 rows).
#[test]
fn explain_renders_sub_one_row_estimates() {
    let mut db = db();
    db.execute("CREATE TABLE pts (a INT, b INT)").unwrap();
    for i in 0..20 {
        db.execute(&format!("INSERT INTO pts VALUES ({i}, {i})"))
            .unwrap();
    }
    db.execute("ANALYZE pts").unwrap();
    let r = db
        .execute("EXPLAIN SELECT a FROM pts WHERE a = 5 AND b = 5")
        .unwrap();
    let text = r.explain.expect("explain text");
    assert!(text.contains("rows=<1"), "{text}");
    assert!(!text.contains("rows=0)"), "{text}");
    // Whole-number estimates keep the bare integer rendering.
    let r = db.execute("EXPLAIN SELECT a FROM pts").unwrap();
    let text = r.explain.unwrap();
    assert!(text.contains("rows=20"), "{text}");
}

/// Golden test: EXPLAIN ANALYZE annotates every node with its per-loop
/// q-error, and flags nodes whose q-error exceeds `qerror_warn` with a
/// `[MISESTIMATE]` marker once statistics go stale.
#[test]
fn explain_analyze_annotates_qerror_and_flags_misestimates() {
    let mut db = db();
    db.execute("CREATE TABLE names (name UNITEXT)").unwrap();
    for i in 0..5 {
        db.execute(&format!(
            "INSERT INTO names VALUES (unitext('Nehru{i}','English'))"
        ))
        .unwrap();
    }
    db.execute("ANALYZE names").unwrap();

    // Fresh statistics: every annotated node carries a q= field near 1
    // and nothing is flagged.
    let r = db
        .execute("EXPLAIN ANALYZE SELECT name FROM names")
        .unwrap();
    let text = r.explain.expect("explain text");
    let nodes = node_actuals(&text);
    assert!(!nodes.is_empty(), "{text}");
    for (_, line) in &nodes {
        assert!(line.contains(" q="), "{line}");
    }
    assert!(!text.contains("[MISESTIMATE]"), "{text}");

    // 200 inserts later the 5-row estimate is off by 41x; a strict
    // qerror_warn flags the scan.
    for i in 0..200 {
        db.execute(&format!(
            "INSERT INTO names VALUES (unitext('Gandhi{i}','English'))"
        ))
        .unwrap();
    }
    db.execute("SET qerror_warn = 5").unwrap();
    let r = db
        .execute("EXPLAIN ANALYZE SELECT name FROM names")
        .unwrap();
    let text = r.explain.unwrap();
    let flagged: Vec<&str> = text
        .lines()
        .filter(|l| l.contains("[MISESTIMATE]"))
        .collect();
    assert!(!flagged.is_empty(), "stale stats must be flagged:\n{text}");
    assert!(
        flagged.iter().any(|l| l.contains("Seq Scan on names")),
        "the scan carries the misestimate:\n{text}"
    );
    // The printed q-error itself crosses the threshold.
    let q: f64 = flagged[0]
        .split(" q=")
        .nth(1)
        .unwrap()
        .chars()
        .take_while(|c| c.is_ascii_digit() || *c == '.')
        .collect::<String>()
        .parse()
        .unwrap();
    assert!(q > 5.0, "q={q} must exceed qerror_warn:\n{text}");

    // A permissive threshold silences the marker without touching q=.
    db.execute("SET qerror_warn = 1000").unwrap();
    let r = db
        .execute("EXPLAIN ANALYZE SELECT name FROM names")
        .unwrap();
    let text = r.explain.unwrap();
    assert!(text.contains(" q="), "{text}");
    assert!(!text.contains("[MISESTIMATE]"), "{text}");
}

/// Flight-recorder records of plain executions carry the optimizer's
/// estimates and the realized root q-error.
#[test]
fn flight_records_carry_estimates_and_qerror() {
    let mut db = db();
    db.execute("CREATE TABLE t (a INT)").unwrap();
    for i in 0..10 {
        db.execute(&format!("INSERT INTO t VALUES ({i})")).unwrap();
    }
    db.execute("ANALYZE t").unwrap();
    db.query("SELECT a FROM t WHERE a >= 0").unwrap();
    let shown = db.execute("SHOW FLIGHT_RECORDER").unwrap();
    let rec = shown
        .rows
        .iter()
        .map(|r| r[0].as_text().unwrap().to_string())
        .rfind(|j| j.contains("WHERE a >= 0"))
        .expect("flight record of the select");
    assert!(rec.contains("\"est_rows\":"), "{rec}");
    assert!(rec.contains("\"est_cost\":"), "{rec}");
    assert!(rec.contains("\"qerror\":"), "{rec}");
    // The estimates are numbers, not nulls, on a planned select.
    assert!(!rec.contains("\"est_rows\":null"), "{rec}");
    assert!(!rec.contains("\"qerror\":null"), "{rec}");
}

/// Acceptance: a mixed ψ/Ω workload populates the per-digest plan store;
/// `SHOW PLAN STATS` lists calls / mean elapsed / root q-error per plan,
/// and `mlql_plan_stats()` renders the same store with the fitted cost
/// calibration.
#[test]
fn plan_store_aggregates_mixed_psi_omega_workload() {
    let mut db = db();
    db.execute("CREATE TABLE names (name UNITEXT)").unwrap();
    for (n, lang) in [
        ("Nehru", "English"),
        ("நேரு", "Tamil"),
        ("नेहरू", "Hindi"),
        ("Gandhi", "English"),
    ] {
        db.execute(&format!(
            "INSERT INTO names VALUES (unitext('{n}','{lang}'))"
        ))
        .unwrap();
    }
    db.execute("CREATE TABLE book (id INT, category UNITEXT)")
        .unwrap();
    for (id, cat) in [(1, "History"), (2, "Historiography"), (3, "Novel")] {
        db.execute(&format!(
            "INSERT INTO book VALUES ({id}, unitext('{cat}','English'))"
        ))
        .unwrap();
    }
    db.execute("ANALYZE").unwrap();
    db.execute("SET lexequal.threshold = 2").unwrap();

    let psi = "SELECT count(*) FROM names WHERE name LEXEQUAL unitext('Nehru','English')";
    let omega = "SELECT count(*) FROM book WHERE category SEMEQUAL unitext('History','English')";
    for _ in 0..3 {
        db.query(psi).unwrap();
    }
    for _ in 0..2 {
        db.query(omega).unwrap();
    }

    let shown = db.execute("SHOW PLAN STATS").unwrap();
    let cols: Vec<&str> = shown
        .schema
        .columns()
        .iter()
        .map(|c| c.name.as_str())
        .collect();
    assert_eq!(
        cols,
        [
            "plan_digest",
            "root",
            "calls",
            "mean_ms",
            "max_ms",
            "est_cost",
            "est_rows",
            "last_rows",
            "qerror_last",
            "qerror_max"
        ]
    );
    // Sorted by calls desc: the ψ plan leads with 3 calls, the Ω plan
    // follows with 2; both realized one aggregate row.
    assert!(shown.rows.len() >= 2, "two distinct plan digests");
    let calls: Vec<i64> = shown.rows.iter().map(|r| r[2].as_int().unwrap()).collect();
    assert_eq!(calls[0], 3, "{calls:?}");
    assert!(calls.contains(&2), "{calls:?}");
    for row in shown.rows.iter().take(2) {
        assert_eq!(row[0].as_text().unwrap().len(), 16, "digest is hex16");
        assert!(row[3].as_float().unwrap() >= 0.0, "mean_ms");
        assert_eq!(row[7].as_int(), Some(1), "count(*) realizes one row");
        assert!(row[8].as_float().unwrap() >= 1.0, "qerror_last >= 1");
        assert!(row[9].as_float().unwrap() >= row[8].as_float().unwrap() - 1e-9);
    }

    // The SQL function renders the process-wide store plus calibration.
    db.execute("CREATE TABLE dual (x INT)").unwrap();
    db.execute("INSERT INTO dual VALUES (1)").unwrap();
    let json = db.query("SELECT mlql_plan_stats() FROM dual").unwrap()[0][0]
        .as_text()
        .unwrap()
        .to_string();
    assert!(json.contains("\"plans\":["), "{json}");
    assert!(json.contains("\"plan_digest\":\""), "{json}");
    assert!(json.contains("\"calibration\":{"), "{json}");
    assert!(json.contains("\"loglog_pearson\":"), "{json}");
}

/// Acceptance: repeated scans whose realized q-error stays above
/// `qerror_warn` raise a stale-statistics advisory naming the table; a
/// bare `ANALYZE` refreshes statistics and clears it.
#[test]
fn stale_statistics_advisory_raises_and_analyze_clears_it() {
    let mut db = db();
    db.execute("CREATE TABLE skew (a INT)").unwrap();
    for i in 0..5 {
        db.execute(&format!("INSERT INTO skew VALUES ({i})"))
            .unwrap();
    }
    db.execute("ANALYZE skew").unwrap();
    // The table then grows 100x without a re-ANALYZE.
    for i in 5..500 {
        db.execute(&format!("INSERT INTO skew VALUES ({i})"))
            .unwrap();
    }
    db.execute("SET qerror_warn = 4").unwrap();

    let advisories_shown = |db: &mut Database| {
        let r = db.execute("SHOW ADVISORIES").unwrap();
        r.rows
            .iter()
            .map(|row| {
                (
                    row[0].as_text().unwrap().to_string(),
                    row[1].as_float().unwrap(),
                    row[3].as_text().unwrap().to_string(),
                )
            })
            .collect::<Vec<_>>()
    };

    let raised_before = obs::metrics().stats_advisories_total.get();
    // The advisor wants a full window of consecutive over-threshold
    // scans before raising.
    db.query("SELECT a FROM skew").unwrap();
    assert!(
        advisories_shown(&mut db).is_empty(),
        "one bad scan is not yet advisory-worthy"
    );
    db.query("SELECT a FROM skew").unwrap();
    db.query("SELECT a FROM skew").unwrap();
    let advs = advisories_shown(&mut db);
    assert_eq!(advs.len(), 1, "{advs:?}");
    let (table, qerror, recommendation) = &advs[0];
    assert_eq!(table, "skew");
    assert!(*qerror > 4.0, "q={qerror} observed over the window");
    assert_eq!(recommendation, "ANALYZE skew");
    assert_eq!(
        obs::metrics().stats_advisories_total.get(),
        raised_before + 1,
        "edge-triggered counter"
    );
    // Re-running the scan does not re-count the same standing advisory.
    db.query("SELECT a FROM skew").unwrap();
    assert_eq!(
        obs::metrics().stats_advisories_total.get(),
        raised_before + 1
    );

    // The function surface sees it too.
    db.execute("CREATE TABLE dual (x INT)").unwrap();
    db.execute("INSERT INTO dual VALUES (1)").unwrap();
    let json = db.query("SELECT mlql_advisories() FROM dual").unwrap()[0][0]
        .as_text()
        .unwrap()
        .to_string();
    assert!(json.contains("\"table\":\"skew\""), "{json}");
    assert!(json.contains("ANALYZE skew"), "{json}");

    // The recommended remediation — a bare ANALYZE — clears it.
    db.execute("ANALYZE").unwrap();
    assert!(advisories_shown(&mut db).is_empty(), "cleared by ANALYZE");
    // With fresh statistics the estimate is honest again, so the
    // advisory stays down even after another full window of scans.
    for _ in 0..4 {
        db.query("SELECT a FROM skew").unwrap();
    }
    assert!(advisories_shown(&mut db).is_empty());
}
