//! Multi-session tests: concurrent sessions over one shared [`Engine`],
//! DDL and INSERTs interleaved with LexEQUAL/SemEQUAL reads, and
//! plan-cache invalidation across sessions.

use mlql::kernel::{Database, Error};
use mlql::mural::install;
use std::sync::atomic::{AtomicBool, Ordering};

fn db() -> Database {
    let mut db = Database::new_in_memory();
    install(&mut db).unwrap();
    db
}

/// Readers run ψ/Ω selects from their own sessions while the writer
/// interleaves INSERTs and DDL.  No read may observe a torn row, counts
/// must be monotone (insert-only workload), and final counts must be
/// exact.
#[test]
fn ddl_and_inserts_interleave_with_multilingual_reads() {
    let mut db = db();
    db.execute("CREATE TABLE book (id INT, author UNITEXT, category UNITEXT, price FLOAT)")
        .unwrap();
    db.execute("SET lexequal.threshold = 2").unwrap();
    for (id, author, lang) in [
        (1, "Nehru", "English"),
        (2, "नेहरू", "Hindi"),
        (3, "நேரு", "Tamil"),
    ] {
        db.execute(&format!(
            "INSERT INTO book VALUES ({id}, unitext('{author}','{lang}'), unitext('History','English'), {id}.0)"
        ))
        .unwrap();
    }
    db.execute("ANALYZE book").unwrap();

    const EXTRA: i64 = 24;
    let stop = AtomicBool::new(false);
    // Sessions are created up front (they copy the writer's vars, so the
    // lexequal threshold carries over) and moved into the reader threads.
    let readers: Vec<_> = (0..4).map(|_| db.connect()).collect();

    std::thread::scope(|scope| {
        let stop = &stop;
        let mut handles = Vec::new();
        for mut session in readers {
            handles.push(scope.spawn(move || {
                let mut last_psi = 0i64;
                let mut iters = 0u64;
                while !stop.load(Ordering::Relaxed) {
                    // ψ: phonetic match across three scripts.
                    let psi = session
                        .query("SELECT count(*) FROM book WHERE author LEXEQUAL unitext('Nehru','English')")
                        .unwrap()[0][0]
                        .as_int()
                        .unwrap();
                    assert!(psi >= last_psi, "ψ count went backwards: {last_psi} -> {psi}");
                    assert!((3..=3 + EXTRA).contains(&psi), "ψ count out of range: {psi}");
                    last_psi = psi;
                    // Ω: everything under History.
                    let omega = session
                        .query("SELECT count(*) FROM book WHERE category SEMEQUAL unitext('History','English')")
                        .unwrap()[0][0]
                        .as_int()
                        .unwrap();
                    assert!(omega >= 3, "Ω count dropped below the seed rows: {omega}");
                    // Torn-row check: the writer maintains price == id for
                    // every inserted row; a read must never see a half
                    // written pair.
                    for row in session
                        .query("SELECT id, price FROM book WHERE id >= 1000")
                        .unwrap()
                    {
                        let (id, price) = (row[0].as_int().unwrap(), row[1].as_float().unwrap());
                        assert_eq!(price, id as f64, "torn row: id={id} price={price}");
                    }
                    iters += 1;
                }
                iters
            }));
        }

        // Writer: inserts interleaved with DDL from the main session.
        for i in 0..EXTRA {
            let id = 1000 + i;
            db.execute(&format!(
                "INSERT INTO book VALUES ({id}, unitext('Nehru','English'), unitext('History','English'), {id}.0)"
            ))
            .unwrap();
            match i {
                6 => {
                    db.execute("CREATE TABLE scratch (id INT)").unwrap();
                }
                12 => {
                    db.execute("CREATE INDEX book_id ON book (id) USING btree")
                        .unwrap();
                }
                18 => {
                    db.execute("ANALYZE book").unwrap();
                }
                _ => {}
            }
            std::thread::sleep(std::time::Duration::from_millis(2));
        }
        stop.store(true, Ordering::Relaxed);
        let total: u64 = handles.into_iter().map(|h| h.join().unwrap()).sum();
        assert!(total > 0, "readers never completed an iteration");
    });

    // Final state is exact in every session.
    let mut fresh = db.connect();
    let psi = fresh
        .query("SELECT count(*) FROM book WHERE author LEXEQUAL unitext('Nehru','English')")
        .unwrap()[0][0]
        .as_int()
        .unwrap();
    assert_eq!(psi, 3 + EXTRA);
}

/// DDL or ANALYZE in one session must invalidate plans another session
/// cached; re-execution replans and stays correct.
#[test]
fn plan_cache_invalidates_across_sessions() {
    let mut db = db();
    db.execute("CREATE TABLE t (id INT)").unwrap();
    db.execute("INSERT INTO t VALUES (1), (2), (3)").unwrap();

    let metrics = mlql::kernel::obs::metrics();
    let mut s1 = db.connect();
    let q = "SELECT count(*) FROM t WHERE id >= 2";
    assert_eq!(s1.query(q).unwrap()[0][0].as_int(), Some(2));
    let hits0 = metrics.plan_cache_hits_total.get();
    assert_eq!(s1.query(q).unwrap()[0][0].as_int(), Some(2));
    assert!(
        metrics.plan_cache_hits_total.get() > hits0,
        "repeat did not hit the cache"
    );

    // DDL in a *different* session flushes the shared cache.
    let mut s2 = db.connect();
    s2.execute("CREATE TABLE u (id INT)").unwrap();
    assert_eq!(db.engine().cached_plan_count(), 0);

    // s1 replans transparently and stays correct; data changes from s2
    // are visible through the re-cached plan.
    assert_eq!(s1.query(q).unwrap()[0][0].as_int(), Some(2));
    s2.execute("INSERT INTO t VALUES (4)").unwrap();
    assert_eq!(s1.query(q).unwrap()[0][0].as_int(), Some(3));

    // ANALYZE invalidates too.
    assert!(db.engine().cached_plan_count() > 0);
    s2.execute("ANALYZE t").unwrap();
    assert_eq!(db.engine().cached_plan_count(), 0);

    // The cache counters are visible through SHOW STATS.
    let shown = s1.execute("SHOW stats").unwrap();
    let text: Vec<String> = shown
        .rows
        .iter()
        .map(|r| format!("{} {}", r[0], r[1]))
        .collect();
    let text = text.join("\n");
    assert!(
        text.contains("mlql_plan_cache_hits_total"),
        "SHOW STATS missing cache hits:\n{text}"
    );
    assert!(
        text.contains("mlql_plan_cache_invalidations_total"),
        "{text}"
    );
}

/// The `max_rows` guard is session-scoped and raises a typed error.
#[test]
fn max_rows_guard_is_per_session() {
    let mut db = db();
    db.execute("CREATE TABLE t (id INT)").unwrap();
    for i in 0..50 {
        db.execute(&format!("INSERT INTO t VALUES ({i})")).unwrap();
    }
    let mut limited = db.connect();
    limited.execute("SET max_rows = 10").unwrap();
    let err = limited.query("SELECT id FROM t").unwrap_err();
    assert!(
        matches!(err, Error::MaxRows { limit: 10 }),
        "unexpected error: {err}"
    );
    // Aggregates under the limit still work, and the default session is
    // unaffected.
    assert_eq!(
        limited.query("SELECT count(*) FROM t").unwrap()[0][0].as_int(),
        Some(50)
    );
    assert_eq!(db.query("SELECT id FROM t").unwrap().len(), 50);
}

/// Script failures report the 1-based ordinal and a snippet of the
/// failing statement.
#[test]
fn script_errors_locate_the_failing_statement() {
    let mut db = db();
    let err = db
        .execute_script(
            "CREATE TABLE t (id INT); INSERT INTO t VALUES (1); INSERT INTO t VALUES ('oops'); SELECT 1",
        )
        .unwrap_err();
    match err {
        Error::Script {
            ordinal,
            ref snippet,
            ..
        } => {
            assert_eq!(ordinal, 3);
            assert!(snippet.contains("oops"), "snippet: {snippet}");
        }
        other => panic!("expected Error::Script, got: {other}"),
    }
    // Statements before the failure committed.
    assert_eq!(
        db.query("SELECT count(*) FROM t").unwrap()[0][0].as_int(),
        Some(1)
    );
}

/// A CREATE INDEX whose heap back-fill fails must not leave a partially
/// built index registered — a later query would pick it and silently
/// miss rows.
#[test]
fn failed_index_backfill_unregisters_index() {
    let mut db = db();
    db.execute("CREATE TABLE t (id INT, name UNITEXT)").unwrap();
    db.execute("INSERT INTO t VALUES (1, unitext('Nehru','English'))")
        .unwrap();
    // mtree keys must be unitext, so back-filling from the INT column
    // fails after the index is registered in the catalog.
    assert!(db
        .execute("CREATE INDEX t_bad ON t (id) USING mtree")
        .is_err());
    {
        let catalog = db.catalog();
        let meta = catalog.table("t").unwrap();
        assert!(
            catalog.indexes_of(meta.id).is_empty(),
            "failed back-fill left a partial index registered"
        );
    }
    // The name is free again: a valid definition succeeds, and queries
    // through it see every row.
    db.execute("CREATE INDEX t_bad ON t (name) USING mtree")
        .unwrap();
    db.execute("SET lexequal.threshold = 2").unwrap();
    assert_eq!(
        db.query("SELECT count(*) FROM t WHERE name LEXEQUAL unitext('Nehru','English')")
            .unwrap()[0][0]
            .as_int(),
        Some(1)
    );
}

/// Ω closure-cache invalidation is engine-wide: a taxonomy edit made
/// through one session's view of the shared [`SemState`] must be visible
/// to every other session immediately — no session may keep matching
/// against a memoized closure of the old hierarchy.
#[test]
fn omega_cache_invalidation_crosses_sessions() {
    let mut db = Database::new_in_memory();
    let mural = install(&mut db).unwrap();
    db.execute("CREATE TABLE docs (id INT, category UNITEXT)")
        .unwrap();
    db.execute("INSERT INTO docs VALUES (1, unitext('Fiction','English'))")
        .unwrap();
    db.execute("INSERT INTO docs VALUES (2, unitext('Biography','English'))")
        .unwrap();

    let omega = "SELECT count(*) FROM docs WHERE category SEMEQUAL unitext('History','English')";
    let mut s1 = db.connect();
    let mut s2 = db.connect();
    // Pin both sessions to the closure-walk fallback: the interval index
    // (the default) never memoizes closures, and this test is about the
    // shared *closure cache* invalidation protocol.
    s1.execute("SET enable_omega_intervals = 0").unwrap();
    s2.execute("SET enable_omega_intervals = 0").unwrap();
    // Both sessions warm the shared cache: only Biography is under History.
    assert_eq!(s1.query(omega).unwrap()[0][0].as_int(), Some(1));
    assert_eq!(s2.query(omega).unwrap()[0][0].as_int(), Some(1));
    assert!(!mural.sem.cache.is_empty(), "closure memoized");

    // Taxonomy INSERT (graft Fiction under History), conceptually issued
    // by session 1: the shared cache is invalidated...
    let en = mural.langs.id_of("English");
    let history = mural
        .sem
        .synsets_of(&mlql::unitext::UniText::compose("History", en))[0];
    let fiction = mural
        .sem
        .synsets_of(&mlql::unitext::UniText::compose("Fiction", en))[0];
    mural.sem.add_hyponym(history, fiction);
    assert!(mural.sem.cache.is_empty(), "mutation must clear the cache");
    // ...and *both* sessions see the new edge at once.
    assert_eq!(s1.query(omega).unwrap()[0][0].as_int(), Some(2));
    assert_eq!(s2.query(omega).unwrap()[0][0].as_int(), Some(2));

    // Taxonomy DELETE: the edge goes away for everyone, again at once.
    assert!(mural.sem.remove_hyponym(history, fiction));
    assert_eq!(s2.query(omega).unwrap()[0][0].as_int(), Some(1));
    assert_eq!(s1.query(omega).unwrap()[0][0].as_int(), Some(1));
}

/// Regression: DDL between taxonomy edits must not resurrect a stale
/// closure.  The failure mode guarded against: DDL flushes the *plan*
/// cache, a replanned query re-runs, and an unvalidated *closure* cache
/// would happily serve the pre-edit closure to the fresh plan.
#[test]
fn omega_cache_never_serves_stale_closure_after_ddl() {
    let mut db = Database::new_in_memory();
    let mural = install(&mut db).unwrap();
    db.execute("CREATE TABLE docs (id INT, category UNITEXT)")
        .unwrap();
    db.execute("INSERT INTO docs VALUES (1, unitext('Fiction','English'))")
        .unwrap();
    let omega = "SELECT count(*) FROM docs WHERE category SEMEQUAL unitext('History','English')";
    let mut s = db.connect();
    // Closure-walk fallback: this regression is about the *closure cache*
    // revalidating across taxonomy versions, which the interval index
    // (the default path) bypasses entirely.
    s.execute("SET enable_omega_intervals = 0").unwrap();
    assert_eq!(s.query(omega).unwrap()[0][0].as_int(), Some(0));

    let en = mural.langs.id_of("English");
    let history = mural
        .sem
        .synsets_of(&mlql::unitext::UniText::compose("History", en))[0];
    let fiction = mural
        .sem
        .synsets_of(&mlql::unitext::UniText::compose("Fiction", en))[0];
    mural.sem.add_hyponym(history, fiction);
    // DDL from another session: flushes plans, replans everything.
    db.execute("CREATE TABLE scratch (id INT)").unwrap();
    db.execute("ANALYZE docs").unwrap();
    // The replanned query must see the post-edit taxonomy...
    assert_eq!(s.query(omega).unwrap()[0][0].as_int(), Some(1));
    // ...and after the edge is dropped plus more DDL, the match must not
    // come back from any cached closure.
    mural.sem.remove_hyponym(history, fiction);
    db.execute("CREATE INDEX docs_cat ON docs (category) USING mtree")
        .unwrap();
    assert_eq!(s.query(omega).unwrap()[0][0].as_int(), Some(0));
    let (hits, misses) = mural.sem.cache.stats();
    assert!(
        misses >= 3,
        "each taxonomy version computed afresh: {hits}/{misses}"
    );
}
