//! Isolation-anomaly suite for MVCC snapshot isolation: each classic
//! anomaly (dirty read, non-repeatable read, lost update, write-write
//! conflict, phantom-free snapshot reads over ψ/Ω operators) gets a
//! two-session test against one shared [`Engine`], and a property test
//! fuzzes random interleavings of three transactional sessions against a
//! serial oracle that replays only the committed transactions.  The
//! multilingual operators are first-class citizens here: a LexEQUAL or
//! SemEQUAL scan inside a snapshot must not see a concurrent lexicon
//! INSERT until its own transaction ends.

use mlql::kernel::{Database, Error, Session};
use mlql::mural::install;
use mlql::mural::types::unitext_datum;
use proptest::prelude::*;
use std::collections::BTreeMap;

/// Worker counts × batch modes every read-side assertion is re-checked
/// at: snapshot semantics must be identical through the serial executor,
/// the morsel-parallel gather, and the batch spine.
const WORKER_COUNTS: [usize; 3] = [1, 2, 4];
const BATCH_MODES: [&str; 2] = ["SET enable_batch = 0", "SET enable_batch = 1"];

fn plain_db() -> Database {
    Database::new_in_memory()
}

fn mural_db() -> (Database, mlql::mural::Mural) {
    let mut db = Database::new_in_memory();
    let mural = install(&mut db).unwrap();
    (db, mural)
}

fn int(s: &mut Session, sql: &str) -> i64 {
    s.query(sql).unwrap()[0][0].as_int().unwrap()
}

/// Sorted `k|v` rows of a `kv(k INT, v INT)`-shaped result.
fn sorted_rows(s: &mut Session, sql: &str) -> Vec<String> {
    let mut out: Vec<String> = s
        .query(sql)
        .unwrap()
        .iter()
        .map(|row| {
            row.iter()
                .map(|d| d.to_string())
                .collect::<Vec<_>>()
                .join("|")
        })
        .collect();
    out.sort();
    out
}

// ------------------------------------------------------------- anomalies

/// Dirty read: uncommitted writes (INSERT, UPDATE and DELETE) are
/// invisible to every other session — autocommit readers and open
/// snapshots alike — until COMMIT.
#[test]
fn dirty_reads_are_never_observed() {
    let db = plain_db();
    let mut w = db.connect();
    w.execute("CREATE TABLE kv (k INT, v INT)").unwrap();
    w.execute("INSERT INTO kv VALUES (1, 10), (2, 20)").unwrap();

    let mut r = db.connect();
    w.execute("BEGIN").unwrap();
    w.execute("INSERT INTO kv VALUES (3, 30)").unwrap();
    w.execute("UPDATE kv SET v = 11 WHERE k = 1").unwrap();
    w.execute("DELETE FROM kv WHERE k = 2").unwrap();
    // The writer sees its own effects...
    assert_eq!(
        sorted_rows(&mut w, "SELECT k, v FROM kv"),
        vec!["1|11", "3|30"]
    );
    // ...but no other session does, whether autocommit or snapshotted.
    assert_eq!(
        sorted_rows(&mut r, "SELECT k, v FROM kv"),
        vec!["1|10", "2|20"],
        "autocommit reader saw a dirty write"
    );
    let mut snap = db.connect();
    snap.execute("BEGIN").unwrap();
    assert_eq!(
        sorted_rows(&mut snap, "SELECT k, v FROM kv"),
        vec!["1|10", "2|20"],
        "snapshot reader saw a dirty write"
    );
    snap.execute("COMMIT").unwrap();
    w.execute("COMMIT").unwrap();
    assert_eq!(
        sorted_rows(&mut r, "SELECT k, v FROM kv"),
        vec!["1|11", "3|30"]
    );
}

/// Non-repeatable read: a snapshot pins every read in the transaction to
/// the state at BEGIN, even as another session commits around it; the
/// new state appears only after the snapshot ends.
#[test]
fn reads_are_repeatable_within_a_transaction() {
    let db = plain_db();
    let mut a = db.connect();
    a.execute("CREATE TABLE kv (k INT, v INT)").unwrap();
    a.execute("INSERT INTO kv VALUES (1, 10)").unwrap();

    a.execute("BEGIN").unwrap();
    assert_eq!(int(&mut a, "SELECT v FROM kv WHERE k = 1"), 10);

    let mut b = db.connect();
    b.execute("UPDATE kv SET v = 99 WHERE k = 1").unwrap();
    b.execute("INSERT INTO kv VALUES (2, 20)").unwrap();
    // B's commits are live for fresh snapshots...
    let mut fresh = db.connect();
    assert_eq!(int(&mut fresh, "SELECT count(*) FROM kv"), 2);
    // ...but A keeps reading its own snapshot, however often it asks.
    for _ in 0..3 {
        assert_eq!(
            int(&mut a, "SELECT v FROM kv WHERE k = 1"),
            10,
            "non-repeatable read inside a snapshot"
        );
        assert_eq!(int(&mut a, "SELECT count(*) FROM kv"), 1);
    }
    a.execute("COMMIT").unwrap();
    assert_eq!(int(&mut a, "SELECT v FROM kv WHERE k = 1"), 99);
    assert_eq!(int(&mut a, "SELECT count(*) FROM kv"), 2);
}

/// Lost update: A snapshots, B updates the same row and commits, then A
/// tries to update — first-updater-wins must refuse A with a typed
/// serialization error instead of silently overwriting B's committed
/// write with a value computed from the stale snapshot.
#[test]
fn lost_updates_raise_serialization_errors() {
    let db = plain_db();
    let mut a = db.connect();
    a.execute("CREATE TABLE acct (id INT, bal INT)").unwrap();
    a.execute("INSERT INTO acct VALUES (1, 100)").unwrap();

    a.execute("BEGIN").unwrap();
    assert_eq!(int(&mut a, "SELECT bal FROM acct WHERE id = 1"), 100);

    let mut b = db.connect();
    b.execute("BEGIN").unwrap();
    b.execute("UPDATE acct SET bal = 150 WHERE id = 1").unwrap();
    b.execute("COMMIT").unwrap();

    let err = a
        .execute("UPDATE acct SET bal = 120 WHERE id = 1")
        .unwrap_err();
    assert!(
        matches!(err, Error::Serialization(_)),
        "expected a serialization conflict, got: {err}"
    );
    // The failed transaction rejects further statements until it ends.
    let err = a.query("SELECT bal FROM acct WHERE id = 1").unwrap_err();
    assert!(err.to_string().contains("aborted"), "{err}");
    a.execute("ROLLBACK").unwrap();
    // B's update survived; nothing was lost.
    assert_eq!(int(&mut a, "SELECT bal FROM acct WHERE id = 1"), 150);
}

/// Write-write conflict between two *open* transactions: the first
/// updater stamps the version, the second fails immediately (no
/// waiting), and COMMIT of the failed transaction degrades to rollback.
#[test]
fn first_updater_wins_between_open_transactions() {
    let db = plain_db();
    let metrics = mlql::kernel::obs::metrics();
    let conflicts0 = metrics.txn_conflicts_total.get();
    let mut a = db.connect();
    a.execute("CREATE TABLE kv (k INT, v INT)").unwrap();
    a.execute("INSERT INTO kv VALUES (1, 10)").unwrap();

    let mut b = db.connect();
    a.execute("BEGIN").unwrap();
    b.execute("BEGIN").unwrap();
    a.execute("UPDATE kv SET v = 11 WHERE k = 1").unwrap();
    // B is second to the row: refused at once, not blocked until A ends.
    let err = b.execute("UPDATE kv SET v = 12 WHERE k = 1").unwrap_err();
    assert!(matches!(err, Error::Serialization(_)), "{err}");
    assert!(
        metrics.txn_conflicts_total.get() > conflicts0,
        "conflict counter must record the refusal"
    );
    // DELETE collides with the same stamp.
    let mut c = db.connect();
    c.execute("BEGIN").unwrap();
    let err = c.execute("DELETE FROM kv WHERE k = 1").unwrap_err();
    assert!(matches!(err, Error::Serialization(_)), "{err}");
    c.execute("ROLLBACK").unwrap();
    // COMMIT of the failed transaction is a clean rollback, not an error.
    b.execute("COMMIT").unwrap();
    a.execute("COMMIT").unwrap();
    assert_eq!(int(&mut a, "SELECT v FROM kv WHERE k = 1"), 11);
    // With A committed and B/C gone, the row is writable again.
    b.execute("UPDATE kv SET v = 13 WHERE k = 1").unwrap();
    assert_eq!(int(&mut a, "SELECT v FROM kv WHERE k = 1"), 13);
}

/// ROLLBACK restores visibility exactly: deleted rows come back, updated
/// rows revert, inserted rows vanish — in the rolling-back session and
/// every other one.
#[test]
fn rollback_restores_visibility() {
    let db = plain_db();
    let mut a = db.connect();
    a.execute("CREATE TABLE kv (k INT, v INT)").unwrap();
    a.execute("INSERT INTO kv VALUES (1, 10), (2, 20)").unwrap();

    a.execute("BEGIN").unwrap();
    a.execute("DELETE FROM kv WHERE k = 1").unwrap();
    a.execute("UPDATE kv SET v = 21 WHERE k = 2").unwrap();
    a.execute("INSERT INTO kv VALUES (3, 30)").unwrap();
    assert_eq!(
        sorted_rows(&mut a, "SELECT k, v FROM kv"),
        vec!["2|21", "3|30"]
    );
    a.execute("ROLLBACK").unwrap();
    let expect = vec!["1|10".to_string(), "2|20".to_string()];
    assert_eq!(
        sorted_rows(&mut a, "SELECT k, v FROM kv"),
        expect,
        "own session after rollback"
    );
    let mut other = db.connect();
    assert_eq!(
        sorted_rows(&mut other, "SELECT k, v FROM kv"),
        expect,
        "other session after rollback"
    );
    // The dead versions stay dead across a later write transaction too.
    a.execute("BEGIN").unwrap();
    a.execute("UPDATE kv SET v = 11 WHERE k = 1").unwrap();
    a.execute("COMMIT").unwrap();
    assert_eq!(
        sorted_rows(&mut other, "SELECT k, v FROM kv"),
        vec!["1|11", "2|20"]
    );
}

/// Read-your-own-writes: inside a transaction, a session sees its own
/// uncommitted inserts, updates and deletes layered over its snapshot —
/// including updates of rows it inserted moments earlier.
#[test]
fn transactions_read_their_own_writes() {
    let db = plain_db();
    let mut a = db.connect();
    a.execute("CREATE TABLE kv (k INT, v INT)").unwrap();
    a.execute("INSERT INTO kv VALUES (1, 10)").unwrap();

    a.execute("BEGIN").unwrap();
    a.execute("INSERT INTO kv VALUES (2, 20)").unwrap();
    assert_eq!(int(&mut a, "SELECT count(*) FROM kv"), 2);
    a.execute("UPDATE kv SET v = 21 WHERE k = 2").unwrap();
    assert_eq!(int(&mut a, "SELECT v FROM kv WHERE k = 2"), 21);
    a.execute("UPDATE kv SET v = 22 WHERE k = 2").unwrap();
    assert_eq!(int(&mut a, "SELECT v FROM kv WHERE k = 2"), 22);
    a.execute("DELETE FROM kv WHERE k = 1").unwrap();
    assert_eq!(
        sorted_rows(&mut a, "SELECT k, v FROM kv"),
        vec!["2|22"],
        "own writes must layer over the snapshot"
    );
    a.execute("COMMIT").unwrap();
    let mut other = db.connect();
    assert_eq!(sorted_rows(&mut other, "SELECT k, v FROM kv"), vec!["2|22"]);
}

// --------------------------------------------- multilingual operator reads

/// A ψ (LexEQUAL) scan inside an open snapshot must not see a concurrent
/// committed lexicon INSERT until its own transaction ends — at every
/// worker count and through both executors, over a table big enough that
/// the planner genuinely parallelizes the scan.
#[test]
fn psi_scan_snapshot_ignores_concurrent_lexicon_inserts() {
    let (mut db, mural) = mural_db();
    db.execute("CREATE TABLE names (name UNITEXT)").unwrap();
    let data = mlql::datagen::names_dataset(
        &mural.langs,
        &mlql::datagen::NamesConfig {
            records: 1400,
            noise: 0.25,
            seed: 17,
            ..Default::default()
        },
    );
    for rec in data {
        db.insert_row("names", vec![unitext_datum(mural.unitext_type, &rec.name)])
            .unwrap();
    }
    db.execute("ANALYZE names").unwrap();

    let psi = "SELECT count(*) FROM names WHERE name LEXEQUAL unitext('Nehru','English')";
    let mut a = db.connect();
    a.execute("SET lexequal.threshold = 2").unwrap();
    a.execute("BEGIN").unwrap();
    let before = int(&mut a, psi);

    // A concurrent session inserts matching lexicon entries across three
    // scripts and (auto)commits each one.
    const EXTRA: i64 = 3;
    let mut b = db.connect();
    for (name, lang) in [("Nehru", "English"), ("नेहरू", "Hindi"), ("நேரு", "Tamil")]
    {
        b.execute(&format!(
            "INSERT INTO names VALUES (unitext('{name}','{lang}'))"
        ))
        .unwrap();
    }
    // Fresh snapshots see them immediately...
    let mut fresh = db.connect();
    fresh.execute("SET lexequal.threshold = 2").unwrap();
    assert_eq!(int(&mut fresh, psi), before + EXTRA);
    // ...while A's snapshot stays pinned, whatever the executor shape.
    for &w in &WORKER_COUNTS {
        a.execute(&format!("SET parallel_workers = {w}")).unwrap();
        for batch in BATCH_MODES {
            a.execute(batch).unwrap();
            assert_eq!(
                int(&mut a, psi),
                before,
                "ψ snapshot leaked at workers={w} [{batch}]"
            );
        }
    }
    a.execute("COMMIT").unwrap();
    assert_eq!(int(&mut a, psi), before + EXTRA);
}

/// The same pin for Ω (SemEQUAL) closure probes: rows categorized under
/// the probe's subtree that commit mid-transaction stay invisible to the
/// open snapshot at every worker count and batch mode.
#[test]
fn omega_scan_snapshot_ignores_concurrent_inserts() {
    let (mut db, mural) = mural_db();
    db.execute("CREATE TABLE docs (id INT, category UNITEXT)")
        .unwrap();
    let cats = [
        ("History", "English"),
        ("Biography", "English"),
        ("Fiction", "English"),
        ("Histoire", "French"),
    ];
    for i in 0..1200i64 {
        let (w, l) = cats[i as usize % cats.len()];
        let v = mlql::unitext::UniText::compose(w, mural.langs.id_of(l));
        db.insert_row(
            "docs",
            vec![
                mlql::kernel::Datum::Int(i),
                unitext_datum(mural.unitext_type, &v),
            ],
        )
        .unwrap();
    }
    db.execute("ANALYZE docs").unwrap();

    let omega = "SELECT count(*) FROM docs WHERE category SEMEQUAL unitext('History','English')";
    let mut a = db.connect();
    a.execute("BEGIN").unwrap();
    let before = int(&mut a, omega);
    assert!(before > 0, "probe must select something");

    let mut b = db.connect();
    b.execute("BEGIN").unwrap();
    for id in [9001i64, 9002] {
        b.execute(&format!(
            "INSERT INTO docs VALUES ({id}, unitext('Biography','English'))"
        ))
        .unwrap();
    }
    // Still uncommitted: invisible everywhere.
    let mut fresh = db.connect();
    assert_eq!(int(&mut fresh, omega), before);
    b.execute("COMMIT").unwrap();
    // Committed: fresh snapshots count them, A's snapshot does not.
    assert_eq!(int(&mut fresh, omega), before + 2);
    for &w in &WORKER_COUNTS {
        a.execute(&format!("SET parallel_workers = {w}")).unwrap();
        for batch in BATCH_MODES {
            a.execute(batch).unwrap();
            assert_eq!(
                int(&mut a, omega),
                before,
                "Ω snapshot leaked at workers={w} [{batch}]"
            );
        }
    }
    a.execute("COMMIT").unwrap();
    assert_eq!(int(&mut a, omega), before + 2);
}

// ------------------------------------------------------------ proptest

/// One statement of a transactional session in the interleaving fuzzer.
#[derive(Debug, Clone)]
enum Op {
    Insert(i64, i64),
    Update(i64, i64),
    Delete(i64),
}

/// The serial oracle: a bag of `(k, v)` rows with SQL UPDATE/DELETE
/// semantics (all rows matching `k` are touched).
fn apply(model: &mut BTreeMap<i64, Vec<i64>>, ops: &[Op]) {
    for op in ops {
        match *op {
            Op::Insert(k, v) => model.entry(k).or_default().push(v),
            Op::Update(k, v) => {
                if let Some(vs) = model.get_mut(&k) {
                    vs.iter_mut().for_each(|slot| *slot = v);
                }
            }
            Op::Delete(k) => {
                model.remove(&k);
            }
        }
    }
}

fn model_rows(model: &BTreeMap<i64, Vec<i64>>) -> Vec<String> {
    let mut out: Vec<String> = model
        .iter()
        .flat_map(|(k, vs)| vs.iter().map(move |v| format!("{k}|{v}")))
        .collect();
    out.sort();
    out
}

/// Keys session `i` (of `SESSIONS`) may touch: its residue class of the
/// pre-seeded keys plus a private high range.  Disjoint ownership means
/// no interleaving can hit a write-write conflict, so *every* statement
/// must succeed and the final state must equal the serial replay of the
/// committed transactions — pure snapshot semantics, no tiebreaks.
const SESSIONS: usize = 3;
const BASE_KEYS: i64 = 12;

fn owned_key(session: usize, slot: i64) -> i64 {
    if slot < 4 {
        // Pre-seeded rows: k in 0..BASE_KEYS with k % SESSIONS == session.
        slot * SESSIONS as i64 + session as i64
    } else {
        // Private insert range, far from the seeds.
        1000 * (session as i64 + 1) + slot
    }
}

fn op_strategy(session: usize) -> impl Strategy<Value = Op> {
    let slot = 0i64..8;
    prop_oneof![
        (slot.clone(), 0i64..100).prop_map(move |(s, v)| Op::Insert(owned_key(session, s), v)),
        (slot.clone(), 0i64..100).prop_map(move |(s, v)| Op::Update(owned_key(session, s), v)),
        slot.prop_map(move |s| Op::Delete(owned_key(session, s))),
    ]
}

/// All mutable pieces one fuzzer step needs; separated from the generated
/// inputs so a plain fn can borrow everything at once.
struct FuzzRun {
    sessions: Vec<Session>,
    /// Next statement index per session into `BEGIN, ops…, terminator`.
    cursor: [usize; SESSIONS],
    done: [bool; SESSIONS],
    model: BTreeMap<i64, Vec<i64>>,
    checker: Session,
}

/// Execute session `i`'s next statement (if any).  When the terminator
/// runs, the committed transaction is applied to the oracle and a fresh
/// snapshot is checked against it: no interleaving may ever expose a
/// half-applied transaction.
fn fuzz_step(run: &mut FuzzRun, i: usize, ops: &[Vec<Op>; SESSIONS], commits: &[bool; SESSIONS]) {
    if run.done[i] {
        return;
    }
    let pos = run.cursor[i];
    run.cursor[i] += 1;
    let s = &mut run.sessions[i];
    if pos == 0 {
        s.execute("BEGIN").unwrap();
        return;
    }
    if let Some(op) = ops[i].get(pos - 1) {
        let sql = match *op {
            Op::Insert(k, v) => format!("INSERT INTO kv VALUES ({k}, {v})"),
            Op::Update(k, v) => format!("UPDATE kv SET v = {v} WHERE k = {k}"),
            Op::Delete(k) => format!("DELETE FROM kv WHERE k = {k}"),
        };
        // Disjoint partitions: a conflict here is an engine bug.
        s.execute(&sql).unwrap();
        return;
    }
    s.execute(if commits[i] { "COMMIT" } else { "ROLLBACK" })
        .unwrap();
    run.done[i] = true;
    if commits[i] {
        apply(&mut run.model, &ops[i]);
    }
    let live = sorted_rows(&mut run.checker, "SELECT k, v FROM kv");
    assert_eq!(
        live,
        model_rows(&run.model),
        "divergence after session {i} ended (commit={})",
        commits[i]
    );
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(10))]

    /// Random interleavings of three transactional sessions over disjoint
    /// key partitions: after the dust settles, the table must equal a
    /// serial replay of exactly the committed transactions, in commit
    /// order — checked at workers 1/2/4 × batch on/off.  Mid-run, every
    /// fresh snapshot must equal the committed prefix.
    #[test]
    fn interleaved_transactions_match_serial_oracle(
        per_session in (
            proptest::collection::vec(op_strategy(0), 1..6),
            proptest::collection::vec(op_strategy(1), 1..6),
            proptest::collection::vec(op_strategy(2), 1..6),
        ),
        commit_mask in 0u8..8,
        schedule in proptest::collection::vec(0usize..SESSIONS, 12..40),
    ) {
        let ops = [per_session.0, per_session.1, per_session.2];
        let commits = [
            commit_mask & 1 != 0,
            commit_mask & 2 != 0,
            commit_mask & 4 != 0,
        ];
        let db = plain_db();
        let mut seed = db.connect();
        seed.execute("CREATE TABLE kv (k INT, v INT)").unwrap();
        let mut model: BTreeMap<i64, Vec<i64>> = BTreeMap::new();
        for k in 0..BASE_KEYS {
            seed.execute(&format!("INSERT INTO kv VALUES ({k}, {k})")).unwrap();
            model.entry(k).or_default().push(k);
        }

        let mut run = FuzzRun {
            sessions: (0..SESSIONS).map(|_| db.connect()).collect(),
            cursor: [0; SESSIONS],
            done: [false; SESSIONS],
            model,
            checker: db.connect(),
        };
        for &i in &schedule {
            fuzz_step(&mut run, i, &ops, &commits);
        }
        // Drain whatever the random schedule left unfinished.
        for i in 0..SESSIONS {
            while !run.done[i] {
                fuzz_step(&mut run, i, &ops, &commits);
            }
        }

        // Final state equals the serial oracle through every executor.
        let expect = model_rows(&run.model);
        for &w in &WORKER_COUNTS {
            run.checker.execute(&format!("SET parallel_workers = {w}")).unwrap();
            for batch in BATCH_MODES {
                run.checker.execute(batch).unwrap();
                let got = sorted_rows(&mut run.checker, "SELECT k, v FROM kv");
                prop_assert_eq!(
                    &got, &expect,
                    "final state diverged at workers={} [{}]", w, batch
                );
            }
        }
    }
}
