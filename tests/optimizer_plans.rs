//! Optimizer behaviour tests: access-path selection, join ordering, ψ
//! pushdown (the §5.2.1 plan-choice story), and the `enable_*` force
//! flags the experiments rely on.

use mlql::kernel::{Database, Datum};
use mlql::mural::install;
use mlql::mural::types::unitext_datum;

fn db() -> (Database, mlql::mural::Mural) {
    let mut db = Database::new_in_memory();
    let m = install(&mut db).unwrap();
    (db, m)
}

fn load_names(db: &mut Database, m: &mlql::mural::Mural, table: &str, n: usize, seed: u64) {
    db.execute(&format!("CREATE TABLE {table} (name UNITEXT, id INT)"))
        .unwrap();
    let data = mlql::datagen::names_dataset(
        &m.langs,
        &mlql::datagen::NamesConfig {
            records: n,
            noise: 0.25,
            seed,
            ..Default::default()
        },
    );
    for (i, rec) in data.iter().enumerate() {
        db.insert_row(
            table,
            vec![
                unitext_datum(m.unitext_type, &rec.name),
                Datum::Int(i as i64),
            ],
        )
        .unwrap();
    }
    db.execute(&format!("ANALYZE {table}")).unwrap();
}

#[test]
fn selective_btree_probe_beats_seq_scan() {
    let (mut db, m) = db();
    load_names(&mut db, &m, "t", 3000, 1);
    db.execute("CREATE INDEX t_id ON t (id) USING btree")
        .unwrap();
    let plan = db
        .plan_select("SELECT count(*) FROM t WHERE id = 1234")
        .unwrap();
    assert!(
        plan.explain().contains("Index Scan using t_id"),
        "{}",
        plan.explain()
    );
    // A non-selective range stays sequential.
    let plan = db
        .plan_select("SELECT count(*) FROM t WHERE id >= 0")
        .unwrap();
    assert!(plan.explain().contains("Seq Scan"), "{}", plan.explain());
}

#[test]
fn mtree_chosen_only_when_it_wins() {
    let (mut db, m) = db();
    load_names(&mut db, &m, "t", 3000, 2);
    db.execute("CREATE INDEX t_mt ON t (name) USING mtree")
        .unwrap();
    // Low threshold: the approximate index's traversal fraction is small →
    // the optimizer should pick it.
    db.execute("SET lexequal.threshold = 1").unwrap();
    let plan = db
        .plan_select("SELECT count(*) FROM t WHERE name LEXEQUAL unitext('Nehru','English')")
        .unwrap();
    assert!(
        plan.explain().contains("Index Scan using t_mt"),
        "{}",
        plan.explain()
    );
    // Very high threshold: traversal fraction saturates → seq scan wins
    // (the paper's "marginal effectiveness" regime).
    db.execute("SET lexequal.threshold = 8").unwrap();
    let plan = db
        .plan_select("SELECT count(*) FROM t WHERE name LEXEQUAL unitext('Nehru','English')")
        .unwrap();
    assert!(plan.explain().contains("Seq Scan"), "{}", plan.explain());
}

#[test]
fn enable_flags_force_paths() {
    let (mut db, m) = db();
    load_names(&mut db, &m, "t", 1000, 3);
    db.execute("CREATE INDEX t_id ON t (id) USING btree")
        .unwrap();
    db.execute("SET enable_indexscan = 0").unwrap();
    let plan = db
        .plan_select("SELECT count(*) FROM t WHERE id = 5")
        .unwrap();
    assert!(plan.explain().contains("Seq Scan"));
    db.execute("SET enable_indexscan = 1").unwrap();
    db.execute("SET enable_seqscan = 0").unwrap();
    let plan = db
        .plan_select("SELECT count(*) FROM t WHERE id = 5")
        .unwrap();
    assert!(plan.explain().contains("Index Scan"));
    db.execute("SET enable_seqscan = 1").unwrap();
}

#[test]
fn psi_applied_early_in_free_join_order() {
    // The Example 5 story at test scale: with a three-way join the free
    // optimizer must cost ψ-early at or below the forced alternatives.
    let (mut db, m) = db();
    load_names(&mut db, &m, "author", 400, 4);
    load_names(&mut db, &m, "publisher", 100, 5);
    db.execute("CREATE TABLE book (bookid INT, authorid INT)")
        .unwrap();
    for i in 0..800 {
        db.insert_row("book", vec![Datum::Int(i), Datum::Int(i % 400)])
            .unwrap();
    }
    db.execute("ANALYZE book").unwrap();
    db.execute("SET lexequal.threshold = 3").unwrap();

    let q_psi_early = "SELECT count(*) FROM author a, publisher p, book b \
                       WHERE a.name LEXEQUAL p.name AND b.authorid = a.id";
    let q_book_first = "SELECT count(*) FROM book b, author a, publisher p \
                        WHERE b.authorid = a.id AND a.name LEXEQUAL p.name";

    db.execute("SET force_join_order = 1").unwrap();
    let c1 = db.plan_select(q_psi_early).unwrap().est_cost;
    let c2 = db.plan_select(q_book_first).unwrap().est_cost;
    db.execute("SET force_join_order = 0").unwrap();
    let free = db.plan_select(q_psi_early).unwrap().est_cost;
    assert!(c1 < c2, "psi-early must cost less: {c1} vs {c2}");
    assert!(
        free <= c1 * 1.001,
        "free choice ({free}) must match the best ({c1})"
    );

    // And the two forced plans agree on results.
    db.execute("SET force_join_order = 1").unwrap();
    let r1 = db.query(q_psi_early).unwrap();
    let r2 = db.query(q_book_first).unwrap();
    assert!(r1[0][0].eq_sql(&r2[0][0]));
}

#[test]
fn predicted_rows_track_reality_for_psi() {
    let (mut db, m) = db();
    load_names(&mut db, &m, "t", 4000, 6);
    db.execute("SET lexequal.threshold = 2").unwrap();
    let sql = "SELECT count(*) FROM t WHERE name LEXEQUAL unitext('Nehru','English')";
    let plan = db.plan_select(sql).unwrap();
    let actual = db.query(sql).unwrap()[0][0].as_int().unwrap() as f64;
    // Filter-node row estimate: within 2 orders of magnitude of reality
    // (the paper's §3.4.1 heuristic is coarse but must not be absurd).
    let est = plan.est_rows.max(0.5);
    // est_rows of the aggregate root is 1; inspect the plan text instead.
    let _ = est;
    let text = plan.explain();
    let scan_rows: f64 = text
        .lines()
        .find(|l| l.contains("Seq Scan") || l.contains("Index Scan"))
        .and_then(|l| l.split("rows=").nth(1))
        .and_then(|s| s.trim_end_matches(')').trim().parse().ok())
        .unwrap();
    assert!(
        scan_rows <= (actual.max(1.0)) * 100.0 && scan_rows * 100.0 >= actual,
        "estimate {scan_rows} vs actual {actual}\n{text}"
    );
}

#[test]
fn hash_join_for_equi_nl_for_theta() {
    let (mut db, m) = db();
    load_names(&mut db, &m, "a", 500, 7);
    load_names(&mut db, &m, "b", 500, 8);
    let equi = db
        .plan_select("SELECT count(*) FROM a, b WHERE a.id = b.id")
        .unwrap();
    assert!(equi.explain().contains("Hash Join"), "{}", equi.explain());
    db.execute("SET lexequal.threshold = 2").unwrap();
    let theta = db
        .plan_select("SELECT count(*) FROM a, b WHERE a.name LEXEQUAL b.name")
        .unwrap();
    assert!(
        theta.explain().contains("Nested Loop"),
        "{}",
        theta.explain()
    );
    // Force the hash join off; the equi query still plans (penalized path).
    db.execute("SET enable_hashjoin = 0").unwrap();
    let forced = db
        .plan_select("SELECT count(*) FROM a, b WHERE a.id = b.id")
        .unwrap();
    assert!(
        !forced.explain().contains("Hash Join"),
        "{}",
        forced.explain()
    );
    db.execute("SET enable_hashjoin = 1").unwrap();
}

#[test]
fn fig6_style_correlation_holds_at_test_scale() {
    // A miniature Figure 6: predicted cost must rank runtimes sensibly
    // (Spearman-ish check: the cheapest-predicted query is not the slowest).
    let (mut db, m) = db();
    load_names(&mut db, &m, "small", 200, 9);
    load_names(&mut db, &m, "big", 2000, 10);
    db.execute("SET lexequal.threshold = 2").unwrap();
    let queries = [
        "SELECT count(*) FROM small WHERE name LEXEQUAL unitext('Nehru','English')",
        "SELECT count(*) FROM big WHERE name LEXEQUAL unitext('Nehru','English')",
        "SELECT count(*) FROM small s, big b WHERE s.name LEXEQUAL b.name",
    ];
    let mut measured = Vec::new();
    for q in queries {
        let plan = db.plan_select(q).unwrap();
        let t = std::time::Instant::now();
        db.query(q).unwrap();
        measured.push((plan.est_cost, t.elapsed().as_secs_f64()));
    }
    // Costs must be strictly increasing across the three query classes,
    // and so must runtimes.
    assert!(
        measured[0].0 < measured[1].0 && measured[1].0 < measured[2].0,
        "{measured:?}"
    );
    assert!(measured[0].1 < measured[2].1, "{measured:?}");
}

#[test]
fn omega_estimates_never_print_zero_rows() {
    // Golden (§3.4.2 floor): an Ω scan over a non-empty table must never
    // be estimated at zero rows — a leaf concept's closure still covers
    // the concept itself, and an unknown RHS concept falls back to the
    // structural heuristic — so EXPLAIN must not print `rows=0` (or a
    // `rows=<1` produced by a literally-zero estimate) on the scan node.
    let (mut db, _m) = db();
    db.execute("CREATE TABLE docs (id INT, category UNITEXT)")
        .unwrap();
    for i in 0..50 {
        db.execute(&format!(
            "INSERT INTO docs VALUES ({i}, unitext('Novel','English'))"
        ))
        .unwrap();
    }
    db.execute("ANALYZE docs").unwrap();

    // A leaf concept (closure = itself), a mid-tree concept, and a
    // concept the taxonomy has never heard of.
    for rhs in ["Autobiography", "History", "Zeppelin"] {
        let sql =
            format!("SELECT count(*) FROM docs WHERE category SEMEQUAL unitext('{rhs}','English')");
        let plan = db.plan_select(&sql).unwrap();
        let text = plan.explain();
        let scan = text
            .lines()
            .find(|l| l.contains("Scan on docs"))
            .unwrap_or_else(|| panic!("no scan line in:\n{text}"));
        assert!(
            !scan.contains("rows=0"),
            "Ω scan estimated at zero rows for RHS {rhs}:\n{text}"
        );
        let est: f64 = plan.est_rows;
        assert!(
            est > 0.0,
            "root estimate must be positive for RHS {rhs}: {est}\n{text}"
        );
    }
}
