//! Serial-equivalence suite for morsel-driven parallel execution: every
//! query shape the engine parallelizes (ψ threshold scans, Ω closure
//! probes, index vs sequential plans, LIMIT / max_rows, scans racing DDL)
//! must return the *identical* result set at `parallel_workers = 1` and
//! `parallel_workers = N` — the gather node merges worker batches in
//! nondeterministic order, so comparisons are over sorted row sets.  A
//! property test then fuzzes random multilingual tables and thresholds
//! across the serial/parallel planner boundary (the ≥ 1024-row gate).

use mlql::kernel::{Database, Error};
use mlql::mural::install;
use mlql::mural::types::unitext_datum;
use mlql::unitext::UniText;
use proptest::prelude::*;

/// Worker counts every query shape is checked at.  1 is the serial
/// reference; 2 and 4 exercise real fan-out.
const WORKER_COUNTS: [usize; 3] = [1, 2, 4];

fn db() -> (Database, mlql::mural::Mural) {
    let mut db = Database::new_in_memory();
    let mural = install(&mut db).unwrap();
    (db, mural)
}

/// Load `n` multilingual name rows (the Table 4 generator: cross-script
/// homophones plus noise) into `table`, then ANALYZE so the planner sees
/// the real row count.
fn load_names(db: &mut Database, mural: &mlql::mural::Mural, table: &str, n: usize, seed: u64) {
    db.execute(&format!("CREATE TABLE {table} (name UNITEXT)"))
        .unwrap();
    let data = mlql::datagen::names_dataset(
        &mural.langs,
        &mlql::datagen::NamesConfig {
            records: n,
            noise: 0.25,
            seed,
            ..Default::default()
        },
    );
    for rec in data {
        db.insert_row(table, vec![unitext_datum(mural.unitext_type, &rec.name)])
            .unwrap();
    }
    db.execute(&format!("ANALYZE {table}")).unwrap();
}

/// Run `sql` in a fresh session pinned to `workers`, returning the result
/// rows stringified and sorted (parallel row order is nondeterministic).
fn sorted_rows(db: &Database, workers: usize, setup: &[&str], sql: &str) -> Vec<String> {
    let mut s = db.connect();
    s.execute(&format!("SET parallel_workers = {workers}"))
        .unwrap();
    for stmt in setup {
        s.execute(stmt).unwrap();
    }
    let mut out: Vec<String> = s
        .query(sql)
        .unwrap()
        .iter()
        .map(|row| {
            row.iter()
                .map(|d| d.to_string())
                .collect::<Vec<_>>()
                .join("|")
        })
        .collect();
    out.sort();
    out
}

/// Assert `sql` yields identical sorted results at every worker count.
fn assert_equivalent(db: &Database, setup: &[&str], sql: &str) {
    let reference = sorted_rows(db, 1, setup, sql);
    for &w in &WORKER_COUNTS[1..] {
        let got = sorted_rows(db, w, setup, sql);
        assert_eq!(got, reference, "workers={w} diverged from serial on: {sql}");
    }
}

/// The big-table ψ plans under test must actually *be* parallel at
/// workers ≥ 2, or the suite silently degenerates to serial-vs-serial.
#[test]
fn planner_picks_parallel_scan_above_the_row_threshold() {
    let (mut db, mural) = db();
    load_names(&mut db, &mural, "names", 1500, 1);
    db.execute("SET parallel_workers = 4").unwrap();
    db.execute("SET lexequal.threshold = 2").unwrap();
    let r = db
        .execute(
            "EXPLAIN SELECT count(*) FROM names WHERE name LEXEQUAL unitext('Nehru','English')",
        )
        .unwrap();
    let text = r.explain.expect("explain text");
    assert!(
        text.contains("Parallel Seq Scan on names"),
        "expected a parallel plan:\n{text}"
    );
    assert!(text.contains("workers=4"), "{text}");

    // Below the gate (or at one worker) the plan stays serial.
    db.execute("SET parallel_workers = 1").unwrap();
    let r = db
        .execute(
            "EXPLAIN SELECT count(*) FROM names WHERE name LEXEQUAL unitext('Nehru','English')",
        )
        .unwrap();
    let text = r.explain.expect("explain text");
    assert!(
        !text.contains("Parallel Seq Scan"),
        "one worker must not parallelize:\n{text}"
    );
}

#[test]
fn psi_threshold_scans_equivalent() {
    let (mut db, mural) = db();
    load_names(&mut db, &mural, "names", 1500, 1);
    for threshold in [0, 1, 2, 3] {
        let setup = format!("SET lexequal.threshold = {threshold}");
        for probe in ["Nehru", "Gandhi", "Miller", "Krishnan"] {
            assert_equivalent(
                &db,
                &[&setup],
                &format!("SELECT name FROM names WHERE name LEXEQUAL unitext('{probe}','English')"),
            );
        }
    }
    // Aggregates over the parallel scan too.
    assert_equivalent(
        &db,
        &["SET lexequal.threshold = 3"],
        "SELECT count(*) FROM names WHERE name LEXEQUAL unitext('Nehru','English')",
    );
}

#[test]
fn omega_closure_probes_equivalent() {
    let (mut db, mural) = db();
    // A docs table big enough to cross the parallel gate, categorized by
    // words drawn from the installed Books taxonomy.
    db.execute("CREATE TABLE docs (id INT, category UNITEXT)")
        .unwrap();
    let cats = [
        ("History", "English"),
        ("Biography", "English"),
        ("Fiction", "English"),
        ("Novel", "English"),
        ("Histoire", "French"),
        ("சரித்திரம்", "Tamil"),
    ];
    for i in 0..1400i64 {
        let (w, l) = cats[i as usize % cats.len()];
        let v = UniText::compose(w, mural.langs.id_of(l));
        db.insert_row(
            "docs",
            vec![
                mlql::kernel::Datum::Int(i),
                unitext_datum(mural.unitext_type, &v),
            ],
        )
        .unwrap();
    }
    db.execute("ANALYZE docs").unwrap();
    for rhs in ["History", "Biography", "Fiction"] {
        assert_equivalent(
            &db,
            &[],
            &format!("SELECT id FROM docs WHERE category SEMEQUAL unitext('{rhs}','English')"),
        );
    }
}

/// Forced index plans and forced (parallel) sequential plans agree with
/// each other at every worker count — the M-tree's fanned-out subtree
/// probes included.
#[test]
fn index_and_seq_plans_equivalent() {
    let (mut db, mural) = db();
    load_names(&mut db, &mural, "names", 1200, 3);
    db.execute("CREATE INDEX names_mt ON names (name) USING mtree")
        .unwrap();
    db.execute("ANALYZE names").unwrap();
    let sql = "SELECT name FROM names WHERE name LEXEQUAL unitext('Nehru','English')";
    let threshold = "SET lexequal.threshold = 2";
    let via_index = sorted_rows(&db, 1, &[threshold, "SET enable_seqscan = 0"], sql);
    for &w in &WORKER_COUNTS {
        let idx = sorted_rows(&db, w, &[threshold, "SET enable_seqscan = 0"], sql);
        let seq = sorted_rows(&db, w, &[threshold, "SET enable_indexscan = 0"], sql);
        assert_eq!(idx, via_index, "index plan diverged at workers={w}");
        assert_eq!(seq, via_index, "seq plan diverged at workers={w}");
    }
}

#[test]
fn limit_and_max_rows_semantics_preserved() {
    let (mut db, mural) = db();
    load_names(&mut db, &mural, "names", 1500, 5);
    // LIMIT under a parallel scan: which rows arrive first is
    // nondeterministic, but the count is exact and every row is a real
    // table row.
    let all: std::collections::HashSet<String> = sorted_rows(&db, 1, &[], "SELECT name FROM names")
        .into_iter()
        .collect();
    for &w in &WORKER_COUNTS {
        let limited = sorted_rows(&db, w, &[], "SELECT name FROM names LIMIT 37");
        assert_eq!(limited.len(), 37, "workers={w}");
        for row in &limited {
            assert!(all.contains(row), "workers={w} invented row {row}");
        }
    }
    // max_rows raises the same typed error serial and parallel.
    for &w in &WORKER_COUNTS {
        let mut s = db.connect();
        s.execute(&format!("SET parallel_workers = {w}")).unwrap();
        s.execute("SET max_rows = 10").unwrap();
        let err = s.query("SELECT name FROM names").unwrap_err();
        assert!(
            matches!(err, Error::MaxRows { limit: 10 }),
            "workers={w}: unexpected error {err}"
        );
        // Aggregates under the cap still succeed.
        assert_eq!(
            s.query("SELECT count(*) FROM names").unwrap()[0][0].as_int(),
            Some(1500)
        );
    }
}

/// Batch sizes every batch-mode query shape is checked at: the
/// degenerate one-row batch, a small batch, the default, and the cap.
const BATCH_SIZES: [usize; 4] = [1, 64, 1024, 4096];

/// The batch spine must be invisible in the results: for ψ scans, Ω
/// probes, projections and aggregates, every (workers × batch_size)
/// combination returns exactly the serial *row-mode* result set
/// (`enable_batch = 0` is the pre-batch executor, our reference).
#[test]
fn batch_mode_results_pinned_to_row_mode() {
    let (mut db, mural) = db();
    load_names(&mut db, &mural, "names", 1500, 11);
    let queries = [
        "SELECT name FROM names WHERE name LEXEQUAL unitext('Nehru','English')".to_string(),
        "SELECT count(*) FROM names WHERE name LEXEQUAL unitext('Gandhi','English')".to_string(),
        "SELECT name FROM names".to_string(),
    ];
    for sql in &queries {
        let threshold = "SET lexequal.threshold = 2";
        let reference = sorted_rows(&db, 1, &[threshold, "SET enable_batch = 0"], sql);
        for &w in &WORKER_COUNTS {
            // Row mode at every worker count agrees with serial row mode.
            let row_mode = sorted_rows(&db, w, &[threshold, "SET enable_batch = 0"], sql);
            assert_eq!(
                row_mode, reference,
                "row mode diverged at workers={w}: {sql}"
            );
            for &b in &BATCH_SIZES {
                let setup = format!("SET batch_size = {b}");
                let got = sorted_rows(&db, w, &[threshold, &setup], sql);
                assert_eq!(
                    got, reference,
                    "batch mode diverged at workers={w} batch_size={b}: {sql}"
                );
            }
        }
    }
}

/// Ω probes through the batch entry point (distinct-value memo, shared
/// closure resolved once per batch) match row-mode results too.
#[test]
fn omega_batch_results_pinned_to_row_mode() {
    let (mut db, mural) = db();
    db.execute("CREATE TABLE docs (id INT, category UNITEXT)")
        .unwrap();
    let cats = [
        ("History", "English"),
        ("Biography", "English"),
        ("Fiction", "English"),
        ("Histoire", "French"),
    ];
    for i in 0..1200i64 {
        let (w, l) = cats[i as usize % cats.len()];
        let v = UniText::compose(w, mural.langs.id_of(l));
        db.insert_row(
            "docs",
            vec![
                mlql::kernel::Datum::Int(i),
                unitext_datum(mural.unitext_type, &v),
            ],
        )
        .unwrap();
    }
    db.execute("ANALYZE docs").unwrap();
    let sql = "SELECT id FROM docs WHERE category SEMEQUAL unitext('History','English')";
    let reference = sorted_rows(&db, 1, &["SET enable_batch = 0"], sql);
    assert!(!reference.is_empty(), "probe must select something");
    for &w in &WORKER_COUNTS {
        for &b in &BATCH_SIZES {
            let setup = format!("SET batch_size = {b}");
            let got = sorted_rows(&db, w, &[&setup], sql);
            assert_eq!(got, reference, "Ω diverged at workers={w} batch_size={b}");
        }
    }
}

/// The `batch_size` session knob: settable, visible through SHOW, and
/// `batch_size = 1` degenerates cleanly to one-row batches (same
/// results, LIMIT and max_rows semantics intact).
#[test]
fn batch_size_session_knob() {
    let (mut db, mural) = db();
    load_names(&mut db, &mural, "names", 1500, 13);
    let mut s = db.connect();
    s.execute("SET batch_size = 1").unwrap();
    let shown = s.query("SHOW batch_size").unwrap();
    assert_eq!(shown[0][0].as_text(), Some("1"));
    // Same rows as the default batch size.
    let n = s.query("SELECT count(*) FROM names").unwrap()[0][0]
        .as_int()
        .unwrap();
    assert_eq!(n, 1500);
    let limited = s.query("SELECT name FROM names LIMIT 37").unwrap();
    assert_eq!(limited.len(), 37);
    // max_rows still raises the typed error mid-stream.
    s.execute("SET max_rows = 10").unwrap();
    let err = s.query("SELECT name FROM names").unwrap_err();
    assert!(matches!(err, Error::MaxRows { limit: 10 }), "{err}");
    s.execute("SET max_rows = 0").unwrap();
    // The ψ path at batch_size = 1 equals the default-batch result.
    s.execute("SET lexequal.threshold = 2").unwrap();
    let sql = "SELECT name FROM names WHERE name LEXEQUAL unitext('Nehru','English')";
    let tiny: Vec<String> = {
        let mut rows: Vec<String> = s
            .query(sql)
            .unwrap()
            .iter()
            .map(|row| row[0].to_string())
            .collect();
        rows.sort();
        rows
    };
    let dflt = sorted_rows(&db, 1, &["SET lexequal.threshold = 2"], sql);
    assert_eq!(tiny, dflt, "batch_size=1 must degenerate cleanly");
    // Out-of-range sizes clamp rather than break execution.
    s.execute("SET batch_size = 999999").unwrap();
    assert_eq!(
        s.query("SELECT count(*) FROM names").unwrap()[0][0].as_int(),
        Some(1500)
    );
}

/// Parallel readers race concurrent DDL and inserts: counts stay in the
/// valid monotone window and nothing panics or deadlocks — the workers
/// never touch the catalog, so queued DDL cannot deadlock a scan.
#[test]
fn parallel_scans_race_concurrent_ddl() {
    use std::sync::atomic::{AtomicBool, Ordering};
    let (mut db, mural) = db();
    load_names(&mut db, &mural, "names", 1200, 7);
    let stop = AtomicBool::new(false);
    let readers: Vec<_> = (0..3).map(|_| db.connect()).collect();
    std::thread::scope(|scope| {
        let stop = &stop;
        let mut handles = Vec::new();
        for mut session in readers {
            handles.push(scope.spawn(move || {
                session.execute("SET parallel_workers = 4").unwrap();
                session.execute("SET lexequal.threshold = 2").unwrap();
                let mut iters = 0u64;
                let mut last = 0i64;
                while !stop.load(Ordering::Relaxed) {
                    let n = session
                        .query(
                            "SELECT count(*) FROM names \
                             WHERE name LEXEQUAL unitext('Nehru','English')",
                        )
                        .unwrap()[0][0]
                        .as_int()
                        .unwrap();
                    assert!(n >= last, "count went backwards: {last} -> {n}");
                    last = n;
                    iters += 1;
                }
                iters
            }));
        }
        // Writer: inserts + DDL from the owning session.
        for i in 0..20 {
            db.execute("INSERT INTO names VALUES (unitext('Nehru','English'))")
                .unwrap();
            match i {
                5 => {
                    db.execute("CREATE TABLE scratch (id INT)").unwrap();
                }
                10 => {
                    db.execute("CREATE INDEX names_mt ON names (name) USING mtree")
                        .unwrap();
                }
                15 => {
                    db.execute("ANALYZE names").unwrap();
                }
                _ => {}
            }
            std::thread::sleep(std::time::Duration::from_millis(2));
        }
        stop.store(true, Ordering::Relaxed);
        let total: u64 = handles.into_iter().map(|h| h.join().unwrap()).sum();
        assert!(total > 0, "readers never completed an iteration");
    });
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// Random multilingual tables straddling the 1024-row parallel gate,
    /// random probe and threshold: serial and 4-worker execution must
    /// agree exactly, whichever side of the boundary the planner lands on.
    #[test]
    fn fuzz_serial_parallel_boundary(
        n in 960usize..1300,
        seed in 0u64..1000,
        threshold in 0i64..4,
        probe in "[a-z]{3,8}",
    ) {
        let (mut db, mural) = db();
        load_names(&mut db, &mural, "names", n, seed);
        let setup = format!("SET lexequal.threshold = {threshold}");
        let sql = format!("SELECT name FROM names WHERE name LEXEQUAL unitext('{probe}','English')");
        let serial = sorted_rows(&db, 1, &[&setup], &sql);
        let parallel = sorted_rows(&db, 4, &[&setup], &sql);
        prop_assert_eq!(serial, parallel);
    }
}

/// The interval-labeled Ω containment index is invisible in the results:
/// every (workers × batch on/off) combination returns byte-identical row
/// sets with `enable_omega_intervals` on and off — including after a
/// taxonomy mutation grafts a multi-parent (exception) edge, the shape
/// that forces the index onto its closure-fallback path.
#[test]
fn omega_interval_strategy_equivalent() {
    let (mut db, mural) = db();
    db.execute("CREATE TABLE docs (id INT, category UNITEXT)")
        .unwrap();
    let cats = [
        ("History", "English"),
        ("Biography", "English"),
        ("Fiction", "English"),
        ("Novel", "English"),
        ("Histoire", "French"),
        ("சரித்திரம்", "Tamil"),
    ];
    for i in 0..1400i64 {
        let (w, l) = cats[i as usize % cats.len()];
        let v = UniText::compose(w, mural.langs.id_of(l));
        db.insert_row(
            "docs",
            vec![
                mlql::kernel::Datum::Int(i),
                unitext_datum(mural.unitext_type, &v),
            ],
        )
        .unwrap();
    }
    db.execute("ANALYZE docs").unwrap();

    let check_all = |db: &Database| {
        for rhs in ["History", "Biography", "Fiction"] {
            let sql =
                format!("SELECT id FROM docs WHERE category SEMEQUAL unitext('{rhs}','English')");
            let reference = sorted_rows(
                db,
                1,
                &["SET enable_omega_intervals = 0", "SET enable_batch = 0"],
                &sql,
            );
            for &w in &WORKER_COUNTS {
                for batch in ["SET enable_batch = 0", "SET enable_batch = 1"] {
                    for intervals in [
                        "SET enable_omega_intervals = 0",
                        "SET enable_omega_intervals = 1",
                    ] {
                        let got = sorted_rows(db, w, &[intervals, batch], &sql);
                        assert_eq!(
                            got, reference,
                            "Ω diverged at workers={w} [{batch}; {intervals}]: {sql}"
                        );
                    }
                }
            }
        }
    };
    check_all(&db);

    // Graft Fiction under both Literature (its tree parent) and History:
    // the new multi-parent edge dirties History's subtree, so the interval
    // index must defer those probes to the closure walk — and still agree.
    let en = mural.langs.id_of("English");
    let history = mural.sem.synsets_of(&UniText::compose("History", en))[0];
    let fiction = mural.sem.synsets_of(&UniText::compose("Fiction", en))[0];
    mural.sem.add_hyponym(history, fiction);
    check_all(&db);
}

/// MVCC pin under parallel execution: a snapshot taken before a parallel
/// ψ scan starts must return the identical row set on every re-scan while
/// another session commits matching rows mid-flight.  The worker threads
/// all read through the transaction's visibility, so the result is frozen
/// at BEGIN regardless of how morsels interleave with the writer's
/// commits; fresh sessions see the new rows immediately, and the reader
/// catches up the moment its transaction ends.
#[test]
fn snapshot_pins_parallel_scan_against_concurrent_commits() {
    use std::sync::atomic::{AtomicBool, Ordering};
    let (mut db, mural) = db();
    load_names(&mut db, &mural, "names", 1500, 9);

    let sql = "SELECT name FROM names WHERE name LEXEQUAL unitext('Nehru','English')";
    let mut reader = db.connect();
    reader.execute("SET parallel_workers = 4").unwrap();
    reader.execute("SET lexequal.threshold = 2").unwrap();
    reader.execute("BEGIN").unwrap();
    let reference: Vec<String> = {
        let mut rows: Vec<String> = reader
            .query(sql)
            .unwrap()
            .iter()
            .map(|row| row[0].to_string())
            .collect();
        rows.sort();
        rows
    };

    let stop = AtomicBool::new(false);
    const EXTRA: usize = 30;
    std::thread::scope(|scope| {
        let stop = &stop;
        // Writer: commits a matching row every iteration from its own
        // session while the reader re-scans inside its snapshot.
        let writer = {
            let mut w = db.connect();
            scope.spawn(move || {
                for i in 0..EXTRA {
                    w.execute("INSERT INTO names VALUES (unitext('Nehru','English'))")
                        .unwrap();
                    if i % 3 == 0 {
                        std::thread::sleep(std::time::Duration::from_millis(1));
                    }
                }
                stop.store(true, Ordering::Relaxed);
            })
        };
        let mut scans = 0u64;
        while !stop.load(Ordering::Relaxed) {
            let mut rows: Vec<String> = reader
                .query(sql)
                .unwrap()
                .iter()
                .map(|row| row[0].to_string())
                .collect();
            rows.sort();
            assert_eq!(
                rows, reference,
                "parallel scan inside the snapshot diverged after {scans} re-scans"
            );
            scans += 1;
        }
        writer.join().unwrap();
        assert!(scans > 0, "reader never completed a scan");
    });

    // Outside the snapshot the commits are all there: a fresh session
    // counts them, and so does the reader once its transaction ends.
    let expect = reference.len() + EXTRA;
    let fresh = sorted_rows(&db, 4, &["SET lexequal.threshold = 2"], sql);
    assert_eq!(fresh.len(), expect, "fresh session must see every commit");
    reader.execute("COMMIT").unwrap();
    let after: Vec<String> = reader
        .query(sql)
        .unwrap()
        .iter()
        .map(|row| row[0].to_string())
        .collect();
    assert_eq!(after.len(), expect, "reader must catch up after COMMIT");
}
