//! §5.1 regression claim at test granularity: every standard relational
//! behaviour produces identical results with and without the Mural
//! extension installed ("the UniText datatype and operators were added ...
//! without affecting the existing datatypes and features").

use mlql::kernel::Database;
use mlql::mural::install;

/// Run the same statement sequence on both engines and compare every
/// result row-for-row.
fn compare(statements: &[&str]) {
    let mut plain = Database::new_in_memory();
    let mut extended = Database::new_in_memory();
    install(&mut extended).unwrap();
    for stmt in statements {
        let a = plain.execute(stmt);
        let b = extended.execute(stmt);
        match (a, b) {
            (Ok(ra), Ok(rb)) => {
                assert_eq!(ra.rows.len(), rb.rows.len(), "row count for {stmt}");
                for (x, y) in ra.rows.iter().zip(&rb.rows) {
                    for (dx, dy) in x.iter().zip(y) {
                        assert_eq!(dx.to_string(), dy.to_string(), "value mismatch for {stmt}");
                    }
                }
                assert_eq!(ra.affected, rb.affected, "affected for {stmt}");
            }
            (Err(ea), Err(eb)) => {
                // Same class of failure is enough.
                assert_eq!(
                    std::mem::discriminant(&ea),
                    std::mem::discriminant(&eb),
                    "error class for {stmt}: {ea} vs {eb}"
                );
            }
            (a, b) => panic!("divergence for {stmt}: {a:?} vs {b:?}"),
        }
    }
}

#[test]
fn ddl_dml_queries_unchanged() {
    let mut stmts: Vec<String> = vec![
        "CREATE TABLE orders (id INT, customer TEXT, amount FLOAT, region INT)".into(),
        "CREATE INDEX orders_id ON orders (id) USING btree".into(),
    ];
    for i in 0..300 {
        stmts.push(format!(
            "INSERT INTO orders VALUES ({i}, 'cust{}', {}.25, {})",
            i % 13,
            i % 90,
            i % 4
        ));
    }
    stmts.extend(
        [
            "ANALYZE orders",
            "SELECT count(*) FROM orders",
            "SELECT count(*) FROM orders WHERE id = 250",
            "SELECT count(*), sum(amount), min(amount), max(amount) FROM orders WHERE region = 2",
            "SELECT region, count(*) FROM orders GROUP BY region ORDER BY region",
            "SELECT customer FROM orders WHERE amount > 80.0 ORDER BY amount DESC, id ASC LIMIT 7",
            "SELECT avg(amount) FROM orders WHERE customer = 'cust7'",
            "DELETE FROM orders WHERE region = 3",
            "SELECT count(*) FROM orders",
            "EXPLAIN SELECT count(*) FROM orders WHERE id = 17",
        ]
        .map(String::from),
    );
    let refs: Vec<&str> = stmts.iter().map(String::as_str).collect();
    compare(&refs);
}

#[test]
fn joins_and_errors_unchanged() {
    let stmts = [
        "CREATE TABLE a (id INT, v TEXT)",
        "CREATE TABLE b (id INT, w TEXT)",
        "INSERT INTO a VALUES (1,'x'), (2,'y'), (3,'z')",
        "INSERT INTO b VALUES (2,'Y'), (3,'Z'), (4,'W')",
        "SELECT a.v, b.w FROM a, b WHERE a.id = b.id ORDER BY a.id",
        "SELECT count(*) FROM a JOIN b ON a.id = b.id WHERE a.id > 2",
        "SELECT count(*) FROM a, b",
        // Error cases: same error class either way.
        "SELECT nope FROM a",
        "SELECT * FROM missing",
        "INSERT INTO a VALUES (1)",
        "SELECT * FROM a WHERE v > 3",
    ];
    compare(&stmts);
}

#[test]
fn optimizer_costs_of_plain_queries_unchanged() {
    // The extension must not alter cost estimates of queries that never
    // touch it (same catalog stats → same plans → same costs).
    let setup = |db: &mut Database| {
        db.execute("CREATE TABLE t (id INT, v TEXT)").unwrap();
        for i in 0..500 {
            db.execute(&format!("INSERT INTO t VALUES ({i}, 'v{}')", i % 10))
                .unwrap();
        }
        db.execute("ANALYZE t").unwrap();
    };
    let mut plain = Database::new_in_memory();
    setup(&mut plain);
    let mut extended = Database::new_in_memory();
    install(&mut extended).unwrap();
    setup(&mut extended);
    for q in [
        "SELECT count(*) FROM t WHERE id < 100",
        "SELECT v, count(*) FROM t GROUP BY v",
        "SELECT count(*) FROM t x, t y WHERE x.id = y.id",
    ] {
        let a = plain.plan_select(q).unwrap();
        let b = extended.plan_select(q).unwrap();
        assert_eq!(a.est_cost, b.est_cost, "cost divergence for {q}");
        assert_eq!(a.explain(), b.explain(), "plan divergence for {q}");
    }
}
