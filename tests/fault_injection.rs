//! Fault-injection harness for the durability path (the paper's engine
//! machinery must survive the same crash scenarios PostgreSQL does for the
//! in-server numbers to be honest):
//!
//! * torn WAL tails at **every byte boundary** of the final record —
//!   recovery must land exactly on the committed prefix;
//! * mid-log bit flips — recovery must refuse with the failing LSN and
//!   byte offset rather than silently truncate acknowledged history;
//! * truncated / bit-flipped catalog snapshots — detected by checksum;
//! * page-write failures during checkpoint (via [`FaultyBackend`]) — the
//!   WAL must survive a failed checkpoint untruncated;
//! * a randomized kill-at-any-byte crash-torture loop (feature
//!   `fault-injection`, exercised by the CI fault-injection job).
//!
//! Tests share the process-global metrics registry, so everything that
//! asserts exact metric deltas runs under one static mutex.

use mlql::kernel::snapshot;
use mlql::kernel::storage::{
    FaultInjector, FaultyBackend, Wal, WalReader, WalRecord, WAL_HEADER_LEN,
};
use mlql::kernel::{Database, Datum, Error};
use mlql::mural::install;
use std::path::{Path, PathBuf};
use std::sync::Mutex;

/// Serializes the tests: exact metric-delta assertions must not interleave
/// with another test's recovery, and the fsync-heavy tests behave better
/// sequentially on single-core CI.
static SERIAL: Mutex<()> = Mutex::new(());

fn serial() -> std::sync::MutexGuard<'static, ()> {
    SERIAL.lock().unwrap_or_else(|e| e.into_inner())
}

fn tmpdir(tag: &str) -> PathBuf {
    let d = std::env::temp_dir().join(format!("mlql-fi-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&d);
    d
}

fn wal_len(root: &Path) -> u64 {
    std::fs::metadata(snapshot::wal_path(root)).unwrap().len()
}

fn count(db: &mut Database, table: &str) -> i64 {
    db.query(&format!("SELECT count(*) FROM {table}")).unwrap()[0][0]
        .as_int()
        .unwrap()
}

// ------------------------------------------------------------ checkpoints

/// After `checkpoint()` the WAL is truncated to its header, and reopening
/// replays only the post-checkpoint tail: reopen cost no longer scales
/// with pre-checkpoint history.
#[test]
fn checkpoint_truncates_wal_and_reopen_replays_only_the_tail() {
    let _guard = serial();
    let dir = tmpdir("ckpt");
    {
        let mut db = Database::open(&dir).unwrap();
        db.execute("CREATE TABLE t (a INT)").unwrap();
        for i in 0..50 {
            db.execute(&format!("INSERT INTO t VALUES ({i})")).unwrap();
        }
        assert!(wal_len(&dir) > WAL_HEADER_LEN, "history should be logged");
        db.checkpoint().unwrap();
        assert_eq!(
            wal_len(&dir),
            WAL_HEADER_LEN,
            "checkpoint must truncate the WAL to its header"
        );
        // Post-checkpoint tail: three more records.
        for i in 50..53 {
            db.execute(&format!("INSERT INTO t VALUES ({i})")).unwrap();
        }
    }
    let m = mlql::kernel::obs::metrics();
    let replayed_before = m.recovery_replayed_records_total.get();
    let restores_before = m.recovery_snapshot_restores_total.get();
    let mut db = Database::open(&dir).unwrap();
    assert_eq!(count(&mut db, "t"), 53);
    assert_eq!(
        m.recovery_replayed_records_total.get() - replayed_before,
        3,
        "reopen must replay exactly the 3-record tail, not the 51-record history"
    );
    assert_eq!(
        m.recovery_snapshot_restores_total.get() - restores_before,
        1
    );
    std::fs::remove_dir_all(&dir).unwrap();
}

/// Repeated checkpoint/reopen cycles stay consistent (the checkpoint
/// pointer always names the newest snapshot, old ones are garbage
/// collected).
#[test]
fn checkpoint_cycles_keep_one_snapshot_and_stay_consistent() {
    let _guard = serial();
    let dir = tmpdir("ckpt-cycle");
    {
        let mut db = Database::open(&dir).unwrap();
        db.execute("CREATE TABLE t (a INT)").unwrap();
        for round in 0..3 {
            for i in 0..4 {
                db.execute(&format!("INSERT INTO t VALUES ({})", round * 4 + i))
                    .unwrap();
            }
            db.checkpoint().unwrap();
        }
    }
    let snapshots: Vec<_> = std::fs::read_dir(&dir)
        .unwrap()
        .filter_map(|e| e.ok())
        .filter(|e| e.file_name().to_string_lossy().starts_with("chk-"))
        .collect();
    assert_eq!(snapshots.len(), 1, "old checkpoint dirs must be GCed");
    let mut db = Database::open(&dir).unwrap();
    assert_eq!(count(&mut db, "t"), 12);
    std::fs::remove_dir_all(&dir).unwrap();
}

// ---------------------------------------------------------------- torn tails

/// Truncate the WAL at *every* byte boundary of the final record: recovery
/// must always land exactly on the committed statement prefix — never lose
/// a fully-framed statement, never resurrect a partial one.
#[test]
fn torn_tail_recovers_committed_prefix_at_every_byte() {
    let _guard = serial();
    let dir = tmpdir("torn");
    // Statement boundaries: WAL length after each single-row statement.
    let mut boundaries = Vec::new();
    {
        let mut db = Database::open(&dir).unwrap();
        db.execute("CREATE TABLE t (a INT)").unwrap();
        boundaries.push(wal_len(&dir)); // after CREATE TABLE, 0 rows
        for i in 0..4 {
            db.execute(&format!("INSERT INTO t VALUES ({i})")).unwrap();
            boundaries.push(wal_len(&dir)); // after i+1 rows
        }
    }
    let wal_path = snapshot::wal_path(&dir);
    let full = std::fs::read(&wal_path).unwrap();
    assert_eq!(full.len() as u64, *boundaries.last().unwrap());

    // Every cut inside the final record (and the exact boundaries around
    // it): rows visible = statements whose frames are complete.
    let final_start = boundaries[boundaries.len() - 2];
    for cut in final_start..=*boundaries.last().unwrap() {
        std::fs::write(&wal_path, &full[..cut as usize]).unwrap();
        let mut db = Database::open(&dir).unwrap();
        let expect = if cut == *boundaries.last().unwrap() {
            4
        } else {
            3
        };
        assert_eq!(
            count(&mut db, "t"),
            expect,
            "cut at byte {cut} of {}",
            full.len()
        );
        drop(db);
        // Reopening truncated the tear; restore the full log for the next cut.
        std::fs::write(&wal_path, &full).unwrap();
    }
    std::fs::remove_dir_all(&dir).unwrap();
}

// ------------------------------------------------------------- corruption

/// A bit flip in the *middle* of the log (not the tail) is corruption, not
/// a torn write: recovery must refuse, reporting the failing LSN and byte
/// offset, instead of silently dropping acknowledged records.
#[test]
fn mid_log_bit_flip_is_reported_with_lsn_and_offset() {
    let _guard = serial();
    let dir = tmpdir("flip");
    {
        let mut db = Database::open(&dir).unwrap();
        db.execute("CREATE TABLE t (a INT, b TEXT)").unwrap();
        for i in 0..8 {
            db.execute(&format!("INSERT INTO t VALUES ({i}, 'row-{i}')"))
                .unwrap();
        }
    }
    let wal_path = snapshot::wal_path(&dir);
    // Find the exact byte range of the third record (LSN 3) so the flip
    // lands in a payload — flipping a length field instead would read as a
    // torn tail, which is a different (also tested) failure shape.
    let frame3_offset = {
        let mut r = WalReader::open(&wal_path).unwrap().unwrap();
        r.next_record().unwrap().unwrap();
        r.next_record().unwrap().unwrap();
        r.offset()
    };
    let mut bytes = std::fs::read(&wal_path).unwrap();
    // Frame header is lsn(8) + crc(4) + len(4); +1 lands in the payload.
    let flip_at = frame3_offset as usize + 16 + 1;
    bytes[flip_at] ^= 0x40;
    std::fs::write(&wal_path, &bytes).unwrap();

    let err = match Database::open(&dir) {
        Ok(_) => panic!("open must refuse a mid-log bit flip"),
        Err(e) => e,
    };
    match err {
        Error::WalCorrupt { lsn, offset, .. } => {
            assert_eq!(lsn, 3, "the corrupted frame is the third record");
            assert_eq!(
                offset, frame3_offset,
                "the error must name the corrupted frame's byte offset"
            );
        }
        other => panic!("expected WalCorrupt, got {other}"),
    }
    std::fs::remove_dir_all(&dir).unwrap();
}

/// A truncated or bit-flipped snapshot file must be rejected by its
/// checksum, not half-applied.
#[test]
fn damaged_snapshot_is_detected() {
    let _guard = serial();
    let dir = tmpdir("snap");
    {
        let mut db = Database::open(&dir).unwrap();
        db.execute("CREATE TABLE t (a INT)").unwrap();
        db.execute("INSERT INTO t VALUES (1)").unwrap();
        db.checkpoint().unwrap();
    }
    let chk = snapshot::read_pointer(&dir)
        .unwrap()
        .expect("checkpoint exists");
    let cat = chk.join("snapshot.cat");
    let good = std::fs::read(&cat).unwrap();

    // Truncation.
    std::fs::write(&cat, &good[..good.len() - 3]).unwrap();
    assert!(
        matches!(Database::open(&dir), Err(Error::SnapshotCorrupt { .. })),
        "truncated snapshot must be rejected"
    );

    // Bit flip.
    let mut flipped = good.clone();
    let mid = flipped.len() / 2;
    flipped[mid] ^= 0x01;
    std::fs::write(&cat, &flipped).unwrap();
    assert!(
        matches!(Database::open(&dir), Err(Error::SnapshotCorrupt { .. })),
        "bit-flipped snapshot must be rejected"
    );

    // Restore: the database opens again.
    std::fs::write(&cat, &good).unwrap();
    let mut db = Database::open(&dir).unwrap();
    assert_eq!(count(&mut db, "t"), 1);
    std::fs::remove_dir_all(&dir).unwrap();
}

// -------------------------------------------------------- failed checkpoints

/// Page writes failing mid-checkpoint (disk full, I/O error) must leave
/// the WAL untruncated; a reopen recovers everything, and a later healthy
/// checkpoint succeeds.
#[test]
fn failed_checkpoint_preserves_the_wal() {
    let _guard = serial();
    let dir = tmpdir("failckpt");
    let injector = FaultInjector::new();
    {
        let inj = std::sync::Arc::clone(&injector);
        let mut db = Database::open_with_extensions_and_backend(
            &dir,
            |_| Ok(()),
            move |inner| Box::new(FaultyBackend::new(inner, inj)),
        )
        .unwrap();
        db.execute("CREATE TABLE t (a INT)").unwrap();
        for i in 0..20 {
            db.execute(&format!("INSERT INTO t VALUES ({i})")).unwrap();
        }
        let logged = wal_len(&dir);

        injector.fail_page_writes_after(0);
        assert!(
            db.checkpoint().is_err(),
            "checkpoint must surface the I/O error"
        );
        assert!(injector.writes_failed() > 0);
        assert_eq!(
            wal_len(&dir),
            logged,
            "failed checkpoint must not touch the WAL"
        );
        assert!(
            snapshot::read_pointer(&dir).unwrap().is_none(),
            "failed checkpoint must not publish a pointer"
        );

        injector.heal();
        db.checkpoint().unwrap();
        assert_eq!(wal_len(&dir), WAL_HEADER_LEN);
    }
    let mut db = Database::open(&dir).unwrap();
    assert_eq!(count(&mut db, "t"), 20);
    std::fs::remove_dir_all(&dir).unwrap();
}

// -------------------------------------------------------- replay semantics

/// Regression: a table holding *identical duplicate rows* where exactly one
/// was deleted must recover with exactly one removed.  The WAL is written
/// by hand because the SQL `DELETE` predicate would remove every match —
/// the logical delete record itself must mean "one tuple", not "all equal
/// tuples".
#[test]
fn duplicate_row_delete_replays_exactly_one_removal() {
    let _guard = serial();
    let dir = tmpdir("dupdel");
    std::fs::create_dir_all(&dir).unwrap();
    let row = vec![Datum::Int(7), Datum::text("twin")];
    let tuple = mlql::kernel::storage::encode_row(&row);
    {
        let mut wal = Wal::open(snapshot::wal_path(&dir), 0).unwrap();
        wal.append(&WalRecord::Ddl {
            sql: "CREATE TABLE twins (a INT, b TEXT)".to_string(),
        })
        .unwrap();
        // `txn: 0` marks a record committed at append time — no Commit
        // record needed for replay to apply it.
        for _ in 0..2 {
            wal.append(&WalRecord::Insert {
                table_id: 0,
                txn: 0,
                tuple: tuple.clone(),
            })
            .unwrap();
        }
        wal.append(&WalRecord::Delete {
            table_id: 0,
            txn: 0,
            tuple: tuple.clone(),
        })
        .unwrap();
        wal.flush().unwrap();
        wal.sync().unwrap();
    }
    let mut db = Database::open(&dir).unwrap();
    assert_eq!(
        count(&mut db, "twins"),
        1,
        "one of two identical rows must survive the replayed delete"
    );
    let rows = db.query("SELECT a, b FROM twins").unwrap();
    assert_eq!(rows[0][0].as_int(), Some(7));
    std::fs::remove_dir_all(&dir).unwrap();
}

/// Indexes are not WAL-logged (§4.2.1): after a snapshot-based recovery
/// they are rebuilt from the heaps, and must still serve LEXEQUAL index
/// scans.
#[test]
fn recovered_indexes_serve_lexequal_scans_after_checkpoint() {
    let _guard = serial();
    let dir = tmpdir("lexeq");
    {
        let mut slot = None;
        let mut db = Database::open_with_extensions(&dir, |db| {
            slot = Some(install(db)?);
            Ok(())
        })
        .unwrap();
        let _mural = slot.unwrap();
        db.execute("CREATE TABLE book (author UNITEXT)").unwrap();
        db.execute("CREATE INDEX book_mt ON book (author) USING mtree")
            .unwrap();
        for (n, l) in [("Nehru", "English"), ("नेहरू", "Hindi")] {
            db.execute(&format!("INSERT INTO book VALUES (unitext('{n}','{l}'))"))
                .unwrap();
        }
        db.checkpoint().unwrap();
        // Post-checkpoint tail row: recovery must merge snapshot + tail
        // before rebuilding the M-Tree.
        db.execute("INSERT INTO book VALUES (unitext('நேரு','Tamil'))")
            .unwrap();
    }
    let mut slot = None;
    let mut db = Database::open_with_extensions(&dir, |db| {
        slot = Some(install(db)?);
        Ok(())
    })
    .unwrap();
    let _mural = slot.unwrap();
    db.execute("SET lexequal.threshold = 2").unwrap();
    db.execute("SET enable_seqscan = 0").unwrap();
    let r = db
        .execute("SELECT count(*) FROM book WHERE author LEXEQUAL unitext('Nehru','English')")
        .unwrap();
    assert_eq!(r.rows[0][0].as_int(), Some(3));
    assert!(
        r.explain.unwrap().contains("Index Scan"),
        "the rebuilt M-Tree must serve the query"
    );
    std::fs::remove_dir_all(&dir).unwrap();
}

// ----------------------------------------------------------- crash torture

/// Randomized kill-at-any-byte loop: run a random workload (inserts,
/// deletes, checkpoints), then simulate a crash by cutting the WAL at a
/// random byte and reopening.  The recovered table must equal the model
/// state of the longest committed statement prefix — every time.
///
/// Feature-gated: the CI `fault-injection` job runs it; plain
/// `cargo test -q` stays fast.
#[cfg(feature = "fault-injection")]
#[test]
fn random_kill_crash_torture_recovers_committed_prefix() {
    use rand::rngs::SmallRng;
    use rand::{Rng, SeedableRng};

    let _guard = serial();
    let mut rng = SmallRng::seed_from_u64(0xC0FF_EE00);
    for iteration in 0..25 {
        let dir = tmpdir(&format!("torture-{iteration}"));
        // (wal length, model rows) after each committed statement, since
        // the last checkpoint; a checkpoint resets the trace because
        // earlier bytes no longer exist.
        let mut model: Vec<i64> = Vec::new();
        let mut trace: Vec<(u64, Vec<i64>)> = Vec::new();
        let mut next_value = 0i64;
        {
            let mut db = Database::open(&dir).unwrap();
            // Flush-per-statement is enough here: the "crash" is an explicit
            // byte-level cut, so statement boundaries just need to be real
            // file offsets, which flush guarantees.
            db.execute("SET wal_sync_mode = 'flush'").unwrap();
            db.execute("CREATE TABLE t (a INT)").unwrap();
            trace.push((wal_len(&dir), model.clone()));
            let ops = rng.gen_range(5..18);
            for _ in 0..ops {
                match rng.gen_range(0..6) {
                    // Delete one specific value (unique, so the SQL delete
                    // removes exactly the modeled row).
                    0 if !model.is_empty() => {
                        let idx = rng.gen_range(0..model.len());
                        let gone = model.remove(idx);
                        db.execute(&format!("DELETE FROM t WHERE a = {gone}"))
                            .unwrap();
                        trace.push((wal_len(&dir), model.clone()));
                    }
                    1 => {
                        db.checkpoint().unwrap();
                        trace.clear();
                        trace.push((wal_len(&dir), model.clone()));
                    }
                    _ => {
                        db.execute(&format!("INSERT INTO t VALUES ({next_value})"))
                            .unwrap();
                        model.push(next_value);
                        next_value += 1;
                        trace.push((wal_len(&dir), model.clone()));
                    }
                }
            }
        }
        // Kill at a random byte of the post-checkpoint log.
        let wal_path = snapshot::wal_path(&dir);
        let full = std::fs::read(&wal_path).unwrap();
        let floor = trace[0].0;
        let cut = rng.gen_range(floor..full.len() as u64 + 1);
        std::fs::write(&wal_path, &full[..cut as usize]).unwrap();

        let expected = trace
            .iter()
            .rev()
            .find(|(len, _)| *len <= cut)
            .map(|(_, rows)| rows.clone())
            .expect("the post-checkpoint floor is always <= cut");

        let mut db = Database::open(&dir).unwrap();
        let mut got: Vec<i64> = db
            .query("SELECT a FROM t")
            .unwrap()
            .into_iter()
            .map(|r| r[0].as_int().unwrap())
            .collect();
        got.sort_unstable();
        let mut want = expected;
        want.sort_unstable();
        if got != want {
            // Post-mortem: dump the flight recorder + metrics so the CI
            // failure artifact shows what the engine was doing (workload
            // statements, span trees, waits) leading up to the bad cut.
            if let Ok(dump) = mlql::kernel::obs::flight::dump_default() {
                eprintln!("obs dump written to {}", dump.display());
            }
            panic!(
                "iteration {iteration}: cut at byte {cut} of {} must recover the \
                 committed prefix (got {got:?}, want {want:?})",
                full.len()
            );
        }
        drop(db);
        std::fs::remove_dir_all(&dir).unwrap();
    }
}

// ------------------------------------------------------- transaction tails

/// Kill-at-any-byte over a WAL tail holding one *committed* and one
/// *uncommitted* transaction: wherever the crash lands, recovery keeps
/// the committed transaction iff its Commit record survived the cut, and
/// the uncommitted transaction's rows never appear — there is no cut
/// point at which an orphan version becomes visible.
#[test]
fn torn_tail_with_committed_and_uncommitted_txns_at_every_byte() {
    let _guard = serial();
    let dir = tmpdir("txn-torn");
    let setup_end;
    let committed_end;
    {
        let db = Database::open(&dir).unwrap();
        let mut s = db.connect();
        s.execute("CREATE TABLE t (id INT, tag TEXT)").unwrap();
        for i in 0..3 {
            s.execute(&format!("INSERT INTO t VALUES ({i}, 'base')"))
                .unwrap();
        }
        setup_end = wal_len(&dir);

        // Committed transaction: three rows then COMMIT (fsynced, so the
        // file length here is exact).
        let mut a = db.connect();
        a.execute("BEGIN").unwrap();
        for i in 10..13 {
            a.execute(&format!("INSERT INTO t VALUES ({i}, 'committed')"))
                .unwrap();
        }
        a.execute("COMMIT").unwrap();
        committed_end = wal_len(&dir);

        // In-flight transaction: DML appended, no terminator ever —
        // the leaked session means not even an Abort reaches the log.
        let mut b = db.connect();
        b.execute("BEGIN").unwrap();
        for i in 20..23 {
            b.execute(&format!("INSERT INTO t VALUES ({i}, 'orphan')"))
                .unwrap();
        }
        // Another session's group commit flushes the shared tail — B's
        // buffered records reach disk without B ever committing, exactly
        // the state a crash mid-transaction leaves behind.
        db.engine().wal().unwrap().commit().unwrap();
        std::mem::forget(b);
    }
    let wal_path = snapshot::wal_path(&dir);
    let full = std::fs::read(&wal_path).unwrap();
    assert!(
        full.len() as u64 > committed_end,
        "the uncommitted tail must be on disk for the cuts to mean anything"
    );

    for cut in setup_end..=full.len() as u64 {
        std::fs::write(&wal_path, &full[..cut as usize]).unwrap();
        let mut db = Database::open(&dir).unwrap();
        let base = count(&mut db, "t");
        let committed = db
            .query("SELECT count(*) FROM t WHERE tag = 'committed'")
            .unwrap()[0][0]
            .as_int()
            .unwrap();
        let orphans = db
            .query("SELECT count(*) FROM t WHERE tag = 'orphan'")
            .unwrap()[0][0]
            .as_int()
            .unwrap();
        assert_eq!(orphans, 0, "cut at byte {cut}: orphan rows surfaced");
        let expect_committed = if cut >= committed_end { 3 } else { 0 };
        assert_eq!(
            committed,
            expect_committed,
            "cut at byte {cut} of {}: committed txn is all-or-nothing at its Commit record",
            full.len()
        );
        assert_eq!(base, 3 + expect_committed, "cut at byte {cut}");
        drop(db);
        // Reopening truncated the tear; restore the full log for the next cut.
        std::fs::write(&wal_path, &full).unwrap();
    }
    std::fs::remove_dir_all(&dir).unwrap();
}
