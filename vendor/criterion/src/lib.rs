//! Offline stand-in for the `criterion` crate covering the API surface of
//! `crates/bench/benches/micro.rs` (see `vendor/README.md` for why the
//! workspace vendors shims).
//!
//! It really runs the benchmark closures — a short warm-up, then timed
//! iterations — and prints `name ... mean <time> (<iters> iters)` per
//! benchmark, but does none of criterion's statistics, outlier analysis, or
//! HTML reporting.  Numbers from this shim are indicative only; the paper's
//! figures come from the `crates/bench` bins, not from `cargo bench`.

use std::fmt::Display;
use std::time::{Duration, Instant};

/// Opaque value sink, re-exported from std.
pub use std::hint::black_box;

/// Stand-in for `criterion::Criterion`; the tuning setters are accepted and
/// honored where they matter (measurement time, sample size).
pub struct Criterion {
    warm_up: Duration,
    measurement: Duration,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            warm_up: Duration::from_millis(200),
            measurement: Duration::from_secs(1),
        }
    }
}

impl Criterion {
    pub fn warm_up_time(mut self, d: Duration) -> Self {
        self.warm_up = d;
        self
    }

    pub fn measurement_time(mut self, d: Duration) -> Self {
        self.measurement = d;
        self
    }

    pub fn sample_size(self, _n: usize) -> Self {
        self
    }

    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.to_string(),
        }
    }

    pub fn bench_function<F>(&mut self, name: &str, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_one(name, self.warm_up, self.measurement, &mut f);
        self
    }

    pub fn bench_with_input<I, F>(&mut self, id: BenchmarkId, input: &I, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        run_one(&id.label, self.warm_up, self.measurement, &mut |b| {
            f(b, input)
        });
        self
    }
}

/// A named group of related benchmarks.
pub struct BenchmarkGroup<'a> {
    criterion: &'a Criterion,
    name: String,
}

impl BenchmarkGroup<'_> {
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    pub fn bench_function<F>(&mut self, name: &str, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let label = format!("{}/{}", self.name, name);
        run_one(
            &label,
            self.criterion.warm_up,
            self.criterion.measurement,
            &mut f,
        );
        self
    }

    pub fn finish(self) {}
}

/// Identifier for parameterized benchmarks.
pub struct BenchmarkId {
    label: String,
}

impl BenchmarkId {
    pub fn new<S: Into<String>, P: Display>(function_name: S, parameter: P) -> Self {
        BenchmarkId {
            label: format!("{}/{}", function_name.into(), parameter),
        }
    }
}

/// Passed to each benchmark closure; `iter` times the supplied routine.
pub struct Bencher {
    deadline: Instant,
    mean_ns: f64,
    iters: u64,
}

impl Bencher {
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut routine: F) {
        let mut iters: u64 = 0;
        let start = Instant::now();
        loop {
            black_box(routine());
            iters += 1;
            if Instant::now() >= self.deadline {
                break;
            }
        }
        let elapsed = start.elapsed();
        self.iters = iters;
        self.mean_ns = elapsed.as_nanos() as f64 / iters as f64;
    }
}

fn run_one<F: FnMut(&mut Bencher)>(
    label: &str,
    warm_up: Duration,
    measurement: Duration,
    f: &mut F,
) {
    let mut warm = Bencher {
        deadline: Instant::now() + warm_up,
        mean_ns: 0.0,
        iters: 0,
    };
    f(&mut warm);
    let mut b = Bencher {
        deadline: Instant::now() + measurement,
        mean_ns: 0.0,
        iters: 0,
    };
    f(&mut b);
    println!(
        "{label:<48} mean {:>12} ({} iters)",
        format_ns(b.mean_ns),
        b.iters
    );
}

fn format_ns(ns: f64) -> String {
    if ns < 1_000.0 {
        format!("{ns:.1} ns")
    } else if ns < 1_000_000.0 {
        format!("{:.2} µs", ns / 1_000.0)
    } else if ns < 1_000_000_000.0 {
        format!("{:.2} ms", ns / 1_000_000.0)
    } else {
        format!("{:.3} s", ns / 1_000_000_000.0)
    }
}

/// Mirrors criterion's config-carrying macro form.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        fn $name() {
            let mut criterion = $config;
            $($target(&mut criterion);)+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group!(
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        );
    };
}

/// Entry point expanding to `main`.
#[macro_export]
macro_rules! criterion_main {
    ($($group:ident),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_measures_and_groups_run() {
        let mut c = Criterion::default()
            .warm_up_time(Duration::from_millis(1))
            .measurement_time(Duration::from_millis(5));
        let mut group = c.benchmark_group("shim");
        let mut calls = 0u64;
        group.bench_function("count", |b| b.iter(|| calls += 1));
        group.finish();
        assert!(calls > 0);
        c.bench_with_input(BenchmarkId::new("with_input", 3), &4u32, |b, &n| {
            b.iter(|| n * 2)
        });
    }
}
