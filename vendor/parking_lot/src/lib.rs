//! Offline stand-in for the `parking_lot` crate, implementing the subset of
//! its API this workspace uses on top of `std::sync`.
//!
//! The build environment resolves crates.io through a private registry that
//! is not reachable from the sandboxed CI containers, so the workspace
//! vendors API-compatible shims for its small external dependency set (see
//! `vendor/README.md`).  Semantics preserved from the real crate:
//!
//! * `lock()` / `read()` / `write()` return guards directly (no
//!   `LockResult`), and **poisoning is ignored** — a panic while holding a
//!   lock does not wedge later acquisitions, matching parking_lot.
//! * `Condvar::wait` takes `&mut MutexGuard` rather than consuming the
//!   guard; the guard is briefly taken out of and restored into an
//!   internal `Option` around the underlying `std::sync::Condvar::wait`.
//!
//! Not implemented (unused here): fairness control, timed waits, mapped and
//! upgradable guards, `const fn` RwLock guards, send_guard.

use std::fmt;
use std::ops::{Deref, DerefMut};
use std::sync;

/// A mutual-exclusion lock with parking_lot's poison-free API.
pub struct Mutex<T: ?Sized> {
    inner: sync::Mutex<T>,
}

impl<T> Mutex<T> {
    pub const fn new(value: T) -> Self {
        Mutex {
            inner: sync::Mutex::new(value),
        }
    }

    pub fn into_inner(self) -> T {
        self.inner.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> Mutex<T> {
    pub fn lock(&self) -> MutexGuard<'_, T> {
        MutexGuard {
            inner: Some(self.inner.lock().unwrap_or_else(|e| e.into_inner())),
        }
    }

    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.inner.try_lock() {
            Ok(g) => Some(MutexGuard { inner: Some(g) }),
            Err(sync::TryLockError::Poisoned(e)) => Some(MutexGuard {
                inner: Some(e.into_inner()),
            }),
            Err(sync::TryLockError::WouldBlock) => None,
        }
    }

    pub fn get_mut(&mut self) -> &mut T {
        self.inner.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: Default> Default for Mutex<T> {
    fn default() -> Self {
        Mutex::new(T::default())
    }
}

impl<T: fmt::Debug + ?Sized> fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.try_lock() {
            Some(g) => f.debug_struct("Mutex").field("data", &&*g).finish(),
            None => f.write_str("Mutex { <locked> }"),
        }
    }
}

/// RAII guard for [`Mutex`].  The inner `Option` exists only so
/// [`Condvar::wait`] can temporarily hand the std guard to
/// `std::sync::Condvar::wait`; it is `Some` at every other moment.
pub struct MutexGuard<'a, T: ?Sized> {
    inner: Option<sync::MutexGuard<'a, T>>,
}

impl<T: ?Sized> Deref for MutexGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        self.inner.as_ref().expect("guard taken during wait")
    }
}

impl<T: ?Sized> DerefMut for MutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        self.inner.as_mut().expect("guard taken during wait")
    }
}

/// Condition variable usable with [`Mutex`]; `wait` borrows the guard
/// mutably instead of consuming it, like parking_lot.
pub struct Condvar {
    inner: sync::Condvar,
}

impl Condvar {
    pub const fn new() -> Self {
        Condvar {
            inner: sync::Condvar::new(),
        }
    }

    pub fn wait<T>(&self, guard: &mut MutexGuard<'_, T>) {
        let inner = guard.inner.take().expect("guard taken during wait");
        let inner = self.inner.wait(inner).unwrap_or_else(|e| e.into_inner());
        guard.inner = Some(inner);
    }

    pub fn notify_one(&self) -> bool {
        self.inner.notify_one();
        true
    }

    pub fn notify_all(&self) -> usize {
        self.inner.notify_all();
        0
    }
}

impl Default for Condvar {
    fn default() -> Self {
        Condvar::new()
    }
}

/// Reader-writer lock with parking_lot's poison-free API.
pub struct RwLock<T: ?Sized> {
    inner: sync::RwLock<T>,
}

impl<T> RwLock<T> {
    pub const fn new(value: T) -> Self {
        RwLock {
            inner: sync::RwLock::new(value),
        }
    }

    pub fn into_inner(self) -> T {
        self.inner.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> RwLock<T> {
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        RwLockReadGuard {
            inner: self.inner.read().unwrap_or_else(|e| e.into_inner()),
        }
    }

    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        RwLockWriteGuard {
            inner: self.inner.write().unwrap_or_else(|e| e.into_inner()),
        }
    }

    pub fn try_read(&self) -> Option<RwLockReadGuard<'_, T>> {
        match self.inner.try_read() {
            Ok(g) => Some(RwLockReadGuard { inner: g }),
            Err(sync::TryLockError::Poisoned(e)) => Some(RwLockReadGuard {
                inner: e.into_inner(),
            }),
            Err(sync::TryLockError::WouldBlock) => None,
        }
    }

    pub fn try_write(&self) -> Option<RwLockWriteGuard<'_, T>> {
        match self.inner.try_write() {
            Ok(g) => Some(RwLockWriteGuard { inner: g }),
            Err(sync::TryLockError::Poisoned(e)) => Some(RwLockWriteGuard {
                inner: e.into_inner(),
            }),
            Err(sync::TryLockError::WouldBlock) => None,
        }
    }

    pub fn get_mut(&mut self) -> &mut T {
        self.inner.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: Default> Default for RwLock<T> {
    fn default() -> Self {
        RwLock::new(T::default())
    }
}

impl<T: fmt::Debug + ?Sized> fmt::Debug for RwLock<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.try_read() {
            Some(g) => f.debug_struct("RwLock").field("data", &&*g).finish(),
            None => f.write_str("RwLock { <locked> }"),
        }
    }
}

/// Shared-read RAII guard for [`RwLock`].
pub struct RwLockReadGuard<'a, T: ?Sized> {
    inner: sync::RwLockReadGuard<'a, T>,
}

impl<T: ?Sized> Deref for RwLockReadGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.inner
    }
}

/// Exclusive-write RAII guard for [`RwLock`].
pub struct RwLockWriteGuard<'a, T: ?Sized> {
    inner: sync::RwLockWriteGuard<'a, T>,
}

impl<T: ?Sized> Deref for RwLockWriteGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.inner
    }
}

impl<T: ?Sized> DerefMut for RwLockWriteGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        &mut self.inner
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;
    use std::time::Duration;

    #[test]
    fn mutex_roundtrip_and_poison_recovery() {
        let m = Arc::new(Mutex::new(0u32));
        *m.lock() += 1;
        let m2 = Arc::clone(&m);
        let _ = std::thread::spawn(move || {
            let _g = m2.lock();
            panic!("poison on purpose");
        })
        .join();
        // parking_lot semantics: a panicking holder must not wedge the lock.
        *m.lock() += 1;
        assert_eq!(*m.lock(), 2);
    }

    #[test]
    fn condvar_wait_restores_guard() {
        let pair = Arc::new((Mutex::new(false), Condvar::new()));
        let pair2 = Arc::clone(&pair);
        let h = std::thread::spawn(move || {
            std::thread::sleep(Duration::from_millis(20));
            *pair2.0.lock() = true;
            pair2.1.notify_all();
        });
        let mut ready = pair.0.lock();
        while !*ready {
            pair.1.wait(&mut ready);
        }
        assert!(*ready);
        drop(ready);
        h.join().unwrap();
    }

    #[test]
    fn rwlock_readers_and_writer() {
        let l = RwLock::new(vec![1, 2]);
        {
            let r1 = l.read();
            let r2 = l.read();
            assert_eq!(r1.len() + r2.len(), 4);
        }
        l.write().push(3);
        assert_eq!(l.read().len(), 3);
    }
}
