//! Offline property-testing stand-in for the `proptest` crate, implementing
//! the subset of its API this workspace uses (see `vendor/README.md` for
//! why the workspace vendors shims).
//!
//! What works: the `proptest!` macro (with `#![proptest_config(..)]`),
//! `prop_assert!` / `prop_assert_eq!` / `prop_assert_ne!`, `prop_oneof!`,
//! `Just`, `any::<T>()`, integer-range strategies, tuple strategies,
//! `Strategy::prop_map`, `proptest::collection::vec`, and regex-like
//! `&str` strategies covering literals, `.`, `[..]` classes, and the
//! `{m,n}` / `{n}` / `?` / `*` / `+` quantifiers.
//!
//! What is intentionally missing: shrinking (a failing case reports the
//! exact generated inputs but is not minimized), persisted failure seeds,
//! and `prop_filter`/`prop_flat_map`.  Generation is deterministic — every
//! test function derives its RNG seed from its own name, so a failure
//! reproduces on the next run.

/// Runtime pieces: config and the deterministic generation RNG.
pub mod test_runner {
    /// Mirrors `proptest::test_runner::Config` for the fields used here.
    #[derive(Debug, Clone)]
    pub struct ProptestConfig {
        pub cases: u32,
    }

    impl ProptestConfig {
        pub fn with_cases(cases: u32) -> Self {
            ProptestConfig { cases }
        }
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            // The real crate defaults to 256; 64 keeps single-core CI rounds
            // quick while still exercising each property meaningfully.
            ProptestConfig { cases: 64 }
        }
    }

    /// SplitMix64 generation source.  Seeded per test function from the
    /// function's name so runs are reproducible and distinct tests see
    /// distinct streams.
    #[derive(Debug, Clone)]
    pub struct TestRng {
        state: u64,
    }

    impl TestRng {
        pub fn from_name(name: &str) -> Self {
            // FNV-1a over the test name.
            let mut h: u64 = 0xcbf2_9ce4_8422_2325;
            for b in name.bytes() {
                h ^= u64::from(b);
                h = h.wrapping_mul(0x1000_0000_01b3);
            }
            TestRng { state: h }
        }

        pub fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }

        /// Uniform value in `[0, bound)`; `bound` must be non-zero.
        pub fn below(&mut self, bound: u64) -> u64 {
            debug_assert!(bound > 0);
            self.next_u64() % bound
        }

        /// Uniform value in `[lo, hi)` as usize; panics if empty.
        pub fn usize_in(&mut self, lo: usize, hi: usize) -> usize {
            assert!(lo < hi, "cannot sample empty range {lo}..{hi}");
            lo + self.below((hi - lo) as u64) as usize
        }
    }
}

/// The `Strategy` trait and combinators.
pub mod strategy {
    use super::test_runner::TestRng;

    /// A recipe for generating values of `Self::Value`.
    pub trait Strategy {
        type Value;

        fn generate(&self, rng: &mut TestRng) -> Self::Value;

        fn prop_map<O, F>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
            F: Fn(Self::Value) -> O,
        {
            Map { source: self, f }
        }

        fn boxed(self) -> BoxedStrategy<Self::Value>
        where
            Self: Sized + 'static,
        {
            BoxedStrategy {
                gen_fn: Box::new(move |rng| self.generate(rng)),
            }
        }
    }

    /// Always yields a clone of the given value.
    #[derive(Debug, Clone)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;
        fn generate(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    /// Result of [`Strategy::prop_map`].
    pub struct Map<S, F> {
        source: S,
        f: F,
    }

    impl<S, F, O> Strategy for Map<S, F>
    where
        S: Strategy,
        F: Fn(S::Value) -> O,
    {
        type Value = O;
        fn generate(&self, rng: &mut TestRng) -> O {
            (self.f)(self.source.generate(rng))
        }
    }

    /// Type-erased strategy, the currency of `prop_oneof!`.
    pub struct BoxedStrategy<V> {
        gen_fn: Box<dyn Fn(&mut TestRng) -> V>,
    }

    impl<V> Strategy for BoxedStrategy<V> {
        type Value = V;
        fn generate(&self, rng: &mut TestRng) -> V {
            (self.gen_fn)(rng)
        }
    }

    /// Uniform choice among same-valued strategies (`prop_oneof!`).
    pub struct Union<V> {
        arms: Vec<BoxedStrategy<V>>,
    }

    impl<V> Union<V> {
        pub fn new(arms: Vec<BoxedStrategy<V>>) -> Self {
            assert!(!arms.is_empty(), "prop_oneof! needs at least one arm");
            Union { arms }
        }
    }

    impl<V> Strategy for Union<V> {
        type Value = V;
        fn generate(&self, rng: &mut TestRng) -> V {
            let i = rng.usize_in(0, self.arms.len());
            self.arms[i].generate(rng)
        }
    }

    macro_rules! impl_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for std::ops::Range<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    assert!(
                        self.start < self.end,
                        "cannot sample empty range {}..{}",
                        self.start,
                        self.end
                    );
                    let span = self.end.wrapping_sub(self.start) as u64;
                    self.start.wrapping_add((rng.next_u64() % span) as $t)
                }
            }
        )*};
    }

    impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64);

    impl<A: Strategy, B: Strategy> Strategy for (A, B) {
        type Value = (A::Value, B::Value);
        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            (self.0.generate(rng), self.1.generate(rng))
        }
    }

    impl<A: Strategy, B: Strategy, C: Strategy> Strategy for (A, B, C) {
        type Value = (A::Value, B::Value, C::Value);
        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            (
                self.0.generate(rng),
                self.1.generate(rng),
                self.2.generate(rng),
            )
        }
    }

    /// `&str` patterns act as regex-like string strategies, as in the real
    /// crate.  Supported: literal chars, `.`, `[abc]` / `[a-z]` classes,
    /// `\x` escapes, and the `{m,n}` / `{n}` / `?` / `*` / `+` quantifiers
    /// (`*`/`+` are capped at 8 repetitions).
    impl Strategy for &'static str {
        type Value = String;
        fn generate(&self, rng: &mut TestRng) -> String {
            generate_like_regex(self, rng)
        }
    }

    enum Atom {
        Any,
        Class(Vec<char>),
        Lit(char),
    }

    fn parse_pattern(pattern: &str) -> Vec<(Atom, u32, u32)> {
        let mut chars = pattern.chars().peekable();
        let mut atoms = Vec::new();
        while let Some(c) = chars.next() {
            let atom = match c {
                '.' => Atom::Any,
                '\\' => Atom::Lit(chars.next().unwrap_or('\\')),
                '[' => {
                    let mut class = Vec::new();
                    let mut prev: Option<char> = None;
                    for m in chars.by_ref() {
                        match m {
                            ']' => break,
                            '-' if prev.is_some() => {
                                // Expanded on the next char as a range.
                                class.push('-');
                            }
                            m => {
                                if let (Some(&'-'), Some(lo)) = (class.last(), prev) {
                                    class.pop();
                                    for r in (lo as u32 + 1)..=(m as u32) {
                                        if let Some(ch) = char::from_u32(r) {
                                            class.push(ch);
                                        }
                                    }
                                } else {
                                    class.push(m);
                                }
                                prev = Some(m);
                            }
                        }
                    }
                    assert!(!class.is_empty(), "empty character class in {pattern:?}");
                    Atom::Class(class)
                }
                c => Atom::Lit(c),
            };
            let (min, max) = match chars.peek() {
                Some('?') => {
                    chars.next();
                    (0, 1)
                }
                Some('*') => {
                    chars.next();
                    (0, 8)
                }
                Some('+') => {
                    chars.next();
                    (1, 8)
                }
                Some('{') => {
                    chars.next();
                    let mut spec = String::new();
                    for d in chars.by_ref() {
                        if d == '}' {
                            break;
                        }
                        spec.push(d);
                    }
                    match spec.split_once(',') {
                        Some((lo, hi)) => (
                            lo.trim().parse().expect("bad {m,n} quantifier"),
                            hi.trim().parse().expect("bad {m,n} quantifier"),
                        ),
                        None => {
                            let n = spec.trim().parse().expect("bad {n} quantifier");
                            (n, n)
                        }
                    }
                }
                _ => (1, 1),
            };
            atoms.push((atom, min, max));
        }
        atoms
    }

    /// Characters `.` draws from: mostly printable ASCII, with a slice of
    /// multi-byte and control characters so parser fuzzing sees real UTF-8.
    const EXOTIC: &[char] = &[
        '\n', '\t', '\r', '\0', 'é', 'ß', 'न', 'த', '中', '🦀', '\u{200d}', '\'', '"', '\\',
    ];

    fn generate_like_regex(pattern: &str, rng: &mut TestRng) -> String {
        let mut out = String::new();
        for (atom, min, max) in parse_pattern(pattern) {
            let n = if max > min {
                min + rng.below(u64::from(max - min + 1)) as u32
            } else {
                min
            };
            for _ in 0..n {
                match &atom {
                    Atom::Any => {
                        if rng.below(8) == 0 {
                            out.push(EXOTIC[rng.usize_in(0, EXOTIC.len())]);
                        } else {
                            out.push((0x20 + rng.below(0x5F) as u8) as char);
                        }
                    }
                    Atom::Class(class) => out.push(class[rng.usize_in(0, class.len())]),
                    Atom::Lit(c) => out.push(*c),
                }
            }
        }
        out
    }
}

/// `any::<T>()` — uniform "arbitrary" values for primitive types.
pub mod arbitrary {
    use super::strategy::Strategy;
    use super::test_runner::TestRng;
    use std::marker::PhantomData;

    pub struct Any<T> {
        _marker: PhantomData<T>,
    }

    pub fn any<T: ArbPrimitive>() -> Any<T> {
        Any {
            _marker: PhantomData,
        }
    }

    /// Primitive types `any::<T>()` supports.
    pub trait ArbPrimitive {
        fn arbitrary(rng: &mut TestRng) -> Self;
    }

    impl<T: ArbPrimitive> Strategy for Any<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            T::arbitrary(rng)
        }
    }

    macro_rules! impl_arb_int {
        ($($t:ty),*) => {$(
            impl ArbPrimitive for $t {
                fn arbitrary(rng: &mut TestRng) -> $t {
                    rng.next_u64() as $t
                }
            }
        )*};
    }

    impl_arb_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64);

    impl ArbPrimitive for bool {
        fn arbitrary(rng: &mut TestRng) -> bool {
            rng.next_u64() & 1 == 1
        }
    }

    impl ArbPrimitive for f64 {
        fn arbitrary(rng: &mut TestRng) -> f64 {
            // 1-in-8 cases draw from the awkward corners (NaN, infinities,
            // signed zero); the rest are raw bit patterns, which already
            // include denormals and more NaNs.
            match rng.below(8) {
                0 => match rng.below(5) {
                    0 => f64::NAN,
                    1 => f64::INFINITY,
                    2 => f64::NEG_INFINITY,
                    3 => 0.0,
                    _ => -0.0,
                },
                _ => f64::from_bits(rng.next_u64()),
            }
        }
    }
}

/// `proptest::collection` — sized containers of sub-strategies.
pub mod collection {
    use super::strategy::Strategy;
    use super::test_runner::TestRng;
    use std::ops::Range;

    pub fn vec<S: Strategy>(element: S, size: Range<usize>) -> VecStrategy<S> {
        assert!(size.start < size.end, "cannot sample empty size range");
        VecStrategy { element, size }
    }

    pub struct VecStrategy<S> {
        element: S,
        size: Range<usize>,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let n = rng.usize_in(self.size.start, self.size.end);
            (0..n).map(|_| self.element.generate(rng)).collect()
        }
    }
}

/// Everything a `use proptest::prelude::*` caller expects in scope.
pub mod prelude {
    pub use crate::arbitrary::any;
    pub use crate::strategy::{Just, Strategy};
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest};
}

/// The test-defining macro.  Each `fn name(arg in strategy, ..) { body }`
/// becomes a plain test running `body` against `config.cases` generated
/// inputs; on failure the panic message includes the offending inputs.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::proptest!(@run ($config) $($rest)*);
    };
    (@run ($config:expr) $(
        $(#[$meta:meta])*
        fn $name:ident($($arg:pat in $strategy:expr),+ $(,)?) $body:block
    )*) => {$(
        $(#[$meta])*
        fn $name() {
            let config = $config;
            let mut rng = $crate::test_runner::TestRng::from_name(concat!(
                module_path!(),
                "::",
                stringify!($name)
            ));
            for _case in 0..config.cases {
                $(let $arg = $crate::strategy::Strategy::generate(&($strategy), &mut rng);)+
                $body
            }
        }
    )*};
    ($($rest:tt)*) => {
        $crate::proptest!(@run ($crate::test_runner::ProptestConfig::default()) $($rest)*);
    };
}

/// Boolean property assertion; panics (fails the case) when false.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => { assert!($cond) };
    ($cond:expr, $($fmt:tt)+) => { assert!($cond, $($fmt)+) };
}

/// Equality property assertion.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr) => { assert_eq!($left, $right) };
    ($left:expr, $right:expr, $($fmt:tt)+) => { assert_eq!($left, $right, $($fmt)+) };
}

/// Inequality property assertion.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr) => { assert_ne!($left, $right) };
    ($left:expr, $right:expr, $($fmt:tt)+) => { assert_ne!($left, $right, $($fmt)+) };
}

/// Uniform choice among strategies producing the same value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($arm:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $($crate::strategy::Strategy::boxed($arm)),+
        ])
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;
    use crate::test_runner::TestRng;

    #[test]
    fn regex_like_generation_matches_shape() {
        let mut rng = TestRng::from_name("shape");
        for _ in 0..200 {
            let s = Strategy::generate(&"[nrtk][aeu]{1,3}[nrs]?", &mut rng);
            let n = s.chars().count();
            assert!((2..=5).contains(&n), "bad length for {s:?}");
            let first = s.chars().next().unwrap();
            assert!("nrtk".contains(first));
        }
        for _ in 0..50 {
            let s = Strategy::generate(&".{0,40}", &mut rng);
            assert!(s.chars().count() <= 40);
        }
        assert_eq!(Strategy::generate(&"ab{2}c", &mut rng), "abbc");
    }

    #[test]
    fn ranges_tuples_and_vec_compose() {
        let mut rng = TestRng::from_name("compose");
        let strat = crate::collection::vec((0u8..4, 10usize..20), 1..5);
        for _ in 0..100 {
            let v = Strategy::generate(&strat, &mut rng);
            assert!((1..5).contains(&v.len()));
            for (a, b) in v {
                assert!(a < 4);
                assert!((10..20).contains(&b));
            }
        }
    }

    #[test]
    fn oneof_and_map_reach_every_arm() {
        let strat = prop_oneof![
            Just(0u8),
            (1u8..2).prop_map(|x| x),
            any::<bool>().prop_map(u8::from),
        ];
        let mut rng = TestRng::from_name("arms");
        let mut seen = [false; 2];
        for _ in 0..200 {
            let v = Strategy::generate(&strat, &mut rng);
            assert!(v <= 1);
            seen[v as usize] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        /// The macro itself: multiple args, trailing comma, config block.
        #[test]
        fn macro_wires_args(a in 0i64..10, b in crate::collection::vec(any::<u8>(), 0..4),) {
            prop_assert!((0..10).contains(&a));
            prop_assert!(b.len() < 4);
            prop_assert_eq!(a, a);
            prop_assert_ne!(a - 1, a);
        }
    }

    proptest! {
        #[test]
        fn macro_defaults_apply(s in ".{0,10}") {
            prop_assert!(s.chars().count() <= 10);
        }
    }
}
