//! Offline stand-in for the `crossbeam` crate, covering the two APIs this
//! workspace uses: `crossbeam::scope` / `Scope::spawn` scoped threads and
//! `crossbeam::channel` mpmc channels (see `vendor/README.md` for why the
//! workspace vendors shims).
//!
//! Behavioral difference from the real crate: if a spawned thread panics
//! and its handle was never joined, `std::thread::scope` propagates the
//! panic when the scope closes instead of returning `Err` — either way the
//! enclosing test fails with the child's panic payload.

use std::thread;

pub mod channel;

/// Scoped-thread handle mirroring `crossbeam::thread::Scope`.  The spawn
/// closure receives a `&Scope` so children can spawn grandchildren, exactly
/// like the real crate.
pub struct Scope<'scope, 'env: 'scope> {
    inner: &'scope thread::Scope<'scope, 'env>,
}

impl<'scope, 'env> Scope<'scope, 'env> {
    pub fn spawn<F, T>(&self, f: F) -> ScopedJoinHandle<'scope, T>
    where
        F: FnOnce(&Scope<'scope, 'env>) -> T + Send + 'scope,
        T: Send + 'scope,
    {
        let inner = self.inner;
        ScopedJoinHandle {
            inner: inner.spawn(move || f(&Scope { inner })),
        }
    }
}

/// Join handle for a scoped thread.
pub struct ScopedJoinHandle<'scope, T> {
    inner: thread::ScopedJoinHandle<'scope, T>,
}

impl<T> ScopedJoinHandle<'_, T> {
    pub fn join(self) -> thread::Result<T> {
        self.inner.join()
    }
}

/// Run `f` with a scope whose spawned threads may borrow from the caller's
/// stack; every thread is joined before this returns.
pub fn scope<'env, F, R>(f: F) -> thread::Result<R>
where
    F: for<'scope> FnOnce(&Scope<'scope, 'env>) -> R,
{
    Ok(thread::scope(|s| {
        let wrapper = Scope { inner: s };
        f(&wrapper)
    }))
}

#[cfg(test)]
mod tests {
    #[test]
    fn scoped_threads_borrow_stack_data() {
        let data = vec![1u64, 2, 3, 4];
        let data = &data;
        let total = crate::scope(|scope| {
            let mut handles = Vec::new();
            for &v in data.iter() {
                handles.push(scope.spawn(move |_| v * 10));
            }
            handles.into_iter().map(|h| h.join().unwrap()).sum::<u64>()
        })
        .unwrap();
        assert_eq!(total, 100);
    }

    #[test]
    fn nested_spawn_through_scope_arg() {
        let n = crate::scope(|scope| {
            scope
                .spawn(|inner| inner.spawn(|_| 7).join().unwrap())
                .join()
                .unwrap()
        })
        .unwrap();
        assert_eq!(n, 7);
    }
}
