//! Offline stand-in for `crossbeam::channel`: an unbounded mpmc channel
//! over a `Mutex<VecDeque>` plus a `Condvar`.  It mirrors the subset of
//! the real crate's surface the workspace needs — `unbounded()`, cloneable
//! `Sender`/`Receiver`, blocking `recv`, non-blocking `try_recv`, and the
//! disconnect semantics (a `recv` on an empty channel whose senders are
//! all dropped returns `Err(RecvError)`).
//!
//! The real crate's lock-free segmented queue is faster under heavy
//! contention, but the workloads here move row *batches* (tens of rows per
//! message), so per-message mutex cost is noise next to predicate
//! evaluation.

use std::collections::VecDeque;
use std::fmt;
use std::sync::{Arc, Condvar, Mutex};

/// Error returned by [`Receiver::recv`] when the channel is empty and all
/// senders have been dropped.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RecvError;

impl fmt::Display for RecvError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "receiving on an empty and disconnected channel")
    }
}

impl std::error::Error for RecvError {}

/// Error returned by [`Receiver::try_recv`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TryRecvError {
    /// The channel is currently empty but senders remain.
    Empty,
    /// The channel is empty and all senders have been dropped.
    Disconnected,
}

/// Error returned by [`Sender::send`] when all receivers have been
/// dropped.  Carries the unsent message, like the real crate.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SendError<T>(pub T);

impl<T> fmt::Display for SendError<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "sending on a disconnected channel")
    }
}

struct Shared<T> {
    inner: Mutex<Inner<T>>,
    /// Signaled on every send and on the last-sender / last-receiver drop.
    available: Condvar,
}

struct Inner<T> {
    queue: VecDeque<T>,
    senders: usize,
    receivers: usize,
}

/// The sending half of an unbounded channel.  Clone to add producers.
pub struct Sender<T> {
    shared: Arc<Shared<T>>,
}

/// The receiving half of an unbounded channel.  Clone to add consumers;
/// each message is delivered to exactly one receiver.
pub struct Receiver<T> {
    shared: Arc<Shared<T>>,
}

/// Create an unbounded mpmc channel.
pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
    let shared = Arc::new(Shared {
        inner: Mutex::new(Inner {
            queue: VecDeque::new(),
            senders: 1,
            receivers: 1,
        }),
        available: Condvar::new(),
    });
    (
        Sender {
            shared: Arc::clone(&shared),
        },
        Receiver { shared },
    )
}

impl<T> Sender<T> {
    /// Enqueue a message; never blocks (the channel is unbounded).
    pub fn send(&self, msg: T) -> Result<(), SendError<T>> {
        let mut inner = self.shared.inner.lock().unwrap();
        if inner.receivers == 0 {
            return Err(SendError(msg));
        }
        inner.queue.push_back(msg);
        drop(inner);
        self.shared.available.notify_one();
        Ok(())
    }
}

impl<T> Clone for Sender<T> {
    fn clone(&self) -> Self {
        self.shared.inner.lock().unwrap().senders += 1;
        Sender {
            shared: Arc::clone(&self.shared),
        }
    }
}

impl<T> Drop for Sender<T> {
    fn drop(&mut self) {
        let mut inner = self.shared.inner.lock().unwrap();
        inner.senders -= 1;
        let last = inner.senders == 0;
        drop(inner);
        if last {
            // Wake every blocked receiver so they observe the disconnect.
            self.shared.available.notify_all();
        }
    }
}

impl<T> Receiver<T> {
    /// Block until a message arrives or every sender is dropped.
    pub fn recv(&self) -> Result<T, RecvError> {
        let mut inner = self.shared.inner.lock().unwrap();
        loop {
            if let Some(msg) = inner.queue.pop_front() {
                return Ok(msg);
            }
            if inner.senders == 0 {
                return Err(RecvError);
            }
            inner = self.shared.available.wait(inner).unwrap();
        }
    }

    /// Pop a message without blocking.
    pub fn try_recv(&self) -> Result<T, TryRecvError> {
        let mut inner = self.shared.inner.lock().unwrap();
        match inner.queue.pop_front() {
            Some(msg) => Ok(msg),
            None if inner.senders == 0 => Err(TryRecvError::Disconnected),
            None => Err(TryRecvError::Empty),
        }
    }

    /// Number of queued messages (diagnostics only; racy by nature).
    pub fn len(&self) -> usize {
        self.shared.inner.lock().unwrap().queue.len()
    }

    /// Whether the queue is currently empty (racy by nature).
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

impl<T> Clone for Receiver<T> {
    fn clone(&self) -> Self {
        self.shared.inner.lock().unwrap().receivers += 1;
        Receiver {
            shared: Arc::clone(&self.shared),
        }
    }
}

impl<T> Drop for Receiver<T> {
    fn drop(&mut self) {
        self.shared.inner.lock().unwrap().receivers -= 1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::thread;

    #[test]
    fn fifo_within_a_single_producer() {
        let (tx, rx) = unbounded();
        for i in 0..5 {
            tx.send(i).unwrap();
        }
        let got: Vec<i32> = (0..5).map(|_| rx.recv().unwrap()).collect();
        assert_eq!(got, vec![0, 1, 2, 3, 4]);
    }

    #[test]
    fn recv_disconnects_after_all_senders_drop() {
        let (tx, rx) = unbounded::<u32>();
        let tx2 = tx.clone();
        tx.send(1).unwrap();
        drop(tx);
        tx2.send(2).unwrap();
        drop(tx2);
        assert_eq!(rx.recv(), Ok(1));
        assert_eq!(rx.recv(), Ok(2));
        assert_eq!(rx.recv(), Err(RecvError));
    }

    #[test]
    fn send_fails_after_all_receivers_drop() {
        let (tx, rx) = unbounded::<u32>();
        drop(rx);
        assert_eq!(tx.send(9), Err(SendError(9)));
    }

    #[test]
    fn try_recv_distinguishes_empty_from_disconnected() {
        let (tx, rx) = unbounded::<u32>();
        assert_eq!(rx.try_recv(), Err(TryRecvError::Empty));
        tx.send(3).unwrap();
        assert_eq!(rx.try_recv(), Ok(3));
        drop(tx);
        assert_eq!(rx.try_recv(), Err(TryRecvError::Disconnected));
    }

    #[test]
    fn mpmc_delivers_every_message_exactly_once() {
        let (tx, rx) = unbounded::<u64>();
        let n_producers = 4u32;
        let per_producer = 250u64;
        let mut producers = Vec::new();
        for p in 0..n_producers {
            let tx = tx.clone();
            producers.push(thread::spawn(move || {
                for i in 0..per_producer {
                    tx.send(u64::from(p) * per_producer + i).unwrap();
                }
            }));
        }
        drop(tx);
        let mut consumers = Vec::new();
        for _ in 0..3 {
            let rx = rx.clone();
            consumers.push(thread::spawn(move || {
                let mut got = Vec::new();
                while let Ok(v) = rx.recv() {
                    got.push(v);
                }
                got
            }));
        }
        for h in producers {
            h.join().unwrap();
        }
        let mut all: Vec<u64> = consumers
            .into_iter()
            .flat_map(|h| h.join().unwrap())
            .collect();
        all.sort_unstable();
        let expect: Vec<u64> = (0..u64::from(n_producers) * per_producer).collect();
        assert_eq!(all, expect);
    }
}
