//! Offline stand-in for the `rand` crate, implementing the subset of its 0.8
//! API this workspace uses: `Rng::gen_range` / `Rng::gen_bool`,
//! `SeedableRng::seed_from_u64`, and the `StdRng` / `SmallRng` generator
//! types.  See `vendor/README.md` for why the workspace vendors shims.
//!
//! Both generators are SplitMix64 — statistically fine for data generation
//! and randomized testing, **not** cryptographic, and producing different
//! streams than the real crate's ChaCha/Xoshiro for the same seed.  Nothing
//! in this workspace asserts on exact generated values, only on
//! reproducibility for a fixed seed, which SplitMix64 provides.

use std::ops::Range;

/// Core of every generator: a 64-bit output step.
pub trait RngCore {
    fn next_u64(&mut self) -> u64;

    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// User-facing sampling methods, blanket-implemented for every [`RngCore`].
pub trait Rng: RngCore {
    /// Uniform sample from a half-open range. Panics on an empty range,
    /// like the real crate.
    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        R: SampleRange<T>,
        Self: Sized,
    {
        range.sample_single(self)
    }

    /// Bernoulli trial with probability `p` of returning `true`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        assert!((0.0..=1.0).contains(&p), "gen_bool p must be in [0, 1]");
        // 53 uniform mantissa bits, the standard float-from-u64 recipe.
        let unit = (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
        unit < p
    }
}

impl<R: RngCore> Rng for R {}

/// Construction of a generator from seed material.
pub trait SeedableRng: Sized {
    fn seed_from_u64(state: u64) -> Self;
}

/// A range that `Rng::gen_range` can sample from.
pub trait SampleRange<T> {
    fn sample_single<G: RngCore>(self, rng: &mut G) -> T;
}

/// Element types uniform ranges can be sampled over.  The single blanket
/// `SampleRange` impl below keeps type inference working exactly like the
/// real crate's (`arr[rng.gen_range(0..2)]` must infer `usize` from the
/// indexing context, not fall back to `i32`).
pub trait SampleUniform: Copy + PartialOrd + std::fmt::Display {
    fn sample_between<G: RngCore>(lo: Self, hi: Self, rng: &mut G) -> Self;
}

impl<T: SampleUniform> SampleRange<T> for Range<T> {
    fn sample_single<G: RngCore>(self, rng: &mut G) -> T {
        assert!(
            self.start < self.end,
            "cannot sample empty range {}..{}",
            self.start,
            self.end
        );
        T::sample_between(self.start, self.end, rng)
    }
}

macro_rules! impl_sample_uniform_int {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_between<G: RngCore>(lo: $t, hi: $t, rng: &mut G) -> $t {
                // Wrapping arithmetic handles signed ranges: the two's
                // complement difference is the span as an unsigned value.
                let span = hi.wrapping_sub(lo) as u64;
                lo.wrapping_add((rng.next_u64() % span) as $t)
            }
        }
    )*};
}

impl_sample_uniform_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64);

impl SampleUniform for f64 {
    fn sample_between<G: RngCore>(lo: f64, hi: f64, rng: &mut G) -> f64 {
        let unit = (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
        lo + unit * (hi - lo)
    }
}

fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Generator types, mirroring `rand::rngs`.
pub mod rngs {
    use super::{splitmix64, RngCore, SeedableRng};

    /// Stand-in for `rand::rngs::StdRng` (SplitMix64 here, not ChaCha12).
    #[derive(Debug, Clone)]
    pub struct StdRng {
        state: u64,
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            splitmix64(&mut self.state)
        }
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(state: u64) -> Self {
            StdRng { state }
        }
    }

    /// Stand-in for `rand::rngs::SmallRng`.
    #[derive(Debug, Clone)]
    pub struct SmallRng {
        state: u64,
    }

    impl RngCore for SmallRng {
        fn next_u64(&mut self) -> u64 {
            splitmix64(&mut self.state)
        }
    }

    impl SeedableRng for SmallRng {
        fn seed_from_u64(state: u64) -> Self {
            // Offset so Std and Small streams differ for the same seed.
            SmallRng {
                state: state ^ 0x6A09_E667_F3BC_C909,
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_for_fixed_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.gen_range(0usize..1000), b.gen_range(0usize..1000));
        }
    }

    #[test]
    fn gen_range_respects_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let v = rng.gen_range(3i64..17);
            assert!((3..17).contains(&v));
            let u = rng.gen_range(0u32..2);
            assert!(u < 2);
        }
    }

    #[test]
    fn gen_bool_tracks_probability() {
        let mut rng = StdRng::seed_from_u64(1);
        let hits = (0..20_000).filter(|_| rng.gen_bool(0.25)).count();
        let rate = hits as f64 / 20_000.0;
        assert!((0.22..0.28).contains(&rate), "rate {rate}");
        assert!(!(0..100).any(|_| rng.gen_bool(0.0)));
        assert!((0..100).all(|_| rng.gen_bool(1.0)));
    }

    #[test]
    #[should_panic(expected = "empty range")]
    fn empty_range_panics() {
        let mut rng = StdRng::seed_from_u64(0);
        let _ = rng.gen_range(5usize..5);
    }
}
