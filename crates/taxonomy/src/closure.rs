//! Transitive-closure computation with hash-table memoization (§4.3).
//!
//! The paper's core Ω implementation:
//!
//! > "Every time a closure for a RHS attribute value is computed, it is
//! > materialized as a hash table in the main memory ... the hash table is
//! > checked for possible reuse for several RHS values."
//!
//! [`ClosureCache`] is exactly that: closure of a synset = the set of the
//! synset itself, all its hyponym descendants, their cross-lingual
//! equivalents, and the descendants of those equivalents — i.e. reachability
//! over `children ∪ equivalents` edges.  Computed once per RHS synset, kept
//! as an `Arc<HashSet>` so membership probes for a stream of LHS values are
//! O(1) and allocation-free.

use crate::hierarchy::{SynsetId, Taxonomy};
use std::collections::{HashMap, HashSet};
use std::sync::Arc;

/// Memoized transitive closures over a pinned [`Taxonomy`].
#[derive(Debug, Default)]
pub struct ClosureCache {
    cache: HashMap<SynsetId, Arc<HashSet<SynsetId>>>,
    /// Cache hits (reused closures) — exposed for the §4.3 ablation bench.
    hits: u64,
    /// Cache misses (closures actually computed).
    misses: u64,
}

impl ClosureCache {
    /// Fresh, empty cache.
    pub fn new() -> Self {
        ClosureCache::default()
    }

    /// The transitive closure of `root`: all synsets reachable over hyponym
    /// and equivalence edges, including `root` itself.  Memoized.
    pub fn closure(&mut self, taxonomy: &Taxonomy, root: SynsetId) -> Arc<HashSet<SynsetId>> {
        if let Some(c) = self.cache.get(&root) {
            self.hits += 1;
            return Arc::clone(c);
        }
        self.misses += 1;
        let c = Arc::new(compute_closure(taxonomy, root));
        self.cache.insert(root, Arc::clone(&c));
        c
    }

    /// Does `candidate` lie in the transitive closure of `root`?
    /// This is the Ω membership test of Figure 5.
    pub fn contains(&mut self, taxonomy: &Taxonomy, root: SynsetId, candidate: SynsetId) -> bool {
        self.closure(taxonomy, root).contains(&candidate)
    }

    /// Size of the closure of `root` (used by the selectivity estimator's
    /// exact-closure variant, §3.4.2).
    pub fn closure_size(&mut self, taxonomy: &Taxonomy, root: SynsetId) -> usize {
        self.closure(taxonomy, root).len()
    }

    /// (hits, misses) counters.
    pub fn stats(&self) -> (u64, u64) {
        (self.hits, self.misses)
    }

    /// Number of memoized closures.
    pub fn len(&self) -> usize {
        self.cache.len()
    }

    /// True when nothing is memoized yet.
    pub fn is_empty(&self) -> bool {
        self.cache.is_empty()
    }

    /// Drop all memoized closures (e.g. after taxonomy updates).
    pub fn invalidate(&mut self) {
        self.cache.clear();
    }
}

/// Hook for reporting contended shard acquisitions to an embedding
/// engine's wait-event instrumentation.  The taxonomy crate has no
/// dependency on the kernel, so the kernel injects a callback instead.
static SHARD_WAIT_OBSERVER: std::sync::OnceLock<fn(std::time::Duration)> =
    std::sync::OnceLock::new();

/// Install the process-wide shard-wait observer.  First caller wins;
/// later calls are no-ops (the callback is a plain `fn`, so there is
/// nothing to tear down).
pub fn set_shard_wait_observer(f: fn(std::time::Duration)) {
    let _ = SHARD_WAIT_OBSERVER.set(f);
}

/// Thread-safe, sharded wrapper around [`ClosureCache`] so parallel scan
/// workers share memoized closures instead of each paying the BFS.
///
/// Closures are keyed by the RHS synset; sharding by synset id means
/// workers probing *different* RHS concepts never contend, and workers
/// probing the *same* concept serialize only on its shard (the second
/// arrival gets the memoized `Arc` immediately).  A single global mutex —
/// the previous design — made the cache the serialization point of every
/// parallel Ω scan.
#[derive(Debug)]
pub struct SharedClosureCache {
    shards: Vec<std::sync::Mutex<ClosureCache>>,
}

impl Default for SharedClosureCache {
    fn default() -> Self {
        SharedClosureCache::new()
    }
}

impl SharedClosureCache {
    /// Shard count: enough to make same-shard collisions rare at the
    /// engine's worker-count ceiling, small enough that `invalidate` and
    /// `stats` stay trivial.
    pub const SHARDS: usize = 16;

    /// Fresh, empty cache.
    pub fn new() -> Self {
        SharedClosureCache {
            shards: (0..Self::SHARDS)
                .map(|_| std::sync::Mutex::new(ClosureCache::new()))
                .collect(),
        }
    }

    fn shard(&self, root: SynsetId) -> std::sync::MutexGuard<'_, ClosureCache> {
        let idx = root.0 as usize % self.shards.len();
        // Closure computation never panics while holding the guard; treat
        // a poisoned shard as usable rather than propagating the panic.
        // Uncontended probes take the try_lock fast path; contended ones
        // time the block and report it to the registered wait observer
        // (the kernel charges it to the running query as an
        // `omega_cache` wait).
        match self.shards[idx].try_lock() {
            Ok(g) => g,
            Err(std::sync::TryLockError::Poisoned(p)) => p.into_inner(),
            Err(std::sync::TryLockError::WouldBlock) => {
                let start = std::time::Instant::now();
                let g = self.shards[idx].lock().unwrap_or_else(|p| p.into_inner());
                if let Some(observer) = SHARD_WAIT_OBSERVER.get() {
                    observer(start.elapsed());
                }
                g
            }
        }
    }

    /// Memoized transitive closure of `root` (see [`ClosureCache::closure`]).
    pub fn closure(&self, taxonomy: &Taxonomy, root: SynsetId) -> Arc<HashSet<SynsetId>> {
        self.shard(root).closure(taxonomy, root)
    }

    /// Ω membership test (see [`ClosureCache::contains`]).
    pub fn contains(&self, taxonomy: &Taxonomy, root: SynsetId, candidate: SynsetId) -> bool {
        self.shard(root).contains(taxonomy, root, candidate)
    }

    /// Closure cardinality (see [`ClosureCache::closure_size`]).
    pub fn closure_size(&self, taxonomy: &Taxonomy, root: SynsetId) -> usize {
        self.shard(root).closure_size(taxonomy, root)
    }

    /// (hits, misses), summed across shards.
    pub fn stats(&self) -> (u64, u64) {
        self.shards.iter().fold((0, 0), |(h, m), s| {
            let (sh, sm) = s.lock().unwrap_or_else(|p| p.into_inner()).stats();
            (h + sh, m + sm)
        })
    }

    /// Number of memoized closures across all shards.
    pub fn len(&self) -> usize {
        self.shards
            .iter()
            .map(|s| s.lock().unwrap_or_else(|p| p.into_inner()).len())
            .sum()
    }

    /// True when nothing is memoized.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Drop every memoized closure — required after any taxonomy change,
    /// or closures computed against the old hierarchy would keep matching.
    pub fn invalidate(&self) {
        for s in &self.shards {
            s.lock().unwrap_or_else(|p| p.into_inner()).invalidate();
        }
    }
}

/// Uncached closure computation: BFS over `children ∪ equivalents`.
pub fn compute_closure(taxonomy: &Taxonomy, root: SynsetId) -> HashSet<SynsetId> {
    let mut seen: HashSet<SynsetId> = HashSet::new();
    let mut stack = vec![root];
    seen.insert(root);
    while let Some(id) = stack.pop() {
        for &next in taxonomy.children(id).iter().chain(taxonomy.equivalents(id)) {
            if seen.insert(next) {
                stack.push(next);
            }
        }
    }
    seen
}

#[cfg(test)]
mod tests {
    use super::*;
    use mlql_unitext::{LangId, LanguageRegistry};

    fn en() -> LangId {
        LanguageRegistry::new().id_of("English")
    }

    /// root -> {a, b}, a -> {c}
    fn small() -> (Taxonomy, [SynsetId; 4]) {
        let mut t = Taxonomy::new();
        let r = t.add_synset(en(), &["root"]);
        let a = t.add_synset(en(), &["a"]);
        let b = t.add_synset(en(), &["b"]);
        let c = t.add_synset(en(), &["c"]);
        t.add_hyponym(r, a);
        t.add_hyponym(r, b);
        t.add_hyponym(a, c);
        (t, [r, a, b, c])
    }

    #[test]
    fn closure_includes_self_and_descendants() {
        let (t, [r, a, b, c]) = small();
        let mut cache = ClosureCache::new();
        let cl = cache.closure(&t, r);
        assert_eq!(cl.len(), 4);
        for id in [r, a, b, c] {
            assert!(cl.contains(&id));
        }
        let cl_a = cache.closure(&t, a);
        assert_eq!(cl_a.len(), 2);
        assert!(cl_a.contains(&c) && cl_a.contains(&a));
        assert!(!cl_a.contains(&b));
    }

    #[test]
    fn memoization_counts_hits() {
        let (t, [r, ..]) = small();
        let mut cache = ClosureCache::new();
        cache.closure(&t, r);
        cache.closure(&t, r);
        cache.closure(&t, r);
        assert_eq!(cache.stats(), (2, 1));
        assert_eq!(cache.len(), 1);
    }

    #[test]
    fn equivalence_edges_extend_closures() {
        let reg = LanguageRegistry::new();
        let (mut t, [r, a, _b, _c]) = small();
        t.replicate_linked(&[reg.id_of("French")], |w, _| format!("{w}_fr"));
        let mut cache = ClosureCache::new();
        // Closure of the English root now spans both language copies.
        assert_eq!(cache.closure_size(&t, r), 8);
        // Closure of a mid-level synset spans its subtree in both languages.
        assert_eq!(cache.closure_size(&t, a), 4);
    }

    #[test]
    fn contains_is_membership() {
        let (t, [r, _a, b, c]) = small();
        let mut cache = ClosureCache::new();
        assert!(cache.contains(&t, r, c));
        assert!(!cache.contains(&t, b, c));
        assert!(cache.contains(&t, c, c), "closure is reflexive");
    }

    #[test]
    fn invalidate_clears() {
        let (t, [r, ..]) = small();
        let mut cache = ClosureCache::new();
        cache.closure(&t, r);
        cache.invalidate();
        assert!(cache.is_empty());
        cache.closure(&t, r);
        assert_eq!(cache.stats(), (0, 2));
    }

    #[test]
    fn sharded_cache_matches_plain_cache() {
        let (t, ids) = small();
        let shared = SharedClosureCache::new();
        let mut plain = ClosureCache::new();
        for &root in &ids {
            assert_eq!(
                *shared.closure(&t, root),
                *plain.closure(&t, root),
                "root {root:?}"
            );
        }
        // Second pass is all hits; miss count equals distinct roots.
        for &root in &ids {
            shared.closure(&t, root);
        }
        assert_eq!(shared.stats(), (4, 4));
        assert_eq!(shared.len(), 4);
    }

    #[test]
    fn sharded_cache_is_shared_across_threads() {
        let (t, [r, ..]) = small();
        let shared = SharedClosureCache::new();
        shared.closure(&t, r); // warm: 1 miss
        std::thread::scope(|s| {
            for _ in 0..4 {
                s.spawn(|| {
                    assert!(shared.contains(&t, r, r));
                });
            }
        });
        let (hits, misses) = shared.stats();
        assert_eq!(misses, 1, "threads must reuse the memoized closure");
        assert_eq!(hits, 4);
    }

    #[test]
    fn sharded_invalidate_clears_every_shard() {
        let (t, ids) = small();
        let shared = SharedClosureCache::new();
        for &root in &ids {
            shared.closure(&t, root);
        }
        assert!(!shared.is_empty());
        shared.invalidate();
        assert!(shared.is_empty());
    }

    #[test]
    fn closure_handles_dags_without_double_count() {
        let mut t = Taxonomy::new();
        let a = t.add_synset(en(), &["a"]);
        let b = t.add_synset(en(), &["b"]);
        let c = t.add_synset(en(), &["c"]);
        let d = t.add_synset(en(), &["d"]);
        t.add_hyponym(a, b);
        t.add_hyponym(a, c);
        t.add_hyponym(b, d);
        t.add_hyponym(c, d); // diamond
        assert_eq!(compute_closure(&t, a).len(), 4);
    }
}
