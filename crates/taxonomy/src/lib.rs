//! # Taxonomy — interlinked multilingual taxonomic hierarchies
//!
//! The substrate behind the SemEQUAL (Ω) operator: WordNet-style noun
//! hierarchies in multiple languages, linked by synset-equivalence edges —
//! the `TH` structure of the paper's Definition in §2.2.
//!
//! The paper stored the entire English WordNet (~115 K synsets, ~152 K word
//! forms) in database tables and, for multilingual experiments, *replicated*
//! it per language with equivalence links between corresponding synsets
//! (§5.1).  We do exactly the same one level down: [`generator`] synthesizes
//! a hierarchy with WordNet's structural statistics (size, depth, heavy-
//! tailed fan-out), and [`Taxonomy::replicate_linked`] produces the linked
//! multilingual copies.
//!
//! [`closure`] implements the transitive-closure engine with the paper's
//! two optimizations (§4.3): hierarchies *pinned in main memory*, and
//! closures *materialized as hash tables* that are reused across LHS values
//! and across repeated RHS values.

pub mod closure;
pub mod fragment;
pub mod generator;
pub mod hierarchy;
pub mod intervals;

pub use closure::{set_shard_wait_observer, ClosureCache, SharedClosureCache};
pub use fragment::books_fragment;
pub use generator::{generate, synsets_near_closure_sizes, GeneratorConfig};
pub use hierarchy::{SynsetId, Taxonomy, TaxonomyStats};
pub use intervals::{IntervalIndex, IntervalStats};
