//! The in-memory taxonomy structure ("pinned WordNet", §4.3).

use mlql_unitext::{LangId, UniText};
use std::collections::HashMap;

/// Identifier of a synset within one [`Taxonomy`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct SynsetId(pub u32);

impl SynsetId {
    /// Raw index (used when storing the taxonomy in engine tables).
    #[inline]
    pub fn raw(self) -> u32 {
        self.0
    }
}

/// One synset: a language, a set of word forms, hypernym/hyponym edges and
/// cross-lingual equivalence edges.
#[derive(Debug, Clone)]
struct Synset {
    lang: LangId,
    words: Vec<String>,
    parents: Vec<SynsetId>,
    children: Vec<SynsetId>,
    equivalents: Vec<SynsetId>,
}

/// Structural statistics — the `f` (average fan-out) and `h` (height)
/// parameters of the paper's cost models (Table 2) are taken from here.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TaxonomyStats {
    /// Number of synsets.
    pub synsets: usize,
    /// Number of word forms.
    pub word_forms: usize,
    /// Number of hypernym (parent) edges.
    pub relationships: usize,
    /// Maximum root-to-leaf depth.
    pub height: usize,
    /// Average children per non-leaf synset.
    pub avg_fanout: f64,
}

/// An interlinked multilingual taxonomic hierarchy, pinned in main memory.
#[derive(Debug, Clone, Default)]
pub struct Taxonomy {
    synsets: Vec<Synset>,
    /// lang → word → synsets containing that word form.  Partitioned by
    /// language so lookups borrow the query string (Ω evaluates one lookup
    /// per tuple pair — no per-probe allocation allowed).
    word_index: HashMap<LangId, HashMap<String, Vec<SynsetId>>>,
}

impl Taxonomy {
    /// An empty taxonomy.
    pub fn new() -> Self {
        Taxonomy::default()
    }

    /// Add a synset with the given word forms; returns its id.
    pub fn add_synset(&mut self, lang: LangId, words: &[&str]) -> SynsetId {
        let id = SynsetId(self.synsets.len() as u32);
        for w in words {
            self.word_index
                .entry(lang)
                .or_default()
                .entry(w.to_string())
                .or_default()
                .push(id);
        }
        self.synsets.push(Synset {
            lang,
            words: words.iter().map(|w| w.to_string()).collect(),
            parents: Vec::new(),
            children: Vec::new(),
            equivalents: Vec::new(),
        });
        id
    }

    /// Add an additional word form to an existing synset.
    pub fn add_word(&mut self, synset: SynsetId, word: &str) {
        let lang = self.synsets[synset.0 as usize].lang;
        self.synsets[synset.0 as usize].words.push(word.to_string());
        self.word_index
            .entry(lang)
            .or_default()
            .entry(word.to_string())
            .or_default()
            .push(synset);
    }

    /// Record `child` as a hyponym (subclass) of `parent`.
    pub fn add_hyponym(&mut self, parent: SynsetId, child: SynsetId) {
        self.synsets[parent.0 as usize].children.push(child);
        self.synsets[child.0 as usize].parents.push(parent);
    }

    /// Remove the hyponym edge `parent → child` if present (the inverse of
    /// [`Taxonomy::add_hyponym`]).  Returns whether an edge was removed.
    /// Callers holding memoized closures must invalidate them.
    pub fn remove_hyponym(&mut self, parent: SynsetId, child: SynsetId) -> bool {
        let children = &mut self.synsets[parent.0 as usize].children;
        let before = children.len();
        children.retain(|&c| c != child);
        let removed = children.len() < before;
        if removed {
            self.synsets[child.0 as usize]
                .parents
                .retain(|&p| p != parent);
        }
        removed
    }

    /// Record a cross-lingual equivalence between two synsets (both
    /// directions).
    pub fn add_equivalence(&mut self, a: SynsetId, b: SynsetId) {
        self.synsets[a.0 as usize].equivalents.push(b);
        self.synsets[b.0 as usize].equivalents.push(a);
    }

    /// Number of synsets.
    pub fn len(&self) -> usize {
        self.synsets.len()
    }

    /// True when the taxonomy has no synsets.
    pub fn is_empty(&self) -> bool {
        self.synsets.is_empty()
    }

    /// Language of a synset.
    pub fn lang(&self, id: SynsetId) -> LangId {
        self.synsets[id.0 as usize].lang
    }

    /// Word forms of a synset.
    pub fn words(&self, id: SynsetId) -> &[String] {
        &self.synsets[id.0 as usize].words
    }

    /// Direct hyponyms (children).
    pub fn children(&self, id: SynsetId) -> &[SynsetId] {
        &self.synsets[id.0 as usize].children
    }

    /// Direct hypernyms (parents).
    pub fn parents(&self, id: SynsetId) -> &[SynsetId] {
        &self.synsets[id.0 as usize].parents
    }

    /// Cross-lingual equivalents.
    pub fn equivalents(&self, id: SynsetId) -> &[SynsetId] {
        &self.synsets[id.0 as usize].equivalents
    }

    /// Synsets whose word forms include `word` in language `lang`.
    pub fn lookup(&self, word: &str, lang: LangId) -> &[SynsetId] {
        self.word_index
            .get(&lang)
            .and_then(|m| m.get(word))
            .map(Vec::as_slice)
            .unwrap_or(&[])
    }

    /// Synsets matching the word in *any* language (used when the query
    /// does not constrain the concept's language).
    pub fn lookup_any_lang(&self, word: &str) -> Vec<SynsetId> {
        self.synsets
            .iter()
            .enumerate()
            .filter(|(_, s)| s.words.iter().any(|w| w == word))
            .map(|(i, _)| SynsetId(i as u32))
            .collect()
    }

    /// Look up the synsets for a `UniText` value.
    pub fn lookup_unitext(&self, value: &UniText) -> &[SynsetId] {
        self.lookup(value.text(), value.lang())
    }

    /// Root synsets (no parents) of the given language.
    pub fn roots(&self, lang: LangId) -> Vec<SynsetId> {
        self.synsets
            .iter()
            .enumerate()
            .filter(|(_, s)| s.lang == lang && s.parents.is_empty())
            .map(|(i, _)| SynsetId(i as u32))
            .collect()
    }

    /// Iterate over all synset ids.
    pub fn ids(&self) -> impl Iterator<Item = SynsetId> {
        (0..self.synsets.len() as u32).map(SynsetId)
    }

    /// Structural statistics (see [`TaxonomyStats`]).
    pub fn stats(&self) -> TaxonomyStats {
        let synsets = self.synsets.len();
        let word_forms: usize = self.synsets.iter().map(|s| s.words.len()).sum();
        let relationships: usize = self.synsets.iter().map(|s| s.parents.len()).sum();
        let non_leaf = self
            .synsets
            .iter()
            .filter(|s| !s.children.is_empty())
            .count();
        let child_edges: usize = self.synsets.iter().map(|s| s.children.len()).sum();
        let avg_fanout = if non_leaf > 0 {
            child_edges as f64 / non_leaf as f64
        } else {
            0.0
        };
        // Height via BFS from every root (graph is a DAG by construction;
        // generator and fragment never create parent cycles).
        let mut height = 0usize;
        let mut depth = vec![0usize; synsets];
        let mut queue: std::collections::VecDeque<SynsetId> = self
            .synsets
            .iter()
            .enumerate()
            .filter(|(_, s)| s.parents.is_empty())
            .map(|(i, _)| SynsetId(i as u32))
            .collect();
        while let Some(id) = queue.pop_front() {
            let d = depth[id.0 as usize];
            height = height.max(d);
            for &c in &self.synsets[id.0 as usize].children {
                if depth[c.0 as usize] < d + 1 {
                    depth[c.0 as usize] = d + 1;
                    queue.push_back(c);
                }
            }
        }
        TaxonomyStats {
            synsets,
            word_forms,
            relationships,
            height: height + 1,
            avg_fanout,
        }
    }

    /// Replicate this (single-language) taxonomy into `langs`, linking each
    /// synset to its copies with equivalence edges — the paper's §5.1
    /// methodology for simulating linked WordNets.  Word forms of a copy
    /// are produced by `rename(word, lang)` (e.g. a transliterator).
    pub fn replicate_linked(
        &mut self,
        langs: &[LangId],
        mut rename: impl FnMut(&str, LangId) -> String,
    ) {
        let base_len = self.synsets.len();
        for &lang in langs {
            let offset = self.synsets.len() as u32;
            // Copy synsets.
            for i in 0..base_len {
                let words: Vec<String> = self.synsets[i]
                    .words
                    .iter()
                    .map(|w| rename(w, lang))
                    .collect();
                let word_refs: Vec<&str> = words.iter().map(String::as_str).collect();
                let new_id = self.add_synset(lang, &word_refs);
                debug_assert_eq!(new_id.0, offset + i as u32);
            }
            // Copy hyponym edges and add equivalences.
            for i in 0..base_len {
                let children: Vec<SynsetId> = self.synsets[i].children.clone();
                for c in children {
                    if (c.0 as usize) < base_len {
                        self.add_hyponym(SynsetId(offset + i as u32), SynsetId(offset + c.0));
                    }
                }
                self.add_equivalence(SynsetId(i as u32), SynsetId(offset + i as u32));
            }
        }
    }

    /// Export rows `(synset_id, parent_id, word, lang)` for storage in an
    /// engine table: one row per (synset, parent, word) combination, with
    /// `parent_id = None` for roots.  This is the representation the
    /// outside-the-server Ω implementation queries with SQL, and the one
    /// the B+Tree-on-parent index is built over (§5.4).
    pub fn export_rows(&self) -> Vec<TaxonomyRow> {
        let mut rows = Vec::new();
        for (i, s) in self.synsets.iter().enumerate() {
            let parents: Vec<Option<SynsetId>> = if s.parents.is_empty() {
                vec![None]
            } else {
                s.parents.iter().map(|&p| Some(p)).collect()
            };
            for p in &parents {
                for w in &s.words {
                    rows.push(TaxonomyRow {
                        synset: SynsetId(i as u32),
                        parent: *p,
                        word: w.clone(),
                        lang: s.lang,
                        equivalents: s.equivalents.clone(),
                    });
                }
            }
        }
        rows
    }
}

/// One exported taxonomy table row (see [`Taxonomy::export_rows`]).
#[derive(Debug, Clone)]
pub struct TaxonomyRow {
    /// The synset this row describes.
    pub synset: SynsetId,
    /// One hypernym of the synset (`None` for roots).
    pub parent: Option<SynsetId>,
    /// One word form of the synset.
    pub word: String,
    /// Language of the synset.
    pub lang: LangId,
    /// Cross-lingual equivalents (denormalized for the outside-server path).
    pub equivalents: Vec<SynsetId>,
}

#[cfg(test)]
mod tests {
    use super::*;
    use mlql_unitext::LanguageRegistry;

    fn en() -> LangId {
        LanguageRegistry::new().id_of("English")
    }

    #[test]
    fn add_and_lookup() {
        let mut t = Taxonomy::new();
        let s = t.add_synset(en(), &["history", "account"]);
        assert_eq!(t.lookup("history", en()), &[s]);
        assert_eq!(t.lookup("account", en()), &[s]);
        assert!(t.lookup("history", LangId(99)).is_empty());
        assert_eq!(t.words(s), &["history".to_string(), "account".to_string()]);
    }

    #[test]
    fn hyponym_edges_are_bidirectional() {
        let mut t = Taxonomy::new();
        let a = t.add_synset(en(), &["a"]);
        let b = t.add_synset(en(), &["b"]);
        t.add_hyponym(a, b);
        assert_eq!(t.children(a), &[b]);
        assert_eq!(t.parents(b), &[a]);
        assert_eq!(t.roots(en()), vec![a]);
    }

    #[test]
    fn remove_hyponym_unlinks_both_directions() {
        let mut t = Taxonomy::new();
        let a = t.add_synset(en(), &["a"]);
        let b = t.add_synset(en(), &["b"]);
        t.add_hyponym(a, b);
        assert!(t.remove_hyponym(a, b));
        assert!(t.children(a).is_empty());
        assert!(t.parents(b).is_empty());
        assert!(!t.remove_hyponym(a, b), "already gone");
    }

    #[test]
    fn stats_on_small_tree() {
        let mut t = Taxonomy::new();
        let r = t.add_synset(en(), &["root"]);
        let c1 = t.add_synset(en(), &["c1"]);
        let c2 = t.add_synset(en(), &["c2"]);
        let g = t.add_synset(en(), &["g"]);
        t.add_hyponym(r, c1);
        t.add_hyponym(r, c2);
        t.add_hyponym(c1, g);
        let st = t.stats();
        assert_eq!(st.synsets, 4);
        assert_eq!(st.word_forms, 4);
        assert_eq!(st.relationships, 3);
        assert_eq!(st.height, 3);
        assert!((st.avg_fanout - 1.5).abs() < 1e-9); // root has 2, c1 has 1
    }

    #[test]
    fn replicate_links_each_copy() {
        let reg = LanguageRegistry::new();
        let mut t = Taxonomy::new();
        let r = t.add_synset(reg.id_of("English"), &["root"]);
        let c = t.add_synset(reg.id_of("English"), &["child"]);
        t.add_hyponym(r, c);
        t.replicate_linked(&[reg.id_of("French"), reg.id_of("Tamil")], |w, l| {
            format!("{w}_{}", l.raw())
        });
        assert_eq!(t.len(), 6);
        // Equivalence edges from the base copies.
        assert_eq!(t.equivalents(r).len(), 2);
        // Structure replicated.
        let fr_root = t.equivalents(r)[0];
        assert_eq!(t.children(fr_root).len(), 1);
        // Renamed word forms indexed under the copy language.
        let fr = reg.id_of("French");
        assert_eq!(t.lookup(&format!("root_{}", fr.raw()), fr).len(), 1);
    }

    #[test]
    fn export_rows_cover_all_synsets() {
        let mut t = Taxonomy::new();
        let r = t.add_synset(en(), &["root"]);
        let c = t.add_synset(en(), &["child", "kid"]);
        t.add_hyponym(r, c);
        let rows = t.export_rows();
        // root: 1 row (None parent); child: 2 words × 1 parent = 2 rows.
        assert_eq!(rows.len(), 3);
        assert!(rows.iter().any(|r| r.parent.is_none()));
        assert!(
            rows.iter()
                .filter(|r| r.word == "child" || r.word == "kid")
                .count()
                == 2
        );
    }

    #[test]
    fn multi_parent_dag_exports_one_row_per_parent() {
        let mut t = Taxonomy::new();
        let a = t.add_synset(en(), &["a"]);
        let b = t.add_synset(en(), &["b"]);
        let c = t.add_synset(en(), &["c"]);
        t.add_hyponym(a, c);
        t.add_hyponym(b, c);
        let rows = t.export_rows();
        assert_eq!(rows.iter().filter(|r| r.synset == c).count(), 2);
    }
}
