//! A hand-written multilingual taxonomy fragment for the paper's worked
//! examples (Figures 1 and 4): the concept hierarchy around *History* in
//! English, French and Tamil, with the equivalence links that make the
//! SemEQUAL query of Figure 4 return its three-language result.
//!
//! Per the paper's footnote 2: *Historiography* ("the study of history
//! writing and written histories") and *Autobiography* are specialized
//! branches of History itself; the Tamil category value *Charitram*
//! (சரித்திரம்) means History.

use crate::hierarchy::{SynsetId, Taxonomy};
use mlql_unitext::LanguageRegistry;

/// Named handles into the fragment built by [`books_fragment`].
#[derive(Debug, Clone, Copy)]
pub struct BooksFragment {
    /// English ⟨History⟩.
    pub history_en: SynsetId,
    /// French ⟨Histoire⟩ (≡ History).
    pub histoire_fr: SynsetId,
    /// Tamil ⟨சரித்திரம், Charitram⟩ (≡ History).
    pub charitram_ta: SynsetId,
    /// English ⟨Historiography⟩ < History.
    pub historiography_en: SynsetId,
    /// English ⟨Autobiography⟩ < Biography < History.
    pub autobiography_en: SynsetId,
    /// English ⟨Fiction⟩ — a sibling NOT under History.
    pub fiction_en: SynsetId,
    /// English root ⟨Literature⟩.
    pub literature_en: SynsetId,
}

/// Build the books-catalog fragment used throughout examples and tests.
///
/// English structure:
/// ```text
/// Literature
/// ├── History
/// │   ├── Historiography
/// │   └── Biography
/// │       └── Autobiography
/// └── Fiction
///     └── Novel
/// ```
/// French carries ⟨Histoire⟩ ≡ ⟨History⟩ with child ⟨Biographie⟩, Tamil
/// carries ⟨சரித்திரம்⟩ ≡ ⟨History⟩.
pub fn books_fragment(reg: &LanguageRegistry) -> (Taxonomy, BooksFragment) {
    let en = reg.id_of("English");
    let fr = reg.id_of("French");
    let ta = reg.id_of("Tamil");

    let mut t = Taxonomy::new();

    let literature_en = t.add_synset(en, &["Literature"]);
    let history_en = t.add_synset(en, &["History"]);
    let historiography_en = t.add_synset(en, &["Historiography"]);
    let biography_en = t.add_synset(en, &["Biography"]);
    let autobiography_en = t.add_synset(en, &["Autobiography"]);
    let fiction_en = t.add_synset(en, &["Fiction"]);
    let novel_en = t.add_synset(en, &["Novel"]);

    t.add_hyponym(literature_en, history_en);
    t.add_hyponym(history_en, historiography_en);
    t.add_hyponym(history_en, biography_en);
    t.add_hyponym(biography_en, autobiography_en);
    t.add_hyponym(literature_en, fiction_en);
    t.add_hyponym(fiction_en, novel_en);

    let litterature_fr = t.add_synset(fr, &["Littérature"]);
    let histoire_fr = t.add_synset(fr, &["Histoire"]);
    let biographie_fr = t.add_synset(fr, &["Biographie"]);
    t.add_hyponym(litterature_fr, histoire_fr);
    t.add_hyponym(histoire_fr, biographie_fr);

    let ilakkiyam_ta = t.add_synset(ta, &["இலக்கியம்", "Ilakkiyam"]);
    let charitram_ta = t.add_synset(ta, &["சரித்திரம்", "Charitram"]);
    t.add_hyponym(ilakkiyam_ta, charitram_ta);

    t.add_equivalence(history_en, histoire_fr);
    t.add_equivalence(history_en, charitram_ta);
    t.add_equivalence(biography_en, biographie_fr);
    t.add_equivalence(literature_en, litterature_fr);
    t.add_equivalence(literature_en, ilakkiyam_ta);

    (
        t,
        BooksFragment {
            history_en,
            histoire_fr,
            charitram_ta,
            historiography_en,
            autobiography_en,
            fiction_en,
            literature_en,
        },
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::closure::ClosureCache;

    #[test]
    fn figure4_semantics() {
        // SemEQUAL 'History' must cover Historiography, Autobiography,
        // Histoire, Charitram — and must NOT cover Fiction.
        let reg = LanguageRegistry::new();
        let (t, f) = books_fragment(&reg);
        let mut cache = ClosureCache::new();
        let cl = cache.closure(&t, f.history_en);
        assert!(cl.contains(&f.historiography_en));
        assert!(cl.contains(&f.autobiography_en));
        assert!(cl.contains(&f.histoire_fr));
        assert!(cl.contains(&f.charitram_ta));
        assert!(!cl.contains(&f.fiction_en));
        assert!(!cl.contains(&f.literature_en), "closure must not go upward");
    }

    #[test]
    fn lookup_by_romanized_form() {
        let reg = LanguageRegistry::new();
        let (t, f) = books_fragment(&reg);
        let ta = reg.id_of("Tamil");
        assert_eq!(t.lookup("Charitram", ta), &[f.charitram_ta]);
        assert_eq!(t.lookup("சரித்திரம்", ta), &[f.charitram_ta]);
    }

    #[test]
    fn equivalence_closure_includes_foreign_subtrees() {
        // Histoire's child Biographie is reachable from History through the
        // equivalence edge.
        let reg = LanguageRegistry::new();
        let (t, f) = books_fragment(&reg);
        let mut cache = ClosureCache::new();
        let cl = cache.closure(&t, f.history_en);
        let fr = reg.id_of("French");
        let biographie = t.lookup("Biographie", fr)[0];
        assert!(cl.contains(&biographie));
    }
}
