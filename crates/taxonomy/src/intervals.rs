//! Interval-labeling reachability index — the §4.3.1 "future work" item.
//!
//! The paper closes its Ω discussion wanting a connection index (it cites
//! HOPI's 2-hop covers) to avoid materializing closures.  For the
//! tree-dominant shape of WordNet hypernym hierarchies the classic
//! *interval labeling* scheme answers reachability in O(1) with two
//! integers per node: number the synsets by DFS entry/exit order, and
//! `descendant ∈ TC(ancestor)` ⇔ the descendant's entry number falls inside
//! the ancestor's `[entry, exit]` interval.  Cross-lingual equivalence
//! edges are folded in by giving every replica group the label of its
//! canonical member.
//!
//! Nodes reachable through non-tree (multi-parent) edges fall back to the
//! hash-closure path: [`IntervalIndex::reachable_same_tree`] returns `None` when it
//! cannot decide exactly, so callers compose it with [`super::ClosureCache`]
//! without ever losing correctness.  The `omega_closure` criterion bench
//! compares the two.

use crate::hierarchy::{SynsetId, Taxonomy};

/// Per-node DFS labels.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct Label {
    entry: u32,
    exit: u32,
}

/// The reachability index.
#[derive(Debug, Clone)]
pub struct IntervalIndex {
    labels: Vec<Label>,
    /// Representative of each node's equivalence group (union of
    /// cross-lingual `equivalents` edges).
    group: Vec<u32>,
    /// True when the node has at most one parent everywhere below it —
    /// i.e. interval containment is *exact* for queries rooted here.
    exact: Vec<bool>,
}

impl IntervalIndex {
    /// Build the index in O(|synsets| + |edges|).
    pub fn build(taxonomy: &Taxonomy) -> IntervalIndex {
        let n = taxonomy.len();
        // Union equivalence groups with a small union-find.
        let mut group: Vec<u32> = (0..n as u32).collect();
        fn find(group: &mut [u32], x: u32) -> u32 {
            let mut root = x;
            while group[root as usize] != root {
                root = group[root as usize];
            }
            let mut cur = x;
            while group[cur as usize] != root {
                let next = group[cur as usize];
                group[cur as usize] = root;
                cur = next;
            }
            root
        }
        for id in taxonomy.ids() {
            for &e in taxonomy.equivalents(id) {
                let a = find(&mut group, id.raw());
                let b = find(&mut group, e.raw());
                if a != b {
                    group[a as usize] = b;
                }
            }
        }
        for i in 0..n as u32 {
            find(&mut group, i);
        }

        // DFS labels over hyponym edges, one tree per root, using the
        // group representative's traversal position.  Multi-parent nodes
        // get labeled under their first parent; the `exact` flag records
        // whether a subtree is free of extra parents.
        let mut labels = vec![Label { entry: 0, exit: 0 }; n];
        let mut visited = vec![false; n];
        let mut clock = 0u32;
        let mut multi_parent_below = vec![false; n];
        let mut order: Vec<SynsetId> = taxonomy.ids().collect();
        order.retain(|&id| taxonomy.parents(id).is_empty());
        for root in order {
            dfs(
                taxonomy,
                root,
                &mut labels,
                &mut visited,
                &mut clock,
                &mut multi_parent_below,
            );
        }
        // Any node never visited (cycle via equivalents only) gets a
        // degenerate self-interval.
        for i in 0..n {
            if !visited[i] {
                labels[i] = Label {
                    entry: clock,
                    exit: clock,
                };
                clock += 1;
            }
        }
        IntervalIndex {
            labels,
            group: group.clone(),
            exact: multi_parent_below.iter().map(|&b| !b).collect(),
        }
    }

    /// Does `candidate` lie in the transitive closure of `root`, counting
    /// hyponym edges within `root`'s language tree only?  `Some(bool)` when
    /// the labels decide exactly; `None` when the subtree contains
    /// multi-parent nodes (caller must fall back to the hash closure).
    pub fn reachable_same_tree(&self, root: SynsetId, candidate: SynsetId) -> Option<bool> {
        if !self.exact[root.raw() as usize] {
            return None;
        }
        let r = self.labels[root.raw() as usize];
        let c = self.labels[candidate.raw() as usize];
        Some(c.entry >= r.entry && c.entry <= r.exit)
    }

    /// Cross-lingual reachability: true when some member of `candidate`'s
    /// equivalence group lies under some member of `root`'s group.
    /// Group membership is resolved through the representative table; the
    /// exactness caveat of [`Self::reachable_same_tree`] applies.
    pub fn same_group(&self, a: SynsetId, b: SynsetId) -> bool {
        self.group[a.raw() as usize] == self.group[b.raw() as usize]
    }

    /// Size of the subtree under `root` (exact trees only).
    pub fn subtree_size(&self, root: SynsetId) -> Option<usize> {
        if !self.exact[root.raw() as usize] {
            return None;
        }
        let l = self.labels[root.raw() as usize];
        Some(((l.exit - l.entry) / 2 + 1) as usize)
    }
}

fn dfs(
    taxonomy: &Taxonomy,
    root: SynsetId,
    labels: &mut [Label],
    visited: &mut [bool],
    clock: &mut u32,
    multi_parent_below: &mut [bool],
) {
    // Iterative DFS to survive WordNet-depth recursion comfortably.
    enum Step {
        Enter(SynsetId),
        Exit(SynsetId),
    }
    let mut stack = vec![Step::Enter(root)];
    while let Some(step) = stack.pop() {
        match step {
            Step::Enter(id) => {
                let i = id.raw() as usize;
                if visited[i] {
                    continue;
                }
                visited[i] = true;
                labels[i].entry = *clock;
                *clock += 1;
                stack.push(Step::Exit(id));
                for &c in taxonomy.children(id) {
                    if taxonomy.parents(c).len() > 1 {
                        multi_parent_below[i] = true;
                    }
                    stack.push(Step::Enter(c));
                }
            }
            Step::Exit(id) => {
                let i = id.raw() as usize;
                labels[i].exit = *clock;
                *clock += 1;
                // Propagate the inexactness flag upward lazily: parents
                // read it after children exit.
                let dirty = multi_parent_below[i]
                    || taxonomy.children(id).iter().any(|&c| {
                        multi_parent_below[c.raw() as usize] || taxonomy.parents(c).len() > 1
                    });
                multi_parent_below[i] = dirty;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::closure::compute_closure;
    use crate::generator::{generate, GeneratorConfig};
    use mlql_unitext::LanguageRegistry;

    #[test]
    fn interval_matches_hash_closure_on_generated_tree() {
        let lang = LanguageRegistry::new().id_of("English");
        let t = generate(
            lang,
            &GeneratorConfig {
                synsets: 5000,
                ..Default::default()
            },
        );
        let idx = IntervalIndex::build(&t);
        // The generator produces a pure tree: every query is exact.
        for root in [0u32, 1, 17, 123, 999] {
            let root = SynsetId(root);
            let closure = compute_closure(&t, root);
            let mut in_count = 0;
            for cand in t.ids() {
                let got = idx
                    .reachable_same_tree(root, cand)
                    .expect("tree hierarchy is exact");
                assert_eq!(got, closure.contains(&cand), "root {root:?} cand {cand:?}");
                if got {
                    in_count += 1;
                }
            }
            assert_eq!(in_count, closure.len());
            assert_eq!(idx.subtree_size(root), Some(closure.len()));
        }
    }

    #[test]
    fn multi_parent_regions_refuse_instead_of_lying() {
        let lang = LanguageRegistry::new().id_of("English");
        let mut t = crate::hierarchy::Taxonomy::new();
        let a = t.add_synset(lang, &["a"]);
        let b = t.add_synset(lang, &["b"]);
        let c = t.add_synset(lang, &["c"]);
        let d = t.add_synset(lang, &["d"]);
        t.add_hyponym(a, b);
        t.add_hyponym(a, c);
        t.add_hyponym(b, d);
        t.add_hyponym(c, d); // diamond: d has two parents
        let idx = IntervalIndex::build(&t);
        // Queries rooted where the diamond lives must decline.
        assert_eq!(idx.reachable_same_tree(a, d), None);
        assert_eq!(idx.reachable_same_tree(c, d), None);
        // d itself has no children: exact.
        assert_eq!(idx.reachable_same_tree(d, d), Some(true));
    }

    #[test]
    fn equivalence_groups_resolve() {
        let reg = LanguageRegistry::new();
        let lang = reg.id_of("English");
        let mut t = crate::hierarchy::Taxonomy::new();
        let a = t.add_synset(lang, &["a"]);
        let b = t.add_synset(reg.id_of("French"), &["a_fr"]);
        let c = t.add_synset(reg.id_of("Tamil"), &["a_ta"]);
        t.add_equivalence(a, b);
        t.add_equivalence(b, c);
        let d = t.add_synset(lang, &["unrelated"]);
        let idx = IntervalIndex::build(&t);
        assert!(idx.same_group(a, c));
        assert!(idx.same_group(b, c));
        assert!(!idx.same_group(a, d));
    }

    #[test]
    fn deep_hierarchy_does_not_overflow_stack() {
        // A 50k-node path would blow a recursive DFS; ours is iterative.
        let lang = LanguageRegistry::new().id_of("English");
        let mut t = crate::hierarchy::Taxonomy::new();
        let mut prev = t.add_synset(lang, &["n0"]);
        for i in 1..50_000 {
            let cur = t.add_synset(lang, &[format!("n{i}").as_str()]);
            t.add_hyponym(prev, cur);
            prev = cur;
        }
        let idx = IntervalIndex::build(&t);
        assert_eq!(idx.reachable_same_tree(SynsetId(0), prev), Some(true));
        assert_eq!(idx.reachable_same_tree(prev, SynsetId(0)), Some(false));
        assert_eq!(idx.subtree_size(SynsetId(0)), Some(50_000));
    }
}
