//! Interval-labeling reachability index — the §4.3.1 connection index.
//!
//! The paper closes its Ω discussion wanting a connection index (it cites
//! HOPI's 2-hop covers) to avoid materializing closures.  For the
//! tree-dominant shape of WordNet hypernym hierarchies the classic
//! *interval labeling* scheme answers reachability in O(1) with two
//! integers per node: number the nodes by DFS entry order, and
//! `descendant ∈ TC(ancestor)` ⇔ the descendant's entry number falls inside
//! the ancestor's `[entry, exit]` interval.
//!
//! The index covers the *full* taxonomy shape, not just pure trees:
//!
//! 1. Cross-lingual `add_equivalence` edges are bidirectional, so every
//!    equivalence group is contracted into one supernode (union-find).
//!    Closure reachability over `children ∪ equivalents` edges is exactly
//!    reachability between supernodes in the contracted *group DAG*.
//! 2. A DFS over the group DAG carves out a spanning *tree skeleton*
//!    (first arrival claims the node); every non-tree edge becomes an
//!    **exception edge**, recorded only by its source group.
//! 3. A group whose tree subtree contains no exception-edge source is
//!    *clean*: its tree subtree IS its closure, and both membership and
//!    `subtree_size` are exact.  Dirty subtrees can still answer
//!    positively (a tree descendant is always reachable) but must defer
//!    negative answers to the hash-closure path.
//!
//! [`IntervalIndex::contains`] therefore returns `Some(true)` on any
//! interval hit (always exact), `Some(false)` on a miss under a clean
//! root, and `None` — caller falls back to [`super::ClosureCache`] — only
//! for misses under roots whose subtree emits exception edges.  On a
//! DAG-free taxonomy no fallback ever happens.

use crate::hierarchy::{SynsetId, Taxonomy};

/// Per-group DFS labels.  `entry` increments once per group, `exit` is the
/// largest entry in the group's tree subtree, so containment is the single
/// comparison `entry[c] ∈ [entry[r], exit[r]]`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct Label {
    entry: u32,
    exit: u32,
}

/// Summary counters surfaced by [`IntervalIndex::stats`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct IntervalStats {
    /// Synsets covered by the index.
    pub synsets: usize,
    /// Equivalence-contracted supernodes.
    pub groups: usize,
    /// Non-tree (exception) edges in the group DAG.
    pub exception_edges: usize,
}

/// The reachability index.
#[derive(Debug, Clone)]
pub struct IntervalIndex {
    /// Synset → compacted equivalence-group id.
    group_of: Vec<u32>,
    /// Per-group DFS interval.
    labels: Vec<Label>,
    /// Synsets in the group's tree subtree (own members included); exact
    /// closure size whenever the subtree is clean.
    tree_synsets: Vec<u32>,
    /// True when the group's tree subtree contains the *source* of at
    /// least one exception edge — negative answers rooted here are
    /// undecidable from intervals alone.
    dirty: Vec<bool>,
    exception_edges: usize,
}

impl IntervalIndex {
    /// Build the index in O(|synsets| + |edges|).
    pub fn build(taxonomy: &Taxonomy) -> IntervalIndex {
        let n = taxonomy.len();
        // 1. Union equivalence groups with a small union-find.
        let mut uf: Vec<u32> = (0..n as u32).collect();
        fn find(uf: &mut [u32], x: u32) -> u32 {
            let mut root = x;
            while uf[root as usize] != root {
                root = uf[root as usize];
            }
            let mut cur = x;
            while uf[cur as usize] != root {
                let next = uf[cur as usize];
                uf[cur as usize] = root;
                cur = next;
            }
            root
        }
        for id in taxonomy.ids() {
            for &e in taxonomy.equivalents(id) {
                let a = find(&mut uf, id.raw());
                let b = find(&mut uf, e.raw());
                if a != b {
                    uf[a as usize] = b;
                }
            }
        }
        // Compact representatives into dense group ids.
        let mut group_of = vec![u32::MAX; n];
        let mut members: Vec<u32> = Vec::new();
        for i in 0..n as u32 {
            let rep = find(&mut uf, i) as usize;
            if group_of[rep] == u32::MAX {
                group_of[rep] = members.len() as u32;
                members.push(0);
            }
            group_of[i as usize] = group_of[rep];
            members[group_of[i as usize] as usize] += 1;
        }
        let g = members.len();

        // 2. Group-level child adjacency (deduped, self-loops dropped —
        //    a hyponym edge inside one equivalence group adds nothing).
        let mut children: Vec<Vec<u32>> = vec![Vec::new(); g];
        let mut has_parent = vec![false; g];
        for id in taxonomy.ids() {
            let src = group_of[id.raw() as usize];
            for &c in taxonomy.children(id) {
                let dst = group_of[c.raw() as usize];
                if src != dst && !children[src as usize].contains(&dst) {
                    children[src as usize].push(dst);
                    has_parent[dst as usize] = true;
                }
            }
        }

        // 3. DFS tree skeleton.  Roots are in-degree-0 groups; leftover
        //    components (cycles introduced by contraction) get swept by a
        //    second pass so every group is labeled.
        let mut labels = vec![Label { entry: 0, exit: 0 }; g];
        let mut visited = vec![false; g];
        let mut tree_parent = vec![u32::MAX; g];
        let mut tree_synsets: Vec<u32> = members.clone();
        let mut dirty = vec![false; g];
        let mut exit_order: Vec<u32> = Vec::with_capacity(g);
        let mut exception_edges = 0usize;
        let mut clock = 0u32;
        let dfs = |root: u32,
                   labels: &mut [Label],
                   visited: &mut [bool],
                   tree_parent: &mut [u32],
                   exit_order: &mut Vec<u32>,
                   clock: &mut u32| {
            if visited[root as usize] {
                return;
            }
            enum Step {
                Enter(u32),
                Exit(u32),
            }
            let mut stack = vec![Step::Enter(root)];
            while let Some(step) = stack.pop() {
                match step {
                    Step::Enter(gid) => {
                        let i = gid as usize;
                        if visited[i] {
                            // Reached along a second path; the edge is
                            // classified as an exception afterwards.
                            continue;
                        }
                        visited[i] = true;
                        labels[i].entry = *clock;
                        *clock += 1;
                        stack.push(Step::Exit(gid));
                        for &c in &children[i] {
                            if !visited[c as usize] {
                                // Tentative claim; the LIFO stack visits a
                                // node from its *latest* pusher, so the
                                // last writer here is the real skeleton
                                // parent by the time the node is entered.
                                tree_parent[c as usize] = gid;
                                stack.push(Step::Enter(c));
                            }
                        }
                    }
                    Step::Exit(gid) => {
                        let i = gid as usize;
                        labels[i].exit = *clock - 1;
                        exit_order.push(gid);
                    }
                }
            }
        };
        for root in 0..g as u32 {
            if !has_parent[root as usize] {
                dfs(
                    root,
                    &mut labels,
                    &mut visited,
                    &mut tree_parent,
                    &mut exit_order,
                    &mut clock,
                );
            }
        }
        for root in 0..g as u32 {
            dfs(
                root,
                &mut labels,
                &mut visited,
                &mut tree_parent,
                &mut exit_order,
                &mut clock,
            );
        }

        // Classify edges against the finished skeleton: every group edge
        // whose target was claimed by a different parent is an exception,
        // and its *source* group becomes dirty.
        for src in 0..g {
            for &c in &children[src] {
                if tree_parent[c as usize] != src as u32 {
                    dirty[src] = true;
                    exception_edges += 1;
                }
            }
        }

        // 4. Bottom-up accumulation over the tree skeleton (children exit
        //    before parents in `exit_order`): subtree synset counts and
        //    the dirty flag.
        for &gid in &exit_order {
            let p = tree_parent[gid as usize];
            if p != u32::MAX {
                tree_synsets[p as usize] += tree_synsets[gid as usize];
                if dirty[gid as usize] {
                    dirty[p as usize] = true;
                }
            }
        }

        IntervalIndex {
            group_of,
            labels,
            tree_synsets,
            dirty,
            exception_edges,
        }
    }

    #[inline]
    fn gid(&self, s: SynsetId) -> usize {
        self.group_of[s.raw() as usize] as usize
    }

    /// Does `candidate` lie in the Ω transitive closure of `root`
    /// (reachability over `children ∪ equivalents` edges, reflexive)?
    ///
    /// `Some(true)` — interval hit; always exact.
    /// `Some(false)` — miss under a clean subtree; exact.
    /// `None` — miss under a subtree that emits exception edges: the
    /// caller must consult the hash closure.
    #[inline]
    pub fn contains(&self, root: SynsetId, candidate: SynsetId) -> Option<bool> {
        let r = self.gid(root);
        let c = self.gid(candidate);
        if r == c {
            return Some(true);
        }
        let rl = self.labels[r];
        let ce = self.labels[c].entry;
        if ce >= rl.entry && ce <= rl.exit {
            return Some(true);
        }
        if self.dirty[r] {
            None
        } else {
            Some(false)
        }
    }

    /// Do two synsets belong to the same cross-lingual equivalence group?
    pub fn same_group(&self, a: SynsetId, b: SynsetId) -> bool {
        self.gid(a) == self.gid(b)
    }

    /// Exact closure size (in synsets) of `root`, when the subtree is
    /// clean; `None` when exception edges may extend the closure beyond
    /// the tree skeleton.
    pub fn subtree_size(&self, root: SynsetId) -> Option<usize> {
        let g = self.gid(root);
        if self.dirty[g] {
            None
        } else {
            Some(self.tree_synsets[g] as usize)
        }
    }

    /// Whether any exception edge exists anywhere in the index.  False on
    /// tree-shaped taxonomies: every query is then decided by intervals.
    pub fn has_exceptions(&self) -> bool {
        self.exception_edges > 0
    }

    /// Structural counters for observability surfaces.
    pub fn stats(&self) -> IntervalStats {
        IntervalStats {
            synsets: self.group_of.len(),
            groups: self.labels.len(),
            exception_edges: self.exception_edges,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::closure::compute_closure;
    use crate::generator::{generate, GeneratorConfig};
    use mlql_unitext::LanguageRegistry;

    #[test]
    fn interval_matches_hash_closure_on_generated_tree() {
        let lang = LanguageRegistry::new().id_of("English");
        let t = generate(
            lang,
            &GeneratorConfig {
                synsets: 5000,
                ..Default::default()
            },
        );
        let idx = IntervalIndex::build(&t);
        assert!(!idx.has_exceptions(), "generated hierarchy is a tree");
        for root in [0u32, 1, 17, 123, 999] {
            let root = SynsetId(root);
            let closure = compute_closure(&t, root);
            let mut in_count = 0;
            for cand in t.ids() {
                let got = idx.contains(root, cand).expect("tree hierarchy is exact");
                assert_eq!(got, closure.contains(&cand), "root {root:?} cand {cand:?}");
                if got {
                    in_count += 1;
                }
            }
            assert_eq!(in_count, closure.len());
            assert_eq!(idx.subtree_size(root), Some(closure.len()));
        }
    }

    #[test]
    fn diamond_decides_positives_and_defers_negatives() {
        let lang = LanguageRegistry::new().id_of("English");
        let mut t = crate::hierarchy::Taxonomy::new();
        let a = t.add_synset(lang, &["a"]);
        let b = t.add_synset(lang, &["b"]);
        let c = t.add_synset(lang, &["c"]);
        let d = t.add_synset(lang, &["d"]);
        let e = t.add_synset(lang, &["e"]);
        t.add_hyponym(a, b);
        t.add_hyponym(a, c);
        t.add_hyponym(b, d);
        t.add_hyponym(c, d); // diamond: d has two parents
        let _ = e; // disconnected
        let idx = IntervalIndex::build(&t);
        assert!(idx.has_exceptions());
        // The tree skeleton puts d under one of b/c; queries from a still
        // decide positively through the tree path.
        assert_eq!(idx.contains(a, d), Some(true));
        assert_eq!(idx.contains(a, b), Some(true));
        assert_eq!(idx.contains(a, c), Some(true));
        // Exactly one of b/c owns d in the skeleton; the other sees an
        // interval miss under a dirty subtree and must defer.
        let via_b = idx.contains(b, d);
        let via_c = idx.contains(c, d);
        assert!(
            (via_b == Some(true) && via_c.is_none()) || (via_c == Some(true) && via_b.is_none()),
            "one skeleton parent decides, the other defers: {via_b:?} {via_c:?}"
        );
        // Clean regions still answer negatives exactly.
        assert_eq!(idx.contains(d, a), Some(false));
        assert_eq!(idx.contains(e, a), Some(false));
        assert_eq!(idx.contains(a, e), None, "a's subtree is dirty");
        // Subtree sizes: clean leaf exact, dirty root deferred.
        assert_eq!(idx.subtree_size(d), Some(1));
        assert_eq!(idx.subtree_size(a), None);
    }

    #[test]
    fn equivalence_groups_contract_into_supernodes() {
        let reg = LanguageRegistry::new();
        let lang = reg.id_of("English");
        let mut t = crate::hierarchy::Taxonomy::new();
        let a = t.add_synset(lang, &["a"]);
        let b = t.add_synset(reg.id_of("French"), &["a_fr"]);
        let c = t.add_synset(reg.id_of("Tamil"), &["a_ta"]);
        t.add_equivalence(a, b);
        t.add_equivalence(b, c);
        let d = t.add_synset(lang, &["unrelated"]);
        let child = t.add_synset(lang, &["child"]);
        t.add_hyponym(b, child); // child hangs off the French replica
        let idx = IntervalIndex::build(&t);
        assert!(idx.same_group(a, c));
        assert!(idx.same_group(b, c));
        assert!(!idx.same_group(a, d));
        // Closure through the equivalence group: a's closure reaches the
        // child attached to its French equivalent.
        assert_eq!(idx.contains(a, child), Some(true));
        assert_eq!(idx.contains(c, child), Some(true));
        assert_eq!(idx.contains(child, a), Some(false));
        // Group members count once each; the supernode subtree holds the
        // three replicas plus the child.
        assert_eq!(idx.subtree_size(a), Some(4));
        assert!(!idx.has_exceptions());
    }

    #[test]
    fn equivalence_plus_multiparent_matches_closure() {
        // The Figure 5 shape: two language trees stitched by equivalence
        // edges, plus one cross-tree hyponym creating a multi-parent node.
        let reg = LanguageRegistry::new();
        let en = reg.id_of("English");
        let fr = reg.id_of("French");
        let mut t = crate::hierarchy::Taxonomy::new();
        let root_en = t.add_synset(en, &["root"]);
        let hist_en = t.add_synset(en, &["history"]);
        let bio_en = t.add_synset(en, &["biography"]);
        let root_fr = t.add_synset(fr, &["racine"]);
        let hist_fr = t.add_synset(fr, &["histoire"]);
        t.add_hyponym(root_en, hist_en);
        t.add_hyponym(hist_en, bio_en);
        t.add_hyponym(root_fr, hist_fr);
        t.add_equivalence(hist_en, hist_fr);
        // Multi-parent: biography also under racine directly.
        t.add_hyponym(root_fr, bio_en);
        let idx = IntervalIndex::build(&t);
        for root in t.ids() {
            let closure = compute_closure(&t, root);
            for cand in t.ids() {
                match idx.contains(root, cand) {
                    Some(got) => {
                        assert_eq!(got, closure.contains(&cand), "root {root:?} cand {cand:?}")
                    }
                    None => assert!(
                        idx.stats().exception_edges > 0,
                        "fallback implies exceptions exist"
                    ),
                }
            }
            if let Some(sz) = idx.subtree_size(root) {
                assert_eq!(sz, closure.len(), "clean subtree size is exact closure");
            }
        }
    }

    #[test]
    fn deep_hierarchy_does_not_overflow_stack() {
        // A 50k-node path would blow a recursive DFS; ours is iterative.
        let lang = LanguageRegistry::new().id_of("English");
        let mut t = crate::hierarchy::Taxonomy::new();
        let mut prev = t.add_synset(lang, &["n0"]);
        for i in 1..50_000 {
            let cur = t.add_synset(lang, &[format!("n{i}").as_str()]);
            t.add_hyponym(prev, cur);
            prev = cur;
        }
        let idx = IntervalIndex::build(&t);
        assert_eq!(idx.contains(SynsetId(0), prev), Some(true));
        assert_eq!(idx.contains(prev, SynsetId(0)), Some(false));
        assert_eq!(idx.subtree_size(SynsetId(0)), Some(50_000));
    }
}
