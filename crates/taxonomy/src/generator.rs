//! WordNet-scale synthetic taxonomy generator.
//!
//! English WordNet (the version the paper used) has roughly 115 K noun
//! synsets, 152 K word forms, and a hypernym hierarchy of maximum depth
//! about 16 with a heavy-tailed fan-out (most synsets have few hyponyms, a
//! few "hub" concepts have hundreds).  The generator reproduces those
//! structural statistics with a preferential-attachment tree construction,
//! which yields the heavy-tailed fan-out and log-depth shape, then clamps
//! depth to the configured maximum.
//!
//! Generation is fully deterministic given the seed, so every experiment is
//! reproducible bit-for-bit.

use crate::hierarchy::{SynsetId, Taxonomy};
use mlql_unitext::LangId;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Configuration for [`generate`].
#[derive(Debug, Clone)]
pub struct GeneratorConfig {
    /// Number of synsets in the base-language hierarchy.
    pub synsets: usize,
    /// Average number of word forms per synset (WordNet ≈ 1.32).
    pub words_per_synset: f64,
    /// Maximum hierarchy depth (WordNet noun hierarchy ≈ 16).
    pub max_depth: usize,
    /// Preferential-attachment strength in [0, 1]: 0 = uniform parents
    /// (bushy, shallow), 1 = strongly preferential (hubby, heavy-tailed).
    pub preferential: f64,
    /// RNG seed.
    pub seed: u64,
}

impl Default for GeneratorConfig {
    fn default() -> Self {
        GeneratorConfig {
            synsets: 115_000,
            words_per_synset: 1.32,
            max_depth: 16,
            preferential: 0.75,
            seed: 0x0d1ce,
        }
    }
}

/// Deterministic pseudo-word from a synset ordinal: pronounceable CV
/// syllables so word forms look like words, unique via the ordinal suffix.
pub fn pseudo_word(ordinal: usize, variant: usize) -> String {
    const C: [&str; 12] = ["k", "t", "n", "r", "s", "m", "d", "p", "l", "b", "g", "v"];
    const V: [&str; 5] = ["a", "e", "i", "o", "u"];
    let mut w = String::with_capacity(12);
    let mut x = ordinal.wrapping_mul(2654435761).wrapping_add(variant * 97);
    for _ in 0..3 {
        w.push_str(C[x % C.len()]);
        x /= C.len();
        w.push_str(V[x % V.len()]);
        x /= V.len();
    }
    // Ordinal suffix guarantees uniqueness across synsets.
    w.push_str(&format!("{ordinal}"));
    if variant > 0 {
        w.push_str(&format!("x{variant}"));
    }
    w
}

/// Generate a single-language taxonomy per `config`.
///
/// The root synset is id 0 with word form `"entity0"` (WordNet's unique
/// beginner for nouns is *entity*).
pub fn generate(lang: LangId, config: &GeneratorConfig) -> Taxonomy {
    assert!(config.synsets >= 1);
    let mut rng = StdRng::seed_from_u64(config.seed);
    let mut taxonomy = Taxonomy::new();
    let mut depth: Vec<usize> = Vec::with_capacity(config.synsets);

    let root = taxonomy.add_synset(lang, &["entity0"]);
    debug_assert_eq!(root, SynsetId(0));
    depth.push(1);

    for i in 1..config.synsets {
        // Pick a parent: preferential attachment picks the parent of a
        // random existing *edge endpoint* (i.e. proportional to degree);
        // uniform picks any existing synset.  Mixing the two with the
        // `preferential` knob controls tail heaviness.
        let mut parent = if rng.gen_bool(config.preferential) && i > 1 {
            // Degree-proportional: pick a random prior child and use its
            // parent, which selects parents ∝ out-degree.
            let j = rng.gen_range(1..i);
            taxonomy.parents(SynsetId(j as u32))[0]
        } else {
            SynsetId(rng.gen_range(0..i) as u32)
        };
        // Clamp depth: walk up until the parent is shallow enough.
        while depth[parent.0 as usize] >= config.max_depth {
            parent = taxonomy.parents(parent)[0];
        }

        let word = pseudo_word(i, 0);
        let id = taxonomy.add_synset(lang, &[word.as_str()]);
        taxonomy.add_hyponym(parent, id);
        depth.push(depth[parent.0 as usize] + 1);

        // Extra word forms (synonymy).
        let extra = (config.words_per_synset - 1.0).max(0.0);
        if rng.gen_bool(extra.min(1.0)) {
            taxonomy.add_word(id, &pseudo_word(i, 1));
        }
    }
    taxonomy
}

/// Find synsets whose closure size (within a single-language hierarchy —
/// i.e. subtree size) is close to each requested target.  Used by the
/// Figure 8 harness, which profiles Ω on "queries that compute closures of
/// varying sizes" (§5.1).
///
/// Returns `(target, synset, actual_subtree_size)` triples, choosing for
/// each target the synset with the nearest subtree size.
pub fn synsets_near_closure_sizes(
    taxonomy: &Taxonomy,
    targets: &[usize],
) -> Vec<(usize, SynsetId, usize)> {
    // Subtree sizes in one post-order pass (hierarchy is a tree by
    // construction of `generate`; DAG inputs would over-count, acceptable
    // for target *selection*).
    let n = taxonomy.len();
    let mut size = vec![1usize; n];
    // Process ids in reverse creation order: parents always precede
    // children in creation, so children have larger ids.
    for i in (0..n).rev() {
        let id = SynsetId(i as u32);
        for &c in taxonomy.children(id) {
            if c.0 as usize > i {
                size[i] += size[c.0 as usize];
            }
        }
    }
    targets
        .iter()
        .map(|&t| {
            let (best, &s) = size
                .iter()
                .enumerate()
                .min_by_key(|&(_, &s)| s.abs_diff(t))
                .expect("non-empty taxonomy");
            (t, SynsetId(best as u32), s)
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::closure::compute_closure;
    use mlql_unitext::LanguageRegistry;

    fn small_config(n: usize) -> GeneratorConfig {
        GeneratorConfig {
            synsets: n,
            ..GeneratorConfig::default()
        }
    }

    #[test]
    fn generates_requested_size() {
        let lang = LanguageRegistry::new().id_of("English");
        let t = generate(lang, &small_config(5000));
        let st = t.stats();
        assert_eq!(st.synsets, 5000);
        assert_eq!(st.relationships, 4999); // tree
        assert!(st.word_forms >= 5000);
        assert!(st.height <= 16 + 1);
    }

    #[test]
    fn deterministic_given_seed() {
        let lang = LanguageRegistry::new().id_of("English");
        let a = generate(lang, &small_config(1000)).stats();
        let b = generate(lang, &small_config(1000)).stats();
        assert_eq!(a, b);
    }

    #[test]
    fn heavy_tailed_fanout() {
        let lang = LanguageRegistry::new().id_of("English");
        let t = generate(lang, &small_config(20_000));
        let max_children = t.ids().map(|id| t.children(id).len()).max().unwrap();
        assert!(
            max_children > 50,
            "preferential attachment should create hubs, max fan-out {max_children}"
        );
    }

    #[test]
    fn wordnet_scale_statistics() {
        let lang = LanguageRegistry::new().id_of("English");
        let cfg = GeneratorConfig {
            synsets: 30_000,
            ..GeneratorConfig::default()
        };
        let t = generate(lang, &cfg);
        let st = t.stats();
        // Word forms per synset ratio near the configured 1.32.
        let ratio = st.word_forms as f64 / st.synsets as f64;
        assert!((1.15..1.5).contains(&ratio), "ratio {ratio}");
        assert!(
            st.height >= 8,
            "tree should be reasonably deep, got {}",
            st.height
        );
    }

    #[test]
    fn closure_size_targets_are_found() {
        let lang = LanguageRegistry::new().id_of("English");
        let t = generate(lang, &small_config(20_000));
        let picks = synsets_near_closure_sizes(&t, &[100, 1000, 5000]);
        for (target, synset, approx) in picks {
            let actual = compute_closure(&t, synset).len();
            assert_eq!(actual, approx, "subtree-size bookkeeping must match BFS");
            // Within a factor of 2 of target (heavy tails make exact rare).
            assert!(
                actual >= target / 2 && actual <= target * 2,
                "target {target} got {actual}"
            );
        }
    }

    #[test]
    fn pseudo_words_are_unique_and_pronounceable() {
        let mut seen = std::collections::HashSet::new();
        for i in 0..10_000 {
            let w = pseudo_word(i, 0);
            assert!(seen.insert(w.clone()), "duplicate {w}");
            assert!(w.chars().next().unwrap().is_alphabetic());
        }
    }
}
