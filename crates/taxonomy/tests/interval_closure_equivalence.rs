//! Property test pinning [`IntervalIndex`] to the hash-closure ground
//! truth: over randomly generated DAGs interleaved with the full mutation
//! API (`add_hyponym` / `remove_hyponym` / `add_equivalence`), every
//! decided answer (`Some`) must equal [`compute_closure`] membership, every
//! deferral (`None`) may only happen when the index reports exception
//! edges, and `subtree_size` must be the exact closure size wherever it
//! answers.  This is the contract the Ω fast path in `mlql-mural` leans
//! on: interval hits/misses are authoritative, fallbacks are rare and safe.

use mlql_taxonomy::closure::compute_closure;
use mlql_taxonomy::{IntervalIndex, SynsetId, Taxonomy};
use mlql_unitext::LanguageRegistry;
use proptest::prelude::*;

/// One step of the mutation workload, indices taken modulo the synset
/// count at application time.
#[derive(Debug, Clone)]
enum Mutation {
    AddHyponym(usize, usize),
    RemoveHyponym(usize, usize),
    AddEquivalence(usize, usize),
}

fn mutation_strategy() -> impl Strategy<Value = Mutation> {
    // Edge additions listed twice to bias the workload toward growth.
    prop_oneof![
        (0usize..64, 0usize..64).prop_map(|(a, b)| Mutation::AddHyponym(a, b)),
        (0usize..64, 0usize..64).prop_map(|(a, b)| Mutation::AddHyponym(a, b)),
        (0usize..64, 0usize..64).prop_map(|(a, b)| Mutation::RemoveHyponym(a, b)),
        (0usize..64, 0usize..64).prop_map(|(a, b)| Mutation::AddEquivalence(a, b)),
    ]
}

/// Exhaustively check the index against the BFS closure for every
/// (root, candidate) pair of a small taxonomy.
fn assert_index_matches_closure(t: &Taxonomy) {
    let idx = IntervalIndex::build(t);
    for root in t.ids() {
        let closure = compute_closure(t, root);
        for cand in t.ids() {
            match idx.contains(root, cand) {
                Some(got) => assert_eq!(
                    got,
                    closure.contains(&cand),
                    "contains({root:?}, {cand:?}) disagreed with compute_closure"
                ),
                None => assert!(
                    idx.has_exceptions(),
                    "deferred {root:?} → {cand:?} on an exception-free index"
                ),
            }
        }
        if let Some(sz) = idx.subtree_size(root) {
            assert_eq!(
                sz,
                closure.len(),
                "subtree_size({root:?}) must be the exact closure size"
            );
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn interval_containment_equals_compute_closure(
        synsets in 2usize..28,
        // Initial random DAG: each entry is a (parent, child) pair mod n.
        edges in proptest::collection::vec((0usize..64, 0usize..64), 0..40),
        equivs in proptest::collection::vec((0usize..64, 0usize..64), 0..6),
        mutations in proptest::collection::vec(mutation_strategy(), 0..12),
    ) {
        let reg = LanguageRegistry::new();
        let langs = [reg.id_of("English"), reg.id_of("French"), reg.id_of("Tamil")];
        let mut t = Taxonomy::new();
        let ids: Vec<SynsetId> = (0..synsets)
            .map(|i| t.add_synset(langs[i % langs.len()], &[format!("w{i}").as_str()]))
            .collect();
        for (p, c) in edges {
            let (p, c) = (ids[p % synsets], ids[c % synsets]);
            if p != c {
                t.add_hyponym(p, c);
            }
        }
        for (a, b) in equivs {
            let (a, b) = (ids[a % synsets], ids[b % synsets]);
            if a != b {
                t.add_equivalence(a, b);
            }
        }
        assert_index_matches_closure(&t);

        // Interleave mutations, rebuilding the index after each — the same
        // protocol SemState follows under its clone-on-write guard.
        for m in mutations {
            match m {
                Mutation::AddHyponym(p, c) => {
                    let (p, c) = (ids[p % synsets], ids[c % synsets]);
                    if p != c {
                        t.add_hyponym(p, c);
                    }
                }
                Mutation::RemoveHyponym(p, c) => {
                    let (p, c) = (ids[p % synsets], ids[c % synsets]);
                    t.remove_hyponym(p, c);
                }
                Mutation::AddEquivalence(a, b) => {
                    let (a, b) = (ids[a % synsets], ids[b % synsets]);
                    if a != b {
                        t.add_equivalence(a, b);
                    }
                }
            }
            assert_index_matches_closure(&t);
        }
    }
}
