//! Volcano-style executors with a batch-at-a-time spine.
//!
//! Every operator is a pull-based iterator ([`Executor::next`]); rescans
//! (`rescan`) support non-materialized nested-loops joins, whose repeated
//! inner-side page traffic is exactly what makes the paper's Plan 2 of
//! Example 5 expensive.
//!
//! On top of the row ABI sits [`Executor::next_batch`]: operators exchange
//! [`Batch`]es of up to `batch_size` rows (default 1024, `SET batch_size`,
//! max [`MAX_BATCH_ROWS`]).  A default adapter loops `next`, so every
//! operator keeps working unmodified; the hot spine — seq scan → filter →
//! project → limit, plus the gather node of a parallel scan — overrides it
//! natively and evaluates predicates through [`Expr::eval_batch`], which
//! dispatches ψ/Ω once per batch instead of once per row.  `SET
//! enable_batch = 0` falls back to pure row-at-a-time pulls (the A/B
//! baseline for the `batch_exec` bench).

use crate::catalog::{Catalog, SessionVars, TableMeta};
use crate::error::{Error, Result};
use crate::expr::{EvalCtx, Expr};
use crate::plan::{AggFunc, PhysNode, PhysOp};
use crate::schema::{Row, Schema};
use crate::storage::{decode_row, split_version, BufferPool, FileId, HeapFile, TupleId};
use crate::txn::TxnVisibility;
use crate::value::Datum;
use parking_lot::{Condvar, Mutex};
use std::collections::{HashMap, VecDeque};
use std::sync::atomic::{AtomicBool, AtomicU32, AtomicU64, Ordering};
use std::sync::{Arc, OnceLock};
use std::time::Instant;

pub mod pool;

pub use pool::ExecPool;

/// A relaxed atomic counter: the statistics cells are written from
/// whichever thread runs the executor tree, so plans stay `Send` and many
/// sessions can execute concurrently.  Relaxed ordering suffices — the
/// values are monotone tallies read after the query completes.
#[derive(Debug, Default)]
pub struct StatCell(AtomicU64);

impl StatCell {
    /// Current value.
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }

    /// Overwrite the value.
    pub fn set(&self, v: u64) {
        self.0.store(v, Ordering::Relaxed)
    }

    /// Add to the value.
    pub fn add(&self, delta: u64) {
        self.0.fetch_add(delta, Ordering::Relaxed);
    }
}

/// Runtime counters outside the buffer pool (index traffic, operator calls).
#[derive(Debug, Default)]
pub struct ExecStats {
    /// Index nodes visited (charged as page reads in reporting).
    pub index_node_visits: StatCell,
    /// Extension-operator invocations, counted where they happen — in
    /// `Expr::eval`'s ExtOp arm — so the total reconciles with the cost
    /// model's per-tuple charge no matter which operator evaluates the
    /// predicate.
    pub ext_op_calls: StatCell,
    /// Rows produced by the plan root.
    pub rows_out: StatCell,
    /// Batches produced by the plan root (0 when the statement was driven
    /// row-at-a-time, e.g. `SET enable_batch = 0`).
    pub batches_out: StatCell,
}

/// Execution context shared by all executors of one query.
pub struct ExecCtx<'a> {
    /// The catalog.
    pub catalog: &'a Catalog,
    /// The buffer pool.
    pub pool: &'a BufferPool,
    /// Session variables.
    pub session: &'a SessionVars,
    /// Runtime counters.
    pub stats: &'a ExecStats,
    /// The engine's worker pool for parallel operators (`None` in
    /// contexts that must stay serial, e.g. recovery replay).
    pub exec_pool: Option<&'a ExecPool>,
    /// MVCC visibility: which heap tuple versions this statement sees.
    /// Owned (the snapshot is a couple of `Arc`s), so worker threads can
    /// clone it without borrowing the session.
    pub vis: TxnVisibility,
}

impl<'a> ExecCtx<'a> {
    fn eval_ctx(&self) -> EvalCtx<'a> {
        EvalCtx {
            catalog: self.catalog,
            session: self.session,
            stats: Some(self.stats),
        }
    }
}

/// Per-operator runtime actuals, filled in by [`InstrumentedExec`].
///
/// All figures are **inclusive of children** (like PostgreSQL's
/// `EXPLAIN (ANALYZE, BUFFERS)`): a node's time and page counts cover
/// everything beneath it.  Atomic cells so instrumented trees stay
/// `Send` like their uninstrumented counterparts.
#[derive(Debug, Default)]
pub struct OpStats {
    /// Rows this node produced (across all loops).
    pub rows: StatCell,
    /// Times this node was started (1 + rescans that were actually pulled).
    pub loops: StatCell,
    /// Wall-clock nanoseconds spent inside this node and its children.
    pub time_ns: StatCell,
    /// Buffer-pool page requests attributed to this subtree.
    pub logical_reads: StatCell,
    /// Buffer-pool misses attributed to this subtree.
    pub physical_reads: StatCell,
    /// Index nodes visited in this subtree.
    pub index_node_visits: StatCell,
    /// Extension-operator (ψ/Ω) evaluations in this subtree.
    pub ext_op_calls: StatCell,
    /// Batches this node produced via `next_batch` (0 when the node was
    /// only ever pulled row-at-a-time).
    pub batches: StatCell,
}

/// Per-node stats for an instrumented executor tree, in the same
/// pre-order as [`PhysNode::explain`] lines (node before children,
/// outer/left child before inner/right).
pub struct Instrumentation {
    /// One entry per plan node, pre-order.
    pub per_node: Vec<Arc<OpStats>>,
    /// Per-worker actuals of each parallel scan in the tree, in the
    /// pre-order the scans appear in the plan.
    pub parallel: Vec<Arc<ParallelScanActuals>>,
}

/// Runtime actuals of one morsel-driven parallel scan, split per worker
/// (`EXPLAIN ANALYZE` renders them as extra trailer lines so the
/// one-entry-per-node pre-order of [`NodeActuals`] is undisturbed).
#[derive(Debug)]
pub struct ParallelScanActuals {
    /// Worker count the scan was planned with.
    pub workers: usize,
    /// Morsels (fixed-size page ranges) claimed across all workers.
    pub morsels: StatCell,
    /// Nanoseconds the gather node spent blocked waiting on batches.
    pub gather_wait_ns: StatCell,
    /// Rows each worker emitted (post-filter).
    pub worker_rows: Vec<StatCell>,
    /// Busy nanoseconds per worker.
    pub worker_busy_ns: Vec<StatCell>,
}

impl ParallelScanActuals {
    fn new(workers: usize) -> Self {
        ParallelScanActuals {
            workers,
            morsels: StatCell::default(),
            gather_wait_ns: StatCell::default(),
            worker_rows: (0..workers).map(|_| StatCell::default()).collect(),
            worker_busy_ns: (0..workers).map(|_| StatCell::default()).collect(),
        }
    }
}

// ------------------------------------------------------------------ Batch

/// Session variable naming the per-batch row capacity (`SET batch_size`,
/// clamped to `[1, MAX_BATCH_ROWS]`; `batch_size = 1` degenerates to
/// row-at-a-time pulls through the batch ABI).
pub const BATCH_SIZE_VAR: &str = "batch_size";

/// Session variable switching the drivers between the batch spine
/// (default) and pure row-at-a-time Volcano pulls (`SET enable_batch = 0`).
pub const ENABLE_BATCH_VAR: &str = "enable_batch";

/// Hard upper bound on rows per batch: batches stay cache-friendly slabs
/// of a few thousand rows, never unbounded materializations.
pub const MAX_BATCH_ROWS: usize = 4096;

/// The process default batch size: `$MLQL_BATCH_SIZE` if set (clamped to
/// `[1, MAX_BATCH_ROWS]`), else 1024.
pub fn default_batch_size() -> usize {
    static DEFAULT: OnceLock<usize> = OnceLock::new();
    *DEFAULT.get_or_init(|| {
        std::env::var("MLQL_BATCH_SIZE")
            .ok()
            .and_then(|v| v.trim().parse::<usize>().ok())
            .map(|n| n.clamp(1, MAX_BATCH_ROWS))
            .unwrap_or(1024)
    })
}

/// The batch size a session's queries run with: `batch_size` if set, else
/// [`default_batch_size`], clamped to `[1, MAX_BATCH_ROWS]`.
pub fn effective_batch_size(session: &SessionVars) -> usize {
    (session
        .get_int(BATCH_SIZE_VAR, default_batch_size() as i64)
        .max(1) as usize)
        .min(MAX_BATCH_ROWS)
}

/// Is the batch spine enabled for this session?
pub fn batch_enabled(session: &SessionVars) -> bool {
    session.get_int(ENABLE_BATCH_VAR, 1) != 0
}

/// A slab of rows flowing between operators.
///
/// Rows are stored in producer order; [`Batch::column`] gives columnar
/// access for vectorized consumers.  Producers never emit empty batches —
/// end-of-stream is `None` from [`Executor::next_batch`] — and never more
/// than the `max` the consumer asked for, so LIMIT and `max_rows` keep
/// exact semantics on the batch path.
#[derive(Debug, Default)]
pub struct Batch {
    /// The rows, in producer order.
    pub rows: Vec<Row>,
}

impl Batch {
    /// Wrap rows into a batch.
    pub fn new(rows: Vec<Row>) -> Batch {
        Batch { rows }
    }

    /// Number of rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// True when the batch holds no rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Borrow every row as a slice (the shape `Expr::eval_batch` takes).
    pub fn row_refs(&self) -> Vec<&[Datum]> {
        self.rows.iter().map(|r| r.as_slice()).collect()
    }

    /// Columnar view of one attribute across the batch.
    pub fn column(&self, index: usize) -> impl Iterator<Item = &Datum> {
        self.rows.iter().filter_map(move |r| r.get(index))
    }

    /// Take the rows back out.
    pub fn into_rows(self) -> Vec<Row> {
        self.rows
    }
}

/// Evaluate `filter` over `rows` via [`Expr::eval_batch`], keeping only
/// the passing rows (order preserved).
fn filter_rows_batch(filter: &Expr, rows: Vec<Row>, eval: &EvalCtx<'_>) -> Result<Vec<Row>> {
    let refs: Vec<&[Datum]> = rows.iter().map(|r| r.as_slice()).collect();
    let mask = filter.eval_batch(&refs, eval)?;
    Ok(rows
        .into_iter()
        .zip(mask)
        .filter_map(|(row, v)| v.is_true().then_some(row))
        .collect())
}

/// Drain `input` to exhaustion, feeding every row to `sink` — through the
/// batch ABI when the session has it enabled, else row-at-a-time.  The
/// bulk drains (aggregate/sort input, hash-join build, materialized
/// nested-loops inner) all funnel through here so a scan feeding them
/// gets vectorized predicate evaluation.
fn drain_input(
    input: &mut dyn Executor,
    ctx: &ExecCtx<'_>,
    mut sink: impl FnMut(Row) -> Result<()>,
) -> Result<()> {
    if batch_enabled(ctx.session) {
        let max = effective_batch_size(ctx.session);
        while let Some(batch) = input.next_batch(ctx, max)? {
            for row in batch.rows {
                sink(row)?;
            }
        }
    } else {
        while let Some(row) = input.next(ctx)? {
            sink(row)?;
        }
    }
    Ok(())
}

/// Wraps an executor, attributing per-`next` deltas of the shared
/// query counters (pool I/O, index visits, ext-op calls) to this node.
struct InstrumentedExec {
    inner: Box<dyn Executor>,
    stats: Arc<OpStats>,
    /// True before the first `next` of each loop (start or post-rescan).
    fresh: bool,
}

impl Executor for InstrumentedExec {
    fn schema(&self) -> &Schema {
        self.inner.schema()
    }

    fn next(&mut self, ctx: &ExecCtx<'_>) -> Result<Option<Row>> {
        if self.fresh {
            self.fresh = false;
            self.stats.loops.add(1);
        }
        let io_before = ctx.pool.stats();
        let inv_before = ctx.stats.index_node_visits.get();
        let ext_before = ctx.stats.ext_op_calls.get();
        let start = Instant::now();
        let out = self.inner.next(ctx);
        let elapsed = start.elapsed().as_nanos() as u64;
        let io = ctx.pool.stats().since(&io_before);
        let s = &self.stats;
        s.time_ns.add(elapsed);
        s.logical_reads.add(io.logical_reads);
        s.physical_reads.add(io.physical_reads);
        s.index_node_visits
            .add(ctx.stats.index_node_visits.get() - inv_before);
        s.ext_op_calls
            .add(ctx.stats.ext_op_calls.get() - ext_before);
        if let Ok(Some(_)) = &out {
            s.rows.add(1);
        }
        out
    }

    fn next_batch(&mut self, ctx: &ExecCtx<'_>, max: usize) -> Result<Option<Batch>> {
        if self.fresh {
            self.fresh = false;
            self.stats.loops.add(1);
        }
        let io_before = ctx.pool.stats();
        let inv_before = ctx.stats.index_node_visits.get();
        let ext_before = ctx.stats.ext_op_calls.get();
        let start = Instant::now();
        let out = self.inner.next_batch(ctx, max);
        let elapsed = start.elapsed().as_nanos() as u64;
        let io = ctx.pool.stats().since(&io_before);
        let s = &self.stats;
        s.time_ns.add(elapsed);
        s.logical_reads.add(io.logical_reads);
        s.physical_reads.add(io.physical_reads);
        s.index_node_visits
            .add(ctx.stats.index_node_visits.get() - inv_before);
        s.ext_op_calls
            .add(ctx.stats.ext_op_calls.get() - ext_before);
        if let Ok(Some(b)) = &out {
            s.rows.add(b.len() as u64);
            s.batches.add(1);
        }
        out
    }

    fn rescan(&mut self, ctx: &ExecCtx<'_>) -> Result<()> {
        self.fresh = true;
        self.inner.rescan(ctx)
    }
}

/// A pull-based operator.
///
/// `Send` so a built executor tree can run on whichever thread owns the
/// session — the cached-plan execution path hands trees across threads.
pub trait Executor: Send {
    /// Output schema.
    fn schema(&self) -> &Schema;
    /// Produce the next row, or `None` at end of stream.
    fn next(&mut self, ctx: &ExecCtx<'_>) -> Result<Option<Row>>;
    /// Produce the next batch of up to `max` rows, or `None` at end of
    /// stream.
    ///
    /// Contract: a returned batch is never empty and never longer than
    /// `max`; rows arrive in the same order `next` would produce them.
    /// This default is the row-compatibility adapter — it loops `next`,
    /// so operators without a native batch path interoperate freely with
    /// batch-native parents and children.
    fn next_batch(&mut self, ctx: &ExecCtx<'_>, max: usize) -> Result<Option<Batch>> {
        let max = max.max(1);
        let mut rows = Vec::new();
        while rows.len() < max {
            match self.next(ctx)? {
                Some(row) => rows.push(row),
                None => break,
            }
        }
        Ok((!rows.is_empty()).then(|| Batch::new(rows)))
    }
    /// Reset to the start of the stream (for nested-loops rescans).
    fn rescan(&mut self, ctx: &ExecCtx<'_>) -> Result<()>;
}

/// Build an executor tree from a physical plan.
pub fn build_executor(node: &PhysNode, ctx: &ExecCtx<'_>) -> Result<Box<dyn Executor>> {
    build_executor_impl(node, ctx, None)
}

/// Build an executor tree where every node is wrapped for per-operator
/// actuals (rows / loops / time / pages).  The returned
/// [`Instrumentation`] holds one [`OpStats`] per plan node, in the same
/// pre-order as `EXPLAIN` output lines.
pub fn build_instrumented(
    node: &PhysNode,
    ctx: &ExecCtx<'_>,
) -> Result<(Box<dyn Executor>, Instrumentation)> {
    let mut instr = Instrumentation {
        per_node: Vec::new(),
        parallel: Vec::new(),
    };
    let exec = build_executor_impl(node, ctx, Some(&mut instr))?;
    Ok((exec, instr))
}

fn build_executor_impl(
    node: &PhysNode,
    ctx: &ExecCtx<'_>,
    mut instr: Option<&mut Instrumentation>,
) -> Result<Box<dyn Executor>> {
    // Register this node BEFORE building children so `per_node` matches
    // the pre-order of `explain` lines.
    let op_stats = instr.as_deref_mut().map(|i| {
        let s = Arc::new(OpStats::default());
        i.per_node.push(Arc::clone(&s));
        s
    });
    let exec: Box<dyn Executor> = match &node.op {
        PhysOp::SeqScan { table, filter, .. } => {
            let meta = ctx.catalog.table(table)?;
            Box::new(SeqScanExec::new(meta, filter.clone()))
        }
        PhysOp::ParallelSeqScan {
            table,
            filter,
            workers,
            ..
        } => {
            let meta = ctx.catalog.table(table)?;
            let actuals = instr.as_deref_mut().map(|i| {
                let a = Arc::new(ParallelScanActuals::new(*workers));
                i.parallel.push(Arc::clone(&a));
                a
            });
            Box::new(ParallelSeqScanExec::new(
                meta,
                filter.clone(),
                *workers,
                actuals,
            ))
        }
        PhysOp::IndexScan {
            table,
            index,
            strategy,
            probe,
            extra,
            residual,
        } => {
            let meta = ctx.catalog.table(table)?;
            let idx = ctx
                .catalog
                .indexes_of(meta.id)
                .into_iter()
                .find(|i| &i.name == index)
                .ok_or_else(|| Error::Execution(format!("no index {index:?}")))?;
            Box::new(IndexScanExec::new(
                meta,
                idx,
                strategy.clone(),
                probe.clone(),
                extra.clone(),
                residual.clone(),
            ))
        }
        PhysOp::Filter { input, predicate } => Box::new(FilterExec {
            input: build_executor_impl(input, ctx, instr.as_deref_mut())?,
            predicate: predicate.clone(),
        }),
        PhysOp::Project { input, exprs } => Box::new(ProjectExec {
            input: build_executor_impl(input, ctx, instr.as_deref_mut())?,
            exprs: exprs.clone(),
            schema: node.schema.clone(),
        }),
        PhysOp::NlJoin {
            outer,
            inner,
            predicate,
            materialize_inner,
        } => Box::new(NlJoinExec {
            outer: build_executor_impl(outer, ctx, instr.as_deref_mut())?,
            inner: build_executor_impl(inner, ctx, instr.as_deref_mut())?,
            predicate: predicate.clone(),
            materialize: *materialize_inner,
            schema: node.schema.clone(),
            outer_row: None,
            inner_buf: None,
            inner_pos: 0,
            started: false,
        }),
        PhysOp::HashJoin {
            left,
            right,
            left_key,
            right_key,
            residual,
        } => Box::new(HashJoinExec {
            left: build_executor_impl(left, ctx, instr.as_deref_mut())?,
            right: build_executor_impl(right, ctx, instr.as_deref_mut())?,
            left_key: left_key.clone(),
            right_key: right_key.clone(),
            residual: residual.clone(),
            schema: node.schema.clone(),
            table: None,
            probe_row: None,
            matches: Vec::new(),
            match_pos: 0,
        }),
        PhysOp::Aggregate {
            input,
            group_by,
            aggs,
        } => Box::new(AggregateExec {
            input: build_executor_impl(input, ctx, instr.as_deref_mut())?,
            group_by: group_by.clone(),
            aggs: aggs.clone(),
            schema: node.schema.clone(),
            output: None,
            pos: 0,
        }),
        PhysOp::Sort { input, keys } => Box::new(SortExec {
            input: build_executor_impl(input, ctx, instr.as_deref_mut())?,
            keys: keys.clone(),
            buffered: None,
            pos: 0,
        }),
        PhysOp::Limit { input, n } => Box::new(LimitExec {
            input: build_executor_impl(input, ctx, instr)?,
            remaining: *n,
        }),
        PhysOp::Values { rows } => Box::new(ValuesExec {
            rows: rows.clone(),
            schema: node.schema.clone(),
            pos: 0,
        }),
    };
    Ok(match op_stats {
        Some(stats) => Box::new(InstrumentedExec {
            inner: exec,
            stats,
            fresh: true,
        }),
        None => exec,
    })
}

/// Session variable bounding how many rows a statement may materialize.
pub const MAX_ROWS_VAR: &str = "max_rows";

/// Run a plan to completion, collecting all rows.
///
/// Honors the `max_rows` session variable (0 or unset = unlimited): a
/// runaway SELECT fails with [`Error::MaxRows`] instead of materializing
/// an unbounded `Vec<Row>`.
pub fn run_to_vec(node: &PhysNode, ctx: &ExecCtx<'_>) -> Result<Vec<Row>> {
    let max_rows = ctx.session.get_int(MAX_ROWS_VAR, 0).max(0) as u64;
    // Resolve the activity slot once; the per-row cost is then a single
    // relaxed fetch_add on the owning session's slot.
    let slot = crate::obs::current().and_then(|c| c.slot.clone());
    let mut exec = build_executor(node, ctx)?;
    let mut out = Vec::new();
    if batch_enabled(ctx.session) {
        let max = effective_batch_size(ctx.session);
        let mut batches = 0u64;
        while let Some(batch) = exec.next_batch(ctx, max)? {
            batches += 1;
            if max_rows > 0 && (out.len() + batch.len()) as u64 > max_rows {
                return Err(Error::MaxRows { limit: max_rows });
            }
            if let Some(slot) = &slot {
                slot.add_rows(batch.len() as u64);
            }
            out.extend(batch.rows);
        }
        ctx.stats.batches_out.set(batches);
    } else {
        while let Some(row) = exec.next(ctx)? {
            if max_rows > 0 && out.len() as u64 >= max_rows {
                return Err(Error::MaxRows { limit: max_rows });
            }
            out.push(row);
            if let Some(slot) = &slot {
                slot.add_rows(1);
            }
        }
    }
    ctx.stats.rows_out.set(out.len() as u64);
    Ok(out)
}

// ---------------------------------------------------------------- SeqScan

struct SeqScanExec {
    meta: Arc<TableMeta>,
    filter: Option<Expr>,
    page: u32,
    page_rows: Vec<Row>,
    row_pos: usize,
    n_pages: Option<u32>,
}

impl SeqScanExec {
    fn new(meta: Arc<TableMeta>, filter: Option<Expr>) -> Self {
        SeqScanExec {
            meta,
            filter,
            page: 0,
            page_rows: Vec::new(),
            row_pos: 0,
            n_pages: None,
        }
    }

    fn load_page(&mut self, ctx: &ExecCtx<'_>) -> Result<bool> {
        let n_pages = match self.n_pages {
            Some(n) => n,
            None => {
                let n = self.meta.heap.pages(ctx.pool)?;
                self.n_pages = Some(n);
                n
            }
        };
        if self.page >= n_pages {
            return Ok(false);
        }
        let arity = self.meta.schema.len();
        let file = self.meta.heap.file_id();
        self.page_rows.clear();
        // Copy the page image out under the pool mutex and decode outside
        // it: row decoding is the CPU-heavy part of a scan, and holding the
        // (pool-wide) lock through it would serialize concurrent sessions.
        let img: Vec<u8> = ctx.pool.with_page(file, self.page, |buf| buf.to_vec())?;
        let rows: Result<Vec<Row>> = HeapFile::page_tuples(&img)
            .filter_map(|(_, t)| match split_version(t) {
                Ok((xmin, xmax, rest)) => ctx.vis.sees(xmin, xmax).then(|| decode_row(rest, arity)),
                Err(e) => Some(Err(e)),
            })
            .collect();
        self.page_rows = rows?;
        self.page += 1;
        self.row_pos = 0;
        Ok(true)
    }
}

impl Executor for SeqScanExec {
    fn schema(&self) -> &Schema {
        &self.meta.schema
    }

    fn next(&mut self, ctx: &ExecCtx<'_>) -> Result<Option<Row>> {
        let eval = ctx.eval_ctx();
        loop {
            if self.row_pos < self.page_rows.len() {
                let row = std::mem::take(&mut self.page_rows[self.row_pos]);
                self.row_pos += 1;
                if let Some(f) = &self.filter {
                    // ext_op_calls is counted inside `Expr::eval` (only
                    // when the predicate actually contains an ExtOp).
                    if !f.eval(&row, &eval)?.is_true() {
                        continue;
                    }
                }
                return Ok(Some(row));
            }
            if !self.load_page(ctx)? {
                return Ok(None);
            }
        }
    }

    /// Native batch path: take whole page-sized runs of decoded rows and
    /// evaluate the pushed-down filter once per run via `eval_batch` —
    /// this is where ψ's per-batch memoization (constant phoneme
    /// conversion, Myers mask) kicks in.
    fn next_batch(&mut self, ctx: &ExecCtx<'_>, max: usize) -> Result<Option<Batch>> {
        let max = max.max(1);
        let eval = ctx.eval_ctx();
        let mut out: Vec<Row> = Vec::new();
        loop {
            if self.row_pos < self.page_rows.len() {
                let take = (self.page_rows.len() - self.row_pos).min(max - out.len());
                let candidates: Vec<Row> = self.page_rows[self.row_pos..self.row_pos + take]
                    .iter_mut()
                    .map(std::mem::take)
                    .collect();
                self.row_pos += take;
                match &self.filter {
                    Some(f) => out.extend(filter_rows_batch(f, candidates, &eval)?),
                    None => out.extend(candidates),
                }
                if out.len() >= max {
                    return Ok(Some(Batch::new(out)));
                }
            } else if !self.load_page(ctx)? {
                return Ok((!out.is_empty()).then(|| Batch::new(out)));
            }
        }
    }

    fn rescan(&mut self, _ctx: &ExecCtx<'_>) -> Result<()> {
        self.page = 0;
        self.page_rows.clear();
        self.row_pos = 0;
        Ok(())
    }
}

// ------------------------------------------------------- ParallelSeqScan

/// Session variable naming the worker count for parallel plans.
pub const PARALLEL_WORKERS_VAR: &str = "parallel_workers";

/// Pages per morsel.  Small enough that a 4-worker scan of a few dozen
/// pages still load-balances, large enough that the per-morsel channel
/// round-trip is amortized over hundreds of rows.
const MORSEL_PAGES: u32 = 4;

/// The worker count a session's parallel plans run with: the
/// `parallel_workers` variable if set, else [`ExecPool::default_workers`],
/// clamped to `[1, ExecPool::MAX_WORKERS]`.
pub fn effective_workers(session: &SessionVars) -> usize {
    let dflt = ExecPool::default_workers();
    let n = session.get_int(PARALLEL_WORKERS_VAR, dflt as i64).max(1) as usize;
    n.min(ExecPool::MAX_WORKERS)
}

/// State shared between the gather node and its scan workers.
struct ScanShared {
    /// Next unclaimed page; workers `fetch_add` [`MORSEL_PAGES`] to claim
    /// a morsel, so distribution is dynamic (fast workers take more).
    cursor: AtomicU32,
    n_pages: u32,
    /// Set by the gather node to stop workers early (LIMIT, drop, error).
    cancelled: AtomicBool,
    /// Dispatched-but-unfinished worker tasks; the gather node blocks on
    /// this reaching zero before its borrowed context goes away.
    outstanding: Mutex<usize>,
    done: Condvar,
}

impl ScanShared {
    fn task_finished(&self) {
        let mut left = self.outstanding.lock();
        *left -= 1;
        if *left == 0 {
            self.done.notify_all();
        }
    }

    fn wait_all_finished(&self) {
        let mut left = self.outstanding.lock();
        while *left > 0 {
            self.done.wait(&mut left);
        }
    }
}

/// The query context, lifetime-erased so worker tasks (which must be
/// `'static` for the shared pool) can borrow it.
///
/// # Safety
/// Sound only under the gather node's protocol: the pointers come from an
/// `ExecCtx` that the query thread keeps alive for the whole execution
/// (the catalog read guard is held across it), and the gather node never
/// lets its own lifetime end — `next`/`rescan`/`Drop` all funnel through
/// [`ParallelSeqScanExec::shutdown`], which blocks until every dispatched
/// task has finished — while workers could still dereference them.
struct ErasedCtx {
    catalog: *const Catalog,
    pool: *const BufferPool,
    session: *const SessionVars,
    stats: *const ExecStats,
    /// Owned clone (not a pointer): visibility is cheap to clone and the
    /// workers need it past any one borrow of the originating `ExecCtx`.
    vis: TxnVisibility,
}

unsafe impl Send for ErasedCtx {}
unsafe impl Sync for ErasedCtx {}

/// Morsel-driven parallel heap scan plus its gather node.
///
/// Workers claim page-range morsels off a shared cursor, evaluate the
/// pushed-down filter independently (ψ phoneme conversion + edit
/// distance run fully inside the worker), and send row *batches* over an
/// mpmc channel.  The gather node re-serializes them — batch order is
/// whatever the scheduler produced, which is why parallel plans are only
/// equivalent to serial ones up to row order.  LIMIT / `max_rows` keep
/// their semantics because they apply above the gather node, which
/// cancels and joins outstanding workers when dropped early.
struct ParallelSeqScanExec {
    meta: Arc<TableMeta>,
    filter: Option<Expr>,
    workers: usize,
    actuals: Option<Arc<ParallelScanActuals>>,
    running: Option<RunningScan>,
    buffer: VecDeque<Row>,
    done: bool,
}

struct RunningScan {
    rx: crossbeam::channel::Receiver<Result<Vec<Row>>>,
    shared: Arc<ScanShared>,
}

impl ParallelSeqScanExec {
    fn new(
        meta: Arc<TableMeta>,
        filter: Option<Expr>,
        workers: usize,
        actuals: Option<Arc<ParallelScanActuals>>,
    ) -> Self {
        ParallelSeqScanExec {
            meta,
            filter,
            workers: workers.max(1),
            actuals,
            running: None,
            buffer: VecDeque::new(),
            done: false,
        }
    }

    /// Dispatch one task per worker.  Every task holds a `Sender` clone;
    /// end-of-scan is the channel disconnecting once all of them finish.
    fn start(&mut self, ctx: &ExecCtx<'_>) -> Result<()> {
        let pool = ctx.exec_pool.ok_or_else(|| {
            Error::Execution("parallel plan executed without a worker pool".into())
        })?;
        let n_pages = self.meta.heap.pages(ctx.pool)?;
        pool.ensure_workers(self.workers);
        let shared = Arc::new(ScanShared {
            cursor: AtomicU32::new(0),
            n_pages,
            cancelled: AtomicBool::new(false),
            outstanding: Mutex::new(self.workers),
            done: Condvar::new(),
        });
        let (tx, rx) = crossbeam::channel::unbounded();
        let erased = Arc::new(ErasedCtx {
            catalog: ctx.catalog,
            pool: ctx.pool,
            session: ctx.session,
            stats: ctx.stats,
            vis: ctx.vis.clone(),
        });
        // Propagate the session's query context into every worker task so
        // waits and progress charged on pool threads land on this query.
        let qctx = crate::obs::current();
        if let Some(slot) = qctx.as_ref().and_then(|c| c.slot.as_ref()) {
            slot.set_workers(self.workers as u64);
        }
        for worker_idx in 0..self.workers {
            let erased = Arc::clone(&erased);
            let meta = Arc::clone(&self.meta);
            let filter = self.filter.clone();
            let shared_w = Arc::clone(&shared);
            let tx = tx.clone();
            let actuals = self.actuals.clone();
            let qctx_w = qctx.clone();
            pool.submit(Box::new(move || {
                let _guard = qctx_w.map(crate::obs::enter_query);
                scan_worker(erased, meta, filter, shared_w, tx, actuals, worker_idx)
            }));
        }
        // Workers own the remaining Sender clones.
        drop(tx);
        self.running = Some(RunningScan { rx, shared });
        Ok(())
    }

    /// Cancel outstanding work and block until every dispatched task has
    /// finished — after this returns no worker holds the erased context.
    fn shutdown(&mut self) {
        if let Some(run) = self.running.take() {
            run.shared.cancelled.store(true, Ordering::Release);
            run.shared.wait_all_finished();
        }
    }

    /// Block until the gather buffer holds at least one worker batch or
    /// the scan is exhausted (`self.done`).
    fn fill_buffer(&mut self, ctx: &ExecCtx<'_>) -> Result<()> {
        while self.buffer.is_empty() && !self.done {
            if self.running.is_none() {
                self.start(ctx)?;
            }
            let rx = &self.running.as_ref().expect("started above").rx;
            let wait = Instant::now();
            let received = rx.recv();
            let waited = wait.elapsed().as_nanos() as u64;
            crate::obs::metrics()
                .parallel_gather_wait_ns_total
                .add(waited);
            if let Some(a) = &self.actuals {
                a.gather_wait_ns.add(waited);
            }
            match received {
                Ok(Ok(batch)) => self.buffer.extend(batch),
                Ok(Err(e)) => {
                    self.shutdown();
                    self.done = true;
                    return Err(e);
                }
                // All senders dropped: every worker ran out of morsels.
                Err(_) => {
                    self.shutdown();
                    self.done = true;
                }
            }
        }
        Ok(())
    }
}

impl Drop for ParallelSeqScanExec {
    fn drop(&mut self) {
        self.shutdown();
    }
}

impl Executor for ParallelSeqScanExec {
    fn schema(&self) -> &Schema {
        &self.meta.schema
    }

    fn next(&mut self, ctx: &ExecCtx<'_>) -> Result<Option<Row>> {
        self.fill_buffer(ctx)?;
        Ok(self.buffer.pop_front())
    }

    /// Native batch path: morsels already arrive as row batches from the
    /// workers; hand them over wholesale (split only to honor `max`)
    /// instead of re-serializing through per-row pops.
    fn next_batch(&mut self, ctx: &ExecCtx<'_>, max: usize) -> Result<Option<Batch>> {
        self.fill_buffer(ctx)?;
        if self.buffer.is_empty() {
            return Ok(None);
        }
        let take = self.buffer.len().min(max.max(1));
        Ok(Some(Batch::new(self.buffer.drain(..take).collect())))
    }

    fn rescan(&mut self, _ctx: &ExecCtx<'_>) -> Result<()> {
        self.shutdown();
        self.buffer.clear();
        self.done = false;
        Ok(())
    }
}

/// One worker's share of a parallel scan (runs on an [`ExecPool`] thread).
fn scan_worker(
    erased: Arc<ErasedCtx>,
    meta: Arc<TableMeta>,
    filter: Option<Expr>,
    shared: Arc<ScanShared>,
    tx: crossbeam::channel::Sender<Result<Vec<Row>>>,
    actuals: Option<Arc<ParallelScanActuals>>,
    worker_idx: usize,
) {
    // Completion accounting must survive panics in predicate evaluation
    // (the pool catches the unwind; this guard runs during it) — the
    // gather node's shutdown would otherwise wait forever.
    struct FinishGuard(Arc<ScanShared>);
    impl Drop for FinishGuard {
        fn drop(&mut self) {
            self.0.task_finished();
        }
    }
    let _finish = FinishGuard(Arc::clone(&shared));

    // SAFETY: see `ErasedCtx` — the gather node keeps these alive until
    // after `task_finished` runs.
    let (catalog, pool, session, stats) = unsafe {
        (
            &*erased.catalog,
            &*erased.pool,
            &*erased.session,
            &*erased.stats,
        )
    };
    let eval = EvalCtx {
        catalog,
        session,
        stats: Some(stats),
    };
    let metrics = crate::obs::metrics();
    let arity = meta.schema.len();
    let file = meta.heap.file_id();
    let start = Instant::now();
    let mut rows_emitted = 0u64;
    loop {
        if shared.cancelled.load(Ordering::Acquire) {
            break;
        }
        let first = shared.cursor.fetch_add(MORSEL_PAGES, Ordering::AcqRel);
        if first >= shared.n_pages {
            break;
        }
        let last = first.saturating_add(MORSEL_PAGES).min(shared.n_pages);
        metrics.parallel_morsels_dispatched_total.inc();
        if let Some(a) = &actuals {
            a.morsels.add(1);
        }
        let mut batch = Vec::new();
        let mut err = None;
        for page in first..last {
            if let Err(e) = scan_page_into(
                pool,
                file,
                page,
                arity,
                &filter,
                &eval,
                &erased.vis,
                &mut batch,
            ) {
                err = Some(e);
                break;
            }
        }
        if let Some(e) = err {
            let _ = tx.send(Err(e));
            break;
        }
        rows_emitted += batch.len() as u64;
        if tx.send(Ok(batch)).is_err() {
            break; // gather node gone
        }
    }
    let busy = start.elapsed().as_nanos() as u64;
    metrics.parallel_worker_busy_ns_total.add(busy);
    if let Some(a) = &actuals {
        a.worker_rows[worker_idx].add(rows_emitted);
        a.worker_busy_ns[worker_idx].add(busy);
    }
}

/// Decode one heap page and append the rows passing `filter` to `out`
/// (the same copy-out-then-decode pattern as [`SeqScanExec::load_page`]).
///
/// With the batch spine enabled, the page's decoded rows are filtered in
/// one `eval_batch` call — each worker's morsel loop thereby reuses its
/// thread's `DistanceBuffer` and the per-batch ψ memoization instead of
/// paying per-row dispatch.
#[allow(clippy::too_many_arguments)]
fn scan_page_into(
    pool: &BufferPool,
    file: FileId,
    page: u32,
    arity: usize,
    filter: &Option<Expr>,
    eval: &EvalCtx<'_>,
    vis: &TxnVisibility,
    out: &mut Vec<Row>,
) -> Result<()> {
    let img: Vec<u8> = pool.with_page(file, page, |buf| buf.to_vec())?;
    match filter {
        Some(f) if batch_enabled(eval.session) => {
            let mut candidates = Vec::new();
            for (_, tuple) in HeapFile::page_tuples(&img) {
                let (xmin, xmax, rest) = split_version(tuple)?;
                if !vis.sees(xmin, xmax) {
                    continue;
                }
                candidates.push(decode_row(rest, arity)?);
            }
            out.extend(filter_rows_batch(f, candidates, eval)?);
        }
        _ => {
            for (_, tuple) in HeapFile::page_tuples(&img) {
                let (xmin, xmax, rest) = split_version(tuple)?;
                if !vis.sees(xmin, xmax) {
                    continue;
                }
                let row = decode_row(rest, arity)?;
                if let Some(f) = filter {
                    if !f.eval(&row, eval)?.is_true() {
                        continue;
                    }
                }
                out.push(row);
            }
        }
    }
    Ok(())
}

// -------------------------------------------------------------- IndexScan

struct IndexScanExec {
    meta: Arc<TableMeta>,
    index: Arc<crate::catalog::IndexMeta>,
    strategy: String,
    probe: Datum,
    extra: Datum,
    residual: Option<Expr>,
    tids: Option<Vec<TupleId>>,
    pos: usize,
}

impl IndexScanExec {
    #[allow(clippy::too_many_arguments)]
    fn new(
        meta: Arc<TableMeta>,
        index: Arc<crate::catalog::IndexMeta>,
        strategy: String,
        probe: Datum,
        extra: Datum,
        residual: Option<Expr>,
    ) -> Self {
        IndexScanExec {
            meta,
            index,
            strategy,
            probe,
            extra,
            residual,
            tids: None,
            pos: 0,
        }
    }
}

impl Executor for IndexScanExec {
    fn schema(&self) -> &Schema {
        &self.meta.schema
    }

    fn next(&mut self, ctx: &ExecCtx<'_>) -> Result<Option<Row>> {
        if self.tids.is_none() {
            // Partitionable access methods (the M-tree) fan subtree probes
            // across the worker pool when the session allows ≥ 2 workers;
            // the per-index read guard is held across the whole parallel
            // search, exactly as in the serial path.
            let search = {
                // Uncontended case: one failed try_read branch.  Contended
                // (a writer holds the index): time the block as an
                // IndexRead wait charged to this query.
                let guard = match self.index.instance.try_read() {
                    Some(g) => g,
                    None => crate::obs::waits::time_wait(crate::obs::WaitClass::IndexRead, || {
                        self.index.instance.read()
                    }),
                };
                match ctx.exec_pool {
                    Some(pool)
                        if effective_workers(ctx.session) >= 2
                            && ctx.session.get_int("enable_parallel", 1) != 0 =>
                    {
                        pool.ensure_workers(effective_workers(ctx.session));
                        guard.search_parallel(&self.strategy, &self.probe, &self.extra, pool)?
                    }
                    _ => guard.search(&self.strategy, &self.probe, &self.extra)?,
                }
            };
            ctx.stats.index_node_visits.add(search.node_visits);
            crate::obs::metrics()
                .index_node_visits_total
                .add(search.node_visits);
            self.tids = Some(search.tids);
            self.pos = 0;
        }
        let eval = ctx.eval_ctx();
        let arity = self.meta.schema.len();
        loop {
            let tids = self.tids.as_ref().expect("probed above");
            let Some(&tid) = tids.get(self.pos) else {
                return Ok(None);
            };
            self.pos += 1;
            let Some(bytes) = self.meta.heap.get(ctx.pool, tid)? else {
                continue; // vacuumed since the index entry was made
            };
            // Index entries outlive their versions: the heap tuple decides
            // visibility, the index only locates it.
            let (xmin, xmax, rest) = split_version(&bytes)?;
            if !ctx.vis.sees(xmin, xmax) {
                continue;
            }
            let row = decode_row(rest, arity)?;
            if let Some(f) = &self.residual {
                if !f.eval(&row, &eval)?.is_true() {
                    continue;
                }
            }
            return Ok(Some(row));
        }
    }

    fn rescan(&mut self, _ctx: &ExecCtx<'_>) -> Result<()> {
        self.pos = 0;
        Ok(())
    }
}

// ----------------------------------------------------------------- Filter

struct FilterExec {
    input: Box<dyn Executor>,
    predicate: Expr,
}

impl Executor for FilterExec {
    fn schema(&self) -> &Schema {
        self.input.schema()
    }

    fn next(&mut self, ctx: &ExecCtx<'_>) -> Result<Option<Row>> {
        let eval = ctx.eval_ctx();
        while let Some(row) = self.input.next(ctx)? {
            if self.predicate.eval(&row, &eval)?.is_true() {
                return Ok(Some(row));
            }
        }
        Ok(None)
    }

    fn next_batch(&mut self, ctx: &ExecCtx<'_>, max: usize) -> Result<Option<Batch>> {
        let eval = ctx.eval_ctx();
        // A fully-filtered input batch produces no output batch, so keep
        // pulling until some rows survive (or the input is exhausted).
        while let Some(batch) = self.input.next_batch(ctx, max)? {
            let kept = filter_rows_batch(&self.predicate, batch.rows, &eval)?;
            if !kept.is_empty() {
                return Ok(Some(Batch::new(kept)));
            }
        }
        Ok(None)
    }

    fn rescan(&mut self, ctx: &ExecCtx<'_>) -> Result<()> {
        self.input.rescan(ctx)
    }
}

// ---------------------------------------------------------------- Project

struct ProjectExec {
    input: Box<dyn Executor>,
    exprs: Vec<Expr>,
    schema: Schema,
}

impl Executor for ProjectExec {
    fn schema(&self) -> &Schema {
        &self.schema
    }

    fn next(&mut self, ctx: &ExecCtx<'_>) -> Result<Option<Row>> {
        let eval = ctx.eval_ctx();
        match self.input.next(ctx)? {
            Some(row) => {
                let mut out = Row::with_capacity(self.exprs.len());
                for e in &self.exprs {
                    out.push(e.eval(&row, &eval)?);
                }
                Ok(Some(out))
            }
            None => Ok(None),
        }
    }

    fn next_batch(&mut self, ctx: &ExecCtx<'_>, max: usize) -> Result<Option<Batch>> {
        let eval = ctx.eval_ctx();
        match self.input.next_batch(ctx, max)? {
            Some(batch) => {
                // Evaluate each projection expression over the whole batch
                // (column-at-a-time), then zip the columns back into rows.
                let refs: Vec<&[Datum]> = batch.rows.iter().map(|r| r.as_slice()).collect();
                let mut cols = Vec::with_capacity(self.exprs.len());
                for e in &self.exprs {
                    cols.push(e.eval_batch(&refs, &eval)?);
                }
                let mut out = Vec::with_capacity(batch.len());
                for i in 0..batch.len() {
                    let mut row = Row::with_capacity(cols.len());
                    for col in &mut cols {
                        row.push(std::mem::replace(&mut col[i], Datum::Null));
                    }
                    out.push(row);
                }
                Ok(Some(Batch::new(out)))
            }
            None => Ok(None),
        }
    }

    fn rescan(&mut self, ctx: &ExecCtx<'_>) -> Result<()> {
        self.input.rescan(ctx)
    }
}

// ----------------------------------------------------------------- NlJoin

struct NlJoinExec {
    outer: Box<dyn Executor>,
    inner: Box<dyn Executor>,
    predicate: Option<Expr>,
    materialize: bool,
    schema: Schema,
    outer_row: Option<Row>,
    /// Materialized inner rows (when `materialize`).
    inner_buf: Option<Vec<Row>>,
    inner_pos: usize,
    started: bool,
}

impl NlJoinExec {
    fn advance_outer(&mut self, ctx: &ExecCtx<'_>) -> Result<bool> {
        match self.outer.next(ctx)? {
            Some(row) => {
                self.outer_row = Some(row);
                if self.materialize {
                    self.inner_pos = 0;
                } else {
                    self.inner.rescan(ctx)?;
                }
                Ok(true)
            }
            None => {
                self.outer_row = None;
                Ok(false)
            }
        }
    }

    fn next_inner(&mut self, ctx: &ExecCtx<'_>) -> Result<Option<Row>> {
        if self.materialize {
            let buf = self.inner_buf.as_ref().expect("materialized at start");
            if self.inner_pos < buf.len() {
                let row = buf[self.inner_pos].clone();
                self.inner_pos += 1;
                Ok(Some(row))
            } else {
                Ok(None)
            }
        } else {
            self.inner.next(ctx)
        }
    }
}

impl Executor for NlJoinExec {
    fn schema(&self) -> &Schema {
        &self.schema
    }

    fn next(&mut self, ctx: &ExecCtx<'_>) -> Result<Option<Row>> {
        let eval = ctx.eval_ctx();
        if !self.started {
            self.started = true;
            // Materialize once; the buffer survives rescans.
            if self.materialize && self.inner_buf.is_none() {
                let mut buf = Vec::new();
                drain_input(self.inner.as_mut(), ctx, |r| {
                    buf.push(r);
                    Ok(())
                })?;
                self.inner_buf = Some(buf);
            }
            if !self.advance_outer(ctx)? {
                return Ok(None);
            }
        }
        loop {
            if self.outer_row.is_none() {
                return Ok(None);
            }
            match self.next_inner(ctx)? {
                Some(inner_row) => {
                    let outer_row = self.outer_row.as_ref().expect("checked above");
                    let mut joined = Row::with_capacity(outer_row.len() + inner_row.len());
                    joined.extend(outer_row.iter().cloned());
                    joined.extend(inner_row);
                    if let Some(p) = &self.predicate {
                        // ext_op_calls is counted inside `Expr::eval`.
                        if !p.eval(&joined, &eval)?.is_true() {
                            continue;
                        }
                    }
                    return Ok(Some(joined));
                }
                None => {
                    if !self.advance_outer(ctx)? {
                        return Ok(None);
                    }
                }
            }
        }
    }

    fn rescan(&mut self, ctx: &ExecCtx<'_>) -> Result<()> {
        self.outer.rescan(ctx)?;
        if !self.materialize {
            self.inner.rescan(ctx)?;
        }
        // The materialized buffer (if any) stays valid across rescans.
        self.started = false;
        self.outer_row = None;
        self.inner_pos = 0;
        Ok(())
    }
}

// ---------------------------------------------------------------- HashJoin

struct HashJoinExec {
    left: Box<dyn Executor>,
    right: Box<dyn Executor>,
    left_key: Expr,
    right_key: Expr,
    residual: Option<Expr>,
    schema: Schema,
    /// Build table over the RIGHT input.
    table: Option<HashMap<Datum, Vec<Row>>>,
    probe_row: Option<Row>,
    matches: Vec<Row>,
    match_pos: usize,
}

impl Executor for HashJoinExec {
    fn schema(&self) -> &Schema {
        &self.schema
    }

    fn next(&mut self, ctx: &ExecCtx<'_>) -> Result<Option<Row>> {
        let eval = ctx.eval_ctx();
        if self.table.is_none() {
            let mut table: HashMap<Datum, Vec<Row>> = HashMap::new();
            drain_input(self.right.as_mut(), ctx, |row| {
                let key = self.right_key.eval(&row, &eval)?;
                if !key.is_null() {
                    table.entry(key).or_default().push(row);
                }
                Ok(())
            })?;
            self.table = Some(table);
        }
        loop {
            if self.match_pos < self.matches.len() {
                let inner = self.matches[self.match_pos].clone();
                self.match_pos += 1;
                let outer = self.probe_row.as_ref().expect("probe row set");
                let mut joined = Row::with_capacity(outer.len() + inner.len());
                joined.extend(outer.iter().cloned());
                joined.extend(inner);
                if let Some(r) = &self.residual {
                    if !r.eval(&joined, &eval)?.is_true() {
                        continue;
                    }
                }
                return Ok(Some(joined));
            }
            match self.left.next(ctx)? {
                Some(row) => {
                    let key = self.left_key.eval(&row, &eval)?;
                    self.matches = if key.is_null() {
                        Vec::new()
                    } else {
                        self.table
                            .as_ref()
                            .expect("built above")
                            .get(&key)
                            .cloned()
                            .unwrap_or_default()
                    };
                    self.match_pos = 0;
                    self.probe_row = Some(row);
                }
                None => return Ok(None),
            }
        }
    }

    fn rescan(&mut self, ctx: &ExecCtx<'_>) -> Result<()> {
        self.left.rescan(ctx)?;
        self.probe_row = None;
        self.matches.clear();
        self.match_pos = 0;
        // Build table is kept.
        Ok(())
    }
}

// --------------------------------------------------------------- Aggregate

struct AggregateExec {
    input: Box<dyn Executor>,
    group_by: Vec<Expr>,
    aggs: Vec<crate::plan::AggExpr>,
    schema: Schema,
    output: Option<Vec<Row>>,
    pos: usize,
}

#[derive(Clone)]
struct AggState {
    count: u64,
    sum: f64,
    min: Option<Datum>,
    max: Option<Datum>,
}

impl AggState {
    fn new() -> Self {
        AggState {
            count: 0,
            sum: 0.0,
            min: None,
            max: None,
        }
    }

    fn update(&mut self, v: &Datum) {
        if v.is_null() {
            return;
        }
        self.count += 1;
        if let Some(f) = v.as_float() {
            self.sum += f;
        }
        let better_min = self
            .min
            .as_ref()
            .map(|m| v.cmp_sql(m).is_lt())
            .unwrap_or(true);
        if better_min {
            self.min = Some(v.clone());
        }
        let better_max = self
            .max
            .as_ref()
            .map(|m| v.cmp_sql(m).is_gt())
            .unwrap_or(true);
        if better_max {
            self.max = Some(v.clone());
        }
    }

    fn finish(&self, func: AggFunc, rows_in_group: u64) -> Datum {
        match func {
            AggFunc::CountStar => Datum::Int(rows_in_group as i64),
            AggFunc::Count => Datum::Int(self.count as i64),
            AggFunc::Sum => {
                if self.count == 0 {
                    Datum::Null
                } else if self.sum.fract() == 0.0 {
                    Datum::Int(self.sum as i64)
                } else {
                    Datum::Float(self.sum)
                }
            }
            AggFunc::Min => self.min.clone().unwrap_or(Datum::Null),
            AggFunc::Max => self.max.clone().unwrap_or(Datum::Null),
            AggFunc::Avg => {
                if self.count == 0 {
                    Datum::Null
                } else {
                    Datum::Float(self.sum / self.count as f64)
                }
            }
        }
    }
}

impl Executor for AggregateExec {
    fn schema(&self) -> &Schema {
        &self.schema
    }

    fn next(&mut self, ctx: &ExecCtx<'_>) -> Result<Option<Row>> {
        if self.output.is_none() {
            let eval = ctx.eval_ctx();
            // group key -> (row count, one state per aggregate)
            let mut groups: HashMap<Vec<Datum>, (u64, Vec<AggState>)> = HashMap::new();
            let mut order: Vec<Vec<Datum>> = Vec::new();
            let group_by = &self.group_by;
            let aggs = &self.aggs;
            drain_input(self.input.as_mut(), ctx, |row| {
                let mut key = Vec::with_capacity(group_by.len());
                for g in group_by {
                    key.push(g.eval(&row, &eval)?);
                }
                let entry = groups.entry(key.clone()).or_insert_with(|| {
                    order.push(key);
                    (0, vec![AggState::new(); aggs.len()])
                });
                entry.0 += 1;
                for (agg, state) in aggs.iter().zip(entry.1.iter_mut()) {
                    if let Some(input) = &agg.input {
                        let v = input.eval(&row, &eval)?;
                        state.update(&v);
                    }
                }
                Ok(())
            })?;
            // Global aggregate over empty input still yields one row.
            if groups.is_empty() && self.group_by.is_empty() {
                order.push(Vec::new());
                groups.insert(Vec::new(), (0, vec![AggState::new(); self.aggs.len()]));
            }
            let mut out = Vec::with_capacity(order.len());
            for key in order {
                let (n, states) = &groups[&key];
                let mut row: Row = key.clone();
                for (agg, state) in self.aggs.iter().zip(states) {
                    row.push(state.finish(agg.func, *n));
                }
                out.push(row);
            }
            self.output = Some(out);
            self.pos = 0;
        }
        let out = self.output.as_ref().expect("computed above");
        if self.pos < out.len() {
            let row = out[self.pos].clone();
            self.pos += 1;
            Ok(Some(row))
        } else {
            Ok(None)
        }
    }

    fn rescan(&mut self, _ctx: &ExecCtx<'_>) -> Result<()> {
        self.pos = 0;
        Ok(())
    }
}

// ------------------------------------------------------------------- Sort

struct SortExec {
    input: Box<dyn Executor>,
    keys: Vec<(Expr, bool)>,
    buffered: Option<Vec<Row>>,
    pos: usize,
}

impl Executor for SortExec {
    fn schema(&self) -> &Schema {
        self.input.schema()
    }

    fn next(&mut self, ctx: &ExecCtx<'_>) -> Result<Option<Row>> {
        if self.buffered.is_none() {
            let eval = ctx.eval_ctx();
            let mut rows = Vec::new();
            drain_input(self.input.as_mut(), ctx, |r| {
                rows.push(r);
                Ok(())
            })?;
            // Precompute sort keys (decorate-sort-undecorate).
            let mut decorated: Vec<(Vec<Datum>, Row)> = Vec::with_capacity(rows.len());
            for row in rows {
                let mut ks = Vec::with_capacity(self.keys.len());
                for (e, _) in &self.keys {
                    ks.push(e.eval(&row, &eval)?);
                }
                decorated.push((ks, row));
            }
            let dirs: Vec<bool> = self.keys.iter().map(|(_, asc)| *asc).collect();
            // Extension keys sort through their registered comparator (for
            // UniText that is text-component order, §3.2.1 of the paper).
            let cmp_typed = |x: &Datum, y: &Datum| match (x, y) {
                (Datum::Ext { ty: t1, bytes: b1 }, Datum::Ext { ty: t2, bytes: b2 })
                    if t1 == t2 =>
                {
                    match ctx.catalog.type_by_id(*t1) {
                        Some(def) => (def.compare)(b1, b2),
                        None => x.cmp_sql(y),
                    }
                }
                _ => x.cmp_sql(y),
            };
            decorated.sort_by(|(a, _), (b, _)| {
                for ((x, y), asc) in a.iter().zip(b.iter()).zip(&dirs) {
                    let ord = cmp_typed(x, y);
                    if ord != std::cmp::Ordering::Equal {
                        return if *asc { ord } else { ord.reverse() };
                    }
                }
                std::cmp::Ordering::Equal
            });
            self.buffered = Some(decorated.into_iter().map(|(_, r)| r).collect());
            self.pos = 0;
        }
        let buf = self.buffered.as_ref().expect("sorted above");
        if self.pos < buf.len() {
            let row = buf[self.pos].clone();
            self.pos += 1;
            Ok(Some(row))
        } else {
            Ok(None)
        }
    }

    fn rescan(&mut self, _ctx: &ExecCtx<'_>) -> Result<()> {
        self.pos = 0;
        Ok(())
    }
}

// ------------------------------------------------------------------ Limit

struct LimitExec {
    input: Box<dyn Executor>,
    remaining: u64,
}

impl Executor for LimitExec {
    fn schema(&self) -> &Schema {
        self.input.schema()
    }

    fn next(&mut self, ctx: &ExecCtx<'_>) -> Result<Option<Row>> {
        if self.remaining == 0 {
            return Ok(None);
        }
        match self.input.next(ctx)? {
            Some(r) => {
                self.remaining -= 1;
                Ok(Some(r))
            }
            None => Ok(None),
        }
    }

    fn next_batch(&mut self, ctx: &ExecCtx<'_>, max: usize) -> Result<Option<Batch>> {
        if self.remaining == 0 {
            return Ok(None);
        }
        // Never ask the input for more rows than the limit still allows;
        // batches are capped at `max`, so the input cannot overshoot.
        let cap = (self.remaining as usize).min(max.max(1));
        match self.input.next_batch(ctx, cap)? {
            Some(batch) => {
                self.remaining -= batch.len() as u64;
                Ok(Some(batch))
            }
            None => Ok(None),
        }
    }

    fn rescan(&mut self, ctx: &ExecCtx<'_>) -> Result<()> {
        self.input.rescan(ctx)
    }
}

// ----------------------------------------------------------------- Values

struct ValuesExec {
    rows: Vec<Vec<Expr>>,
    schema: Schema,
    pos: usize,
}

impl Executor for ValuesExec {
    fn schema(&self) -> &Schema {
        &self.schema
    }

    fn next(&mut self, ctx: &ExecCtx<'_>) -> Result<Option<Row>> {
        if self.pos >= self.rows.len() {
            return Ok(None);
        }
        let eval = ctx.eval_ctx();
        let exprs = &self.rows[self.pos];
        self.pos += 1;
        let mut row = Row::with_capacity(exprs.len());
        for e in exprs {
            row.push(e.eval(&[], &eval)?);
        }
        Ok(Some(row))
    }

    fn rescan(&mut self, _ctx: &ExecCtx<'_>) -> Result<()> {
        self.pos = 0;
        Ok(())
    }
}
