//! The engine-wide worker pool behind morsel-driven parallel scans.
//!
//! One [`ExecPool`] lives inside each `Engine` and is shared by every
//! session.  Workers are plain OS threads blocked on an mpmc channel of
//! erased tasks; they are spawned lazily (the first parallel plan pays
//! the spawn cost, serial workloads never start a thread) and grow up to
//! the largest `parallel_workers` value any session has requested, capped
//! at [`ExecPool::MAX_WORKERS`].
//!
//! ## Safety contract
//!
//! Tasks are `'static`, but parallel scans hand workers references into
//! the running query (catalog guard, session vars, buffer pool) through a
//! lifetime-erased wrapper.  That is sound because every dispatching
//! executor *blocks until its outstanding task count reaches zero* before
//! its borrows expire (see `ParallelSeqScanExec::shutdown` in
//! `exec/mod.rs`) — the pool itself only guarantees that a submitted task
//! runs exactly once and that worker panics are contained to the task
//! (`catch_unwind`), never taking a worker thread down.
//!
//! ## Lock-hierarchy position
//!
//! Pool internals (the channel mutex/condvar and the spawn mutex) sit
//! *below* the five engine lock levels: workers never take the catalog
//! guard, the DML lock, or any index guard — everything they need is
//! passed in by the dispatching query thread, which already holds the
//! right guards.  A worker that re-acquired `Engine::catalog` could
//! deadlock behind a queued DDL writer while the query thread waits on
//! the worker, so the rule is absolute.

use parking_lot::Mutex;
use std::panic::{self, AssertUnwindSafe};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::thread;

type Task = Box<dyn FnOnce() + Send + 'static>;

/// Shared pool of executor worker threads (see module docs).
pub struct ExecPool {
    tx: crossbeam::channel::Sender<Task>,
    /// Kept only so workers can block on `recv`; the pool never receives.
    rx: crossbeam::channel::Receiver<Task>,
    /// Worker threads spawned so far (detached; they exit on disconnect).
    spawned: AtomicUsize,
    /// Serializes spawning so `ensure_workers` can't over-spawn.
    spawn_lock: Mutex<()>,
}

impl ExecPool {
    /// Hard ceiling on pool size, independent of `parallel_workers`.
    pub const MAX_WORKERS: usize = 64;

    pub fn new() -> ExecPool {
        let (tx, rx) = crossbeam::channel::unbounded();
        ExecPool {
            tx,
            rx,
            spawned: AtomicUsize::new(0),
            spawn_lock: Mutex::new(()),
        }
    }

    /// Default worker count for sessions that never `SET parallel_workers`:
    /// the `MLQL_PARALLEL_WORKERS` environment variable if set (CI pins it
    /// to surface scheduling-dependent flakes), else the machine's CPU
    /// parallelism.
    pub fn default_workers() -> usize {
        if let Ok(v) = std::env::var("MLQL_PARALLEL_WORKERS") {
            if let Ok(n) = v.trim().parse::<usize>() {
                return n.clamp(1, Self::MAX_WORKERS);
            }
        }
        thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1)
            .min(Self::MAX_WORKERS)
    }

    /// Make sure at least `n` workers exist (lazy spawn, capped).
    pub fn ensure_workers(&self, n: usize) {
        let n = n.min(Self::MAX_WORKERS);
        if self.spawned.load(Ordering::Acquire) >= n {
            return;
        }
        let _guard = self.spawn_lock.lock();
        let have = self.spawned.load(Ordering::Acquire);
        for i in have..n {
            let rx = self.rx.clone();
            thread::Builder::new()
                .name(format!("mlql-exec-{i}"))
                .spawn(move || {
                    while let Ok(task) = rx.recv() {
                        // A panicking task must not kill the worker: the
                        // dispatcher observes the failure through its own
                        // completion accounting, and the thread lives on
                        // to serve other queries.
                        let _ = panic::catch_unwind(AssertUnwindSafe(task));
                    }
                })
                .expect("spawn executor worker");
        }
        self.spawned.store(n.max(have), Ordering::Release);
    }

    /// Number of worker threads currently alive.
    pub fn workers(&self) -> usize {
        self.spawned.load(Ordering::Acquire)
    }

    /// Submit a task; it runs exactly once on some worker.  The caller is
    /// responsible for its own completion accounting (the pool does not
    /// join individual tasks).
    pub fn submit(&self, task: Task) {
        // Unbounded channel: never blocks.  Send can only fail if every
        // receiver is gone, which cannot happen while `self.rx` is alive.
        let _ = self.tx.send(task);
    }
}

impl Default for ExecPool {
    fn default() -> Self {
        ExecPool::new()
    }
}

/// Scoped batch execution for access methods (M-tree subtree probes): run
/// every borrowed task on the pool and block until all finish, which is
/// what makes the borrows sound — no task can outlive this call.
impl crate::index::TaskRunner for ExecPool {
    fn run_all(&self, tasks: Vec<Box<dyn FnOnce() + Send + '_>>) {
        if tasks.is_empty() {
            return;
        }
        // At least one worker must exist or the blocking wait below never
        // ends; dispatchers normally size the pool beforehand.
        self.ensure_workers(1);
        let done = std::sync::Arc::new((
            std::sync::Mutex::new(tasks.len()),
            std::sync::Condvar::new(),
        ));
        for task in tasks {
            // SAFETY: the non-'static borrow is erased so the task fits
            // the pool's channel.  Sound because this function does not
            // return until the completion counter hits zero, and the
            // decrement lives in a drop guard that fires even if the task
            // panics (the worker `catch_unwind`s it) — so every borrow is
            // dead before the caller's frame can unwind.
            let task: Box<dyn FnOnce() + Send + 'static> = unsafe { std::mem::transmute(task) };
            let done = std::sync::Arc::clone(&done);
            self.submit(Box::new(move || {
                struct Finish(std::sync::Arc<(std::sync::Mutex<usize>, std::sync::Condvar)>);
                impl Drop for Finish {
                    fn drop(&mut self) {
                        let mut left = match self.0 .0.lock() {
                            Ok(g) => g,
                            Err(p) => p.into_inner(),
                        };
                        *left -= 1;
                        if *left == 0 {
                            self.0 .1.notify_all();
                        }
                    }
                }
                let _finish = Finish(done);
                task();
            }));
        }
        let (lock, cvar) = &*done;
        let mut left = lock.lock().unwrap_or_else(|p| p.into_inner());
        while *left > 0 {
            left = cvar.wait(left).unwrap_or_else(|p| p.into_inner());
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicU64;
    use std::sync::{Arc, Condvar, Mutex as StdMutex};

    /// Block until `remaining` dispatched tasks have finished.
    fn wait_done(done: &(StdMutex<usize>, Condvar)) {
        let mut left = done.0.lock().unwrap();
        while *left > 0 {
            left = done.1.wait(left).unwrap();
        }
    }

    #[test]
    fn tasks_run_exactly_once_each() {
        let pool = ExecPool::new();
        pool.ensure_workers(3);
        let count = Arc::new(AtomicU64::new(0));
        let done = Arc::new((StdMutex::new(100usize), Condvar::new()));
        for _ in 0..100 {
            let count = Arc::clone(&count);
            let done = Arc::clone(&done);
            pool.submit(Box::new(move || {
                count.fetch_add(1, Ordering::Relaxed);
                *done.0.lock().unwrap() -= 1;
                done.1.notify_all();
            }));
        }
        wait_done(&done);
        assert_eq!(count.load(Ordering::Relaxed), 100);
    }

    #[test]
    fn panicking_task_does_not_kill_the_worker() {
        let pool = ExecPool::new();
        pool.ensure_workers(1);
        let done = Arc::new((StdMutex::new(1usize), Condvar::new()));
        pool.submit(Box::new(|| panic!("task panic must be contained")));
        let done2 = Arc::clone(&done);
        pool.submit(Box::new(move || {
            *done2.0.lock().unwrap() -= 1;
            done2.1.notify_all();
        }));
        // The second task only runs if the single worker survived the
        // first task's panic.
        wait_done(&done);
    }

    #[test]
    fn run_all_joins_borrowed_tasks_before_returning() {
        use crate::index::TaskRunner;
        let pool = ExecPool::new();
        pool.ensure_workers(4);
        let results = StdMutex::new(Vec::new());
        let tasks: Vec<Box<dyn FnOnce() + Send + '_>> = (0..32)
            .map(|i| {
                let results = &results;
                Box::new(move || results.lock().unwrap().push(i)) as Box<dyn FnOnce() + Send + '_>
            })
            .collect();
        pool.run_all(tasks);
        // run_all has returned, so every borrow of `results` is dead and
        // all 32 pushes must be visible.
        let mut got = results.into_inner().unwrap();
        got.sort();
        assert_eq!(got, (0..32).collect::<Vec<_>>());
    }

    #[test]
    fn run_all_survives_a_panicking_task() {
        use crate::index::TaskRunner;
        let pool = ExecPool::new();
        pool.ensure_workers(2);
        let count = AtomicU64::new(0);
        let tasks: Vec<Box<dyn FnOnce() + Send + '_>> = (0..8)
            .map(|i| {
                let count = &count;
                Box::new(move || {
                    if i == 3 {
                        panic!("contained");
                    }
                    count.fetch_add(1, Ordering::Relaxed);
                }) as Box<dyn FnOnce() + Send + '_>
            })
            .collect();
        pool.run_all(tasks); // must not hang or propagate the panic
        assert_eq!(count.load(Ordering::Relaxed), 7);
    }

    #[test]
    fn ensure_workers_is_monotonic_and_capped() {
        let pool = ExecPool::new();
        pool.ensure_workers(2);
        assert_eq!(pool.workers(), 2);
        pool.ensure_workers(1);
        assert_eq!(pool.workers(), 2, "never shrinks");
        pool.ensure_workers(ExecPool::MAX_WORKERS + 10);
        assert_eq!(pool.workers(), ExecPool::MAX_WORKERS);
    }
}
