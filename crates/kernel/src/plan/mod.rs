//! Logical and physical query plans.

use crate::expr::Expr;
use crate::schema::Schema;
use crate::value::Datum;
use std::fmt::Write as _;

/// Aggregate functions.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AggFunc {
    /// `count(*)`.
    CountStar,
    /// `count(expr)` (non-null count).
    Count,
    /// `sum(expr)`.
    Sum,
    /// `min(expr)`.
    Min,
    /// `max(expr)`.
    Max,
    /// `avg(expr)`.
    Avg,
}

impl AggFunc {
    /// SQL spelling.
    pub fn name(self) -> &'static str {
        match self {
            AggFunc::CountStar => "count(*)",
            AggFunc::Count => "count",
            AggFunc::Sum => "sum",
            AggFunc::Min => "min",
            AggFunc::Max => "max",
            AggFunc::Avg => "avg",
        }
    }
}

/// One aggregate in a SELECT list.
#[derive(Debug, Clone)]
pub struct AggExpr {
    /// The function.
    pub func: AggFunc,
    /// Input expression (`None` for `count(*)`).
    pub input: Option<Expr>,
}

/// Logical plan (binder output, optimizer input).
#[derive(Debug, Clone)]
pub enum LogicalPlan {
    /// Full-table scan producing all columns.
    Scan { table: String, schema: Schema },
    /// σ.
    Filter {
        input: Box<LogicalPlan>,
        predicate: Expr,
    },
    /// π (generalized: arbitrary expressions).
    Project {
        input: Box<LogicalPlan>,
        exprs: Vec<Expr>,
        schema: Schema,
    },
    /// Inner join; predicate over the concatenated schema (left then right).
    Join {
        left: Box<LogicalPlan>,
        right: Box<LogicalPlan>,
        predicate: Option<Expr>,
    },
    /// γ.
    Aggregate {
        input: Box<LogicalPlan>,
        group_by: Vec<Expr>,
        aggs: Vec<AggExpr>,
        schema: Schema,
    },
    /// ORDER BY.
    Sort {
        input: Box<LogicalPlan>,
        keys: Vec<(Expr, bool)>,
    },
    /// LIMIT.
    Limit { input: Box<LogicalPlan>, n: u64 },
    /// Literal rows.
    Values {
        rows: Vec<Vec<Expr>>,
        schema: Schema,
    },
}

impl LogicalPlan {
    /// Output schema.
    pub fn schema(&self) -> Schema {
        match self {
            LogicalPlan::Scan { schema, .. } => schema.clone(),
            LogicalPlan::Filter { input, .. } => input.schema(),
            LogicalPlan::Project { schema, .. } => schema.clone(),
            LogicalPlan::Join { left, right, .. } => left.schema().join(&right.schema()),
            LogicalPlan::Aggregate { schema, .. } => schema.clone(),
            LogicalPlan::Sort { input, .. } => input.schema(),
            LogicalPlan::Limit { input, .. } => input.schema(),
            LogicalPlan::Values { schema, .. } => schema.clone(),
        }
    }
}

/// Physical plan node with cost annotations.
#[derive(Debug, Clone)]
pub struct PhysNode {
    /// The operator.
    pub op: PhysOp,
    /// Estimated output rows.
    pub est_rows: f64,
    /// Estimated total cost (start-to-finish, optimizer units).
    pub est_cost: f64,
    /// Output schema.
    pub schema: Schema,
}

/// Physical operators.
#[derive(Debug, Clone)]
pub enum PhysOp {
    /// Sequential heap scan with optional pushed-down filter.
    /// `annotation` carries an operator-supplied strategy note (e.g. the
    /// Ω containment implementation) surfaced verbatim by EXPLAIN.
    SeqScan {
        table: String,
        filter: Option<Expr>,
        annotation: Option<String>,
    },
    /// Morsel-driven parallel heap scan: `workers` threads claim
    /// fixed-size page ranges, evaluate `filter` independently, and a
    /// gather node merges their batches (order-insensitive).
    ParallelSeqScan {
        table: String,
        filter: Option<Expr>,
        workers: usize,
        annotation: Option<String>,
    },
    /// Index scan: probe `index` with `strategy`, re-check `residual`.
    IndexScan {
        table: String,
        index: String,
        strategy: String,
        probe: Datum,
        extra: Datum,
        residual: Option<Expr>,
    },
    /// σ.
    Filter {
        input: Box<PhysNode>,
        predicate: Expr,
    },
    /// π.
    Project {
        input: Box<PhysNode>,
        exprs: Vec<Expr>,
    },
    /// Nested-loops join (inner side optionally materialized).
    NlJoin {
        outer: Box<PhysNode>,
        inner: Box<PhysNode>,
        predicate: Option<Expr>,
        materialize_inner: bool,
    },
    /// Hash join on a single equi-key pair; `residual` re-checked on matches.
    HashJoin {
        left: Box<PhysNode>,
        right: Box<PhysNode>,
        left_key: Expr,
        right_key: Expr,
        residual: Option<Expr>,
    },
    /// γ.
    Aggregate {
        input: Box<PhysNode>,
        group_by: Vec<Expr>,
        aggs: Vec<AggExpr>,
    },
    /// ORDER BY.
    Sort {
        input: Box<PhysNode>,
        keys: Vec<(Expr, bool)>,
    },
    /// LIMIT.
    Limit { input: Box<PhysNode>, n: u64 },
    /// VALUES.
    Values { rows: Vec<Vec<Expr>> },
}

/// Measured runtime actuals for one plan node (`EXPLAIN ANALYZE`).
///
/// Produced by `exec::build_instrumented`; figures are inclusive of the
/// node's children (PostgreSQL `ANALYZE, BUFFERS` convention).
#[derive(Debug, Clone, Copy, Default)]
pub struct NodeActuals {
    /// Rows the node produced across all loops.
    pub rows: u64,
    /// Batches the node produced across all loops (0 when the node was
    /// driven row-at-a-time, e.g. under `SET enable_batch = 0`).
    pub batches: u64,
    /// Times the node was started (1 + pulled rescans).
    pub loops: u64,
    /// Wall-clock time in the node's subtree.
    pub time: std::time::Duration,
    /// Buffer-pool page requests in the subtree.
    pub pages: u64,
    /// Buffer-pool misses in the subtree.
    pub pages_read: u64,
    /// Index nodes visited in the subtree.
    pub index_node_visits: u64,
    /// Extension-operator evaluations in the subtree.
    pub ext_op_calls: u64,
}

impl PhysNode {
    /// Render an `EXPLAIN` tree.
    pub fn explain(&self) -> String {
        let mut out = String::new();
        self.explain_into(&mut out, 0);
        out
    }

    /// Render an `EXPLAIN ANALYZE` tree: each node line is followed by
    /// its measured actuals — including the per-node q-error of the row
    /// estimate, with a `[MISESTIMATE]` marker when it exceeds
    /// `qerror_warn` (the `SET qerror_warn` session threshold).
    /// `actuals` must be in the same pre-order as `explain` lines (as
    /// produced by `exec::build_instrumented`).
    pub fn explain_with_actuals(&self, actuals: &[NodeActuals], qerror_warn: f64) -> String {
        let mut out = String::new();
        let mut idx = 0;
        self.explain_actuals_into(&mut out, 0, actuals, &mut idx, qerror_warn);
        out
    }

    fn explain_actuals_into(
        &self,
        out: &mut String,
        depth: usize,
        actuals: &[NodeActuals],
        idx: &mut usize,
        qerror_warn: f64,
    ) {
        let pad = "  ".repeat(depth);
        let a = actuals.get(*idx).copied().unwrap_or_default();
        *idx += 1;
        // q-error compares the per-loop estimate against the measured
        // per-loop rows (actuals accumulate across rescans).
        let per_loop = a.rows as f64 / a.loops.max(1) as f64;
        let q = crate::obs::planstore::q_error(self.est_rows, per_loop);
        let marker = if q > qerror_warn {
            " [MISESTIMATE]"
        } else {
            ""
        };
        let _ = writeln!(
            out,
            "{pad}{}  (cost={:.2} rows={}) (actual rows={} batches={} loops={} time={:.3}ms pages={} q={:.1}){marker}",
            self.op_line(),
            self.est_cost,
            fmt_est_rows(self.est_rows),
            a.rows,
            a.batches,
            a.loops,
            a.time.as_secs_f64() * 1e3,
            a.pages,
            q,
        );
        match &self.op {
            PhysOp::Filter { input, .. }
            | PhysOp::Project { input, .. }
            | PhysOp::Aggregate { input, .. }
            | PhysOp::Sort { input, .. }
            | PhysOp::Limit { input, .. } => {
                input.explain_actuals_into(out, depth + 1, actuals, idx, qerror_warn)
            }
            PhysOp::NlJoin { outer, inner, .. } => {
                outer.explain_actuals_into(out, depth + 1, actuals, idx, qerror_warn);
                inner.explain_actuals_into(out, depth + 1, actuals, idx, qerror_warn);
            }
            PhysOp::HashJoin { left, right, .. } => {
                left.explain_actuals_into(out, depth + 1, actuals, idx, qerror_warn);
                right.explain_actuals_into(out, depth + 1, actuals, idx, qerror_warn);
            }
            PhysOp::SeqScan { .. }
            | PhysOp::ParallelSeqScan { .. }
            | PhysOp::IndexScan { .. }
            | PhysOp::Values { .. } => {}
        }
    }

    fn explain_into(&self, out: &mut String, depth: usize) {
        let pad = "  ".repeat(depth);
        let line = self.op_line();
        let _ = writeln!(
            out,
            "{pad}{line}  (cost={:.2} rows={})",
            self.est_cost,
            fmt_est_rows(self.est_rows)
        );
        match &self.op {
            PhysOp::Filter { input, .. }
            | PhysOp::Project { input, .. }
            | PhysOp::Aggregate { input, .. }
            | PhysOp::Sort { input, .. }
            | PhysOp::Limit { input, .. } => input.explain_into(out, depth + 1),
            PhysOp::NlJoin { outer, inner, .. } => {
                outer.explain_into(out, depth + 1);
                inner.explain_into(out, depth + 1);
            }
            PhysOp::HashJoin { left, right, .. } => {
                left.explain_into(out, depth + 1);
                right.explain_into(out, depth + 1);
            }
            PhysOp::SeqScan { .. }
            | PhysOp::ParallelSeqScan { .. }
            | PhysOp::IndexScan { .. }
            | PhysOp::Values { .. } => {}
        }
    }

    /// The node's direct children, in the same order `explain` and
    /// `exec::build_instrumented` visit them (pre-order).
    pub fn children(&self) -> Vec<&PhysNode> {
        match &self.op {
            PhysOp::Filter { input, .. }
            | PhysOp::Project { input, .. }
            | PhysOp::Aggregate { input, .. }
            | PhysOp::Sort { input, .. }
            | PhysOp::Limit { input, .. } => vec![input],
            PhysOp::NlJoin { outer, inner, .. } => vec![outer, inner],
            PhysOp::HashJoin { left, right, .. } => vec![left, right],
            PhysOp::SeqScan { .. }
            | PhysOp::ParallelSeqScan { .. }
            | PhysOp::IndexScan { .. }
            | PhysOp::Values { .. } => vec![],
        }
    }

    /// Short operator name for span trees and digests — the `EXPLAIN`
    /// line head without predicates or cost annotations.
    pub fn op_name(&self) -> String {
        match &self.op {
            PhysOp::SeqScan { table, .. } => format!("Seq Scan on {table}"),
            PhysOp::ParallelSeqScan { table, workers, .. } => {
                format!("Parallel Seq Scan on {table} (workers={workers})")
            }
            PhysOp::IndexScan { table, index, .. } => {
                format!("Index Scan using {index} on {table}")
            }
            PhysOp::Filter { .. } => "Filter".to_string(),
            PhysOp::Project { .. } => "Project".to_string(),
            PhysOp::NlJoin { .. } => "Nested Loop".to_string(),
            PhysOp::HashJoin { .. } => "Hash Join".to_string(),
            PhysOp::Aggregate { group_by, .. } => {
                if group_by.is_empty() {
                    "Aggregate".to_string()
                } else {
                    "GroupAggregate".to_string()
                }
            }
            PhysOp::Sort { .. } => "Sort".to_string(),
            PhysOp::Limit { .. } => "Limit".to_string(),
            PhysOp::Values { .. } => "Values".to_string(),
        }
    }

    /// Stable FNV-1a digest of the physical plan: operator lines
    /// (including tables, predicates, worker counts) folded in pre-order
    /// with explicit subtree delimiters, so two plans collide only if
    /// they render identically.  Cost/row estimates are excluded — the
    /// digest identifies a plan *shape* across runs and `ANALYZE`s.
    pub fn digest(&self) -> u64 {
        let mut h = 0xcbf2_9ce4_8422_2325u64; // FNV offset basis
        self.digest_into(&mut h);
        h
    }

    fn digest_into(&self, h: &mut u64) {
        fnv1a(h, self.op_line().as_bytes());
        fnv1a(h, b"(");
        for c in self.children() {
            c.digest_into(h);
        }
        fnv1a(h, b")");
    }

    /// Every node of the subtree in pre-order (the order `explain`,
    /// `digest` and `exec::build_instrumented` all use).
    pub fn preorder(&self) -> Vec<&PhysNode> {
        let mut v = Vec::new();
        self.preorder_into(&mut v);
        v
    }

    fn preorder_into<'a>(&'a self, out: &mut Vec<&'a PhysNode>) {
        out.push(self);
        for c in self.children() {
            c.preorder_into(out);
        }
    }

    /// If this node is a scan, the `(table, operator-class)` its row
    /// estimate should be attributed to: ψ/Ω when the pushed predicate
    /// (or index strategy) evaluates LexEQUAL/SemEQUAL, otherwise the
    /// plain scan class.
    pub fn leaf_scan_class(&self) -> Option<(String, crate::obs::planstore::OpClass)> {
        use crate::obs::planstore::OpClass;
        match &self.op {
            PhysOp::SeqScan { table, filter, .. }
            | PhysOp::ParallelSeqScan { table, filter, .. } => {
                let class = match filter {
                    Some(f) if f.contains_ext_op("lexequal") => OpClass::Psi,
                    Some(f) if f.contains_ext_op("semequal") => OpClass::Omega,
                    _ => OpClass::SeqScan,
                };
                Some((table.clone(), class))
            }
            PhysOp::IndexScan {
                table,
                strategy,
                residual,
                ..
            } => {
                let has = |name: &str| residual.as_ref().is_some_and(|r| r.contains_ext_op(name));
                // The M-Tree `within` strategy is the ψ proximity probe
                // (LexEQUAL's registered access path).
                let class = if strategy.eq_ignore_ascii_case("within") || has("lexequal") {
                    crate::obs::planstore::OpClass::Psi
                } else if has("semequal") {
                    crate::obs::planstore::OpClass::Omega
                } else {
                    crate::obs::planstore::OpClass::IndexScan
                };
                Some((table.clone(), class))
            }
            _ => None,
        }
    }

    /// Attribute the *root* estimate of an uninstrumented execution to a
    /// scanned table: descend through operators whose output cardinality
    /// is the scan's post-predicate cardinality (Project/Sort preserve
    /// counts; a Filter's root estimate *is* the per-table selectivity
    /// estimate under test).  Aggregates, limits, joins and VALUES break
    /// the attribution, so plans containing them return `None` — their
    /// scans are only attributed when per-node actuals exist.
    pub fn scan_attribution(&self) -> Option<(String, crate::obs::planstore::OpClass)> {
        match &self.op {
            PhysOp::Project { input, .. }
            | PhysOp::Sort { input, .. }
            | PhysOp::Filter { input, .. } => input.scan_attribution(),
            PhysOp::SeqScan { .. } | PhysOp::ParallelSeqScan { .. } | PhysOp::IndexScan { .. } => {
                self.leaf_scan_class()
            }
            PhysOp::NlJoin { .. }
            | PhysOp::HashJoin { .. }
            | PhysOp::Aggregate { .. }
            | PhysOp::Limit { .. }
            | PhysOp::Values { .. } => None,
        }
    }

    /// Build a trace span tree mirroring the plan shape from the
    /// pre-order `actuals` produced by `exec::build_instrumented`
    /// (node times are inclusive of children, like the printed tree).
    pub fn span_tree(&self, actuals: &[NodeActuals]) -> crate::obs::Span {
        let mut idx = 0;
        self.span_tree_inner(actuals, &mut idx)
    }

    fn span_tree_inner(&self, actuals: &[NodeActuals], idx: &mut usize) -> crate::obs::Span {
        let a = actuals.get(*idx).copied().unwrap_or_default();
        *idx += 1;
        let children = self
            .children()
            .into_iter()
            .map(|c| c.span_tree_inner(actuals, idx))
            .collect();
        crate::obs::Span::with_children(self.op_name(), a.time, children)
    }

    /// The operator description for one `EXPLAIN` line.
    fn op_line(&self) -> String {
        match &self.op {
            PhysOp::SeqScan {
                table,
                filter,
                annotation,
            } => {
                let mut s = match filter {
                    Some(f) => format!("Seq Scan on {table}  Filter: {f}"),
                    None => format!("Seq Scan on {table}"),
                };
                if let Some(a) = annotation {
                    let _ = write!(s, "  Containment: {a}");
                }
                s
            }
            PhysOp::ParallelSeqScan {
                table,
                filter,
                workers,
                annotation,
            } => {
                let mut s = match filter {
                    Some(f) => {
                        format!("Parallel Seq Scan on {table}  (workers={workers})  Filter: {f}")
                    }
                    None => format!("Parallel Seq Scan on {table}  (workers={workers})"),
                };
                if let Some(a) = annotation {
                    let _ = write!(s, "  Containment: {a}");
                }
                s
            }
            PhysOp::IndexScan {
                table,
                index,
                strategy,
                residual,
                ..
            } => {
                let mut s = format!("Index Scan using {index} on {table}  Strategy: {strategy}");
                if let Some(r) = residual {
                    let _ = write!(s, "  Recheck: {r}");
                }
                s
            }
            PhysOp::Filter { predicate, .. } => format!("Filter: {predicate}"),
            PhysOp::Project { exprs, .. } => {
                let cols: Vec<String> = exprs.iter().map(|e| e.to_string()).collect();
                format!("Project: {}", cols.join(", "))
            }
            PhysOp::NlJoin {
                predicate,
                materialize_inner,
                ..
            } => {
                let mat = if *materialize_inner {
                    " (materialized inner)"
                } else {
                    ""
                };
                match predicate {
                    Some(p) => format!("Nested Loop{mat}  Join Filter: {p}"),
                    None => format!("Nested Loop{mat}"),
                }
            }
            PhysOp::HashJoin {
                left_key,
                right_key,
                residual,
                ..
            } => {
                let mut s = format!("Hash Join  Cond: ({left_key} = {right_key})");
                if let Some(r) = residual {
                    let _ = write!(s, "  Filter: {r}");
                }
                s
            }
            PhysOp::Aggregate { aggs, group_by, .. } => {
                let names: Vec<&str> = aggs.iter().map(|a| a.func.name()).collect();
                if group_by.is_empty() {
                    format!("Aggregate: {}", names.join(", "))
                } else {
                    format!("GroupAggregate: {}", names.join(", "))
                }
            }
            PhysOp::Sort { keys, .. } => {
                let ks: Vec<String> = keys
                    .iter()
                    .map(|(e, asc)| format!("{e} {}", if *asc { "ASC" } else { "DESC" }))
                    .collect();
                format!("Sort: {}", ks.join(", "))
            }
            PhysOp::Limit { n, .. } => format!("Limit: {n}"),
            PhysOp::Values { rows } => format!("Values: {} rows", rows.len()),
        }
    }
}

/// Render a row estimate for EXPLAIN: whole numbers keep the classic
/// integral form, fractional estimates print one decimal, and sub-one
/// estimates print `<1` instead of truncating to a misleading `rows=0`
/// (selectivity math routinely produces 0.3-row estimates).
fn fmt_est_rows(est: f64) -> String {
    if !est.is_finite() {
        return format!("{est}");
    }
    if est > 0.0 && est < 1.0 {
        "<1".to_string()
    } else if (est - est.round()).abs() < 1e-9 {
        format!("{est:.0}")
    } else {
        format!("{est:.1}")
    }
}

/// Fold `bytes` into the running FNV-1a hash `h`.
fn fnv1a(h: &mut u64, bytes: &[u8]) {
    for &b in bytes {
        *h ^= b as u64;
        *h = h.wrapping_mul(0x100_0000_01b3);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::Column;
    use crate::value::DataType;

    fn scan_schema() -> Schema {
        Schema::new(vec![Column::new("id", DataType::Int)])
    }

    #[test]
    fn logical_schema_propagation() {
        let scan = LogicalPlan::Scan {
            table: "t".into(),
            schema: scan_schema(),
        };
        let join = LogicalPlan::Join {
            left: Box::new(scan.clone()),
            right: Box::new(scan.clone()),
            predicate: None,
        };
        assert_eq!(join.schema().len(), 2);
        let filter = LogicalPlan::Filter {
            input: Box::new(scan),
            predicate: Expr::Literal(Datum::Bool(true)),
        };
        assert_eq!(filter.schema().len(), 1);
    }

    #[test]
    fn explain_renders_tree() {
        let leaf = PhysNode {
            op: PhysOp::SeqScan {
                table: "book".into(),
                filter: None,
                annotation: None,
            },
            est_rows: 100.0,
            est_cost: 12.5,
            schema: scan_schema(),
        };
        let agg = PhysNode {
            op: PhysOp::Aggregate {
                input: Box::new(leaf),
                group_by: vec![],
                aggs: vec![AggExpr {
                    func: AggFunc::CountStar,
                    input: None,
                }],
            },
            est_rows: 1.0,
            est_cost: 13.0,
            schema: Schema::new(vec![Column::new("count", DataType::Int)]),
        };
        let text = agg.explain();
        assert!(text.contains("Aggregate: count(*)"));
        assert!(text.contains("Seq Scan on book"));
        assert!(text.contains("cost=13.00"));
        // Child is indented deeper than parent.
        let lines: Vec<&str> = text.lines().collect();
        assert!(lines[1].starts_with("  "));
    }

    fn seq_scan(table: &str, filter: Option<Expr>) -> PhysNode {
        PhysNode {
            op: PhysOp::SeqScan {
                table: table.into(),
                filter,
                annotation: None,
            },
            est_rows: 100.0,
            est_cost: 12.5,
            schema: scan_schema(),
        }
    }

    #[test]
    fn digest_is_stable_and_shape_sensitive() {
        let a = seq_scan("book", None);
        assert_eq!(a.digest(), seq_scan("book", None).digest(), "deterministic");
        assert_ne!(a.digest(), seq_scan("author", None).digest(), "table name");
        assert_ne!(
            a.digest(),
            seq_scan("book", Some(Expr::Literal(Datum::Bool(true)))).digest(),
            "predicate"
        );
        // Estimates do not change the digest.
        let mut b = seq_scan("book", None);
        b.est_rows = 9.0;
        b.est_cost = 1.0;
        assert_eq!(a.digest(), b.digest());
        // A wrapping operator changes it.
        let limited = PhysNode {
            op: PhysOp::Limit {
                input: Box::new(a.clone()),
                n: 5,
            },
            est_rows: 5.0,
            est_cost: 13.0,
            schema: scan_schema(),
        };
        assert_ne!(a.digest(), limited.digest());
    }

    #[test]
    fn span_tree_mirrors_plan_preorder() {
        let join = PhysNode {
            op: PhysOp::NlJoin {
                outer: Box::new(seq_scan("a", None)),
                inner: Box::new(seq_scan("b", None)),
                predicate: None,
                materialize_inner: false,
            },
            est_rows: 10.0,
            est_cost: 50.0,
            schema: scan_schema().join(&scan_schema()),
        };
        let actuals = [
            NodeActuals {
                rows: 10,
                loops: 1,
                time: std::time::Duration::from_micros(300),
                ..Default::default()
            },
            NodeActuals {
                time: std::time::Duration::from_micros(100),
                ..Default::default()
            },
            NodeActuals {
                time: std::time::Duration::from_micros(150),
                ..Default::default()
            },
        ];
        let span = join.span_tree(&actuals);
        assert_eq!(span.name, "Nested Loop");
        assert_eq!(span.duration, std::time::Duration::from_micros(300));
        assert_eq!(span.children.len(), 2);
        assert_eq!(span.children[0].name, "Seq Scan on a");
        assert_eq!(
            span.children[1].duration,
            std::time::Duration::from_micros(150)
        );
    }
}
