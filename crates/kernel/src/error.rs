//! Engine error type.

use std::fmt;

/// All the ways engine operations can fail.
#[derive(Debug)]
pub enum Error {
    /// SQL lexing/parsing failure.
    Parse(String),
    /// Name resolution / typing failure (unknown table, column, operator,
    /// type mismatch...).
    Binder(String),
    /// Catalog constraint violated (duplicate table, unknown index, ...).
    Catalog(String),
    /// Storage-layer failure (page corruption, backend I/O, WAL).
    Storage(String),
    /// Executor runtime failure (e.g. division by zero).
    Execution(String),
    /// Procedural-language runtime failure.
    Pl(String),
    /// Underlying OS I/O error.
    Io(std::io::Error),
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Error::Parse(m) => write!(f, "parse error: {m}"),
            Error::Binder(m) => write!(f, "binder error: {m}"),
            Error::Catalog(m) => write!(f, "catalog error: {m}"),
            Error::Storage(m) => write!(f, "storage error: {m}"),
            Error::Execution(m) => write!(f, "execution error: {m}"),
            Error::Pl(m) => write!(f, "PL error: {m}"),
            Error::Io(e) => write!(f, "I/O error: {e}"),
        }
    }
}

impl std::error::Error for Error {}

impl From<std::io::Error> for Error {
    fn from(e: std::io::Error) -> Self {
        Error::Io(e)
    }
}

/// Engine result alias.
pub type Result<T> = std::result::Result<T, Error>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_variants() {
        assert!(Error::Parse("x".into()).to_string().contains("parse"));
        assert!(Error::Binder("x".into()).to_string().contains("binder"));
        assert!(Error::Storage("x".into()).to_string().contains("storage"));
    }

    #[test]
    fn io_conversion() {
        let e: Error = std::io::Error::new(std::io::ErrorKind::NotFound, "gone").into();
        assert!(matches!(e, Error::Io(_)));
    }
}
