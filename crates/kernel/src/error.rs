//! Engine error type.

use std::fmt;

/// All the ways engine operations can fail.
#[derive(Debug)]
pub enum Error {
    /// SQL lexing/parsing failure.
    Parse(String),
    /// Name resolution / typing failure (unknown table, column, operator,
    /// type mismatch...).
    Binder(String),
    /// Catalog constraint violated (duplicate table, unknown index, ...).
    Catalog(String),
    /// Storage-layer failure (page corruption, backend I/O, WAL).
    Storage(String),
    /// Executor runtime failure (e.g. division by zero).
    Execution(String),
    /// Write-write conflict under snapshot isolation (first-updater-wins):
    /// the statement tried to update or delete a row version already
    /// modified by a concurrent transaction.  The transaction is aborted;
    /// the client should retry it.
    Serialization(String),
    /// Procedural-language runtime failure.
    Pl(String),
    /// A statement materialized more rows than the `max_rows` session
    /// variable allows.
    MaxRows {
        /// The configured row limit that was exceeded.
        limit: u64,
    },
    /// A statement inside an `execute_script` batch failed; wraps the
    /// inner error with the statement's position and text.
    Script {
        /// 1-based position of the failing statement in the script.
        ordinal: usize,
        /// A (possibly truncated) snippet of the failing statement.
        snippet: String,
        /// The underlying failure.
        source: Box<Error>,
    },
    /// A complete WAL frame failed validation (CRC mismatch, broken LSN
    /// sequence, undecodable payload).  Unlike a torn tail this means
    /// committed records may follow the damage, so replay refuses to
    /// continue and reports where it stopped.
    WalCorrupt {
        /// LSN of the frame that failed (the expected LSN at that point).
        lsn: u64,
        /// Byte offset of the frame within the log file.
        offset: u64,
        /// What exactly failed.
        detail: String,
    },
    /// A WAL record was read back intact but could not be re-applied
    /// during recovery (e.g. its DDL no longer executes).
    Replay {
        /// LSN of the record that failed to apply.
        lsn: u64,
        /// Byte offset of the record within the log file.
        offset: u64,
        /// The underlying failure.
        source: Box<Error>,
    },
    /// A checkpoint snapshot failed validation on load.
    SnapshotCorrupt {
        /// Path of the snapshot file.
        path: String,
        /// What exactly failed.
        detail: String,
    },
    /// Underlying OS I/O error.
    Io(std::io::Error),
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Error::Parse(m) => write!(f, "parse error: {m}"),
            Error::Binder(m) => write!(f, "binder error: {m}"),
            Error::Catalog(m) => write!(f, "catalog error: {m}"),
            Error::Storage(m) => write!(f, "storage error: {m}"),
            Error::Execution(m) => write!(f, "execution error: {m}"),
            Error::Serialization(m) => {
                write!(f, "serialization failure: {m} — retry the transaction")
            }
            Error::Pl(m) => write!(f, "PL error: {m}"),
            Error::MaxRows { limit } => {
                write!(
                    f,
                    "statement exceeded max_rows = {limit} (raise or unset SET max_rows)"
                )
            }
            Error::Script {
                ordinal,
                snippet,
                source,
            } => {
                write!(
                    f,
                    "script statement {ordinal} ({snippet:?}) failed: {source}"
                )
            }
            Error::WalCorrupt {
                lsn,
                offset,
                detail,
            } => {
                write!(
                    f,
                    "WAL corrupt at LSN {lsn} (byte offset {offset}): {detail}; \
                     records after this point cannot be trusted — inspect the log \
                     and truncate deliberately to recover"
                )
            }
            Error::Replay {
                lsn,
                offset,
                source,
            } => {
                write!(
                    f,
                    "WAL replay failed at LSN {lsn} (byte offset {offset}): {source}"
                )
            }
            Error::SnapshotCorrupt { path, detail } => {
                write!(f, "checkpoint snapshot {path} corrupt: {detail}")
            }
            Error::Io(e) => write!(f, "I/O error: {e}"),
        }
    }
}

impl std::error::Error for Error {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            Error::Script { source, .. } => Some(source.as_ref()),
            Error::Replay { source, .. } => Some(source.as_ref()),
            Error::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<std::io::Error> for Error {
    fn from(e: std::io::Error) -> Self {
        Error::Io(e)
    }
}

/// Engine result alias.
pub type Result<T> = std::result::Result<T, Error>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_variants() {
        assert!(Error::Parse("x".into()).to_string().contains("parse"));
        assert!(Error::Binder("x".into()).to_string().contains("binder"));
        assert!(Error::Storage("x".into()).to_string().contains("storage"));
    }

    #[test]
    fn io_conversion() {
        let e: Error = std::io::Error::new(std::io::ErrorKind::NotFound, "gone").into();
        assert!(matches!(e, Error::Io(_)));
    }
}
