//! # mlql-kernel — a single-node relational engine
//!
//! The PostgreSQL stand-in for the reproduction of *On Pushing Multilingual
//! Query Operators into Relational Engines* (ICDE 2006).  The paper's
//! contribution is evaluated *against* engine machinery — an extensible
//! catalog, a cost-based optimizer with end-biased histograms, a buffer
//! pool whose page I/O drives the cost model, GiST-style extensible access
//! methods, and a procedural-language runtime for the outside-the-server
//! baseline — so this crate provides all of it, from scratch.
//!
//! Architecture (bottom-up):
//!
//! * [`storage`] — 8 KiB slotted pages, pluggable backends (memory / file),
//!   a buffer pool with clock eviction and I/O accounting, heap files, and
//!   a redo-only write-ahead log.
//! * [`catalog`] — tables, columns, **extension types**, **extension
//!   operators** (with cost & selectivity hooks — how Mural's ψ and Ω get
//!   first-class treatment), **access methods** (B+Tree built in; M-Tree
//!   registered by `mlql-mural` exactly as the paper used GiST), and
//!   per-column statistics.
//! * [`expr`] — typed expression trees and evaluation.
//! * [`plan`] — logical and physical plans, `EXPLAIN` rendering.
//! * [`opt`] — rewrite rules, cardinality estimation (end-biased
//!   histograms, §3.4.1 of the paper), and the cost model.
//! * [`exec`] — Volcano-style executors.
//! * [`sql`] — a small SQL dialect with extension infix operators
//!   (`author LEXEQUAL unitext('Nehru','English') IN (English, Hindi)`).
//! * [`pl`] — an interpreted procedural language with an SPI, used to
//!   implement the paper's outside-the-server baselines honestly: its
//!   slowness comes from interpretation, function-manager argument
//!   marshalling and per-statement SQL processing, not from sleeps.
//! * [`obs`] — observability: process-wide metrics registry with
//!   Prometheus/JSON exposition, per-query trace spans, and the
//!   per-operator instrumentation behind `EXPLAIN ANALYZE`.
//! * [`engine`] — the shared, thread-safe [`engine::Engine`] (catalog +
//!   buffer pool + WAL + plan cache) and per-connection
//!   [`engine::Session`]s; SELECTs from different sessions run in
//!   parallel, writers are serialized.
//! * [`db`] — the single-connection `Database` facade, now a thin shim
//!   over `Engine::connect()`.

pub mod catalog;
pub mod db;
pub mod engine;
pub mod error;
pub mod exec;
pub mod expr;
pub mod index;
pub mod obs;
pub mod opt;
pub mod pl;
pub mod plan;
pub mod schema;
pub mod snapshot;
pub mod sql;
pub mod storage;
pub mod txn;
pub mod value;

pub use db::{Database, QueryResult};
pub use engine::{Engine, Session};
pub use error::{Error, Result};
pub use schema::{Column, Schema};
pub use value::{DataType, Datum, ExtTypeId};
