//! The `Database` facade: DDL, DML, queries, ANALYZE, EXPLAIN, recovery.

use crate::catalog::{Catalog, ColumnStats, SessionVars, TableStats};
use crate::error::{Error, Result};
use crate::exec::{build_instrumented, run_to_vec, ExecCtx, ExecStats};
use crate::expr::EvalCtx;
use crate::obs::{self, QueryTrace};
use crate::opt;
use crate::plan::{NodeActuals, PhysNode};
use crate::schema::{Column, Row, Schema};
use crate::sql::{self, Statement};
use crate::storage::{
    encode_row, decode_row, BufferPool, FileBackend, HeapFile, IoStats, MemBackend, Wal, WalRecord,
};
use crate::value::{DataType, Datum};
use std::path::Path;
use std::time::{Duration, Instant};

/// Per-statement runtime statistics.
#[derive(Debug, Clone, Default)]
pub struct RunStats {
    /// Buffer-pool traffic during the statement.
    pub io: IoStats,
    /// Index nodes visited.
    pub index_node_visits: u64,
    /// Extension-operator (ψ/Ω) evaluations during the statement.
    pub ext_op_calls: u64,
    /// Wall-clock execution time (excludes parse/plan).
    pub exec_time: Duration,
    /// Optimizer-predicted total cost of the executed plan (queries only).
    pub est_cost: Option<f64>,
    /// Optimizer-predicted output rows.
    pub est_rows: Option<f64>,
    /// Stage spans (parse/bind/plan/execute) for queries.
    pub trace: Option<QueryTrace>,
}

/// Result of executing one statement.
#[derive(Debug, Clone, Default)]
pub struct QueryResult {
    /// Output schema (empty for DDL/DML).
    pub schema: Schema,
    /// Result rows (empty for DDL/DML).
    pub rows: Vec<Row>,
    /// `EXPLAIN` text, when requested.
    pub explain: Option<String>,
    /// Rows affected by DML.
    pub affected: u64,
    /// Runtime statistics.
    pub stats: RunStats,
}

/// How `run_select` should report.
enum ExplainMode {
    Off,
    PlanOnly,
    Analyze,
}

/// A single-node database instance.
pub struct Database {
    catalog: Catalog,
    pool: BufferPool,
    session: SessionVars,
    wal: Option<Wal>,
    /// Guard so WAL replay does not re-log records.
    replaying: bool,
}

impl Database {
    /// A fresh in-memory database (no durability).
    pub fn new_in_memory() -> Database {
        Database {
            catalog: Catalog::new(),
            pool: BufferPool::new(Box::new(MemBackend::new()), 1024),
            session: SessionVars::new(),
            wal: None,
            replaying: false,
        }
    }

    /// Open (or create) a durable database under `dir`, replaying the WAL.
    ///
    /// Heap contents are recovered from the log; **indexes are rebuilt**
    /// from the recovered heaps because — like PostgreSQL 7.4's GiST — our
    /// extensible index layer is not WAL-logged (§4.2.1 of the paper).
    pub fn open(dir: impl AsRef<Path>) -> Result<Database> {
        Self::open_with_extensions(dir, |_| Ok(()))
    }

    /// Like [`Database::open`], but runs `install` on the fresh instance
    /// *before* WAL replay.  Extension registration (types, operators,
    /// access methods) lives in code, not the WAL; any logged DDL that
    /// references extension types (`CREATE TABLE ... UNITEXT`) needs the
    /// extension present when it replays — the PostgreSQL analogue is that
    /// `CREATE EXTENSION` contents are part of the durable catalog.
    pub fn open_with_extensions(
        dir: impl AsRef<Path>,
        install: impl FnOnce(&mut Database) -> Result<()>,
    ) -> Result<Database> {
        let dir = dir.as_ref();
        std::fs::create_dir_all(dir)?;
        let wal_path = dir.join("wal.log");
        let records = Wal::replay(&wal_path)?;
        let mut db = Database {
            catalog: Catalog::new(),
            pool: BufferPool::new(Box::new(FileBackend::open(dir.join("data"))?), 1024),
            session: SessionVars::new(),
            wal: None,
            replaying: true,
        };
        install(&mut db)?;
        // Replay: DDL records carry the original SQL; DML records carry
        // tuple bytes addressed by table id (creation order = id order).
        for rec in records {
            match rec {
                WalRecord::CreateTable { ddl, .. } => {
                    let sql = String::from_utf8(ddl)
                        .map_err(|_| Error::Storage("corrupt DDL record".into()))?;
                    db.execute(&sql)?;
                }
                WalRecord::Insert { table_id, tuple } => {
                    let meta = db.catalog.table_by_id(crate::catalog::TableId(table_id))?;
                    let row = decode_row(&tuple, meta.schema.len())?;
                    db.insert_row(&meta.name, row)?;
                }
                WalRecord::Delete { table_id, tuple } => {
                    let meta = db.catalog.table_by_id(crate::catalog::TableId(table_id))?;
                    db.delete_matching_tuple(&meta.name, &tuple)?;
                }
            }
        }
        db.replaying = false;
        db.wal = Some(Wal::open(&wal_path)?);
        Ok(db)
    }

    /// The catalog (extension registration goes through `catalog_mut`).
    pub fn catalog(&self) -> &Catalog {
        &self.catalog
    }

    /// Mutable catalog access for extension registration (types, operators,
    /// functions, access methods) — the `CREATE EXTENSION` equivalent.
    pub fn catalog_mut(&mut self) -> &mut Catalog {
        &mut self.catalog
    }

    /// The buffer pool (benches read I/O statistics from here).
    pub fn pool(&self) -> &BufferPool {
        &self.pool
    }

    /// Session variables.
    pub fn session(&self) -> &SessionVars {
        &self.session
    }

    /// Mutable session variables.
    pub fn session_mut(&mut self) -> &mut SessionVars {
        &mut self.session
    }

    /// Execute one SQL statement.
    pub fn execute(&mut self, sql_text: &str) -> Result<QueryResult> {
        let metrics = obs::metrics();
        let total_start = Instant::now();
        let parse_start = Instant::now();
        let stmt = sql::parse(sql_text)?;
        let parse_time = parse_start.elapsed();
        metrics.stage_parse_ns_total.add(parse_time.as_nanos() as u64);
        let result = self.dispatch(stmt, sql_text);
        metrics.queries_total.inc();
        let mut result = result?;
        metrics.query_rows_total.add(result.rows.len() as u64);
        metrics.query_latency_seconds.observe_duration(total_start.elapsed());
        match result.stats.trace.as_mut() {
            Some(t) => t.prepend("parse", parse_time),
            None => {
                let mut t = QueryTrace::new();
                t.record("parse", parse_time);
                result.stats.trace = Some(t);
            }
        }
        Ok(result)
    }

    fn dispatch(&mut self, stmt: Statement, sql_text: &str) -> Result<QueryResult> {
        match stmt {
            Statement::CreateTable { name, columns } => {
                let schema = self.schema_from_ddl(&columns)?;
                let heap = HeapFile::create(&self.pool)?;
                let id = self.catalog.create_table(&name, schema, heap)?;
                self.log(WalRecord::CreateTable { table_id: id.0, ddl: sql_text.as_bytes().to_vec() })?;
                Ok(QueryResult::default())
            }
            Statement::CreateIndex { name, table, column, using } => {
                let meta = self.catalog.table(&table)?;
                let col = meta.schema.index_of(&column).ok_or_else(|| {
                    Error::Binder(format!("no column {column:?} in {table:?}"))
                })?;
                let idx = self.catalog.create_index(&table, &name, col, &using)?;
                // Back-fill from the heap.
                let arity = meta.schema.len();
                let mut instance = idx.instance.lock();
                let mut scan_err = None;
                meta.heap.scan(&self.pool, |tid, bytes| {
                    match decode_row(bytes, arity) {
                        Ok(row) => {
                            if let Err(e) = instance.insert(&row[col], tid) {
                                scan_err = Some(e);
                                return false;
                            }
                        }
                        Err(e) => {
                            scan_err = Some(e);
                            return false;
                        }
                    }
                    true
                })?;
                drop(instance);
                if let Some(e) = scan_err {
                    return Err(e);
                }
                self.log(WalRecord::CreateTable {
                    table_id: meta.id.0,
                    ddl: sql_text.as_bytes().to_vec(),
                })?;
                Ok(QueryResult::default())
            }
            Statement::DropTable { name } => {
                self.catalog.drop_table(&name)?;
                Ok(QueryResult::default())
            }
            Statement::DropIndex { name } => {
                self.catalog.drop_index(&name)?;
                Ok(QueryResult::default())
            }
            Statement::Insert { table, rows } => {
                let mut affected = 0u64;
                for row_exprs in rows {
                    let mut row = Row::with_capacity(row_exprs.len());
                    for e in &row_exprs {
                        let bound = sql::bind_const_expr(e, &self.catalog)?;
                        let ctx = EvalCtx::new(&self.catalog, &self.session);
                        row.push(bound.eval(&[], &ctx)?);
                    }
                    self.insert_row(&table, row)?;
                    affected += 1;
                }
                Ok(QueryResult { affected, ..QueryResult::default() })
            }
            Statement::InsertSelect { table, select } => {
                let result = self.run_select(&select, ExplainMode::Off)?;
                let mut affected = 0u64;
                for row in result.rows {
                    self.insert_row(&table, row)?;
                    affected += 1;
                }
                Ok(QueryResult { affected, ..QueryResult::default() })
            }
            Statement::Update { table, sets, filter } => {
                let meta = self.catalog.table(&table)?;
                let filter = filter
                    .map(|f| sql::bind_single_table(&f, &meta.name, &meta.schema, &self.catalog))
                    .transpose()?;
                let mut bound_sets = Vec::with_capacity(sets.len());
                for (col, e) in &sets {
                    let idx = meta.schema.index_of(col).ok_or_else(|| {
                        Error::Binder(format!("no column {col:?} in {table:?}"))
                    })?;
                    let bound =
                        sql::bind_single_table(e, &meta.name, &meta.schema, &self.catalog)?;
                    bound_sets.push((idx, bound));
                }
                let n = self.update_where(&table, &bound_sets, filter.as_ref())?;
                Ok(QueryResult { affected: n, ..QueryResult::default() })
            }
            Statement::Delete { table, filter } => {
                let meta = self.catalog.table(&table)?;
                let filter = filter
                    .map(|f| sql::bind_single_table(&f, &meta.name, &meta.schema, &self.catalog))
                    .transpose()?;
                let n = self.delete_where(&table, filter.as_ref())?;
                Ok(QueryResult { affected: n, ..QueryResult::default() })
            }
            Statement::Select(sel) => self.run_select(&sel, ExplainMode::Off),
            Statement::Explain { select, analyze } => self.run_select(
                &select,
                if analyze { ExplainMode::Analyze } else { ExplainMode::PlanOnly },
            ),
            Statement::Set { name, value } => {
                let bound = sql::bind_const_expr(&value, &self.catalog)?;
                let ctx = EvalCtx::new(&self.catalog, &self.session);
                let v = bound.eval(&[], &ctx)?;
                self.session.set(&name, v);
                Ok(QueryResult::default())
            }
            Statement::Show { name } => match name.to_ascii_lowercase().as_str() {
                // Engine metrics surfaces (the registry is process-wide).
                "stats" => {
                    let _ = obs::metrics(); // ensure engine metrics exist
                    let rows = obs::global()
                        .samples()
                        .into_iter()
                        .map(|(n, v)| vec![Datum::text(n), Datum::Float(v)])
                        .collect();
                    Ok(QueryResult {
                        schema: Schema::new(vec![
                            Column::new("metric", DataType::Text),
                            Column::new("value", DataType::Float),
                        ]),
                        rows,
                        ..QueryResult::default()
                    })
                }
                "stats_json" => {
                    let _ = obs::metrics();
                    Ok(QueryResult {
                        schema: Schema::new(vec![Column::new("stats_json", DataType::Text)]),
                        rows: vec![vec![Datum::text(obs::global().render_json())]],
                        ..QueryResult::default()
                    })
                }
                "stats_prometheus" => {
                    let _ = obs::metrics();
                    Ok(QueryResult {
                        schema: Schema::new(vec![Column::new("stats_prometheus", DataType::Text)]),
                        rows: vec![vec![Datum::text(obs::global().render_prometheus())]],
                        ..QueryResult::default()
                    })
                }
                _ => {
                    let v = self.session.get(&name).cloned().unwrap_or(Datum::Null);
                    Ok(QueryResult {
                        schema: Schema::new(vec![Column::new(name, DataType::Text)]),
                        rows: vec![vec![Datum::text(v.to_string())]],
                        ..QueryResult::default()
                    })
                }
            },
            Statement::Analyze { table } => {
                self.analyze(&table)?;
                Ok(QueryResult::default())
            }
        }
    }

    /// Convenience: execute and return rows.
    pub fn query(&mut self, sql_text: &str) -> Result<Vec<Row>> {
        Ok(self.execute(sql_text)?.rows)
    }

    /// Execute a semicolon-separated script; returns the result of the
    /// last statement.  Quotes are respected when splitting.
    pub fn execute_script(&mut self, script: &str) -> Result<QueryResult> {
        let mut last = QueryResult::default();
        let mut stmt = String::new();
        let mut in_str = false;
        let mut in_comment = false;
        let mut prev = '\0';
        for ch in script.chars() {
            if in_comment {
                if ch == '\n' {
                    in_comment = false;
                    stmt.push(ch);
                }
                prev = ch;
                continue;
            }
            match ch {
                '\'' => {
                    in_str = !in_str;
                    stmt.push(ch);
                }
                '-' if !in_str && prev == '-' => {
                    // `--` line comment: drop it (and the `-` already
                    // buffered) so a `;` inside the comment cannot split.
                    stmt.pop();
                    in_comment = true;
                }
                ';' if !in_str => {
                    if !stmt.trim().is_empty() {
                        last = self.execute(stmt.trim())?;
                    }
                    stmt.clear();
                }
                _ => stmt.push(ch),
            }
            prev = ch;
        }
        if !stmt.trim().is_empty() {
            last = self.execute(stmt.trim())?;
        }
        Ok(last)
    }

    /// Read-only query through a shared reference: parse → bind → plan →
    /// execute without touching catalog, WAL or session state.  Safe to
    /// call from multiple threads concurrently (the buffer pool and index
    /// instances are internally synchronized); only `SELECT` is accepted.
    pub fn query_ref(&self, sql_text: &str) -> Result<Vec<Row>> {
        let metrics = obs::metrics();
        let start = Instant::now();
        let stmt = sql::parse(sql_text)?;
        let sel = match stmt {
            Statement::Select(s) => s,
            _ => return Err(Error::Binder("query_ref only accepts SELECT".into())),
        };
        let logical = sql::bind(&sel, &self.catalog)?;
        let phys = opt::plan(&logical, &self.catalog, &self.pool, &self.session)?;
        let stats = ExecStats::default();
        let ctx = ExecCtx {
            catalog: &self.catalog,
            pool: &self.pool,
            session: &self.session,
            stats: &stats,
        };
        let rows = run_to_vec(&phys, &ctx)?;
        metrics.queries_total.inc();
        metrics.query_rows_total.add(rows.len() as u64);
        metrics.query_latency_seconds.observe_duration(start.elapsed());
        Ok(rows)
    }

    /// Plan a SELECT without executing it (benches compare predicted cost
    /// against measured runtime — Figure 6).
    pub fn plan_select(&self, sql_text: &str) -> Result<PhysNode> {
        let stmt = sql::parse(sql_text)?;
        let sel = match stmt {
            Statement::Select(s) | Statement::Explain { select: s, .. } => s,
            _ => return Err(Error::Binder("plan_select expects a SELECT".into())),
        };
        let logical = sql::bind(&sel, &self.catalog)?;
        opt::plan(&logical, &self.catalog, &self.pool, &self.session)
    }

    fn run_select(&mut self, sel: &sql::SelectStmt, mode: ExplainMode) -> Result<QueryResult> {
        let metrics = obs::metrics();
        let mut trace = QueryTrace::new();
        let bind_start = Instant::now();
        let logical = sql::bind(sel, &self.catalog)?;
        let bind_time = bind_start.elapsed();
        trace.record("bind", bind_time);
        metrics.stage_bind_ns_total.add(bind_time.as_nanos() as u64);
        let plan_start = Instant::now();
        let phys = opt::plan(&logical, &self.catalog, &self.pool, &self.session)?;
        let plan_time = plan_start.elapsed();
        trace.record("plan", plan_time);
        metrics.stage_plan_ns_total.add(plan_time.as_nanos() as u64);
        match mode {
            ExplainMode::PlanOnly => {
                let text = phys.explain();
                return Ok(QueryResult {
                    schema: Schema::new(vec![Column::new("query plan", DataType::Text)]),
                    rows: text.lines().map(|l| vec![Datum::text(l)]).collect(),
                    explain: Some(text),
                    stats: RunStats { trace: Some(trace), ..RunStats::default() },
                    ..QueryResult::default()
                });
            }
            ExplainMode::Analyze => {
                // Execute through the instrumented tree, then annotate
                // every plan node with its measured actuals — exactly how
                // the Figure 6 experiment gathers its (predicted cost,
                // actual runtime) pairs, now at per-operator granularity.
                let stats = ExecStats::default();
                let io_before = self.pool.stats();
                let start = Instant::now();
                let ctx = ExecCtx {
                    catalog: &self.catalog,
                    pool: &self.pool,
                    session: &self.session,
                    stats: &stats,
                };
                let (mut exec, instr) = build_instrumented(&phys, &ctx)?;
                let mut rows = Vec::new();
                while let Some(row) = exec.next(&ctx)? {
                    rows.push(row);
                }
                stats.rows_out.set(rows.len() as u64);
                let elapsed = start.elapsed();
                trace.record("execute", elapsed);
                metrics.stage_execute_ns_total.add(elapsed.as_nanos() as u64);
                let io = self.pool.stats().since(&io_before);
                let actuals: Vec<NodeActuals> = instr
                    .per_node
                    .iter()
                    .map(|s| NodeActuals {
                        rows: s.rows.get(),
                        loops: s.loops.get(),
                        time: Duration::from_nanos(s.time_ns.get()),
                        pages: s.logical_reads.get(),
                        pages_read: s.physical_reads.get(),
                        index_node_visits: s.index_node_visits.get(),
                        ext_op_calls: s.ext_op_calls.get(),
                    })
                    .collect();
                let mut text = phys.explain_with_actuals(&actuals);
                text.push_str(&format!(
                    "Actual: rows={} time={:.3}ms logical_reads={} physical_reads={} index_node_visits={} ext_op_calls={}\n",
                    rows.len(),
                    elapsed.as_secs_f64() * 1000.0,
                    io.logical_reads,
                    io.physical_reads,
                    stats.index_node_visits.get(),
                    stats.ext_op_calls.get(),
                ));
                text.push_str(&format!("Stages: {}\n", trace.render()));
                return Ok(QueryResult {
                    schema: Schema::new(vec![Column::new("query plan", DataType::Text)]),
                    rows: text.lines().map(|l| vec![Datum::text(l)]).collect(),
                    explain: Some(text),
                    stats: RunStats {
                        io,
                        index_node_visits: stats.index_node_visits.get(),
                        ext_op_calls: stats.ext_op_calls.get(),
                        exec_time: elapsed,
                        est_cost: Some(phys.est_cost),
                        est_rows: Some(phys.est_rows),
                        trace: Some(trace),
                    },
                    ..QueryResult::default()
                });
            }
            ExplainMode::Off => {}
        }
        let stats = ExecStats::default();
        let io_before = self.pool.stats();
        let start = Instant::now();
        let ctx = ExecCtx {
            catalog: &self.catalog,
            pool: &self.pool,
            session: &self.session,
            stats: &stats,
        };
        let rows = run_to_vec(&phys, &ctx)?;
        let exec_time = start.elapsed();
        trace.record("execute", exec_time);
        metrics.stage_execute_ns_total.add(exec_time.as_nanos() as u64);
        let io = self.pool.stats().since(&io_before);
        Ok(QueryResult {
            schema: phys.schema.clone(),
            rows,
            explain: Some(phys.explain()),
            affected: 0,
            stats: RunStats {
                io,
                index_node_visits: stats.index_node_visits.get(),
                ext_op_calls: stats.ext_op_calls.get(),
                exec_time,
                est_cost: Some(phys.est_cost),
                est_rows: Some(phys.est_rows),
                trace: Some(trace),
            },
        })
    }

    /// Insert a pre-evaluated row (used by SQL INSERT, recovery, and bulk
    /// loaders).  Applies type checks, extension `on_insert` transforms
    /// (phoneme materialization), index maintenance and WAL logging.
    pub fn insert_row(&mut self, table: &str, row: Row) -> Result<()> {
        let meta = self.catalog.table(table)?;
        let row = self.prepare_row(&meta, row)?;
        let bytes = encode_row(&row);
        let tid = meta.heap.insert(&self.pool, &bytes)?;
        for idx in self.catalog.indexes_of(meta.id) {
            idx.instance.lock().insert(&row[idx.column], tid)?;
        }
        self.log(WalRecord::Insert { table_id: meta.id.0, tuple: bytes })?;
        Ok(())
    }

    /// Type-check, coerce, and run extension insertion hooks on a row
    /// destined for `meta` (shared by INSERT and UPDATE).
    fn prepare_row(&self, meta: &crate::catalog::TableMeta, mut row: Row) -> Result<Row> {
        if row.len() != meta.schema.len() {
            return Err(Error::Binder(format!(
                "{} expects {} values, got {}",
                meta.name,
                meta.schema.len(),
                row.len()
            )));
        }
        for (i, col) in meta.schema.columns().iter().enumerate() {
            // Numeric widening.
            if col.ty == DataType::Float {
                if let Datum::Int(v) = row[i] {
                    row[i] = Datum::Float(v as f64);
                }
            }
            match (&row[i], col.ty) {
                (Datum::Null, _) => {}
                (d, ty) => {
                    if d.data_type() != Some(ty) {
                        return Err(Error::Binder(format!(
                            "column {} expects {}, got {}",
                            col.name,
                            ty,
                            d.data_type().map(|t| t.to_string()).unwrap_or_default()
                        )));
                    }
                }
            }
            // Extension insertion hook (e.g. UniText phoneme
            // materialization, §4.2).
            if let Datum::Ext { ty, bytes } = &row[i] {
                if let Some(def) = self.catalog.type_by_id(*ty) {
                    if let Some(hook) = &def.on_insert {
                        let new_bytes = hook(bytes);
                        row[i] = Datum::ext(*ty, new_bytes);
                    }
                }
            }
        }
        Ok(row)
    }

    /// UPDATE = qualifying-row delete + prepared re-insert, which re-runs
    /// the extension hooks (a changed UniText gets a fresh phoneme cache).
    fn update_where(
        &mut self,
        table: &str,
        sets: &[(usize, crate::expr::Expr)],
        filter: Option<&crate::expr::Expr>,
    ) -> Result<u64> {
        let meta = self.catalog.table(table)?;
        let arity = meta.schema.len();
        let ctx = EvalCtx::new(&self.catalog, &self.session);
        let mut victims: Vec<(crate::storage::TupleId, Row, Vec<u8>, Row)> = Vec::new();
        let mut scan_err = None;
        meta.heap.scan(&self.pool, |tid, bytes| {
            match decode_row(bytes, arity) {
                Ok(row) => {
                    let hit = match filter {
                        Some(f) => f.eval(&row, &ctx).map(|d| d.is_true()),
                        None => Ok(true),
                    };
                    match hit {
                        Ok(true) => {
                            let mut new_row = row.clone();
                            for (idx, e) in sets {
                                match e.eval(&row, &ctx) {
                                    Ok(v) => new_row[*idx] = v,
                                    Err(err) => {
                                        scan_err = Some(err);
                                        return false;
                                    }
                                }
                            }
                            victims.push((tid, row, bytes.to_vec(), new_row));
                        }
                        Ok(false) => {}
                        Err(e) => {
                            scan_err = Some(e);
                            return false;
                        }
                    }
                }
                Err(e) => {
                    scan_err = Some(e);
                    return false;
                }
            }
            true
        })?;
        if let Some(e) = scan_err {
            return Err(e);
        }
        let n = victims.len() as u64;
        for (tid, old_row, old_bytes, new_row) in victims {
            // The new image must be valid before touching the old one.
            let new_row = self.prepare_row(&meta, new_row)?;
            meta.heap.delete(&self.pool, tid)?;
            for idx in self.catalog.indexes_of(meta.id) {
                idx.instance.lock().delete(&old_row[idx.column], tid)?;
            }
            self.log(WalRecord::Delete { table_id: meta.id.0, tuple: old_bytes })?;
            let bytes = encode_row(&new_row);
            let new_tid = meta.heap.insert(&self.pool, &bytes)?;
            for idx in self.catalog.indexes_of(meta.id) {
                idx.instance.lock().insert(&new_row[idx.column], new_tid)?;
            }
            self.log(WalRecord::Insert { table_id: meta.id.0, tuple: bytes })?;
        }
        Ok(n)
    }

    fn delete_where(&mut self, table: &str, filter: Option<&crate::expr::Expr>) -> Result<u64> {
        let meta = self.catalog.table(table)?;
        let arity = meta.schema.len();
        let ctx = EvalCtx::new(&self.catalog, &self.session);
        let mut victims = Vec::new();
        let mut scan_err = None;
        meta.heap.scan(&self.pool, |tid, bytes| {
            match decode_row(bytes, arity) {
                Ok(row) => {
                    let keep = match filter {
                        Some(f) => f.eval(&row, &ctx).map(|d| d.is_true()),
                        None => Ok(true),
                    };
                    match keep {
                        Ok(true) => victims.push((tid, row, bytes.to_vec())),
                        Ok(false) => {}
                        Err(e) => {
                            scan_err = Some(e);
                            return false;
                        }
                    }
                }
                Err(e) => {
                    scan_err = Some(e);
                    return false;
                }
            }
            true
        })?;
        if let Some(e) = scan_err {
            return Err(e);
        }
        let n = victims.len() as u64;
        for (tid, row, bytes) in victims {
            meta.heap.delete(&self.pool, tid)?;
            for idx in self.catalog.indexes_of(meta.id) {
                idx.instance.lock().delete(&row[idx.column], tid)?;
            }
            self.log(WalRecord::Delete { table_id: meta.id.0, tuple: bytes })?;
        }
        Ok(n)
    }

    /// Recovery helper: delete one tuple whose bytes match exactly.
    fn delete_matching_tuple(&mut self, table: &str, tuple: &[u8]) -> Result<()> {
        let meta = self.catalog.table(table)?;
        let mut victim = None;
        meta.heap.scan(&self.pool, |tid, bytes| {
            if bytes == tuple {
                victim = Some(tid);
                false
            } else {
                true
            }
        })?;
        if let Some(tid) = victim {
            meta.heap.delete(&self.pool, tid)?;
            let row = decode_row(tuple, meta.schema.len())?;
            for idx in self.catalog.indexes_of(meta.id) {
                idx.instance.lock().delete(&row[idx.column], tid)?;
            }
        }
        Ok(())
    }

    /// ANALYZE: rebuild table and per-column statistics from a full pass.
    pub fn analyze(&mut self, table: &str) -> Result<()> {
        let meta = self.catalog.table(table)?;
        let arity = meta.schema.len();
        let mut columns: Vec<Vec<Datum>> = vec![Vec::new(); arity];
        let mut rows = 0u64;
        let mut scan_err = None;
        meta.heap.scan(&self.pool, |_, bytes| {
            match decode_row(bytes, arity) {
                Ok(row) => {
                    rows += 1;
                    for (i, d) in row.into_iter().enumerate() {
                        columns[i].push(d);
                    }
                }
                Err(e) => {
                    scan_err = Some(e);
                    return false;
                }
            }
            true
        })?;
        if let Some(e) = scan_err {
            return Err(e);
        }
        let pages = meta.heap.pages(&self.pool)? as u64;
        let stats = TableStats {
            rows,
            pages,
            columns: columns.iter().map(|vals| Some(ColumnStats::build(vals))).collect(),
        };
        *meta.stats.lock() = stats;
        Ok(())
    }

    /// Flush heaps and truncate the WAL (checkpoint).  In-memory databases
    /// are a no-op.
    pub fn checkpoint(&mut self) -> Result<()> {
        self.pool.flush_all()?;
        // Heap pages are durable now, but the catalog (DDL) still lives
        // only in the WAL — so a checkpoint only truncates when there is a
        // separate catalog snapshot, which we do not implement.  Keep the
        // full log instead: replay is idempotent from an empty data dir.
        Ok(())
    }

    fn log(&mut self, rec: WalRecord) -> Result<()> {
        if self.replaying {
            return Ok(());
        }
        if let Some(wal) = &mut self.wal {
            wal.append(&rec)?;
        }
        Ok(())
    }

    fn schema_from_ddl(&self, columns: &[(String, String)]) -> Result<Schema> {
        let mut cols = Vec::with_capacity(columns.len());
        for (name, ty) in columns {
            let dt = match ty.to_lowercase().as_str() {
                "int" | "integer" | "bigint" => DataType::Int,
                "float" | "double" | "real" => DataType::Float,
                "text" | "varchar" | "string" => DataType::Text,
                "bool" | "boolean" => DataType::Bool,
                other => match self.catalog.type_by_name(other) {
                    Some((id, _)) => DataType::Ext(id),
                    None => return Err(Error::Binder(format!("unknown type {ty:?}"))),
                },
            };
            cols.push(Column::new(name.clone(), dt));
        }
        Ok(Schema::new(cols))
    }
}

/// Rebuild all indexes from their heaps (crash-recovery path for the
/// non-WAL-logged index layer; also used by tests to verify index
/// consistency).
pub fn rebuild_indexes(db: &mut Database) -> Result<()> {
    let tables: Vec<String> = db.catalog.tables().map(|t| t.name.clone()).collect();
    for t in tables {
        let meta = db.catalog.table(&t)?;
        let arity = meta.schema.len();
        for idx in db.catalog.indexes_of(meta.id) {
            let am = db
                .catalog
                .access_method(&idx.am)
                .ok_or_else(|| Error::Catalog(format!("no access method {:?}", idx.am)))?;
            let mut fresh = am.create()?;
            let mut scan_err = None;
            meta.heap.scan(&db.pool, |tid, bytes| {
                match decode_row(bytes, arity) {
                    Ok(row) => {
                        if let Err(e) = fresh.insert(&row[idx.column], tid) {
                            scan_err = Some(e);
                            return false;
                        }
                    }
                    Err(e) => {
                        scan_err = Some(e);
                        return false;
                    }
                }
                true
            })?;
            if let Some(e) = scan_err {
                return Err(e);
            }
            *idx.instance.lock() = fresh;
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn db() -> Database {
        Database::new_in_memory()
    }

    #[test]
    fn create_insert_select_roundtrip() {
        let mut db = db();
        db.execute("CREATE TABLE t (id INT, name TEXT, price FLOAT)").unwrap();
        db.execute("INSERT INTO t VALUES (1, 'one', 1.5), (2, 'two', 2.5)").unwrap();
        let r = db.execute("SELECT name FROM t WHERE id = 2").unwrap();
        assert_eq!(r.rows.len(), 1);
        assert_eq!(r.rows[0][0].as_text(), Some("two"));
    }

    #[test]
    fn count_star_and_where() {
        let mut db = db();
        db.execute("CREATE TABLE t (id INT)").unwrap();
        for i in 0..25 {
            db.execute(&format!("INSERT INTO t VALUES ({i})")).unwrap();
        }
        let r = db.execute("SELECT count(*) FROM t WHERE id >= 20").unwrap();
        assert!(r.rows[0][0].eq_sql(&Datum::Int(5)));
    }

    #[test]
    fn join_query() {
        let mut db = db();
        db.execute("CREATE TABLE a (id INT, x TEXT)").unwrap();
        db.execute("CREATE TABLE b (id INT, y TEXT)").unwrap();
        db.execute("INSERT INTO a VALUES (1, 'a1'), (2, 'a2')").unwrap();
        db.execute("INSERT INTO b VALUES (2, 'b2'), (3, 'b3')").unwrap();
        let r = db.execute("SELECT a.x, b.y FROM a, b WHERE a.id = b.id").unwrap();
        assert_eq!(r.rows.len(), 1);
        assert_eq!(r.rows[0][0].as_text(), Some("a2"));
        assert_eq!(r.rows[0][1].as_text(), Some("b2"));
    }

    #[test]
    fn explicit_join_syntax() {
        let mut db = db();
        db.execute("CREATE TABLE a (id INT)").unwrap();
        db.execute("CREATE TABLE b (id INT)").unwrap();
        db.execute("INSERT INTO a VALUES (1), (2), (3)").unwrap();
        db.execute("INSERT INTO b VALUES (2), (3), (4)").unwrap();
        let r = db.execute("SELECT count(*) FROM a JOIN b ON a.id = b.id").unwrap();
        assert!(r.rows[0][0].eq_sql(&Datum::Int(2)));
    }

    #[test]
    fn group_by_and_order_by() {
        let mut db = db();
        db.execute("CREATE TABLE t (k TEXT, v INT)").unwrap();
        db.execute("INSERT INTO t VALUES ('a', 1), ('a', 2), ('b', 5)").unwrap();
        let r = db
            .execute("SELECT k, count(*), sum(v) FROM t GROUP BY k")
            .unwrap();
        assert_eq!(r.rows.len(), 2);
        let r2 = db.execute("SELECT v FROM t ORDER BY v DESC LIMIT 2").unwrap();
        assert!(r2.rows[0][0].eq_sql(&Datum::Int(5)));
        assert_eq!(r2.rows.len(), 2);
    }

    #[test]
    fn delete_and_recount() {
        let mut db = db();
        db.execute("CREATE TABLE t (id INT)").unwrap();
        db.execute("INSERT INTO t VALUES (1), (2), (3)").unwrap();
        let r = db.execute("DELETE FROM t WHERE id < 3").unwrap();
        assert_eq!(r.affected, 2);
        let r = db.execute("SELECT count(*) FROM t").unwrap();
        assert!(r.rows[0][0].eq_sql(&Datum::Int(1)));
    }

    #[test]
    fn btree_index_used_for_point_query() {
        let mut db = db();
        db.execute("CREATE TABLE t (id INT, v TEXT)").unwrap();
        for i in 0..2000 {
            db.execute(&format!("INSERT INTO t VALUES ({i}, 'v{i}')")).unwrap();
        }
        db.execute("CREATE INDEX t_id ON t (id) USING btree").unwrap();
        db.execute("ANALYZE t").unwrap();
        let plan = db.execute("EXPLAIN SELECT v FROM t WHERE id = 77").unwrap();
        let text = plan.explain.unwrap();
        assert!(text.contains("Index Scan"), "plan was:\n{text}");
        let r = db.execute("SELECT v FROM t WHERE id = 77").unwrap();
        assert_eq!(r.rows.len(), 1);
        assert_eq!(r.rows[0][0].as_text(), Some("v77"));
    }

    #[test]
    fn set_and_show() {
        let mut db = db();
        db.execute("SET lexequal.threshold = 3").unwrap();
        let r = db.execute("SHOW lexequal.threshold").unwrap();
        assert_eq!(r.rows[0][0].as_text(), Some("3"));
    }

    #[test]
    fn analyze_populates_stats() {
        let mut db = db();
        db.execute("CREATE TABLE t (id INT)").unwrap();
        for i in 0..500 {
            db.execute(&format!("INSERT INTO t VALUES ({})", i % 50)).unwrap();
        }
        db.execute("ANALYZE t").unwrap();
        let meta = db.catalog().table("t").unwrap();
        let stats = meta.stats.lock().clone();
        assert_eq!(stats.rows, 500);
        assert!(stats.pages >= 1);
        let col = stats.column(0).unwrap();
        assert!((col.n_distinct - 50.0).abs() < 1e-9);
    }

    #[test]
    fn explain_returns_plan_text() {
        let mut db = db();
        db.execute("CREATE TABLE t (id INT)").unwrap();
        let r = db.execute("EXPLAIN SELECT count(*) FROM t WHERE id = 1").unwrap();
        let text = r.explain.unwrap();
        assert!(text.contains("Aggregate"));
        assert!(text.contains("Seq Scan"));
    }

    #[test]
    fn durable_database_recovers() {
        let dir = std::env::temp_dir().join(format!("mlql-db-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        {
            let mut db = Database::open(&dir).unwrap();
            db.execute("CREATE TABLE t (id INT, name TEXT)").unwrap();
            db.execute("CREATE INDEX t_id ON t (id) USING btree").unwrap();
            db.execute("INSERT INTO t VALUES (1, 'one'), (2, 'two')").unwrap();
            db.execute("DELETE FROM t WHERE id = 1").unwrap();
        } // crash (no clean shutdown needed)
        let mut db = Database::open(&dir).unwrap();
        let r = db.execute("SELECT name FROM t").unwrap();
        assert_eq!(r.rows.len(), 1);
        assert_eq!(r.rows[0][0].as_text(), Some("two"));
        // The index was rebuilt during replay and is usable.
        let r = db.execute("SELECT name FROM t WHERE id = 2").unwrap();
        assert_eq!(r.rows.len(), 1);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn runtime_stats_reported() {
        let mut db = db();
        db.execute("CREATE TABLE t (id INT)").unwrap();
        for i in 0..100 {
            db.execute(&format!("INSERT INTO t VALUES ({i})")).unwrap();
        }
        let r = db.execute("SELECT count(*) FROM t").unwrap();
        assert!(r.stats.io.logical_reads > 0);
        assert!(r.stats.est_cost.unwrap() > 0.0);
    }

    #[test]
    fn insert_type_checks() {
        let mut db = db();
        db.execute("CREATE TABLE t (id INT, name TEXT)").unwrap();
        assert!(db.execute("INSERT INTO t VALUES ('oops', 3)").is_err());
        assert!(db.execute("INSERT INTO t VALUES (1)").is_err());
        // Int widens into float columns.
        db.execute("CREATE TABLE f (x FLOAT)").unwrap();
        db.execute("INSERT INTO f VALUES (3)").unwrap();
    }

    #[test]
    fn index_rebuild_helper() {
        let mut db = db();
        db.execute("CREATE TABLE t (id INT)").unwrap();
        db.execute("CREATE INDEX t_id ON t (id) USING btree").unwrap();
        db.execute("INSERT INTO t VALUES (1), (2)").unwrap();
        rebuild_indexes(&mut db).unwrap();
        let r = db.execute("SELECT count(*) FROM t WHERE id = 1").unwrap();
        assert!(r.rows[0][0].eq_sql(&Datum::Int(1)));
    }
}

#[cfg(test)]
mod dml_tests {
    use super::*;

    #[test]
    fn update_basic_and_filtered() {
        let mut db = Database::new_in_memory();
        db.execute("CREATE TABLE t (id INT, v TEXT)").unwrap();
        db.execute("INSERT INTO t VALUES (1,'a'), (2,'b'), (3,'c')").unwrap();
        let r = db.execute("UPDATE t SET v = 'X' WHERE id >= 2").unwrap();
        assert_eq!(r.affected, 2);
        let rows = db.query("SELECT v FROM t ORDER BY id").unwrap();
        let vals: Vec<&str> = rows.iter().map(|r| r[0].as_text().unwrap()).collect();
        assert_eq!(vals, vec!["a", "X", "X"]);
        // Expression referencing the old row value.
        db.execute("UPDATE t SET id = id + 10").unwrap();
        let ids = db.query("SELECT id FROM t ORDER BY id").unwrap();
        assert_eq!(ids[0][0].as_int(), Some(11));
    }

    #[test]
    fn update_maintains_indexes() {
        let mut db = Database::new_in_memory();
        db.execute("CREATE TABLE t (id INT)").unwrap();
        db.execute("CREATE INDEX t_id ON t (id) USING btree").unwrap();
        for i in 0..500 {
            db.execute(&format!("INSERT INTO t VALUES ({i})")).unwrap();
        }
        db.execute("ANALYZE t").unwrap();
        db.execute("UPDATE t SET id = 9999 WHERE id = 7").unwrap();
        db.execute("SET enable_seqscan = 0").unwrap();
        let gone = db.query("SELECT count(*) FROM t WHERE id = 7").unwrap();
        assert_eq!(gone[0][0].as_int(), Some(0));
        let there = db.query("SELECT count(*) FROM t WHERE id = 9999").unwrap();
        assert_eq!(there[0][0].as_int(), Some(1));
    }

    #[test]
    fn update_type_checks() {
        let mut db = Database::new_in_memory();
        db.execute("CREATE TABLE t (id INT)").unwrap();
        db.execute("INSERT INTO t VALUES (1)").unwrap();
        assert!(db.execute("UPDATE t SET id = 'nope'").is_err());
        // Row unchanged after the failed update.
        let r = db.query("SELECT id FROM t").unwrap();
        assert_eq!(r[0][0].as_int(), Some(1));
    }

    #[test]
    fn insert_select_copies_with_transform() {
        let mut db = Database::new_in_memory();
        db.execute("CREATE TABLE src (id INT, v TEXT)").unwrap();
        db.execute("CREATE TABLE dst (id INT, v TEXT)").unwrap();
        db.execute("INSERT INTO src VALUES (1,'a'), (2,'b'), (3,'c')").unwrap();
        let r = db.execute("INSERT INTO dst SELECT id + 100, v FROM src WHERE id < 3").unwrap();
        assert_eq!(r.affected, 2);
        let rows = db.query("SELECT id FROM dst ORDER BY id").unwrap();
        assert_eq!(rows[0][0].as_int(), Some(101));
        assert_eq!(rows[1][0].as_int(), Some(102));
    }

    #[test]
    fn insert_select_self_referencing_snapshot() {
        // INSERT INTO t SELECT FROM t must read a snapshot, not loop.
        let mut db = Database::new_in_memory();
        db.execute("CREATE TABLE t (id INT)").unwrap();
        db.execute("INSERT INTO t VALUES (1), (2)").unwrap();
        let r = db.execute("INSERT INTO t SELECT id + 10 FROM t").unwrap();
        assert_eq!(r.affected, 2);
        let n = db.query("SELECT count(*) FROM t").unwrap();
        assert_eq!(n[0][0].as_int(), Some(4));
    }
}

#[cfg(test)]
mod distinct_tests {
    use super::*;

    #[test]
    fn select_distinct_deduplicates() {
        let mut db = Database::new_in_memory();
        db.execute("CREATE TABLE t (v TEXT, n INT)").unwrap();
        db.execute("INSERT INTO t VALUES ('a',1), ('a',1), ('a',2), ('b',1)").unwrap();
        let r = db.query("SELECT DISTINCT v FROM t").unwrap();
        assert_eq!(r.len(), 2);
        let r = db.query("SELECT DISTINCT v, n FROM t").unwrap();
        assert_eq!(r.len(), 3);
        // Plain select keeps duplicates.
        let r = db.query("SELECT v FROM t").unwrap();
        assert_eq!(r.len(), 4);
        // DISTINCT with WHERE composes.
        let r = db.query("SELECT DISTINCT v FROM t WHERE n = 1").unwrap();
        assert_eq!(r.len(), 2);
    }

    #[test]
    fn distinct_star_and_limit() {
        let mut db = Database::new_in_memory();
        db.execute("CREATE TABLE t (v INT)").unwrap();
        db.execute("INSERT INTO t VALUES (1), (1), (2), (2), (3)").unwrap();
        let r = db.query("SELECT DISTINCT * FROM t").unwrap();
        assert_eq!(r.len(), 3);
        let r = db.query("SELECT DISTINCT v FROM t LIMIT 2").unwrap();
        assert_eq!(r.len(), 2);
    }
}

#[cfg(test)]
mod explain_analyze_tests {
    use super::*;

    #[test]
    fn explain_analyze_reports_actuals() {
        let mut db = Database::new_in_memory();
        db.execute("CREATE TABLE t (id INT)").unwrap();
        for i in 0..500 {
            db.execute(&format!("INSERT INTO t VALUES ({i})")).unwrap();
        }
        let r = db.execute("EXPLAIN ANALYZE SELECT count(*) FROM t WHERE id < 100").unwrap();
        let text = r.explain.unwrap();
        assert!(text.contains("Seq Scan"), "{text}");
        assert!(text.contains("Actual: rows=1"), "{text}");
        assert!(text.contains("logical_reads="), "{text}");
    }

    #[test]
    fn execute_script_runs_statements_in_order() {
        let mut db = Database::new_in_memory();
        let last = db
            .execute_script(
                "CREATE TABLE t (v TEXT); \
                 INSERT INTO t VALUES ('a;b'); -- semicolon inside a string\n \
                 INSERT INTO t VALUES ('c'); \
                 SELECT count(*) FROM t",
            )
            .unwrap();
        assert_eq!(last.rows[0][0].as_int(), Some(2));
        let v = db.query("SELECT v FROM t ORDER BY v LIMIT 1").unwrap();
        assert_eq!(v[0][0].as_text(), Some("a;b"));
    }
}

#[cfg(test)]
mod join_strategy_tests {
    use super::*;

    /// All join strategies (hash, NL materialized, NL rescanning) must
    /// return identical results; force each with the enable flags.
    #[test]
    fn join_strategies_agree() {
        let mut db = Database::new_in_memory();
        db.execute("CREATE TABLE a (id INT, v TEXT)").unwrap();
        db.execute("CREATE TABLE b (id INT, w TEXT)").unwrap();
        for i in 0..200 {
            db.execute(&format!("INSERT INTO a VALUES ({}, 'a{i}')", i % 50)).unwrap();
        }
        for i in 0..80 {
            db.execute(&format!("INSERT INTO b VALUES ({}, 'b{i}')", i % 50)).unwrap();
        }
        db.execute("ANALYZE a").unwrap();
        db.execute("ANALYZE b").unwrap();
        let q = "SELECT count(*) FROM a, b WHERE a.id = b.id";

        let hash = db.query(q).unwrap()[0][0].clone();
        db.execute("SET enable_hashjoin = 0").unwrap();
        let plan = db.plan_select(q).unwrap().explain();
        assert!(plan.contains("Nested Loop"), "{plan}");
        let nl_mat = db.query(q).unwrap()[0][0].clone();
        db.execute("SET enable_material = 0").unwrap();
        let plan = db.plan_select(q).unwrap().explain();
        assert!(!plan.contains("materialized"), "{plan}");
        let nl_rescan = db.query(q).unwrap()[0][0].clone();
        assert!(hash.eq_sql(&nl_mat), "{hash} vs {nl_mat}");
        assert!(hash.eq_sql(&nl_rescan), "{hash} vs {nl_rescan}");
        // Sanity: the count is the expected 200*80/50 ≈ join on mod-50 keys.
        assert!(hash.eq_sql(&Datum::Int(320)));
    }

    /// Residual predicates on hash joins are re-checked per match.
    #[test]
    fn hash_join_residual_filter() {
        let mut db = Database::new_in_memory();
        db.execute("CREATE TABLE a (id INT, x INT)").unwrap();
        db.execute("CREATE TABLE b (id INT, y INT)").unwrap();
        for i in 0..100 {
            db.execute(&format!("INSERT INTO a VALUES ({i}, {})", i * 2)).unwrap();
            db.execute(&format!("INSERT INTO b VALUES ({i}, {})", i * 3)).unwrap();
        }
        db.execute("ANALYZE a").unwrap();
        db.execute("ANALYZE b").unwrap();
        let q = "SELECT count(*) FROM a, b WHERE a.id = b.id AND a.x < b.y";
        let plan = db.plan_select(q).unwrap().explain();
        assert!(plan.contains("Hash Join"), "{plan}");
        // x < y ⇔ 2i < 3i ⇔ i > 0 → 99 matches.
        let n = db.query(q).unwrap();
        assert!(n[0][0].eq_sql(&Datum::Int(99)));
    }
}

#[cfg(test)]
mod script_comment_tests {
    use super::*;

    #[test]
    fn comments_with_semicolons_do_not_split() {
        let mut db = Database::new_in_memory();
        let last = db
            .execute_script(
                "CREATE TABLE t (v INT); -- not a statement; really not\nINSERT INTO t VALUES (1); SELECT count(*) FROM t",
            )
            .unwrap();
        assert_eq!(last.rows[0][0].as_int(), Some(1));
    }
}
