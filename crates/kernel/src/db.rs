//! The `Database` facade — now a thin compatibility shim over
//! [`Engine::connect`]: one embedded [`Session`] plus the recovery
//! bootstrap.  New code should hold an [`Engine`] and open [`Session`]s;
//! `Database` remains for single-connection callers and will eventually be
//! reduced to a deprecated alias (see `docs/architecture.md`).

use crate::catalog::{Catalog, SessionVars, TableId};
use crate::engine::{Engine, Session};
pub use crate::engine::{QueryResult, RunStats};
use crate::error::{Error, Result};
use crate::plan::PhysNode;
use crate::schema::Row;
use crate::snapshot::{self, Snapshot};
use crate::storage::{
    decode_row, split_version, BufferPool, FileBackend, FileId, HeapFile, SharedWal,
    StorageBackend, SyncMode, Wal, WalReader, WalRecord,
};
use parking_lot::{RwLockReadGuard, RwLockWriteGuard};
use std::path::Path;
use std::sync::Arc;

/// A single-node database instance: a shared [`Engine`] plus one default
/// [`Session`].  Open more sessions with [`Database::connect`].
pub struct Database {
    session: Session,
}

impl Database {
    /// A fresh in-memory database (no durability).
    pub fn new_in_memory() -> Database {
        Database {
            session: Engine::in_memory().connect(),
        }
    }

    /// Open (or create) a durable database under `dir`, replaying the WAL.
    ///
    /// Heap contents are recovered from the log; **indexes are rebuilt**
    /// from the recovered heaps because — like PostgreSQL 7.4's GiST — our
    /// extensible index layer is not WAL-logged (§4.2.1 of the paper).
    pub fn open(dir: impl AsRef<Path>) -> Result<Database> {
        Self::open_with_extensions(dir, |_| Ok(()))
    }

    /// Like [`Database::open`], but runs `install` on the fresh instance
    /// *before* WAL replay.  Extension registration (types, operators,
    /// access methods) lives in code, not the WAL; any logged DDL that
    /// references extension types (`CREATE TABLE ... UNITEXT`) needs the
    /// extension present when it replays — the PostgreSQL analogue is that
    /// `CREATE EXTENSION` contents are part of the durable catalog.
    pub fn open_with_extensions(
        dir: impl AsRef<Path>,
        install: impl FnOnce(&mut Database) -> Result<()>,
    ) -> Result<Database> {
        Self::open_with_extensions_and_backend(dir, install, |b| b)
    }

    /// Like [`Database::open_with_extensions`], with a hook that may wrap
    /// the storage backend (the fault-injection harness interposes a
    /// `FaultyBackend` here).
    ///
    /// Recovery sequence:
    /// 1. If a `CHECKPOINT` pointer exists, verify and load its snapshot,
    ///    and replace the data directory with the checkpoint's heap copies
    ///    (the live heaps may contain post-snapshot effects — the buffer
    ///    pool steals — so they are never trusted).  Otherwise clear the
    ///    heaps: full replay starts from empty.
    /// 2. Install extensions, then restore the catalog from the snapshot
    ///    (all table slots in id order, dead ones included, so replayed
    ///    DDL re-assigns identical table ids).
    /// 3. Stream the WAL tail, applying records with LSN beyond the
    ///    snapshot.  A torn tail ends replay silently; mid-log corruption
    ///    or a record that fails to apply aborts with the LSN/offset.
    /// 4. Rebuild indexes from the heaps (not WAL-logged — §4.2.1).
    /// 5. Attach the WAL for logging (group-commit `fsync` mode).
    pub fn open_with_extensions_and_backend(
        dir: impl AsRef<Path>,
        install: impl FnOnce(&mut Database) -> Result<()>,
        wrap: impl FnOnce(Box<dyn StorageBackend>) -> Box<dyn StorageBackend>,
    ) -> Result<Database> {
        let root = dir.as_ref();
        std::fs::create_dir_all(root)?;
        let wal_path = snapshot::wal_path(root);
        let data = snapshot::data_dir(root);
        let checkpoint = snapshot::read_pointer(root)?;
        let snap = match &checkpoint {
            Some(chk) => {
                let s = snapshot::load_snapshot(chk)?;
                snapshot::restore_data_dir(root, chk)?;
                crate::obs::metrics().recovery_snapshot_restores_total.inc();
                Some(s)
            }
            None => {
                snapshot::clear_data_dir(&data)?;
                None
            }
        };
        let base_lsn = snap.as_ref().map_or(0, |s| s.lsn);
        // The engine starts WAL-less, so nothing below re-logs; the WAL is
        // attached once replay completes.
        let backend = wrap(Box::new(FileBackend::open(&data)?));
        let engine = Engine::with_backend(backend);
        let mut db = Database {
            session: engine.connect(),
        };
        install(&mut db)?;
        if let Some(s) = &snap {
            let mut catalog = engine.catalog_mut();
            for t in &s.tables {
                let schema = Snapshot::resolve_schema(&catalog, &t.columns)?;
                let heap = HeapFile::attach(FileId(t.heap_file));
                catalog.restore_table(&t.name, schema, heap, t.live)?;
            }
            for i in &s.indexes {
                let table_name = catalog.table_by_id(TableId(i.table_id))?.name.clone();
                catalog.create_index(&table_name, &i.name, i.column as usize, &i.am)?;
            }
        }
        // Replay the tail in two passes.  Pass 1 collects the ids of
        // transactions whose Commit record made it to disk — a DML record
        // in the tail is only as durable as its transaction's Commit, so
        // work from transactions still open at the crash (or whose Commit
        // was torn off the end) must be dropped, not applied.
        let committed: std::collections::HashSet<u64> = {
            let mut committed = std::collections::HashSet::new();
            if let Some(mut reader) = WalReader::open(&wal_path)? {
                while let Some((lsn, rec)) = reader.next_record()? {
                    if lsn <= base_lsn {
                        continue;
                    }
                    if let WalRecord::Commit { txn } = rec {
                        committed.insert(txn);
                    }
                }
            }
            committed
        };
        // Pass 2: DDL records carry the original SQL; DML records carry
        // tuple bytes addressed by table id (creation order = id order,
        // which the snapshot's dead slots preserve).  `txn == 0` marks a
        // record committed at append time (pre-MVCC logs and synthetic
        // test records); anything else needs its Commit from pass 1.
        if let Some(mut reader) = WalReader::open(&wal_path)? {
            loop {
                let offset = reader.offset();
                let Some((lsn, rec)) = reader.next_record()? else {
                    break;
                };
                if lsn <= base_lsn {
                    // Already covered by the snapshot (a crash between
                    // checkpoint-pointer commit and WAL truncation leaves
                    // these behind).
                    continue;
                }
                let skip = match &rec {
                    WalRecord::Commit { .. } | WalRecord::Abort { .. } => true,
                    WalRecord::Insert { txn, .. } | WalRecord::Delete { txn, .. } => {
                        *txn != 0 && !committed.contains(txn)
                    }
                    WalRecord::Ddl { .. } => false,
                };
                if skip {
                    continue;
                }
                Self::apply_record(&mut db, rec).map_err(|e| Error::Replay {
                    lsn,
                    offset,
                    source: Box::new(e),
                })?;
                crate::obs::metrics().recovery_replayed_records_total.inc();
            }
        }
        if snap.is_some() {
            // Snapshot restore registered the index *definitions* only;
            // build the structures from the recovered heaps.  (The full-
            // replay path rebuilt them naturally by re-running DDL + DML.)
            rebuild_indexes(&mut db)?;
        }
        let wal = Wal::open(&wal_path, base_lsn)?;
        engine.attach_durability(
            Arc::new(SharedWal::new(wal, SyncMode::Fsync)),
            Some(root.to_path_buf()),
        );
        Ok(db)
    }

    fn apply_record(db: &mut Database, rec: WalRecord) -> Result<()> {
        match rec {
            WalRecord::Ddl { sql } => {
                db.execute(&sql)?;
            }
            WalRecord::Insert {
                table_id, tuple, ..
            } => {
                let (name, arity) = {
                    let catalog = db.catalog();
                    let meta = catalog.table_by_id(TableId(table_id))?;
                    (meta.name.clone(), meta.schema.len())
                };
                let row = decode_row(&tuple, arity)?;
                db.insert_row(&name, row)?;
            }
            WalRecord::Delete {
                table_id, tuple, ..
            } => {
                let name = db.catalog().table_by_id(TableId(table_id))?.name.clone();
                db.session.delete_matching_tuple(&name, &tuple)?;
            }
            // Pass 2 filters these out before `apply_record`; they carry
            // no heap effects of their own.
            WalRecord::Commit { .. } | WalRecord::Abort { .. } => {}
        }
        Ok(())
    }

    /// The shared engine behind this database.
    pub fn engine(&self) -> &Arc<Engine> {
        self.session.engine()
    }

    /// Open another session against the same engine.  The new session
    /// starts from a copy of this database's session variables, so
    /// extension defaults (e.g. `lexequal.threshold`) carry over.
    pub fn connect(&self) -> Session {
        self.session
            .engine()
            .connect_with_vars(self.session.vars().clone())
    }

    /// Shared catalog access.  Returns a read guard: keep it short-lived —
    /// DDL from any session blocks while it is held.
    pub fn catalog(&self) -> RwLockReadGuard<'_, Catalog> {
        self.session.engine().catalog()
    }

    /// Exclusive catalog access for extension registration (types,
    /// operators, functions, access methods) — the `CREATE EXTENSION`
    /// equivalent.  Flushes the plan cache.
    pub fn catalog_mut(&mut self) -> RwLockWriteGuard<'_, Catalog> {
        self.session.engine().catalog_mut()
    }

    /// The buffer pool (benches read I/O statistics from here).
    pub fn pool(&self) -> &BufferPool {
        self.session.engine().pool()
    }

    /// Session variables.
    pub fn session(&self) -> &SessionVars {
        self.session.vars()
    }

    /// Mutable session variables.
    pub fn session_mut(&mut self) -> &mut SessionVars {
        self.session.vars_mut()
    }

    /// Execute one SQL statement.
    pub fn execute(&mut self, sql_text: &str) -> Result<QueryResult> {
        self.session.execute(sql_text)
    }

    /// Convenience: execute and return rows.
    pub fn query(&mut self, sql_text: &str) -> Result<Vec<Row>> {
        self.session.query(sql_text)
    }

    /// Execute a semicolon-separated script; returns the result of the
    /// last statement.  Quotes are respected when splitting; a failing
    /// statement is reported with its ordinal and SQL snippet.
    pub fn execute_script(&mut self, script: &str) -> Result<QueryResult> {
        self.session.execute_script(script)
    }

    /// Read-only query through a shared reference: safe to call from
    /// multiple threads concurrently; only `SELECT` is accepted.
    pub fn query_ref(&self, sql_text: &str) -> Result<Vec<Row>> {
        self.session.query_ref(sql_text)
    }

    /// Plan a SELECT without executing it (benches compare predicted cost
    /// against measured runtime — Figure 6).
    pub fn plan_select(&self, sql_text: &str) -> Result<PhysNode> {
        self.session.plan_select(sql_text)
    }

    /// Insert a pre-evaluated row (used by SQL INSERT, recovery, and bulk
    /// loaders).  Applies type checks, extension `on_insert` transforms
    /// (phoneme materialization), index maintenance and WAL logging.
    pub fn insert_row(&mut self, table: &str, row: Row) -> Result<()> {
        self.session.insert_row(table, row)
    }

    /// ANALYZE: rebuild table and per-column statistics from a full pass.
    pub fn analyze(&mut self, table: &str) -> Result<()> {
        self.session.analyze(table)
    }

    /// Refresh optimizer statistics on every user table (bare `ANALYZE`),
    /// clearing any stale-statistics advisories for this engine.
    pub fn analyze_all(&mut self) -> Result<()> {
        self.session.analyze_all()
    }

    /// Checkpoint: flush heaps, persist a catalog snapshot + heap copies
    /// under the database root, and truncate the WAL.  Reopen cost after a
    /// checkpoint is bounded by post-checkpoint activity, not total
    /// history.  In-memory databases just flush.
    pub fn checkpoint(&mut self) -> Result<()> {
        self.session.engine().checkpoint()
    }
}

/// Rebuild all indexes from their heaps (crash-recovery path for the
/// non-WAL-logged index layer; also used by tests to verify index
/// consistency).
pub fn rebuild_indexes(db: &mut Database) -> Result<()> {
    let engine = Arc::clone(db.engine());
    let catalog = engine.catalog();
    let pool = engine.pool();
    for meta in catalog.tables() {
        let arity = meta.schema.len();
        for idx in catalog.indexes_of(meta.id) {
            let am = catalog
                .access_method(&idx.am)
                .ok_or_else(|| Error::Catalog(format!("no access method {:?}", idx.am)))?;
            let mut fresh = am.create()?;
            let mut scan_err = None;
            // Index every version regardless of visibility (same policy
            // as CREATE INDEX back-fill): scans filter through their
            // snapshot, and a version invisible now may be the one a
            // later snapshot needs to reach.
            meta.heap.scan(pool, |tid, bytes| {
                match split_version(bytes).and_then(|(_, _, rest)| decode_row(rest, arity)) {
                    Ok(row) => {
                        if let Err(e) = fresh.insert(&row[idx.column], tid) {
                            scan_err = Some(e);
                            return false;
                        }
                    }
                    Err(e) => {
                        scan_err = Some(e);
                        return false;
                    }
                }
                true
            })?;
            if let Some(e) = scan_err {
                return Err(e);
            }
            *idx.instance.write() = fresh;
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::value::Datum;

    fn db() -> Database {
        Database::new_in_memory()
    }

    #[test]
    fn create_insert_select_roundtrip() {
        let mut db = db();
        db.execute("CREATE TABLE t (id INT, name TEXT, price FLOAT)")
            .unwrap();
        db.execute("INSERT INTO t VALUES (1, 'one', 1.5), (2, 'two', 2.5)")
            .unwrap();
        let r = db.execute("SELECT name FROM t WHERE id = 2").unwrap();
        assert_eq!(r.rows.len(), 1);
        assert_eq!(r.rows[0][0].as_text(), Some("two"));
    }

    #[test]
    fn count_star_and_where() {
        let mut db = db();
        db.execute("CREATE TABLE t (id INT)").unwrap();
        for i in 0..25 {
            db.execute(&format!("INSERT INTO t VALUES ({i})")).unwrap();
        }
        let r = db.execute("SELECT count(*) FROM t WHERE id >= 20").unwrap();
        assert!(r.rows[0][0].eq_sql(&Datum::Int(5)));
    }

    #[test]
    fn join_query() {
        let mut db = db();
        db.execute("CREATE TABLE a (id INT, x TEXT)").unwrap();
        db.execute("CREATE TABLE b (id INT, y TEXT)").unwrap();
        db.execute("INSERT INTO a VALUES (1, 'a1'), (2, 'a2')")
            .unwrap();
        db.execute("INSERT INTO b VALUES (2, 'b2'), (3, 'b3')")
            .unwrap();
        let r = db
            .execute("SELECT a.x, b.y FROM a, b WHERE a.id = b.id")
            .unwrap();
        assert_eq!(r.rows.len(), 1);
        assert_eq!(r.rows[0][0].as_text(), Some("a2"));
        assert_eq!(r.rows[0][1].as_text(), Some("b2"));
    }

    #[test]
    fn explicit_join_syntax() {
        let mut db = db();
        db.execute("CREATE TABLE a (id INT)").unwrap();
        db.execute("CREATE TABLE b (id INT)").unwrap();
        db.execute("INSERT INTO a VALUES (1), (2), (3)").unwrap();
        db.execute("INSERT INTO b VALUES (2), (3), (4)").unwrap();
        let r = db
            .execute("SELECT count(*) FROM a JOIN b ON a.id = b.id")
            .unwrap();
        assert!(r.rows[0][0].eq_sql(&Datum::Int(2)));
    }

    #[test]
    fn group_by_and_order_by() {
        let mut db = db();
        db.execute("CREATE TABLE t (k TEXT, v INT)").unwrap();
        db.execute("INSERT INTO t VALUES ('a', 1), ('a', 2), ('b', 5)")
            .unwrap();
        let r = db
            .execute("SELECT k, count(*), sum(v) FROM t GROUP BY k")
            .unwrap();
        assert_eq!(r.rows.len(), 2);
        let r2 = db
            .execute("SELECT v FROM t ORDER BY v DESC LIMIT 2")
            .unwrap();
        assert!(r2.rows[0][0].eq_sql(&Datum::Int(5)));
        assert_eq!(r2.rows.len(), 2);
    }

    #[test]
    fn delete_and_recount() {
        let mut db = db();
        db.execute("CREATE TABLE t (id INT)").unwrap();
        db.execute("INSERT INTO t VALUES (1), (2), (3)").unwrap();
        let r = db.execute("DELETE FROM t WHERE id < 3").unwrap();
        assert_eq!(r.affected, 2);
        let r = db.execute("SELECT count(*) FROM t").unwrap();
        assert!(r.rows[0][0].eq_sql(&Datum::Int(1)));
    }

    #[test]
    fn btree_index_used_for_point_query() {
        let mut db = db();
        db.execute("CREATE TABLE t (id INT, v TEXT)").unwrap();
        for i in 0..2000 {
            db.execute(&format!("INSERT INTO t VALUES ({i}, 'v{i}')"))
                .unwrap();
        }
        db.execute("CREATE INDEX t_id ON t (id) USING btree")
            .unwrap();
        db.execute("ANALYZE t").unwrap();
        let plan = db.execute("EXPLAIN SELECT v FROM t WHERE id = 77").unwrap();
        let text = plan.explain.unwrap();
        assert!(text.contains("Index Scan"), "plan was:\n{text}");
        let r = db.execute("SELECT v FROM t WHERE id = 77").unwrap();
        assert_eq!(r.rows.len(), 1);
        assert_eq!(r.rows[0][0].as_text(), Some("v77"));
    }

    #[test]
    fn set_and_show() {
        let mut db = db();
        db.execute("SET lexequal.threshold = 3").unwrap();
        let r = db.execute("SHOW lexequal.threshold").unwrap();
        assert_eq!(r.rows[0][0].as_text(), Some("3"));
    }

    #[test]
    fn analyze_populates_stats() {
        let mut db = db();
        db.execute("CREATE TABLE t (id INT)").unwrap();
        for i in 0..500 {
            db.execute(&format!("INSERT INTO t VALUES ({})", i % 50))
                .unwrap();
        }
        db.execute("ANALYZE t").unwrap();
        let catalog = db.catalog();
        let meta = catalog.table("t").unwrap();
        let stats = meta.stats.lock().clone();
        assert_eq!(stats.rows, 500);
        assert!(stats.pages >= 1);
        let col = stats.column(0).unwrap();
        assert!((col.n_distinct - 50.0).abs() < 1e-9);
    }

    #[test]
    fn explain_returns_plan_text() {
        let mut db = db();
        db.execute("CREATE TABLE t (id INT)").unwrap();
        let r = db
            .execute("EXPLAIN SELECT count(*) FROM t WHERE id = 1")
            .unwrap();
        let text = r.explain.unwrap();
        assert!(text.contains("Aggregate"));
        assert!(text.contains("Seq Scan"));
    }

    #[test]
    fn durable_database_recovers() {
        let dir = std::env::temp_dir().join(format!("mlql-db-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        {
            let mut db = Database::open(&dir).unwrap();
            db.execute("CREATE TABLE t (id INT, name TEXT)").unwrap();
            db.execute("CREATE INDEX t_id ON t (id) USING btree")
                .unwrap();
            db.execute("INSERT INTO t VALUES (1, 'one'), (2, 'two')")
                .unwrap();
            db.execute("DELETE FROM t WHERE id = 1").unwrap();
        } // crash (no clean shutdown needed)
        let mut db = Database::open(&dir).unwrap();
        let r = db.execute("SELECT name FROM t").unwrap();
        assert_eq!(r.rows.len(), 1);
        assert_eq!(r.rows[0][0].as_text(), Some("two"));
        // The index was rebuilt during replay and is usable.
        let r = db.execute("SELECT name FROM t WHERE id = 2").unwrap();
        assert_eq!(r.rows.len(), 1);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn runtime_stats_reported() {
        let mut db = db();
        db.execute("CREATE TABLE t (id INT)").unwrap();
        for i in 0..100 {
            db.execute(&format!("INSERT INTO t VALUES ({i})")).unwrap();
        }
        let r = db.execute("SELECT count(*) FROM t").unwrap();
        assert!(r.stats.io.logical_reads > 0);
        assert!(r.stats.est_cost.unwrap() > 0.0);
    }

    #[test]
    fn insert_type_checks() {
        let mut db = db();
        db.execute("CREATE TABLE t (id INT, name TEXT)").unwrap();
        assert!(db.execute("INSERT INTO t VALUES ('oops', 3)").is_err());
        assert!(db.execute("INSERT INTO t VALUES (1)").is_err());
        // Int widens into float columns.
        db.execute("CREATE TABLE f (x FLOAT)").unwrap();
        db.execute("INSERT INTO f VALUES (3)").unwrap();
    }

    #[test]
    fn index_rebuild_helper() {
        let mut db = db();
        db.execute("CREATE TABLE t (id INT)").unwrap();
        db.execute("CREATE INDEX t_id ON t (id) USING btree")
            .unwrap();
        db.execute("INSERT INTO t VALUES (1), (2)").unwrap();
        rebuild_indexes(&mut db).unwrap();
        let r = db.execute("SELECT count(*) FROM t WHERE id = 1").unwrap();
        assert!(r.rows[0][0].eq_sql(&Datum::Int(1)));
    }

    #[test]
    fn connect_opens_independent_sessions() {
        let mut db = db();
        db.execute("CREATE TABLE t (id INT)").unwrap();
        db.execute("INSERT INTO t VALUES (1), (2)").unwrap();
        db.execute("SET max_rows = 99").unwrap();
        let mut other = db.connect();
        // Vars are copied at connect time, then diverge.
        assert_eq!(other.vars().get_int("max_rows", 0), 99);
        other.execute("SET max_rows = 1").unwrap();
        assert_eq!(db.session().get_int("max_rows", 0), 99);
        // Both see the shared data.
        let n = other.query("SELECT count(*) FROM t").unwrap();
        assert_eq!(n[0][0].as_int(), Some(2));
    }
}

#[cfg(test)]
mod dml_tests {
    use super::*;

    #[test]
    fn update_basic_and_filtered() {
        let mut db = Database::new_in_memory();
        db.execute("CREATE TABLE t (id INT, v TEXT)").unwrap();
        db.execute("INSERT INTO t VALUES (1,'a'), (2,'b'), (3,'c')")
            .unwrap();
        let r = db.execute("UPDATE t SET v = 'X' WHERE id >= 2").unwrap();
        assert_eq!(r.affected, 2);
        let rows = db.query("SELECT v FROM t ORDER BY id").unwrap();
        let vals: Vec<&str> = rows.iter().map(|r| r[0].as_text().unwrap()).collect();
        assert_eq!(vals, vec!["a", "X", "X"]);
        // Expression referencing the old row value.
        db.execute("UPDATE t SET id = id + 10").unwrap();
        let ids = db.query("SELECT id FROM t ORDER BY id").unwrap();
        assert_eq!(ids[0][0].as_int(), Some(11));
    }

    #[test]
    fn update_maintains_indexes() {
        let mut db = Database::new_in_memory();
        db.execute("CREATE TABLE t (id INT)").unwrap();
        db.execute("CREATE INDEX t_id ON t (id) USING btree")
            .unwrap();
        for i in 0..500 {
            db.execute(&format!("INSERT INTO t VALUES ({i})")).unwrap();
        }
        db.execute("ANALYZE t").unwrap();
        db.execute("UPDATE t SET id = 9999 WHERE id = 7").unwrap();
        db.execute("SET enable_seqscan = 0").unwrap();
        let gone = db.query("SELECT count(*) FROM t WHERE id = 7").unwrap();
        assert_eq!(gone[0][0].as_int(), Some(0));
        let there = db.query("SELECT count(*) FROM t WHERE id = 9999").unwrap();
        assert_eq!(there[0][0].as_int(), Some(1));
    }

    #[test]
    fn update_type_checks() {
        let mut db = Database::new_in_memory();
        db.execute("CREATE TABLE t (id INT)").unwrap();
        db.execute("INSERT INTO t VALUES (1)").unwrap();
        assert!(db.execute("UPDATE t SET id = 'nope'").is_err());
        // Row unchanged after the failed update.
        let r = db.query("SELECT id FROM t").unwrap();
        assert_eq!(r[0][0].as_int(), Some(1));
    }

    #[test]
    fn insert_select_copies_with_transform() {
        let mut db = Database::new_in_memory();
        db.execute("CREATE TABLE src (id INT, v TEXT)").unwrap();
        db.execute("CREATE TABLE dst (id INT, v TEXT)").unwrap();
        db.execute("INSERT INTO src VALUES (1,'a'), (2,'b'), (3,'c')")
            .unwrap();
        let r = db
            .execute("INSERT INTO dst SELECT id + 100, v FROM src WHERE id < 3")
            .unwrap();
        assert_eq!(r.affected, 2);
        let rows = db.query("SELECT id FROM dst ORDER BY id").unwrap();
        assert_eq!(rows[0][0].as_int(), Some(101));
        assert_eq!(rows[1][0].as_int(), Some(102));
    }

    #[test]
    fn insert_select_self_referencing_snapshot() {
        // INSERT INTO t SELECT FROM t must read a snapshot, not loop.
        let mut db = Database::new_in_memory();
        db.execute("CREATE TABLE t (id INT)").unwrap();
        db.execute("INSERT INTO t VALUES (1), (2)").unwrap();
        let r = db.execute("INSERT INTO t SELECT id + 10 FROM t").unwrap();
        assert_eq!(r.affected, 2);
        let n = db.query("SELECT count(*) FROM t").unwrap();
        assert_eq!(n[0][0].as_int(), Some(4));
    }
}

#[cfg(test)]
mod distinct_tests {
    use super::*;

    #[test]
    fn select_distinct_deduplicates() {
        let mut db = Database::new_in_memory();
        db.execute("CREATE TABLE t (v TEXT, n INT)").unwrap();
        db.execute("INSERT INTO t VALUES ('a',1), ('a',1), ('a',2), ('b',1)")
            .unwrap();
        let r = db.query("SELECT DISTINCT v FROM t").unwrap();
        assert_eq!(r.len(), 2);
        let r = db.query("SELECT DISTINCT v, n FROM t").unwrap();
        assert_eq!(r.len(), 3);
        // Plain select keeps duplicates.
        let r = db.query("SELECT v FROM t").unwrap();
        assert_eq!(r.len(), 4);
        // DISTINCT with WHERE composes.
        let r = db.query("SELECT DISTINCT v FROM t WHERE n = 1").unwrap();
        assert_eq!(r.len(), 2);
    }

    #[test]
    fn distinct_star_and_limit() {
        let mut db = Database::new_in_memory();
        db.execute("CREATE TABLE t (v INT)").unwrap();
        db.execute("INSERT INTO t VALUES (1), (1), (2), (2), (3)")
            .unwrap();
        let r = db.query("SELECT DISTINCT * FROM t").unwrap();
        assert_eq!(r.len(), 3);
        let r = db.query("SELECT DISTINCT v FROM t LIMIT 2").unwrap();
        assert_eq!(r.len(), 2);
    }
}

#[cfg(test)]
mod explain_analyze_tests {
    use super::*;

    #[test]
    fn explain_analyze_reports_actuals() {
        let mut db = Database::new_in_memory();
        db.execute("CREATE TABLE t (id INT)").unwrap();
        for i in 0..500 {
            db.execute(&format!("INSERT INTO t VALUES ({i})")).unwrap();
        }
        let r = db
            .execute("EXPLAIN ANALYZE SELECT count(*) FROM t WHERE id < 100")
            .unwrap();
        let text = r.explain.unwrap();
        assert!(text.contains("Seq Scan"), "{text}");
        assert!(text.contains("Actual: rows=1"), "{text}");
        assert!(text.contains("logical_reads="), "{text}");
    }

    #[test]
    fn execute_script_runs_statements_in_order() {
        let mut db = Database::new_in_memory();
        let last = db
            .execute_script(
                "CREATE TABLE t (v TEXT); \
                 INSERT INTO t VALUES ('a;b'); -- semicolon inside a string\n \
                 INSERT INTO t VALUES ('c'); \
                 SELECT count(*) FROM t",
            )
            .unwrap();
        assert_eq!(last.rows[0][0].as_int(), Some(2));
        let v = db.query("SELECT v FROM t ORDER BY v LIMIT 1").unwrap();
        assert_eq!(v[0][0].as_text(), Some("a;b"));
    }
}

#[cfg(test)]
mod join_strategy_tests {
    use super::*;
    use crate::value::Datum;

    /// All join strategies (hash, NL materialized, NL rescanning) must
    /// return identical results; force each with the enable flags.
    #[test]
    fn join_strategies_agree() {
        let mut db = Database::new_in_memory();
        db.execute("CREATE TABLE a (id INT, v TEXT)").unwrap();
        db.execute("CREATE TABLE b (id INT, w TEXT)").unwrap();
        for i in 0..200 {
            db.execute(&format!("INSERT INTO a VALUES ({}, 'a{i}')", i % 50))
                .unwrap();
        }
        for i in 0..80 {
            db.execute(&format!("INSERT INTO b VALUES ({}, 'b{i}')", i % 50))
                .unwrap();
        }
        db.execute("ANALYZE a").unwrap();
        db.execute("ANALYZE b").unwrap();
        let q = "SELECT count(*) FROM a, b WHERE a.id = b.id";

        let hash = db.query(q).unwrap()[0][0].clone();
        db.execute("SET enable_hashjoin = 0").unwrap();
        let plan = db.plan_select(q).unwrap().explain();
        assert!(plan.contains("Nested Loop"), "{plan}");
        let nl_mat = db.query(q).unwrap()[0][0].clone();
        db.execute("SET enable_material = 0").unwrap();
        let plan = db.plan_select(q).unwrap().explain();
        assert!(!plan.contains("materialized"), "{plan}");
        let nl_rescan = db.query(q).unwrap()[0][0].clone();
        assert!(hash.eq_sql(&nl_mat), "{hash} vs {nl_mat}");
        assert!(hash.eq_sql(&nl_rescan), "{hash} vs {nl_rescan}");
        // Sanity: the count is the expected 200*80/50 ≈ join on mod-50 keys.
        assert!(hash.eq_sql(&Datum::Int(320)));
    }

    /// Residual predicates on hash joins are re-checked per match.
    #[test]
    fn hash_join_residual_filter() {
        let mut db = Database::new_in_memory();
        db.execute("CREATE TABLE a (id INT, x INT)").unwrap();
        db.execute("CREATE TABLE b (id INT, y INT)").unwrap();
        for i in 0..100 {
            db.execute(&format!("INSERT INTO a VALUES ({i}, {})", i * 2))
                .unwrap();
            db.execute(&format!("INSERT INTO b VALUES ({i}, {})", i * 3))
                .unwrap();
        }
        db.execute("ANALYZE a").unwrap();
        db.execute("ANALYZE b").unwrap();
        let q = "SELECT count(*) FROM a, b WHERE a.id = b.id AND a.x < b.y";
        let plan = db.plan_select(q).unwrap().explain();
        assert!(plan.contains("Hash Join"), "{plan}");
        // x < y ⇔ 2i < 3i ⇔ i > 0 → 99 matches.
        let n = db.query(q).unwrap();
        assert!(n[0][0].eq_sql(&Datum::Int(99)));
    }
}

#[cfg(test)]
mod script_comment_tests {
    use super::*;

    #[test]
    fn comments_with_semicolons_do_not_split() {
        let mut db = Database::new_in_memory();
        let last = db
            .execute_script(
                "CREATE TABLE t (v INT); -- not a statement; really not\nINSERT INTO t VALUES (1); SELECT count(*) FROM t",
            )
            .unwrap();
        assert_eq!(last.rows[0][0].as_int(), Some(1));
    }
}
