//! Cost parameters and formulas.

use crate::catalog::{Catalog, SessionVars};
use crate::expr::Expr;

/// Cost parameters (PostgreSQL defaults).  All costs are in abstract units
/// where reading one sequential page costs 1.0.
#[derive(Debug, Clone, Copy)]
pub struct CostParams {
    /// Sequential page read.
    pub seq_page_cost: f64,
    /// Random page read.
    pub random_page_cost: f64,
    /// Per-tuple CPU processing.
    pub cpu_tuple_cost: f64,
    /// Per-operator/function CPU evaluation.
    pub cpu_operator_cost: f64,
}

impl Default for CostParams {
    fn default() -> Self {
        CostParams {
            seq_page_cost: 1.0,
            random_page_cost: 4.0,
            cpu_tuple_cost: 0.01,
            cpu_operator_cost: 0.0025,
        }
    }
}

impl CostParams {
    /// Per-tuple evaluation cost of a predicate, in cost units.  Built-in
    /// comparisons cost one `cpu_operator_cost`; extension operators report
    /// their own multiplier (ψ: the banded edit-distance work `k·l`,
    /// Table 3), scaled by the average operand width when known.
    pub fn predicate_cost(
        &self,
        expr: &Expr,
        catalog: &Catalog,
        session: &SessionVars,
        avg_width: f64,
    ) -> f64 {
        match expr {
            Expr::ExtOp {
                name, left, right, ..
            } => {
                let base = catalog
                    .operator(name)
                    .map(|op| (op.per_tuple_cost)(session, avg_width))
                    .unwrap_or(1.0);
                base * self.cpu_operator_cost
                    + self.predicate_cost(left, catalog, session, avg_width)
                    + self.predicate_cost(right, catalog, session, avg_width)
            }
            Expr::And(l, r) | Expr::Or(l, r) => {
                self.predicate_cost(l, catalog, session, avg_width)
                    + self.predicate_cost(r, catalog, session, avg_width)
            }
            Expr::Not(e) | Expr::IsNull(e) => {
                self.cpu_operator_cost + self.predicate_cost(e, catalog, session, avg_width)
            }
            Expr::Cmp { left, right, .. } | Expr::Arith { left, right, .. } => {
                self.cpu_operator_cost
                    + self.predicate_cost(left, catalog, session, avg_width)
                    + self.predicate_cost(right, catalog, session, avg_width)
            }
            Expr::Func { args, .. } => {
                self.cpu_operator_cost
                    + args
                        .iter()
                        .map(|a| self.predicate_cost(a, catalog, session, avg_width))
                        .sum::<f64>()
            }
            Expr::ColRef { .. } | Expr::Literal(_) => 0.0,
        }
    }

    /// Share of `cpu_tuple_cost` that models per-row Volcano pull
    /// dispatch — the part batch execution amortizes across a batch.
    /// The remainder (datum copies, predicate plumbing) is paid per row
    /// regardless of the execution mode.  The planner only applies the
    /// amortized formulas to scans whose filter actually has a
    /// vectorized kernel (an extension operator with a batch hook) —
    /// `Expr::eval_batch` falls back to scalar eval everywhere else, so
    /// there is no saving to model and plain-predicate plan choices
    /// stay exactly as they were.
    pub const DISPATCH_FRACTION: f64 = 0.5;

    /// Effective per-tuple CPU cost when the scan spine emits batches of
    /// `batch_size` rows: the dispatch share collapses to one payment
    /// per batch.  `batch_size == 1` reproduces the row-at-a-time cost
    /// exactly, so `SET enable_batch = 0` / `batch_size = 1` plans cost
    /// the same as before the batch spine existed.
    pub fn batch_tuple_cost(&self, batch_size: usize) -> f64 {
        let dispatch = self.cpu_tuple_cost * Self::DISPATCH_FRACTION;
        (self.cpu_tuple_cost - dispatch) + dispatch / (batch_size.max(1) as f64)
    }

    /// Sequential scan: `pages · seq_page_cost + rows · cpu_tuple_cost`
    /// plus per-row predicate cost.
    pub fn seq_scan(&self, pages: f64, rows: f64, per_row_pred: f64) -> f64 {
        pages * self.seq_page_cost + rows * (self.cpu_tuple_cost + per_row_pred)
    }

    /// [`Self::seq_scan`] with the per-tuple term amortized for a
    /// batch-at-a-time spine emitting `batch_size`-row batches.
    pub fn seq_scan_batched(
        &self,
        pages: f64,
        rows: f64,
        per_row_pred: f64,
        batch_size: usize,
    ) -> f64 {
        pages * self.seq_page_cost + rows * (self.batch_tuple_cost(batch_size) + per_row_pred)
    }

    /// Startup charge of a parallel scan (worker dispatch + gather), in
    /// cost units.  Roughly a thousand tuples' worth of CPU — enough that
    /// point lookups never go parallel on cost grounds alone.
    pub const PARALLEL_STARTUP_COST: f64 = 10.0;

    /// Fraction of linear speedup a worker actually delivers (channel
    /// traffic, morsel-claim contention, skewed tails).
    pub const PARALLEL_EFFICIENCY: f64 = 0.85;

    /// Morsel-driven parallel scan: the I/O term is unchanged (one buffer
    /// pool), the CPU term divides across `workers` at
    /// [`Self::PARALLEL_EFFICIENCY`], and a flat startup charge covers
    /// dispatch + gather.  With the ψ predicate's large `per_row_pred`
    /// (Table 3's edit-distance work) the CPU term dominates, which is
    /// exactly when parallelism wins.
    pub fn parallel_seq_scan(
        &self,
        pages: f64,
        rows: f64,
        per_row_pred: f64,
        workers: usize,
    ) -> f64 {
        let effective = (workers.max(1) as f64) * Self::PARALLEL_EFFICIENCY;
        pages * self.seq_page_cost
            + rows * (self.cpu_tuple_cost + per_row_pred) / effective
            + Self::PARALLEL_STARTUP_COST
    }

    /// [`Self::parallel_seq_scan`] with the per-tuple term amortized for
    /// batch-at-a-time morsels (workers filter whole pages per
    /// `eval_batch` call, the gather drains batches).
    pub fn parallel_seq_scan_batched(
        &self,
        pages: f64,
        rows: f64,
        per_row_pred: f64,
        workers: usize,
        batch_size: usize,
    ) -> f64 {
        let effective = (workers.max(1) as f64) * Self::PARALLEL_EFFICIENCY;
        pages * self.seq_page_cost
            + rows * (self.batch_tuple_cost(batch_size) + per_row_pred) / effective
            + Self::PARALLEL_STARTUP_COST
    }

    /// Index scan: descend + traverse `index_pages` randomly (paying
    /// `traversal_cpu` for the key/distance comparisons along the way —
    /// for an approximate index at a saturating threshold this approaches
    /// the sequential scan's full predicate work, which is the §5.3
    /// "marginal effectiveness" regime), then fetch `matched` heap tuples
    /// (random I/O each) and re-check.
    pub fn index_scan(
        &self,
        index_pages: f64,
        traversal_cpu: f64,
        matched: f64,
        per_row_pred: f64,
    ) -> f64 {
        index_pages * self.random_page_cost
            + traversal_cpu
            + matched * (self.random_page_cost + self.cpu_tuple_cost + per_row_pred)
    }

    /// Nested-loops join with a materialized inner.
    pub fn nl_join_materialized(
        &self,
        outer_cost: f64,
        inner_cost: f64,
        outer_rows: f64,
        inner_rows: f64,
        per_pair_pred: f64,
    ) -> f64 {
        outer_cost
            + inner_cost
            + inner_rows * self.cpu_tuple_cost // materialization write
            + outer_rows * inner_rows * (self.cpu_tuple_cost + per_pair_pred)
    }

    /// Nested-loops join re-scanning the inner plan per outer row.
    pub fn nl_join_rescan(
        &self,
        outer_cost: f64,
        inner_cost: f64,
        outer_rows: f64,
        inner_rows: f64,
        per_pair_pred: f64,
    ) -> f64 {
        outer_cost
            + outer_rows.max(1.0) * inner_cost
            + outer_rows * inner_rows * (self.cpu_tuple_cost + per_pair_pred)
    }

    /// Hash join (build right, probe left).
    pub fn hash_join(
        &self,
        left_cost: f64,
        right_cost: f64,
        left_rows: f64,
        right_rows: f64,
        out_rows: f64,
        per_pair_pred: f64,
    ) -> f64 {
        left_cost
            + right_cost
            + right_rows * (self.cpu_tuple_cost + self.cpu_operator_cost) // build
            + left_rows * self.cpu_operator_cost // probe hashing
            + out_rows * (self.cpu_tuple_cost + per_pair_pred)
    }

    /// Sort cost: `n log n` comparisons.
    pub fn sort(&self, input_cost: f64, rows: f64) -> f64 {
        let n = rows.max(2.0);
        input_cost + n * n.log2() * self.cpu_operator_cost * 2.0
    }

    /// Aggregate cost.
    pub fn aggregate(&self, input_cost: f64, rows: f64, n_aggs: usize) -> f64 {
        input_cost + rows * self.cpu_operator_cost * (n_aggs.max(1) as f64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::catalog::{Catalog, ExtOperator, OperatorKind};
    use crate::expr::CmpOp;
    use crate::value::{DataType, Datum};
    use std::sync::Arc;

    #[test]
    fn seq_scan_scales_with_pages_and_rows() {
        let p = CostParams::default();
        assert!(p.seq_scan(100.0, 1000.0, 0.0) > p.seq_scan(10.0, 100.0, 0.0));
        assert_eq!(p.seq_scan(1.0, 0.0, 0.0), 1.0);
    }

    #[test]
    fn batch_tuple_cost_amortizes_dispatch() {
        let p = CostParams::default();
        let close = |a: f64, b: f64| (a - b).abs() < 1e-9;
        // batch_size = 1 reproduces the row-at-a-time cost.
        assert!(close(p.batch_tuple_cost(1), p.cpu_tuple_cost));
        assert!(close(p.batch_tuple_cost(0), p.cpu_tuple_cost));
        // Larger batches amortize the dispatch share monotonically,
        // bounded below by the non-dispatch share.
        assert!(p.batch_tuple_cost(64) < p.batch_tuple_cost(1));
        assert!(p.batch_tuple_cost(1024) < p.batch_tuple_cost(64));
        let floor = p.cpu_tuple_cost * (1.0 - CostParams::DISPATCH_FRACTION);
        assert!(p.batch_tuple_cost(4096) > floor);
        // Scan formulas agree at batch_size = 1.
        assert!(close(
            p.seq_scan_batched(100.0, 1000.0, 0.02, 1),
            p.seq_scan(100.0, 1000.0, 0.02)
        ));
        assert!(close(
            p.parallel_seq_scan_batched(100.0, 1000.0, 0.02, 4, 1),
            p.parallel_seq_scan(100.0, 1000.0, 0.02, 4)
        ));
        assert!(p.seq_scan_batched(100.0, 1000.0, 0.02, 1024) < p.seq_scan(100.0, 1000.0, 0.02));
    }

    #[test]
    fn index_scan_cheaper_than_seq_for_selective_probe() {
        let p = CostParams::default();
        // 1000-page table, 100k rows; index probe touching 3 pages, 10 rows.
        let seq = p.seq_scan(1000.0, 100_000.0, p.cpu_operator_cost);
        let idx = p.index_scan(3.0, 0.1, 10.0, p.cpu_operator_cost);
        assert!(idx < seq / 10.0);
    }

    #[test]
    fn rescan_nl_join_dominates_materialized() {
        let p = CostParams::default();
        let mat = p.nl_join_materialized(100.0, 100.0, 1000.0, 1000.0, 0.01);
        let rescan = p.nl_join_rescan(100.0, 100.0, 1000.0, 1000.0, 0.01);
        assert!(rescan > mat, "rescan {rescan} vs materialized {mat}");
    }

    #[test]
    fn ext_operator_cost_flows_through_predicates() {
        let mut cat = Catalog::new();
        cat.register_operator(ExtOperator {
            name: "pricey".into(),
            operand_type: DataType::Text,
            eval: Arc::new(|_, _, _| Ok(Datum::Bool(true))),
            eval_batch: None,
            kind: OperatorKind {
                commutative: true,
                distributes_over_union: true,
            },
            per_tuple_cost: Arc::new(|_, w| 50.0 * w),
            selectivity: Arc::new(|_| 0.1),
            index_strategy: None,
            index_extra: None,
            modifier_filter: None,
            index_scan_fraction: None,
            strategy_label: None,
        });
        let p = CostParams::default();
        let sess = SessionVars::new();
        let cheap = Expr::Cmp {
            op: CmpOp::Eq,
            left: Box::new(Expr::int(1)),
            right: Box::new(Expr::int(2)),
        };
        let pricey = Expr::ExtOp {
            name: "pricey".into(),
            left: Box::new(Expr::text("a")),
            right: Box::new(Expr::text("b")),
            modifiers: vec![],
        };
        let c_cheap = p.predicate_cost(&cheap, &cat, &sess, 10.0);
        let c_pricey = p.predicate_cost(&pricey, &cat, &sess, 10.0);
        assert!(c_pricey > c_cheap * 100.0, "{c_pricey} vs {c_cheap}");
    }
}
