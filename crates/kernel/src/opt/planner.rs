//! Plan enumeration: access-path selection and left-deep join ordering.
//!
//! PostgreSQL-style `enable_*` session flags (`enable_seqscan`,
//! `enable_indexscan`, `enable_hashjoin`, `enable_nestloop`,
//! `enable_material`) let experiments force plans the way the paper did in
//! §5.2.1; a disabled path is penalized with a huge constant rather than
//! removed, so a plan always exists.

use crate::catalog::{Catalog, SessionVars, TableMeta, TableStats};
use crate::error::{Error, Result};
use crate::expr::{CmpOp, EvalCtx, Expr};
use crate::opt::cost::CostParams;
use crate::opt::selectivity::{column_of, estimate};
use crate::plan::{LogicalPlan, PhysNode, PhysOp};
use crate::schema::Schema;
use crate::storage::BufferPool;
use crate::value::Datum;
use std::sync::Arc;

const DISABLED_COST: f64 = 1.0e10;

/// Minimum estimated row count before a parallel scan is considered:
/// below this, worker startup and gather overhead swamp the CPU savings
/// (and small-table EXPLAIN output stays stable).
const PARALLEL_MIN_ROWS: f64 = 1024.0;

/// Penalized-cost flag reader: `enable_* = 0` disables a path.
fn flag(session: &SessionVars, name: &str) -> bool {
    session.get_int(name, 1) != 0
}

/// One base relation of a join tree.
struct Rel {
    meta: Arc<TableMeta>,
    /// Column offset in the *bind-order* concatenated schema.
    offset: usize,
    stats: TableStats,
    /// Estimated live rows.
    rows: f64,
    /// Heap pages.
    pages: f64,
}

impl Rel {
    fn width(&self) -> usize {
        self.meta.schema.len()
    }
}

/// Plan a logical tree into a costed physical tree.
pub fn plan(
    logical: &LogicalPlan,
    catalog: &Catalog,
    pool: &BufferPool,
    session: &SessionVars,
) -> Result<PhysNode> {
    let params = CostParams::default();
    let p = Planner {
        catalog,
        pool,
        session,
        params,
    };
    p.plan_node(logical)
}

struct Planner<'a> {
    catalog: &'a Catalog,
    pool: &'a BufferPool,
    session: &'a SessionVars,
    params: CostParams,
}

impl Planner<'_> {
    fn plan_node(&self, logical: &LogicalPlan) -> Result<PhysNode> {
        match logical {
            LogicalPlan::Scan { .. } | LogicalPlan::Join { .. } | LogicalPlan::Filter { .. } => {
                // Try the join-tree path (scans/joins/filters only).
                if let Some((rels, conjuncts)) = self.extract_join_tree(logical)? {
                    return self.plan_join_tree(rels, conjuncts);
                }
                // Generic fallback: plan the input, put a filter on top.
                match logical {
                    LogicalPlan::Filter { input, predicate } => {
                        let predicate = &self.fold_constants(predicate);
                        let child = self.plan_node(input)?;
                        let origins = vec![None; child.schema.len()];
                        let sel = estimate(predicate, &origins, self.catalog, self.session);
                        let rows = (child.est_rows * sel).max(0.0);
                        let cost = child.est_cost
                            + child.est_rows
                                * self.params.predicate_cost(
                                    predicate,
                                    self.catalog,
                                    self.session,
                                    16.0,
                                );
                        let schema = child.schema.clone();
                        Ok(PhysNode {
                            op: PhysOp::Filter {
                                input: Box::new(child),
                                predicate: predicate.clone(),
                            },
                            est_rows: rows,
                            est_cost: cost,
                            schema,
                        })
                    }
                    other => Err(Error::Binder(format!("cannot plan {other:?}"))),
                }
            }
            LogicalPlan::Project {
                input,
                exprs,
                schema,
            } => {
                let child = self.plan_node(input)?;
                let cost = child.est_cost
                    + child.est_rows * self.params.cpu_tuple_cost * exprs.len().max(1) as f64;
                let rows = child.est_rows;
                let exprs: Vec<Expr> = exprs.iter().map(|e| self.fold_constants(e)).collect();
                Ok(PhysNode {
                    op: PhysOp::Project {
                        input: Box::new(child),
                        exprs,
                    },
                    est_rows: rows,
                    est_cost: cost,
                    schema: schema.clone(),
                })
            }
            LogicalPlan::Aggregate {
                input,
                group_by,
                aggs,
                schema,
            } => {
                let child = self.plan_node(input)?;
                let rows = if group_by.is_empty() {
                    1.0
                } else {
                    (child.est_rows * 0.1).max(1.0)
                };
                let cost = self
                    .params
                    .aggregate(child.est_cost, child.est_rows, aggs.len());
                Ok(PhysNode {
                    op: PhysOp::Aggregate {
                        input: Box::new(child),
                        group_by: group_by.clone(),
                        aggs: aggs.clone(),
                    },
                    est_rows: rows,
                    est_cost: cost,
                    schema: schema.clone(),
                })
            }
            LogicalPlan::Sort { input, keys } => {
                let child = self.plan_node(input)?;
                let cost = self.params.sort(child.est_cost, child.est_rows);
                let rows = child.est_rows;
                let schema = child.schema.clone();
                Ok(PhysNode {
                    op: PhysOp::Sort {
                        input: Box::new(child),
                        keys: keys.clone(),
                    },
                    est_rows: rows,
                    est_cost: cost,
                    schema,
                })
            }
            LogicalPlan::Limit { input, n } => {
                let child = self.plan_node(input)?;
                let rows = child.est_rows.min(*n as f64);
                let cost = child.est_cost;
                let schema = child.schema.clone();
                Ok(PhysNode {
                    op: PhysOp::Limit {
                        input: Box::new(child),
                        n: *n,
                    },
                    est_rows: rows,
                    est_cost: cost,
                    schema,
                })
            }
            LogicalPlan::Values { rows, schema } => Ok(PhysNode {
                op: PhysOp::Values { rows: rows.clone() },
                est_rows: rows.len() as f64,
                est_cost: rows.len() as f64 * self.params.cpu_tuple_cost,
                schema: schema.clone(),
            }),
        }
    }

    /// Flatten a tree of Scan/Join/Filter into base relations (bind order)
    /// plus WHERE conjuncts over the bind-order concatenated schema.
    /// Returns `None` when the shape contains anything else.
    fn extract_join_tree(&self, plan: &LogicalPlan) -> Result<Option<(Vec<Rel>, Vec<Expr>)>> {
        let mut rels = Vec::new();
        let mut conjuncts = Vec::new();
        if self.walk(plan, 0, &mut rels, &mut conjuncts)?.is_none() {
            return Ok(None);
        }
        Ok(Some((rels, conjuncts)))
    }

    /// Returns `Some(total_width)` on success.
    fn walk(
        &self,
        plan: &LogicalPlan,
        offset: usize,
        rels: &mut Vec<Rel>,
        conjuncts: &mut Vec<Expr>,
    ) -> Result<Option<usize>> {
        match plan {
            LogicalPlan::Scan { table, .. } => {
                let meta = self.catalog.table(table)?;
                let stats = meta.stats.lock().clone();
                let pages = self.pool.page_count(meta.heap.file_id())? as f64;
                let rows = if stats.rows > 0 {
                    stats.rows as f64
                } else {
                    // Not analyzed: PostgreSQL-style guess from pages.
                    (pages * 70.0).max(1.0)
                };
                let width = meta.schema.len();
                rels.push(Rel {
                    meta,
                    offset,
                    stats,
                    rows,
                    pages: pages.max(1.0),
                });
                Ok(Some(width))
            }
            LogicalPlan::Filter { input, predicate } => {
                let width = match self.walk(input, offset, rels, conjuncts)? {
                    Some(w) => w,
                    None => return Ok(None),
                };
                for c in split_conjuncts(predicate) {
                    conjuncts.push(self.fold_constants(&c.shift_columns(offset as isize)));
                }
                Ok(Some(width))
            }
            LogicalPlan::Join {
                left,
                right,
                predicate,
            } => {
                let lw = match self.walk(left, offset, rels, conjuncts)? {
                    Some(w) => w,
                    None => return Ok(None),
                };
                let rw = match self.walk(right, offset + lw, rels, conjuncts)? {
                    Some(w) => w,
                    None => return Ok(None),
                };
                if let Some(p) = predicate {
                    for c in split_conjuncts(p) {
                        conjuncts.push(self.fold_constants(&c.shift_columns(offset as isize)));
                    }
                }
                Ok(Some(lw + rw))
            }
            _ => Ok(None),
        }
    }

    /// Cost-based join ordering + access-path selection.
    fn plan_join_tree(&self, rels: Vec<Rel>, conjuncts: Vec<Expr>) -> Result<PhysNode> {
        // Global column-origin table (bind order) for selectivity.
        let total_width: usize = rels.iter().map(Rel::width).sum();
        let mut origins: Vec<Option<&crate::catalog::ColumnStats>> = vec![None; total_width];
        for rel in &rels {
            for (i, cs) in rel.stats.columns.iter().enumerate() {
                if let Some(cs) = cs {
                    origins[rel.offset + i] = Some(cs);
                }
            }
        }

        if rels.len() == 1 {
            let local: Vec<Expr> = conjuncts
                .iter()
                .map(|c| c.shift_columns(-(rels[0].offset as isize)))
                .collect();
            return self.best_scan(&rels[0], &local, &origins, rels[0].offset);
        }

        // Enumerate left-deep orders (all permutations up to 5 relations;
        // identity + greedy beyond that).  `SET force_join_order = 1` pins
        // the FROM-clause order — how the Figure 7 experiment forces the
        // paper's Plan 1 vs. Plan 2 comparison.
        let n = rels.len();
        let orders: Vec<Vec<usize>> = if self.session.get_int("force_join_order", 0) != 0 || n > 5 {
            vec![(0..n).collect()]
        } else {
            permutations(n)
        };
        let mut best: Option<PhysNode> = None;
        for order in orders {
            let candidate = self.build_order(&rels, &conjuncts, &origins, &order)?;
            if best
                .as_ref()
                .map(|b| candidate.est_cost < b.est_cost)
                .unwrap_or(true)
            {
                best = Some(candidate);
            }
        }
        let plan = best.expect("at least one order");
        // Restore bind-order column layout with a Project when the chosen
        // order differs from bind order (so downstream ColRefs stay valid).
        Ok(plan)
    }

    /// Build the left-deep plan for one relation order, with a final
    /// projection back to bind-order columns.
    fn build_order(
        &self,
        rels: &[Rel],
        conjuncts: &[Expr],
        origins: &[Option<&crate::catalog::ColumnStats>],
        order: &[usize],
    ) -> Result<PhysNode> {
        let mut remaining: Vec<Expr> = conjuncts.to_vec();

        // Local (single-relation) conjuncts feed the scans.
        let mut current: Option<PhysNode> = None;
        // For each bind-order global column index, its position in the
        // current intermediate schema (usize::MAX = not yet present).
        let total_width: usize = rels.iter().map(Rel::width).sum();
        let mut position = vec![usize::MAX; total_width];
        let mut placed_width = 0usize;

        for &ri in order {
            let rel = &rels[ri];
            // Pull out conjuncts local to this relation.
            let (local, rest): (Vec<Expr>, Vec<Expr>) = remaining.into_iter().partition(|c| {
                let cols = c.columns();
                !cols.is_empty()
                    && cols
                        .iter()
                        .all(|&c| c >= rel.offset && c < rel.offset + rel.width())
            });
            remaining = rest;
            let local_rebased: Vec<Expr> = local
                .iter()
                .map(|c| c.shift_columns(-(rel.offset as isize)))
                .collect();
            let scan = self.best_scan(rel, &local_rebased, origins, rel.offset)?;

            match current.take() {
                None => {
                    for i in 0..rel.width() {
                        position[rel.offset + i] = i;
                    }
                    placed_width = rel.width();
                    current = Some(scan);
                }
                Some(left) => {
                    // Register the new relation's columns.
                    for i in 0..rel.width() {
                        position[rel.offset + i] = placed_width + i;
                    }
                    let new_width = placed_width + rel.width();
                    // Conjuncts now fully available join left ⋈ rel.
                    let (applicable, rest): (Vec<Expr>, Vec<Expr>) = remaining
                        .into_iter()
                        .partition(|c| c.columns().iter().all(|&c| position[c] != usize::MAX));
                    remaining = rest;
                    let joined = self.best_join(
                        left,
                        scan,
                        rel,
                        &applicable,
                        origins,
                        &position,
                        placed_width,
                    )?;
                    placed_width = new_width;
                    current = Some(joined);
                }
            }
        }
        let mut node = current.expect("non-empty order");
        // Any leftover conjuncts (constants, e.g. WHERE 1 = 2).
        if !remaining.is_empty() {
            let pred = and_all(remaining.iter().map(|c| c.map_columns(&|i| position[i])));
            let origins_now = vec![None; node.schema.len()];
            let sel = estimate(&pred, &origins_now, self.catalog, self.session);
            let rows = node.est_rows * sel;
            let cost = node.est_cost;
            let schema = node.schema.clone();
            node = PhysNode {
                op: PhysOp::Filter {
                    input: Box::new(node),
                    predicate: pred,
                },
                est_rows: rows,
                est_cost: cost,
                schema,
            };
        }
        // Project back to bind order when scrambled.
        let identity = (0..total_width).all(|i| position[i] == i);
        if !identity {
            let mut exprs = Vec::with_capacity(total_width);
            let mut cols = Vec::with_capacity(total_width);
            for rel in rels {
                for (i, col) in rel.meta.schema.columns().iter().enumerate() {
                    exprs.push(Expr::ColRef {
                        index: position[rel.offset + i],
                        ty: col.ty,
                        name: col.name.clone(),
                    });
                    cols.push(col.clone());
                }
            }
            let rows = node.est_rows;
            let cost = node.est_cost + rows * self.params.cpu_tuple_cost;
            node = PhysNode {
                op: PhysOp::Project {
                    input: Box::new(node),
                    exprs,
                },
                est_rows: rows,
                est_cost: cost,
                schema: Schema::new(cols),
            };
        }
        Ok(node)
    }

    /// Choose the best join algorithm for `left ⋈ right_rel`.
    #[allow(clippy::too_many_arguments)]
    fn best_join(
        &self,
        left: PhysNode,
        right: PhysNode,
        right_rel: &Rel,
        applicable: &[Expr],
        origins: &[Option<&crate::catalog::ColumnStats>],
        position: &[usize],
        left_width: usize,
    ) -> Result<PhysNode> {
        let params = &self.params;
        let sel: f64 = applicable
            .iter()
            .map(|c| estimate(c, origins, self.catalog, self.session))
            .product();
        let out_rows = (left.est_rows * right.est_rows * sel).max(0.0);
        let schema = left.schema.join(&right.schema);

        // Remap conjuncts into the joined schema: left columns keep their
        // positions, the new relation's columns sit at left_width..
        let remap = |c: &Expr| {
            c.map_columns(&|i| {
                if i >= right_rel.offset && i < right_rel.offset + right_rel.width() {
                    left_width + (i - right_rel.offset)
                } else {
                    position[i]
                }
            })
        };
        let remapped: Vec<Expr> = applicable.iter().map(remap).collect();
        let per_pair: f64 = remapped
            .iter()
            .map(|c| {
                params.predicate_cost(c, self.catalog, self.session, avg_pred_width(right_rel))
            })
            .sum();

        // Hash-join candidate: find an equi-conjunct split across sides.
        // Track the equi-conjunct's own selectivity: residual predicates
        // (e.g. an expensive ψ) are evaluated on every *equi-match* pair,
        // not on the final output — charging them on the smaller output
        // cardinality would make residual-ψ plans look spuriously cheap.
        let mut hash_keys: Option<(Expr, Expr, Vec<Expr>, f64)> = None;
        for (i, c) in remapped.iter().enumerate() {
            if let Expr::Cmp {
                op: CmpOp::Eq,
                left: l,
                right: r,
            } = c
            {
                // Extension types define equality through their registered
                // comparator (UniText: text component only), which raw
                // Datum hashing cannot honour — hash-joining such keys
                // would silently drop cross-language matches.  Leave those
                // conjuncts to the nested-loops path, which evaluates the
                // comparison through the type's support function.
                let is_ext =
                    |e: &Expr| matches!(e.data_type(), Some(crate::value::DataType::Ext(_)));
                if is_ext(l) || is_ext(r) {
                    continue;
                }
                let (lc, rc) = (l.columns(), r.columns());
                let all_left = |cols: &[usize]| cols.iter().all(|&x| x < left_width);
                let all_right = |cols: &[usize]| cols.iter().all(|&x| x >= left_width);
                let pair = if !lc.is_empty() && !rc.is_empty() && all_left(&lc) && all_right(&rc) {
                    Some(((**l).clone(), r.shift_columns(-(left_width as isize))))
                } else if !lc.is_empty() && !rc.is_empty() && all_right(&lc) && all_left(&rc) {
                    Some(((**r).clone(), l.shift_columns(-(left_width as isize))))
                } else {
                    None
                };
                if let Some((lk, rk)) = pair {
                    let residual: Vec<Expr> = remapped
                        .iter()
                        .enumerate()
                        .filter(|&(j, _)| j != i)
                        .map(|(_, e)| e.clone())
                        .collect();
                    let eq_sel = estimate(&applicable[i], origins, self.catalog, self.session);
                    hash_keys = Some((lk, rk, residual, eq_sel));
                    break;
                }
            }
        }

        let mut best: Option<PhysNode> = None;
        let mut consider = |node: PhysNode| {
            if best
                .as_ref()
                .map(|b| node.est_cost < b.est_cost)
                .unwrap_or(true)
            {
                best = Some(node);
            }
        };

        if let Some((lk, rk, residual, eq_sel)) = hash_keys {
            // Residual predicates run once per equi-match pair.
            let eq_pairs = (left.est_rows * right.est_rows * eq_sel).max(out_rows);
            let residual_per_pair: f64 = residual
                .iter()
                .map(|c| {
                    params.predicate_cost(c, self.catalog, self.session, avg_pred_width(right_rel))
                })
                .sum();
            let mut cost = params.hash_join(
                left.est_cost,
                right.est_cost,
                left.est_rows,
                right.est_rows,
                eq_pairs,
                residual_per_pair,
            );
            if !flag(self.session, "enable_hashjoin") {
                cost += DISABLED_COST;
            }
            consider(PhysNode {
                op: PhysOp::HashJoin {
                    left: Box::new(left.clone()),
                    right: Box::new(right.clone()),
                    left_key: lk,
                    right_key: rk,
                    residual: if residual.is_empty() {
                        None
                    } else {
                        Some(and_all(residual))
                    },
                },
                est_rows: out_rows,
                est_cost: cost,
                schema: schema.clone(),
            });
        }

        // Nested loops, materialized inner.
        {
            let mut cost = params.nl_join_materialized(
                left.est_cost,
                right.est_cost,
                left.est_rows,
                right.est_rows,
                per_pair,
            );
            if !flag(self.session, "enable_nestloop") {
                cost += DISABLED_COST;
            }
            if !flag(self.session, "enable_material") {
                cost += DISABLED_COST;
            }
            consider(PhysNode {
                op: PhysOp::NlJoin {
                    outer: Box::new(left.clone()),
                    inner: Box::new(right.clone()),
                    predicate: if remapped.is_empty() {
                        None
                    } else {
                        Some(and_all(remapped.clone()))
                    },
                    materialize_inner: true,
                },
                est_rows: out_rows,
                est_cost: cost,
                schema: schema.clone(),
            });
        }

        // Nested loops, rescanned inner.
        {
            let mut cost = params.nl_join_rescan(
                left.est_cost,
                right.est_cost,
                left.est_rows,
                right.est_rows,
                per_pair,
            );
            if !flag(self.session, "enable_nestloop") {
                cost += DISABLED_COST;
            }
            consider(PhysNode {
                op: PhysOp::NlJoin {
                    outer: Box::new(left),
                    inner: Box::new(right),
                    predicate: if remapped.is_empty() {
                        None
                    } else {
                        Some(and_all(remapped))
                    },
                    materialize_inner: false,
                },
                est_rows: out_rows,
                est_cost: cost,
                schema,
            });
        }

        Ok(best.expect("at least one join strategy"))
    }

    /// Does `e` contain an extension operator with a registered batch
    /// hook (a vectorized kernel the batch spine can actually exploit)?
    fn expr_has_batch_kernel(&self, e: &Expr) -> bool {
        match e {
            Expr::ExtOp {
                name, left, right, ..
            } => {
                self.catalog
                    .operator(name)
                    .map(|op| op.eval_batch.is_some())
                    .unwrap_or(false)
                    || self.expr_has_batch_kernel(left)
                    || self.expr_has_batch_kernel(right)
            }
            Expr::And(l, r) | Expr::Or(l, r) => {
                self.expr_has_batch_kernel(l) || self.expr_has_batch_kernel(r)
            }
            Expr::Not(x) | Expr::IsNull(x) => self.expr_has_batch_kernel(x),
            Expr::Cmp { left, right, .. } | Expr::Arith { left, right, .. } => {
                self.expr_has_batch_kernel(left) || self.expr_has_batch_kernel(right)
            }
            Expr::Func { args, .. } => args.iter().any(|a| self.expr_has_batch_kernel(a)),
            Expr::ColRef { .. } | Expr::Literal(_) => false,
        }
    }

    /// First operator-supplied strategy label found in the expression
    /// tree (e.g. SemEQUAL's containment strategy): extension operators
    /// may register a `strategy_label` hook that renders a short,
    /// session-dependent note EXPLAIN attaches to the scan node.
    fn expr_strategy_label(&self, e: &Expr) -> Option<String> {
        match e {
            Expr::ExtOp {
                name, left, right, ..
            } => self
                .catalog
                .operator(name)
                .and_then(|op| op.strategy_label.as_ref().map(|f| f(self.session)))
                .or_else(|| self.expr_strategy_label(left))
                .or_else(|| self.expr_strategy_label(right)),
            Expr::And(l, r) | Expr::Or(l, r) => self
                .expr_strategy_label(l)
                .or_else(|| self.expr_strategy_label(r)),
            Expr::Not(x) | Expr::IsNull(x) => self.expr_strategy_label(x),
            Expr::Cmp { left, right, .. } | Expr::Arith { left, right, .. } => self
                .expr_strategy_label(left)
                .or_else(|| self.expr_strategy_label(right)),
            Expr::Func { args, .. } => args.iter().find_map(|a| self.expr_strategy_label(a)),
            Expr::ColRef { .. } | Expr::Literal(_) => None,
        }
    }

    /// Choose the best access path for one relation under its local
    /// conjuncts (rebased to relation-local column indexes).
    fn best_scan(
        &self,
        rel: &Rel,
        local: &[Expr],
        global_origins: &[Option<&crate::catalog::ColumnStats>],
        offset: usize,
    ) -> Result<PhysNode> {
        let params = &self.params;
        // Selectivity uses the global origins (columns rebased back).
        let sel_of = |c: &Expr| {
            let global = c.shift_columns(offset as isize);
            estimate(&global, global_origins, self.catalog, self.session)
        };
        let total_sel: f64 = local.iter().map(sel_of).product();
        let out_rows = (rel.rows * total_sel).max(0.0);
        let avg_w = avg_pred_width(rel);
        let per_row: f64 = local
            .iter()
            .map(|c| params.predicate_cost(c, self.catalog, self.session, avg_w))
            .sum();

        let mut best: Option<PhysNode> = None;
        let mut consider = |node: PhysNode| {
            if best
                .as_ref()
                .map(|b| node.est_cost < b.est_cost)
                .unwrap_or(true)
            {
                best = Some(node);
            }
        };

        // Heap scans run on the batch spine, but `Expr::eval_batch` only
        // vectorizes extension operators that registered a batch hook —
        // everything else falls back to scalar eval, so batch-size
        // costing applies only when the pushed-down filter contains such
        // an operator.  `batch = 1` otherwise (and when batching is
        // disabled), which collapses the batched formulas to the
        // row-at-a-time ones and keeps plain-predicate plans unchanged.
        let has_batch_kernel = local.iter().any(|e| self.expr_has_batch_kernel(e));
        let annotation = local.iter().find_map(|e| self.expr_strategy_label(e));
        let batch = if has_batch_kernel && crate::exec::batch_enabled(self.session) {
            crate::exec::effective_batch_size(self.session)
        } else {
            1
        };

        // Sequential scan.
        {
            let mut cost = params.seq_scan_batched(rel.pages, rel.rows, per_row, batch);
            if !flag(self.session, "enable_seqscan") {
                cost += DISABLED_COST;
            }
            consider(PhysNode {
                op: PhysOp::SeqScan {
                    table: rel.meta.name.clone(),
                    filter: if local.is_empty() {
                        None
                    } else {
                        Some(and_all(local.to_vec()))
                    },
                    annotation: annotation.clone(),
                },
                est_rows: out_rows,
                est_cost: cost,
                schema: rel.meta.schema.clone(),
            });
        }

        // Morsel-driven parallel scan: same I/O, CPU divided across
        // workers.  Only worthwhile when the table is large enough that
        // per-tuple work dominates worker startup — small tables (and
        // therefore the pre-existing EXPLAIN goldens) keep serial plans.
        {
            let workers = crate::exec::effective_workers(self.session);
            if flag(self.session, "enable_parallel")
                && workers >= 2
                && rel.rows >= PARALLEL_MIN_ROWS
            {
                let mut cost =
                    params.parallel_seq_scan_batched(rel.pages, rel.rows, per_row, workers, batch);
                if !flag(self.session, "enable_seqscan") {
                    cost += DISABLED_COST;
                }
                consider(PhysNode {
                    op: PhysOp::ParallelSeqScan {
                        table: rel.meta.name.clone(),
                        filter: if local.is_empty() {
                            None
                        } else {
                            Some(and_all(local.to_vec()))
                        },
                        workers,
                        annotation: annotation.clone(),
                    },
                    est_rows: out_rows,
                    est_cost: cost,
                    schema: rel.meta.schema.clone(),
                });
            }
        }

        // Index scans: one candidate per (conjunct, matching index).
        for idx in self.catalog.indexes_of(rel.meta.id) {
            let idx_pages = idx.instance.read().pages() as f64;
            for (ci, c) in local.iter().enumerate() {
                let candidate = self.index_candidate(c, rel, &idx, idx_pages, sel_of(c), avg_w);
                if let Some((strategy, probe, extra, probe_pages, matched, traversal_cpu)) =
                    candidate
                {
                    let residual: Vec<Expr> = local
                        .iter()
                        .enumerate()
                        .filter(|&(j, _)| j != ci || needs_recheck(c))
                        .map(|(_, e)| e.clone())
                        .collect();
                    let residual_cost: f64 = residual
                        .iter()
                        .map(|e| params.predicate_cost(e, self.catalog, self.session, avg_w))
                        .sum();
                    let mut cost =
                        params.index_scan(probe_pages, traversal_cpu, matched, residual_cost);
                    if !flag(self.session, "enable_indexscan") {
                        cost += DISABLED_COST;
                    }
                    consider(PhysNode {
                        op: PhysOp::IndexScan {
                            table: rel.meta.name.clone(),
                            index: idx.name.clone(),
                            strategy,
                            probe,
                            extra,
                            residual: if residual.is_empty() {
                                None
                            } else {
                                Some(and_all(residual))
                            },
                        },
                        est_rows: out_rows,
                        est_cost: cost,
                        schema: rel.meta.schema.clone(),
                    });
                }
            }
        }

        Ok(best.expect("seq scan always considered"))
    }

    /// Can `conjunct` be served by `idx`?  Returns
    /// `(strategy, probe, extra, index_pages_touched, matched_rows,
    /// traversal_cpu)`.
    fn index_candidate(
        &self,
        conjunct: &Expr,
        rel: &Rel,
        idx: &crate::catalog::IndexMeta,
        idx_pages: f64,
        sel: f64,
        avg_width: f64,
    ) -> Option<(String, Datum, Datum, f64, f64, f64)> {
        let matched = (rel.rows * sel).max(0.0);
        match conjunct {
            Expr::Cmp { op, left, right } if idx.am == "btree" => {
                // Normalize col-vs-const (flip if needed).
                let (col, other, op) = match (column_of(left), column_of(right)) {
                    (Some(c), None) => (c, right, *op),
                    (None, Some(c)) => (c, left, op.flip()),
                    _ => return None,
                };
                if col != idx.column {
                    return None;
                }
                // A B-Tree over an extension type orders by raw payload
                // bytes, which disagrees with the type's registered
                // comparator (UniText compares text-only); probing it would
                // return different rows than a scan.  Never serve
                // comparisons on extension columns from a raw B-Tree.
                if matches!(
                    rel.meta.schema.column(col).ty,
                    crate::value::DataType::Ext(_)
                ) {
                    return None;
                }
                let probe = self.fold(other)?;
                let strategy = op.btree_strategy()?;
                // Pages: tree height + leaf pages holding the matches.
                let height = (idx_pages.max(2.0)).log2().ceil().max(1.0);
                let leaf = (matched / 128.0).ceil();
                let traversal_cpu = (height * 7.0 + matched) * self.params.cpu_operator_cost;
                Some((
                    strategy.to_string(),
                    probe,
                    Datum::Null,
                    height + leaf,
                    matched,
                    traversal_cpu,
                ))
            }
            Expr::ExtOp {
                name, left, right, ..
            } => {
                let op = self.catalog.operator(name)?;
                let (am, strategy) = op.index_strategy.as_ref()?;
                if &idx.am != am {
                    return None;
                }
                // Normalize col-vs-const using commutativity (Table 1).
                let (col, other) = match (column_of(left), column_of(right)) {
                    (Some(c), None) => (c, right),
                    (None, Some(c)) if op.kind.commutative => (c, left),
                    _ => return None,
                };
                if col != idx.column {
                    return None;
                }
                let probe = self.fold(other)?;
                let extra = op
                    .index_extra
                    .as_ref()
                    .map(|f| f(self.session))
                    .unwrap_or(Datum::Null);
                // Approximate-index traversal fraction: linear in the
                // threshold (§3.3), falling back to selectivity.
                let frac = op
                    .index_scan_fraction
                    .as_ref()
                    .map(|f| f(self.session))
                    .unwrap_or(sel)
                    .clamp(0.0, 1.0);
                // Every visited entry pays the operator's comparison cost
                // (distance computations — the dominant term for a metric
                // index with weak pruning).
                let traversal_cpu = rel.rows
                    * frac
                    * (op.per_tuple_cost)(self.session, avg_width)
                    * self.params.cpu_operator_cost;
                Some((
                    strategy.clone(),
                    probe,
                    extra,
                    (idx_pages * frac).max(1.0),
                    matched,
                    traversal_cpu,
                ))
            }
            _ => None,
        }
    }

    /// Constant-fold an expression at plan time.
    fn fold(&self, e: &Expr) -> Option<Datum> {
        if !e.is_const() {
            return None;
        }
        let ctx = EvalCtx::new(self.catalog, self.session);
        e.eval(&[], &ctx).ok()
    }

    /// Replace every constant subtree with its value.  Without this, a
    /// query constant like `unitext('Nehru','English')` — which runs a
    /// grapheme-to-phoneme conversion — would be re-evaluated per row
    /// inside scan filters and join predicates.
    fn fold_constants(&self, e: &Expr) -> Expr {
        if let Some(d) = self.fold(e) {
            return Expr::Literal(d);
        }
        let map = |x: &Expr| self.fold_constants(x);
        match e {
            Expr::Cmp { op, left, right } => Expr::Cmp {
                op: *op,
                left: Box::new(map(left)),
                right: Box::new(map(right)),
            },
            Expr::Arith { op, left, right } => Expr::Arith {
                op: *op,
                left: Box::new(map(left)),
                right: Box::new(map(right)),
            },
            Expr::And(l, r) => Expr::And(Box::new(map(l)), Box::new(map(r))),
            Expr::Or(l, r) => Expr::Or(Box::new(map(l)), Box::new(map(r))),
            Expr::Not(x) => Expr::Not(Box::new(map(x))),
            Expr::IsNull(x) => Expr::IsNull(Box::new(map(x))),
            Expr::ExtOp {
                name,
                left,
                right,
                modifiers,
            } => Expr::ExtOp {
                name: name.clone(),
                left: Box::new(map(left)),
                right: Box::new(map(right)),
                modifiers: modifiers.clone(),
            },
            Expr::Func { name, args } => Expr::Func {
                name: name.clone(),
                args: args.iter().map(map).collect(),
            },
            other => other.clone(),
        }
    }
}

/// Average operand width used for extension-operator cost scaling.
fn avg_pred_width(rel: &Rel) -> f64 {
    let widths: Vec<f64> = rel
        .stats
        .columns
        .iter()
        .flatten()
        .map(|c| c.avg_width)
        .filter(|&w| w > 0.0)
        .collect();
    if widths.is_empty() {
        16.0
    } else {
        widths.iter().sum::<f64>() / widths.len() as f64
    }
}

/// An index-accelerated conjunct still needing a residual re-check (e.g.
/// ψ with an `IN (langs)` modifier, or any strategy that may return
/// stale/approximate entries).  We always re-check — cheap relative to I/O
/// and uniformly safe.
fn needs_recheck(_conjunct: &Expr) -> bool {
    true
}

/// Split nested ANDs into conjuncts.
pub fn split_conjuncts(e: &Expr) -> Vec<Expr> {
    let mut out = Vec::new();
    fn walk(e: &Expr, out: &mut Vec<Expr>) {
        match e {
            Expr::And(l, r) => {
                walk(l, out);
                walk(r, out);
            }
            other => out.push(other.clone()),
        }
    }
    walk(e, &mut out);
    out
}

/// AND together a list of conjuncts (must be non-empty).
pub fn and_all(conjuncts: impl IntoIterator<Item = Expr>) -> Expr {
    let mut it = conjuncts.into_iter();
    let first = it.next().expect("non-empty conjunct list");
    it.fold(first, |acc, c| Expr::And(Box::new(acc), Box::new(c)))
}

/// All permutations of `0..n` (n ≤ 5 keeps this tiny).
fn permutations(n: usize) -> Vec<Vec<usize>> {
    fn rec(prefix: &mut Vec<usize>, used: &mut Vec<bool>, out: &mut Vec<Vec<usize>>) {
        let n = used.len();
        if prefix.len() == n {
            out.push(prefix.clone());
            return;
        }
        for i in 0..n {
            if !used[i] {
                used[i] = true;
                prefix.push(i);
                rec(prefix, used, out);
                prefix.pop();
                used[i] = false;
            }
        }
    }
    let mut out = Vec::new();
    rec(&mut Vec::new(), &mut vec![false; n], &mut out);
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conjunct_splitting() {
        let a = Expr::int(1);
        let b = Expr::int(2);
        let c = Expr::int(3);
        let e = Expr::And(Box::new(Expr::And(Box::new(a), Box::new(b))), Box::new(c));
        assert_eq!(split_conjuncts(&e).len(), 3);
        let back = and_all(split_conjuncts(&e));
        assert_eq!(split_conjuncts(&back).len(), 3);
    }

    #[test]
    fn permutation_counts() {
        assert_eq!(permutations(1).len(), 1);
        assert_eq!(permutations(3).len(), 6);
        assert_eq!(permutations(4).len(), 24);
        // Every permutation is a valid ordering of 0..n.
        for p in permutations(3) {
            let mut sorted = p.clone();
            sorted.sort_unstable();
            assert_eq!(sorted, vec![0, 1, 2]);
        }
    }
}
