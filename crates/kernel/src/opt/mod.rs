//! Cost-based optimizer.
//!
//! The pieces the paper wires its multilingual operators into (§3.3, §3.4,
//! §5.2):
//!
//! * [`cost`] — PostgreSQL-style cost parameters and formulas; extension
//!   operators contribute their registered per-tuple costs (Table 3's k·l
//!   edit-distance term for ψ, closure costs for Ω).
//! * [`selectivity`] — cardinality estimation: classic estimators for the
//!   built-in comparisons over end-biased histograms, and dispatch to the
//!   registered estimator for extension operators (§3.4's MCV-probing
//!   heuristic for ψ, the f/h heuristics for Ω).
//! * [`planner`] — plan enumeration: access-path selection (seq scan vs.
//!   B-Tree vs. approximate index) and left-deep join ordering, with
//!   PostgreSQL-style `enable_*` session flags so experiments can force
//!   plans (§5.2.1 "forced the optimizer ... by enabling or disabling
//!   different optimizer options").

pub mod cost;
pub mod planner;
pub mod selectivity;

pub use cost::CostParams;
pub use planner::plan;
