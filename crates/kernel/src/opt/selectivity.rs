//! Cardinality estimation.
//!
//! `estimate` computes the selectivity of a predicate over a relation whose
//! columns map to base-table statistics through a [`ColumnOrigin`] table.
//! Built-in comparisons use the end-biased histograms; extension operators
//! dispatch to their registered estimator (§3.4).

use crate::catalog::{Catalog, ColumnStats, SelectivityInput, SessionVars};
use crate::expr::{CmpOp, Expr};
use crate::value::Datum;

/// Where each visible column of a relation comes from: `Some(stats)` when
/// the column maps to an analyzed base-table column.
pub type ColumnOrigin<'a> = &'a [Option<&'a ColumnStats>];

/// Default selectivities when statistics are unavailable (PostgreSQL's).
const DEFAULT_EQ_SEL: f64 = 0.005;
const DEFAULT_RANGE_SEL: f64 = 0.3333;
const DEFAULT_MISC_SEL: f64 = 0.25;

/// Estimate the selectivity of `predicate` over a relation with the given
/// column origins.
pub fn estimate(
    predicate: &Expr,
    origins: ColumnOrigin<'_>,
    catalog: &Catalog,
    session: &SessionVars,
) -> f64 {
    let s = match predicate {
        Expr::Literal(Datum::Bool(true)) => 1.0,
        Expr::Literal(Datum::Bool(false)) => 0.0,
        Expr::And(l, r) => {
            estimate(l, origins, catalog, session) * estimate(r, origins, catalog, session)
        }
        Expr::Or(l, r) => {
            let a = estimate(l, origins, catalog, session);
            let b = estimate(r, origins, catalog, session);
            a + b - a * b
        }
        Expr::Not(e) => 1.0 - estimate(e, origins, catalog, session),
        Expr::IsNull(e) => match column_of(e).and_then(|c| origins.get(c).copied().flatten()) {
            Some(stats) => stats.null_frac,
            None => DEFAULT_EQ_SEL,
        },
        Expr::Cmp { op, left, right } => estimate_cmp(*op, left, right, origins),
        Expr::ExtOp {
            name, left, right, ..
        } => {
            let op = match catalog.operator(name) {
                Some(op) => op,
                None => return DEFAULT_MISC_SEL,
            };
            // Normalize to column-vs-(column|const) using commutativity
            // (Table 1: ψ commutes, so `const ψ col` flips; Ω does not).
            let (col_side, other_side) = if column_of(left).is_some() {
                (left, right)
            } else if op.kind.commutative {
                (right, left)
            } else {
                (left, right)
            };
            let col_stats = column_of(col_side).and_then(|c| origins.get(c).copied().flatten());
            let (constant, other_stats) = match other_side.as_ref() {
                Expr::Literal(d) => (Some(d), None),
                e => (
                    None,
                    column_of(e).and_then(|c| origins.get(c).copied().flatten()),
                ),
            };
            (op.selectivity)(&SelectivityInput {
                column: col_stats,
                constant,
                other_column: other_stats,
                session,
            })
        }
        _ => DEFAULT_MISC_SEL,
    };
    s.clamp(0.0, 1.0)
}

fn estimate_cmp(op: CmpOp, left: &Expr, right: &Expr, origins: ColumnOrigin<'_>) -> f64 {
    // Normalize to col OP const / col OP col.
    let (col, other, op) = match (column_of(left), column_of(right)) {
        (Some(_), _) => (left, right, op),
        (None, Some(_)) => (right, left, op.flip()),
        (None, None) => return DEFAULT_MISC_SEL,
    };
    let stats = column_of(col).and_then(|c| origins.get(c).copied().flatten());
    match other {
        Expr::Literal(d) => {
            let Some(stats) = stats else {
                return match op {
                    CmpOp::Eq => DEFAULT_EQ_SEL,
                    CmpOp::Ne => 1.0 - DEFAULT_EQ_SEL,
                    _ => DEFAULT_RANGE_SEL,
                };
            };
            match op {
                CmpOp::Eq => stats.eq_selectivity(d),
                CmpOp::Ne => 1.0 - stats.eq_selectivity(d),
                CmpOp::Lt => stats.lt_selectivity(d),
                CmpOp::Le => stats.lt_selectivity(d) + stats.eq_selectivity(d),
                CmpOp::Gt => 1.0 - stats.lt_selectivity(d) - stats.eq_selectivity(d),
                CmpOp::Ge => 1.0 - stats.lt_selectivity(d),
            }
        }
        _ if column_of(other).is_some() => {
            // Join predicate.
            let other_stats = column_of(other).and_then(|c| origins.get(c).copied().flatten());
            match (op, stats, other_stats) {
                (CmpOp::Eq, Some(a), Some(b)) => a.join_selectivity(b),
                (CmpOp::Eq, _, _) => DEFAULT_EQ_SEL,
                (CmpOp::Ne, Some(a), Some(b)) => 1.0 - a.join_selectivity(b),
                _ => DEFAULT_RANGE_SEL,
            }
        }
        _ => DEFAULT_MISC_SEL,
    }
}

/// If the expression is a bare column reference, its index.
pub fn column_of(e: &Expr) -> Option<usize> {
    match e {
        Expr::ColRef { index, .. } => Some(*index),
        _ => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::catalog::Catalog;
    use crate::value::DataType;

    fn col(i: usize) -> Expr {
        Expr::ColRef {
            index: i,
            ty: DataType::Int,
            name: format!("c{i}"),
        }
    }

    fn stats_0_to_999() -> ColumnStats {
        let vals: Vec<Datum> = (0..1000).map(Datum::Int).collect();
        ColumnStats::build(&vals)
    }

    #[test]
    fn eq_const_uses_histogram() {
        let cat = Catalog::new();
        let sess = SessionVars::new();
        let stats = stats_0_to_999();
        let origins: Vec<Option<&ColumnStats>> = vec![Some(&stats)];
        let e = Expr::Cmp {
            op: CmpOp::Eq,
            left: Box::new(col(0)),
            right: Box::new(Expr::int(5)),
        };
        let s = estimate(&e, &origins, &cat, &sess);
        assert!((s - 0.001).abs() < 0.0005, "got {s}");
    }

    #[test]
    fn flipped_comparison_normalizes() {
        let cat = Catalog::new();
        let sess = SessionVars::new();
        let stats = stats_0_to_999();
        let origins: Vec<Option<&ColumnStats>> = vec![Some(&stats)];
        // 250 > c0  ≡  c0 < 250
        let e = Expr::Cmp {
            op: CmpOp::Gt,
            left: Box::new(Expr::int(250)),
            right: Box::new(col(0)),
        };
        let s = estimate(&e, &origins, &cat, &sess);
        assert!((s - 0.25).abs() < 0.1, "got {s}");
    }

    #[test]
    fn and_multiplies_or_adds() {
        let cat = Catalog::new();
        let sess = SessionVars::new();
        let stats = stats_0_to_999();
        let origins: Vec<Option<&ColumnStats>> = vec![Some(&stats)];
        let lt = Expr::Cmp {
            op: CmpOp::Lt,
            left: Box::new(col(0)),
            right: Box::new(Expr::int(500)),
        };
        let and = Expr::And(Box::new(lt.clone()), Box::new(lt.clone()));
        let or = Expr::Or(Box::new(lt.clone()), Box::new(lt.clone()));
        let s_lt = estimate(&lt, &origins, &cat, &sess);
        let s_and = estimate(&and, &origins, &cat, &sess);
        let s_or = estimate(&or, &origins, &cat, &sess);
        assert!((s_and - s_lt * s_lt).abs() < 1e-9);
        assert!((s_or - (2.0 * s_lt - s_lt * s_lt)).abs() < 1e-9);
    }

    #[test]
    fn defaults_without_stats() {
        let cat = Catalog::new();
        let sess = SessionVars::new();
        let origins: Vec<Option<&ColumnStats>> = vec![None];
        let e = Expr::Cmp {
            op: CmpOp::Eq,
            left: Box::new(col(0)),
            right: Box::new(Expr::int(5)),
        };
        assert_eq!(estimate(&e, &origins, &cat, &sess), DEFAULT_EQ_SEL);
    }

    #[test]
    fn join_predicate_uses_ndistinct() {
        let cat = Catalog::new();
        let sess = SessionVars::new();
        let stats = stats_0_to_999();
        let origins: Vec<Option<&ColumnStats>> = vec![Some(&stats), Some(&stats)];
        let e = Expr::Cmp {
            op: CmpOp::Eq,
            left: Box::new(col(0)),
            right: Box::new(col(1)),
        };
        let s = estimate(&e, &origins, &cat, &sess);
        assert!((s - 0.001).abs() < 1e-6);
    }
}
