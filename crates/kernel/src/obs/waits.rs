//! Wait-event instrumentation over the engine's documented lock
//! hierarchy (see the `engine` module docs).
//!
//! Every lock site with meaningful contention takes a try-lock fast
//! path first; only when that fails does it fall through to a *timed*
//! blocking acquisition, classified by [`WaitClass`].  Each observed
//! wait is charged twice:
//!
//! 1. to the process-wide `mlql_wait_<class>_seconds` histogram, and
//! 2. to the [`WaitProfile`] of the query currently installed on this
//!    thread (see [`crate::obs::current`]), so EXPLAIN ANALYZE, the
//!    flight recorder and `SHOW ACTIVITY` can attribute blocked time to
//!    the statement that suffered it — including waits taken inside
//!    `ExecPool` worker tasks and the group-commit WAL rendezvous.
//!
//! Uncontended acquisitions cost one failed-try branch and record
//! nothing, which is what keeps the instrumented ψ-scan path within
//! noise of the uninstrumented one (`BENCH_obs.json` guards this).

use super::registry::{global, Histogram};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, OnceLock};
use std::time::Duration;

/// The contention points of the 5-level lock hierarchy, coarsest first.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[repr(usize)]
pub enum WaitClass {
    /// Engine catalog `RwLock` (level 1).
    Catalog = 0,
    /// Buffer-pool page-table mutex (level 3).
    BufferPool = 1,
    /// Group-commit rendezvous: WAL append lock, leader election and
    /// the wait for the leader's fsync (level 5 + the commit condvar).
    WalCommit = 2,
    /// Per-index instance read guards (level 4).
    IndexRead = 3,
    /// Ω closure-cache shard mutexes (taxonomy crate, reported through
    /// the observer hook installed by `mural`).
    OmegaCache = 4,
}

impl WaitClass {
    /// Every class, in declaration order (indexable by `as usize`).
    pub const ALL: [WaitClass; 5] = [
        WaitClass::Catalog,
        WaitClass::BufferPool,
        WaitClass::WalCommit,
        WaitClass::IndexRead,
        WaitClass::OmegaCache,
    ];

    /// Stable snake_case name used in metric names and JSON keys.
    pub fn name(self) -> &'static str {
        match self {
            WaitClass::Catalog => "catalog",
            WaitClass::BufferPool => "buffer_pool",
            WaitClass::WalCommit => "wal_commit",
            WaitClass::IndexRead => "index_read",
            WaitClass::OmegaCache => "omega_cache",
        }
    }
}

/// Per-query wait accounting: one `(count, nanos)` pair per class,
/// all atomics so scan workers on other threads charge the same
/// profile without coordination.
#[derive(Debug, Default)]
pub struct WaitProfile {
    counts: [AtomicU64; 5],
    nanos: [AtomicU64; 5],
}

impl WaitProfile {
    /// A zeroed profile.
    pub fn new() -> WaitProfile {
        WaitProfile::default()
    }

    /// Charge one wait of `d` to `class`.
    pub fn record(&self, class: WaitClass, d: Duration) {
        let i = class as usize;
        self.counts[i].fetch_add(1, Ordering::Relaxed);
        self.nanos[i].fetch_add(d.as_nanos() as u64, Ordering::Relaxed);
    }

    /// `(class, count, nanos)` for every class with at least one wait.
    pub fn snapshot(&self) -> Vec<(WaitClass, u64, u64)> {
        WaitClass::ALL
            .iter()
            .filter_map(|&c| {
                let n = self.counts[c as usize].load(Ordering::Relaxed);
                (n > 0).then(|| (c, n, self.nanos[c as usize].load(Ordering::Relaxed)))
            })
            .collect()
    }

    /// Total blocked time across all classes.
    pub fn total_nanos(&self) -> u64 {
        self.nanos.iter().map(|n| n.load(Ordering::Relaxed)).sum()
    }

    /// True when no wait was recorded.
    pub fn is_empty(&self) -> bool {
        self.counts.iter().all(|c| c.load(Ordering::Relaxed) == 0)
    }

    /// One-line rendering: `catalog=2x0.410ms wal_commit=1x1.204ms`.
    pub fn render(&self) -> String {
        let mut out = String::new();
        for (c, n, ns) in self.snapshot() {
            if !out.is_empty() {
                out.push(' ');
            }
            out.push_str(&format!("{}={}x{:.3}ms", c.name(), n, ns as f64 / 1e6));
        }
        out
    }

    /// JSON object keyed by class name: `{"catalog":{"count":2,"ns":410000}}`.
    pub fn to_json(&self) -> String {
        let mut out = String::from("{");
        for (i, (c, n, ns)) in self.snapshot().into_iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!(
                "\"{}\":{{\"count\":{},\"ns\":{}}}",
                c.name(),
                n,
                ns
            ));
        }
        out.push('}');
        out
    }
}

/// Wait durations run from lock handoffs (~µs) to fsync stalls (~100ms+).
const WAIT_BOUNDS: [f64; 10] = [
    10e-6, 50e-6, 100e-6, 500e-6, 1e-3, 5e-3, 25e-3, 100e-3, 500e-3, 2.0,
];

fn histograms() -> &'static [Arc<Histogram>; 5] {
    static HISTS: OnceLock<[Arc<Histogram>; 5]> = OnceLock::new();
    HISTS.get_or_init(|| {
        let r = global();
        WaitClass::ALL.map(|c| {
            r.histogram(
                &format!("mlql_wait_{}_seconds", c.name()),
                &format!("Blocked time on {} waits", c.name()),
                &WAIT_BOUNDS,
            )
        })
    })
}

/// Force registration of the per-class histograms; `metrics()` calls
/// this so `SHOW STATS` / Prometheus always list every wait class.
pub(crate) fn ensure_registered() {
    let _ = histograms();
}

/// Record one contended wait: charges the global per-class histogram
/// and the current thread's installed query profile (if any).  No-op
/// when observability is disabled (`obs::set_enabled(false)`).
pub fn observe(class: WaitClass, d: Duration) {
    if !super::enabled() {
        return;
    }
    histograms()[class as usize].observe_duration(d);
    if let Some(ctx) = super::current() {
        ctx.waits.record(class, d);
    }
}

/// Time the blocking closure `f` and record it as a wait of `class`.
/// Call this only after a try-lock fast path failed, so uncontended
/// acquisitions never reach the clock.
pub fn time_wait<T>(class: WaitClass, f: impl FnOnce() -> T) -> T {
    let start = std::time::Instant::now();
    let out = f();
    observe(class, start.elapsed());
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn profile_accumulates_per_class() {
        let p = WaitProfile::new();
        assert!(p.is_empty());
        p.record(WaitClass::Catalog, Duration::from_micros(100));
        p.record(WaitClass::Catalog, Duration::from_micros(300));
        p.record(WaitClass::WalCommit, Duration::from_millis(2));
        assert!(!p.is_empty());
        let snap = p.snapshot();
        assert_eq!(snap.len(), 2);
        assert_eq!(snap[0], (WaitClass::Catalog, 2, 400_000));
        assert_eq!(snap[1], (WaitClass::WalCommit, 1, 2_000_000));
        assert_eq!(p.total_nanos(), 2_400_000);
        let line = p.render();
        assert!(line.contains("catalog=2x0.400ms"), "{line}");
        assert!(line.contains("wal_commit=1x2.000ms"), "{line}");
        let json = p.to_json();
        assert!(
            json.contains("\"catalog\":{\"count\":2,\"ns\":400000}"),
            "{json}"
        );
    }

    #[test]
    fn profile_is_shared_across_threads() {
        let p = std::sync::Arc::new(WaitProfile::new());
        std::thread::scope(|s| {
            for _ in 0..4 {
                let p = std::sync::Arc::clone(&p);
                s.spawn(move || {
                    for _ in 0..100 {
                        p.record(WaitClass::IndexRead, Duration::from_nanos(10));
                    }
                });
            }
        });
        let snap = p.snapshot();
        assert_eq!(snap, vec![(WaitClass::IndexRead, 400, 4_000)]);
    }

    #[test]
    fn observe_registers_global_histograms() {
        observe(WaitClass::OmegaCache, Duration::from_micros(50));
        let samples = global().samples();
        assert!(samples
            .iter()
            .any(|(n, v)| n == "mlql_wait_omega_cache_seconds_count" && *v >= 1.0));
        // All five class histograms exist after first use.
        for c in WaitClass::ALL {
            let name = format!("mlql_wait_{}_seconds_count", c.name());
            assert!(samples.iter().any(|(n, _)| *n == name), "missing {name}");
        }
    }

    #[test]
    fn time_wait_returns_value_and_records() {
        let before = histograms()[WaitClass::BufferPool as usize].count();
        let v = time_wait(WaitClass::BufferPool, || 41 + 1);
        assert_eq!(v, 42);
        assert_eq!(
            histograms()[WaitClass::BufferPool as usize].count(),
            before + 1
        );
    }
}
