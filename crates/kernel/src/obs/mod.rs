//! Engine observability: metrics registry, exposition, query traces,
//! wait events, live activity and the flight recorder.
//!
//! Layers, coarsest to finest:
//!
//! 1. **Process-wide metrics** ([`registry`]): named counters, gauges
//!    and histograms accumulated across every query and session, with
//!    Prometheus-text and JSON exposition (`SHOW STATS_PROMETHEUS`,
//!    `SHOW STATS_JSON`, `mlql_stats()`).
//! 2. **Wait events** ([`waits`]): contended acquisitions on the
//!    5-level lock hierarchy, timed and classified, charged both to
//!    global per-class histograms and to the owning query.
//! 3. **Live activity** ([`activity`]): lock-free per-session slots
//!    surfaced as `SHOW ACTIVITY` / `mlql_activity()`.
//! 4. **Per-query traces** ([`trace`]): a span *tree* per statement
//!    (parse/bind/plan/execute, with per-operator and per-worker
//!    children under EXPLAIN ANALYZE) attached to `RunStats`.
//! 5. **Flight recorder** ([`flight`]): bounded ring of completed-query
//!    records gated by `SET slow_query_ms`, exported as JSON.
//! 6. **Per-operator actuals**: `exec::build_instrumented` wraps each
//!    plan node so EXPLAIN ANALYZE prints actual rows / loops / time /
//!    pages per node (see `exec::OpStats`).
//! 7. **Plan store** ([`planstore`]): per-plan-digest estimate-vs-actual
//!    aggregates (calls, elapsed, q-error), the live est_cost→elapsed
//!    calibration fit, and the stale-statistics advisor
//!    (`SHOW PLAN STATS`, `SHOW ADVISORIES`, `mlql_plan_stats()`,
//!    `mlql_advisories()`).
//!
//! The glue between layers is the [`QueryContext`]: one per running
//! statement, installed in a thread-local on the session thread and on
//! every `ExecPool` worker executing the statement's morsels, so waits
//! and progress recorded anywhere land on the right query.
//!
//! Everything here is dependency-free (std atomics + `parking_lot`).

pub mod activity;
pub mod flight;
pub mod planstore;
pub mod registry;
pub mod trace;
pub mod waits;

pub use activity::{ActivityRow, ActivitySlot, Stage};
pub use flight::FlightRecord;
pub use registry::{global, metrics, Counter, EngineMetrics, Gauge, Histogram, Registry};
pub use trace::{QueryTrace, Span};
pub use waits::{WaitClass, WaitProfile};

use std::cell::RefCell;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;

/// Everything the engine needs to attribute work happening *anywhere*
/// (session thread, scan workers, the WAL rendezvous) to one statement.
#[derive(Debug)]
pub struct QueryContext {
    /// Engine-wide statement id.
    pub query_id: u64,
    /// Waits suffered by the statement, shared across threads.
    pub waits: Arc<WaitProfile>,
    /// The owning session's activity slot, if activity tracking is on.
    pub slot: Option<Arc<ActivitySlot>>,
}

impl QueryContext {
    /// A context for `query_id` with a fresh wait profile.
    pub fn new(query_id: u64, slot: Option<Arc<ActivitySlot>>) -> QueryContext {
        QueryContext {
            query_id,
            waits: Arc::new(WaitProfile::new()),
            slot,
        }
    }
}

thread_local! {
    static CURRENT: RefCell<Option<Arc<QueryContext>>> = const { RefCell::new(None) };
}

/// The query context installed on this thread, if any.
pub fn current() -> Option<Arc<QueryContext>> {
    CURRENT.with(|c| c.borrow().clone())
}

/// RAII guard restoring the previously installed context on drop.
#[must_use = "dropping the guard immediately uninstalls the context"]
pub struct QueryGuard {
    prev: Option<Arc<QueryContext>>,
}

/// Install `ctx` as this thread's current query context until the
/// returned guard drops.  Sessions install it for the statement's
/// lifetime; `ExecPool` workers install a clone around each task.
pub fn enter_query(ctx: Arc<QueryContext>) -> QueryGuard {
    let prev = CURRENT.with(|c| c.borrow_mut().replace(ctx));
    QueryGuard { prev }
}

impl Drop for QueryGuard {
    fn drop(&mut self) {
        CURRENT.with(|c| *c.borrow_mut() = self.prev.take());
    }
}

static ENABLED: AtomicBool = AtomicBool::new(true);

/// Is fine-grained observability (wait events, activity row counts,
/// flight recording) enabled?  Metrics counters are always on.
pub fn enabled() -> bool {
    ENABLED.load(Ordering::Relaxed)
}

/// Toggle fine-grained observability.  The overhead-guard bench turns
/// it off to measure the uninstrumented floor.
pub fn set_enabled(on: bool) {
    ENABLED.store(on, Ordering::Relaxed);
}

static NEXT_QUERY_ID: AtomicU64 = AtomicU64::new(1);

/// Allocate the next process-wide query id (monotonic, never 0).
pub fn next_query_id() -> u64 {
    NEXT_QUERY_ID.fetch_add(1, Ordering::Relaxed)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn context_install_restores_previous() {
        assert!(current().is_none());
        let a = Arc::new(QueryContext::new(next_query_id(), None));
        let g1 = enter_query(Arc::clone(&a));
        assert_eq!(current().unwrap().query_id, a.query_id);
        {
            let b = Arc::new(QueryContext::new(next_query_id(), None));
            let _g2 = enter_query(Arc::clone(&b));
            assert_eq!(current().unwrap().query_id, b.query_id);
        }
        assert_eq!(current().unwrap().query_id, a.query_id, "inner restored");
        drop(g1);
        assert!(current().is_none());
    }

    #[test]
    fn waits_charge_installed_context() {
        let ctx = Arc::new(QueryContext::new(next_query_id(), None));
        {
            let _g = enter_query(Arc::clone(&ctx));
            waits::observe(WaitClass::Catalog, std::time::Duration::from_micros(250));
        }
        let snap = ctx.waits.snapshot();
        assert_eq!(snap, vec![(WaitClass::Catalog, 1, 250_000)]);
        // After the guard drops, observations no longer reach ctx.
        waits::observe(WaitClass::Catalog, std::time::Duration::from_micros(99));
        assert_eq!(ctx.waits.snapshot(), snap);
    }

    #[test]
    fn query_ids_are_unique_and_nonzero() {
        let a = next_query_id();
        let b = next_query_id();
        assert!(a > 0 && b > a);
    }
}
