//! Engine observability: metrics registry, exposition, and query traces.
//!
//! Three layers, coarsest to finest:
//!
//! 1. **Process-wide metrics** ([`registry`]): named counters, gauges
//!    and histograms accumulated across every query and session, with
//!    Prometheus-text and JSON exposition (`SHOW STATS_PROMETHEUS`,
//!    `SHOW STATS_JSON`, `mlql_stats()`).
//! 2. **Per-query traces** ([`trace`]): stage spans
//!    (parse/bind/plan/execute) attached to `RunStats`.
//! 3. **Per-operator actuals**: `exec::build_instrumented` wraps each
//!    plan node so EXPLAIN ANALYZE prints actual rows / loops / time /
//!    pages per node (see `exec::OpStats`).
//!
//! Everything here is dependency-free (std atomics + `parking_lot`).

pub mod registry;
pub mod trace;

pub use registry::{global, metrics, Counter, EngineMetrics, Gauge, Histogram, Registry};
pub use trace::{QueryTrace, Span};
