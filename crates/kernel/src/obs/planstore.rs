//! Plan store: per-plan-digest estimate-vs-actual statistics.
//!
//! The optimizer's claim to fame (§3.4 selectivity estimators, Table 3
//! cost models, Figure 6) is that its ψ/Ω predictions are accurate
//! enough to pick the right plan.  The fig6 bench validates that once,
//! offline; this module validates it *continuously*: every executed
//! SELECT (plan-cache hit, cold plan, or `EXPLAIN ANALYZE`) deposits an
//! [`Observation`] keyed by the plan's FNV-1a digest, and the store
//! aggregates calls, elapsed time and the q-error
//! `max(est,act) / max(min(est,act), 1)` of the root (and, when the
//! instrumented executor ran, of every node).
//!
//! Three consumers sit on top:
//!
//! * `SHOW PLAN STATS` / `mlql_plan_stats()` — per-digest aggregates
//!   plus a cost-calibration summary (fitted log-log est_cost→elapsed
//!   line and residual spread, Figure 6 recomputed over live traffic).
//! * Per-operator-class q-error histograms (`mlql_qerror_seqscan`,
//!   `_psi`, `_omega`, `_indexscan`) in the metrics registry.
//! * The stale-statistics advisor: when a table's scans exceed the
//!   session's `qerror_warn` threshold over [`ADVISOR_WINDOW`]
//!   consecutive executions, an advisory naming the table (and
//!   recommending `ANALYZE`) is raised — surfaced by
//!   `SHOW ADVISORIES` / `mlql_advisories()` and counted by
//!   `mlql_stats_advisories_total`.  `ANALYZE t` (or bare `ANALYZE`)
//!   clears the table's advisory state.
//!
//! Everything is process-wide (like the flight recorder) and tagged
//! with the engine id, so one process can host many engines without
//! cross-talk.  The store is bounded ([`CAPACITY`] plans per process;
//! at capacity the *coldest* entry — fewest calls, least recently
//! recorded on ties — is evicted, so a hot plan's history survives any
//! number of one-shot digests) and the per-statement recording path is
//! O(1) map work — cheap enough to stay inside the obs_overhead
//! guard's 1.03 budget.

use parking_lot::Mutex;
use std::collections::{HashMap, VecDeque};
use std::sync::OnceLock;
use std::time::Duration;

/// Bound on distinct (engine, digest) entries retained process-wide.
pub const CAPACITY: usize = 512;

/// Consecutive over-threshold scans of one table before an advisory is
/// raised (the "N recent executions" window).
pub const ADVISOR_WINDOW: usize = 3;

/// The q-error of an estimate against a measured actual:
/// `max(est, act) / max(min(est, act), 1)`, clamped to ≥ 1 so a perfect
/// estimate (including the degenerate `0 vs 0`) reads exactly 1.0.
/// Symmetric — under- and over-estimation score alike — and unitless,
/// the standard cardinality-estimation quality measure.
pub fn q_error(est: f64, act: f64) -> f64 {
    let est = if est.is_finite() { est.max(0.0) } else { 0.0 };
    let act = if act.is_finite() { act.max(0.0) } else { 0.0 };
    let num = est.max(act);
    let den = est.min(act).max(1.0);
    (num / den).max(1.0)
}

/// Operator class a scan q-error is attributed to (one metrics
/// histogram per class).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum OpClass {
    /// Plain (or parallel) sequential scan.
    SeqScan,
    /// Scan evaluating a ψ (LexEQUAL) predicate.
    Psi,
    /// Scan evaluating an Ω (SemEQUAL) predicate.
    Omega,
    /// Index scan (B-tree or M-tree probe without ψ/Ω attribution).
    IndexScan,
}

/// One scan node's estimate quality in one execution, attributed to the
/// table it scanned.
#[derive(Debug, Clone)]
pub struct ScanObservation {
    /// Table the scan read.
    pub table: String,
    /// Operator class (selects the q-error histogram).
    pub class: OpClass,
    /// q-error of the scan's row estimate.
    pub qerror: f64,
}

/// Everything one executed statement reports to the store.
#[derive(Debug, Clone)]
pub struct Observation {
    /// Engine the statement ran in.
    pub engine_id: u64,
    /// FNV-1a digest of the executed physical plan.
    pub digest: u64,
    /// Root operator name (labels the digest in human surfaces).
    pub root: String,
    /// Optimizer-estimated root output rows.
    pub est_rows: f64,
    /// Optimizer-estimated total plan cost.
    pub est_cost: f64,
    /// Rows the plan root actually produced.
    pub actual_rows: u64,
    /// Wall-clock execution time.
    pub elapsed: Duration,
    /// Session `qerror_warn` threshold in force (advisor trigger).
    pub qerror_warn: f64,
    /// Worst per-node q-error, when the instrumented executor ran
    /// (`EXPLAIN ANALYZE`); `None` on the plain path.
    pub node_qerror_max: Option<f64>,
    /// Per-scan-node attributions (root-attributed on the plain path).
    pub scans: Vec<ScanObservation>,
}

/// Aggregated state of one plan digest.
#[derive(Debug, Clone)]
pub struct PlanEntry {
    /// Engine the plan ran in.
    pub engine_id: u64,
    /// Plan-shape digest (groups executions across sessions/ANALYZEs).
    pub digest: u64,
    /// Root operator name.
    pub root: String,
    /// Executions recorded.
    pub calls: u64,
    /// Total execution time across calls.
    pub total: Duration,
    /// Slowest single execution.
    pub max: Duration,
    /// Latest root row estimate.
    pub est_rows: f64,
    /// Latest total cost estimate.
    pub est_cost: f64,
    /// Root rows of the latest execution.
    pub last_actual_rows: u64,
    /// Root q-error of the latest execution.
    pub qerror_last: f64,
    /// Worst root q-error seen.
    pub qerror_max: f64,
    /// Worst per-node q-error seen (instrumented runs only).
    pub node_qerror_max: Option<f64>,
    /// Recency stamp: global record sequence number of the latest call
    /// (drives coldest-entry eviction; not rendered).
    pub last_seq: u64,
}

impl PlanEntry {
    /// Mean execution time.
    pub fn mean(&self) -> Duration {
        if self.calls == 0 {
            Duration::ZERO
        } else {
            self.total / self.calls as u32
        }
    }
}

/// One stale-statistics advisory.
#[derive(Debug, Clone)]
pub struct Advisory {
    /// Engine the advisory belongs to.
    pub engine_id: u64,
    /// Table whose scans keep missing their estimates.
    pub table: String,
    /// Worst scan q-error inside the triggering window.
    pub qerror: f64,
    /// Number of consecutive over-threshold scans observed.
    pub window: usize,
    /// Remediation text.
    pub recommendation: String,
}

/// Sliding window of one table's recent scan estimate quality.
#[derive(Debug, Default)]
struct TableTrack {
    /// Last [`ADVISOR_WINDOW`] (qerror, exceeded-threshold) samples.
    recent: VecDeque<(f64, bool)>,
    /// Whether the advisory is currently raised (edge-triggers the
    /// counter metric).
    active: bool,
}

fn store() -> &'static Mutex<HashMap<(u64, u64), PlanEntry>> {
    static STORE: OnceLock<Mutex<HashMap<(u64, u64), PlanEntry>>> = OnceLock::new();
    STORE.get_or_init(|| Mutex::new(HashMap::new()))
}

fn tracker() -> &'static Mutex<HashMap<(u64, String), TableTrack>> {
    static TRACKER: OnceLock<Mutex<HashMap<(u64, String), TableTrack>>> = OnceLock::new();
    TRACKER.get_or_init(|| Mutex::new(HashMap::new()))
}

/// Record one executed statement.  Called on *every* SELECT execution
/// (cached, cold, and `EXPLAIN ANALYZE` paths) while observability is
/// enabled.
pub fn record(obs: Observation) {
    use std::sync::atomic::{AtomicU64, Ordering};
    static SEQ: AtomicU64 = AtomicU64::new(0);
    let root_q = q_error(obs.est_rows, obs.actual_rows as f64);
    let seq = SEQ.fetch_add(1, Ordering::Relaxed);
    {
        let mut map = store().lock();
        let key = (obs.engine_id, obs.digest);
        if map.len() >= CAPACITY && !map.contains_key(&key) {
            // Evict the coldest plan: fewest calls, then least recently
            // recorded.  A hot plan (many calls, fresh stamp) survives
            // arbitrarily many distinct one-shot digests passing through.
            if let Some(victim) = map
                .iter()
                .min_by_key(|(_, e)| (e.calls, e.last_seq))
                .map(|(k, _)| *k)
            {
                map.remove(&victim);
            }
        }
        let e = map.entry(key).or_insert_with(|| PlanEntry {
            engine_id: obs.engine_id,
            digest: obs.digest,
            root: obs.root.clone(),
            calls: 0,
            total: Duration::ZERO,
            max: Duration::ZERO,
            est_rows: obs.est_rows,
            est_cost: obs.est_cost,
            last_actual_rows: 0,
            qerror_last: 1.0,
            qerror_max: 1.0,
            node_qerror_max: None,
            last_seq: seq,
        });
        e.last_seq = seq;
        e.calls += 1;
        e.total += obs.elapsed;
        e.max = e.max.max(obs.elapsed);
        e.est_rows = obs.est_rows;
        e.est_cost = obs.est_cost;
        e.last_actual_rows = obs.actual_rows;
        e.qerror_last = root_q;
        e.qerror_max = e.qerror_max.max(root_q);
        if let Some(nq) = obs.node_qerror_max {
            e.node_qerror_max = Some(e.node_qerror_max.map_or(nq, |m| m.max(nq)));
        }
    }
    if obs.scans.is_empty() {
        return;
    }
    let m = super::registry::metrics();
    let mut tracks = tracker().lock();
    for scan in &obs.scans {
        match scan.class {
            OpClass::SeqScan => m.qerror_seqscan.observe(scan.qerror),
            OpClass::Psi => m.qerror_psi.observe(scan.qerror),
            OpClass::Omega => m.qerror_omega.observe(scan.qerror),
            OpClass::IndexScan => m.qerror_indexscan.observe(scan.qerror),
        }
        let t = tracks
            .entry((obs.engine_id, scan.table.clone()))
            .or_default();
        if t.recent.len() == ADVISOR_WINDOW {
            t.recent.pop_front();
        }
        t.recent
            .push_back((scan.qerror, scan.qerror > obs.qerror_warn));
        let raised = t.recent.len() == ADVISOR_WINDOW && t.recent.iter().all(|(_, ex)| *ex);
        if raised && !t.active {
            m.stats_advisories_total.inc();
        }
        t.active = raised;
    }
}

/// Statistics were just rebuilt: clear the advisor state for `table`
/// (or every table of the engine, for bare `ANALYZE`).  The plan store
/// aggregates are kept — the digests identify plan *shapes*, which
/// survive an ANALYZE.
pub fn note_analyze(engine_id: u64, table: Option<&str>) {
    let mut tracks = tracker().lock();
    match table {
        Some(t) => {
            let t = t.to_lowercase();
            tracks.remove(&(engine_id, t));
        }
        None => tracks.retain(|(eid, _), _| *eid != engine_id),
    }
}

/// Retained plan entries, optionally filtered to one engine, ordered by
/// call count (descending) then digest for deterministic output.
pub fn snapshot(engine_id: Option<u64>) -> Vec<PlanEntry> {
    let mut v: Vec<PlanEntry> = store()
        .lock()
        .values()
        .filter(|e| engine_id.is_none_or(|id| e.engine_id == id))
        .cloned()
        .collect();
    v.sort_by(|a, b| b.calls.cmp(&a.calls).then(a.digest.cmp(&b.digest)));
    v
}

/// Currently-raised advisories, optionally filtered to one engine,
/// ordered by table name.
pub fn advisories(engine_id: Option<u64>) -> Vec<Advisory> {
    let tracks = tracker().lock();
    let mut v: Vec<Advisory> = tracks
        .iter()
        .filter(|((eid, _), t)| t.active && engine_id.is_none_or(|id| *eid == id))
        .map(|((eid, table), t)| Advisory {
            engine_id: *eid,
            table: table.clone(),
            qerror: t.recent.iter().map(|(q, _)| *q).fold(1.0f64, f64::max),
            window: t.recent.len(),
            recommendation: format!("ANALYZE {table}"),
        })
        .collect();
    v.sort_by(|a, b| (a.engine_id, &a.table).cmp(&(b.engine_id, &b.table)));
    v
}

/// Drop every entry and advisory belonging to `engine_id` (tests).
pub fn clear_engine(engine_id: u64) {
    store().lock().retain(|(eid, _), _| *eid != engine_id);
    tracker().lock().retain(|(eid, _), _| *eid != engine_id);
}

// -------------------------------------------------------- calibration

/// Least-squares fit of the optimizer cost model against measured
/// runtimes, recomputed over the plan store — Figure 6 as a live gauge.
/// Fit is in log10 space (`log10(mean_ms) ≈ slope·log10(est_cost) + b`)
/// because both axes span orders of magnitude.
#[derive(Debug, Clone, Default)]
pub struct Calibration {
    /// Plans that contributed a (cost, time) point.
    pub points: usize,
    /// Fitted slope (1.0 = cost units track runtime proportionally).
    pub slope: f64,
    /// Fitted intercept (log10 milliseconds at est_cost = 1).
    pub intercept: f64,
    /// Standard deviation of the fit residuals (log10 ms) — the spread
    /// around the Figure 6 trend line.
    pub residual_stddev: f64,
    /// Log-log Pearson correlation (the paper reports "well over 0.9").
    pub pearson: f64,
}

/// Fit the est_cost→elapsed calibration over `entries`.
pub fn calibration(entries: &[PlanEntry]) -> Calibration {
    let pts: Vec<(f64, f64)> = entries
        .iter()
        .filter(|e| e.calls > 0 && e.est_cost > 0.0)
        .map(|e| {
            let x = e.est_cost.max(1e-9).log10();
            let y = (e.mean().as_secs_f64() * 1e3).max(1e-6).log10();
            (x, y)
        })
        .collect();
    let n = pts.len();
    if n < 2 {
        return Calibration {
            points: n,
            ..Calibration::default()
        };
    }
    let nf = n as f64;
    let mx = pts.iter().map(|p| p.0).sum::<f64>() / nf;
    let my = pts.iter().map(|p| p.1).sum::<f64>() / nf;
    let mut sxy = 0.0;
    let mut sxx = 0.0;
    let mut syy = 0.0;
    for (x, y) in &pts {
        sxy += (x - mx) * (y - my);
        sxx += (x - mx) * (x - mx);
        syy += (y - my) * (y - my);
    }
    let slope = if sxx > 0.0 { sxy / sxx } else { 0.0 };
    let intercept = my - slope * mx;
    let mut rss = 0.0;
    for (x, y) in &pts {
        let r = y - (slope * x + intercept);
        rss += r * r;
    }
    let residual_stddev = (rss / nf).sqrt();
    let pearson = if sxx > 0.0 && syy > 0.0 {
        sxy / (sxx * syy).sqrt()
    } else {
        0.0
    };
    Calibration {
        points: n,
        slope,
        intercept,
        residual_stddev,
        pearson,
    }
}

// ---------------------------------------------------------- rendering

fn push_num(out: &mut String, v: f64) {
    if v.is_finite() {
        out.push_str(&format!("{v}"));
    } else {
        out.push_str("null");
    }
}

/// JSON object: `{"plans":[...],"calibration":{...}}`, optionally
/// filtered to one engine (`mlql_plan_stats()` passes `None`).
pub fn render_json(engine_id: Option<u64>) -> String {
    let entries = snapshot(engine_id);
    let cal = calibration(&entries);
    let mut out = String::from("{\"plans\":[");
    for (i, e) in entries.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&format!(
            "{{\"engine_id\":{},\"plan_digest\":\"{:016x}\",\"root\":\"",
            e.engine_id, e.digest
        ));
        super::trace::json_escape_into(&e.root, &mut out);
        out.push_str(&format!(
            "\",\"calls\":{},\"mean_ms\":{},\"max_ms\":{},\"total_ms\":{},",
            e.calls,
            e.mean().as_secs_f64() * 1e3,
            e.max.as_secs_f64() * 1e3,
            e.total.as_secs_f64() * 1e3,
        ));
        out.push_str("\"est_rows\":");
        push_num(&mut out, e.est_rows);
        out.push_str(",\"est_cost\":");
        push_num(&mut out, e.est_cost);
        out.push_str(&format!(",\"last_actual_rows\":{},", e.last_actual_rows));
        out.push_str("\"qerror_last\":");
        push_num(&mut out, e.qerror_last);
        out.push_str(",\"qerror_max\":");
        push_num(&mut out, e.qerror_max);
        out.push_str(",\"node_qerror_max\":");
        match e.node_qerror_max {
            Some(v) => push_num(&mut out, v),
            None => out.push_str("null"),
        }
        out.push('}');
    }
    out.push_str("],\"calibration\":{");
    out.push_str(&format!("\"points\":{},", cal.points));
    out.push_str("\"slope\":");
    push_num(&mut out, cal.slope);
    out.push_str(",\"intercept\":");
    push_num(&mut out, cal.intercept);
    out.push_str(",\"residual_stddev\":");
    push_num(&mut out, cal.residual_stddev);
    out.push_str(",\"loglog_pearson\":");
    push_num(&mut out, cal.pearson);
    out.push_str("}}");
    out
}

/// JSON array of the currently-raised advisories (`mlql_advisories()`
/// passes `None`).
pub fn render_advisories_json(engine_id: Option<u64>) -> String {
    let mut out = String::from("[");
    for (i, a) in advisories(engine_id).iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&format!("{{\"engine_id\":{},\"table\":\"", a.engine_id));
        super::trace::json_escape_into(&a.table, &mut out);
        out.push_str("\",\"qerror\":");
        push_num(&mut out, a.qerror);
        out.push_str(&format!(",\"window\":{},\"recommendation\":\"", a.window));
        super::trace::json_escape_into(&a.recommendation, &mut out);
        out.push_str("\"}");
    }
    out.push(']');
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    // Engine ids far above anything the test suite's engines allocate,
    // so concurrently-running statement tests cannot interfere.
    const ENG: u64 = 0x5157_0000;

    // The store is process-global and the eviction test fills it to
    // CAPACITY; serialize the tests that read it back so one test's
    // churn cannot evict another's entries mid-assert.
    fn test_lock() -> parking_lot::MutexGuard<'static, ()> {
        static LOCK: OnceLock<Mutex<()>> = OnceLock::new();
        LOCK.get_or_init(|| Mutex::new(())).lock()
    }

    fn ob(engine: u64, digest: u64, est: f64, act: u64, ms: u64) -> Observation {
        Observation {
            engine_id: engine,
            digest,
            root: "Aggregate".into(),
            est_rows: est,
            est_cost: 100.0,
            actual_rows: act,
            elapsed: Duration::from_millis(ms),
            qerror_warn: 100.0,
            node_qerror_max: None,
            scans: Vec::new(),
        }
    }

    #[test]
    fn q_error_edge_cases() {
        // Perfect estimates read 1.0, including the 0-vs-0 degenerate.
        assert_eq!(q_error(0.0, 0.0), 1.0);
        assert_eq!(q_error(10.0, 10.0), 1.0);
        // Zero estimate vs. real rows (and vice versa) divides by the
        // 1-clamped side instead of exploding.
        assert_eq!(q_error(0.0, 100.0), 100.0);
        assert_eq!(q_error(100.0, 0.0), 100.0);
        // Symmetric over/under-estimation.
        assert_eq!(q_error(10.0, 1000.0), q_error(1000.0, 10.0));
        // Fractional estimates below one clamp to the 1 floor.
        assert_eq!(q_error(0.5, 1.0), 1.0);
        assert_eq!(q_error(0.25, 8.0), 8.0);
        // Garbage in, sane out.
        assert_eq!(q_error(f64::NAN, 5.0), 5.0);
        assert_eq!(q_error(f64::INFINITY, 5.0), 5.0);
        assert_eq!(q_error(-3.0, 0.0), 1.0);
    }

    #[test]
    fn store_aggregates_by_digest() {
        let _guard = test_lock();
        let eng = ENG + 1;
        clear_engine(eng);
        record(ob(eng, 0xd1, 10.0, 10, 4));
        record(ob(eng, 0xd1, 10.0, 40, 8));
        record(ob(eng, 0xd2, 1.0, 1, 1));
        let snap = snapshot(Some(eng));
        assert_eq!(snap.len(), 2);
        let e = snap.iter().find(|e| e.digest == 0xd1).unwrap();
        assert_eq!(e.calls, 2);
        assert_eq!(e.total, Duration::from_millis(12));
        assert_eq!(e.mean(), Duration::from_millis(6));
        assert_eq!(e.max, Duration::from_millis(8));
        assert_eq!(e.qerror_last, 4.0);
        assert_eq!(e.qerror_max, 4.0);
        assert_eq!(e.last_actual_rows, 40);
        assert!(e.node_qerror_max.is_none());
        clear_engine(eng);
    }

    #[test]
    fn advisory_raises_after_window_and_clears_on_analyze() {
        let _guard = test_lock();
        let eng = ENG + 2;
        clear_engine(eng);
        let scan = |q: f64| Observation {
            qerror_warn: 4.0,
            scans: vec![ScanObservation {
                table: "names".into(),
                class: OpClass::SeqScan,
                qerror: q,
            }],
            ..ob(eng, 0xd3, 1.0, 1, 1)
        };
        let before = super::super::registry::metrics()
            .stats_advisories_total
            .get();
        record(scan(50.0));
        record(scan(60.0));
        assert!(
            advisories(Some(eng)).is_empty(),
            "needs {ADVISOR_WINDOW} consecutive misses"
        );
        record(scan(70.0));
        let adv = advisories(Some(eng));
        assert_eq!(adv.len(), 1);
        assert_eq!(adv[0].table, "names");
        assert_eq!(adv[0].qerror, 70.0);
        assert_eq!(adv[0].recommendation, "ANALYZE names");
        assert!(
            super::super::registry::metrics()
                .stats_advisories_total
                .get()
                > before,
            "raising an advisory bumps the counter"
        );
        // A good estimate resets the streak...
        record(scan(1.0));
        assert!(advisories(Some(eng)).is_empty());
        // ...and an ANALYZE clears the tracker outright.
        record(scan(50.0));
        record(scan(60.0));
        record(scan(70.0));
        assert_eq!(advisories(Some(eng)).len(), 1);
        note_analyze(eng, Some("names"));
        assert!(advisories(Some(eng)).is_empty());
        clear_engine(eng);
    }

    #[test]
    fn hot_plan_survives_a_flood_of_one_shot_digests() {
        let _guard = test_lock();
        let eng = ENG + 5;
        clear_engine(eng);
        // A hot plan: many calls on one digest.
        for _ in 0..10 {
            record(ob(eng, 0xbeef, 10.0, 10, 1));
        }
        // More one-shot digests than the whole store can hold.  Under
        // the old arbitrary (`keys().next()`) eviction this had better
        // than even odds of dropping the hot entry; coldest-first must
        // always sacrifice a one-shot instead.
        for d in 0..(CAPACITY as u64 + 64) {
            record(ob(eng, 0x1_0000 + d, 1.0, 1, 1));
        }
        let snap = snapshot(Some(eng));
        let hot = snap
            .iter()
            .find(|e| e.digest == 0xbeef)
            .expect("hot plan must survive 512+ one-shot digests");
        assert_eq!(hot.calls, 10, "aggregates survive intact");
        // The store stayed bounded while churning.
        assert!(store().lock().len() <= CAPACITY);
        clear_engine(eng);
    }

    #[test]
    fn calibration_fits_a_perfect_line() {
        // mean_ms = est_cost / 100 → slope 1.0 in log-log space.
        let entries: Vec<PlanEntry> = [(100.0, 1u64), (1000.0, 10), (10000.0, 100)]
            .iter()
            .map(|&(cost, ms)| PlanEntry {
                engine_id: ENG + 3,
                digest: ms,
                root: "Aggregate".into(),
                calls: 1,
                total: Duration::from_millis(ms),
                max: Duration::from_millis(ms),
                est_rows: 1.0,
                est_cost: cost,
                last_actual_rows: 1,
                qerror_last: 1.0,
                qerror_max: 1.0,
                node_qerror_max: None,
                last_seq: 0,
            })
            .collect();
        let cal = calibration(&entries);
        assert_eq!(cal.points, 3);
        assert!((cal.slope - 1.0).abs() < 1e-9, "{cal:?}");
        assert!(cal.residual_stddev < 1e-9, "{cal:?}");
        assert!((cal.pearson - 1.0).abs() < 1e-9, "{cal:?}");
        // Degenerate inputs do not fit.
        assert_eq!(calibration(&entries[..1]).points, 1);
        assert_eq!(calibration(&[]).points, 0);
    }

    #[test]
    fn json_surfaces_render() {
        let _guard = test_lock();
        let eng = ENG + 4;
        clear_engine(eng);
        record(ob(eng, 0xabc, 5.0, 50, 2));
        let json = render_json(Some(eng));
        assert!(json.starts_with("{\"plans\":["), "{json}");
        assert!(
            json.contains("\"plan_digest\":\"0000000000000abc\""),
            "{json}"
        );
        assert!(json.contains("\"calls\":1"), "{json}");
        assert!(json.contains("\"qerror_last\":10"), "{json}");
        assert!(json.contains("\"calibration\":{"), "{json}");
        assert!(json.contains("\"node_qerror_max\":null"), "{json}");
        let adv = render_advisories_json(Some(eng));
        assert_eq!(adv, "[]");
        clear_engine(eng);
    }
}
