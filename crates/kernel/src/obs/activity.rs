//! Live activity registry: what is every session doing *right now*.
//!
//! Each session owns one [`ActivitySlot`].  The query hot path touches
//! only atomics on its own slot (stage, rows, workers, start time), so
//! observers polling `SHOW ACTIVITY` / `mlql_activity()` never block
//! the queries they observe: a snapshot reads the same atomics and the
//! SQL string, which is written once per statement under a mutex that
//! the per-row path never takes.
//!
//! Slots are registered process-wide as `Weak` references — dropped
//! sessions vanish from the view at the next snapshot — and each slot
//! carries its engine id so multiple embedded engines in one process
//! (the test suite does this constantly) can filter to their own
//! sessions.

use parking_lot::Mutex;
use std::sync::atomic::{AtomicU64, AtomicU8, Ordering};
use std::sync::{Arc, OnceLock, Weak};
use std::time::Instant;

/// Statement lifecycle stage, stored as one atomic byte.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[repr(u8)]
pub enum Stage {
    /// No statement running.
    Idle = 0,
    /// Parsing SQL text.
    Parse = 1,
    /// Binding names against the catalog.
    Bind = 2,
    /// Planning / plan-cache lookup.
    Plan = 3,
    /// Executing the plan.
    Execute = 4,
    /// Waiting on the group-commit WAL rendezvous.
    Commit = 5,
}

impl Stage {
    fn from_u8(v: u8) -> Stage {
        match v {
            1 => Stage::Parse,
            2 => Stage::Bind,
            3 => Stage::Plan,
            4 => Stage::Execute,
            5 => Stage::Commit,
            _ => Stage::Idle,
        }
    }

    /// Stable lowercase name (`"idle"`, `"parse"`, ...).
    pub fn name(self) -> &'static str {
        match self {
            Stage::Idle => "idle",
            Stage::Parse => "parse",
            Stage::Bind => "bind",
            Stage::Plan => "plan",
            Stage::Execute => "execute",
            Stage::Commit => "commit",
        }
    }
}

/// `Instant` is not atomically storable, so slot start times are
/// nanosecond offsets from one process-wide epoch.
fn epoch() -> Instant {
    static EPOCH: OnceLock<Instant> = OnceLock::new();
    *EPOCH.get_or_init(Instant::now)
}

/// Nanoseconds since the process-wide epoch.
pub fn now_nanos() -> u64 {
    epoch().elapsed().as_nanos() as u64
}

/// SQL snippets in activity rows / flight records are capped here.
pub const SQL_SNIPPET_MAX: usize = 120;

/// Truncate `sql` to [`SQL_SNIPPET_MAX`] on a char boundary.
pub fn snippet(sql: &str) -> &str {
    match sql.char_indices().nth(SQL_SNIPPET_MAX) {
        Some((i, _)) => &sql[..i],
        None => sql,
    }
}

/// One session's live-activity state.  All hot-path fields are atomics.
#[derive(Debug)]
pub struct ActivitySlot {
    engine_id: u64,
    session_id: u64,
    query_id: AtomicU64,
    stage: AtomicU8,
    rows: AtomicU64,
    workers: AtomicU64,
    /// Open transaction id (0 = autocommit / none).  Survives across
    /// statements of the transaction; `begin` resets it and the session
    /// republishes it, so a stale id never outlives its statement.
    txn_id: AtomicU64,
    /// Start of the current statement, ns since [`epoch`]; 0 = never ran.
    start_nanos: AtomicU64,
    /// Written once per statement in `begin`; never touched per row.
    sql: Mutex<String>,
}

impl ActivitySlot {
    /// A fresh idle slot for `(engine_id, session_id)`.
    pub fn new(engine_id: u64, session_id: u64) -> ActivitySlot {
        ActivitySlot {
            engine_id,
            session_id,
            query_id: AtomicU64::new(0),
            stage: AtomicU8::new(Stage::Idle as u8),
            rows: AtomicU64::new(0),
            workers: AtomicU64::new(0),
            txn_id: AtomicU64::new(0),
            start_nanos: AtomicU64::new(0),
            sql: Mutex::new(String::new()),
        }
    }

    /// Engine this slot's session belongs to.
    pub fn engine_id(&self) -> u64 {
        self.engine_id
    }

    /// Session id within the engine.
    pub fn session_id(&self) -> u64 {
        self.session_id
    }

    /// Mark the start of a statement.
    pub fn begin(&self, query_id: u64, sql: &str) {
        {
            let mut s = self.sql.lock();
            s.clear();
            s.push_str(snippet(sql));
        }
        self.query_id.store(query_id, Ordering::Relaxed);
        self.rows.store(0, Ordering::Relaxed);
        self.workers.store(0, Ordering::Relaxed);
        self.txn_id.store(0, Ordering::Relaxed);
        self.start_nanos.store(now_nanos(), Ordering::Relaxed);
        self.stage.store(Stage::Parse as u8, Ordering::Release);
    }

    /// Publish the transaction id the session is running under
    /// (0 = autocommit / transaction closed).
    pub fn set_txn(&self, txn_id: u64) {
        self.txn_id.store(txn_id, Ordering::Relaxed);
    }

    /// Advance the lifecycle stage.
    pub fn set_stage(&self, stage: Stage) {
        self.stage.store(stage as u8, Ordering::Release);
    }

    /// Current lifecycle stage.
    pub fn stage(&self) -> Stage {
        Stage::from_u8(self.stage.load(Ordering::Acquire))
    }

    /// Bump rows produced so far by the running statement.
    pub fn add_rows(&self, n: u64) {
        self.rows.fetch_add(n, Ordering::Relaxed);
    }

    /// Record how many parallel workers the statement claimed.
    pub fn set_workers(&self, n: u64) {
        self.workers.store(n, Ordering::Relaxed);
    }

    /// Mark the statement finished (back to idle).
    pub fn finish(&self) {
        self.stage.store(Stage::Idle as u8, Ordering::Release);
    }
}

/// One row of the activity view — a consistent-enough snapshot of a
/// slot (fields are read individually; a statement may advance between
/// reads, which is fine for a monitoring surface).
#[derive(Debug, Clone)]
pub struct ActivityRow {
    /// Engine the session belongs to.
    pub engine_id: u64,
    /// Session id within the engine.
    pub session_id: u64,
    /// Engine-wide statement id (0 if the session never ran one).
    pub query_id: u64,
    /// Open transaction id (0 = autocommit / none).
    pub txn_id: u64,
    /// Lifecycle stage at snapshot time.
    pub stage: Stage,
    /// Rows produced so far by the running statement.
    pub rows: u64,
    /// Parallel workers claimed by the running statement.
    pub workers: u64,
    /// Elapsed time of the running statement, in milliseconds
    /// (0 when idle).
    pub elapsed_ms: f64,
    /// Leading [`SQL_SNIPPET_MAX`] chars of the statement text.
    pub sql: String,
}

fn slots() -> &'static Mutex<Vec<Weak<ActivitySlot>>> {
    static SLOTS: OnceLock<Mutex<Vec<Weak<ActivitySlot>>>> = OnceLock::new();
    SLOTS.get_or_init(|| Mutex::new(Vec::new()))
}

/// Register a session's slot in the process-wide view.  Called once at
/// session open; the registry holds a `Weak`, so dropping the session
/// (and with it the `Arc`) removes it from future snapshots.
pub fn register(slot: &Arc<ActivitySlot>) {
    let mut v = slots().lock();
    v.retain(|w| w.strong_count() > 0);
    v.push(Arc::downgrade(slot));
}

/// Snapshot every live slot, pruning dead ones.
pub fn snapshot() -> Vec<ActivityRow> {
    let mut v = slots().lock();
    v.retain(|w| w.strong_count() > 0);
    let live: Vec<Arc<ActivitySlot>> = v.iter().filter_map(Weak::upgrade).collect();
    drop(v);
    let now = now_nanos();
    live.iter()
        .map(|s| {
            let stage = s.stage();
            let start = s.start_nanos.load(Ordering::Relaxed);
            let elapsed_ms = if stage == Stage::Idle || start == 0 {
                0.0
            } else {
                now.saturating_sub(start) as f64 / 1e6
            };
            ActivityRow {
                engine_id: s.engine_id,
                session_id: s.session_id,
                query_id: s.query_id.load(Ordering::Relaxed),
                txn_id: s.txn_id.load(Ordering::Relaxed),
                stage,
                rows: s.rows.load(Ordering::Relaxed),
                workers: s.workers.load(Ordering::Relaxed),
                elapsed_ms,
                sql: s.sql.lock().clone(),
            }
        })
        .collect()
}

/// JSON array rendering of [`snapshot`] (every engine in the process).
pub fn render_json() -> String {
    let mut out = String::from("[");
    for (i, r) in snapshot().iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&format!(
            "{{\"engine_id\":{},\"session_id\":{},\"query_id\":{},\"txn_id\":{},\
             \"stage\":\"{}\",\"rows\":{},\"workers\":{},\"elapsed_ms\":{:.3},\"sql\":\"",
            r.engine_id,
            r.session_id,
            r.query_id,
            r.txn_id,
            r.stage.name(),
            r.rows,
            r.workers,
            r.elapsed_ms
        ));
        super::trace::json_escape_into(&r.sql, &mut out);
        out.push_str("\"}");
    }
    out.push(']');
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn slot_lifecycle_is_visible_in_snapshot() {
        let slot = Arc::new(ActivitySlot::new(900_001, 1));
        register(&slot);
        slot.begin(42, "SELECT * FROM t WHERE a LEXEQUAL b");
        slot.set_stage(Stage::Execute);
        slot.add_rows(10);
        slot.add_rows(5);
        slot.set_workers(4);
        let rows = snapshot();
        let me = rows
            .iter()
            .find(|r| r.engine_id == 900_001)
            .expect("registered slot visible");
        assert_eq!(me.session_id, 1);
        assert_eq!(me.query_id, 42);
        assert_eq!(me.stage, Stage::Execute);
        assert_eq!(me.rows, 15);
        assert_eq!(me.workers, 4);
        assert!(me.sql.starts_with("SELECT * FROM t"));
        slot.finish();
        let rows = snapshot();
        let me = rows.iter().find(|r| r.engine_id == 900_001).unwrap();
        assert_eq!(me.stage, Stage::Idle);
        assert_eq!(me.elapsed_ms, 0.0, "idle rows report no elapsed time");
    }

    #[test]
    fn dropped_sessions_vanish() {
        let slot = Arc::new(ActivitySlot::new(900_002, 7));
        register(&slot);
        assert!(snapshot().iter().any(|r| r.engine_id == 900_002));
        drop(slot);
        assert!(!snapshot().iter().any(|r| r.engine_id == 900_002));
    }

    #[test]
    fn snippet_truncates_on_char_boundary() {
        let long = "é".repeat(SQL_SNIPPET_MAX + 50);
        let s = snippet(&long);
        assert_eq!(s.chars().count(), SQL_SNIPPET_MAX);
        assert!(long.is_char_boundary(s.len()));
        assert_eq!(snippet("short"), "short");
    }

    #[test]
    fn render_json_escapes_sql() {
        let slot = Arc::new(ActivitySlot::new(900_003, 2));
        register(&slot);
        slot.begin(1, "SELECT '\"quoted\"'");
        let json = render_json();
        assert!(json.contains("\\\"quoted\\\""), "{json}");
        assert!(json.contains("\"stage\":\"parse\""), "{json}");
    }
}
