//! Flight recorder: a bounded ring of completed-query records.
//!
//! Every statement that finishes (successfully) and meets the
//! session's `slow_query_ms` threshold deposits a [`FlightRecord`]
//! carrying everything needed to reconstruct what the query did after
//! the fact: SQL snippet, plan digest, span tree, wait profile and
//! buffer-pool I/O delta.  The ring is process-wide and bounded
//! ([`CAPACITY`] records, oldest evicted first), exported as JSON by
//! `mlql_flight_recorder()` / `SHOW FLIGHT_RECORDER`, and dumped to
//! disk by the fault-injection harness (and CI on test failure) via
//! [`dump_to_dir`].
//!
//! Threshold semantics (`SET slow_query_ms = n`):
//! * `0` (default) — record every statement,
//! * `n > 0` — record statements that took ≥ `n` ms,
//! * `n < 0` — record nothing.

use super::trace::{json_escape_into, QueryTrace};
use super::waits::WaitProfile;
use parking_lot::Mutex;
use std::collections::VecDeque;
use std::sync::{Arc, OnceLock};
use std::time::Duration;

/// Ring capacity: enough history to debug a stall, small enough that a
/// full ring of records with span trees stays in the low megabytes.
pub const CAPACITY: usize = 256;

/// One completed statement.
#[derive(Debug)]
pub struct FlightRecord {
    /// Engine the statement ran in.
    pub engine_id: u64,
    /// Session within the engine.
    pub session_id: u64,
    /// Engine-wide statement id.
    pub query_id: u64,
    /// Transaction the statement ran in (0 = autocommit).
    pub txn_id: u64,
    /// Leading chars of the statement text (see `activity::snippet`).
    pub sql: String,
    /// FNV-1a digest of the physical plan shape (0 for non-SELECTs and
    /// statements that never reached the planner).
    pub plan_digest: u64,
    /// End-to-end latency.
    pub elapsed: Duration,
    /// Rows produced.
    pub rows: u64,
    /// Batches the plan root emitted (0 when the statement ran
    /// row-at-a-time — DML, or `SET enable_batch = 0`).
    pub batches: u64,
    /// Stage span tree.
    pub trace: QueryTrace,
    /// Waits suffered (shared with the workers that charged it).
    pub waits: Arc<WaitProfile>,
    /// Buffer-pool (logical, physical) read delta across the statement.
    pub io_reads: (u64, u64),
    /// Optimizer-estimated root output rows (queries only).
    pub est_rows: Option<f64>,
    /// Optimizer-estimated total plan cost (queries only).
    pub est_cost: Option<f64>,
    /// Root q-error `max(est,act)/max(min(est,act),1)` of the row
    /// estimate against `rows` (queries only).
    pub qerror: Option<f64>,
}

impl FlightRecord {
    /// JSON object rendering of one record.
    pub fn to_json(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!(
            "{{\"engine_id\":{},\"session_id\":{},\"query_id\":{},\"txn_id\":{},\"sql\":\"",
            self.engine_id, self.session_id, self.query_id, self.txn_id
        ));
        json_escape_into(&self.sql, &mut out);
        let opt = |v: Option<f64>| match v {
            Some(v) if v.is_finite() => format!("{v}"),
            _ => "null".to_string(),
        };
        out.push_str(&format!(
            "\",\"plan_digest\":\"{:016x}\",\"elapsed_us\":{},\"rows\":{},\"batches\":{},\
             \"est_rows\":{},\"est_cost\":{},\"qerror\":{},\
             \"logical_reads\":{},\"physical_reads\":{},\"waits\":{},\"trace\":{}}}",
            self.plan_digest,
            self.elapsed.as_micros(),
            self.rows,
            self.batches,
            opt(self.est_rows),
            opt(self.est_cost),
            opt(self.qerror),
            self.io_reads.0,
            self.io_reads.1,
            self.waits.to_json(),
            self.trace.to_json()
        ));
        out
    }
}

fn ring() -> &'static Mutex<VecDeque<Arc<FlightRecord>>> {
    static RING: OnceLock<Mutex<VecDeque<Arc<FlightRecord>>>> = OnceLock::new();
    RING.get_or_init(|| Mutex::new(VecDeque::with_capacity(CAPACITY)))
}

/// Deposit a completed-query record, evicting the oldest at capacity.
pub fn record(rec: FlightRecord) {
    let mut r = ring().lock();
    if r.len() == CAPACITY {
        r.pop_front();
    }
    r.push_back(Arc::new(rec));
}

/// Every retained record, oldest first.
pub fn snapshot() -> Vec<Arc<FlightRecord>> {
    ring().lock().iter().cloned().collect()
}

/// Number of retained records.
pub fn len() -> usize {
    ring().lock().len()
}

/// Drop all retained records (tests isolate themselves with this).
pub fn clear() {
    ring().lock().clear();
}

/// JSON array of every retained record, oldest first.
pub fn render_json() -> String {
    let recs = snapshot();
    let mut out = String::from("[");
    for (i, r) in recs.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&r.to_json());
    }
    out.push(']');
    out
}

/// Write the flight-recorder JSON plus a full metrics snapshot into
/// `dir` (created if missing) as `flight_recorder.json` and
/// `metrics.json`.  Used by the fault-injection harness on recovery
/// failures and by CI to attach post-mortem state to failed runs.
pub fn dump_to_dir(dir: &std::path::Path) -> std::io::Result<()> {
    std::fs::create_dir_all(dir)?;
    std::fs::write(dir.join("flight_recorder.json"), render_json())?;
    std::fs::write(
        dir.join("metrics.json"),
        super::registry::global().render_json(),
    )?;
    Ok(())
}

/// [`dump_to_dir`] into `$MLQL_OBS_DUMP_DIR` (default `target/obs-dumps`).
pub fn dump_default() -> std::io::Result<std::path::PathBuf> {
    let dir = std::env::var("MLQL_OBS_DUMP_DIR")
        .map(std::path::PathBuf::from)
        .unwrap_or_else(|_| std::path::PathBuf::from("target/obs-dumps"));
    dump_to_dir(&dir)?;
    Ok(dir)
}

#[cfg(test)]
mod tests {
    use super::*;

    // The ring is process-global and other test modules run statements
    // concurrently; mark records with a sentinel engine id and assert
    // only over our own.
    const MY_ENGINE: u64 = 987_654;

    fn rec(query_id: u64) -> FlightRecord {
        let mut trace = QueryTrace::for_query(query_id);
        trace.record("execute", Duration::from_micros(500));
        FlightRecord {
            engine_id: MY_ENGINE,
            session_id: 2,
            query_id,
            txn_id: 0,
            sql: "SELECT \"x\"".into(),
            plan_digest: 0xabcd,
            elapsed: Duration::from_micros(700),
            rows: 3,
            batches: 1,
            trace,
            waits: Arc::new(WaitProfile::new()),
            io_reads: (10, 1),
            est_rows: Some(4.0),
            est_cost: Some(25.0),
            qerror: Some(4.0 / 3.0),
        }
    }

    fn mine() -> Vec<Arc<FlightRecord>> {
        snapshot()
            .into_iter()
            .filter(|r| r.engine_id == MY_ENGINE)
            .collect()
    }

    #[test]
    fn ring_evicts_oldest_at_capacity() {
        for i in 0..(CAPACITY as u64 + 10) {
            record(rec(i));
        }
        assert_eq!(snapshot().len(), CAPACITY, "ring is bounded");
        let ours = mine();
        assert!(ours.len() <= CAPACITY);
        // The first ten deposits must have been evicted to make room.
        assert!(
            ours.first().unwrap().query_id >= 10,
            "oldest records evicted first"
        );
        assert_eq!(ours.last().unwrap().query_id, CAPACITY as u64 + 9);
    }

    #[test]
    fn json_shape_and_escaping() {
        record(rec(7));
        let ours: Vec<_> = mine().into_iter().filter(|r| r.query_id == 7).collect();
        let json = ours.last().unwrap().to_json();
        assert!(json.starts_with('{') && json.ends_with('}'), "{json}");
        assert!(json.contains("\"query_id\":7"), "{json}");
        assert!(
            json.contains("\"plan_digest\":\"000000000000abcd\""),
            "{json}"
        );
        assert!(json.contains("\"rows\":3,\"batches\":1"), "{json}");
        assert!(json.contains("\"est_rows\":4"), "{json}");
        assert!(json.contains("\"est_cost\":25"), "{json}");
        assert!(json.contains("\"qerror\":1.33"), "{json}");
        assert!(json.contains("SELECT \\\"x\\\""), "escaped sql: {json}");
        assert!(json.contains("\"trace\":{\"query_id\":7"), "{json}");
        assert!(json.contains("\"waits\":{}"), "{json}");
        let all = render_json();
        assert!(all.starts_with('[') && all.ends_with(']'), "{all}");
    }

    #[test]
    fn dump_writes_both_files() {
        record(rec(1));
        let dir = std::env::temp_dir().join(format!("mlql-obs-dump-{}", std::process::id()));
        dump_to_dir(&dir).unwrap();
        let flight = std::fs::read_to_string(dir.join("flight_recorder.json")).unwrap();
        assert!(
            flight.contains(&format!("\"engine_id\":{MY_ENGINE}")),
            "{flight}"
        );
        let metrics = std::fs::read_to_string(dir.join("metrics.json")).unwrap();
        assert!(metrics.starts_with('{'), "{metrics}");
        std::fs::remove_dir_all(&dir).ok();
    }
}
