//! Process-wide metrics registry.
//!
//! Dependency-free (std atomics + `parking_lot`): counters, gauges and
//! fixed-bucket histograms registered by name, with Prometheus-text and
//! JSON exposition.  Handles are `Arc`s onto atomics, so recording on a
//! hot path is a single `fetch_add` — no locks, no allocation.  The
//! registry lock is only taken at registration and render time.

use parking_lot::Mutex;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, OnceLock};
use std::time::Duration;

/// A monotonically increasing counter.
#[derive(Debug, Default)]
pub struct Counter {
    value: AtomicU64,
}

impl Counter {
    /// Increment by one.
    pub fn inc(&self) {
        self.add(1);
    }

    /// Increment by `n`.
    pub fn add(&self, n: u64) {
        self.value.fetch_add(n, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.value.load(Ordering::Relaxed)
    }
}

/// A gauge holding one `f64` (stored as bits in an atomic).
#[derive(Debug, Default)]
pub struct Gauge {
    bits: AtomicU64,
}

impl Gauge {
    /// Set the value.
    pub fn set(&self, v: f64) {
        self.bits.store(v.to_bits(), Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> f64 {
        f64::from_bits(self.bits.load(Ordering::Relaxed))
    }
}

/// A histogram with fixed, registration-time bucket upper bounds.
///
/// `observe` finds the first bucket whose upper bound is ≥ the value
/// (cumulative-on-render, native counts in memory) and maintains `sum`
/// and `count`, matching the Prometheus histogram data model.
#[derive(Debug)]
pub struct Histogram {
    bounds: Vec<f64>,
    /// One slot per bound plus a final +Inf slot.
    buckets: Vec<AtomicU64>,
    sum_bits: AtomicU64,
    count: AtomicU64,
}

impl Histogram {
    fn new(bounds: &[f64]) -> Histogram {
        assert!(bounds.windows(2).all(|w| w[0] < w[1]), "bounds must ascend");
        Histogram {
            bounds: bounds.to_vec(),
            buckets: (0..=bounds.len()).map(|_| AtomicU64::new(0)).collect(),
            sum_bits: AtomicU64::new(0f64.to_bits()),
            count: AtomicU64::new(0),
        }
    }

    /// Record one observation.
    pub fn observe(&self, v: f64) {
        let idx = self
            .bounds
            .iter()
            .position(|&b| v <= b)
            .unwrap_or(self.bounds.len());
        self.buckets[idx].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        // CAS loop: atomics have no native f64 add.
        let mut cur = self.sum_bits.load(Ordering::Relaxed);
        loop {
            let next = (f64::from_bits(cur) + v).to_bits();
            match self.sum_bits.compare_exchange_weak(
                cur,
                next,
                Ordering::Relaxed,
                Ordering::Relaxed,
            ) {
                Ok(_) => break,
                Err(actual) => cur = actual,
            }
        }
    }

    /// Record a duration in seconds.
    pub fn observe_duration(&self, d: Duration) {
        self.observe(d.as_secs_f64());
    }

    /// Total observations.
    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    /// Sum of observations.
    pub fn sum(&self) -> f64 {
        f64::from_bits(self.sum_bits.load(Ordering::Relaxed))
    }

    /// `(upper_bound, cumulative_count)` pairs, ending with `(+Inf, count)`.
    pub fn cumulative_buckets(&self) -> Vec<(f64, u64)> {
        let mut acc = 0u64;
        let mut out = Vec::with_capacity(self.buckets.len());
        for (i, b) in self.buckets.iter().enumerate() {
            acc += b.load(Ordering::Relaxed);
            let bound = self.bounds.get(i).copied().unwrap_or(f64::INFINITY);
            out.push((bound, acc));
        }
        out
    }
}

/// Type-erased closure computing a value at render time (for ratios
/// derived from other metrics, so the hot path pays nothing).
type DerivedFn = Arc<dyn Fn() -> f64 + Send + Sync>;

enum Handle {
    Counter(Arc<Counter>),
    Gauge(Arc<Gauge>),
    Histogram(Arc<Histogram>),
    Derived(DerivedFn),
}

struct Entry {
    name: String,
    help: String,
    handle: Handle,
}

/// A named collection of metrics.  Usually accessed through [`global`].
pub struct Registry {
    entries: Mutex<Vec<Entry>>,
}

impl Default for Registry {
    fn default() -> Self {
        Self::new()
    }
}

impl Registry {
    /// An empty registry.
    pub fn new() -> Registry {
        Registry {
            entries: Mutex::new(Vec::new()),
        }
    }

    fn position(entries: &[Entry], name: &str) -> Option<usize> {
        entries.iter().position(|e| e.name == name)
    }

    /// Register (or fetch the existing) counter named `name`.
    pub fn counter(&self, name: &str, help: &str) -> Arc<Counter> {
        let mut entries = self.entries.lock();
        if let Some(i) = Self::position(&entries, name) {
            if let Handle::Counter(c) = &entries[i].handle {
                return Arc::clone(c);
            }
            panic!("metric {name:?} already registered with a different kind");
        }
        let c = Arc::new(Counter::default());
        entries.push(Entry {
            name: name.into(),
            help: help.into(),
            handle: Handle::Counter(Arc::clone(&c)),
        });
        c
    }

    /// Register (or fetch the existing) gauge named `name`.
    pub fn gauge(&self, name: &str, help: &str) -> Arc<Gauge> {
        let mut entries = self.entries.lock();
        if let Some(i) = Self::position(&entries, name) {
            if let Handle::Gauge(g) = &entries[i].handle {
                return Arc::clone(g);
            }
            panic!("metric {name:?} already registered with a different kind");
        }
        let g = Arc::new(Gauge::default());
        entries.push(Entry {
            name: name.into(),
            help: help.into(),
            handle: Handle::Gauge(Arc::clone(&g)),
        });
        g
    }

    /// Register (or fetch the existing) histogram named `name` with the
    /// given ascending bucket upper bounds.
    pub fn histogram(&self, name: &str, help: &str, bounds: &[f64]) -> Arc<Histogram> {
        let mut entries = self.entries.lock();
        if let Some(i) = Self::position(&entries, name) {
            if let Handle::Histogram(h) = &entries[i].handle {
                return Arc::clone(h);
            }
            panic!("metric {name:?} already registered with a different kind");
        }
        let h = Arc::new(Histogram::new(bounds));
        entries.push(Entry {
            name: name.into(),
            help: help.into(),
            handle: Handle::Histogram(Arc::clone(&h)),
        });
        h
    }

    /// Register a gauge whose value is computed by `f` at render time
    /// (derived metrics such as hit ratios).
    pub fn derived_gauge(
        &self,
        name: &str,
        help: &str,
        f: impl Fn() -> f64 + Send + Sync + 'static,
    ) {
        let mut entries = self.entries.lock();
        if Self::position(&entries, name).is_some() {
            return;
        }
        entries.push(Entry {
            name: name.into(),
            help: help.into(),
            handle: Handle::Derived(Arc::new(f)),
        });
    }

    /// Flat `(name, value)` snapshot.  Histograms contribute
    /// `<name>_count` and `<name>_sum`.
    pub fn samples(&self) -> Vec<(String, f64)> {
        let entries = self.entries.lock();
        let mut out = Vec::with_capacity(entries.len());
        for e in entries.iter() {
            match &e.handle {
                Handle::Counter(c) => out.push((e.name.clone(), c.get() as f64)),
                Handle::Gauge(g) => out.push((e.name.clone(), g.get())),
                Handle::Derived(f) => out.push((e.name.clone(), f())),
                Handle::Histogram(h) => {
                    out.push((format!("{}_count", e.name), h.count() as f64));
                    out.push((format!("{}_sum", e.name), h.sum()));
                }
            }
        }
        out
    }

    /// Prometheus text exposition (version 0.0.4).
    pub fn render_prometheus(&self) -> String {
        use std::fmt::Write as _;
        let entries = self.entries.lock();
        let mut out = String::new();
        for e in entries.iter() {
            let _ = writeln!(out, "# HELP {} {}", e.name, escape_help(&e.help));
            match &e.handle {
                Handle::Counter(c) => {
                    let _ = writeln!(out, "# TYPE {} counter", e.name);
                    let _ = writeln!(out, "{} {}", e.name, c.get());
                }
                Handle::Gauge(g) => {
                    let _ = writeln!(out, "# TYPE {} gauge", e.name);
                    let _ = writeln!(out, "{} {}", e.name, fmt_f64(g.get()));
                }
                Handle::Derived(f) => {
                    let _ = writeln!(out, "# TYPE {} gauge", e.name);
                    let _ = writeln!(out, "{} {}", e.name, fmt_f64(f()));
                }
                Handle::Histogram(h) => {
                    let _ = writeln!(out, "# TYPE {} histogram", e.name);
                    for (bound, cum) in h.cumulative_buckets() {
                        let le = if bound.is_infinite() {
                            "+Inf".to_string()
                        } else {
                            fmt_f64(bound)
                        };
                        let _ = writeln!(
                            out,
                            "{}_bucket{{le=\"{}\"}} {}",
                            e.name,
                            escape_label_value(&le),
                            cum
                        );
                    }
                    let _ = writeln!(out, "{}_sum {}", e.name, fmt_f64(h.sum()));
                    let _ = writeln!(out, "{}_count {}", e.name, h.count());
                }
            }
        }
        out
    }

    /// JSON exposition: one object keyed by metric name.
    pub fn render_json(&self) -> String {
        use std::fmt::Write as _;
        let entries = self.entries.lock();
        let mut out = String::from("{");
        for (i, e) in entries.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            match &e.handle {
                Handle::Counter(c) => {
                    let _ = write!(
                        out,
                        "\"{}\":{{\"type\":\"counter\",\"value\":{}}}",
                        e.name,
                        c.get()
                    );
                }
                Handle::Gauge(g) => {
                    let _ = write!(
                        out,
                        "\"{}\":{{\"type\":\"gauge\",\"value\":{}}}",
                        e.name,
                        fmt_f64(g.get())
                    );
                }
                Handle::Derived(f) => {
                    let _ = write!(
                        out,
                        "\"{}\":{{\"type\":\"gauge\",\"value\":{}}}",
                        e.name,
                        fmt_f64(f())
                    );
                }
                Handle::Histogram(h) => {
                    let _ = write!(
                        out,
                        "\"{}\":{{\"type\":\"histogram\",\"count\":{},\"sum\":{},\"buckets\":[",
                        e.name,
                        h.count(),
                        fmt_f64(h.sum())
                    );
                    for (j, (bound, cum)) in h.cumulative_buckets().into_iter().enumerate() {
                        if j > 0 {
                            out.push(',');
                        }
                        let le = if bound.is_infinite() {
                            "\"+Inf\"".to_string()
                        } else {
                            fmt_f64(bound)
                        };
                        let _ = write!(out, "{{\"le\":{le},\"count\":{cum}}}");
                    }
                    out.push_str("]}");
                }
            }
        }
        out.push('}');
        out
    }
}

/// Escape a HELP string per the Prometheus text exposition format:
/// backslash and line feed become `\\` and `\n`.
fn escape_help(s: &str) -> String {
    if !s.contains(['\\', '\n']) {
        return s.to_string();
    }
    let mut out = String::with_capacity(s.len() + 4);
    for ch in s.chars() {
        match ch {
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            c => out.push(c),
        }
    }
    out
}

/// Escape a label value per the Prometheus text exposition format:
/// backslash, double-quote and line feed become `\\`, `\"` and `\n`.
fn escape_label_value(s: &str) -> String {
    if !s.contains(['\\', '"', '\n']) {
        return s.to_string();
    }
    let mut out = String::with_capacity(s.len() + 4);
    for ch in s.chars() {
        match ch {
            '\\' => out.push_str("\\\\"),
            '"' => out.push_str("\\\""),
            '\n' => out.push_str("\\n"),
            c => out.push(c),
        }
    }
    out
}

/// `f64` formatting that stays valid JSON (no NaN/inf literals).
fn fmt_f64(v: f64) -> String {
    if v.is_finite() {
        format!("{v}")
    } else {
        "0".to_string()
    }
}

/// The process-wide registry.
pub fn global() -> &'static Registry {
    static GLOBAL: OnceLock<Registry> = OnceLock::new();
    GLOBAL.get_or_init(Registry::new)
}

/// Handles onto every engine metric, registered once per process.
pub struct EngineMetrics {
    /// Queries executed through `Database::execute`.
    pub queries_total: Arc<Counter>,
    /// End-to-end statement latency (seconds).
    pub query_latency_seconds: Arc<Histogram>,
    /// Rows returned by query roots.
    pub query_rows_total: Arc<Counter>,
    /// Nanoseconds spent in the parse stage.
    pub stage_parse_ns_total: Arc<Counter>,
    /// Nanoseconds spent in the bind stage.
    pub stage_bind_ns_total: Arc<Counter>,
    /// Nanoseconds spent in the plan stage.
    pub stage_plan_ns_total: Arc<Counter>,
    /// Nanoseconds spent in the execute stage.
    pub stage_execute_ns_total: Arc<Counter>,
    /// Buffer-pool page requests (hit or miss).
    pub bufferpool_logical_reads_total: Arc<Counter>,
    /// Buffer-pool misses fetched from the backend.
    pub bufferpool_physical_reads_total: Arc<Counter>,
    /// Dirty pages written back.
    pub bufferpool_physical_writes_total: Arc<Counter>,
    /// WAL records appended.
    pub wal_records_total: Arc<Counter>,
    /// WAL bytes appended.
    pub wal_bytes_total: Arc<Counter>,
    /// `sync_data` calls issued against the WAL file.
    pub wal_fsyncs_total: Arc<Counter>,
    /// Records made durable per group-commit fsync (batch size).
    pub wal_group_commit_batch: Arc<Histogram>,
    /// Checkpoints completed.
    pub checkpoints_total: Arc<Counter>,
    /// Dirty pages flushed by checkpoints.
    pub checkpoint_pages_flushed_total: Arc<Counter>,
    /// WAL records re-applied during recovery.
    pub recovery_replayed_records_total: Arc<Counter>,
    /// Recoveries that restored from a checkpoint snapshot (vs. full replay).
    pub recovery_snapshot_restores_total: Arc<Counter>,
    /// Index nodes visited by index scans.
    pub index_node_visits_total: Arc<Counter>,
    /// Extension-operator (ψ/Ω) evaluations.
    pub ext_op_calls_total: Arc<Counter>,
    /// ψ edit-distance computations (DP evaluations).
    pub psi_distance_calls_total: Arc<Counter>,
    /// Grapheme→phoneme conversions performed.
    pub phoneme_conversions_total: Arc<Counter>,
    /// Nanoseconds spent converting graphemes to phonemes.
    pub phoneme_conversion_ns_total: Arc<Counter>,
    /// M-Tree nodes visited by probes.
    pub mtree_node_visits_total: Arc<Counter>,
    /// M-Tree metric-distance computations.
    pub mtree_distance_computations_total: Arc<Counter>,
    /// Taxonomy closure-cache hits (Ω memoization, §4.3).
    pub taxonomy_closure_cache_hits_total: Arc<Counter>,
    /// Taxonomy closure-cache misses.
    pub taxonomy_closure_cache_misses_total: Arc<Counter>,
    /// Ω probes decided by the interval index alone (no closure, no lock).
    pub omega_interval_hits_total: Arc<Counter>,
    /// Ω probes the interval index deferred to the closure-cache path.
    pub omega_interval_fallbacks_total: Arc<Counter>,
    /// Interval-index rebuilds triggered by taxonomy mutations.
    pub omega_interval_rebuilds_total: Arc<Counter>,
    /// PL function-manager crossings.
    pub pl_udf_calls_total: Arc<Counter>,
    /// PL SPI statements executed.
    pub pl_spi_statements_total: Arc<Counter>,
    /// PL rows fetched through SPI cursors.
    pub pl_rows_fetched_total: Arc<Counter>,
    /// Plan-cache lookups that reused a cached physical plan.
    pub plan_cache_hits_total: Arc<Counter>,
    /// Plan-cache lookups that fell through to the planner.
    pub plan_cache_misses_total: Arc<Counter>,
    /// Plan-cache flushes caused by DDL / ANALYZE epoch bumps.
    pub plan_cache_invalidations_total: Arc<Counter>,
    /// Sessions opened against an engine.
    pub sessions_opened_total: Arc<Counter>,
    /// Morsels (page ranges) claimed by parallel-scan workers.
    pub parallel_morsels_dispatched_total: Arc<Counter>,
    /// Nanoseconds parallel-scan workers spent executing morsels.
    pub parallel_worker_busy_ns_total: Arc<Counter>,
    /// Nanoseconds gather nodes spent blocked waiting for worker batches.
    pub parallel_gather_wait_ns_total: Arc<Counter>,
    /// q-error of sequential-scan row estimates (plan store feedback).
    pub qerror_seqscan: Arc<Histogram>,
    /// q-error of ψ (LexEQUAL) scan row estimates.
    pub qerror_psi: Arc<Histogram>,
    /// q-error of Ω (SemEQUAL) scan row estimates.
    pub qerror_omega: Arc<Histogram>,
    /// q-error of index-scan row estimates.
    pub qerror_indexscan: Arc<Histogram>,
    /// Stale-statistics advisories raised (edge-triggered per table).
    pub stats_advisories_total: Arc<Counter>,
    /// Transactions begun (explicit BEGIN and autocommit wrappers).
    pub txn_begins_total: Arc<Counter>,
    /// Transactions committed.
    pub txn_commits_total: Arc<Counter>,
    /// Transactions aborted (ROLLBACK, statement failure, or conflict).
    pub txn_aborts_total: Arc<Counter>,
    /// Write-write conflicts detected (first-updater-wins losers).
    pub txn_conflicts_total: Arc<Counter>,
}

/// The engine's metric handles (registered in [`global`] on first use).
pub fn metrics() -> &'static EngineMetrics {
    static METRICS: OnceLock<EngineMetrics> = OnceLock::new();
    METRICS.get_or_init(|| {
        let r = global();
        // The per-class wait histograms register alongside the engine
        // metrics so the exposition surfaces always list every class,
        // contended yet or not.
        super::waits::ensure_registered();
        // Query latencies from microseconds to tens of seconds.
        let latency_bounds = [
            50e-6, 100e-6, 250e-6, 500e-6, 1e-3, 2.5e-3, 5e-3, 10e-3, 25e-3, 50e-3, 100e-3, 250e-3,
            500e-3, 1.0, 2.5, 5.0, 10.0,
        ];
        // q-error is ≥ 1 by construction; powers of two up to "three
        // orders of magnitude off" cover everything worth bucketing.
        const QERROR_BOUNDS: [f64; 8] = [1.0, 2.0, 4.0, 8.0, 16.0, 64.0, 256.0, 1024.0];
        let m = EngineMetrics {
            queries_total: r.counter("mlql_queries_total", "Statements executed"),
            query_latency_seconds: r.histogram(
                "mlql_query_latency_seconds",
                "End-to-end statement latency",
                &latency_bounds,
            ),
            query_rows_total: r.counter("mlql_query_rows_total", "Rows produced by query roots"),
            stage_parse_ns_total: r
                .counter("mlql_stage_parse_ns_total", "Time in parse stage (ns)"),
            stage_bind_ns_total: r.counter("mlql_stage_bind_ns_total", "Time in bind stage (ns)"),
            stage_plan_ns_total: r.counter("mlql_stage_plan_ns_total", "Time in plan stage (ns)"),
            stage_execute_ns_total: r
                .counter("mlql_stage_execute_ns_total", "Time in execute stage (ns)"),
            bufferpool_logical_reads_total: r.counter(
                "mlql_bufferpool_logical_reads_total",
                "Buffer-pool page requests",
            ),
            bufferpool_physical_reads_total: r
                .counter("mlql_bufferpool_physical_reads_total", "Buffer-pool misses"),
            bufferpool_physical_writes_total: r.counter(
                "mlql_bufferpool_physical_writes_total",
                "Dirty page writebacks",
            ),
            wal_records_total: r.counter("mlql_wal_records_total", "WAL records appended"),
            wal_bytes_total: r.counter("mlql_wal_bytes_total", "WAL bytes appended"),
            wal_fsyncs_total: r.counter("mlql_wal_fsyncs_total", "WAL sync_data calls"),
            wal_group_commit_batch: r.histogram(
                "mlql_wal_group_commit_batch",
                "Records made durable per group-commit fsync",
                &[1.0, 2.0, 4.0, 8.0, 16.0, 32.0, 64.0],
            ),
            checkpoints_total: r.counter("mlql_checkpoints_total", "Checkpoints completed"),
            checkpoint_pages_flushed_total: r.counter(
                "mlql_checkpoint_pages_flushed_total",
                "Dirty pages flushed by checkpoints",
            ),
            recovery_replayed_records_total: r.counter(
                "mlql_recovery_replayed_records_total",
                "WAL records re-applied during recovery",
            ),
            recovery_snapshot_restores_total: r.counter(
                "mlql_recovery_snapshot_restores_total",
                "Recoveries restored from a checkpoint snapshot",
            ),
            index_node_visits_total: r
                .counter("mlql_index_node_visits_total", "Index nodes visited"),
            ext_op_calls_total: r
                .counter("mlql_ext_op_calls_total", "Extension-operator evaluations"),
            psi_distance_calls_total: r.counter(
                "mlql_psi_distance_calls_total",
                "Psi edit-distance computations",
            ),
            phoneme_conversions_total: r.counter(
                "mlql_phoneme_conversions_total",
                "Grapheme-to-phoneme conversions",
            ),
            phoneme_conversion_ns_total: r.counter(
                "mlql_phoneme_conversion_ns_total",
                "Time converting phonemes (ns)",
            ),
            mtree_node_visits_total: r
                .counter("mlql_mtree_node_visits_total", "M-Tree nodes visited"),
            mtree_distance_computations_total: r.counter(
                "mlql_mtree_distance_computations_total",
                "M-Tree metric-distance computations",
            ),
            taxonomy_closure_cache_hits_total: r.counter(
                "mlql_taxonomy_closure_cache_hits_total",
                "Omega closure-cache hits",
            ),
            omega_interval_hits_total: r.counter(
                "mlql_omega_interval_hits_total",
                "Omega probes decided by interval containment alone",
            ),
            omega_interval_fallbacks_total: r.counter(
                "mlql_omega_interval_fallbacks_total",
                "Omega probes deferred from intervals to the closure cache",
            ),
            omega_interval_rebuilds_total: r.counter(
                "mlql_omega_interval_rebuilds_total",
                "Interval-index rebuilds after taxonomy mutations",
            ),
            taxonomy_closure_cache_misses_total: r.counter(
                "mlql_taxonomy_closure_cache_misses_total",
                "Omega closure-cache misses",
            ),
            pl_udf_calls_total: r
                .counter("mlql_pl_udf_calls_total", "PL function-manager crossings"),
            pl_spi_statements_total: r
                .counter("mlql_pl_spi_statements_total", "PL SPI statements executed"),
            pl_rows_fetched_total: r
                .counter("mlql_pl_rows_fetched_total", "PL rows fetched through SPI"),
            plan_cache_hits_total: r.counter("mlql_plan_cache_hits_total", "Plan-cache hits"),
            plan_cache_misses_total: r.counter("mlql_plan_cache_misses_total", "Plan-cache misses"),
            plan_cache_invalidations_total: r.counter(
                "mlql_plan_cache_invalidations_total",
                "Plan-cache flushes from DDL/ANALYZE",
            ),
            sessions_opened_total: r.counter(
                "mlql_sessions_opened_total",
                "Sessions opened against an engine",
            ),
            parallel_morsels_dispatched_total: r.counter(
                "mlql_parallel_morsels_dispatched_total",
                "Morsels claimed by parallel-scan workers",
            ),
            parallel_worker_busy_ns_total: r.counter(
                "mlql_parallel_worker_busy_ns_total",
                "Parallel-scan worker busy time (ns)",
            ),
            parallel_gather_wait_ns_total: r.counter(
                "mlql_parallel_gather_wait_ns_total",
                "Gather-node wait on worker batches (ns)",
            ),
            qerror_seqscan: r.histogram(
                "mlql_qerror_seqscan",
                "q-error of seq-scan row estimates",
                &QERROR_BOUNDS,
            ),
            qerror_psi: r.histogram(
                "mlql_qerror_psi",
                "q-error of psi (LexEQUAL) scan row estimates",
                &QERROR_BOUNDS,
            ),
            qerror_omega: r.histogram(
                "mlql_qerror_omega",
                "q-error of omega (SemEQUAL) scan row estimates",
                &QERROR_BOUNDS,
            ),
            qerror_indexscan: r.histogram(
                "mlql_qerror_indexscan",
                "q-error of index-scan row estimates",
                &QERROR_BOUNDS,
            ),
            stats_advisories_total: r.counter(
                "mlql_stats_advisories_total",
                "Stale-statistics advisories raised",
            ),
            txn_begins_total: r.counter("mlql_txn_begins_total", "Transactions begun"),
            txn_commits_total: r.counter("mlql_txn_commits_total", "Transactions committed"),
            txn_aborts_total: r.counter("mlql_txn_aborts_total", "Transactions aborted"),
            txn_conflicts_total: r.counter(
                "mlql_txn_conflicts_total",
                "Write-write conflicts (first-updater-wins losers)",
            ),
        };
        // Derived at render time so the fetch path pays nothing.
        let logical = Arc::clone(&m.bufferpool_logical_reads_total);
        let physical = Arc::clone(&m.bufferpool_physical_reads_total);
        r.derived_gauge(
            "mlql_bufferpool_hit_ratio",
            "Fraction of page requests served from memory",
            move || {
                let l = logical.get();
                if l == 0 {
                    return 1.0;
                }
                1.0 - physical.get() as f64 / l as f64
            },
        );
        m
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_and_gauge_roundtrip() {
        let r = Registry::new();
        let c = r.counter("c_total", "a counter");
        c.inc();
        c.add(4);
        assert_eq!(c.get(), 5);
        // Re-registration returns the same handle.
        let c2 = r.counter("c_total", "a counter");
        c2.inc();
        assert_eq!(c.get(), 6);
        let g = r.gauge("g", "a gauge");
        g.set(0.25);
        assert_eq!(g.get(), 0.25);
    }

    #[test]
    fn histogram_buckets_are_cumulative() {
        let r = Registry::new();
        let h = r.histogram("lat", "latency", &[1.0, 10.0, 100.0]);
        for v in [0.5, 0.7, 5.0, 50.0, 5000.0] {
            h.observe(v);
        }
        assert_eq!(h.count(), 5);
        assert!((h.sum() - 5056.2).abs() < 1e-9);
        let buckets = h.cumulative_buckets();
        assert_eq!(buckets[0], (1.0, 2));
        assert_eq!(buckets[1], (10.0, 3));
        assert_eq!(buckets[2], (100.0, 4));
        assert!(buckets[3].0.is_infinite());
        assert_eq!(buckets[3].1, 5);
    }

    #[test]
    fn prometheus_exposition_format() {
        let r = Registry::new();
        r.counter("x_total", "counts x").add(7);
        let h = r.histogram("y_seconds", "times y", &[0.1]);
        h.observe(0.05);
        r.derived_gauge("z_ratio", "derived", || 0.5);
        let text = r.render_prometheus();
        assert!(text.contains("# HELP x_total counts x"), "{text}");
        assert!(text.contains("# TYPE x_total counter"), "{text}");
        assert!(text.contains("x_total 7"), "{text}");
        assert!(text.contains("y_seconds_bucket{le=\"0.1\"} 1"), "{text}");
        assert!(text.contains("y_seconds_bucket{le=\"+Inf\"} 1"), "{text}");
        assert!(text.contains("y_seconds_count 1"), "{text}");
        assert!(text.contains("z_ratio 0.5"), "{text}");
    }

    #[test]
    fn prometheus_escapes_help_and_label_values() {
        let r = Registry::new();
        r.counter("esc_total", "path C:\\tmp\nsecond line").add(1);
        let text = r.render_prometheus();
        assert!(
            text.contains("# HELP esc_total path C:\\\\tmp\\nsecond line"),
            "HELP must escape backslash and newline: {text}"
        );
        // The escaped HELP stays on one physical line.
        let help_line = text
            .lines()
            .find(|l| l.starts_with("# HELP esc_total"))
            .unwrap();
        assert_eq!(help_line, "# HELP esc_total path C:\\\\tmp\\nsecond line");
        assert_eq!(escape_label_value("a\"b\\c\nd"), "a\\\"b\\\\c\\nd");
        assert_eq!(escape_label_value("plain"), "plain");
        assert_eq!(escape_help("plain"), "plain");
    }

    #[test]
    fn histogram_observe_is_consistent_under_concurrency() {
        // Satellite: hammer one histogram from many threads and check the
        // cumulative view adds up exactly — counts are per-bucket atomics,
        // the sum is a CAS loop, and neither may lose updates.
        let r = Registry::new();
        let h = r.histogram("conc", "concurrent", &[1.0, 10.0, 100.0]);
        const THREADS: usize = 8;
        const PER_THREAD: usize = 5_000;
        std::thread::scope(|s| {
            for t in 0..THREADS {
                let h = Arc::clone(&h);
                s.spawn(move || {
                    for i in 0..PER_THREAD {
                        // Cycle through every bucket incl. +Inf.
                        let v = match (t + i) % 4 {
                            0 => 0.5,
                            1 => 5.0,
                            2 => 50.0,
                            _ => 500.0,
                        };
                        h.observe(v);
                    }
                });
            }
        });
        let total = (THREADS * PER_THREAD) as u64;
        assert_eq!(h.count(), total);
        let buckets = h.cumulative_buckets();
        assert_eq!(buckets.len(), 4);
        // Cumulative counts must ascend and end at the grand total.
        for w in buckets.windows(2) {
            assert!(w[0].1 <= w[1].1, "cumulative counts must ascend");
        }
        assert_eq!(buckets[3].1, total);
        assert_eq!(buckets[0].1, total / 4, "quarter of observations per bin");
        assert_eq!(buckets[1].1, total / 2);
        assert_eq!(buckets[2].1, 3 * total / 4);
        let expected_sum = (total / 4) as f64 * (0.5 + 5.0 + 50.0 + 500.0);
        assert!(
            (h.sum() - expected_sum).abs() < 1e-6,
            "CAS sum lost updates: {} vs {}",
            h.sum(),
            expected_sum
        );
    }

    #[test]
    fn json_exposition_is_parseable_shape() {
        let r = Registry::new();
        r.counter("a_total", "a").add(3);
        r.gauge("b", "b").set(1.5);
        let h = r.histogram("c", "c", &[2.0]);
        h.observe(1.0);
        let json = r.render_json();
        assert!(json.starts_with('{') && json.ends_with('}'), "{json}");
        assert!(
            json.contains("\"a_total\":{\"type\":\"counter\",\"value\":3}"),
            "{json}"
        );
        assert!(
            json.contains("\"b\":{\"type\":\"gauge\",\"value\":1.5}"),
            "{json}"
        );
        assert!(
            json.contains("\"buckets\":[{\"le\":2,\"count\":1},{\"le\":\"+Inf\",\"count\":1}]"),
            "{json}"
        );
    }

    #[test]
    fn engine_metrics_expose_at_least_ten() {
        let _ = metrics();
        let samples = global().samples();
        assert!(samples.len() >= 10, "got {} samples", samples.len());
        let names: Vec<&str> = samples.iter().map(|(n, _)| n.as_str()).collect();
        assert!(names.contains(&"mlql_queries_total"));
        assert!(names.contains(&"mlql_bufferpool_hit_ratio"));
    }

    #[test]
    fn samples_flatten_histograms() {
        let r = Registry::new();
        let h = r.histogram("hist", "h", &[1.0]);
        h.observe(0.5);
        h.observe(2.0);
        let s = r.samples();
        assert!(s.iter().any(|(n, v)| n == "hist_count" && *v == 2.0));
        assert!(s.iter().any(|(n, v)| n == "hist_sum" && *v == 2.5));
    }
}
