//! Per-query trace spans.
//!
//! A [`QueryTrace`] records the wall-clock duration of each pipeline
//! stage (`parse`, `bind`, `plan`, `execute`) for one statement.  The
//! trace rides on `RunStats` so callers — EXPLAIN ANALYZE, benches, the
//! outside-the-server baseline — can attribute latency to stages, and
//! each stage is also accumulated into the global registry counters.

use std::time::{Duration, Instant};

/// One timed stage of a statement's lifecycle.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Span {
    /// Stage name (`"parse"`, `"bind"`, `"plan"`, `"execute"`, ...).
    pub name: &'static str,
    /// Wall-clock duration of the stage.
    pub duration: Duration,
}

/// Ordered stage timings for one statement.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct QueryTrace {
    spans: Vec<Span>,
}

impl QueryTrace {
    /// An empty trace.
    pub fn new() -> QueryTrace {
        QueryTrace::default()
    }

    /// Record a completed stage.
    pub fn record(&mut self, name: &'static str, duration: Duration) {
        self.spans.push(Span { name, duration });
    }

    /// Insert a stage before the existing ones (`parse` happens in
    /// `Database::execute`, before `run_select` builds the trace).
    pub fn prepend(&mut self, name: &'static str, duration: Duration) {
        self.spans.insert(0, Span { name, duration });
    }

    /// Time `f`, record it under `name`, and return its result.
    pub fn time<T>(&mut self, name: &'static str, f: impl FnOnce() -> T) -> T {
        let start = Instant::now();
        let out = f();
        self.record(name, start.elapsed());
        out
    }

    /// The recorded spans, in execution order.
    pub fn spans(&self) -> &[Span] {
        &self.spans
    }

    /// Duration of the named stage, if recorded (sums repeats).
    pub fn stage(&self, name: &str) -> Option<Duration> {
        let mut total = Duration::ZERO;
        let mut found = false;
        for s in &self.spans {
            if s.name == name {
                total += s.duration;
                found = true;
            }
        }
        found.then_some(total)
    }

    /// Sum of all recorded spans.
    pub fn total(&self) -> Duration {
        self.spans.iter().map(|s| s.duration).sum()
    }

    /// One-line rendering: `parse=0.012ms bind=0.034ms ...`.
    pub fn render(&self) -> String {
        let mut out = String::new();
        for (i, s) in self.spans.iter().enumerate() {
            if i > 0 {
                out.push(' ');
            }
            out.push_str(&format!(
                "{}={:.3}ms",
                s.name,
                s.duration.as_secs_f64() * 1e3
            ));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn records_and_renders_stages() {
        let mut t = QueryTrace::new();
        t.record("parse", Duration::from_micros(120));
        t.record("bind", Duration::from_micros(30));
        t.record("execute", Duration::from_millis(2));
        assert_eq!(t.spans().len(), 3);
        assert_eq!(t.stage("parse"), Some(Duration::from_micros(120)));
        assert_eq!(t.stage("plan"), None);
        assert_eq!(t.total(), Duration::from_micros(2150));
        let line = t.render();
        assert!(line.contains("parse=0.120ms"), "{line}");
        assert!(line.contains("execute=2.000ms"), "{line}");
    }

    #[test]
    fn time_closure_returns_value() {
        let mut t = QueryTrace::new();
        let v = t.time("plan", || 41 + 1);
        assert_eq!(v, 42);
        assert_eq!(t.spans()[0].name, "plan");
    }

    #[test]
    fn repeated_stage_names_sum() {
        let mut t = QueryTrace::new();
        t.record("execute", Duration::from_micros(10));
        t.record("execute", Duration::from_micros(5));
        assert_eq!(t.stage("execute"), Some(Duration::from_micros(15)));
    }
}
