//! Per-query trace spans.
//!
//! A [`QueryTrace`] records the wall-clock duration of each pipeline
//! stage (`parse`, `bind`, `plan`, `execute`) for one statement.  Since
//! the flight-recorder work, each [`Span`] is a tree node: the `execute`
//! stage of an EXPLAIN ANALYZE carries one child per plan operator
//! (mirroring the plan shape) and one child per parallel scan worker, so
//! the trace reconciles with the printed per-operator actuals.  The
//! trace rides on `RunStats` so callers — EXPLAIN ANALYZE, benches, the
//! outside-the-server baseline, the flight recorder — can attribute
//! latency to stages, and each stage is also accumulated into the global
//! registry counters.

use std::borrow::Cow;
use std::time::{Duration, Instant};

/// One timed stage of a statement's lifecycle, with optional children
/// (per-operator / per-worker sub-spans nested under their stage).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Span {
    /// Stage name (`"parse"`, `"bind"`, `"execute"`, `"Seq Scan on t"`, ...).
    pub name: Cow<'static, str>,
    /// Wall-clock duration of the stage (inclusive of children).
    pub duration: Duration,
    /// Nested sub-spans, in execution order.
    pub children: Vec<Span>,
}

impl Span {
    /// A leaf span.
    pub fn new(name: impl Into<Cow<'static, str>>, duration: Duration) -> Span {
        Span {
            name: name.into(),
            duration,
            children: Vec::new(),
        }
    }

    /// A span with children attached.
    pub fn with_children(
        name: impl Into<Cow<'static, str>>,
        duration: Duration,
        children: Vec<Span>,
    ) -> Span {
        Span {
            name: name.into(),
            duration,
            children,
        }
    }

    /// Number of spans in this subtree, including `self`.
    pub fn tree_len(&self) -> usize {
        1 + self.children.iter().map(Span::tree_len).sum::<usize>()
    }

    fn render_tree_into(&self, out: &mut String, depth: usize) {
        for _ in 0..depth {
            out.push_str("  ");
        }
        out.push_str(&format!(
            "{}={:.3}ms\n",
            self.name,
            self.duration.as_secs_f64() * 1e3
        ));
        for c in &self.children {
            c.render_tree_into(out, depth + 1);
        }
    }

    fn json_into(&self, out: &mut String) {
        out.push_str("{\"name\":\"");
        json_escape_into(&self.name, out);
        out.push_str(&format!("\",\"us\":{}", self.duration.as_micros()));
        if !self.children.is_empty() {
            out.push_str(",\"children\":[");
            for (i, c) in self.children.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                c.json_into(out);
            }
            out.push(']');
        }
        out.push('}');
    }
}

/// Escape `s` for embedding inside a JSON string literal.
pub(crate) fn json_escape_into(s: &str, out: &mut String) {
    for ch in s.chars() {
        match ch {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
}

/// Ordered stage timings for one statement: a forest of [`Span`] trees
/// (one root per pipeline stage) plus the query id that produced them.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct QueryTrace {
    query_id: u64,
    spans: Vec<Span>,
}

impl QueryTrace {
    /// An empty trace.
    pub fn new() -> QueryTrace {
        QueryTrace::default()
    }

    /// An empty trace tagged with the engine-wide query id.
    pub fn for_query(query_id: u64) -> QueryTrace {
        QueryTrace {
            query_id,
            ..QueryTrace::default()
        }
    }

    /// The engine-wide id of the statement this trace belongs to
    /// (0 when untagged, e.g. traces built by unit tests).
    pub fn query_id(&self) -> u64 {
        self.query_id
    }

    /// Tag the trace with its query id.
    pub fn set_query_id(&mut self, id: u64) {
        self.query_id = id;
    }

    /// Record a completed stage (leaf span).
    pub fn record(&mut self, name: &'static str, duration: Duration) {
        self.spans.push(Span::new(name, duration));
    }

    /// Record a completed stage with its sub-span tree attached.
    pub fn record_span(&mut self, span: Span) {
        self.spans.push(span);
    }

    /// Insert a stage before the existing ones (`parse` happens in
    /// `Session::execute`, before `run_select` builds the trace).
    pub fn prepend(&mut self, name: &'static str, duration: Duration) {
        self.spans.insert(0, Span::new(name, duration));
    }

    /// Time `f`, record it under `name`, and return its result.
    pub fn time<T>(&mut self, name: &'static str, f: impl FnOnce() -> T) -> T {
        let start = Instant::now();
        let out = f();
        self.record(name, start.elapsed());
        out
    }

    /// The recorded stage spans, in execution order.
    pub fn spans(&self) -> &[Span] {
        &self.spans
    }

    /// Attach `children` to the most recent span named `name`
    /// (used to hang per-operator spans under `execute` after the fact).
    pub fn attach_children(&mut self, name: &str, children: Vec<Span>) {
        if let Some(s) = self.spans.iter_mut().rev().find(|s| s.name == name) {
            s.children = children;
        }
    }

    /// Duration of the named top-level stage, if recorded (sums repeats).
    pub fn stage(&self, name: &str) -> Option<Duration> {
        let mut total = Duration::ZERO;
        let mut found = false;
        for s in &self.spans {
            if s.name == name {
                total += s.duration;
                found = true;
            }
        }
        found.then_some(total)
    }

    /// Sum of all top-level stage spans.
    pub fn total(&self) -> Duration {
        self.spans.iter().map(|s| s.duration).sum()
    }

    /// Total number of spans across all trees.
    pub fn tree_len(&self) -> usize {
        self.spans.iter().map(Span::tree_len).sum()
    }

    /// One-line rendering of the top-level stages:
    /// `parse=0.012ms bind=0.034ms ...`.
    pub fn render(&self) -> String {
        let mut out = String::new();
        for (i, s) in self.spans.iter().enumerate() {
            if i > 0 {
                out.push(' ');
            }
            out.push_str(&format!(
                "{}={:.3}ms",
                s.name,
                s.duration.as_secs_f64() * 1e3
            ));
        }
        out
    }

    /// Indented multi-line rendering of the full span tree.
    pub fn render_tree(&self) -> String {
        let mut out = String::new();
        for s in &self.spans {
            s.render_tree_into(&mut out, 0);
        }
        out
    }

    /// JSON rendering: `{"query_id":N,"spans":[{name,us,children},...]}`.
    pub fn to_json(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!("{{\"query_id\":{},\"spans\":[", self.query_id));
        for (i, s) in self.spans.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            s.json_into(&mut out);
        }
        out.push_str("]}");
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn records_and_renders_stages() {
        let mut t = QueryTrace::new();
        t.record("parse", Duration::from_micros(120));
        t.record("bind", Duration::from_micros(30));
        t.record("execute", Duration::from_millis(2));
        assert_eq!(t.spans().len(), 3);
        assert_eq!(t.stage("parse"), Some(Duration::from_micros(120)));
        assert_eq!(t.stage("plan"), None);
        assert_eq!(t.total(), Duration::from_micros(2150));
        let line = t.render();
        assert!(line.contains("parse=0.120ms"), "{line}");
        assert!(line.contains("execute=2.000ms"), "{line}");
    }

    #[test]
    fn time_closure_returns_value() {
        let mut t = QueryTrace::new();
        let v = t.time("plan", || 41 + 1);
        assert_eq!(v, 42);
        assert_eq!(t.spans()[0].name, "plan");
    }

    #[test]
    fn repeated_stage_names_sum() {
        let mut t = QueryTrace::new();
        t.record("execute", Duration::from_micros(10));
        t.record("execute", Duration::from_micros(5));
        assert_eq!(t.stage("execute"), Some(Duration::from_micros(15)));
    }

    #[test]
    fn span_tree_nests_and_counts() {
        let mut t = QueryTrace::for_query(7);
        t.record("plan", Duration::from_micros(10));
        t.record_span(Span::with_children(
            "execute",
            Duration::from_micros(100),
            vec![Span::with_children(
                "Seq Scan on t",
                Duration::from_micros(80),
                vec![Span::new("worker 0", Duration::from_micros(40))],
            )],
        ));
        assert_eq!(t.query_id(), 7);
        assert_eq!(t.spans().len(), 2, "two top-level stages");
        assert_eq!(t.tree_len(), 4, "four spans in total");
        // Top-level accessors ignore children.
        assert_eq!(t.stage("execute"), Some(Duration::from_micros(100)));
        assert_eq!(t.total(), Duration::from_micros(110));
        let tree = t.render_tree();
        assert!(tree.contains("\n  Seq Scan on t=0.080ms\n"), "{tree}");
        assert!(tree.contains("\n    worker 0=0.040ms\n"), "{tree}");
    }

    #[test]
    fn attach_children_targets_latest_matching_span() {
        let mut t = QueryTrace::new();
        t.record("execute", Duration::from_micros(50));
        t.attach_children("execute", vec![Span::new("op", Duration::from_micros(20))]);
        assert_eq!(t.spans()[0].children.len(), 1);
        t.attach_children("missing", vec![Span::new("x", Duration::ZERO)]);
        assert_eq!(t.tree_len(), 2, "no-op on unknown stage");
    }

    #[test]
    fn json_escapes_and_nests() {
        let mut t = QueryTrace::for_query(3);
        t.record_span(Span::with_children(
            "execute",
            Duration::from_micros(9),
            vec![Span::new(
                Cow::Owned("Filter: a = \"x\"\n".to_string()),
                Duration::from_micros(4),
            )],
        ));
        let json = t.to_json();
        assert!(json.starts_with("{\"query_id\":3,\"spans\":["), "{json}");
        assert!(
            json.contains("\\\"x\\\"\\n"),
            "escaped quote+newline: {json}"
        );
        assert!(json.contains("\"children\":[{\"name\":"), "{json}");
    }
}
