//! Typed expression trees and evaluation.

use crate::catalog::{Catalog, SessionVars};
use crate::error::{Error, Result};
use crate::value::{DataType, Datum};
use std::cmp::Ordering;
use std::fmt;

/// Comparison operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CmpOp {
    Eq,
    Ne,
    Lt,
    Le,
    Gt,
    Ge,
}

impl CmpOp {
    /// Does `ordering` satisfy the comparison?
    pub fn matches(self, ordering: Ordering) -> bool {
        matches!(
            (self, ordering),
            (CmpOp::Eq, Ordering::Equal)
                | (CmpOp::Ne, Ordering::Less)
                | (CmpOp::Ne, Ordering::Greater)
                | (CmpOp::Lt, Ordering::Less)
                | (CmpOp::Le, Ordering::Less)
                | (CmpOp::Le, Ordering::Equal)
                | (CmpOp::Gt, Ordering::Greater)
                | (CmpOp::Ge, Ordering::Greater)
                | (CmpOp::Ge, Ordering::Equal)
        )
    }

    /// B-Tree strategy name serving this comparison, if any.
    pub fn btree_strategy(self) -> Option<&'static str> {
        match self {
            CmpOp::Eq => Some("eq"),
            CmpOp::Lt => Some("lt"),
            CmpOp::Le => Some("le"),
            CmpOp::Gt => Some("gt"),
            CmpOp::Ge => Some("ge"),
            CmpOp::Ne => None,
        }
    }

    /// Mirror operator for operand swapping (`a < b ≡ b > a`).
    pub fn flip(self) -> CmpOp {
        match self {
            CmpOp::Eq => CmpOp::Eq,
            CmpOp::Ne => CmpOp::Ne,
            CmpOp::Lt => CmpOp::Gt,
            CmpOp::Le => CmpOp::Ge,
            CmpOp::Gt => CmpOp::Lt,
            CmpOp::Ge => CmpOp::Le,
        }
    }

    /// SQL spelling.
    pub fn symbol(self) -> &'static str {
        match self {
            CmpOp::Eq => "=",
            CmpOp::Ne => "<>",
            CmpOp::Lt => "<",
            CmpOp::Le => "<=",
            CmpOp::Gt => ">",
            CmpOp::Ge => ">=",
        }
    }
}

/// Arithmetic operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ArithOp {
    Add,
    Sub,
    Mul,
    Div,
}

/// An expression over a row.
#[derive(Debug, Clone)]
pub enum Expr {
    /// Column reference (index into the input schema).
    ColRef {
        index: usize,
        ty: DataType,
        name: String,
    },
    /// Literal constant.
    Literal(Datum),
    /// Comparison; extension operands compare through their registered
    /// support function (text-component semantics for UniText, §3.2.1).
    Cmp {
        op: CmpOp,
        left: Box<Expr>,
        right: Box<Expr>,
    },
    /// Arithmetic.
    Arith {
        op: ArithOp,
        left: Box<Expr>,
        right: Box<Expr>,
    },
    /// Boolean AND.
    And(Box<Expr>, Box<Expr>),
    /// Boolean OR.
    Or(Box<Expr>, Box<Expr>),
    /// Boolean NOT.
    Not(Box<Expr>),
    /// NULL test.
    IsNull(Box<Expr>),
    /// Extension operator (`author LEXEQUAL 'Nehru' IN (English, Hindi)`).
    /// `modifiers` carries the IN-list; applied to the LEFT operand through
    /// the operator's registered modifier filter.
    ExtOp {
        name: String,
        left: Box<Expr>,
        right: Box<Expr>,
        modifiers: Vec<String>,
    },
    /// Scalar function call.
    Func { name: String, args: Vec<Expr> },
}

impl Expr {
    /// Literal integer helper.
    pub fn int(v: i64) -> Expr {
        Expr::Literal(Datum::Int(v))
    }

    /// Literal text helper.
    pub fn text(s: &str) -> Expr {
        Expr::Literal(Datum::text(s))
    }

    /// Is this expression a constant (no column references)?
    pub fn is_const(&self) -> bool {
        match self {
            Expr::ColRef { .. } => false,
            Expr::Literal(_) => true,
            Expr::Cmp { left, right, .. }
            | Expr::Arith { left, right, .. }
            | Expr::ExtOp { left, right, .. } => left.is_const() && right.is_const(),
            Expr::And(l, r) | Expr::Or(l, r) => l.is_const() && r.is_const(),
            Expr::Not(e) | Expr::IsNull(e) => e.is_const(),
            Expr::Func { args, .. } => args.iter().all(Expr::is_const),
        }
    }

    /// Does an extension operator named `name` (case-insensitive) appear
    /// anywhere in this expression tree?  The plan store uses this to
    /// attribute scan q-errors to the ψ/Ω operator class evaluating the
    /// pushed-down predicate.
    pub fn contains_ext_op(&self, name: &str) -> bool {
        match self {
            Expr::ColRef { .. } | Expr::Literal(_) => false,
            Expr::Cmp { left, right, .. } | Expr::Arith { left, right, .. } => {
                left.contains_ext_op(name) || right.contains_ext_op(name)
            }
            Expr::ExtOp {
                name: op,
                left,
                right,
                ..
            } => {
                op.eq_ignore_ascii_case(name)
                    || left.contains_ext_op(name)
                    || right.contains_ext_op(name)
            }
            Expr::And(l, r) | Expr::Or(l, r) => l.contains_ext_op(name) || r.contains_ext_op(name),
            Expr::Not(e) | Expr::IsNull(e) => e.contains_ext_op(name),
            Expr::Func { args, .. } => args.iter().any(|a| a.contains_ext_op(name)),
        }
    }

    /// Column indexes referenced by this expression (sorted, deduplicated).
    pub fn columns(&self) -> Vec<usize> {
        let mut out = Vec::new();
        self.collect_columns(&mut out);
        out.sort_unstable();
        out.dedup();
        out
    }

    fn collect_columns(&self, out: &mut Vec<usize>) {
        match self {
            Expr::ColRef { index, .. } => out.push(*index),
            Expr::Literal(_) => {}
            Expr::Cmp { left, right, .. }
            | Expr::Arith { left, right, .. }
            | Expr::ExtOp { left, right, .. } => {
                left.collect_columns(out);
                right.collect_columns(out);
            }
            Expr::And(l, r) | Expr::Or(l, r) => {
                l.collect_columns(out);
                r.collect_columns(out);
            }
            Expr::Not(e) | Expr::IsNull(e) => e.collect_columns(out),
            Expr::Func { args, .. } => {
                for a in args {
                    a.collect_columns(out);
                }
            }
        }
    }

    /// Shift all column references by `delta` (used when moving predicates
    /// across join inputs).
    pub fn shift_columns(&self, delta: isize) -> Expr {
        self.map_columns(&|i| (i as isize + delta) as usize)
    }

    /// Rewrite every column reference through `f` (join reordering).
    pub fn map_columns(&self, f: &impl Fn(usize) -> usize) -> Expr {
        let map = |e: &Expr| e.map_columns(f);
        match self {
            Expr::ColRef { index, ty, name } => Expr::ColRef {
                index: f(*index),
                ty: *ty,
                name: name.clone(),
            },
            Expr::Literal(d) => Expr::Literal(d.clone()),
            Expr::Cmp { op, left, right } => Expr::Cmp {
                op: *op,
                left: Box::new(map(left)),
                right: Box::new(map(right)),
            },
            Expr::Arith { op, left, right } => Expr::Arith {
                op: *op,
                left: Box::new(map(left)),
                right: Box::new(map(right)),
            },
            Expr::And(l, r) => Expr::And(Box::new(map(l)), Box::new(map(r))),
            Expr::Or(l, r) => Expr::Or(Box::new(map(l)), Box::new(map(r))),
            Expr::Not(e) => Expr::Not(Box::new(map(e))),
            Expr::IsNull(e) => Expr::IsNull(Box::new(map(e))),
            Expr::ExtOp {
                name,
                left,
                right,
                modifiers,
            } => Expr::ExtOp {
                name: name.clone(),
                left: Box::new(map(left)),
                right: Box::new(map(right)),
                modifiers: modifiers.clone(),
            },
            Expr::Func { name, args } => Expr::Func {
                name: name.clone(),
                args: args.iter().map(map).collect(),
            },
        }
    }

    /// Result type, when statically known.
    pub fn data_type(&self) -> Option<DataType> {
        match self {
            Expr::ColRef { ty, .. } => Some(*ty),
            Expr::Literal(d) => d.data_type(),
            Expr::Cmp { .. } | Expr::And(..) | Expr::Or(..) | Expr::Not(_) | Expr::IsNull(_) => {
                Some(DataType::Bool)
            }
            Expr::ExtOp { .. } => Some(DataType::Bool),
            Expr::Arith { left, right, .. } => match (left.data_type(), right.data_type()) {
                (Some(DataType::Float), _) | (_, Some(DataType::Float)) => Some(DataType::Float),
                (Some(DataType::Int), Some(DataType::Int)) => Some(DataType::Int),
                _ => None,
            },
            Expr::Func { .. } => None, // binder resolves through the catalog
        }
    }
}

/// Evaluation context: catalog for extension dispatch, session vars for
/// operator thresholds.
pub struct EvalCtx<'a> {
    /// The catalog (type/operator/function lookup).
    pub catalog: &'a Catalog,
    /// Session variables.
    pub session: &'a SessionVars,
    /// Query runtime counters, when evaluating inside an executor.
    /// Extension-operator invocations are counted HERE — the only place
    /// that knows an ExtOp was actually dispatched — so the count
    /// reconciles with the cost model's per-tuple charge regardless of
    /// which plan operator owns the predicate.
    pub stats: Option<&'a crate::exec::ExecStats>,
}

impl<'a> EvalCtx<'a> {
    /// A context without runtime counters (DML paths, constant folding).
    pub fn new(catalog: &'a Catalog, session: &'a SessionVars) -> EvalCtx<'a> {
        EvalCtx {
            catalog,
            session,
            stats: None,
        }
    }
}

impl Expr {
    /// Evaluate against a row.
    pub fn eval(&self, row: &[Datum], ctx: &EvalCtx<'_>) -> Result<Datum> {
        match self {
            Expr::ColRef { index, .. } => row
                .get(*index)
                .cloned()
                .ok_or_else(|| Error::Execution(format!("column {index} out of range"))),
            Expr::Literal(d) => Ok(d.clone()),
            Expr::Cmp { op, left, right } => {
                let l = left.eval(row, ctx)?;
                let r = right.eval(row, ctx)?;
                if l.is_null() || r.is_null() {
                    return Ok(Datum::Null);
                }
                let ordering = match (&l, &r) {
                    (Datum::Ext { ty: t1, bytes: b1 }, Datum::Ext { ty: t2, bytes: b2 })
                        if t1 == t2 =>
                    {
                        match ctx.catalog.type_by_id(*t1) {
                            Some(def) => (def.compare)(b1, b2),
                            None => l.cmp_sql(&r),
                        }
                    }
                    // Mixed ext-vs-text goes through the type's text
                    // comparator (UniText: its text component).
                    (Datum::Ext { ty, bytes }, Datum::Text(s)) => {
                        match ctx
                            .catalog
                            .type_by_id(*ty)
                            .and_then(|d| d.compare_text.clone())
                        {
                            Some(cmp) => cmp(bytes, s),
                            None => {
                                return Err(Error::Execution(format!(
                                    "type ext#{} does not compare with text",
                                    ty.0
                                )))
                            }
                        }
                    }
                    (Datum::Text(s), Datum::Ext { ty, bytes }) => {
                        match ctx
                            .catalog
                            .type_by_id(*ty)
                            .and_then(|d| d.compare_text.clone())
                        {
                            Some(cmp) => cmp(bytes, s).reverse(),
                            None => {
                                return Err(Error::Execution(format!(
                                    "type ext#{} does not compare with text",
                                    ty.0
                                )))
                            }
                        }
                    }
                    _ => l.cmp_sql(&r),
                };
                Ok(Datum::Bool(op.matches(ordering)))
            }
            Expr::Arith { op, left, right } => {
                let l = left.eval(row, ctx)?;
                let r = right.eval(row, ctx)?;
                if l.is_null() || r.is_null() {
                    return Ok(Datum::Null);
                }
                eval_arith(*op, &l, &r)
            }
            Expr::And(l, r) => {
                let lv = l.eval(row, ctx)?;
                if matches!(lv, Datum::Bool(false)) {
                    return Ok(Datum::Bool(false));
                }
                let rv = r.eval(row, ctx)?;
                Ok(match (lv, rv) {
                    (Datum::Bool(true), Datum::Bool(true)) => Datum::Bool(true),
                    (_, Datum::Bool(false)) => Datum::Bool(false),
                    _ => Datum::Null,
                })
            }
            Expr::Or(l, r) => {
                let lv = l.eval(row, ctx)?;
                if matches!(lv, Datum::Bool(true)) {
                    return Ok(Datum::Bool(true));
                }
                let rv = r.eval(row, ctx)?;
                Ok(match (lv, rv) {
                    (Datum::Bool(false), Datum::Bool(false)) => Datum::Bool(false),
                    (_, Datum::Bool(true)) => Datum::Bool(true),
                    _ => Datum::Null,
                })
            }
            Expr::Not(e) => Ok(match e.eval(row, ctx)? {
                Datum::Bool(b) => Datum::Bool(!b),
                Datum::Null => Datum::Null,
                other => {
                    return Err(Error::Execution(format!("NOT applied to {other}")));
                }
            }),
            Expr::IsNull(e) => Ok(Datum::Bool(e.eval(row, ctx)?.is_null())),
            Expr::ExtOp {
                name,
                left,
                right,
                modifiers,
            } => {
                let op = ctx
                    .catalog
                    .operator(name)
                    .ok_or_else(|| Error::Execution(format!("unknown operator {name:?}")))?;
                let l = left.eval(row, ctx)?;
                let r = right.eval(row, ctx)?;
                if l.is_null() || r.is_null() {
                    return Ok(Datum::Null);
                }
                if let Some(stats) = ctx.stats {
                    stats.ext_op_calls.add(1);
                }
                crate::obs::metrics().ext_op_calls_total.inc();
                let verdict = (op.eval)(&l, &r, ctx.session)?;
                // Language modifier (`IN English, Hindi`): a conjunct over
                // the LEFT operand, delegated to the operator's filter.
                if !modifiers.is_empty() && verdict.is_true() {
                    if let Some(filter) = &op.modifier_filter {
                        return Ok(Datum::Bool(filter(&l, modifiers)));
                    }
                }
                Ok(verdict)
            }
            Expr::Func { name, args } => {
                let f = ctx
                    .catalog
                    .function(name)
                    .ok_or_else(|| Error::Execution(format!("unknown function {name:?}")))?;
                if args.len() != f.arity {
                    return Err(Error::Execution(format!(
                        "{name} expects {} args, got {}",
                        f.arity,
                        args.len()
                    )));
                }
                let mut vals = Vec::with_capacity(args.len());
                for a in args {
                    vals.push(a.eval(row, ctx)?);
                }
                (f.eval)(&vals, ctx.session)
            }
        }
    }

    /// Evaluate against every row of a batch, returning one value per row.
    ///
    /// Result- and counter-identical to calling [`Expr::eval`] on each row
    /// in order: AND/OR keep their short-circuit shape (the right side is
    /// only evaluated for rows the left side did not decide) and the ExtOp
    /// arm charges `ext_op_calls` once per non-null operand pair.  The
    /// payoff is the ExtOp fast path: a `col OP const` predicate whose
    /// operator registers an `eval_batch` hook dispatches once per batch
    /// instead of once per row, so the operator can hoist constant-side
    /// conversion and buffer setup out of the inner loop (ψ converts the
    /// probe's phonemes and compiles its Myers mask once per batch).
    pub fn eval_batch(&self, rows: &[&[Datum]], ctx: &EvalCtx<'_>) -> Result<Vec<Datum>> {
        match self {
            Expr::ExtOp {
                name,
                left,
                right,
                modifiers,
            } if right.is_const() => {
                let op = ctx
                    .catalog
                    .operator(name)
                    .ok_or_else(|| Error::Execution(format!("unknown operator {name:?}")))?;
                let Some(batch_eval) = &op.eval_batch else {
                    return rows.iter().map(|&row| self.eval(row, ctx)).collect();
                };
                let rv = right.eval(&[], ctx)?;
                if rv.is_null() {
                    return Ok(vec![Datum::Null; rows.len()]);
                }
                // NULL left operands yield NULL without being dispatched
                // (or counted), exactly like the scalar arm.
                let mut out = vec![Datum::Null; rows.len()];
                let mut lefts = Vec::with_capacity(rows.len());
                let mut idxs = Vec::with_capacity(rows.len());
                for (i, &row) in rows.iter().enumerate() {
                    let lv = left.eval(row, ctx)?;
                    if lv.is_null() {
                        continue;
                    }
                    idxs.push(i);
                    lefts.push(lv);
                }
                if let Some(stats) = ctx.stats {
                    stats.ext_op_calls.add(lefts.len() as u64);
                }
                crate::obs::metrics()
                    .ext_op_calls_total
                    .add(lefts.len() as u64);
                let refs: Vec<&Datum> = lefts.iter().collect();
                let verdicts = batch_eval(&refs, &rv, ctx.session)?;
                if verdicts.len() != lefts.len() {
                    return Err(Error::Execution(format!(
                        "operator {name:?} batch eval returned {} verdicts for {} inputs",
                        verdicts.len(),
                        lefts.len()
                    )));
                }
                for ((&i, lv), verdict) in idxs.iter().zip(&lefts).zip(verdicts) {
                    out[i] = if !modifiers.is_empty() && verdict.is_true() {
                        match &op.modifier_filter {
                            Some(filter) => Datum::Bool(filter(lv, modifiers)),
                            None => verdict,
                        }
                    } else {
                        verdict
                    };
                }
                Ok(out)
            }
            Expr::And(l, r) => {
                let mut out = l.eval_batch(rows, ctx)?;
                let mut sub_rows = Vec::new();
                let mut sub_idx = Vec::new();
                for (i, lv) in out.iter().enumerate() {
                    if !matches!(lv, Datum::Bool(false)) {
                        sub_rows.push(rows[i]);
                        sub_idx.push(i);
                    }
                }
                let rvs = r.eval_batch(&sub_rows, ctx)?;
                for (&i, rv) in sub_idx.iter().zip(rvs) {
                    out[i] = match (&out[i], rv) {
                        (Datum::Bool(true), Datum::Bool(true)) => Datum::Bool(true),
                        (_, Datum::Bool(false)) => Datum::Bool(false),
                        _ => Datum::Null,
                    };
                }
                Ok(out)
            }
            Expr::Or(l, r) => {
                let mut out = l.eval_batch(rows, ctx)?;
                let mut sub_rows = Vec::new();
                let mut sub_idx = Vec::new();
                for (i, lv) in out.iter().enumerate() {
                    if !matches!(lv, Datum::Bool(true)) {
                        sub_rows.push(rows[i]);
                        sub_idx.push(i);
                    }
                }
                let rvs = r.eval_batch(&sub_rows, ctx)?;
                for (&i, rv) in sub_idx.iter().zip(rvs) {
                    out[i] = match (&out[i], rv) {
                        (Datum::Bool(false), Datum::Bool(false)) => Datum::Bool(false),
                        (_, Datum::Bool(true)) => Datum::Bool(true),
                        _ => Datum::Null,
                    };
                }
                Ok(out)
            }
            Expr::Not(e) => {
                let mut vals = e.eval_batch(rows, ctx)?;
                for v in &mut vals {
                    *v = match v {
                        Datum::Bool(b) => Datum::Bool(!*b),
                        Datum::Null => Datum::Null,
                        other => {
                            return Err(Error::Execution(format!("NOT applied to {other}")));
                        }
                    };
                }
                Ok(vals)
            }
            _ => rows.iter().map(|&row| self.eval(row, ctx)).collect(),
        }
    }
}

fn eval_arith(op: ArithOp, l: &Datum, r: &Datum) -> Result<Datum> {
    use Datum::{Float, Int};
    match (l, r) {
        (Int(a), Int(b)) => Ok(match op {
            ArithOp::Add => Int(a.wrapping_add(*b)),
            ArithOp::Sub => Int(a.wrapping_sub(*b)),
            ArithOp::Mul => Int(a.wrapping_mul(*b)),
            ArithOp::Div => {
                if *b == 0 {
                    return Err(Error::Execution("division by zero".into()));
                }
                Int(a / b)
            }
        }),
        _ => {
            let a = l
                .as_float()
                .ok_or_else(|| Error::Execution(format!("non-numeric {l}")))?;
            let b = r
                .as_float()
                .ok_or_else(|| Error::Execution(format!("non-numeric {r}")))?;
            Ok(match op {
                ArithOp::Add => Float(a + b),
                ArithOp::Sub => Float(a - b),
                ArithOp::Mul => Float(a * b),
                ArithOp::Div => {
                    if b == 0.0 {
                        return Err(Error::Execution("division by zero".into()));
                    }
                    Float(a / b)
                }
            })
        }
    }
}

impl fmt::Display for Expr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Expr::ColRef { name, .. } => write!(f, "{name}"),
            Expr::Literal(d) => match d {
                Datum::Text(s) => write!(f, "'{s}'"),
                other => write!(f, "{other}"),
            },
            Expr::Cmp { op, left, right } => write!(f, "({left} {} {right})", op.symbol()),
            Expr::Arith { op, left, right } => {
                let sym = match op {
                    ArithOp::Add => "+",
                    ArithOp::Sub => "-",
                    ArithOp::Mul => "*",
                    ArithOp::Div => "/",
                };
                write!(f, "({left} {sym} {right})")
            }
            Expr::And(l, r) => write!(f, "({l} AND {r})"),
            Expr::Or(l, r) => write!(f, "({l} OR {r})"),
            Expr::Not(e) => write!(f, "(NOT {e})"),
            Expr::IsNull(e) => write!(f, "({e} IS NULL)"),
            Expr::ExtOp {
                name,
                left,
                right,
                modifiers,
            } => {
                write!(f, "({left} {} {right}", name.to_uppercase())?;
                if !modifiers.is_empty() {
                    write!(f, " IN ({})", modifiers.join(", "))?;
                }
                write!(f, ")")
            }
            Expr::Func { name, args } => {
                write!(f, "{name}(")?;
                for (i, a) in args.iter().enumerate() {
                    if i > 0 {
                        write!(f, ", ")?;
                    }
                    write!(f, "{a}")?;
                }
                write!(f, ")")
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::catalog::{Catalog, ExtOperator, FuncDef, OperatorKind};
    use std::sync::Arc;

    fn col(i: usize) -> Expr {
        Expr::ColRef {
            index: i,
            ty: DataType::Int,
            name: format!("c{i}"),
        }
    }

    #[test]
    fn comparisons_and_null_propagation() {
        let cat = Catalog::new();
        let sess = SessionVars::new();
        let c = EvalCtx::new(&cat, &sess);
        let row = vec![Datum::Int(5), Datum::Null];
        let e = Expr::Cmp {
            op: CmpOp::Gt,
            left: Box::new(col(0)),
            right: Box::new(Expr::int(3)),
        };
        assert!(e.eval(&row, &c).unwrap().is_true());
        let n = Expr::Cmp {
            op: CmpOp::Eq,
            left: Box::new(col(1)),
            right: Box::new(Expr::int(3)),
        };
        assert!(n.eval(&row, &c).unwrap().is_null());
        let isn = Expr::IsNull(Box::new(col(1)));
        assert!(isn.eval(&row, &c).unwrap().is_true());
    }

    #[test]
    fn three_valued_logic() {
        let cat = Catalog::new();
        let sess = SessionVars::new();
        let c = EvalCtx::new(&cat, &sess);
        let row = vec![Datum::Null];
        let t = Expr::Literal(Datum::Bool(true));
        let fls = Expr::Literal(Datum::Bool(false));
        let null_cmp = Expr::Cmp {
            op: CmpOp::Eq,
            left: Box::new(col(0)),
            right: Box::new(Expr::int(1)),
        };
        // NULL AND false = false ; NULL AND true = NULL ; NULL OR true = true
        let and_false = Expr::And(Box::new(null_cmp.clone()), Box::new(fls));
        assert!(matches!(
            and_false.eval(&row, &c).unwrap(),
            Datum::Bool(false)
        ));
        let and_true = Expr::And(Box::new(null_cmp.clone()), Box::new(t.clone()));
        assert!(and_true.eval(&row, &c).unwrap().is_null());
        let or_true = Expr::Or(Box::new(null_cmp), Box::new(t));
        assert!(or_true.eval(&row, &c).unwrap().is_true());
    }

    #[test]
    fn arithmetic_and_division_by_zero() {
        let cat = Catalog::new();
        let sess = SessionVars::new();
        let c = EvalCtx::new(&cat, &sess);
        let row = vec![];
        let add = Expr::Arith {
            op: ArithOp::Add,
            left: Box::new(Expr::int(2)),
            right: Box::new(Expr::int(3)),
        };
        assert!(add.eval(&row, &c).unwrap().eq_sql(&Datum::Int(5)));
        let div0 = Expr::Arith {
            op: ArithOp::Div,
            left: Box::new(Expr::int(1)),
            right: Box::new(Expr::int(0)),
        };
        assert!(div0.eval(&row, &c).is_err());
        let fmix = Expr::Arith {
            op: ArithOp::Mul,
            left: Box::new(Expr::int(2)),
            right: Box::new(Expr::Literal(Datum::Float(1.5))),
        };
        assert!(fmix.eval(&row, &c).unwrap().eq_sql(&Datum::Float(3.0)));
    }

    #[test]
    fn ext_operator_dispatch_with_threshold() {
        let mut cat = Catalog::new();
        // A toy "within" operator: |l - r| <= session threshold.
        cat.register_operator(ExtOperator {
            name: "near".into(),
            operand_type: DataType::Int,
            eval: Arc::new(|l, r, s| {
                let k = s.get_int("near.threshold", 0);
                Ok(Datum::Bool(
                    (l.as_int().unwrap_or(0) - r.as_int().unwrap_or(0)).abs() <= k,
                ))
            }),
            eval_batch: None,
            kind: OperatorKind {
                commutative: true,
                distributes_over_union: true,
            },
            per_tuple_cost: Arc::new(|_, _| 1.0),
            selectivity: Arc::new(|_| 0.1),
            index_strategy: None,
            index_extra: None,
            modifier_filter: None,
            index_scan_fraction: None,
            strategy_label: None,
        });
        let mut sess = SessionVars::new();
        sess.set("near.threshold", Datum::Int(2));
        let c = EvalCtx::new(&cat, &sess);
        let e = Expr::ExtOp {
            name: "near".into(),
            left: Box::new(Expr::int(10)),
            right: Box::new(Expr::int(12)),
            modifiers: vec![],
        };
        assert!(e.eval(&[], &c).unwrap().is_true());
        let mut sess2 = SessionVars::new();
        sess2.set("near.threshold", Datum::Int(1));
        let c2 = EvalCtx::new(&cat, &sess2);
        assert!(!e.eval(&[], &c2).unwrap().is_true());
    }

    #[test]
    fn modifier_filter_restricts_matches() {
        let mut cat = Catalog::new();
        cat.register_operator(ExtOperator {
            name: "tagged".into(),
            operand_type: DataType::Text,
            eval: Arc::new(|_, _, _| Ok(Datum::Bool(true))),
            eval_batch: None,
            kind: OperatorKind {
                commutative: true,
                distributes_over_union: true,
            },
            per_tuple_cost: Arc::new(|_, _| 1.0),
            selectivity: Arc::new(|_| 1.0),
            index_strategy: None,
            index_extra: None,
            // Left operand "passes" only if its text appears in the list.
            modifier_filter: Some(Arc::new(|l, mods| {
                l.as_text()
                    .map(|t| mods.iter().any(|m| m == t))
                    .unwrap_or(false)
            })),
            index_scan_fraction: None,
            strategy_label: None,
        });
        let sess = SessionVars::new();
        let c = EvalCtx::new(&cat, &sess);
        let mk = |val: &str, mods: Vec<String>| Expr::ExtOp {
            name: "tagged".into(),
            left: Box::new(Expr::text(val)),
            right: Box::new(Expr::text("x")),
            modifiers: mods,
        };
        assert!(mk("en", vec!["en".into(), "fr".into()])
            .eval(&[], &c)
            .unwrap()
            .is_true());
        assert!(!mk("ta", vec!["en".into()]).eval(&[], &c).unwrap().is_true());
        assert!(
            mk("ta", vec![]).eval(&[], &c).unwrap().is_true(),
            "no modifiers = no filter"
        );
    }

    #[test]
    fn function_dispatch_and_arity_check() {
        let mut cat = Catalog::new();
        cat.register_function(FuncDef {
            name: "plus1".into(),
            arity: 1,
            ret: Some(DataType::Int),
            eval: Arc::new(|args, _| Ok(Datum::Int(args[0].as_int().unwrap_or(0) + 1))),
        });
        let sess = SessionVars::new();
        let c = EvalCtx::new(&cat, &sess);
        let ok = Expr::Func {
            name: "plus1".into(),
            args: vec![Expr::int(41)],
        };
        assert!(ok.eval(&[], &c).unwrap().eq_sql(&Datum::Int(42)));
        let bad = Expr::Func {
            name: "plus1".into(),
            args: vec![],
        };
        assert!(bad.eval(&[], &c).is_err());
        let missing = Expr::Func {
            name: "nope".into(),
            args: vec![],
        };
        assert!(missing.eval(&[], &c).is_err());
    }

    #[test]
    fn column_collection_and_shift() {
        let e = Expr::And(
            Box::new(Expr::Cmp {
                op: CmpOp::Eq,
                left: Box::new(col(2)),
                right: Box::new(col(0)),
            }),
            Box::new(Expr::Cmp {
                op: CmpOp::Lt,
                left: Box::new(col(2)),
                right: Box::new(Expr::int(9)),
            }),
        );
        assert_eq!(e.columns(), vec![0, 2]);
        let shifted = e.shift_columns(3);
        assert_eq!(shifted.columns(), vec![3, 5]);
        assert!(!e.is_const());
        assert!(Expr::int(1).is_const());
    }

    #[test]
    fn display_is_readable() {
        let e = Expr::ExtOp {
            name: "lexequal".into(),
            left: Box::new(col(0)),
            right: Box::new(Expr::text("Nehru")),
            modifiers: vec!["English".into(), "Hindi".into()],
        };
        assert_eq!(e.to_string(), "(c0 LEXEQUAL 'Nehru' IN (English, Hindi))");
    }

    #[test]
    fn eval_batch_matches_scalar_eval() {
        let mut cat = Catalog::new();
        // Vectorized "within 2" with a deliberately different code path
        // from the scalar closure so divergence would be visible.
        cat.register_operator(ExtOperator {
            name: "near".into(),
            operand_type: DataType::Int,
            eval: Arc::new(|l, r, _| {
                Ok(Datum::Bool(
                    (l.as_int().unwrap_or(0) - r.as_int().unwrap_or(0)).abs() <= 2,
                ))
            }),
            eval_batch: Some(Arc::new(|lefts, r, _| {
                let rv = r.as_int().unwrap_or(0);
                Ok(lefts
                    .iter()
                    .map(|l| Datum::Bool((l.as_int().unwrap_or(0) - rv).abs() <= 2))
                    .collect())
            })),
            kind: OperatorKind {
                commutative: true,
                distributes_over_union: true,
            },
            per_tuple_cost: Arc::new(|_, _| 1.0),
            selectivity: Arc::new(|_| 0.1),
            index_strategy: None,
            index_extra: None,
            modifier_filter: None,
            index_scan_fraction: None,
            strategy_label: None,
        });
        let sess = SessionVars::new();
        let c = EvalCtx::new(&cat, &sess);
        // col0 NEAR 10 AND col1 > 0 — exercises the vectorized ExtOp arm,
        // NULL propagation, and the AND short-circuit recombination.
        let e = Expr::And(
            Box::new(Expr::ExtOp {
                name: "near".into(),
                left: Box::new(col(0)),
                right: Box::new(Expr::int(10)),
                modifiers: vec![],
            }),
            Box::new(Expr::Cmp {
                op: CmpOp::Gt,
                left: Box::new(col(1)),
                right: Box::new(Expr::int(0)),
            }),
        );
        let data: Vec<Vec<Datum>> = vec![
            vec![Datum::Int(9), Datum::Int(1)],
            vec![Datum::Int(50), Datum::Int(1)],
            vec![Datum::Null, Datum::Int(1)],
            vec![Datum::Int(11), Datum::Int(-1)],
            vec![Datum::Int(12), Datum::Null],
        ];
        let refs: Vec<&[Datum]> = data.iter().map(Vec::as_slice).collect();
        let batched = e.eval_batch(&refs, &c).unwrap();
        for (row, got) in data.iter().zip(&batched) {
            let want = e.eval(row, &c).unwrap();
            assert_eq!(
                format!("{got:?}"),
                format!("{want:?}"),
                "row {row:?} diverged"
            );
        }
    }

    #[test]
    fn cmp_flip_is_involutive_mirror() {
        for op in [
            CmpOp::Eq,
            CmpOp::Ne,
            CmpOp::Lt,
            CmpOp::Le,
            CmpOp::Gt,
            CmpOp::Ge,
        ] {
            assert_eq!(op.flip().flip(), op);
        }
        assert!(CmpOp::Lt.flip().matches(Ordering::Greater));
    }
}
