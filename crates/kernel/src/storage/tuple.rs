//! Row ⇄ tuple-bytes serialization.
//!
//! Variable-length encoding, one byte of type tag per field:
//! ```text
//! 0x00 NULL
//! 0x01 Bool       + 1 byte
//! 0x02 Int        + 8 bytes LE
//! 0x03 Float      + 8 bytes LE (f64 bits)
//! 0x04 Text       + u32 len + bytes (UTF-8)
//! 0x05 Ext        + u32 type id + u32 len + bytes
//! ```

use crate::error::{Error, Result};
use crate::schema::Row;
use crate::value::{Datum, ExtTypeId};

/// Length of the MVCC version header that prefixes every heap tuple:
/// `xmin:u64le ‖ xmax:u64le`.  WAL records and the wire carry plain row
/// bytes; only the heap stores versioned tuples.
pub const VERSION_HEADER_LEN: usize = 16;

/// The `xmin` of a frozen tuple: visible to every snapshot.  Checkpoint
/// vacuum freezes surviving versions to this; real transaction ids start
/// at 2 so they can never collide with it (0 = invalid / "no xmax").
pub const FROZEN_TXN_ID: u64 = 1;

/// Prefix `row_bytes` with an MVCC version header.
pub fn encode_version(xmin: u64, xmax: u64, row_bytes: &[u8]) -> Vec<u8> {
    let mut out = Vec::with_capacity(VERSION_HEADER_LEN + row_bytes.len());
    out.extend_from_slice(&xmin.to_le_bytes());
    out.extend_from_slice(&xmax.to_le_bytes());
    out.extend_from_slice(row_bytes);
    out
}

/// Split a versioned heap tuple into `(xmin, xmax, row_bytes)`.
pub fn split_version(bytes: &[u8]) -> Result<(u64, u64, &[u8])> {
    if bytes.len() < VERSION_HEADER_LEN {
        return Err(Error::Storage(format!(
            "heap tuple shorter than its version header ({} bytes)",
            bytes.len()
        )));
    }
    let xmin = u64::from_le_bytes(bytes[0..8].try_into().expect("8 bytes"));
    let xmax = u64::from_le_bytes(bytes[8..16].try_into().expect("8 bytes"));
    Ok((xmin, xmax, &bytes[VERSION_HEADER_LEN..]))
}

/// Encode a row into a fresh byte vector.
pub fn encode_row(row: &Row) -> Vec<u8> {
    let mut out = Vec::with_capacity(row.len() * 9);
    for d in row {
        match d {
            Datum::Null => out.push(0x00),
            Datum::Bool(b) => {
                out.push(0x01);
                out.push(u8::from(*b));
            }
            Datum::Int(i) => {
                out.push(0x02);
                out.extend_from_slice(&i.to_le_bytes());
            }
            Datum::Float(f) => {
                out.push(0x03);
                out.extend_from_slice(&f.to_bits().to_le_bytes());
            }
            Datum::Text(s) => {
                out.push(0x04);
                out.extend_from_slice(&(s.len() as u32).to_le_bytes());
                out.extend_from_slice(s.as_bytes());
            }
            Datum::Ext { ty, bytes } => {
                out.push(0x05);
                out.extend_from_slice(&ty.0.to_le_bytes());
                out.extend_from_slice(&(bytes.len() as u32).to_le_bytes());
                out.extend_from_slice(bytes);
            }
        }
    }
    out
}

/// Decode a tuple produced by [`encode_row`].  `arity` fields are read.
pub fn decode_row(mut bytes: &[u8], arity: usize) -> Result<Row> {
    let mut row = Row::with_capacity(arity);
    let corrupt = || Error::Storage("corrupt tuple".into());
    for _ in 0..arity {
        let (&tag, rest) = bytes.split_first().ok_or_else(corrupt)?;
        bytes = rest;
        let d = match tag {
            0x00 => Datum::Null,
            0x01 => {
                let (&b, rest) = bytes.split_first().ok_or_else(corrupt)?;
                bytes = rest;
                Datum::Bool(b != 0)
            }
            0x02 => {
                if bytes.len() < 8 {
                    return Err(corrupt());
                }
                let (v, rest) = bytes.split_at(8);
                bytes = rest;
                Datum::Int(i64::from_le_bytes(v.try_into().expect("8 bytes")))
            }
            0x03 => {
                if bytes.len() < 8 {
                    return Err(corrupt());
                }
                let (v, rest) = bytes.split_at(8);
                bytes = rest;
                Datum::Float(f64::from_bits(u64::from_le_bytes(
                    v.try_into().expect("8 bytes"),
                )))
            }
            0x04 => {
                if bytes.len() < 4 {
                    return Err(corrupt());
                }
                let (l, rest) = bytes.split_at(4);
                let len = u32::from_le_bytes(l.try_into().expect("4 bytes")) as usize;
                if rest.len() < len {
                    return Err(corrupt());
                }
                let (s, rest) = rest.split_at(len);
                bytes = rest;
                let text = std::str::from_utf8(s).map_err(|_| corrupt())?;
                Datum::text(text)
            }
            0x05 => {
                if bytes.len() < 8 {
                    return Err(corrupt());
                }
                let (t, rest) = bytes.split_at(4);
                let ty = ExtTypeId(u32::from_le_bytes(t.try_into().expect("4 bytes")));
                let (l, rest) = rest.split_at(4);
                let len = u32::from_le_bytes(l.try_into().expect("4 bytes")) as usize;
                if rest.len() < len {
                    return Err(corrupt());
                }
                let (v, rest) = rest.split_at(len);
                bytes = rest;
                Datum::ext(ty, v.to_vec())
            }
            _ => return Err(corrupt()),
        };
        row.push(d);
    }
    Ok(row)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip(row: Row) {
        let bytes = encode_row(&row);
        let back = decode_row(&bytes, row.len()).unwrap();
        assert_eq!(row.len(), back.len());
        for (a, b) in row.iter().zip(&back) {
            match (a, b) {
                (Datum::Null, Datum::Null) => {}
                _ => assert!(a.eq_sql(b), "{a} != {b}"),
            }
        }
    }

    #[test]
    fn roundtrip_all_types() {
        roundtrip(vec![
            Datum::Null,
            Datum::Bool(true),
            Datum::Int(-42),
            Datum::Float(2.625),
            Datum::text("héllo ☃ நேரு"),
            Datum::ext(ExtTypeId(3), vec![0u8, 255, 7]),
        ]);
    }

    #[test]
    fn roundtrip_empty_payloads() {
        roundtrip(vec![Datum::text(""), Datum::ext(ExtTypeId(0), Vec::new())]);
    }

    #[test]
    fn truncated_input_is_detected() {
        let bytes = encode_row(&vec![Datum::Int(7)]);
        assert!(decode_row(&bytes[..bytes.len() - 1], 1).is_err());
        assert!(decode_row(&[], 1).is_err());
        assert!(decode_row(&[0xff], 1).is_err());
    }

    #[test]
    fn arity_mismatch_reads_prefix() {
        let bytes = encode_row(&vec![Datum::Int(1), Datum::Int(2)]);
        let one = decode_row(&bytes, 1).unwrap();
        assert_eq!(one.len(), 1);
        assert!(one[0].eq_sql(&Datum::Int(1)));
    }

    #[test]
    fn version_header_roundtrip() {
        let row = encode_row(&vec![Datum::Int(7), Datum::text("x")]);
        let versioned = encode_version(42, 0, &row);
        assert_eq!(versioned.len(), VERSION_HEADER_LEN + row.len());
        let (xmin, xmax, rest) = split_version(&versioned).unwrap();
        assert_eq!((xmin, xmax), (42, 0));
        assert_eq!(rest, &row[..]);
        // decode_row on the stripped bytes recovers the row.
        let back = decode_row(rest, 2).unwrap();
        assert!(back[0].eq_sql(&Datum::Int(7)));
    }

    #[test]
    fn short_version_header_rejected() {
        assert!(split_version(&[0u8; 15]).is_err());
        assert!(split_version(&[]).is_err());
        let (xmin, xmax, rest) = split_version(&[0u8; 16]).unwrap();
        assert_eq!((xmin, xmax), (0, 0));
        assert!(rest.is_empty());
    }

    #[test]
    fn invalid_utf8_rejected() {
        let mut bytes = vec![0x04];
        bytes.extend_from_slice(&2u32.to_le_bytes());
        bytes.extend_from_slice(&[0xff, 0xfe]);
        assert!(decode_row(&bytes, 1).is_err());
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    fn arb_datum() -> impl Strategy<Value = Datum> {
        prop_oneof![
            Just(Datum::Null),
            any::<bool>().prop_map(Datum::Bool),
            any::<i64>().prop_map(Datum::Int),
            any::<f64>().prop_map(Datum::Float),
            ".{0,40}".prop_map(Datum::text),
            (any::<u32>(), proptest::collection::vec(any::<u8>(), 0..64))
                .prop_map(|(t, b)| Datum::ext(ExtTypeId(t), b)),
        ]
    }

    proptest! {
        #[test]
        fn encode_decode_roundtrip(row in proptest::collection::vec(arb_datum(), 0..8)) {
            let bytes = encode_row(&row);
            let back = decode_row(&bytes, row.len()).unwrap();
            prop_assert_eq!(row.len(), back.len());
            for (a, b) in row.iter().zip(&back) {
                match (a, b) {
                    (Datum::Null, Datum::Null) => {}
                    (Datum::Float(x), Datum::Float(y)) => {
                        prop_assert_eq!(x.to_bits(), y.to_bits(), "NaN-safe float identity");
                    }
                    (Datum::Ext { ty: t1, bytes: b1 }, Datum::Ext { ty: t2, bytes: b2 }) => {
                        prop_assert_eq!(t1, t2);
                        prop_assert_eq!(b1, b2);
                    }
                    _ => prop_assert!(a.eq_sql(b), "{} != {}", a, b),
                }
            }
        }

        #[test]
        fn truncation_never_panics(row in proptest::collection::vec(arb_datum(), 1..6),
                                   cut in 0usize..64) {
            let bytes = encode_row(&row);
            let cut = cut.min(bytes.len());
            // Any prefix either decodes (when the cut lands after the full
            // row) or errors — it must never panic.
            let _ = decode_row(&bytes[..cut], row.len());
        }

        #[test]
        fn garbage_never_panics(bytes in proptest::collection::vec(any::<u8>(), 0..128),
                                arity in 0usize..6) {
            let _ = decode_row(&bytes, arity);
        }
    }
}
