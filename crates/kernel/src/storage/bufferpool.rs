//! Buffer pool with clock eviction and I/O accounting.
//!
//! Every executor touches pages only through [`BufferPool::with_page`] /
//! [`BufferPool::with_page_mut`], so [`IoStats`] faithfully counts the
//! logical and physical page traffic that the optimizer's cost model
//! estimates — the precondition for the Figure 6 experiment.

use crate::error::Result;
use crate::storage::{FileId, PageNo, StorageBackend, PAGE_SIZE};
use parking_lot::Mutex;
use std::collections::HashMap;

/// Cumulative I/O counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct IoStats {
    /// Page requests served (hit or miss).
    pub logical_reads: u64,
    /// Pages fetched from the backend (buffer misses).
    pub physical_reads: u64,
    /// Dirty pages written back to the backend.
    pub physical_writes: u64,
}

impl IoStats {
    /// Difference since an earlier snapshot.
    pub fn since(&self, earlier: &IoStats) -> IoStats {
        IoStats {
            logical_reads: self.logical_reads - earlier.logical_reads,
            physical_reads: self.physical_reads - earlier.physical_reads,
            physical_writes: self.physical_writes - earlier.physical_writes,
        }
    }
}

struct Frame {
    file: FileId,
    page: PageNo,
    data: Box<[u8]>,
    dirty: bool,
    referenced: bool,
    occupied: bool,
}

struct Inner {
    backend: Box<dyn StorageBackend>,
    frames: Vec<Frame>,
    map: HashMap<(FileId, PageNo), usize>,
    clock: usize,
    stats: IoStats,
}

/// The buffer pool.  Interior mutability (one mutex around the whole pool)
/// keeps the executor API simple; the engine is single-writer.
pub struct BufferPool {
    inner: Mutex<Inner>,
}

impl BufferPool {
    /// Acquire the pool mutex, charging contended acquisitions to the
    /// current query as a `buffer_pool` wait.  The uncontended fast path
    /// is one failed `try_lock` branch.
    fn lock_inner(&self) -> parking_lot::MutexGuard<'_, Inner> {
        if let Some(g) = self.inner.try_lock() {
            return g;
        }
        crate::obs::waits::time_wait(crate::obs::WaitClass::BufferPool, || self.inner.lock())
    }

    /// Pool with `capacity` frames over `backend`.
    pub fn new(backend: Box<dyn StorageBackend>, capacity: usize) -> Self {
        assert!(capacity >= 1);
        let frames = (0..capacity)
            .map(|_| Frame {
                file: FileId(0),
                page: 0,
                data: vec![0u8; PAGE_SIZE].into_boxed_slice(),
                dirty: false,
                referenced: false,
                occupied: false,
            })
            .collect();
        BufferPool {
            inner: Mutex::new(Inner {
                backend,
                frames,
                map: HashMap::new(),
                clock: 0,
                stats: IoStats::default(),
            }),
        }
    }

    /// Create a new storage file.
    pub fn create_file(&self) -> Result<FileId> {
        self.lock_inner().backend.create_file()
    }

    /// Number of pages in a file (buffered allocations are flushed through
    /// `allocate_page` immediately, so the backend count is authoritative).
    pub fn page_count(&self, file: FileId) -> Result<u32> {
        self.lock_inner().backend.page_count(file)
    }

    /// Allocate a fresh page in `file`.
    pub fn allocate_page(&self, file: FileId) -> Result<PageNo> {
        self.lock_inner().backend.allocate_page(file)
    }

    /// Read access to a page.
    pub fn with_page<T>(
        &self,
        file: FileId,
        page: PageNo,
        f: impl FnOnce(&[u8]) -> T,
    ) -> Result<T> {
        let mut inner = self.lock_inner();
        let idx = inner.fetch(file, page)?;
        Ok(f(&inner.frames[idx].data))
    }

    /// Write access to a page (marks it dirty).
    pub fn with_page_mut<T>(
        &self,
        file: FileId,
        page: PageNo,
        f: impl FnOnce(&mut [u8]) -> T,
    ) -> Result<T> {
        let mut inner = self.lock_inner();
        let idx = inner.fetch(file, page)?;
        inner.frames[idx].dirty = true;
        Ok(f(&mut inner.frames[idx].data))
    }

    /// Flush all dirty pages to the backend; returns how many were written.
    pub fn flush_all(&self) -> Result<u64> {
        let mut inner = self.lock_inner();
        let dirty: Vec<usize> = inner
            .frames
            .iter()
            .enumerate()
            .filter(|(_, fr)| fr.occupied && fr.dirty)
            .map(|(i, _)| i)
            .collect();
        let flushed = dirty.len() as u64;
        for i in dirty {
            inner.writeback(i)?;
        }
        Ok(flushed)
    }

    /// Current I/O statistics.
    ///
    /// Counters are cumulative for the life of the pool and never reset;
    /// per-query measurement takes a snapshot before and
    /// [`IoStats::since`] after, so concurrent readers can each hold
    /// their own baseline.  (A destructive `reset_stats` used to exist
    /// and silently zeroed other readers' baselines.)
    pub fn stats(&self) -> IoStats {
        self.lock_inner().stats
    }

    /// Drop every cached page (simulates a cold cache; used by benches to
    /// measure physical-I/O-bound behaviour).
    pub fn clear_cache(&self) -> Result<()> {
        self.flush_all()?;
        let mut inner = self.lock_inner();
        inner.map.clear();
        for fr in &mut inner.frames {
            fr.occupied = false;
            fr.dirty = false;
            fr.referenced = false;
        }
        Ok(())
    }
}

impl Inner {
    fn fetch(&mut self, file: FileId, page: PageNo) -> Result<usize> {
        self.stats.logical_reads += 1;
        crate::obs::metrics().bufferpool_logical_reads_total.inc();
        if let Some(&idx) = self.map.get(&(file, page)) {
            self.frames[idx].referenced = true;
            return Ok(idx);
        }
        self.stats.physical_reads += 1;
        crate::obs::metrics().bufferpool_physical_reads_total.inc();
        let victim = self.find_victim()?;
        if self.frames[victim].occupied {
            if self.frames[victim].dirty {
                self.writeback(victim)?;
            }
            let key = (self.frames[victim].file, self.frames[victim].page);
            self.map.remove(&key);
        }
        {
            let fr = &mut self.frames[victim];
            fr.file = file;
            fr.page = page;
            fr.dirty = false;
            fr.referenced = true;
            fr.occupied = true;
        }
        // Split borrows: read into a temporary to satisfy the borrow checker
        // without unsafe.
        let mut buf = std::mem::take(&mut self.frames[victim].data);
        let res = self.backend.read_page(file, page, &mut buf);
        self.frames[victim].data = buf;
        res?;
        self.map.insert((file, page), victim);
        Ok(victim)
    }

    /// Clock (second-chance) eviction.
    fn find_victim(&mut self) -> Result<usize> {
        let n = self.frames.len();
        for _ in 0..2 * n {
            let i = self.clock;
            self.clock = (self.clock + 1) % n;
            if !self.frames[i].occupied {
                return Ok(i);
            }
            if self.frames[i].referenced {
                self.frames[i].referenced = false;
            } else {
                return Ok(i);
            }
        }
        // All referenced twice around: take the current hand.
        Ok(self.clock)
    }

    fn writeback(&mut self, idx: usize) -> Result<()> {
        self.stats.physical_writes += 1;
        crate::obs::metrics().bufferpool_physical_writes_total.inc();
        let (file, page) = (self.frames[idx].file, self.frames[idx].page);
        let buf = std::mem::take(&mut self.frames[idx].data);
        let res = self.backend.write_page(file, page, &buf);
        self.frames[idx].data = buf;
        res?;
        self.frames[idx].dirty = false;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::storage::MemBackend;

    fn pool(frames: usize) -> (BufferPool, FileId) {
        let pool = BufferPool::new(Box::new(MemBackend::new()), frames);
        let f = pool.create_file().unwrap();
        (pool, f)
    }

    #[test]
    fn read_write_through_pool() {
        let (pool, f) = pool(4);
        let p = pool.allocate_page(f).unwrap();
        pool.with_page_mut(f, p, |buf| buf[0] = 0x42).unwrap();
        let b = pool.with_page(f, p, |buf| buf[0]).unwrap();
        assert_eq!(b, 0x42);
    }

    #[test]
    fn hits_do_not_count_as_physical() {
        let (pool, f) = pool(4);
        let p = pool.allocate_page(f).unwrap();
        for _ in 0..10 {
            pool.with_page(f, p, |_| ()).unwrap();
        }
        let s = pool.stats();
        assert_eq!(s.logical_reads, 10);
        assert_eq!(s.physical_reads, 1);
    }

    #[test]
    fn eviction_writes_back_dirty_pages() {
        let (pool, f) = pool(2);
        let pages: Vec<_> = (0..5).map(|_| pool.allocate_page(f).unwrap()).collect();
        for (i, &p) in pages.iter().enumerate() {
            pool.with_page_mut(f, p, |buf| buf[0] = i as u8).unwrap();
        }
        // Re-read everything; evictions must have persisted the writes.
        for (i, &p) in pages.iter().enumerate() {
            let b = pool.with_page(f, p, |buf| buf[0]).unwrap();
            assert_eq!(b, i as u8);
        }
        assert!(pool.stats().physical_writes >= 3);
    }

    #[test]
    fn working_set_within_capacity_stops_missing() {
        let (pool, f) = pool(8);
        let pages: Vec<_> = (0..4).map(|_| pool.allocate_page(f).unwrap()).collect();
        for _ in 0..3 {
            for &p in &pages {
                pool.with_page(f, p, |_| ()).unwrap();
            }
        }
        assert_eq!(pool.stats().physical_reads, 4, "only cold misses");
    }

    #[test]
    fn clear_cache_forces_refetch() {
        let (pool, f) = pool(4);
        let p = pool.allocate_page(f).unwrap();
        pool.with_page_mut(f, p, |buf| buf[7] = 9).unwrap();
        pool.clear_cache().unwrap();
        assert_eq!(pool.with_page(f, p, |buf| buf[7]).unwrap(), 9);
        assert_eq!(pool.stats().physical_reads, 2);
    }

    #[test]
    fn stats_since_snapshot() {
        let (pool, f) = pool(4);
        let p = pool.allocate_page(f).unwrap();
        pool.with_page(f, p, |_| ()).unwrap();
        let snap = pool.stats();
        pool.with_page(f, p, |_| ()).unwrap();
        let d = pool.stats().since(&snap);
        assert_eq!(d.logical_reads, 1);
        assert_eq!(d.physical_reads, 0);
    }

    #[test]
    fn flush_all_counts_writes_via_snapshot_delta() {
        let (pool, f) = pool(4);
        let p = pool.allocate_page(f).unwrap();
        pool.with_page_mut(f, p, |buf| buf[0] = 1).unwrap();
        let snap = pool.stats();
        assert_eq!(pool.flush_all().unwrap(), 1);
        let d = pool.stats().since(&snap);
        assert_eq!(d.physical_writes, 1);
        assert_eq!(d.logical_reads, 0, "flush does not read pages");
        // Counters are cumulative: the absolute value keeps history.
        assert!(pool.stats().physical_writes >= 1);
    }
}
