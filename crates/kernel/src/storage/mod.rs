//! Storage layer: pages, backends, buffer pool, heap files, WAL.
//!
//! The paper's cost models (Table 3) are expressed in disk I/O (page
//! counts) plus CPU; to validate them (Figure 6) the engine's runtime must
//! actually be driven by the same quantities the optimizer estimates.  The
//! buffer pool therefore accounts every logical and physical page access in
//! [`IoStats`], and the executors do all tuple access through it.

mod backend;
mod bufferpool;
pub mod crc32;
mod heapfile;
mod page;
mod tuple;
mod wal;

pub use backend::{FaultInjector, FaultyBackend, FileBackend, MemBackend, StorageBackend};
pub use bufferpool::{BufferPool, IoStats};
pub use heapfile::{HeapFile, TupleId};
pub use page::{Page, PAGE_SIZE};
pub use tuple::{
    decode_row, encode_row, encode_version, split_version, FROZEN_TXN_ID, VERSION_HEADER_LEN,
};
pub use wal::{SharedWal, SyncMode, Wal, WalReader, WalRecord, WAL_HEADER_LEN};

pub(crate) use wal::sync_parent_dir;

/// Identifier of a storage file (one per table heap / index).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct FileId(pub u32);

/// Page number within a file.
pub type PageNo = u32;
