//! Storage backends: where pages physically live.
//!
//! [`MemBackend`] keeps files as page vectors in memory — the default for
//! tests and for benchmark runs where the machine's filesystem cache would
//! dominate anyway (the paper's timing experiments ran on a quiesced
//! workstation with a warm cache; the optimizer's *modelled* I/O is what
//! the cost experiments compare against).  [`FileBackend`] stores each file
//! under a directory, for durability tests and WAL recovery.

use crate::error::{Error, Result};
use crate::storage::{FileId, PageNo, PAGE_SIZE};
use parking_lot::Mutex;
use std::collections::HashMap;
use std::fs::{File, OpenOptions};
use std::io::{Read, Seek, SeekFrom, Write};
use std::path::PathBuf;

/// Abstract page store.
pub trait StorageBackend: Send {
    /// Create a new empty file, returning its id.
    fn create_file(&mut self) -> Result<FileId>;

    /// Number of pages in a file.
    fn page_count(&self, file: FileId) -> Result<u32>;

    /// Append a zeroed page; returns its page number.
    fn allocate_page(&mut self, file: FileId) -> Result<PageNo>;

    /// Read a page into `buf` (`PAGE_SIZE` bytes).
    fn read_page(&mut self, file: FileId, page: PageNo, buf: &mut [u8]) -> Result<()>;

    /// Write a page from `buf`.
    fn write_page(&mut self, file: FileId, page: PageNo, buf: &[u8]) -> Result<()>;
}

/// In-memory backend.
#[derive(Default)]
pub struct MemBackend {
    files: Vec<Vec<Box<[u8]>>>,
}

impl MemBackend {
    /// Empty backend.
    pub fn new() -> Self {
        MemBackend::default()
    }
}

impl StorageBackend for MemBackend {
    fn create_file(&mut self) -> Result<FileId> {
        self.files.push(Vec::new());
        Ok(FileId(self.files.len() as u32 - 1))
    }

    fn page_count(&self, file: FileId) -> Result<u32> {
        self.files
            .get(file.0 as usize)
            .map(|f| f.len() as u32)
            .ok_or_else(|| Error::Storage(format!("no file {file:?}")))
    }

    fn allocate_page(&mut self, file: FileId) -> Result<PageNo> {
        let f = self
            .files
            .get_mut(file.0 as usize)
            .ok_or_else(|| Error::Storage(format!("no file {file:?}")))?;
        f.push(vec![0u8; PAGE_SIZE].into_boxed_slice());
        Ok(f.len() as u32 - 1)
    }

    fn read_page(&mut self, file: FileId, page: PageNo, buf: &mut [u8]) -> Result<()> {
        let f = self
            .files
            .get(file.0 as usize)
            .ok_or_else(|| Error::Storage(format!("no file {file:?}")))?;
        let p = f
            .get(page as usize)
            .ok_or_else(|| Error::Storage(format!("no page {page} in {file:?}")))?;
        buf.copy_from_slice(p);
        Ok(())
    }

    fn write_page(&mut self, file: FileId, page: PageNo, buf: &[u8]) -> Result<()> {
        let f = self
            .files
            .get_mut(file.0 as usize)
            .ok_or_else(|| Error::Storage(format!("no file {file:?}")))?;
        let p = f
            .get_mut(page as usize)
            .ok_or_else(|| Error::Storage(format!("no page {page} in {file:?}")))?;
        p.copy_from_slice(buf);
        Ok(())
    }
}

/// File-per-table backend under a directory.
pub struct FileBackend {
    dir: PathBuf,
    handles: Mutex<HashMap<FileId, File>>,
    next_id: u32,
}

impl FileBackend {
    /// Open (creating the directory if needed).  Existing `*.tbl` files are
    /// re-attached in file-id order so a database can be reopened.
    pub fn open(dir: impl Into<PathBuf>) -> Result<Self> {
        let dir = dir.into();
        std::fs::create_dir_all(&dir)?;
        let mut max_id = 0u32;
        for entry in std::fs::read_dir(&dir)? {
            let name = entry?.file_name();
            if let Some(stem) = name.to_str().and_then(|n| n.strip_suffix(".tbl")) {
                if let Ok(id) = stem.parse::<u32>() {
                    max_id = max_id.max(id + 1);
                }
            }
        }
        Ok(FileBackend {
            dir,
            handles: Mutex::new(HashMap::new()),
            next_id: max_id,
        })
    }

    fn path(&self, file: FileId) -> PathBuf {
        self.dir.join(format!("{}.tbl", file.0))
    }

    fn with_handle<T>(&self, file: FileId, f: impl FnOnce(&mut File) -> Result<T>) -> Result<T> {
        let mut handles = self.handles.lock();
        if let std::collections::hash_map::Entry::Vacant(e) = handles.entry(file) {
            let h = OpenOptions::new()
                .read(true)
                .write(true)
                .create(true)
                .truncate(false)
                .open(self.path(file))?;
            e.insert(h);
        }
        f(handles.get_mut(&file).expect("just inserted"))
    }
}

impl StorageBackend for FileBackend {
    fn create_file(&mut self) -> Result<FileId> {
        let id = FileId(self.next_id);
        self.next_id += 1;
        File::create(self.path(id))?;
        Ok(id)
    }

    fn page_count(&self, file: FileId) -> Result<u32> {
        let len = std::fs::metadata(self.path(file))?.len();
        Ok((len / PAGE_SIZE as u64) as u32)
    }

    fn allocate_page(&mut self, file: FileId) -> Result<PageNo> {
        self.with_handle(file, |h| {
            let len = h.seek(SeekFrom::End(0))?;
            h.write_all(&vec![0u8; PAGE_SIZE])?;
            Ok((len / PAGE_SIZE as u64) as u32)
        })
    }

    fn read_page(&mut self, file: FileId, page: PageNo, buf: &mut [u8]) -> Result<()> {
        self.with_handle(file, |h| {
            h.seek(SeekFrom::Start(page as u64 * PAGE_SIZE as u64))?;
            h.read_exact(buf)?;
            Ok(())
        })
    }

    fn write_page(&mut self, file: FileId, page: PageNo, buf: &[u8]) -> Result<()> {
        self.with_handle(file, |h| {
            h.seek(SeekFrom::Start(page as u64 * PAGE_SIZE as u64))?;
            h.write_all(buf)?;
            Ok(())
        })
    }
}

/// Shared switchboard controlling a [`FaultyBackend`]; tests keep a clone
/// and flip faults on while the engine keeps using the wrapped backend.
#[derive(Default)]
pub struct FaultInjector {
    state: Mutex<InjectorState>,
}

#[derive(Default)]
struct InjectorState {
    /// `Some(n)`: the next `n` page writes succeed, then every write fails
    /// until [`FaultInjector::heal`].
    write_budget: Option<u64>,
    writes_failed: u64,
}

impl FaultInjector {
    /// A healthy injector (all operations pass through).
    pub fn new() -> std::sync::Arc<FaultInjector> {
        std::sync::Arc::new(FaultInjector::default())
    }

    /// Let `n` more page writes through, then fail all subsequent writes.
    pub fn fail_page_writes_after(&self, n: u64) {
        let mut s = self.state.lock();
        s.write_budget = Some(n);
    }

    /// Clear all faults.
    pub fn heal(&self) {
        let mut s = self.state.lock();
        s.write_budget = None;
    }

    /// Page writes rejected so far.
    pub fn writes_failed(&self) -> u64 {
        self.state.lock().writes_failed
    }

    fn check_write(&self) -> Result<()> {
        let mut s = self.state.lock();
        match &mut s.write_budget {
            None => Ok(()),
            Some(n) if *n > 0 => {
                *n -= 1;
                Ok(())
            }
            Some(_) => {
                s.writes_failed += 1;
                Err(Error::Storage(
                    "injected fault: page write failed".to_string(),
                ))
            }
        }
    }
}

/// A [`StorageBackend`] decorator that injects failures on command — the
/// test-only stand-in for a dying disk, used by the fault-injection
/// harness to prove failed checkpoints leave the WAL intact.
pub struct FaultyBackend {
    inner: Box<dyn StorageBackend>,
    injector: std::sync::Arc<FaultInjector>,
}

impl FaultyBackend {
    /// Wrap `inner`, controlled by `injector`.
    pub fn new(inner: Box<dyn StorageBackend>, injector: std::sync::Arc<FaultInjector>) -> Self {
        FaultyBackend { inner, injector }
    }
}

impl StorageBackend for FaultyBackend {
    fn create_file(&mut self) -> Result<FileId> {
        self.inner.create_file()
    }

    fn page_count(&self, file: FileId) -> Result<u32> {
        self.inner.page_count(file)
    }

    fn allocate_page(&mut self, file: FileId) -> Result<PageNo> {
        self.inner.allocate_page(file)
    }

    fn read_page(&mut self, file: FileId, page: PageNo, buf: &mut [u8]) -> Result<()> {
        self.inner.read_page(file, page, buf)
    }

    fn write_page(&mut self, file: FileId, page: PageNo, buf: &[u8]) -> Result<()> {
        self.injector.check_write()?;
        self.inner.write_page(file, page, buf)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip(backend: &mut dyn StorageBackend) {
        let f = backend.create_file().unwrap();
        assert_eq!(backend.page_count(f).unwrap(), 0);
        let p0 = backend.allocate_page(f).unwrap();
        let p1 = backend.allocate_page(f).unwrap();
        assert_eq!((p0, p1), (0, 1));
        let mut page = vec![0xabu8; PAGE_SIZE];
        backend.write_page(f, p1, &page).unwrap();
        page.fill(0);
        backend.read_page(f, p1, &mut page).unwrap();
        assert!(page.iter().all(|&b| b == 0xab));
        backend.read_page(f, p0, &mut page).unwrap();
        assert!(page.iter().all(|&b| b == 0));
    }

    #[test]
    fn mem_backend_roundtrip() {
        roundtrip(&mut MemBackend::new());
    }

    #[test]
    fn file_backend_roundtrip() {
        let dir = std::env::temp_dir().join(format!("mlql-test-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        roundtrip(&mut FileBackend::open(&dir).unwrap());
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn file_backend_reopen_preserves_ids() {
        let dir = std::env::temp_dir().join(format!("mlql-reopen-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let mut b = FileBackend::open(&dir).unwrap();
        let f = b.create_file().unwrap();
        b.allocate_page(f).unwrap();
        let mut page = vec![0x5au8; PAGE_SIZE];
        b.write_page(f, 0, &page).unwrap();
        drop(b);
        let mut b2 = FileBackend::open(&dir).unwrap();
        assert_eq!(b2.page_count(f).unwrap(), 1);
        page.fill(0);
        b2.read_page(f, 0, &mut page).unwrap();
        assert!(page.iter().all(|&b| b == 0x5a));
        // New files get fresh ids.
        let f2 = b2.create_file().unwrap();
        assert_ne!(f, f2);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn faulty_backend_fails_writes_on_command() {
        let injector = FaultInjector::new();
        let mut b = FaultyBackend::new(
            Box::new(MemBackend::new()),
            std::sync::Arc::clone(&injector),
        );
        let f = b.create_file().unwrap();
        b.allocate_page(f).unwrap();
        let page = vec![1u8; PAGE_SIZE];
        injector.fail_page_writes_after(1);
        b.write_page(f, 0, &page).unwrap();
        assert!(b.write_page(f, 0, &page).is_err());
        assert_eq!(injector.writes_failed(), 1);
        // Reads still work through the fault.
        let mut buf = vec![0u8; PAGE_SIZE];
        b.read_page(f, 0, &mut buf).unwrap();
        injector.heal();
        b.write_page(f, 0, &page).unwrap();
    }

    #[test]
    fn missing_file_errors() {
        let mut b = MemBackend::new();
        assert!(b.read_page(FileId(3), 0, &mut vec![0; PAGE_SIZE]).is_err());
        assert!(b.page_count(FileId(3)).is_err());
    }
}
