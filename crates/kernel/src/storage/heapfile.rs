//! Heap files: unordered tuple storage over the buffer pool.

use crate::error::Result;
use crate::storage::{BufferPool, FileId, Page, PageNo};

/// Physical address of a tuple.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct TupleId {
    /// Page within the heap file.
    pub page: PageNo,
    /// Slot within the page.
    pub slot: u16,
}

/// A heap file handle.  Stateless beyond the file id — all data lives in
/// the buffer pool / backend, so handles are copy-cheap.
#[derive(Debug, Clone, Copy)]
pub struct HeapFile {
    file: FileId,
}

impl HeapFile {
    /// Create a fresh heap file in the pool.
    pub fn create(pool: &BufferPool) -> Result<HeapFile> {
        let file = pool.create_file()?;
        Ok(HeapFile { file })
    }

    /// Re-attach to an existing file (catalog bootstrap / recovery).
    pub fn attach(file: FileId) -> HeapFile {
        HeapFile { file }
    }

    /// The underlying file id.
    pub fn file_id(&self) -> FileId {
        self.file
    }

    /// Number of pages.
    pub fn pages(&self, pool: &BufferPool) -> Result<u32> {
        pool.page_count(self.file)
    }

    /// Insert a tuple, appending a page when the last page is full.
    ///
    /// Insertion targets the *last* page only (append-style, like
    /// PostgreSQL without FSM); deletes do not reclaim space.
    pub fn insert(&self, pool: &BufferPool, tuple: &[u8]) -> Result<TupleId> {
        let n = pool.page_count(self.file)?;
        if n > 0 {
            let page_no = n - 1;
            let slot = pool.with_page_mut(self.file, page_no, |buf| {
                let mut page = Page::new(buf);
                if page.fits(tuple.len()) {
                    Some(page.insert(tuple))
                } else {
                    None
                }
            })?;
            if let Some(slot) = slot {
                return Ok(TupleId {
                    page: page_no,
                    slot: slot?,
                });
            }
        }
        // Need a fresh page.
        let page_no = pool.allocate_page(self.file)?;
        let slot = pool.with_page_mut(self.file, page_no, |buf| {
            let mut page = Page::new(buf);
            page.init();
            page.insert(tuple)
        })??;
        Ok(TupleId {
            page: page_no,
            slot,
        })
    }

    /// Fetch a tuple by id; `None` when deleted.
    pub fn get(&self, pool: &BufferPool, tid: TupleId) -> Result<Option<Vec<u8>>> {
        pool.with_page(self.file, tid.page, |buf| {
            let mut copy = buf.to_vec();
            let page = Page::new(&mut copy);
            page.get(tid.slot).map(|t| t.to_vec())
        })
    }

    /// Delete a tuple.
    pub fn delete(&self, pool: &BufferPool, tid: TupleId) -> Result<()> {
        pool.with_page_mut(self.file, tid.page, |buf| {
            let mut page = Page::new(buf);
            page.delete(tid.slot)
        })?
    }

    /// Visit every live tuple in file order.  The callback receives the
    /// tuple id and bytes; returning `false` stops the scan early.
    pub fn scan(
        &self,
        pool: &BufferPool,
        mut visit: impl FnMut(TupleId, &[u8]) -> bool,
    ) -> Result<()> {
        let n = pool.page_count(self.file)?;
        for page_no in 0..n {
            let keep_going = pool.with_page(self.file, page_no, |buf| {
                let mut copy = buf.to_vec();
                let page = Page::new(&mut copy);
                for (slot, tuple) in page.iter() {
                    if !visit(
                        TupleId {
                            page: page_no,
                            slot,
                        },
                        tuple,
                    ) {
                        return false;
                    }
                }
                true
            })?;
            if !keep_going {
                break;
            }
        }
        Ok(())
    }

    /// Overwrite `bytes` at offset `at` *inside* an existing tuple,
    /// without moving it.  Used by MVCC to stamp `xmax` (and to freeze
    /// version headers at checkpoint): the tuple length never changes,
    /// so no slot bookkeeping is touched.  Returns `false` when the slot
    /// is dead or the write would run past the tuple's end.
    pub fn patch(&self, pool: &BufferPool, tid: TupleId, at: usize, bytes: &[u8]) -> Result<bool> {
        pool.with_page_mut(self.file, tid.page, |buf| {
            let slot_count = u16::from_le_bytes([buf[0], buf[1]]) as usize;
            if tid.slot as usize >= slot_count {
                return false;
            }
            let off = 8 + tid.slot as usize * 4;
            let data_off = u16::from_le_bytes([buf[off], buf[off + 1]]) as usize;
            let len = u16::from_le_bytes([buf[off + 2], buf[off + 3]]) as usize;
            if len == 0 || at + bytes.len() > len {
                return false;
            }
            buf[data_off + at..data_off + at + bytes.len()].copy_from_slice(bytes);
            true
        })
    }

    /// Count live tuples (scans the file).
    pub fn count(&self, pool: &BufferPool) -> Result<u64> {
        let mut n = 0u64;
        self.scan(pool, |_, _| {
            n += 1;
            true
        })?;
        Ok(n)
    }
}

/// `Page::get` needs `&mut [u8]` only because `Page` unifies read/write
/// views; expose a read-only helper to avoid copying whole pages on the
/// hot scan path.
pub(crate) fn read_tuple(buf: &[u8], slot: u16) -> Option<&[u8]> {
    // Reimplements the slot lookup against an immutable buffer.
    let slot_count = u16::from_le_bytes([buf[0], buf[1]]) as usize;
    if slot as usize >= slot_count {
        return None;
    }
    let off = 8 + slot as usize * 4;
    let data_off = u16::from_le_bytes([buf[off], buf[off + 1]]) as usize;
    let len = u16::from_le_bytes([buf[off + 2], buf[off + 3]]) as usize;
    if len == 0 {
        return None;
    }
    Some(&buf[data_off..data_off + len])
}

impl HeapFile {
    /// Copy-free scan: like [`HeapFile::scan`] but without duplicating each
    /// page.  Used by the executor's sequential scan.
    pub fn scan_pages(
        &self,
        pool: &BufferPool,
        mut visit: impl FnMut(PageNo, &[u8]) -> bool,
    ) -> Result<()> {
        let n = pool.page_count(self.file)?;
        for page_no in 0..n {
            let keep_going = pool.with_page(self.file, page_no, |buf| visit(page_no, buf))?;
            if !keep_going {
                break;
            }
        }
        Ok(())
    }

    /// Enumerate live `(slot, tuple)` pairs of one page buffer.
    pub fn page_tuples(buf: &[u8]) -> impl Iterator<Item = (u16, &[u8])> {
        let slot_count = u16::from_le_bytes([buf[0], buf[1]]);
        (0..slot_count).filter_map(move |s| read_tuple(buf, s).map(|t| (s, t)))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::storage::MemBackend;

    fn setup() -> (BufferPool, HeapFile) {
        let pool = BufferPool::new(Box::new(MemBackend::new()), 16);
        let heap = HeapFile::create(&pool).unwrap();
        (pool, heap)
    }

    #[test]
    fn insert_get_roundtrip() {
        let (pool, heap) = setup();
        let tid = heap.insert(&pool, b"alpha").unwrap();
        assert_eq!(heap.get(&pool, tid).unwrap().unwrap(), b"alpha");
    }

    #[test]
    fn spills_to_multiple_pages() {
        let (pool, heap) = setup();
        let tuple = vec![9u8; 2000];
        for _ in 0..20 {
            heap.insert(&pool, &tuple).unwrap();
        }
        assert!(heap.pages(&pool).unwrap() >= 5, "2 KB × 20 needs ≥ 5 pages");
        assert_eq!(heap.count(&pool).unwrap(), 20);
    }

    #[test]
    fn delete_hides_tuple_from_scan() {
        let (pool, heap) = setup();
        let a = heap.insert(&pool, b"a").unwrap();
        heap.insert(&pool, b"b").unwrap();
        heap.delete(&pool, a).unwrap();
        assert_eq!(heap.get(&pool, a).unwrap(), None);
        let mut seen = Vec::new();
        heap.scan(&pool, |_, t| {
            seen.push(t.to_vec());
            true
        })
        .unwrap();
        assert_eq!(seen, vec![b"b".to_vec()]);
    }

    #[test]
    fn patch_overwrites_in_place() {
        let (pool, heap) = setup();
        let tid = heap.insert(&pool, b"0123456789").unwrap();
        assert!(heap.patch(&pool, tid, 2, b"XY").unwrap());
        assert_eq!(heap.get(&pool, tid).unwrap().unwrap(), b"01XY456789");
        // Out-of-bounds writes and dead slots are refused.
        assert!(!heap.patch(&pool, tid, 9, b"AB").unwrap());
        heap.delete(&pool, tid).unwrap();
        assert!(!heap.patch(&pool, tid, 0, b"Z").unwrap());
        assert!(!heap
            .patch(&pool, TupleId { page: 0, slot: 99 }, 0, b"Z")
            .unwrap());
    }

    #[test]
    fn scan_early_termination() {
        let (pool, heap) = setup();
        for i in 0..10u8 {
            heap.insert(&pool, &[i]).unwrap();
        }
        let mut n = 0;
        heap.scan(&pool, |_, _| {
            n += 1;
            n < 3
        })
        .unwrap();
        assert_eq!(n, 3);
    }

    #[test]
    fn page_tuples_matches_scan() {
        let (pool, heap) = setup();
        for i in 0..50u8 {
            heap.insert(&pool, &[i, i]).unwrap();
        }
        let mut via_pages = 0;
        heap.scan_pages(&pool, |_, buf| {
            via_pages += HeapFile::page_tuples(buf).count();
            true
        })
        .unwrap();
        assert_eq!(via_pages, 50);
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use crate::storage::MemBackend;
    use proptest::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]
        /// Random insert/delete interleavings match a reference Vec model.
        #[test]
        fn matches_reference_model(ops in proptest::collection::vec((any::<bool>(), 1usize..300), 1..120)) {
            let pool = BufferPool::new(Box::new(MemBackend::new()), 8);
            let heap = HeapFile::create(&pool).unwrap();
            let mut model: Vec<(TupleId, Vec<u8>)> = Vec::new();
            let mut counter = 0u8;
            for (insert, size) in ops {
                if insert || model.is_empty() {
                    counter = counter.wrapping_add(1);
                    let tuple = vec![counter; size];
                    let tid = heap.insert(&pool, &tuple).unwrap();
                    model.push((tid, tuple));
                } else {
                    let (tid, _) = model.remove(model.len() / 2);
                    heap.delete(&pool, tid).unwrap();
                }
            }
            // Every live tuple is readable by id with the right contents.
            for (tid, tuple) in &model {
                let got = heap.get(&pool, *tid).unwrap();
                prop_assert_eq!(got.as_deref(), Some(tuple.as_slice()));
            }
            // The scan sees exactly the live set.
            let mut seen = Vec::new();
            heap.scan(&pool, |tid, bytes| {
                seen.push((tid, bytes.to_vec()));
                true
            }).unwrap();
            let mut expect = model.clone();
            expect.sort_by_key(|(t, _)| *t);
            seen.sort_by_key(|(t, _)| *t);
            prop_assert_eq!(seen, expect);
        }
    }
}
