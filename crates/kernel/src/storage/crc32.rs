//! CRC-32 (IEEE 802.3 polynomial, the zlib/PostgreSQL-WAL variant).
//!
//! Hand-rolled because the workspace is dependency-free: a 256-entry table
//! built at compile time, processed byte-at-a-time.  Throughput is far above
//! what the WAL or snapshot writer needs (records are small and the cost is
//! dominated by the I/O they protect).

const fn make_table() -> [u32; 256] {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut c = i as u32;
        let mut k = 0;
        while k < 8 {
            c = if c & 1 != 0 {
                0xEDB8_8320 ^ (c >> 1)
            } else {
                c >> 1
            };
            k += 1;
        }
        table[i] = c;
        i += 1;
    }
    table
}

static TABLE: [u32; 256] = make_table();

/// Incremental CRC-32 state for multi-part inputs (frame header + payload,
/// snapshot sections).
#[derive(Debug, Clone, Copy)]
pub struct Crc32 {
    state: u32,
}

impl Default for Crc32 {
    fn default() -> Self {
        Self::new()
    }
}

impl Crc32 {
    /// Fresh state.
    pub fn new() -> Crc32 {
        Crc32 { state: !0 }
    }

    /// Absorb bytes.
    pub fn update(&mut self, bytes: &[u8]) {
        let mut c = self.state;
        for &b in bytes {
            c = TABLE[((c ^ b as u32) & 0xFF) as usize] ^ (c >> 8);
        }
        self.state = c;
    }

    /// Final checksum.
    pub fn finish(&self) -> u32 {
        !self.state
    }
}

/// One-shot checksum of `bytes`.
pub fn crc32(bytes: &[u8]) -> u32 {
    let mut c = Crc32::new();
    c.update(bytes);
    c.finish()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn known_vectors() {
        // Standard CRC-32 check values (same polynomial as zlib).
        assert_eq!(crc32(b""), 0);
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(
            crc32(b"The quick brown fox jumps over the lazy dog"),
            0x414F_A339
        );
    }

    #[test]
    fn incremental_matches_oneshot() {
        let data = b"hello incremental crc world";
        let mut c = Crc32::new();
        c.update(&data[..7]);
        c.update(&data[7..]);
        assert_eq!(c.finish(), crc32(data));
    }

    #[test]
    fn detects_single_bit_flip() {
        let mut data = vec![0x5Au8; 512];
        let before = crc32(&data);
        data[300] ^= 0x01;
        assert_ne!(before, crc32(&data));
    }
}
