//! Redo-only write-ahead log, v2 format.
//!
//! Logical logging: every committed heap mutation appends one record; on
//! recovery, records are replayed against the checkpointed heaps (or empty
//! heaps when no checkpoint exists).  This matches the level of durability
//! the paper's evaluation relied on — with one deliberate reproduction of
//! its §4.2.1 caveat: **index structures are not WAL-logged** (PostgreSQL
//! 7.4's GiST had no WAL support), so recovery rebuilds all indexes from
//! the recovered heaps.
//!
//! ## On-disk layout
//!
//! ```text
//! file   := header frame*
//! header := magic:"MLQLWAL2" (8)  base_lsn:u64le (8)
//! frame  := lsn:u64le  crc:u32le  len:u32le  payload[len]
//! ```
//!
//! `crc` covers `lsn ‖ len ‖ payload`, so any complete frame can be
//! validated in isolation.  LSNs start at `base_lsn + 1` and increase by
//! exactly one per frame; `base_lsn` is rewritten when a checkpoint
//! truncates the log, which keeps LSNs monotonic for the life of the
//! database and lets recovery skip records already covered by a snapshot.
//!
//! The CRC + strict LSN sequence is what distinguishes the two failure
//! shapes replay must treat differently:
//!
//! * **torn tail** — the file ends mid-frame (a crash during an append).
//!   Everything before the tear is intact; the tear is discarded.
//! * **mid-log corruption** — a *complete* frame fails its CRC or breaks
//!   the LSN sequence.  Committed records beyond it may be lost, so replay
//!   must stop with an error naming the LSN and byte offset rather than
//!   silently dropping the rest of the log.
//!
//! ## Group commit
//!
//! [`SharedWal`] wraps a [`Wal`] for the multi-session engine.  Appends are
//! buffered under the inner mutex (rank 5 in the engine's lock hierarchy);
//! durability happens at *commit* time, after the statement has released
//! its DML/catalog locks.  In `fsync` mode commits elect a leader that
//! flushes and `sync_data`s once for every record appended so far, while
//! followers wait on a condvar until their LSN is covered — one fsync per
//! batch instead of one per record.

use crate::error::{Error, Result};
use crate::storage::crc32::Crc32;
use parking_lot::{Condvar, Mutex};
use std::fs::{File, OpenOptions};
use std::io::{BufReader, BufWriter, Read, Seek, SeekFrom, Write};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, AtomicU8, Ordering};

/// Magic bytes identifying a v2 WAL file.
pub const WAL_MAGIC: &[u8; 8] = b"MLQLWAL2";
/// File-header length (magic + base LSN).
pub const WAL_HEADER_LEN: u64 = 16;
/// Frame-header length (lsn + crc + len).
const FRAME_HEADER_LEN: usize = 16;

/// One logical WAL record.
///
/// DML records carry the id of the transaction that wrote them.  `txn == 0`
/// means *committed at append time* — the autocommit path, where the
/// statement's group-commit fsync is the commit point.  `txn > 0` marks an
/// explicit transaction: replay applies those records only when a matching
/// [`WalRecord::Commit`] follows in the log.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum WalRecord {
    /// A tuple was inserted into the table with this catalog id.  `tuple`
    /// holds plain row bytes — version headers are a heap-only concern;
    /// replay re-stamps recovered tuples as frozen/committed.
    Insert {
        table_id: u32,
        txn: u64,
        tuple: Vec<u8>,
    },
    /// A tuple was deleted (page/slot of the pre-recovery layout are not
    /// stable, so deletes log the tuple bytes and recovery deletes by
    /// content — adequate for the append-mostly workloads of the paper).
    Delete {
        table_id: u32,
        txn: u64,
        tuple: Vec<u8>,
    },
    /// DDL: the original SQL text, re-executed on replay.  Covers CREATE
    /// TABLE / CREATE INDEX / DROP TABLE / DROP INDEX; replay order equals
    /// append order, so table ids are reassigned identically.
    Ddl { sql: String },
    /// An explicit transaction committed: its DML records become real.
    Commit { txn: u64 },
    /// An explicit transaction rolled back.  Purely informational (replay
    /// drops uncommitted work by default); logged without an fsync.
    Abort { txn: u64 },
}

impl WalRecord {
    fn encode(&self, out: &mut Vec<u8>) {
        match self {
            WalRecord::Insert {
                table_id,
                txn,
                tuple,
            } => {
                out.push(1);
                out.extend_from_slice(&table_id.to_le_bytes());
                out.extend_from_slice(&txn.to_le_bytes());
                out.extend_from_slice(tuple);
            }
            WalRecord::Delete {
                table_id,
                txn,
                tuple,
            } => {
                out.push(2);
                out.extend_from_slice(&table_id.to_le_bytes());
                out.extend_from_slice(&txn.to_le_bytes());
                out.extend_from_slice(tuple);
            }
            WalRecord::Ddl { sql } => {
                out.push(3);
                out.extend_from_slice(sql.as_bytes());
            }
            WalRecord::Commit { txn } => {
                out.push(4);
                out.extend_from_slice(&txn.to_le_bytes());
            }
            WalRecord::Abort { txn } => {
                out.push(5);
                out.extend_from_slice(&txn.to_le_bytes());
            }
        }
    }

    /// Decode one payload (the frame CRC has already been verified, so a
    /// malformed payload here is corruption, not a torn write).
    fn decode(payload: &[u8]) -> std::result::Result<WalRecord, String> {
        let tag = *payload.first().ok_or("empty payload")?;
        match tag {
            1 | 2 => {
                if payload.len() < 13 {
                    return Err(format!("DML payload too short ({} bytes)", payload.len()));
                }
                let table_id = u32::from_le_bytes(payload[1..5].try_into().expect("4 bytes"));
                let txn = u64::from_le_bytes(payload[5..13].try_into().expect("8 bytes"));
                let tuple = payload[13..].to_vec();
                Ok(if tag == 1 {
                    WalRecord::Insert {
                        table_id,
                        txn,
                        tuple,
                    }
                } else {
                    WalRecord::Delete {
                        table_id,
                        txn,
                        tuple,
                    }
                })
            }
            3 => {
                let sql = std::str::from_utf8(&payload[1..])
                    .map_err(|_| "DDL payload is not UTF-8".to_string())?;
                Ok(WalRecord::Ddl {
                    sql: sql.to_string(),
                })
            }
            4 | 5 => {
                if payload.len() < 9 {
                    return Err(format!(
                        "txn-control payload too short ({} bytes)",
                        payload.len()
                    ));
                }
                let txn = u64::from_le_bytes(payload[1..9].try_into().expect("8 bytes"));
                Ok(if tag == 4 {
                    WalRecord::Commit { txn }
                } else {
                    WalRecord::Abort { txn }
                })
            }
            other => Err(format!("unknown record tag {other}")),
        }
    }
}

/// How a frame scan ended.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum ScanEnd {
    /// Clean end-of-file on a frame boundary.
    Clean,
    /// The file ends mid-frame (torn append); `offset` of the tear is the
    /// reader's position when it stopped.
    TornTail,
}

/// Streaming WAL reader: yields `(lsn, record)` pairs through a
/// [`BufReader`], so recovery memory is bounded by the largest record, not
/// the log size.  A torn tail ends iteration silently; a complete frame
/// with a bad CRC, a broken LSN sequence, or an undecodable payload raises
/// [`Error::WalCorrupt`] with the failing LSN and byte offset.
pub struct WalReader {
    reader: BufReader<File>,
    base_lsn: u64,
    next_lsn: u64,
    offset: u64,
    end: Option<ScanEnd>,
}

impl WalReader {
    /// Open the log at `path`; `Ok(None)` when the file does not exist.
    /// A file shorter than its header is treated as empty (a crash during
    /// initial creation — nothing was ever committed through it).
    pub fn open(path: impl AsRef<Path>) -> Result<Option<WalReader>> {
        let file = match File::open(path.as_ref()) {
            Ok(f) => f,
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Ok(None),
            Err(e) => return Err(e.into()),
        };
        let mut reader = BufReader::new(file);
        let mut header = [0u8; WAL_HEADER_LEN as usize];
        if read_up_to(&mut reader, &mut header)? < header.len() {
            return Ok(Some(WalReader {
                reader,
                base_lsn: 0,
                next_lsn: 1,
                offset: 0,
                end: Some(ScanEnd::TornTail),
            }));
        }
        if &header[..8] != WAL_MAGIC {
            return Err(Error::WalCorrupt {
                lsn: 0,
                offset: 0,
                detail: "bad magic: not a v2 WAL file".into(),
            });
        }
        let base_lsn = u64::from_le_bytes(header[8..16].try_into().expect("8 bytes"));
        Ok(Some(WalReader {
            reader,
            base_lsn,
            next_lsn: base_lsn + 1,
            offset: WAL_HEADER_LEN,
            end: None,
        }))
    }

    /// The base LSN from the file header (last LSN truncated away).
    pub fn base_lsn(&self) -> u64 {
        self.base_lsn
    }

    /// Byte offset of the next frame (for error reporting).
    pub fn offset(&self) -> u64 {
        self.offset
    }

    /// True when iteration stopped at a torn (partially written) tail
    /// rather than a clean frame boundary.
    pub fn tail_was_torn(&self) -> bool {
        self.end == Some(ScanEnd::TornTail)
    }

    /// Next record, or `None` at end of log (clean or torn tail).
    pub fn next_record(&mut self) -> Result<Option<(u64, WalRecord)>> {
        if self.end.is_some() {
            return Ok(None);
        }
        let mut fh = [0u8; FRAME_HEADER_LEN];
        let got = read_up_to(&mut self.reader, &mut fh)?;
        if got < fh.len() {
            // Zero bytes at a frame boundary is a clean end; a partial
            // frame header is a torn append.
            self.end = Some(if got == 0 {
                ScanEnd::Clean
            } else {
                ScanEnd::TornTail
            });
            return Ok(None);
        }
        let lsn = u64::from_le_bytes(fh[0..8].try_into().expect("8 bytes"));
        let crc = u32::from_le_bytes(fh[8..12].try_into().expect("4 bytes"));
        let len = u32::from_le_bytes(fh[12..16].try_into().expect("4 bytes")) as u64;
        // Read the payload through `take`, so a garbage length from a torn
        // header cannot force a giant allocation: we only ever buffer what
        // the file actually contains.
        let mut payload = Vec::new();
        let got = (&mut self.reader).take(len).read_to_end(&mut payload)?;
        if (got as u64) < len {
            self.end = Some(ScanEnd::TornTail);
            return Ok(None);
        }
        let mut hasher = Crc32::new();
        hasher.update(&fh[0..8]);
        hasher.update(&fh[12..16]);
        hasher.update(&payload);
        if hasher.finish() != crc {
            return Err(Error::WalCorrupt {
                lsn: self.next_lsn,
                offset: self.offset,
                detail: "frame CRC mismatch".into(),
            });
        }
        if lsn != self.next_lsn {
            return Err(Error::WalCorrupt {
                lsn: self.next_lsn,
                offset: self.offset,
                detail: format!(
                    "LSN sequence broken: found {lsn}, expected {}",
                    self.next_lsn
                ),
            });
        }
        let record = WalRecord::decode(&payload).map_err(|detail| Error::WalCorrupt {
            lsn,
            offset: self.offset,
            detail,
        })?;
        self.offset += (FRAME_HEADER_LEN as u64) + len;
        self.next_lsn += 1;
        Ok(Some((lsn, record)))
    }
}

/// Fill `buf` as far as the stream allows; the count distinguishes a clean
/// boundary (0) from a torn partial read (`0 < n < buf.len()`).
fn read_up_to(r: &mut impl Read, buf: &mut [u8]) -> Result<usize> {
    let mut filled = 0;
    while filled < buf.len() {
        let n = r.read(&mut buf[filled..])?;
        if n == 0 {
            break;
        }
        filled += n;
    }
    Ok(filled)
}

/// The write-ahead log: a single append-only file (plus header).
pub struct Wal {
    path: PathBuf,
    writer: BufWriter<File>,
    base_lsn: u64,
    next_lsn: u64,
    records_written: u64,
}

impl Wal {
    /// Open (or create) the log at `path`.
    ///
    /// An existing log is scanned: a torn tail is physically truncated away
    /// (those bytes were never acknowledged), and mid-log corruption is
    /// reported as an error — opening for append must not write after a
    /// frame that replay would refuse.
    ///
    /// `base_floor` is the LSN the log must at least have reached (the
    /// checkpoint LSN during recovery; 0 otherwise).  A fresh or empty log
    /// starts its header there; an existing log whose records end *below*
    /// the floor is from an older life of the database and is rejected.
    pub fn open(path: impl AsRef<Path>, base_floor: u64) -> Result<Wal> {
        let path = path.as_ref().to_path_buf();
        // Scan to find the end of the valid prefix.
        let (valid_end, last_lsn, base_lsn, had_header) = match WalReader::open(&path)? {
            None => (WAL_HEADER_LEN, 0, base_floor, false),
            Some(mut r) => {
                if r.offset() == 0 {
                    // Short header: treat as empty, rewrite below.
                    (WAL_HEADER_LEN, 0, base_floor, false)
                } else {
                    let mut last = r.base_lsn();
                    while let Some((lsn, _)) = r.next_record()? {
                        last = lsn;
                    }
                    (r.offset(), last, r.base_lsn(), true)
                }
            }
        };
        if had_header && last_lsn < base_floor {
            return Err(Error::WalCorrupt {
                lsn: last_lsn,
                offset: valid_end,
                detail: format!(
                    "log ends at LSN {last_lsn} but the checkpoint requires {base_floor}; \
                     the WAL predates the checkpoint"
                ),
            });
        }
        let file = OpenOptions::new()
            .read(true)
            .write(true)
            .create(true)
            .truncate(false)
            .open(&path)?;
        if !had_header {
            // Fresh file (or torn header): write a clean header.
            file.set_len(0)?;
            let mut f = &file;
            f.write_all(WAL_MAGIC)?;
            f.write_all(&base_lsn.to_le_bytes())?;
        } else {
            // Discard any torn tail so future appends start on a boundary.
            file.set_len(valid_end)?;
        }
        let mut writer = BufWriter::new(file);
        writer.seek(SeekFrom::End(0))?;
        Ok(Wal {
            path,
            writer,
            base_lsn,
            next_lsn: last_lsn.max(base_lsn) + 1,
            records_written: 0,
        })
    }

    /// Append a record to the write buffer; returns its LSN.  Durability is
    /// the caller's business (see [`SharedWal`] / [`SyncMode`]).
    pub fn append(&mut self, record: &WalRecord) -> Result<u64> {
        let lsn = self.next_lsn;
        let mut payload = Vec::with_capacity(64);
        record.encode(&mut payload);
        let len = payload.len() as u32;
        let mut hasher = Crc32::new();
        hasher.update(&lsn.to_le_bytes());
        hasher.update(&len.to_le_bytes());
        hasher.update(&payload);
        let crc = hasher.finish();
        self.writer.write_all(&lsn.to_le_bytes())?;
        self.writer.write_all(&crc.to_le_bytes())?;
        self.writer.write_all(&len.to_le_bytes())?;
        self.writer.write_all(&payload)?;
        self.next_lsn += 1;
        self.records_written += 1;
        let m = crate::obs::metrics();
        m.wal_records_total.inc();
        m.wal_bytes_total
            .add(FRAME_HEADER_LEN as u64 + payload.len() as u64);
        Ok(lsn)
    }

    /// Flush the userspace buffer to the OS.
    pub fn flush(&mut self) -> Result<()> {
        self.writer.flush()?;
        Ok(())
    }

    /// Flush and `sync_data` (true durability barrier).
    pub fn sync(&mut self) -> Result<()> {
        self.writer.flush()?;
        self.writer.get_ref().sync_data()?;
        Ok(())
    }

    /// A second handle onto the log file, for fsyncing outside the lock.
    pub(crate) fn file_handle(&self) -> Result<File> {
        Ok(self.writer.get_ref().try_clone()?)
    }

    /// LSN of the last appended record (`base_lsn` when empty).
    pub fn last_lsn(&self) -> u64 {
        self.next_lsn - 1
    }

    /// The header's base LSN.
    pub fn base_lsn(&self) -> u64 {
        self.base_lsn
    }

    /// Records appended through this handle.
    pub fn records_written(&self) -> u64 {
        self.records_written
    }

    /// Truncate the log after a checkpoint: every record up to and
    /// including [`Wal::last_lsn`] is covered by the snapshot.  The new
    /// (empty) log carries `base_lsn = last_lsn`, so LSNs keep ascending.
    ///
    /// Crash-safe via write-to-temp + rename: a crash before the rename
    /// leaves the old log intact (its records are simply skipped on
    /// recovery because the snapshot covers them).
    pub fn truncate(&mut self) -> Result<()> {
        self.writer.flush()?;
        let new_base = self.last_lsn();
        let tmp = self.path.with_extension("log.tmp");
        {
            let mut f = File::create(&tmp)?;
            f.write_all(WAL_MAGIC)?;
            f.write_all(&new_base.to_le_bytes())?;
            f.sync_all()?;
        }
        std::fs::rename(&tmp, &self.path)?;
        sync_parent_dir(&self.path);
        let file = OpenOptions::new()
            .read(true)
            .write(true)
            .truncate(false)
            .open(&self.path)?;
        let mut writer = BufWriter::new(file);
        writer.seek(SeekFrom::End(0))?;
        self.writer = writer;
        self.base_lsn = new_base;
        self.next_lsn = new_base + 1;
        Ok(())
    }

    /// Read every record currently in the log (tests and tools; recovery
    /// streams through [`WalReader`] instead).
    pub fn replay(path: impl AsRef<Path>) -> Result<Vec<WalRecord>> {
        let mut out = Vec::new();
        if let Some(mut r) = WalReader::open(path)? {
            while let Some((_, rec)) = r.next_record()? {
                out.push(rec);
            }
        }
        Ok(out)
    }
}

/// Best-effort directory fsync so a rename is durable on its own (POSIX
/// requires the parent directory to be synced; failures are ignored —
/// some filesystems refuse to fsync directories).
pub(crate) fn sync_parent_dir(path: &Path) {
    if let Some(parent) = path.parent() {
        if let Ok(d) = File::open(parent) {
            let _ = d.sync_all();
        }
    }
}

// ------------------------------------------------------------ group commit

/// Durability policy for WAL appends.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SyncMode {
    /// Buffered only; the OS (and a checkpoint) decide when bytes land.
    Off,
    /// Flush the userspace buffer per statement (survives process crash,
    /// not OS crash).
    Flush,
    /// Group commit: one `sync_data` per batch of concurrent commits
    /// (survives OS crash; the default for durable databases).
    Fsync,
    /// One `sync_data` per appended record, inside the WAL lock — the
    /// naive baseline group commit is measured against.
    FsyncPerRecord,
}

impl SyncMode {
    /// Parse a `wal_sync_mode` setting.
    pub fn parse(s: &str) -> Option<SyncMode> {
        match s.to_ascii_lowercase().as_str() {
            "off" => Some(SyncMode::Off),
            "flush" => Some(SyncMode::Flush),
            "fsync" => Some(SyncMode::Fsync),
            "fsync_per_record" => Some(SyncMode::FsyncPerRecord),
            _ => None,
        }
    }

    /// Canonical setting string.
    pub fn as_str(&self) -> &'static str {
        match self {
            SyncMode::Off => "off",
            SyncMode::Flush => "flush",
            SyncMode::Fsync => "fsync",
            SyncMode::FsyncPerRecord => "fsync_per_record",
        }
    }

    fn to_u8(self) -> u8 {
        match self {
            SyncMode::Off => 0,
            SyncMode::Flush => 1,
            SyncMode::Fsync => 2,
            SyncMode::FsyncPerRecord => 3,
        }
    }

    fn from_u8(v: u8) -> SyncMode {
        match v {
            0 => SyncMode::Off,
            1 => SyncMode::Flush,
            3 => SyncMode::FsyncPerRecord,
            _ => SyncMode::Fsync,
        }
    }
}

#[derive(Default)]
struct SyncState {
    synced_lsn: u64,
    leader_running: bool,
}

/// Thread-safe WAL with group commit.
///
/// Lock order: the inner WAL mutex and the sync-state mutex are never held
/// together — the commit leader releases the sync state before flushing
/// under the inner lock, and fsyncs on a cloned file handle with *neither*
/// lock held, so appends from other sessions proceed during the fsync.
pub struct SharedWal {
    inner: Mutex<Wal>,
    mode: AtomicU8,
    /// LSN of the last buffered append (read by commits without the lock).
    written_lsn: AtomicU64,
    sync: Mutex<SyncState>,
    cond: Condvar,
}

impl SharedWal {
    /// Wrap a log with the given initial durability mode.
    pub fn new(wal: Wal, mode: SyncMode) -> SharedWal {
        let written = wal.last_lsn();
        SharedWal {
            inner: Mutex::new(wal),
            mode: AtomicU8::new(mode.to_u8()),
            written_lsn: AtomicU64::new(written),
            sync: Mutex::new(SyncState {
                synced_lsn: written,
                leader_running: false,
            }),
            cond: Condvar::new(),
        }
    }

    /// Current durability mode.
    pub fn mode(&self) -> SyncMode {
        SyncMode::from_u8(self.mode.load(Ordering::Relaxed))
    }

    /// Change the durability mode (the `wal_sync_mode` knob).
    pub fn set_mode(&self, mode: SyncMode) {
        self.mode.store(mode.to_u8(), Ordering::Relaxed);
    }

    /// Append a record; returns its LSN.  In `fsync` mode the record is
    /// only buffered — call [`SharedWal::commit`] (after releasing
    /// statement locks!) to make it durable.
    pub fn append(&self, record: &WalRecord) -> Result<u64> {
        let mode = self.mode();
        let lsn = {
            let mut wal = self.inner.lock();
            let lsn = wal.append(record)?;
            match mode {
                SyncMode::Off | SyncMode::Fsync => {}
                SyncMode::Flush => wal.flush()?,
                SyncMode::FsyncPerRecord => {
                    wal.sync()?;
                    let m = crate::obs::metrics();
                    m.wal_fsyncs_total.inc();
                    m.wal_group_commit_batch.observe(1.0);
                }
            }
            self.written_lsn.store(lsn, Ordering::Release);
            lsn
        };
        if mode == SyncMode::FsyncPerRecord {
            let mut s = self.sync.lock();
            if lsn > s.synced_lsn {
                s.synced_lsn = lsn;
            }
            drop(s);
            self.cond.notify_all();
        }
        Ok(lsn)
    }

    /// Make everything appended so far durable according to the mode.  In
    /// `fsync` mode this is the group-commit rendezvous: the first waiter
    /// becomes the leader and fsyncs once for the whole batch.
    pub fn commit(&self) -> Result<()> {
        if self.mode() != SyncMode::Fsync {
            return Ok(());
        }
        // The whole rendezvous — leading the fsync or waiting for the
        // leader's — is durability-blocked time; charge it to the
        // committing query as a `wal_commit` wait.
        crate::obs::waits::time_wait(crate::obs::WaitClass::WalCommit, || self.commit_inner())
    }

    fn commit_inner(&self) -> Result<()> {
        let target = self.written_lsn.load(Ordering::Acquire);
        let mut s = self.sync.lock();
        while s.synced_lsn < target {
            if s.leader_running {
                self.cond.wait(&mut s);
                continue;
            }
            s.leader_running = true;
            drop(s);
            let res = self.flush_and_sync();
            s = self.sync.lock();
            s.leader_running = false;
            match res {
                Ok(synced) => {
                    if synced > s.synced_lsn {
                        crate::obs::metrics()
                            .wal_group_commit_batch
                            .observe((synced - s.synced_lsn) as f64);
                        s.synced_lsn = synced;
                    }
                    self.cond.notify_all();
                }
                Err(e) => {
                    self.cond.notify_all();
                    return Err(e);
                }
            }
        }
        Ok(())
    }

    /// Unconditional durability barrier (checkpoints): flush + fsync
    /// regardless of mode; returns the last durable LSN.
    pub fn sync_now(&self) -> Result<u64> {
        let synced = self.flush_and_sync()?;
        let mut s = self.sync.lock();
        if synced > s.synced_lsn {
            s.synced_lsn = synced;
        }
        drop(s);
        self.cond.notify_all();
        Ok(synced)
    }

    /// Flush under the inner lock, then fsync a cloned handle with no lock
    /// held; returns the LSN covered by the fsync.
    fn flush_and_sync(&self) -> Result<u64> {
        let (lsn, file) = {
            let mut wal = self.inner.lock();
            wal.flush()?;
            (wal.last_lsn(), wal.file_handle()?)
        };
        file.sync_data()?;
        crate::obs::metrics().wal_fsyncs_total.inc();
        Ok(lsn)
    }

    /// LSN of the last appended record.
    pub fn last_lsn(&self) -> u64 {
        self.written_lsn.load(Ordering::Acquire)
    }

    /// Records appended through this handle.
    pub fn records_written(&self) -> u64 {
        self.inner.lock().records_written()
    }

    /// Truncate after a checkpoint (see [`Wal::truncate`]).  The caller
    /// must have quiesced writers (the engine holds the DML lock and the
    /// catalog guard across checkpoints).
    pub fn truncate(&self) -> Result<()> {
        self.inner.lock().truncate()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    fn temp_wal(name: &str) -> PathBuf {
        std::env::temp_dir().join(format!("mlql-wal-{name}-{}", std::process::id()))
    }

    fn sample_records() -> Vec<WalRecord> {
        vec![
            WalRecord::Ddl {
                sql: "CREATE TABLE book (id INT)".into(),
            },
            WalRecord::Insert {
                table_id: 0,
                txn: 0,
                tuple: vec![1, 2, 3],
            },
            WalRecord::Delete {
                table_id: 0,
                txn: 7,
                tuple: vec![1, 2, 3],
            },
            WalRecord::Commit { txn: 7 },
            WalRecord::Abort { txn: 9 },
        ]
    }

    #[test]
    fn append_replay_roundtrip() {
        let path = temp_wal("rt");
        let _ = std::fs::remove_file(&path);
        let mut wal = Wal::open(&path, 0).unwrap();
        let records = sample_records();
        for (i, r) in records.iter().enumerate() {
            assert_eq!(wal.append(r).unwrap(), i as u64 + 1, "LSNs start at 1");
        }
        assert_eq!(wal.records_written(), 5);
        wal.flush().unwrap();
        drop(wal);
        assert_eq!(Wal::replay(&path).unwrap(), records);
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn replay_missing_file_is_empty() {
        assert!(Wal::replay(temp_wal("missing")).unwrap().is_empty());
    }

    #[test]
    fn torn_tail_is_ignored() {
        let path = temp_wal("torn");
        let _ = std::fs::remove_file(&path);
        let mut wal = Wal::open(&path, 0).unwrap();
        wal.append(&WalRecord::Insert {
            table_id: 9,
            txn: 0,
            tuple: vec![7; 100],
        })
        .unwrap();
        wal.flush().unwrap();
        drop(wal);
        // Simulate a torn write: append a garbage prefix of a frame.
        let mut f = OpenOptions::new().append(true).open(&path).unwrap();
        f.write_all(&[1, 0, 0]).unwrap();
        drop(f);
        let mut r = WalReader::open(&path).unwrap().unwrap();
        let mut n = 0;
        while r.next_record().unwrap().is_some() {
            n += 1;
        }
        assert_eq!(n, 1);
        assert!(r.tail_was_torn());
        // Reopening for append truncates the tear and keeps LSNs going.
        let mut wal = Wal::open(&path, 0).unwrap();
        assert_eq!(
            wal.append(&WalRecord::Insert {
                table_id: 9,
                txn: 0,
                tuple: vec![8],
            })
            .unwrap(),
            2
        );
        wal.flush().unwrap();
        drop(wal);
        assert_eq!(Wal::replay(&path).unwrap().len(), 2);
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn mid_log_corruption_is_reported_with_lsn_and_offset() {
        let path = temp_wal("corrupt");
        let _ = std::fs::remove_file(&path);
        let mut wal = Wal::open(&path, 0).unwrap();
        for r in sample_records() {
            wal.append(&r).unwrap();
        }
        wal.flush().unwrap();
        drop(wal);
        // Flip one byte inside the *second* frame's payload.
        let mut bytes = std::fs::read(&path).unwrap();
        let first_len = {
            let mut r = WalReader::open(&path).unwrap().unwrap();
            r.next_record().unwrap();
            r.offset() as usize
        };
        bytes[first_len + FRAME_HEADER_LEN + 1] ^= 0xFF;
        std::fs::write(&path, &bytes).unwrap();
        let mut r = WalReader::open(&path).unwrap().unwrap();
        assert!(r.next_record().unwrap().is_some(), "first record intact");
        let err = r.next_record().unwrap_err();
        match err {
            Error::WalCorrupt { lsn, offset, .. } => {
                assert_eq!(lsn, 2);
                assert_eq!(offset, first_len as u64);
            }
            other => panic!("expected WalCorrupt, got {other}"),
        }
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn truncate_keeps_lsns_monotonic() {
        let path = temp_wal("trunc");
        let _ = std::fs::remove_file(&path);
        let mut wal = Wal::open(&path, 0).unwrap();
        wal.append(&WalRecord::Insert {
            table_id: 1,
            txn: 0,
            tuple: vec![1],
        })
        .unwrap();
        wal.append(&WalRecord::Insert {
            table_id: 1,
            txn: 0,
            tuple: vec![2],
        })
        .unwrap();
        wal.truncate().unwrap();
        assert_eq!(wal.base_lsn(), 2);
        let lsn = wal
            .append(&WalRecord::Insert {
                table_id: 2,
                txn: 0,
                tuple: vec![3],
            })
            .unwrap();
        assert_eq!(lsn, 3, "LSNs continue past the truncation point");
        wal.flush().unwrap();
        drop(wal);
        let mut r = WalReader::open(&path).unwrap().unwrap();
        assert_eq!(r.base_lsn(), 2);
        let (lsn, rec) = r.next_record().unwrap().unwrap();
        assert_eq!(lsn, 3);
        assert_eq!(
            rec,
            WalRecord::Insert {
                table_id: 2,
                txn: 0,
                tuple: vec![3]
            }
        );
        assert!(r.next_record().unwrap().is_none());
        // Reopen after truncation resumes from the preserved base.
        let wal = Wal::open(&path, 0).unwrap();
        assert_eq!(wal.last_lsn(), 3);
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn open_rejects_wal_older_than_checkpoint() {
        let path = temp_wal("floor");
        let _ = std::fs::remove_file(&path);
        let mut wal = Wal::open(&path, 0).unwrap();
        wal.append(&WalRecord::Insert {
            table_id: 0,
            txn: 0,
            tuple: vec![1],
        })
        .unwrap();
        wal.flush().unwrap();
        drop(wal);
        // A checkpoint at LSN 10 cannot be paired with a log ending at 1.
        assert!(matches!(
            Wal::open(&path, 10),
            Err(Error::WalCorrupt { .. })
        ));
        // But an empty log accepts any floor.
        std::fs::remove_file(&path).unwrap();
        let wal = Wal::open(&path, 10).unwrap();
        assert_eq!(wal.base_lsn(), 10);
        assert_eq!(wal.last_lsn(), 10);
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn group_commit_batches_concurrent_commits() {
        let path = temp_wal("group");
        let _ = std::fs::remove_file(&path);
        let shared = Arc::new(SharedWal::new(
            Wal::open(&path, 0).unwrap(),
            SyncMode::Fsync,
        ));
        let threads = 4;
        let per_thread = 25;
        std::thread::scope(|scope| {
            for t in 0..threads {
                let shared = Arc::clone(&shared);
                scope.spawn(move || {
                    for i in 0..per_thread {
                        shared
                            .append(&WalRecord::Insert {
                                table_id: t,
                                txn: 0,
                                tuple: vec![i as u8],
                            })
                            .unwrap();
                        shared.commit().unwrap();
                    }
                });
            }
        });
        assert_eq!(shared.records_written(), (threads * per_thread) as u64);
        drop(shared);
        assert_eq!(
            Wal::replay(&path).unwrap().len(),
            (threads * per_thread) as usize
        );
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn sync_mode_parse_roundtrip() {
        for m in [
            SyncMode::Off,
            SyncMode::Flush,
            SyncMode::Fsync,
            SyncMode::FsyncPerRecord,
        ] {
            assert_eq!(SyncMode::parse(m.as_str()), Some(m));
        }
        assert_eq!(SyncMode::parse("FSYNC"), Some(SyncMode::Fsync));
        assert_eq!(SyncMode::parse("nope"), None);
    }
}
