//! Redo-only write-ahead log.
//!
//! Logical logging: every committed heap mutation appends one record; on
//! recovery, records are replayed against empty heaps.  This matches the
//! level of durability the paper's evaluation relied on — with one
//! deliberate reproduction of its §4.2.1 caveat: **index structures are not
//! WAL-logged** (PostgreSQL 7.4's GiST had no WAL support), so recovery
//! rebuilds all indexes from the recovered heaps.  An integration test
//! demonstrates exactly that behaviour.

use crate::error::{Error, Result};
use std::fs::{File, OpenOptions};
use std::io::{BufWriter, Read, Write};
use std::path::{Path, PathBuf};

/// One logical WAL record.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum WalRecord {
    /// A tuple was inserted into the table with this catalog id.
    Insert { table_id: u32, tuple: Vec<u8> },
    /// A tuple was deleted (page/slot of the pre-recovery layout are not
    /// stable, so deletes log the tuple bytes and recovery deletes by
    /// content — adequate for the append-mostly workloads of the paper).
    Delete { table_id: u32, tuple: Vec<u8> },
    /// DDL checkpoint: table created (schema bytes are catalog-encoded).
    CreateTable { table_id: u32, ddl: Vec<u8> },
}

impl WalRecord {
    fn encode(&self, out: &mut Vec<u8>) {
        match self {
            WalRecord::Insert { table_id, tuple } => {
                out.push(1);
                out.extend_from_slice(&table_id.to_le_bytes());
                out.extend_from_slice(&(tuple.len() as u32).to_le_bytes());
                out.extend_from_slice(tuple);
            }
            WalRecord::Delete { table_id, tuple } => {
                out.push(2);
                out.extend_from_slice(&table_id.to_le_bytes());
                out.extend_from_slice(&(tuple.len() as u32).to_le_bytes());
                out.extend_from_slice(tuple);
            }
            WalRecord::CreateTable { table_id, ddl } => {
                out.push(3);
                out.extend_from_slice(&table_id.to_le_bytes());
                out.extend_from_slice(&(ddl.len() as u32).to_le_bytes());
                out.extend_from_slice(ddl);
            }
        }
    }

    fn decode(bytes: &[u8]) -> Result<(WalRecord, usize)> {
        let corrupt = || Error::Storage("corrupt WAL record".into());
        if bytes.len() < 9 {
            return Err(corrupt());
        }
        let tag = bytes[0];
        let table_id = u32::from_le_bytes(bytes[1..5].try_into().expect("4 bytes"));
        let len = u32::from_le_bytes(bytes[5..9].try_into().expect("4 bytes")) as usize;
        if bytes.len() < 9 + len {
            return Err(corrupt());
        }
        let payload = bytes[9..9 + len].to_vec();
        let rec = match tag {
            1 => WalRecord::Insert {
                table_id,
                tuple: payload,
            },
            2 => WalRecord::Delete {
                table_id,
                tuple: payload,
            },
            3 => WalRecord::CreateTable {
                table_id,
                ddl: payload,
            },
            _ => return Err(corrupt()),
        };
        Ok((rec, 9 + len))
    }
}

/// The write-ahead log: an append-only file.
pub struct Wal {
    path: PathBuf,
    writer: BufWriter<File>,
    records_written: u64,
}

impl Wal {
    /// Open (or create) the log at `path`, appending.
    pub fn open(path: impl AsRef<Path>) -> Result<Wal> {
        let path = path.as_ref().to_path_buf();
        let file = OpenOptions::new().create(true).append(true).open(&path)?;
        Ok(Wal {
            path,
            writer: BufWriter::new(file),
            records_written: 0,
        })
    }

    /// Append a record and flush it (commit durability).
    pub fn append(&mut self, record: &WalRecord) -> Result<()> {
        let mut buf = Vec::with_capacity(64);
        record.encode(&mut buf);
        self.writer.write_all(&buf)?;
        self.writer.flush()?;
        self.records_written += 1;
        let m = crate::obs::metrics();
        m.wal_records_total.inc();
        m.wal_bytes_total.add(buf.len() as u64);
        Ok(())
    }

    /// Records appended through this handle.
    pub fn records_written(&self) -> u64 {
        self.records_written
    }

    /// Read every record currently in the log (recovery).  A trailing
    /// partial record (torn write) is tolerated and ignored.
    pub fn replay(path: impl AsRef<Path>) -> Result<Vec<WalRecord>> {
        let mut bytes = Vec::new();
        match File::open(path.as_ref()) {
            Ok(mut f) => {
                f.read_to_end(&mut bytes)?;
            }
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Ok(Vec::new()),
            Err(e) => return Err(e.into()),
        }
        let mut records = Vec::new();
        let mut off = 0;
        while off < bytes.len() {
            match WalRecord::decode(&bytes[off..]) {
                Ok((rec, used)) => {
                    records.push(rec);
                    off += used;
                }
                Err(_) => break, // torn tail
            }
        }
        Ok(records)
    }

    /// Truncate the log (after a checkpoint that persisted all heaps).
    pub fn truncate(&mut self) -> Result<()> {
        self.writer.flush()?;
        let file = OpenOptions::new()
            .write(true)
            .truncate(true)
            .open(&self.path)?;
        self.writer = BufWriter::new(file);
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn temp_wal(name: &str) -> PathBuf {
        std::env::temp_dir().join(format!("mlql-wal-{name}-{}", std::process::id()))
    }

    #[test]
    fn append_replay_roundtrip() {
        let path = temp_wal("rt");
        let _ = std::fs::remove_file(&path);
        let mut wal = Wal::open(&path).unwrap();
        let records = vec![
            WalRecord::CreateTable {
                table_id: 1,
                ddl: b"book".to_vec(),
            },
            WalRecord::Insert {
                table_id: 1,
                tuple: vec![1, 2, 3],
            },
            WalRecord::Delete {
                table_id: 1,
                tuple: vec![1, 2, 3],
            },
        ];
        for r in &records {
            wal.append(r).unwrap();
        }
        assert_eq!(wal.records_written(), 3);
        drop(wal);
        assert_eq!(Wal::replay(&path).unwrap(), records);
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn replay_missing_file_is_empty() {
        assert!(Wal::replay(temp_wal("missing")).unwrap().is_empty());
    }

    #[test]
    fn torn_tail_is_ignored() {
        let path = temp_wal("torn");
        let _ = std::fs::remove_file(&path);
        let mut wal = Wal::open(&path).unwrap();
        wal.append(&WalRecord::Insert {
            table_id: 9,
            tuple: vec![7; 100],
        })
        .unwrap();
        drop(wal);
        // Simulate a torn write: append garbage prefix of a record.
        let mut f = OpenOptions::new().append(true).open(&path).unwrap();
        f.write_all(&[1, 0, 0]).unwrap();
        drop(f);
        let recs = Wal::replay(&path).unwrap();
        assert_eq!(recs.len(), 1);
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn truncate_empties_log() {
        let path = temp_wal("trunc");
        let _ = std::fs::remove_file(&path);
        let mut wal = Wal::open(&path).unwrap();
        wal.append(&WalRecord::Insert {
            table_id: 1,
            tuple: vec![1],
        })
        .unwrap();
        wal.truncate().unwrap();
        wal.append(&WalRecord::Insert {
            table_id: 2,
            tuple: vec![2],
        })
        .unwrap();
        drop(wal);
        let recs = Wal::replay(&path).unwrap();
        assert_eq!(recs.len(), 1);
        assert_eq!(
            recs[0],
            WalRecord::Insert {
                table_id: 2,
                tuple: vec![2]
            }
        );
        std::fs::remove_file(&path).unwrap();
    }
}
