//! Slotted pages.
//!
//! Layout (offsets in bytes, little-endian):
//! ```text
//! 0..2    slot_count
//! 2..4    free_start  (end of slot array growth region)
//! 4..6    free_end    (start of tuple data region, grows downward)
//! 6..8    reserved (flags)
//! 8..     slot array: per slot {offset: u16, len: u16}; len == 0 ⇒ dead
//! ...     free space
//! ...     tuple data (packed at the end of the page)
//! ```

use crate::error::{Error, Result};

/// Size of every page, matching PostgreSQL's default.
pub const PAGE_SIZE: usize = 8192;

const HEADER: usize = 8;
const SLOT: usize = 4;

/// A typed view over one page buffer.
pub struct Page<'a> {
    buf: &'a mut [u8],
}

impl<'a> Page<'a> {
    /// Wrap a raw page buffer (must be `PAGE_SIZE` bytes).
    pub fn new(buf: &'a mut [u8]) -> Self {
        debug_assert_eq!(buf.len(), PAGE_SIZE);
        Page { buf }
    }

    /// Format an empty page in place.
    pub fn init(&mut self) {
        self.set_u16(0, 0); // slot_count
        self.set_u16(2, HEADER as u16); // free_start
        self.set_u16(4, PAGE_SIZE as u16); // free_end
        self.set_u16(6, 0);
    }

    fn u16_at(&self, off: usize) -> u16 {
        u16::from_le_bytes([self.buf[off], self.buf[off + 1]])
    }

    fn set_u16(&mut self, off: usize, v: u16) {
        self.buf[off..off + 2].copy_from_slice(&v.to_le_bytes());
    }

    /// Number of slots (live + dead).
    pub fn slot_count(&self) -> usize {
        self.u16_at(0) as usize
    }

    fn free_start(&self) -> usize {
        self.u16_at(2) as usize
    }

    fn free_end(&self) -> usize {
        self.u16_at(4) as usize
    }

    /// Contiguous free bytes remaining (tuple + new slot entry).
    pub fn free_space(&self) -> usize {
        self.free_end().saturating_sub(self.free_start())
    }

    /// Can a tuple of `len` bytes be inserted?
    pub fn fits(&self, len: usize) -> bool {
        self.free_space() >= len + SLOT
    }

    /// Insert a tuple; returns the slot number.
    pub fn insert(&mut self, tuple: &[u8]) -> Result<u16> {
        if tuple.is_empty() {
            return Err(Error::Storage("empty tuple".into()));
        }
        if tuple.len() > u16::MAX as usize {
            return Err(Error::Storage(format!(
                "tuple of {} bytes exceeds page",
                tuple.len()
            )));
        }
        if !self.fits(tuple.len()) {
            return Err(Error::Storage("page full".into()));
        }
        let slot = self.slot_count() as u16;
        let data_start = self.free_end() - tuple.len();
        self.buf[data_start..data_start + tuple.len()].copy_from_slice(tuple);
        let slot_off = HEADER + slot as usize * SLOT;
        self.set_u16(slot_off, data_start as u16);
        self.set_u16(slot_off + 2, tuple.len() as u16);
        self.set_u16(0, slot + 1);
        self.set_u16(2, (slot_off + SLOT) as u16);
        self.set_u16(4, data_start as u16);
        Ok(slot)
    }

    /// Read the tuple in `slot`; `None` when the slot is dead or absent.
    pub fn get(&self, slot: u16) -> Option<&[u8]> {
        if slot as usize >= self.slot_count() {
            return None;
        }
        let slot_off = HEADER + slot as usize * SLOT;
        let off = self.u16_at(slot_off) as usize;
        let len = self.u16_at(slot_off + 2) as usize;
        if len == 0 {
            return None; // dead
        }
        Some(&self.buf[off..off + len])
    }

    /// Mark a slot dead.  Space is not compacted (VACUUM is out of scope);
    /// dead slots are skipped by scans.
    pub fn delete(&mut self, slot: u16) -> Result<()> {
        if slot as usize >= self.slot_count() {
            return Err(Error::Storage(format!("no slot {slot}")));
        }
        let slot_off = HEADER + slot as usize * SLOT;
        self.set_u16(slot_off + 2, 0);
        Ok(())
    }

    /// Iterate `(slot, tuple)` over live tuples.
    pub fn iter(&self) -> impl Iterator<Item = (u16, &[u8])> {
        (0..self.slot_count() as u16).filter_map(move |s| self.get(s).map(|t| (s, t)))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fresh() -> Vec<u8> {
        let mut buf = vec![0u8; PAGE_SIZE];
        Page::new(&mut buf).init();
        buf
    }

    #[test]
    fn insert_and_get() {
        let mut buf = fresh();
        let mut p = Page::new(&mut buf);
        let s0 = p.insert(b"hello").unwrap();
        let s1 = p.insert(b"world!").unwrap();
        assert_eq!(p.get(s0), Some(&b"hello"[..]));
        assert_eq!(p.get(s1), Some(&b"world!"[..]));
        assert_eq!(p.get(99), None);
    }

    #[test]
    fn delete_marks_dead() {
        let mut buf = fresh();
        let mut p = Page::new(&mut buf);
        let s = p.insert(b"gone").unwrap();
        p.delete(s).unwrap();
        assert_eq!(p.get(s), None);
        assert_eq!(p.iter().count(), 0);
        assert!(p.delete(42).is_err());
    }

    #[test]
    fn fills_up_and_rejects() {
        let mut buf = fresh();
        let mut p = Page::new(&mut buf);
        let tuple = vec![7u8; 1000];
        let mut n = 0;
        while p.fits(tuple.len()) {
            p.insert(&tuple).unwrap();
            n += 1;
        }
        assert_eq!(n, 8, "8×(1000+4) + header fits in 8192");
        assert!(p.insert(&tuple).is_err());
        // Smaller tuples still fit in the remainder.
        assert!(p.insert(&[1u8; 50]).is_ok());
    }

    #[test]
    fn iter_skips_dead_preserves_order() {
        let mut buf = fresh();
        let mut p = Page::new(&mut buf);
        for b in [b"a", b"b", b"c"] {
            p.insert(&b[..]).unwrap();
        }
        p.delete(1).unwrap();
        let live: Vec<&[u8]> = p.iter().map(|(_, t)| t).collect();
        assert_eq!(live, vec![&b"a"[..], &b"c"[..]]);
    }

    #[test]
    fn empty_and_oversized_tuples_rejected() {
        let mut buf = fresh();
        let mut p = Page::new(&mut buf);
        assert!(p.insert(b"").is_err());
        assert!(p.insert(&vec![0u8; PAGE_SIZE]).is_err());
    }

    #[test]
    fn persists_across_reinterpretation() {
        let mut buf = fresh();
        {
            let mut p = Page::new(&mut buf);
            p.insert(b"durable").unwrap();
        }
        let mut copy = buf.clone();
        let p = Page::new(&mut copy);
        assert_eq!(p.get(0), Some(&b"durable"[..]));
    }
}
