//! Transaction manager: monotonic transaction ids and MVCC snapshots.
//!
//! Snapshot isolation, PostgreSQL-style but simplified to this engine's
//! needs (in the spirit of rustmemodb's `TransactionManager`):
//!
//! * Every writing statement runs inside a transaction — explicit
//!   (`BEGIN` … `COMMIT`/`ROLLBACK`) or an ephemeral autocommit wrapper.
//! * Ids are handed out monotonically starting at 2 (0 = invalid /
//!   "no `xmax`", 1 = the frozen id checkpoint vacuum stamps — see
//!   [`crate::storage::FROZEN_TXN_ID`]).
//! * A [`TxnSnapshot`] captures the id high-water mark plus the set of
//!   transactions in flight at that instant; a transaction id is
//!   *committed for that snapshot* iff it was allocated before the
//!   snapshot, was not in flight, and did not abort.
//! * Heap tuples carry `xmin`/`xmax` stamps; [`TxnVisibility`] combines a
//!   snapshot with the reader's own id so a transaction always sees its
//!   own writes ("read your own writes") and never sees anyone's
//!   uncommitted ones.
//!
//! Aborted ids accumulate in a shared set (copy-on-write, so snapshots
//! are cheap `Arc` clones); checkpoint vacuum physically removes dead
//! versions and clears the set.

use parking_lot::Mutex;
use std::collections::{BTreeSet, HashSet};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// The id stamped into `xmax` of live tuples ("never deleted"), and the
/// `txn` field of autocommit WAL records ("committed at append").
pub const INVALID_TXN_ID: u64 = 0;

/// First real transaction id (see [`crate::storage::FROZEN_TXN_ID`] = 1).
const FIRST_TXN_ID: u64 = 2;

#[derive(Default)]
struct TxnState {
    /// Transactions begun and neither committed nor aborted.
    active: BTreeSet<u64>,
    /// Every transaction that aborted since the last checkpoint vacuum.
    /// Copy-on-write: snapshots share the `Arc`, aborts replace it.
    aborted: Arc<HashSet<u64>>,
}

/// Engine-wide transaction bookkeeping.  One per [`crate::Engine`].
pub struct TransactionManager {
    /// Next id to hand out.  Written only under the state mutex so that
    /// id allocation and active-set insertion are atomic with respect to
    /// snapshot capture.
    next: AtomicU64,
    state: Mutex<TxnState>,
}

impl Default for TransactionManager {
    fn default() -> Self {
        Self::new()
    }
}

impl TransactionManager {
    /// A fresh manager; ids start at 2.
    pub fn new() -> TransactionManager {
        TransactionManager {
            next: AtomicU64::new(FIRST_TXN_ID),
            state: Mutex::new(TxnState::default()),
        }
    }

    /// Begin a transaction: allocate an id and mark it in flight.
    pub fn begin(&self) -> u64 {
        let mut s = self.state.lock();
        let id = self.next.fetch_add(1, Ordering::Relaxed);
        s.active.insert(id);
        crate::obs::metrics().txn_begins_total.inc();
        id
    }

    /// Commit `id`: it leaves the active set and becomes visible to every
    /// snapshot taken from now on.
    pub fn commit(&self, id: u64) {
        let mut s = self.state.lock();
        s.active.remove(&id);
        crate::obs::metrics().txn_commits_total.inc();
    }

    /// Abort `id`: its versions stay dead for every snapshot, past and
    /// future, until checkpoint vacuum reclaims them.
    pub fn abort(&self, id: u64) {
        let mut s = self.state.lock();
        s.active.remove(&id);
        let mut aborted = (*s.aborted).clone();
        aborted.insert(id);
        s.aborted = Arc::new(aborted);
        crate::obs::metrics().txn_aborts_total.inc();
    }

    /// Capture a consistent snapshot of the transaction state.
    pub fn snapshot(&self) -> TxnSnapshot {
        let s = self.state.lock();
        TxnSnapshot {
            high: self.next.load(Ordering::Relaxed),
            active: s.active.iter().copied().collect(),
            aborted: Arc::clone(&s.aborted),
        }
    }

    /// Are any transactions currently in flight?  (Checkpoints refuse to
    /// run with open transactions: vacuum would pull versions out from
    /// under their snapshots.)
    pub fn has_active(&self) -> bool {
        !self.state.lock().active.is_empty()
    }

    /// Has `id` aborted (since the last vacuum)?
    pub fn is_aborted(&self, id: u64) -> bool {
        self.state.lock().aborted.contains(&id)
    }

    /// Forget the aborted set — called after checkpoint vacuum has
    /// physically deleted every version those transactions wrote.
    pub fn clear_aborted(&self) {
        self.state.lock().aborted = Arc::new(HashSet::new());
    }
}

/// A point-in-time view of the transaction state.
#[derive(Debug, Clone)]
pub struct TxnSnapshot {
    /// Ids `>= high` were allocated after this snapshot.
    pub high: u64,
    /// Ids in flight when the snapshot was taken (sorted).
    pub active: Arc<[u64]>,
    /// Every id aborted before the snapshot (shared, copy-on-write).
    pub aborted: Arc<HashSet<u64>>,
}

impl TxnSnapshot {
    /// Is `id` committed *as of this snapshot*?  The frozen id (1) is
    /// always committed; 0 never is.
    pub fn committed(&self, id: u64) -> bool {
        id != INVALID_TXN_ID
            && id < self.high
            && self.active.binary_search(&id).is_err()
            && !self.aborted.contains(&id)
    }
}

/// Everything a scan needs to decide tuple visibility: the snapshot plus
/// the reading transaction's own id (0 for autocommit readers, which own
/// no uncommitted versions).
#[derive(Debug, Clone)]
pub struct TxnVisibility {
    /// The reader's transaction id, or 0 when reading outside any
    /// transaction.
    pub txn: u64,
    /// The snapshot visibility is judged against.
    pub snap: TxnSnapshot,
}

impl TxnVisibility {
    /// Snapshot-isolation visibility check for a `(xmin, xmax)` stamped
    /// tuple: the inserting transaction must be us or committed, and the
    /// deleting transaction (if any) must be neither.
    pub fn sees(&self, xmin: u64, xmax: u64) -> bool {
        let mine = |id: u64| self.txn != INVALID_TXN_ID && id == self.txn;
        if !mine(xmin) && !self.snap.committed(xmin) {
            return false;
        }
        if xmax == INVALID_TXN_ID {
            return true;
        }
        !(mine(xmax) || self.snap.committed(xmax))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::storage::FROZEN_TXN_ID;

    #[test]
    fn ids_are_monotonic_from_two() {
        let tm = TransactionManager::new();
        let a = tm.begin();
        let b = tm.begin();
        assert_eq!(a, 2);
        assert_eq!(b, 3);
    }

    #[test]
    fn snapshot_excludes_active_and_future() {
        let tm = TransactionManager::new();
        let a = tm.begin();
        let snap = tm.snapshot();
        assert!(!snap.committed(a), "in-flight is not committed");
        tm.commit(a);
        assert!(!snap.committed(a), "old snapshots never change");
        assert!(tm.snapshot().committed(a), "new snapshots see the commit");
        let b = tm.begin();
        tm.commit(b);
        assert!(!snap.committed(b), "ids past the high-water mark invisible");
        assert!(snap.committed(FROZEN_TXN_ID), "frozen is always committed");
        assert!(!snap.committed(INVALID_TXN_ID));
    }

    #[test]
    fn aborted_ids_never_commit() {
        let tm = TransactionManager::new();
        let a = tm.begin();
        tm.abort(a);
        assert!(tm.is_aborted(a));
        assert!(!tm.snapshot().committed(a));
        tm.clear_aborted();
        assert!(!tm.is_aborted(a));
    }

    #[test]
    fn visibility_rules() {
        let tm = TransactionManager::new();
        let committed = tm.begin();
        tm.commit(committed);
        let me = tm.begin();
        let other = tm.begin();
        let vis = TxnVisibility {
            txn: me,
            snap: tm.snapshot(),
        };
        // Committed insert, live → visible.
        assert!(vis.sees(committed, 0));
        // My own uncommitted insert → visible (read your own writes).
        assert!(vis.sees(me, 0));
        // Someone else's in-flight insert → invisible (no dirty reads).
        assert!(!vis.sees(other, 0));
        // My own delete hides the row from me.
        assert!(!vis.sees(committed, me));
        // Someone else's in-flight delete does not hide it.
        assert!(vis.sees(committed, other));
        // Frozen tuples are visible to everyone, including autocommit.
        let auto = TxnVisibility {
            txn: INVALID_TXN_ID,
            snap: tm.snapshot(),
        };
        assert!(auto.sees(FROZEN_TXN_ID, 0));
        assert!(!auto.sees(other, 0));
    }

    #[test]
    fn has_active_tracks_open_txns() {
        let tm = TransactionManager::new();
        assert!(!tm.has_active());
        let a = tm.begin();
        assert!(tm.has_active());
        tm.commit(a);
        assert!(!tm.has_active());
    }
}
