//! Table and result-set schemas.

use crate::value::DataType;
use std::fmt;

/// One column: name and type.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Column {
    /// Column name (lowercased by the binder).
    pub name: String,
    /// Column type.
    pub ty: DataType,
}

impl Column {
    /// Construct a column.
    pub fn new(name: impl Into<String>, ty: DataType) -> Self {
        Column {
            name: name.into().to_lowercase(),
            ty,
        }
    }
}

/// An ordered list of columns.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Schema {
    columns: Vec<Column>,
}

impl Schema {
    /// Build from columns.
    pub fn new(columns: Vec<Column>) -> Self {
        Schema { columns }
    }

    /// Empty schema (e.g. for `SELECT count(*)` inputs during planning).
    pub fn empty() -> Self {
        Schema::default()
    }

    /// The columns.
    pub fn columns(&self) -> &[Column] {
        &self.columns
    }

    /// Number of columns.
    pub fn len(&self) -> usize {
        self.columns.len()
    }

    /// True when there are no columns.
    pub fn is_empty(&self) -> bool {
        self.columns.is_empty()
    }

    /// Index of a column by case-insensitive name.  With a qualifier
    /// (`table.column`), only the column part is matched here; qualified
    /// resolution happens in the binder, which tracks table aliases.
    pub fn index_of(&self, name: &str) -> Option<usize> {
        let lower = name.to_lowercase();
        self.columns.iter().position(|c| c.name == lower)
    }

    /// Column at an index.
    pub fn column(&self, i: usize) -> &Column {
        &self.columns[i]
    }

    /// Concatenate two schemas (join output).
    pub fn join(&self, other: &Schema) -> Schema {
        let mut columns = self.columns.clone();
        columns.extend(other.columns.iter().cloned());
        Schema { columns }
    }

    /// Project a subset of columns by index.
    pub fn project(&self, indices: &[usize]) -> Schema {
        Schema {
            columns: indices.iter().map(|&i| self.columns[i].clone()).collect(),
        }
    }
}

impl fmt::Display for Schema {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "(")?;
        for (i, c) in self.columns.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{} {}", c.name, c.ty)?;
        }
        write!(f, ")")
    }
}

/// A row of values.  Kept as a plain Vec: rows are short-lived and cloned
/// only through `Arc`ed payloads inside `Datum`.
pub type Row = Vec<crate::value::Datum>;

#[cfg(test)]
mod tests {
    use super::*;

    fn s() -> Schema {
        Schema::new(vec![
            Column::new("Id", DataType::Int),
            Column::new("name", DataType::Text),
        ])
    }

    #[test]
    fn names_are_lowercased() {
        assert_eq!(s().column(0).name, "id");
    }

    #[test]
    fn index_lookup_case_insensitive() {
        assert_eq!(s().index_of("NAME"), Some(1));
        assert_eq!(s().index_of("missing"), None);
    }

    #[test]
    fn join_concatenates() {
        let j = s().join(&s());
        assert_eq!(j.len(), 4);
        assert_eq!(j.column(2).name, "id");
    }

    #[test]
    fn project_selects() {
        let p = s().project(&[1]);
        assert_eq!(p.len(), 1);
        assert_eq!(p.column(0).name, "name");
    }

    #[test]
    fn display_format() {
        assert_eq!(s().to_string(), "(id int, name text)");
    }
}
