//! Runtime values (`Datum`) and data types.
//!
//! Extension types follow the PostgreSQL model: the kernel stores them as
//! opaque byte payloads tagged with an [`ExtTypeId`]; all behaviour
//! (display, ordering, literal input) comes from support functions
//! registered in the catalog's type registry.  This is exactly the
//! mechanism `mlql-mural` uses to add `UniText` without the kernel knowing
//! anything about languages or phonemes.

use std::cmp::Ordering;
use std::fmt;
use std::sync::Arc;

/// Identifier of an extension type registered in the catalog.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct ExtTypeId(pub u32);

/// Static type of a column or expression.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum DataType {
    Bool,
    Int,
    Float,
    Text,
    /// An extension type (e.g. UniText).
    Ext(ExtTypeId),
}

impl fmt::Display for DataType {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DataType::Bool => write!(f, "bool"),
            DataType::Int => write!(f, "int"),
            DataType::Float => write!(f, "float"),
            DataType::Text => write!(f, "text"),
            DataType::Ext(id) => write!(f, "ext#{}", id.0),
        }
    }
}

/// A runtime value.
///
/// `Text` and `Ext` payloads are reference-counted so that rows can be
/// cloned through joins and materializations without copying string bytes
/// (buffer-reuse guidance from the Rust Performance Book).
#[derive(Debug, Clone)]
pub enum Datum {
    Null,
    Bool(bool),
    Int(i64),
    Float(f64),
    Text(Arc<str>),
    /// Extension value: opaque bytes + type tag.
    Ext {
        ty: ExtTypeId,
        bytes: Arc<[u8]>,
    },
}

impl Datum {
    /// Text helper.
    pub fn text(s: impl AsRef<str>) -> Datum {
        Datum::Text(Arc::from(s.as_ref()))
    }

    /// Extension helper.
    pub fn ext(ty: ExtTypeId, bytes: impl Into<Arc<[u8]>>) -> Datum {
        Datum::Ext {
            ty,
            bytes: bytes.into(),
        }
    }

    /// The value's runtime type; `None` for SQL NULL (untyped).
    pub fn data_type(&self) -> Option<DataType> {
        match self {
            Datum::Null => None,
            Datum::Bool(_) => Some(DataType::Bool),
            Datum::Int(_) => Some(DataType::Int),
            Datum::Float(_) => Some(DataType::Float),
            Datum::Text(_) => Some(DataType::Text),
            Datum::Ext { ty, .. } => Some(DataType::Ext(*ty)),
        }
    }

    /// Is this SQL NULL?
    pub fn is_null(&self) -> bool {
        matches!(self, Datum::Null)
    }

    /// Truthiness for WHERE clauses: NULL counts as false.
    pub fn is_true(&self) -> bool {
        matches!(self, Datum::Bool(true))
    }

    /// Integer accessor.
    pub fn as_int(&self) -> Option<i64> {
        match self {
            Datum::Int(i) => Some(*i),
            _ => None,
        }
    }

    /// Float accessor (Int widens).
    pub fn as_float(&self) -> Option<f64> {
        match self {
            Datum::Float(f) => Some(*f),
            Datum::Int(i) => Some(*i as f64),
            _ => None,
        }
    }

    /// Text accessor.
    pub fn as_text(&self) -> Option<&str> {
        match self {
            Datum::Text(s) => Some(s),
            _ => None,
        }
    }

    /// Extension-bytes accessor.
    pub fn as_ext(&self) -> Option<(ExtTypeId, &[u8])> {
        match self {
            Datum::Ext { ty, bytes } => Some((*ty, bytes)),
            _ => None,
        }
    }

    /// SQL comparison for the built-in types.  Extension values compare by
    /// raw bytes here; type-aware comparison goes through the catalog's
    /// registered support function (the binder rewrites comparisons on
    /// extension types accordingly).  NULL compares less than everything
    /// (only used for sorting, not predicates).
    pub fn cmp_sql(&self, other: &Datum) -> Ordering {
        use Datum::*;
        match (self, other) {
            (Null, Null) => Ordering::Equal,
            (Null, _) => Ordering::Less,
            (_, Null) => Ordering::Greater,
            (Bool(a), Bool(b)) => a.cmp(b),
            (Int(a), Int(b)) => a.cmp(b),
            (Float(a), Float(b)) => a.partial_cmp(b).unwrap_or(Ordering::Equal),
            (Int(a), Float(b)) => (*a as f64).partial_cmp(b).unwrap_or(Ordering::Equal),
            (Float(a), Int(b)) => a.partial_cmp(&(*b as f64)).unwrap_or(Ordering::Equal),
            (Text(a), Text(b)) => a.as_ref().cmp(b.as_ref()),
            (Ext { bytes: a, .. }, Ext { bytes: b, .. }) => a.as_ref().cmp(b.as_ref()),
            // Heterogeneous comparisons order by type discriminant; the
            // binder rejects them before execution, this is sort-stability
            // insurance only.
            (a, b) => discr(a).cmp(&discr(b)),
        }
    }

    /// Equality with SQL numeric coercion.
    pub fn eq_sql(&self, other: &Datum) -> bool {
        if self.is_null() || other.is_null() {
            return false;
        }
        self.cmp_sql(other) == Ordering::Equal
    }
}

fn discr(d: &Datum) -> u8 {
    match d {
        Datum::Null => 0,
        Datum::Bool(_) => 1,
        Datum::Int(_) => 2,
        Datum::Float(_) => 3,
        Datum::Text(_) => 4,
        Datum::Ext { .. } => 5,
    }
}

impl fmt::Display for Datum {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Datum::Null => write!(f, "NULL"),
            Datum::Bool(b) => write!(f, "{b}"),
            Datum::Int(i) => write!(f, "{i}"),
            Datum::Float(x) => write!(f, "{x}"),
            Datum::Text(s) => write!(f, "{s}"),
            Datum::Ext { ty, bytes } => write!(f, "ext#{}({} bytes)", ty.0, bytes.len()),
        }
    }
}

impl PartialEq for Datum {
    fn eq(&self, other: &Self) -> bool {
        match (self, other) {
            (Datum::Null, Datum::Null) => true,
            _ => !self.is_null() && !other.is_null() && self.cmp_sql(other) == Ordering::Equal,
        }
    }
}

/// Hash consistent with `PartialEq` above (ints and equal floats hash via
/// their f64 bits only when integral — we avoid cross-type joins on
/// float/int in practice; the binder coerces join keys to one type).
impl std::hash::Hash for Datum {
    fn hash<H: std::hash::Hasher>(&self, state: &mut H) {
        match self {
            Datum::Null => 0u8.hash(state),
            Datum::Bool(b) => {
                1u8.hash(state);
                b.hash(state);
            }
            Datum::Int(i) => {
                2u8.hash(state);
                (*i as f64).to_bits().hash(state);
            }
            Datum::Float(f) => {
                2u8.hash(state);
                f.to_bits().hash(state);
            }
            Datum::Text(s) => {
                4u8.hash(state);
                s.hash(state);
            }
            Datum::Ext { bytes, .. } => {
                5u8.hash(state);
                bytes.hash(state);
            }
        }
    }
}

impl Eq for Datum {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn type_of_values() {
        assert_eq!(Datum::Int(1).data_type(), Some(DataType::Int));
        assert_eq!(Datum::Null.data_type(), None);
        assert_eq!(
            Datum::ext(ExtTypeId(7), vec![1u8, 2]).data_type(),
            Some(DataType::Ext(ExtTypeId(7)))
        );
    }

    #[test]
    fn null_semantics() {
        assert!(!Datum::Null.is_true());
        assert!(
            !Datum::Null.eq_sql(&Datum::Null),
            "NULL = NULL is not true in SQL"
        );
        assert_eq!(
            Datum::Null,
            Datum::Null,
            "but Rust Eq treats them equal for grouping"
        );
    }

    #[test]
    fn numeric_coercion() {
        assert!(Datum::Int(3).eq_sql(&Datum::Float(3.0)));
        assert_eq!(Datum::Int(2).cmp_sql(&Datum::Float(2.5)), Ordering::Less);
    }

    #[test]
    fn int_float_hash_consistency() {
        use std::collections::hash_map::DefaultHasher;
        use std::hash::{Hash, Hasher};
        let h = |d: &Datum| {
            let mut s = DefaultHasher::new();
            d.hash(&mut s);
            s.finish()
        };
        assert_eq!(h(&Datum::Int(42)), h(&Datum::Float(42.0)));
        assert_eq!(Datum::Int(42), Datum::Float(42.0));
    }

    #[test]
    fn text_ordering() {
        assert_eq!(Datum::text("a").cmp_sql(&Datum::text("b")), Ordering::Less);
        assert!(Datum::text("x").eq_sql(&Datum::text("x")));
    }

    #[test]
    fn display_rendering() {
        assert_eq!(Datum::Int(5).to_string(), "5");
        assert_eq!(Datum::text("hi").to_string(), "hi");
        assert_eq!(Datum::Null.to_string(), "NULL");
    }
}
