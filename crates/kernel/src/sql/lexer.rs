//! SQL tokenizer.

use crate::error::{Error, Result};

/// SQL tokens.
#[derive(Debug, Clone, PartialEq)]
pub enum Token {
    /// Identifier or keyword (kept verbatim; keyword checks are
    /// case-insensitive string comparisons in the parser).
    Ident(String),
    /// String literal (single quotes, `''` escape).
    Str(String),
    /// Integer literal.
    Int(i64),
    /// Float literal.
    Float(f64),
    /// Punctuation / operator symbol.
    Sym(&'static str),
}

impl Token {
    /// Is this the given keyword (case-insensitive)?
    pub fn is_kw(&self, kw: &str) -> bool {
        matches!(self, Token::Ident(s) if s.eq_ignore_ascii_case(kw))
    }

    /// Is this the given symbol?
    pub fn is_sym(&self, sym: &str) -> bool {
        matches!(self, Token::Sym(s) if *s == sym)
    }
}

/// Tokenize a SQL string.
pub fn tokenize(input: &str) -> Result<Vec<Token>> {
    let chars: Vec<char> = input.chars().collect();
    let mut out = Vec::new();
    let mut i = 0;
    while i < chars.len() {
        let c = chars[i];
        match c {
            _ if c.is_whitespace() => i += 1,
            '-' if chars.get(i + 1) == Some(&'-') => {
                // line comment
                while i < chars.len() && chars[i] != '\n' {
                    i += 1;
                }
            }
            '\'' => {
                let mut s = String::new();
                i += 1;
                loop {
                    match chars.get(i) {
                        Some('\'') if chars.get(i + 1) == Some(&'\'') => {
                            s.push('\'');
                            i += 2;
                        }
                        Some('\'') => {
                            i += 1;
                            break;
                        }
                        Some(&ch) => {
                            s.push(ch);
                            i += 1;
                        }
                        None => return Err(Error::Parse("unterminated string literal".into())),
                    }
                }
                out.push(Token::Str(s));
            }
            '0'..='9' => {
                let start = i;
                while i < chars.len() && (chars[i].is_ascii_digit() || chars[i] == '.') {
                    i += 1;
                }
                let text: String = chars[start..i].iter().collect();
                if text.contains('.') {
                    let f = text
                        .parse::<f64>()
                        .map_err(|_| Error::Parse(format!("bad number {text:?}")))?;
                    out.push(Token::Float(f));
                } else {
                    let n = text
                        .parse::<i64>()
                        .map_err(|_| Error::Parse(format!("bad number {text:?}")))?;
                    out.push(Token::Int(n));
                }
            }
            _ if c.is_alphabetic() || c == '_' => {
                let start = i;
                while i < chars.len() && (chars[i].is_alphanumeric() || chars[i] == '_') {
                    i += 1;
                }
                out.push(Token::Ident(chars[start..i].iter().collect()));
            }
            ':' if chars.get(i + 1) == Some(&'=') => {
                out.push(Token::Sym(":="));
                i += 2;
            }
            '|' if chars.get(i + 1) == Some(&'|') => {
                out.push(Token::Sym("||"));
                i += 2;
            }
            '<' if chars.get(i + 1) == Some(&'=') => {
                out.push(Token::Sym("<="));
                i += 2;
            }
            '>' if chars.get(i + 1) == Some(&'=') => {
                out.push(Token::Sym(">="));
                i += 2;
            }
            '<' if chars.get(i + 1) == Some(&'>') => {
                out.push(Token::Sym("<>"));
                i += 2;
            }
            '!' if chars.get(i + 1) == Some(&'=') => {
                out.push(Token::Sym("<>"));
                i += 2;
            }
            '(' | ')' | ',' | '*' | '=' | '<' | '>' | '+' | '-' | '/' | ';' | '.' | '[' | ']' => {
                let sym = match c {
                    '(' => "(",
                    ')' => ")",
                    ',' => ",",
                    '*' => "*",
                    '=' => "=",
                    '<' => "<",
                    '>' => ">",
                    '+' => "+",
                    '-' => "-",
                    '/' => "/",
                    ';' => ";",
                    '.' => ".",
                    '[' => "[",
                    ']' => "]",
                    _ => unreachable!(),
                };
                out.push(Token::Sym(sym));
                i += 1;
            }
            other => return Err(Error::Parse(format!("unexpected character {other:?}"))),
        }
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn keywords_and_symbols() {
        let toks = tokenize("SELECT a, b FROM t WHERE x <= 3;").unwrap();
        assert!(toks[0].is_kw("select"));
        assert!(toks[1].is_kw("a"));
        assert!(toks[2].is_sym(","));
        assert!(toks.iter().any(|t| t.is_sym("<=")));
        assert!(toks.last().unwrap().is_sym(";"));
    }

    #[test]
    fn string_escapes() {
        let toks = tokenize("'it''s'").unwrap();
        assert_eq!(toks, vec![Token::Str("it's".into())]);
    }

    #[test]
    fn unicode_strings_and_identifiers() {
        let toks = tokenize("SELECT 'நேரு' FROM café").unwrap();
        assert_eq!(toks[1], Token::Str("நேரு".into()));
        assert_eq!(toks[3], Token::Ident("café".into()));
    }

    #[test]
    fn numbers() {
        let toks = tokenize("42 3.25").unwrap();
        assert_eq!(toks, vec![Token::Int(42), Token::Float(3.25)]);
    }

    #[test]
    fn comments_are_skipped() {
        let toks = tokenize("SELECT 1 -- trailing\n, 2").unwrap();
        assert_eq!(toks.len(), 4);
    }

    #[test]
    fn errors() {
        assert!(tokenize("'unterminated").is_err());
        assert!(tokenize("§").is_err());
    }

    #[test]
    fn not_equals_both_spellings() {
        assert_eq!(tokenize("a <> b").unwrap()[1], Token::Sym("<>"));
        assert_eq!(tokenize("a != b").unwrap()[1], Token::Sym("<>"));
    }
}
