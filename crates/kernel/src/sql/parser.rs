//! Recursive-descent parser.

use crate::error::{Error, Result};
use crate::sql::ast::*;
use crate::sql::lexer::{tokenize, Token};

/// Keywords that may not be mistaken for extension infix operators.
const RESERVED: &[&str] = &[
    "select", "from", "where", "group", "order", "by", "limit", "and", "or", "not", "in", "is",
    "null", "as", "on", "join", "inner", "values", "insert", "into", "create", "table", "index",
    "drop", "using", "set", "show", "analyze", "explain", "delete", "update", "asc", "desc",
    "true", "false", "union", "distinct",
];

/// Parse one statement.
pub fn parse(sql: &str) -> Result<Statement> {
    let tokens = tokenize(sql)?;
    let mut p = Parser { tokens, pos: 0 };
    let stmt = p.statement()?;
    // Optional trailing semicolon.
    if p.peek_sym(";") {
        p.pos += 1;
    }
    if p.pos < p.tokens.len() {
        return Err(Error::Parse(format!(
            "trailing tokens at {:?}",
            p.tokens[p.pos]
        )));
    }
    Ok(stmt)
}

struct Parser {
    tokens: Vec<Token>,
    pos: usize,
}

impl Parser {
    fn peek(&self) -> Option<&Token> {
        self.tokens.get(self.pos)
    }

    fn peek_kw(&self, kw: &str) -> bool {
        self.peek().map(|t| t.is_kw(kw)).unwrap_or(false)
    }

    fn peek_sym(&self, sym: &str) -> bool {
        self.peek().map(|t| t.is_sym(sym)).unwrap_or(false)
    }

    fn eat_kw(&mut self, kw: &str) -> bool {
        if self.peek_kw(kw) {
            self.pos += 1;
            true
        } else {
            false
        }
    }

    fn eat_sym(&mut self, sym: &str) -> bool {
        if self.peek_sym(sym) {
            self.pos += 1;
            true
        } else {
            false
        }
    }

    fn expect_kw(&mut self, kw: &str) -> Result<()> {
        if self.eat_kw(kw) {
            Ok(())
        } else {
            Err(Error::Parse(format!(
                "expected {kw:?}, found {:?}",
                self.peek()
            )))
        }
    }

    fn expect_sym(&mut self, sym: &str) -> Result<()> {
        if self.eat_sym(sym) {
            Ok(())
        } else {
            Err(Error::Parse(format!(
                "expected {sym:?}, found {:?}",
                self.peek()
            )))
        }
    }

    fn ident(&mut self) -> Result<String> {
        match self.peek() {
            Some(Token::Ident(s)) => {
                let s = s.clone();
                self.pos += 1;
                Ok(s)
            }
            other => Err(Error::Parse(format!(
                "expected identifier, found {other:?}"
            ))),
        }
    }

    fn statement(&mut self) -> Result<Statement> {
        if self.eat_kw("create") {
            if self.eat_kw("table") {
                return self.create_table();
            }
            if self.eat_kw("index") {
                return self.create_index();
            }
            return Err(Error::Parse("expected TABLE or INDEX after CREATE".into()));
        }
        if self.eat_kw("drop") {
            if self.eat_kw("table") {
                return Ok(Statement::DropTable {
                    name: self.ident()?,
                });
            }
            if self.eat_kw("index") {
                return Ok(Statement::DropIndex {
                    name: self.ident()?,
                });
            }
            return Err(Error::Parse("expected TABLE or INDEX after DROP".into()));
        }
        if self.eat_kw("insert") {
            return self.insert();
        }
        if self.eat_kw("update") {
            let table = self.ident()?;
            self.expect_kw("set")?;
            let mut sets = Vec::new();
            loop {
                let col = self.ident()?;
                self.expect_sym("=")?;
                sets.push((col, self.expr()?));
                if !self.eat_sym(",") {
                    break;
                }
            }
            let filter = if self.eat_kw("where") {
                Some(self.expr()?)
            } else {
                None
            };
            return Ok(Statement::Update {
                table,
                sets,
                filter,
            });
        }
        if self.eat_kw("delete") {
            self.expect_kw("from")?;
            let table = self.ident()?;
            let filter = if self.eat_kw("where") {
                Some(self.expr()?)
            } else {
                None
            };
            return Ok(Statement::Delete { table, filter });
        }
        if self.peek_kw("select") {
            return Ok(Statement::Select(self.select()?));
        }
        if self.eat_kw("explain") {
            let analyze = self.eat_kw("analyze");
            return Ok(Statement::Explain {
                select: self.select()?,
                analyze,
            });
        }
        if self.eat_kw("set") {
            // SET a.b.c = literal  (dotted names allowed)
            let mut name = self.ident()?;
            while self.eat_sym(".") {
                name.push('.');
                name.push_str(&self.ident()?);
            }
            self.expect_sym("=")?;
            let value = self.expr()?;
            return Ok(Statement::Set { name, value });
        }
        if self.eat_kw("show") {
            let mut name = self.ident()?;
            while self.eat_sym(".") {
                name.push('.');
                name.push_str(&self.ident()?);
            }
            // Multi-word surface names (`SHOW FLIGHT RECORDER`) join with
            // `_` into the canonical form (`flight_recorder`).
            while matches!(self.peek(), Some(Token::Ident(_))) {
                name.push('_');
                name.push_str(&self.ident()?);
            }
            return Ok(Statement::Show { name });
        }
        if self.eat_kw("analyze") {
            // Bare `ANALYZE` (no table) targets every user table; a
            // trailing statement terminator is not a table name.
            let table = if matches!(self.peek(), Some(Token::Ident(_))) {
                Some(self.ident()?)
            } else {
                None
            };
            return Ok(Statement::Analyze { table });
        }
        if self.eat_kw("begin") {
            let _ = self.eat_kw("transaction") || self.eat_kw("work");
            return Ok(Statement::Begin);
        }
        if self.eat_kw("commit") {
            let _ = self.eat_kw("transaction") || self.eat_kw("work");
            return Ok(Statement::Commit);
        }
        if self.eat_kw("rollback") {
            let _ = self.eat_kw("transaction") || self.eat_kw("work");
            return Ok(Statement::Rollback);
        }
        Err(Error::Parse(format!(
            "unrecognized statement start: {:?}",
            self.peek()
        )))
    }

    fn create_table(&mut self) -> Result<Statement> {
        let name = self.ident()?;
        self.expect_sym("(")?;
        let mut columns = Vec::new();
        loop {
            let col = self.ident()?;
            let ty = self.ident()?;
            columns.push((col, ty));
            if !self.eat_sym(",") {
                break;
            }
        }
        self.expect_sym(")")?;
        Ok(Statement::CreateTable { name, columns })
    }

    fn create_index(&mut self) -> Result<Statement> {
        let name = self.ident()?;
        self.expect_kw("on")?;
        let table = self.ident()?;
        self.expect_sym("(")?;
        let column = self.ident()?;
        self.expect_sym(")")?;
        let using = if self.eat_kw("using") {
            self.ident()?
        } else {
            "btree".into()
        };
        Ok(Statement::CreateIndex {
            name,
            table,
            column,
            using,
        })
    }

    fn insert(&mut self) -> Result<Statement> {
        self.expect_kw("into")?;
        let table = self.ident()?;
        if self.peek_kw("select") {
            let select = self.select()?;
            return Ok(Statement::InsertSelect { table, select });
        }
        self.expect_kw("values")?;
        let mut rows = Vec::new();
        loop {
            self.expect_sym("(")?;
            let mut row = Vec::new();
            loop {
                row.push(self.expr()?);
                if !self.eat_sym(",") {
                    break;
                }
            }
            self.expect_sym(")")?;
            rows.push(row);
            if !self.eat_sym(",") {
                break;
            }
        }
        Ok(Statement::Insert { table, rows })
    }

    fn select(&mut self) -> Result<SelectStmt> {
        self.expect_kw("select")?;
        let distinct = self.eat_kw("distinct");
        let mut items = Vec::new();
        loop {
            if self.eat_sym("*") {
                items.push(SelectItem::Wildcard);
            } else {
                let expr = self.expr()?;
                let alias = if self.eat_kw("as") {
                    Some(self.ident()?)
                } else {
                    None
                };
                items.push(SelectItem::Expr { expr, alias });
            }
            if !self.eat_sym(",") {
                break;
            }
        }
        self.expect_kw("from")?;
        let mut from = Vec::new();
        let mut join_preds: Vec<AstExpr> = Vec::new();
        loop {
            from.push(self.table_ref()?);
            // JOIN chains: `a JOIN b ON pred` desugars to comma + WHERE.
            loop {
                let inner = self.eat_kw("inner");
                if self.eat_kw("join") {
                    from.push(self.table_ref()?);
                    self.expect_kw("on")?;
                    join_preds.push(self.expr()?);
                } else {
                    if inner {
                        return Err(Error::Parse("INNER must be followed by JOIN".into()));
                    }
                    break;
                }
            }
            if !self.eat_sym(",") {
                break;
            }
        }
        let mut where_clause = if self.eat_kw("where") {
            Some(self.expr()?)
        } else {
            None
        };
        for p in join_preds {
            where_clause = Some(match where_clause {
                Some(w) => AstExpr::Binary {
                    op: "and".into(),
                    left: Box::new(w),
                    right: Box::new(p),
                    modifiers: vec![],
                },
                None => p,
            });
        }
        let mut group_by = Vec::new();
        if self.eat_kw("group") {
            self.expect_kw("by")?;
            loop {
                group_by.push(self.expr()?);
                if !self.eat_sym(",") {
                    break;
                }
            }
        }
        let mut order_by = Vec::new();
        if self.eat_kw("order") {
            self.expect_kw("by")?;
            loop {
                let e = self.expr()?;
                let asc = if self.eat_kw("desc") {
                    false
                } else {
                    self.eat_kw("asc");
                    true
                };
                order_by.push((e, asc));
                if !self.eat_sym(",") {
                    break;
                }
            }
        }
        let limit = if self.eat_kw("limit") {
            match self.peek() {
                Some(Token::Int(n)) if *n >= 0 => {
                    let n = *n as u64;
                    self.pos += 1;
                    Some(n)
                }
                other => return Err(Error::Parse(format!("expected LIMIT count, got {other:?}"))),
            }
        } else {
            None
        };
        Ok(SelectStmt {
            distinct,
            items,
            from,
            where_clause,
            group_by,
            order_by,
            limit,
        })
    }

    fn table_ref(&mut self) -> Result<TableRef> {
        let table = self.ident()?;
        if RESERVED.contains(&table.to_lowercase().as_str()) {
            return Err(Error::Parse(format!(
                "unexpected keyword {table:?} in FROM"
            )));
        }
        let alias = if self.eat_kw("as") {
            self.ident()?
        } else if let Some(Token::Ident(s)) = self.peek() {
            if RESERVED.contains(&s.to_lowercase().as_str()) {
                table.clone()
            } else {
                let s = s.clone();
                self.pos += 1;
                s
            }
        } else {
            table.clone()
        };
        Ok(TableRef {
            table,
            alias: alias.to_lowercase(),
        })
    }

    // Precedence: OR < AND < NOT < comparison/ext-op < add/sub < mul/div < unary < primary
    fn expr(&mut self) -> Result<AstExpr> {
        self.or_expr()
    }

    fn or_expr(&mut self) -> Result<AstExpr> {
        let mut left = self.and_expr()?;
        while self.eat_kw("or") {
            let right = self.and_expr()?;
            left = AstExpr::Binary {
                op: "or".into(),
                left: Box::new(left),
                right: Box::new(right),
                modifiers: vec![],
            };
        }
        Ok(left)
    }

    fn and_expr(&mut self) -> Result<AstExpr> {
        let mut left = self.not_expr()?;
        while self.eat_kw("and") {
            let right = self.not_expr()?;
            left = AstExpr::Binary {
                op: "and".into(),
                left: Box::new(left),
                right: Box::new(right),
                modifiers: vec![],
            };
        }
        Ok(left)
    }

    fn not_expr(&mut self) -> Result<AstExpr> {
        if self.eat_kw("not") {
            Ok(AstExpr::Not(Box::new(self.not_expr()?)))
        } else {
            self.cmp_expr()
        }
    }

    fn cmp_expr(&mut self) -> Result<AstExpr> {
        let left = self.add_expr()?;
        // IS [NOT] NULL
        if self.eat_kw("is") {
            let negated = self.eat_kw("not");
            self.expect_kw("null")?;
            return Ok(AstExpr::IsNull {
                expr: Box::new(left),
                negated,
            });
        }
        // Symbolic comparison.
        for sym in ["<=", ">=", "<>", "=", "<", ">"] {
            if self.eat_sym(sym) {
                let right = self.add_expr()?;
                return Ok(AstExpr::Binary {
                    op: sym.into(),
                    left: Box::new(left),
                    right: Box::new(right),
                    modifiers: vec![],
                });
            }
        }
        // Extension infix operator: any non-reserved identifier.
        if let Some(Token::Ident(name)) = self.peek() {
            let lower = name.to_lowercase();
            if !RESERVED.contains(&lower.as_str()) {
                // Lookahead: an operand must follow, otherwise this
                // identifier belongs to an outer production (e.g. alias).
                if self.operand_follows() {
                    self.pos += 1;
                    let right = self.add_expr()?;
                    // Optional `IN (lang, ...)` / `IN lang, ...` modifier.
                    let mut modifiers = Vec::new();
                    if self.eat_kw("in") {
                        let parens = self.eat_sym("(");
                        loop {
                            modifiers.push(self.ident()?);
                            if !self.eat_sym(",") {
                                break;
                            }
                        }
                        if parens {
                            self.expect_sym(")")?;
                        }
                    }
                    return Ok(AstExpr::Binary {
                        op: lower,
                        left: Box::new(left),
                        right: Box::new(right),
                        modifiers,
                    });
                }
            }
        }
        Ok(left)
    }

    /// Does the token after the current one start an operand expression?
    fn operand_follows(&self) -> bool {
        match self.tokens.get(self.pos + 1) {
            Some(Token::Str(_)) | Some(Token::Int(_)) | Some(Token::Float(_)) => true,
            Some(Token::Sym(s)) => *s == "(",
            Some(Token::Ident(s)) => !RESERVED.contains(&s.to_lowercase().as_str()),
            None => false,
        }
    }

    fn add_expr(&mut self) -> Result<AstExpr> {
        let mut left = self.mul_expr()?;
        loop {
            let op = if self.eat_sym("+") {
                "+"
            } else if self.eat_sym("-") {
                "-"
            } else {
                break;
            };
            let right = self.mul_expr()?;
            left = AstExpr::Binary {
                op: op.into(),
                left: Box::new(left),
                right: Box::new(right),
                modifiers: vec![],
            };
        }
        Ok(left)
    }

    fn mul_expr(&mut self) -> Result<AstExpr> {
        let mut left = self.unary_expr()?;
        loop {
            let op = if self.eat_sym("*") {
                "*"
            } else if self.eat_sym("/") {
                "/"
            } else {
                break;
            };
            let right = self.unary_expr()?;
            left = AstExpr::Binary {
                op: op.into(),
                left: Box::new(left),
                right: Box::new(right),
                modifiers: vec![],
            };
        }
        Ok(left)
    }

    fn unary_expr(&mut self) -> Result<AstExpr> {
        if self.eat_sym("-") {
            let inner = self.unary_expr()?;
            return Ok(match inner {
                AstExpr::Int(n) => AstExpr::Int(-n),
                AstExpr::Float(f) => AstExpr::Float(-f),
                other => AstExpr::Binary {
                    op: "-".into(),
                    left: Box::new(AstExpr::Int(0)),
                    right: Box::new(other),
                    modifiers: vec![],
                },
            });
        }
        self.primary()
    }

    fn primary(&mut self) -> Result<AstExpr> {
        match self.peek().cloned() {
            Some(Token::Int(n)) => {
                self.pos += 1;
                Ok(AstExpr::Int(n))
            }
            Some(Token::Float(f)) => {
                self.pos += 1;
                Ok(AstExpr::Float(f))
            }
            Some(Token::Str(s)) => {
                self.pos += 1;
                Ok(AstExpr::Str(s))
            }
            Some(Token::Sym("(")) => {
                self.pos += 1;
                let e = self.expr()?;
                self.expect_sym(")")?;
                Ok(e)
            }
            Some(Token::Ident(name)) => {
                let lower = name.to_lowercase();
                self.pos += 1;
                if lower == "null" {
                    return Ok(AstExpr::Null);
                }
                if lower == "true" {
                    return Ok(AstExpr::Bool(true));
                }
                if lower == "false" {
                    return Ok(AstExpr::Bool(false));
                }
                // Function call?
                if self.peek_sym("(") {
                    self.pos += 1;
                    if self.eat_sym("*") {
                        self.expect_sym(")")?;
                        return Ok(AstExpr::Func {
                            name: lower,
                            args: vec![],
                            star: true,
                        });
                    }
                    let mut args = Vec::new();
                    if !self.peek_sym(")") {
                        loop {
                            args.push(self.expr()?);
                            if !self.eat_sym(",") {
                                break;
                            }
                        }
                    }
                    self.expect_sym(")")?;
                    return Ok(AstExpr::Func {
                        name: lower,
                        args,
                        star: false,
                    });
                }
                // Qualified column?
                if self.eat_sym(".") {
                    let col = self.ident()?;
                    return Ok(AstExpr::Column {
                        qualifier: Some(lower),
                        name: col.to_lowercase(),
                    });
                }
                Ok(AstExpr::Column {
                    qualifier: None,
                    name: lower,
                })
            }
            other => Err(Error::Parse(format!("unexpected token {other:?}"))),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn create_table_and_index() {
        let s = parse("CREATE TABLE book (id INT, author UNITEXT)").unwrap();
        match s {
            Statement::CreateTable { name, columns } => {
                assert_eq!(name, "book");
                assert_eq!(columns.len(), 2);
                assert_eq!(columns[1], ("author".to_string(), "UNITEXT".to_string()));
            }
            other => panic!("{other:?}"),
        }
        let s = parse("CREATE INDEX i ON book (author) USING mtree").unwrap();
        match s {
            Statement::CreateIndex { using, column, .. } => {
                assert_eq!(using, "mtree");
                assert_eq!(column, "author");
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn transaction_control_statements() {
        assert!(matches!(parse("BEGIN").unwrap(), Statement::Begin));
        assert!(matches!(
            parse("begin transaction;").unwrap(),
            Statement::Begin
        ));
        assert!(matches!(parse("BEGIN WORK").unwrap(), Statement::Begin));
        assert!(matches!(parse("COMMIT").unwrap(), Statement::Commit));
        assert!(matches!(parse("commit work").unwrap(), Statement::Commit));
        assert!(matches!(parse("ROLLBACK").unwrap(), Statement::Rollback));
        assert!(matches!(
            parse("rollback transaction").unwrap(),
            Statement::Rollback
        ));
        // Trailing garbage still rejected.
        assert!(parse("BEGIN stuff").is_err());
    }

    #[test]
    fn insert_multiple_rows() {
        let s = parse("INSERT INTO t VALUES (1, 'a'), (2, 'b')").unwrap();
        match s {
            Statement::Insert { rows, .. } => assert_eq!(rows.len(), 2),
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn select_with_lexequal_and_langs() {
        let s = parse(
            "SELECT author, title FROM book WHERE author LEXEQUAL unitext('Nehru','English') IN (English, Hindi, Tamil)",
        )
        .unwrap();
        let Statement::Select(sel) = s else { panic!() };
        assert_eq!(sel.items.len(), 2);
        let Some(AstExpr::Binary { op, modifiers, .. }) = sel.where_clause else {
            panic!()
        };
        assert_eq!(op, "lexequal");
        assert_eq!(modifiers, vec!["English", "Hindi", "Tamil"]);
    }

    #[test]
    fn in_list_without_parens() {
        let s = parse("SELECT * FROM book WHERE category SEMEQUAL 'History' IN English, French")
            .unwrap();
        let Statement::Select(sel) = s else { panic!() };
        let Some(AstExpr::Binary { op, modifiers, .. }) = sel.where_clause else {
            panic!()
        };
        assert_eq!(op, "semequal");
        assert_eq!(modifiers.len(), 2);
    }

    #[test]
    fn join_desugars_to_where() {
        let s = parse("SELECT count(*) FROM a JOIN b ON a.x = b.y WHERE a.z > 3").unwrap();
        let Statement::Select(sel) = s else { panic!() };
        assert_eq!(sel.from.len(), 2);
        // WHERE contains both the filter and the join predicate.
        let w = sel.where_clause.unwrap();
        let AstExpr::Binary { op, .. } = &w else {
            panic!()
        };
        assert_eq!(op, "and");
    }

    #[test]
    fn aliases_and_qualified_columns() {
        let s = parse("SELECT b.id FROM book b, author AS a WHERE b.aid = a.id").unwrap();
        let Statement::Select(sel) = s else { panic!() };
        assert_eq!(sel.from[0].alias, "b");
        assert_eq!(sel.from[1].alias, "a");
    }

    #[test]
    fn group_order_limit() {
        let s = parse(
            "SELECT lang, count(*) FROM t GROUP BY lang ORDER BY lang DESC, count(*) ASC LIMIT 5",
        )
        .unwrap();
        let Statement::Select(sel) = s else { panic!() };
        assert_eq!(sel.group_by.len(), 1);
        assert_eq!(sel.order_by.len(), 2);
        assert!(!sel.order_by[0].1);
        assert_eq!(sel.limit, Some(5));
    }

    #[test]
    fn set_show_analyze_explain() {
        assert!(matches!(
            parse("SET lexequal.threshold = 3").unwrap(),
            Statement::Set { name, .. } if name == "lexequal.threshold"
        ));
        assert!(matches!(
            parse("SHOW lexequal.threshold").unwrap(),
            Statement::Show { .. }
        ));
        assert!(matches!(
            parse("ANALYZE book").unwrap(),
            Statement::Analyze { table: Some(t) } if t == "book"
        ));
        assert!(matches!(
            parse("ANALYZE").unwrap(),
            Statement::Analyze { table: None }
        ));
        assert!(matches!(
            parse("ANALYZE;").unwrap(),
            Statement::Analyze { table: None }
        ));
        assert!(matches!(
            parse("EXPLAIN SELECT * FROM t").unwrap(),
            Statement::Explain { analyze: false, .. }
        ));
        assert!(matches!(
            parse("EXPLAIN ANALYZE SELECT * FROM t").unwrap(),
            Statement::Explain { analyze: true, .. }
        ));
    }

    #[test]
    fn show_joins_multi_word_names() {
        // Identifiers are kept verbatim by the lexer; `Session::show`
        // lowercases, so only the shape matters here.
        assert!(matches!(
            parse("SHOW FLIGHT RECORDER").unwrap(),
            Statement::Show { name } if name.eq_ignore_ascii_case("flight_recorder")
        ));
        assert!(matches!(
            parse("SHOW ACTIVITY").unwrap(),
            Statement::Show { name } if name.eq_ignore_ascii_case("activity")
        ));
        // Dotted and multi-word forms compose left to right.
        assert!(matches!(
            parse("SHOW a.b c").unwrap(),
            Statement::Show { name } if name == "a.b_c"
        ));
    }

    #[test]
    fn trailing_tokens_rejected() {
        assert!(parse("SELECT 1 FROM t garbage garbage").is_err());
        assert!(parse("SELECT * FROM t; SELECT 1").is_err());
    }

    #[test]
    fn arithmetic_precedence() {
        let s = parse("SELECT 1 + 2 * 3 FROM t").unwrap();
        let Statement::Select(sel) = s else { panic!() };
        let SelectItem::Expr { expr, .. } = &sel.items[0] else {
            panic!()
        };
        // Must parse as 1 + (2 * 3).
        let AstExpr::Binary { op, right, .. } = expr else {
            panic!()
        };
        assert_eq!(op, "+");
        assert!(matches!(right.as_ref(), AstExpr::Binary { op, .. } if op == "*"));
    }

    #[test]
    fn negative_numbers() {
        let s = parse("SELECT -5, -2.5 FROM t").unwrap();
        let Statement::Select(sel) = s else { panic!() };
        assert!(matches!(
            &sel.items[0],
            SelectItem::Expr {
                expr: AstExpr::Int(-5),
                ..
            }
        ));
    }

    #[test]
    fn delete_with_filter() {
        let s = parse("DELETE FROM t WHERE id = 3").unwrap();
        assert!(matches!(
            s,
            Statement::Delete {
                filter: Some(_),
                ..
            }
        ));
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    proptest! {
        /// The parser is total: arbitrary input may fail but never panics.
        #[test]
        fn never_panics_on_arbitrary_input(input in ".{0,200}") {
            let _ = parse(&input);
        }

        /// Near-SQL inputs (keyword soup) also never panic and, when they
        /// parse, re-parse identically.
        #[test]
        fn keyword_soup_is_safe(words in proptest::collection::vec(
            prop_oneof![
                Just("select"), Just("from"), Just("where"), Just("insert"),
                Just("values"), Just("("), Just(")"), Just(","), Just("*"),
                Just("t"), Just("x"), Just("1"), Just("'s'"), Just("="),
                Just("and"), Just("lexequal"), Just("in"), Just("group"),
                Just("by"), Just("order"), Just("limit"), Just("update"),
                Just("set"), Just("distinct"),
            ], 0..25)) {
            let input = words.join(" ");
            let _ = parse(&input);
        }
    }
}
