//! SQL front-end: lexer, parser, AST, binder.
//!
//! The dialect covers what the paper's experiments need:
//!
//! ```sql
//! CREATE TABLE book (id INT, author UNITEXT, title UNITEXT, price FLOAT);
//! CREATE INDEX book_author_mt ON book (author) USING mtree;
//! INSERT INTO book VALUES (1, unitext('Nehru', 'English'), ...);
//! SET lexequal.threshold = 2;
//! SELECT author, title FROM book
//!   WHERE author LEXEQUAL unitext('Nehru', 'English') IN (English, Hindi, Tamil);
//! SELECT count(*) FROM book b, author a WHERE b.authorid = a.authorid;
//! ANALYZE book;
//! EXPLAIN SELECT ...;
//! ```
//!
//! Any identifier that names a registered extension operator can be used in
//! infix position — that is how `LEXEQUAL` and `SEMEQUAL` become first-class
//! SQL operators without the kernel knowing them.

mod ast;
mod binder;
mod lexer;
mod parser;

pub use ast::*;
pub use binder::{bind, bind_const_expr, bind_single_table};
pub use lexer::{tokenize, Token};
pub use parser::parse;
