//! Name resolution and typing: AST → logical plan.

use crate::catalog::Catalog;
use crate::error::{Error, Result};
use crate::expr::{ArithOp, CmpOp, Expr};
use crate::plan::{AggExpr, AggFunc, LogicalPlan};
use crate::schema::{Column, Schema};
use crate::sql::ast::*;
use crate::value::{DataType, Datum};

/// Scope: visible columns with their alias qualifiers.
struct Scope {
    /// (alias, column name, type), in schema order.
    cols: Vec<(String, String, DataType)>,
}

impl Scope {
    fn resolve(&self, qualifier: Option<&str>, name: &str) -> Result<(usize, DataType)> {
        let lower = name.to_lowercase();
        let matches: Vec<(usize, DataType)> = self
            .cols
            .iter()
            .enumerate()
            .filter(|(_, (alias, col, _))| {
                col == &lower
                    && qualifier
                        .map(|q| q.eq_ignore_ascii_case(alias))
                        .unwrap_or(true)
            })
            .map(|(i, (_, _, ty))| (i, *ty))
            .collect();
        match matches.len() {
            0 => Err(Error::Binder(format!(
                "unknown column {}{lower}",
                qualifier.map(|q| format!("{q}.")).unwrap_or_default()
            ))),
            1 => Ok(matches[0]),
            _ => Err(Error::Binder(format!("ambiguous column {lower:?}"))),
        }
    }
}

/// Bind a SELECT statement to a logical plan.
pub fn bind(stmt: &SelectStmt, catalog: &Catalog) -> Result<LogicalPlan> {
    if stmt.from.is_empty() {
        return Err(Error::Binder("FROM clause is required".into()));
    }
    // Build the FROM scope and the left-deep join tree (bind order).
    let mut scope = Scope { cols: Vec::new() };
    let mut plan: Option<LogicalPlan> = None;
    let mut seen_aliases: Vec<String> = Vec::new();
    for tr in &stmt.from {
        if seen_aliases.contains(&tr.alias) {
            return Err(Error::Binder(format!(
                "duplicate table alias {:?}",
                tr.alias
            )));
        }
        seen_aliases.push(tr.alias.clone());
        let meta = catalog.table(&tr.table)?;
        for c in meta.schema.columns() {
            scope.cols.push((tr.alias.clone(), c.name.clone(), c.ty));
        }
        let scan = LogicalPlan::Scan {
            table: meta.name.clone(),
            schema: meta.schema.clone(),
        };
        plan = Some(match plan {
            None => scan,
            Some(prev) => LogicalPlan::Join {
                left: Box::new(prev),
                right: Box::new(scan),
                predicate: None,
            },
        });
    }
    let mut plan = plan.expect("non-empty FROM");

    // WHERE.
    if let Some(w) = &stmt.where_clause {
        let predicate = bind_expr(w, &scope, catalog)?;
        expect_boolean(&predicate, "WHERE")?;
        plan = LogicalPlan::Filter {
            input: Box::new(plan),
            predicate,
        };
    }

    // Select list: aggregates vs. plain expressions.
    let has_agg = stmt.items.iter().any(|i| match i {
        SelectItem::Expr { expr, .. } => contains_aggregate(expr),
        SelectItem::Wildcard => false,
    });

    if has_agg || !stmt.group_by.is_empty() {
        let group_by: Vec<Expr> = stmt
            .group_by
            .iter()
            .map(|g| bind_expr(g, &scope, catalog))
            .collect::<Result<_>>()?;
        let mut aggs = Vec::new();
        let mut out_cols = Vec::new();
        // Group keys come first in the output row.
        for (i, g) in stmt.group_by.iter().enumerate() {
            let name = match g {
                AstExpr::Column { name, .. } => name.clone(),
                _ => format!("group{i}"),
            };
            let ty = group_by[i].data_type().unwrap_or(DataType::Text);
            out_cols.push(Column::new(name, ty));
        }
        for item in &stmt.items {
            match item {
                SelectItem::Wildcard => {
                    return Err(Error::Binder("* not allowed with aggregates".into()))
                }
                SelectItem::Expr { expr, alias } => match expr {
                    AstExpr::Func { name, args, star } if is_aggregate(name) => {
                        let func = agg_func(name, *star)?;
                        let input = if *star {
                            None
                        } else {
                            if args.len() != 1 {
                                return Err(Error::Binder(format!(
                                    "{name} takes exactly one argument"
                                )));
                            }
                            Some(bind_expr(&args[0], &scope, catalog)?)
                        };
                        let ty = match func {
                            AggFunc::CountStar | AggFunc::Count => DataType::Int,
                            AggFunc::Avg => DataType::Float,
                            _ => input
                                .as_ref()
                                .and_then(Expr::data_type)
                                .unwrap_or(DataType::Float),
                        };
                        out_cols.push(Column::new(
                            alias.clone().unwrap_or_else(|| func.name().to_string()),
                            ty,
                        ));
                        aggs.push(AggExpr { func, input });
                    }
                    // Bare group-key expressions in the select list must
                    // match a GROUP BY item.
                    other => {
                        let bound = bind_expr(other, &scope, catalog)?;
                        let pos = group_by
                            .iter()
                            .position(|g| format!("{g}") == format!("{bound}"))
                            .ok_or_else(|| {
                                Error::Binder(format!(
                                    "{other:?} must appear in GROUP BY or an aggregate"
                                ))
                            })?;
                        let _ = pos; // key already projected by Aggregate
                    }
                },
            }
        }
        let schema = Schema::new(out_cols);
        plan = LogicalPlan::Aggregate {
            input: Box::new(plan),
            group_by,
            aggs,
            schema: schema.clone(),
        };
        // ORDER BY over an aggregate binds against the aggregate's output
        // columns (group keys and aggregate aliases).
        if !stmt.order_by.is_empty() {
            let agg_scope = Scope {
                cols: schema
                    .columns()
                    .iter()
                    .map(|c| (String::new(), c.name.clone(), c.ty))
                    .collect(),
            };
            let keys: Vec<(Expr, bool)> = stmt
                .order_by
                .iter()
                .map(|(e, asc)| {
                    let bound = match e {
                        // `ORDER BY count(*)` refers to the output column.
                        AstExpr::Func {
                            name, star: true, ..
                        } if name == "count" => {
                            let idx = schema.index_of("count(*)").ok_or_else(|| {
                                Error::Binder("count(*) not in select list".into())
                            })?;
                            Expr::ColRef {
                                index: idx,
                                ty: DataType::Int,
                                name: "count(*)".into(),
                            }
                        }
                        other => bind_expr(other, &agg_scope, catalog)?,
                    };
                    Ok((bound, *asc))
                })
                .collect::<Result<_>>()?;
            plan = LogicalPlan::Sort {
                input: Box::new(plan),
                keys,
            };
        }
    } else {
        // Plain projection.
        let mut exprs = Vec::new();
        let mut cols = Vec::new();
        for item in &stmt.items {
            match item {
                SelectItem::Wildcard => {
                    for (i, (_, name, ty)) in scope.cols.iter().enumerate() {
                        exprs.push(Expr::ColRef {
                            index: i,
                            ty: *ty,
                            name: name.clone(),
                        });
                        cols.push(Column::new(name.clone(), *ty));
                    }
                }
                SelectItem::Expr { expr, alias } => {
                    let bound = bind_expr(expr, &scope, catalog)?;
                    let name = alias.clone().unwrap_or_else(|| default_name(expr));
                    let ty = bound.data_type().unwrap_or(DataType::Text);
                    cols.push(Column::new(name, ty));
                    exprs.push(bound);
                }
            }
        }
        // ORDER BY binds against the *input* scope, so sort before project.
        if !stmt.order_by.is_empty() {
            let keys: Vec<(Expr, bool)> = stmt
                .order_by
                .iter()
                .map(|(e, asc)| Ok((bind_expr(e, &scope, catalog)?, *asc)))
                .collect::<Result<_>>()?;
            plan = LogicalPlan::Sort {
                input: Box::new(plan),
                keys,
            };
        }
        let out_schema = Schema::new(cols);
        plan = LogicalPlan::Project {
            input: Box::new(plan),
            exprs,
            schema: out_schema.clone(),
        };
        // SELECT DISTINCT = grouping by every output column.
        if stmt.distinct {
            let group_by: Vec<Expr> = out_schema
                .columns()
                .iter()
                .enumerate()
                .map(|(i, c)| Expr::ColRef {
                    index: i,
                    ty: c.ty,
                    name: c.name.clone(),
                })
                .collect();
            plan = LogicalPlan::Aggregate {
                input: Box::new(plan),
                group_by,
                aggs: vec![],
                schema: out_schema,
            };
        }
    }

    if let Some(n) = stmt.limit {
        plan = LogicalPlan::Limit {
            input: Box::new(plan),
            n,
        };
    }
    Ok(plan)
}

/// Bind one expression against a scope.
fn bind_expr(e: &AstExpr, scope: &Scope, catalog: &Catalog) -> Result<Expr> {
    match e {
        AstExpr::Column { qualifier, name } => {
            let (index, ty) = scope.resolve(qualifier.as_deref(), name)?;
            Ok(Expr::ColRef {
                index,
                ty,
                name: name.clone(),
            })
        }
        AstExpr::Str(s) => Ok(Expr::text(s)),
        AstExpr::Int(n) => Ok(Expr::int(*n)),
        AstExpr::Float(f) => Ok(Expr::Literal(Datum::Float(*f))),
        AstExpr::Bool(b) => Ok(Expr::Literal(Datum::Bool(*b))),
        AstExpr::Null => Ok(Expr::Literal(Datum::Null)),
        AstExpr::Not(inner) => Ok(Expr::Not(Box::new(bind_expr(inner, scope, catalog)?))),
        AstExpr::IsNull { expr, negated } => {
            let inner = Expr::IsNull(Box::new(bind_expr(expr, scope, catalog)?));
            Ok(if *negated {
                Expr::Not(Box::new(inner))
            } else {
                inner
            })
        }
        AstExpr::Binary {
            op,
            left,
            right,
            modifiers,
        } => {
            let l = bind_expr(left, scope, catalog)?;
            let r = bind_expr(right, scope, catalog)?;
            match op.as_str() {
                "and" => Ok(Expr::And(Box::new(l), Box::new(r))),
                "or" => Ok(Expr::Or(Box::new(l), Box::new(r))),
                "=" => cmp(CmpOp::Eq, l, r),
                "<>" => cmp(CmpOp::Ne, l, r),
                "<" => cmp(CmpOp::Lt, l, r),
                "<=" => cmp(CmpOp::Le, l, r),
                ">" => cmp(CmpOp::Gt, l, r),
                ">=" => cmp(CmpOp::Ge, l, r),
                "+" => arith(ArithOp::Add, l, r),
                "-" => arith(ArithOp::Sub, l, r),
                "*" => arith(ArithOp::Mul, l, r),
                "/" => arith(ArithOp::Div, l, r),
                name => {
                    let op_def = catalog
                        .operator(name)
                        .ok_or_else(|| Error::Binder(format!("unknown operator {name:?}")))?;
                    if !modifiers.is_empty() && op_def.modifier_filter.is_none() {
                        return Err(Error::Binder(format!(
                            "operator {name:?} takes no IN modifier"
                        )));
                    }
                    // Type check: operands must match the registered type
                    // (Text literals are accepted for convenience when the
                    // operator's eval can coerce them).
                    for side in [&l, &r] {
                        if let Some(ty) = side.data_type() {
                            if ty != op_def.operand_type && ty != DataType::Text {
                                return Err(Error::Binder(format!(
                                    "operator {name:?} expects {}, got {}",
                                    op_def.operand_type, ty
                                )));
                            }
                        }
                    }
                    Ok(Expr::ExtOp {
                        name: name.to_string(),
                        left: Box::new(l),
                        right: Box::new(r),
                        modifiers: modifiers.clone(),
                    })
                }
            }
        }
        AstExpr::Func { name, args, star } => {
            if *star || is_aggregate(name) {
                return Err(Error::Binder(format!(
                    "aggregate {name} not allowed in this context"
                )));
            }
            let f = catalog
                .function(name)
                .ok_or_else(|| Error::Binder(format!("unknown function {name:?}")))?;
            if args.len() != f.arity {
                return Err(Error::Binder(format!(
                    "{name} expects {} arguments, got {}",
                    f.arity,
                    args.len()
                )));
            }
            let bound: Vec<Expr> = args
                .iter()
                .map(|a| bind_expr(a, scope, catalog))
                .collect::<Result<_>>()?;
            Ok(Expr::Func {
                name: name.clone(),
                args: bound,
            })
        }
    }
}

/// Bind an expression with no table scope (INSERT values, SET).
pub fn bind_const_expr(e: &AstExpr, catalog: &Catalog) -> Result<Expr> {
    bind_expr(e, &Scope { cols: Vec::new() }, catalog)
}

/// Bind an expression against a single table's columns (UPDATE/DELETE).
pub fn bind_single_table(
    e: &AstExpr,
    table: &str,
    schema: &crate::schema::Schema,
    catalog: &Catalog,
) -> Result<Expr> {
    let scope = Scope {
        cols: schema
            .columns()
            .iter()
            .map(|c| (table.to_lowercase(), c.name.clone(), c.ty))
            .collect(),
    };
    bind_expr(e, &scope, catalog)
}

fn cmp(op: CmpOp, l: Expr, r: Expr) -> Result<Expr> {
    check_comparable(&l, &r)?;
    Ok(Expr::Cmp {
        op,
        left: Box::new(l),
        right: Box::new(r),
    })
}

fn arith(op: ArithOp, l: Expr, r: Expr) -> Result<Expr> {
    for side in [&l, &r] {
        if let Some(ty) = side.data_type() {
            if !matches!(ty, DataType::Int | DataType::Float) {
                return Err(Error::Binder(format!("arithmetic on non-numeric {ty}")));
            }
        }
    }
    Ok(Expr::Arith {
        op,
        left: Box::new(l),
        right: Box::new(r),
    })
}

fn check_comparable(l: &Expr, r: &Expr) -> Result<()> {
    match (l.data_type(), r.data_type()) {
        (Some(a), Some(b)) => {
            let numeric = |t: DataType| matches!(t, DataType::Int | DataType::Float);
            // Ext-vs-Text is allowed (UniText compares its text component
            // with text literals through the support function at eval).
            let ext_text = matches!(
                (a, b),
                (DataType::Ext(_), DataType::Text) | (DataType::Text, DataType::Ext(_))
            );
            if a == b || (numeric(a) && numeric(b)) || ext_text {
                Ok(())
            } else {
                Err(Error::Binder(format!("cannot compare {a} with {b}")))
            }
        }
        _ => Ok(()), // NULLs / unresolved function results compare at runtime
    }
}

fn expect_boolean(e: &Expr, clause: &str) -> Result<()> {
    match e.data_type() {
        Some(DataType::Bool) | None => Ok(()),
        Some(other) => Err(Error::Binder(format!(
            "{clause} must be boolean, got {other}"
        ))),
    }
}

fn is_aggregate(name: &str) -> bool {
    matches!(name, "count" | "sum" | "min" | "max" | "avg")
}

fn agg_func(name: &str, star: bool) -> Result<AggFunc> {
    Ok(match (name, star) {
        ("count", true) => AggFunc::CountStar,
        ("count", false) => AggFunc::Count,
        ("sum", _) => AggFunc::Sum,
        ("min", _) => AggFunc::Min,
        ("max", _) => AggFunc::Max,
        ("avg", _) => AggFunc::Avg,
        _ => return Err(Error::Binder(format!("unknown aggregate {name:?}"))),
    })
}

fn contains_aggregate(e: &AstExpr) -> bool {
    match e {
        AstExpr::Func { name, .. } => is_aggregate(name),
        AstExpr::Binary { left, right, .. } => {
            contains_aggregate(left) || contains_aggregate(right)
        }
        AstExpr::Not(inner) => contains_aggregate(inner),
        AstExpr::IsNull { expr, .. } => contains_aggregate(expr),
        _ => false,
    }
}

fn default_name(e: &AstExpr) -> String {
    match e {
        AstExpr::Column { name, .. } => name.clone(),
        AstExpr::Func { name, .. } => name.clone(),
        _ => "?column?".to_string(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sql::parser::parse;
    use crate::storage::{BufferPool, HeapFile, MemBackend};

    fn setup() -> (Catalog, BufferPool) {
        let pool = BufferPool::new(Box::new(MemBackend::new()), 16);
        let mut cat = Catalog::new();
        let heap = HeapFile::create(&pool).unwrap();
        cat.create_table(
            "book",
            Schema::new(vec![
                Column::new("id", DataType::Int),
                Column::new("title", DataType::Text),
                Column::new("price", DataType::Float),
            ]),
            heap,
        )
        .unwrap();
        let heap2 = HeapFile::create(&pool).unwrap();
        cat.create_table(
            "author",
            Schema::new(vec![
                Column::new("id", DataType::Int),
                Column::new("name", DataType::Text),
            ]),
            heap2,
        )
        .unwrap();
        (cat, pool)
    }

    fn bind_sql(sql: &str, cat: &Catalog) -> Result<LogicalPlan> {
        let Statement::Select(sel) = parse(sql)? else {
            panic!("not a select")
        };
        bind(&sel, cat)
    }

    #[test]
    fn simple_select_star() {
        let (cat, _) = setup();
        let plan = bind_sql("SELECT * FROM book", &cat).unwrap();
        assert_eq!(plan.schema().len(), 3);
    }

    #[test]
    fn qualified_columns_resolve_with_offsets() {
        let (cat, _) = setup();
        let plan = bind_sql(
            "SELECT b.title, a.name FROM book b, author a WHERE b.id = a.id",
            &cat,
        )
        .unwrap();
        assert_eq!(plan.schema().len(), 2);
        assert_eq!(plan.schema().column(0).name, "title");
        assert_eq!(plan.schema().column(1).name, "name");
    }

    #[test]
    fn ambiguous_column_rejected() {
        let (cat, _) = setup();
        let err = bind_sql("SELECT id FROM book, author", &cat).unwrap_err();
        assert!(err.to_string().contains("ambiguous"));
    }

    #[test]
    fn unknown_column_and_table() {
        let (cat, _) = setup();
        assert!(bind_sql("SELECT nope FROM book", &cat).is_err());
        assert!(bind_sql("SELECT * FROM nope", &cat).is_err());
    }

    #[test]
    fn count_star_aggregate() {
        let (cat, _) = setup();
        let plan = bind_sql("SELECT count(*) FROM book", &cat).unwrap();
        let LogicalPlan::Aggregate { aggs, schema, .. } = &plan else {
            panic!()
        };
        assert_eq!(aggs.len(), 1);
        assert!(matches!(aggs[0].func, AggFunc::CountStar));
        assert_eq!(schema.column(0).ty, DataType::Int);
    }

    #[test]
    fn group_by_with_key_in_select() {
        let (cat, _) = setup();
        let plan = bind_sql("SELECT title, count(*) FROM book GROUP BY title", &cat).unwrap();
        let LogicalPlan::Aggregate {
            group_by, schema, ..
        } = &plan
        else {
            panic!()
        };
        assert_eq!(group_by.len(), 1);
        assert_eq!(schema.len(), 2);
    }

    #[test]
    fn non_grouped_column_rejected() {
        let (cat, _) = setup();
        assert!(bind_sql("SELECT title, count(*) FROM book", &cat).is_err());
    }

    #[test]
    fn type_errors() {
        let (cat, _) = setup();
        assert!(bind_sql("SELECT * FROM book WHERE title > 3", &cat).is_err());
        assert!(bind_sql("SELECT title + 1 FROM book", &cat).is_err());
        assert!(
            bind_sql("SELECT * FROM book WHERE id + 1", &cat).is_err(),
            "WHERE not boolean"
        );
    }

    #[test]
    fn unknown_operator_rejected() {
        let (cat, _) = setup();
        let err = bind_sql("SELECT * FROM book WHERE title FOO 'x'", &cat).unwrap_err();
        assert!(err.to_string().contains("unknown operator"));
    }

    #[test]
    fn duplicate_alias_rejected() {
        let (cat, _) = setup();
        assert!(bind_sql("SELECT * FROM book b, author b", &cat).is_err());
    }

    #[test]
    fn order_by_binds_before_projection() {
        let (cat, _) = setup();
        let plan = bind_sql("SELECT title FROM book ORDER BY price DESC", &cat).unwrap();
        // Sort sits below the projection.
        let LogicalPlan::Project { input, .. } = &plan else {
            panic!()
        };
        assert!(matches!(input.as_ref(), LogicalPlan::Sort { .. }));
    }
}
