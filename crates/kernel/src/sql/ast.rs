//! Abstract syntax tree for the SQL dialect.

/// A parsed statement.
#[derive(Debug, Clone)]
pub enum Statement {
    /// `CREATE TABLE name (col type, ...)`
    CreateTable {
        name: String,
        columns: Vec<(String, String)>,
    },
    /// `CREATE INDEX name ON table (column) USING am`
    CreateIndex {
        name: String,
        table: String,
        column: String,
        using: String,
    },
    /// `DROP TABLE name`
    DropTable { name: String },
    /// `DROP INDEX name`
    DropIndex { name: String },
    /// `INSERT INTO table VALUES (...), (...)`
    Insert {
        table: String,
        rows: Vec<Vec<AstExpr>>,
    },
    /// `INSERT INTO table SELECT ...`
    InsertSelect { table: String, select: SelectStmt },
    /// `UPDATE table SET col = expr [, ...] [WHERE expr]`
    Update {
        table: String,
        sets: Vec<(String, AstExpr)>,
        filter: Option<AstExpr>,
    },
    /// `DELETE FROM table [WHERE expr]`
    Delete {
        table: String,
        filter: Option<AstExpr>,
    },
    /// `SELECT ...`
    Select(SelectStmt),
    /// `EXPLAIN [ANALYZE] SELECT ...`
    Explain { select: SelectStmt, analyze: bool },
    /// `SET name = literal`
    Set { name: String, value: AstExpr },
    /// `SHOW name`
    Show { name: String },
    /// `ANALYZE [table]` — no table refreshes statistics on every user
    /// table (the stale-statistics advisory's one-statement remediation).
    Analyze { table: Option<String> },
    /// `BEGIN [TRANSACTION | WORK]` — open an explicit transaction.
    Begin,
    /// `COMMIT [TRANSACTION | WORK]` — commit the open transaction.
    Commit,
    /// `ROLLBACK [TRANSACTION | WORK]` — abort the open transaction.
    Rollback,
}

/// A SELECT statement.
#[derive(Debug, Clone)]
pub struct SelectStmt {
    /// `SELECT DISTINCT`.
    pub distinct: bool,
    /// Select-list items.
    pub items: Vec<SelectItem>,
    /// FROM items (comma list and/or JOIN chains, flattened with their ON
    /// predicates moved into `where_clause` by the parser).
    pub from: Vec<TableRef>,
    /// WHERE predicate.
    pub where_clause: Option<AstExpr>,
    /// GROUP BY expressions.
    pub group_by: Vec<AstExpr>,
    /// ORDER BY (expr, ascending).
    pub order_by: Vec<(AstExpr, bool)>,
    /// LIMIT.
    pub limit: Option<u64>,
}

/// One select-list item.
#[derive(Debug, Clone)]
pub enum SelectItem {
    /// `*`
    Wildcard,
    /// Expression with optional alias.
    Expr {
        expr: AstExpr,
        alias: Option<String>,
    },
}

/// A FROM item.
#[derive(Debug, Clone)]
pub struct TableRef {
    /// Table name.
    pub table: String,
    /// Alias (defaults to the table name).
    pub alias: String,
}

/// Unresolved expression.
#[derive(Debug, Clone)]
pub enum AstExpr {
    /// Column reference `name` or `qualifier.name`.
    Column {
        qualifier: Option<String>,
        name: String,
    },
    /// String literal.
    Str(String),
    /// Integer literal.
    Int(i64),
    /// Float literal.
    Float(f64),
    /// Boolean literal.
    Bool(bool),
    /// NULL literal.
    Null,
    /// Binary operation (symbols and extension operator names).
    Binary {
        op: String,
        left: Box<AstExpr>,
        right: Box<AstExpr>,
        modifiers: Vec<String>,
    },
    /// Unary NOT.
    Not(Box<AstExpr>),
    /// `expr IS [NOT] NULL`.
    IsNull { expr: Box<AstExpr>, negated: bool },
    /// Function call, including aggregates; `count(*)` becomes
    /// `Func { name: "count", star: true, .. }`.
    Func {
        name: String,
        args: Vec<AstExpr>,
        star: bool,
    },
}
