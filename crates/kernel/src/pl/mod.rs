//! Mini-PL: an interpreted procedural language with an SPI.
//!
//! This is the substrate of the paper's **outside-the-server** baselines
//! ("implemented outside-the-server using standard database features —
//! PL/SQL procedures, SQL scripts and recursive SQL constructs", §5.3).
//! Its performance character is the point: every statement is interpreted
//! over boxed values, every function call crosses a *function-manager*
//! boundary that marshals arguments to wire format and back (emulating
//! PostgreSQL's fmgr + UDF process separation), and every query goes
//! through the full SPI pipeline (parse → bind → plan → execute) per call.
//! Nothing here sleeps or fudges — the slowness the benchmarks measure is
//! the genuine cost of this architecture, which is exactly the paper's
//! claim about UDF-based implementations ("overheads due to the UDF
//! invocations and execution in a separate process space", §5.3).

pub mod parser;

pub use parser::parse_function;

use crate::db::Database;
use crate::error::{Error, Result};
use crate::expr::{ArithOp, CmpOp};
use crate::schema::Row;
use crate::storage::{decode_row, encode_row};
use crate::value::Datum;
use std::collections::HashMap;

/// Runtime statistics of one PL execution.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PlStats {
    /// Function-manager crossings (argument marshalling round-trips).
    pub udf_calls: u64,
    /// SQL statements executed through the SPI.
    pub spi_statements: u64,
    /// Rows fetched from SPI cursors.
    pub rows_fetched: u64,
}

/// PL expression.
#[derive(Debug, Clone)]
pub enum PlExpr {
    /// Literal.
    Const(Datum),
    /// Scalar variable.
    Var(String),
    /// Field of a row variable (by column name).
    Field(String, String),
    /// Function call through the function manager; resolves against the
    /// catalog's scalar-function registry.
    Call(String, Vec<PlExpr>),
    /// Comparison.
    Cmp(CmpOp, Box<PlExpr>, Box<PlExpr>),
    /// Arithmetic.
    Arith(ArithOp, Box<PlExpr>, Box<PlExpr>),
    /// Conjunction.
    And(Box<PlExpr>, Box<PlExpr>),
    /// Disjunction.
    Or(Box<PlExpr>, Box<PlExpr>),
    /// Negation.
    Not(Box<PlExpr>),
    /// String concatenation (dynamic SQL assembly).
    Concat(Vec<PlExpr>),
    /// List element access: `list[idx]` (0-based).
    ListGet(String, Box<PlExpr>),
    /// List length.
    ListLen(String),
    /// `length(string)` of a text value.
    StrLen(Box<PlExpr>),
    /// Character (single-char text) at a 0-based position of a text value.
    CharAt(Box<PlExpr>, Box<PlExpr>),
}

/// PL statement.
#[derive(Debug, Clone)]
pub enum PlStmt {
    /// `var := expr`.
    Assign(String, PlExpr),
    /// `IF cond THEN ... [ELSE ...] END IF`.
    If {
        cond: PlExpr,
        then_branch: Vec<PlStmt>,
        else_branch: Vec<PlStmt>,
    },
    /// `WHILE cond LOOP ... END LOOP`.
    While { cond: PlExpr, body: Vec<PlStmt> },
    /// `FOR rowvar IN EXECUTE sql LOOP ... END LOOP` — dynamic SQL through
    /// the SPI; the row variable exposes result columns as fields.
    ForQuery {
        var: String,
        sql: PlExpr,
        body: Vec<PlStmt>,
    },
    /// `RETURN NEXT (exprs...)` — append a row to the function's result set.
    ReturnNext(Vec<PlExpr>),
    /// `RETURN` — finish.
    Return,
    /// `PERFORM sql` — execute a statement, discarding rows.
    Perform(PlExpr),
    /// `var := ARRAY[]` — create an empty list (PL/SQL collections).
    ListNew(String),
    /// `var := var || expr` — append to a list.
    ListPush(String, PlExpr),
    /// `var[idx] := expr` — update a list element (0-based; the list grows
    /// with NULLs when `idx` is past the end, PL/pgSQL-style).
    ListSet(String, PlExpr, PlExpr),
    /// `dst := src` for list variables.
    ListCopy(String, String),
}

/// A set-returning PL function.
#[derive(Debug, Clone)]
pub struct PlFunction {
    /// Function name (diagnostics only).
    pub name: String,
    /// Parameter names, bound positionally at call time.
    pub params: Vec<String>,
    /// Body.
    pub body: Vec<PlStmt>,
}

/// Values a PL variable can hold.
#[derive(Debug, Clone)]
enum PlValue {
    Scalar(Datum),
    Row(Vec<(String, Datum)>),
    List(Vec<Datum>),
}

enum Flow {
    Normal,
    Returned,
}

/// The PL interpreter.  Borrows the database mutably: SPI statements are
/// real statements against the same engine.
pub struct PlRuntime<'a> {
    db: &'a mut Database,
    stats: PlStats,
    /// Locally-registered PL functions, callable from [`PlExpr::Call`].
    /// Local names shadow the catalog's native functions — how a pure
    /// outside-the-server deployment replaces `editdistance` with its own
    /// interpreted implementation.
    functions: HashMap<String, PlFunction>,
}

impl<'a> PlRuntime<'a> {
    /// New runtime over a database.
    pub fn new(db: &'a mut Database) -> Self {
        PlRuntime {
            db,
            stats: PlStats::default(),
            functions: HashMap::new(),
        }
    }

    /// Register a PL function; `Call(name, ...)` resolves local functions
    /// before catalog natives, so locals shadow natives.
    pub fn register_function(&mut self, f: PlFunction) {
        self.functions.insert(f.name.clone(), f);
    }

    /// Statistics accumulated so far.
    pub fn stats(&self) -> PlStats {
        self.stats
    }

    /// Invoke a PL function with positional arguments; returns its result
    /// set.  Arguments cross the function-manager boundary (marshalled to
    /// wire format and back) exactly like every nested call does.
    pub fn call(&mut self, func: &PlFunction, args: &[Datum]) -> Result<Vec<Row>> {
        if args.len() != func.params.len() {
            return Err(Error::Pl(format!(
                "{} expects {} arguments, got {}",
                func.name,
                func.params.len(),
                args.len()
            )));
        }
        let args = self.fmgr_roundtrip(args)?;
        let mut env: HashMap<String, PlValue> = HashMap::new();
        for (p, a) in func.params.iter().zip(args) {
            env.insert(p.clone(), PlValue::Scalar(a));
        }
        let mut out = Vec::new();
        self.run_block(&func.body, &mut env, &mut out)?;
        Ok(out)
    }

    /// The function-manager boundary: serialize values to the tuple wire
    /// format and deserialize them again, as a UDF call into a separate
    /// execution context would.
    fn fmgr_roundtrip(&mut self, vals: &[Datum]) -> Result<Vec<Datum>> {
        self.stats.udf_calls += 1;
        crate::obs::metrics().pl_udf_calls_total.inc();
        let bytes = encode_row(&vals.to_vec());
        decode_row(&bytes, vals.len())
    }

    fn run_block(
        &mut self,
        stmts: &[PlStmt],
        env: &mut HashMap<String, PlValue>,
        out: &mut Vec<Row>,
    ) -> Result<Flow> {
        for stmt in stmts {
            match stmt {
                PlStmt::Assign(name, expr) => {
                    let v = self.eval(expr, env)?;
                    env.insert(name.clone(), PlValue::Scalar(v));
                }
                PlStmt::If {
                    cond,
                    then_branch,
                    else_branch,
                } => {
                    let branch = if self.eval(cond, env)?.is_true() {
                        then_branch
                    } else {
                        else_branch
                    };
                    if let Flow::Returned = self.run_block(branch, env, out)? {
                        return Ok(Flow::Returned);
                    }
                }
                PlStmt::While { cond, body } => {
                    while self.eval(cond, env)?.is_true() {
                        if let Flow::Returned = self.run_block(body, env, out)? {
                            return Ok(Flow::Returned);
                        }
                    }
                }
                PlStmt::ForQuery { var, sql, body } => {
                    let sql_text = match self.eval(sql, env)? {
                        Datum::Text(s) => s.to_string(),
                        other => return Err(Error::Pl(format!("EXECUTE needs text, got {other}"))),
                    };
                    self.stats.spi_statements += 1;
                    crate::obs::metrics().pl_spi_statements_total.inc();
                    let result = self.db.execute(&sql_text)?;
                    let names: Vec<String> = result
                        .schema
                        .columns()
                        .iter()
                        .map(|c| c.name.clone())
                        .collect();
                    for row in result.rows {
                        self.stats.rows_fetched += 1;
                        crate::obs::metrics().pl_rows_fetched_total.inc();
                        // Row values cross the fmgr boundary into PL space.
                        let row = self.fmgr_roundtrip(&row)?;
                        env.insert(
                            var.clone(),
                            PlValue::Row(names.iter().cloned().zip(row).collect()),
                        );
                        if let Flow::Returned = self.run_block(body, env, out)? {
                            return Ok(Flow::Returned);
                        }
                    }
                }
                PlStmt::ReturnNext(exprs) => {
                    let mut row = Row::with_capacity(exprs.len());
                    for e in exprs {
                        row.push(self.eval(e, env)?);
                    }
                    out.push(row);
                }
                PlStmt::Return => return Ok(Flow::Returned),
                PlStmt::Perform(sql) => {
                    let sql_text = match self.eval(sql, env)? {
                        Datum::Text(s) => s.to_string(),
                        other => return Err(Error::Pl(format!("PERFORM needs text, got {other}"))),
                    };
                    self.stats.spi_statements += 1;
                    crate::obs::metrics().pl_spi_statements_total.inc();
                    self.db.execute(&sql_text)?;
                }
                PlStmt::ListNew(name) => {
                    env.insert(name.clone(), PlValue::List(Vec::new()));
                }
                PlStmt::ListPush(name, expr) => {
                    let v = self.eval(expr, env)?;
                    match env.get_mut(name) {
                        Some(PlValue::List(items)) => items.push(v),
                        _ => return Err(Error::Pl(format!("{name:?} is not a list"))),
                    }
                }
                PlStmt::ListCopy(dst, src) => {
                    let items = match env.get(src) {
                        Some(PlValue::List(items)) => items.clone(),
                        _ => return Err(Error::Pl(format!("{src:?} is not a list"))),
                    };
                    env.insert(dst.clone(), PlValue::List(items));
                }
                PlStmt::ListSet(name, idx, expr) => {
                    let i = self
                        .eval(idx, env)?
                        .as_int()
                        .ok_or_else(|| Error::Pl("list index must be int".into()))?;
                    if i < 0 {
                        return Err(Error::Pl(format!("negative list index {i}")));
                    }
                    let v = self.eval(expr, env)?;
                    match env.get_mut(name) {
                        Some(PlValue::List(items)) => {
                            let i = i as usize;
                            if i >= items.len() {
                                items.resize(i + 1, Datum::Null);
                            }
                            items[i] = v;
                        }
                        _ => return Err(Error::Pl(format!("{name:?} is not a list"))),
                    }
                }
            }
        }
        Ok(Flow::Normal)
    }

    fn eval(&mut self, expr: &PlExpr, env: &HashMap<String, PlValue>) -> Result<Datum> {
        match expr {
            PlExpr::Const(d) => Ok(d.clone()),
            PlExpr::Var(name) => match env.get(name) {
                Some(PlValue::Scalar(d)) => Ok(d.clone()),
                Some(PlValue::Row(_)) | Some(PlValue::List(_)) => Err(Error::Pl(format!(
                    "{name} is not a scalar; use a field or index access"
                ))),
                None => Err(Error::Pl(format!("undefined variable {name:?}"))),
            },
            PlExpr::Field(var, field) => match env.get(var) {
                Some(PlValue::Row(fields)) => fields
                    .iter()
                    .find(|(n, _)| n.eq_ignore_ascii_case(field))
                    .map(|(_, d)| d.clone())
                    .ok_or_else(|| Error::Pl(format!("row {var:?} has no field {field:?}"))),
                Some(PlValue::Scalar(_)) | Some(PlValue::List(_)) => {
                    Err(Error::Pl(format!("{var} has no field {field:?}")))
                }
                None => Err(Error::Pl(format!("undefined variable {var:?}"))),
            },
            PlExpr::Call(name, args) => {
                let mut vals = Vec::with_capacity(args.len());
                for a in args {
                    vals.push(self.eval(a, env)?);
                }
                // Locally-registered PL functions shadow catalog natives.
                // Used as scalars they return the first column of their
                // first result row (NULL for an empty result).
                if let Some(local) = self.functions.get(name).cloned() {
                    let rows = self.call(&local, &vals)?;
                    return Ok(rows
                        .into_iter()
                        .next()
                        .and_then(|r| r.into_iter().next())
                        .unwrap_or(Datum::Null));
                }
                // Cross the fmgr boundary per call, then dispatch through
                // the catalog's function registry.
                let vals = self.fmgr_roundtrip(&vals)?;
                let f = self
                    .db
                    .catalog()
                    .function(name)
                    .ok_or_else(|| Error::Pl(format!("unknown function {name:?}")))?
                    .clone();
                if vals.len() != f.arity {
                    return Err(Error::Pl(format!(
                        "{name} expects {} args, got {}",
                        f.arity,
                        vals.len()
                    )));
                }
                let result = (f.eval)(&vals, self.db.session())?;
                // Result marshals back out.
                let back = self.fmgr_roundtrip(std::slice::from_ref(&result))?;
                Ok(back.into_iter().next().expect("one value"))
            }
            PlExpr::Cmp(op, l, r) => {
                let lv = self.eval(l, env)?;
                let rv = self.eval(r, env)?;
                if lv.is_null() || rv.is_null() {
                    return Ok(Datum::Null);
                }
                Ok(Datum::Bool(op.matches(lv.cmp_sql(&rv))))
            }
            PlExpr::Arith(op, l, r) => {
                let lv = self.eval(l, env)?;
                let rv = self.eval(r, env)?;
                let (a, b) = (
                    lv.as_float()
                        .ok_or_else(|| Error::Pl(format!("non-numeric {lv}")))?,
                    rv.as_float()
                        .ok_or_else(|| Error::Pl(format!("non-numeric {rv}")))?,
                );
                let result = match op {
                    ArithOp::Add => a + b,
                    ArithOp::Sub => a - b,
                    ArithOp::Mul => a * b,
                    ArithOp::Div => {
                        if b == 0.0 {
                            return Err(Error::Pl("division by zero".into()));
                        }
                        a / b
                    }
                };
                // Preserve integer-ness for integer inputs.
                if matches!((&lv, &rv), (Datum::Int(_), Datum::Int(_))) && result.fract() == 0.0 {
                    Ok(Datum::Int(result as i64))
                } else {
                    Ok(Datum::Float(result))
                }
            }
            PlExpr::And(l, r) => {
                if !self.eval(l, env)?.is_true() {
                    return Ok(Datum::Bool(false));
                }
                Ok(Datum::Bool(self.eval(r, env)?.is_true()))
            }
            PlExpr::Or(l, r) => {
                if self.eval(l, env)?.is_true() {
                    return Ok(Datum::Bool(true));
                }
                Ok(Datum::Bool(self.eval(r, env)?.is_true()))
            }
            PlExpr::Not(e) => Ok(Datum::Bool(!self.eval(e, env)?.is_true())),
            PlExpr::Concat(parts) => {
                let mut s = String::new();
                for p in parts {
                    let v = self.eval(p, env)?;
                    match v {
                        Datum::Text(t) => s.push_str(&t),
                        other => s.push_str(&other.to_string()),
                    }
                }
                Ok(Datum::text(s))
            }
            PlExpr::ListGet(name, idx) => {
                let i = self
                    .eval(idx, env)?
                    .as_int()
                    .ok_or_else(|| Error::Pl("list index must be int".into()))?;
                match env.get(name) {
                    Some(PlValue::List(items)) => items
                        .get(i as usize)
                        .cloned()
                        .ok_or_else(|| Error::Pl(format!("list index {i} out of bounds"))),
                    _ => Err(Error::Pl(format!("{name:?} is not a list"))),
                }
            }
            PlExpr::ListLen(name) => match env.get(name) {
                Some(PlValue::List(items)) => Ok(Datum::Int(items.len() as i64)),
                _ => Err(Error::Pl(format!("{name:?} is not a list"))),
            },
            PlExpr::StrLen(e) => {
                let v = self.eval(e, env)?;
                match v {
                    Datum::Text(s) => Ok(Datum::Int(s.len() as i64)),
                    other => Err(Error::Pl(format!("length() needs text, got {other}"))),
                }
            }
            PlExpr::CharAt(e, idx) => {
                let v = self.eval(e, env)?;
                let i = self
                    .eval(idx, env)?
                    .as_int()
                    .ok_or_else(|| Error::Pl("charat index must be int".into()))?;
                match v {
                    Datum::Text(s) => {
                        let b = s
                            .as_bytes()
                            .get(i as usize)
                            .copied()
                            .ok_or_else(|| Error::Pl(format!("charat {i} out of bounds")))?;
                        Ok(Datum::text((b as char).to_string()))
                    }
                    other => Err(Error::Pl(format!("charat needs text, got {other}"))),
                }
            }
        }
    }
}

/// Expression-building helpers (the PL programs in `mlql-mural` and the
/// benches are assembled with these).
pub mod build {
    use super::*;

    /// Literal.
    pub fn lit(d: Datum) -> PlExpr {
        PlExpr::Const(d)
    }

    /// Text literal.
    pub fn text(s: &str) -> PlExpr {
        PlExpr::Const(Datum::text(s))
    }

    /// Integer literal.
    pub fn int(i: i64) -> PlExpr {
        PlExpr::Const(Datum::Int(i))
    }

    /// Variable reference.
    pub fn var(name: &str) -> PlExpr {
        PlExpr::Var(name.into())
    }

    /// Row-field reference.
    pub fn field(var: &str, field: &str) -> PlExpr {
        PlExpr::Field(var.into(), field.into())
    }

    /// Function call.
    pub fn call(name: &str, args: Vec<PlExpr>) -> PlExpr {
        PlExpr::Call(name.into(), args)
    }

    /// Comparison.
    pub fn cmp(op: CmpOp, l: PlExpr, r: PlExpr) -> PlExpr {
        PlExpr::Cmp(op, Box::new(l), Box::new(r))
    }

    /// String concatenation.
    pub fn concat(parts: Vec<PlExpr>) -> PlExpr {
        PlExpr::Concat(parts)
    }
}

#[cfg(test)]
mod tests {
    use super::build::*;
    use super::*;
    use crate::catalog::FuncDef;
    use std::sync::Arc;

    fn setup() -> Database {
        let mut db = Database::new_in_memory();
        db.execute("CREATE TABLE t (id INT, name TEXT)").unwrap();
        db.execute("INSERT INTO t VALUES (1, 'one'), (2, 'two'), (3, 'three')")
            .unwrap();
        db.catalog_mut().register_function(FuncDef {
            name: "strlen".into(),
            arity: 1,
            ret: Some(crate::value::DataType::Int),
            eval: Arc::new(|args, _| {
                Ok(Datum::Int(
                    args[0].as_text().map(|s| s.len() as i64).unwrap_or(0),
                ))
            }),
        });
        db
    }

    #[test]
    fn for_query_with_filter_in_pl() {
        let mut db = setup();
        // Outside-the-server filter: scan all rows via SPI, keep names of
        // length > 3 in interpreted code.
        let func = PlFunction {
            name: "long_names".into(),
            params: vec![],
            body: vec![PlStmt::ForQuery {
                var: "r".into(),
                sql: text("SELECT id, name FROM t"),
                body: vec![PlStmt::If {
                    cond: cmp(CmpOp::Gt, call("strlen", vec![field("r", "name")]), int(3)),
                    then_branch: vec![PlStmt::ReturnNext(vec![field("r", "name")])],
                    else_branch: vec![],
                }],
            }],
        };
        let mut rt = PlRuntime::new(&mut db);
        let rows = rt.call(&func, &[]).unwrap();
        assert_eq!(rows.len(), 1);
        assert_eq!(rows[0][0].as_text(), Some("three"));
        let stats = rt.stats();
        assert_eq!(stats.spi_statements, 1);
        assert_eq!(stats.rows_fetched, 3);
        // 1 call + 3 row marshals + 3 strlen calls × 2 (in+out) = 10.
        assert_eq!(stats.udf_calls, 10);
    }

    #[test]
    fn dynamic_sql_concat() {
        let mut db = setup();
        let func = PlFunction {
            name: "by_id".into(),
            params: vec!["target".into()],
            body: vec![PlStmt::ForQuery {
                var: "r".into(),
                sql: concat(vec![text("SELECT name FROM t WHERE id = "), var("target")]),
                body: vec![PlStmt::ReturnNext(vec![field("r", "name")])],
            }],
        };
        let mut rt = PlRuntime::new(&mut db);
        let rows = rt.call(&func, &[Datum::Int(2)]).unwrap();
        assert_eq!(rows.len(), 1);
        assert_eq!(rows[0][0].as_text(), Some("two"));
    }

    #[test]
    fn while_loop_and_assignment() {
        let mut db = setup();
        let func = PlFunction {
            name: "count_to".into(),
            params: vec!["n".into()],
            body: vec![
                PlStmt::Assign("i".into(), int(0)),
                PlStmt::While {
                    cond: cmp(CmpOp::Lt, var("i"), var("n")),
                    body: vec![
                        PlStmt::ReturnNext(vec![var("i")]),
                        PlStmt::Assign(
                            "i".into(),
                            PlExpr::Arith(ArithOp::Add, Box::new(var("i")), Box::new(int(1))),
                        ),
                    ],
                },
            ],
        };
        let mut rt = PlRuntime::new(&mut db);
        let rows = rt.call(&func, &[Datum::Int(4)]).unwrap();
        assert_eq!(rows.len(), 4);
        assert!(rows[3][0].eq_sql(&Datum::Int(3)));
    }

    #[test]
    fn early_return_stops_iteration() {
        let mut db = setup();
        let func = PlFunction {
            name: "first".into(),
            params: vec![],
            body: vec![
                PlStmt::ForQuery {
                    var: "r".into(),
                    sql: text("SELECT id FROM t ORDER BY id"),
                    body: vec![PlStmt::ReturnNext(vec![field("r", "id")]), PlStmt::Return],
                },
                PlStmt::ReturnNext(vec![int(-1)]),
            ],
        };
        let mut rt = PlRuntime::new(&mut db);
        let rows = rt.call(&func, &[]).unwrap();
        assert_eq!(rows.len(), 1);
        assert!(rows[0][0].eq_sql(&Datum::Int(1)));
    }

    #[test]
    fn perform_mutates_database() {
        let mut db = setup();
        let func = PlFunction {
            name: "add_row".into(),
            params: vec![],
            body: vec![PlStmt::Perform(text("INSERT INTO t VALUES (9, 'nine')"))],
        };
        let mut rt = PlRuntime::new(&mut db);
        rt.call(&func, &[]).unwrap();
        let r = db.execute("SELECT count(*) FROM t").unwrap();
        assert!(r.rows[0][0].eq_sql(&Datum::Int(4)));
    }

    #[test]
    fn errors_are_reported() {
        let mut db = setup();
        let mut rt = PlRuntime::new(&mut db);
        let bad_var = PlFunction {
            name: "bad".into(),
            params: vec![],
            body: vec![PlStmt::ReturnNext(vec![var("nope")])],
        };
        assert!(rt.call(&bad_var, &[]).is_err());
        let bad_arity = PlFunction {
            name: "f".into(),
            params: vec!["x".into()],
            body: vec![],
        };
        assert!(rt.call(&bad_arity, &[]).is_err());
    }
}
