//! Surface syntax for the mini-PL — the paper's outside-the-server
//! baselines were "PL/SQL procedures"; this parser lets them be written as
//! source text rather than hand-assembled ASTs:
//!
//! ```text
//! FUNCTION near_names(q, k) BEGIN
//!     FOR r IN EXECUTE 'SELECT name, ph FROM names' LOOP
//!         IF editdistance(r.ph, q) <= k THEN
//!             RETURN NEXT r.name;
//!         END IF;
//!     END LOOP;
//! END
//! ```
//!
//! Statements: `v := expr;`, `IF e THEN ... [ELSE ...] END IF;`,
//! `WHILE e LOOP ... END LOOP;`, `FOR v IN EXECUTE e LOOP ... END LOOP;`,
//! `RETURN NEXT e [, e];`, `RETURN;`, `PERFORM e;`, and the collection
//! forms `LIST v;`, `PUSH v, e;`, `v[i] := e;`, `COPYLIST dst, src;`.
//!
//! Expressions: literals, variables, `row.field`, `list[i]`, function
//! calls, `LENGTH(e)`, `CHARAT(e, i)`, `COUNT(v)` (list length), `||`
//! concatenation, comparisons, arithmetic, `AND/OR/NOT`.

use crate::error::{Error, Result};
use crate::expr::{ArithOp, CmpOp};
use crate::pl::{PlExpr, PlFunction, PlStmt};
use crate::sql::{tokenize, Token};
use crate::value::Datum;

/// Parse one `FUNCTION name(params) BEGIN ... END`.
pub fn parse_function(source: &str) -> Result<PlFunction> {
    let tokens = tokenize(source)?;
    let mut p = Parser { tokens, pos: 0 };
    p.expect_kw("function")?;
    let name = p.ident()?;
    p.expect_sym("(")?;
    let mut params = Vec::new();
    if !p.peek_sym(")") {
        loop {
            params.push(p.ident()?);
            if !p.eat_sym(",") {
                break;
            }
        }
    }
    p.expect_sym(")")?;
    p.expect_kw("begin")?;
    let body = p.block(&["end"])?;
    p.expect_kw("end")?;
    p.eat_sym(";");
    if p.pos < p.tokens.len() {
        return Err(Error::Parse(format!(
            "trailing tokens: {:?}",
            p.tokens[p.pos]
        )));
    }
    Ok(PlFunction { name, params, body })
}

struct Parser {
    tokens: Vec<Token>,
    pos: usize,
}

impl Parser {
    fn peek(&self) -> Option<&Token> {
        self.tokens.get(self.pos)
    }

    fn peek_kw(&self, kw: &str) -> bool {
        self.peek().map(|t| t.is_kw(kw)).unwrap_or(false)
    }

    fn peek_sym(&self, s: &str) -> bool {
        self.peek().map(|t| t.is_sym(s)).unwrap_or(false)
    }

    fn eat_kw(&mut self, kw: &str) -> bool {
        if self.peek_kw(kw) {
            self.pos += 1;
            true
        } else {
            false
        }
    }

    fn eat_sym(&mut self, s: &str) -> bool {
        if self.peek_sym(s) {
            self.pos += 1;
            true
        } else {
            false
        }
    }

    fn expect_kw(&mut self, kw: &str) -> Result<()> {
        if self.eat_kw(kw) {
            Ok(())
        } else {
            Err(Error::Parse(format!(
                "PL: expected {kw:?}, found {:?}",
                self.peek()
            )))
        }
    }

    fn expect_sym(&mut self, s: &str) -> Result<()> {
        if self.eat_sym(s) {
            Ok(())
        } else {
            Err(Error::Parse(format!(
                "PL: expected {s:?}, found {:?}",
                self.peek()
            )))
        }
    }

    fn ident(&mut self) -> Result<String> {
        match self.peek() {
            Some(Token::Ident(s)) => {
                let s = s.to_lowercase();
                self.pos += 1;
                Ok(s)
            }
            other => Err(Error::Parse(format!(
                "PL: expected identifier, found {other:?}"
            ))),
        }
    }

    /// Parse statements until one of `terminators` (not consumed).
    fn block(&mut self, terminators: &[&str]) -> Result<Vec<PlStmt>> {
        let mut out = Vec::new();
        loop {
            if terminators.iter().any(|t| self.peek_kw(t)) {
                return Ok(out);
            }
            if self.peek().is_none() {
                return Err(Error::Parse("PL: unexpected end of input".into()));
            }
            out.push(self.statement()?);
        }
    }

    fn statement(&mut self) -> Result<PlStmt> {
        if self.eat_kw("if") {
            let cond = self.expr()?;
            self.expect_kw("then")?;
            let then_branch = self.block(&["else", "end"])?;
            let else_branch = if self.eat_kw("else") {
                self.block(&["end"])?
            } else {
                vec![]
            };
            self.expect_kw("end")?;
            self.expect_kw("if")?;
            self.expect_sym(";")?;
            return Ok(PlStmt::If {
                cond,
                then_branch,
                else_branch,
            });
        }
        if self.eat_kw("while") {
            let cond = self.expr()?;
            self.expect_kw("loop")?;
            let body = self.block(&["end"])?;
            self.expect_kw("end")?;
            self.expect_kw("loop")?;
            self.expect_sym(";")?;
            return Ok(PlStmt::While { cond, body });
        }
        if self.eat_kw("for") {
            let var = self.ident()?;
            self.expect_kw("in")?;
            self.expect_kw("execute")?;
            let sql = self.expr()?;
            self.expect_kw("loop")?;
            let body = self.block(&["end"])?;
            self.expect_kw("end")?;
            self.expect_kw("loop")?;
            self.expect_sym(";")?;
            return Ok(PlStmt::ForQuery { var, sql, body });
        }
        if self.eat_kw("return") {
            if self.eat_kw("next") {
                let mut exprs = vec![self.expr()?];
                while self.eat_sym(",") {
                    exprs.push(self.expr()?);
                }
                self.expect_sym(";")?;
                return Ok(PlStmt::ReturnNext(exprs));
            }
            self.expect_sym(";")?;
            return Ok(PlStmt::Return);
        }
        if self.eat_kw("perform") {
            let e = self.expr()?;
            self.expect_sym(";")?;
            return Ok(PlStmt::Perform(e));
        }
        if self.eat_kw("list") {
            let name = self.ident()?;
            self.expect_sym(";")?;
            return Ok(PlStmt::ListNew(name));
        }
        if self.eat_kw("push") {
            let name = self.ident()?;
            self.expect_sym(",")?;
            let e = self.expr()?;
            self.expect_sym(";")?;
            return Ok(PlStmt::ListPush(name, e));
        }
        if self.eat_kw("copylist") {
            let dst = self.ident()?;
            self.expect_sym(",")?;
            let src = self.ident()?;
            self.expect_sym(";")?;
            return Ok(PlStmt::ListCopy(dst, src));
        }
        // Assignment: `name := expr;` or `name[idx] := expr;`
        let name = self.ident()?;
        if self.eat_sym("[") {
            let idx = self.expr()?;
            self.expect_sym("]")?;
            self.expect_sym(":=")?;
            let v = self.expr()?;
            self.expect_sym(";")?;
            return Ok(PlStmt::ListSet(name, idx, v));
        }
        self.expect_sym(":=")?;
        let v = self.expr()?;
        self.expect_sym(";")?;
        Ok(PlStmt::Assign(name, v))
    }

    // Precedence: OR < AND < NOT < cmp < concat < add < mul < primary
    fn expr(&mut self) -> Result<PlExpr> {
        let mut left = self.and_expr()?;
        while self.eat_kw("or") {
            let r = self.and_expr()?;
            left = PlExpr::Or(Box::new(left), Box::new(r));
        }
        Ok(left)
    }

    fn and_expr(&mut self) -> Result<PlExpr> {
        let mut left = self.not_expr()?;
        while self.eat_kw("and") {
            let r = self.not_expr()?;
            left = PlExpr::And(Box::new(left), Box::new(r));
        }
        Ok(left)
    }

    fn not_expr(&mut self) -> Result<PlExpr> {
        if self.eat_kw("not") {
            Ok(PlExpr::Not(Box::new(self.not_expr()?)))
        } else {
            self.cmp_expr()
        }
    }

    fn cmp_expr(&mut self) -> Result<PlExpr> {
        let left = self.concat_expr()?;
        for (sym, op) in [
            ("<=", CmpOp::Le),
            (">=", CmpOp::Ge),
            ("<>", CmpOp::Ne),
            ("=", CmpOp::Eq),
            ("<", CmpOp::Lt),
            (">", CmpOp::Gt),
        ] {
            if self.eat_sym(sym) {
                let right = self.concat_expr()?;
                return Ok(PlExpr::Cmp(op, Box::new(left), Box::new(right)));
            }
        }
        Ok(left)
    }

    fn concat_expr(&mut self) -> Result<PlExpr> {
        let first = self.add_expr()?;
        if !self.peek_sym("||") {
            return Ok(first);
        }
        let mut parts = vec![first];
        while self.eat_sym("||") {
            parts.push(self.add_expr()?);
        }
        Ok(PlExpr::Concat(parts))
    }

    fn add_expr(&mut self) -> Result<PlExpr> {
        let mut left = self.mul_expr()?;
        loop {
            let op = if self.eat_sym("+") {
                ArithOp::Add
            } else if self.eat_sym("-") {
                ArithOp::Sub
            } else {
                break;
            };
            let r = self.mul_expr()?;
            left = PlExpr::Arith(op, Box::new(left), Box::new(r));
        }
        Ok(left)
    }

    fn mul_expr(&mut self) -> Result<PlExpr> {
        let mut left = self.primary()?;
        loop {
            let op = if self.eat_sym("*") {
                ArithOp::Mul
            } else if self.eat_sym("/") {
                ArithOp::Div
            } else {
                break;
            };
            let r = self.primary()?;
            left = PlExpr::Arith(op, Box::new(left), Box::new(r));
        }
        Ok(left)
    }

    fn primary(&mut self) -> Result<PlExpr> {
        match self.peek().cloned() {
            Some(Token::Int(n)) => {
                self.pos += 1;
                Ok(PlExpr::Const(Datum::Int(n)))
            }
            Some(Token::Float(f)) => {
                self.pos += 1;
                Ok(PlExpr::Const(Datum::Float(f)))
            }
            Some(Token::Str(s)) => {
                self.pos += 1;
                Ok(PlExpr::Const(Datum::text(s)))
            }
            Some(Token::Sym("(")) => {
                self.pos += 1;
                let e = self.expr()?;
                self.expect_sym(")")?;
                Ok(e)
            }
            Some(Token::Sym("-")) => {
                self.pos += 1;
                let inner = self.primary()?;
                Ok(PlExpr::Arith(
                    ArithOp::Sub,
                    Box::new(PlExpr::Const(Datum::Int(0))),
                    Box::new(inner),
                ))
            }
            Some(Token::Ident(raw)) => {
                let name = raw.to_lowercase();
                self.pos += 1;
                match name.as_str() {
                    "null" => return Ok(PlExpr::Const(Datum::Null)),
                    "true" => return Ok(PlExpr::Const(Datum::Bool(true))),
                    "false" => return Ok(PlExpr::Const(Datum::Bool(false))),
                    _ => {}
                }
                // Builtin pseudo-functions and calls.
                if self.peek_sym("(") {
                    self.pos += 1;
                    let mut args = Vec::new();
                    if !self.peek_sym(")") {
                        loop {
                            args.push(self.expr()?);
                            if !self.eat_sym(",") {
                                break;
                            }
                        }
                    }
                    self.expect_sym(")")?;
                    return match (name.as_str(), args.len()) {
                        ("length", 1) => Ok(PlExpr::StrLen(Box::new(
                            args.into_iter().next().expect("1 arg"),
                        ))),
                        ("charat", 2) => {
                            let mut it = args.into_iter();
                            let s = it.next().expect("2 args");
                            let i = it.next().expect("2 args");
                            Ok(PlExpr::CharAt(Box::new(s), Box::new(i)))
                        }
                        ("count", 1) => match args_into_var(args) {
                            Some(v) => Ok(PlExpr::ListLen(v)),
                            None => Err(Error::Parse("PL: count() takes a list variable".into())),
                        },
                        _ => Ok(PlExpr::Call(name, args)),
                    };
                }
                // Field access or list indexing.
                if self.eat_sym(".") {
                    let field = self.ident()?;
                    return Ok(PlExpr::Field(name, field));
                }
                if self.eat_sym("[") {
                    let idx = self.expr()?;
                    self.expect_sym("]")?;
                    return Ok(PlExpr::ListGet(name, Box::new(idx)));
                }
                Ok(PlExpr::Var(name))
            }
            other => Err(Error::Parse(format!("PL: unexpected token {other:?}"))),
        }
    }
}

fn args_into_var(args: Vec<PlExpr>) -> Option<String> {
    match args.into_iter().next() {
        Some(PlExpr::Var(v)) => Some(v),
        _ => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::catalog::FuncDef;
    use crate::db::Database;
    use crate::pl::PlRuntime;
    use std::sync::Arc;

    fn db_with_strlen() -> Database {
        let mut db = Database::new_in_memory();
        db.execute("CREATE TABLE t (id INT, name TEXT)").unwrap();
        db.execute("INSERT INTO t VALUES (1,'one'), (2,'two'), (3,'three')")
            .unwrap();
        db.catalog_mut().register_function(FuncDef {
            name: "editdistance".into(),
            arity: 2,
            ret: Some(crate::value::DataType::Int),
            eval: Arc::new(|args, _| {
                // toy: absolute length difference
                let a = args[0].as_text().unwrap_or("").len() as i64;
                let b = args[1].as_text().unwrap_or("").len() as i64;
                Ok(Datum::Int((a - b).abs()))
            }),
        });
        db
    }

    #[test]
    fn parse_and_run_cursor_filter() {
        let mut db = db_with_strlen();
        let f = parse_function(
            "FUNCTION short_names(maxlen) BEGIN \
               FOR r IN EXECUTE 'SELECT id, name FROM t' LOOP \
                 IF LENGTH(r.name) <= maxlen THEN \
                   RETURN NEXT r.name; \
                 END IF; \
               END LOOP; \
             END",
        )
        .unwrap();
        assert_eq!(f.params, vec!["maxlen"]);
        let mut rt = PlRuntime::new(&mut db);
        let rows = rt.call(&f, &[Datum::Int(3)]).unwrap();
        assert_eq!(rows.len(), 2); // one, two
    }

    #[test]
    fn parse_while_lists_and_indexing() {
        let mut db = db_with_strlen();
        let f = parse_function(
            "FUNCTION squares(n) BEGIN \
               LIST acc; \
               i := 0; \
               WHILE i < n LOOP \
                 PUSH acc, i * i; \
                 i := i + 1; \
               END LOOP; \
               acc[0] := 99; \
               j := 0; \
               WHILE j < COUNT(acc) LOOP \
                 RETURN NEXT acc[j]; \
                 j := j + 1; \
               END LOOP; \
             END",
        )
        .unwrap();
        let mut rt = PlRuntime::new(&mut db);
        let rows = rt.call(&f, &[Datum::Int(4)]).unwrap();
        let vals: Vec<i64> = rows.iter().map(|r| r[0].as_int().unwrap()).collect();
        assert_eq!(vals, vec![99, 1, 4, 9]);
    }

    #[test]
    fn parse_dynamic_sql_concat() {
        let mut db = db_with_strlen();
        let f = parse_function(
            "FUNCTION by_id(target) BEGIN \
               FOR r IN EXECUTE 'SELECT name FROM t WHERE id = ' || target LOOP \
                 RETURN NEXT r.name; \
               END LOOP; \
             END",
        )
        .unwrap();
        let mut rt = PlRuntime::new(&mut db);
        let rows = rt.call(&f, &[Datum::Int(2)]).unwrap();
        assert_eq!(rows[0][0].as_text(), Some("two"));
    }

    #[test]
    fn parse_if_else_and_perform() {
        let mut db = db_with_strlen();
        let f = parse_function(
            "FUNCTION maybe_insert(flag) BEGIN \
               IF flag = 1 THEN \
                 PERFORM 'INSERT INTO t VALUES (9, ''nine'')'; \
               ELSE \
                 RETURN NEXT 0; \
               END IF; \
             END",
        )
        .unwrap();
        let mut rt = PlRuntime::new(&mut db);
        rt.call(&f, &[Datum::Int(1)]).unwrap();
        let n = db.query("SELECT count(*) FROM t").unwrap();
        assert_eq!(n[0][0].as_int(), Some(4));
    }

    #[test]
    fn parse_errors_are_reported() {
        assert!(parse_function("FUNCTION broken( BEGIN END").is_err());
        assert!(parse_function("FUNCTION f() BEGIN x := ; END").is_err());
        assert!(parse_function("FUNCTION f() BEGIN IF 1 THEN END").is_err());
        assert!(parse_function("FUNCTION f() BEGIN RETURN; END garbage").is_err());
    }

    #[test]
    fn parsed_equals_builder_for_scan() {
        // The text form of lexequal_scan must behave like the builder AST.
        let mut db = db_with_strlen();
        db.execute("CREATE TABLE names2 (name TEXT, ph TEXT)")
            .unwrap();
        db.execute("INSERT INTO names2 VALUES ('a','aa'), ('b','bbbb')")
            .unwrap();
        let f = parse_function(
            "FUNCTION scan2(q, k) BEGIN \
               FOR r IN EXECUTE 'SELECT name, ph FROM names2' LOOP \
                 IF editdistance(r.ph, q) <= k THEN \
                   RETURN NEXT r.name; \
                 END IF; \
               END LOOP; \
             END",
        )
        .unwrap();
        let mut rt = PlRuntime::new(&mut db);
        let rows = rt.call(&f, &[Datum::text("xx"), Datum::Int(0)]).unwrap();
        assert_eq!(rows.len(), 1);
        assert_eq!(rows[0][0].as_text(), Some("a"));
    }
}
