//! Access methods — the kernel's GiST-equivalent extensibility layer.
//!
//! PostgreSQL's GiST let the paper add an M-Tree "using the GiST feature
//! ... that provides a framework for managing a balanced index structure
//! that can be extended to support index semantics" (§4.2.1).  Our
//! equivalent: an [`AccessMethod`] factory registered in the catalog by
//! name, producing [`IndexInstance`]s that answer *strategy* queries
//! (`"eq"`, `"lt"`, `"within"`, ...).  The built-in [`btree`] access method
//! serves equality and ranges; `mlql-mural` registers an `"mtree"` access
//! method whose `"within"` strategy serves LexEQUAL probes.
//!
//! Index instances are memory-resident and are **not WAL-logged** — a
//! faithful reproduction of the PostgreSQL-7.4 GiST caveat the paper calls
//! out (§4.2.1): after a crash, recovery rebuilds every index from the
//! recovered heap.  Each instance reports `pages()` (its size in page
//! units, used by the optimizer) and per-search node-visit counts (charged
//! to the engine's I/O statistics by the index-scan executor).

pub mod btree;

use crate::error::Result;
use crate::storage::TupleId;
use crate::value::Datum;

/// Result of one index search.
#[derive(Debug, Clone, Default)]
pub struct IndexSearch {
    /// Matching tuple ids.
    pub tids: Vec<TupleId>,
    /// Index nodes visited (charged as page reads).
    pub node_visits: u64,
    /// Key-comparison / distance computations performed.
    pub comparisons: u64,
}

/// Runs a batch of independent borrowed tasks, possibly on worker
/// threads, returning only when **every** task has finished — the
/// blocking guarantee is what lets tasks borrow from the caller's stack
/// (the index read guard, local accumulators).  Implemented by the
/// engine's `ExecPool`; a serial implementation that runs tasks inline is
/// equally valid.
///
/// Tasks must not take any engine lock (they already run under the
/// caller's per-index read guard, the bottom of the lock hierarchy for
/// index work) and must not assume which thread runs them.
pub trait TaskRunner {
    /// Run all tasks to completion, in unspecified order and threads.
    fn run_all(&self, tasks: Vec<Box<dyn FnOnce() + Send + '_>>);
}

/// A live index over one column of one table.
///
/// `Sync` is required so a built instance can sit behind a `RwLock` in the
/// catalog: searches (`&self`) from concurrent sessions share a read
/// guard, while maintenance (`&mut self`) takes the write guard.
pub trait IndexInstance: Send + Sync {
    /// Insert a key → tuple-id entry.
    fn insert(&mut self, key: &Datum, tid: TupleId) -> Result<()>;

    /// Remove an entry (best effort; used by DELETE).
    fn delete(&mut self, key: &Datum, tid: TupleId) -> Result<()>;

    /// Search with a strategy:
    /// * `"eq"` — `key = probe` (extra ignored),
    /// * `"lt" | "le" | "gt" | "ge"` — ranges (extra ignored),
    /// * `"within"` — metric range: distance(key, probe) ≤ extra (Int).
    ///
    /// Unsupported strategies must return an error, *not* empty results —
    /// the planner only pairs an index with strategies its access method
    /// advertised.
    fn search(&self, strategy: &str, probe: &Datum, extra: &Datum) -> Result<IndexSearch>;

    /// Parallel variant of [`IndexInstance::search`]: access methods that
    /// can partition a probe (the M-tree fans root subtrees out) run the
    /// partitions through `runner` and merge.  The default ignores the
    /// runner and searches serially, so parallelism is strictly opt-in
    /// per access method and results must be identical either way (the
    /// executor treats the two as interchangeable).
    fn search_parallel(
        &self,
        strategy: &str,
        probe: &Datum,
        extra: &Datum,
        runner: &dyn TaskRunner,
    ) -> Result<IndexSearch> {
        let _ = runner;
        self.search(strategy, probe, extra)
    }

    /// Size in page units, for the optimizer's cost model.
    fn pages(&self) -> u64;

    /// Number of entries.
    fn len(&self) -> usize;

    /// True when the index holds no entries.
    fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

/// Factory for index instances, registered in the catalog by name.
pub trait AccessMethod: Send + Sync {
    /// Access-method name (`"btree"`, `"mtree"`, ...).
    fn name(&self) -> &str;

    /// Strategies this access method can serve.
    fn strategies(&self) -> &[&str];

    /// Create an empty index instance.
    fn create(&self) -> Result<Box<dyn IndexInstance>>;
}

/// The built-in B+Tree access method.
pub struct BTreeAm;

impl AccessMethod for BTreeAm {
    fn name(&self) -> &str {
        "btree"
    }

    fn strategies(&self) -> &[&str] {
        &["eq", "lt", "le", "gt", "ge"]
    }

    fn create(&self) -> Result<Box<dyn IndexInstance>> {
        Ok(Box::new(btree::BTreeIndex::new()))
    }
}
