//! A node-based B+Tree with chained leaves.
//!
//! Keys are [`Datum`]s ordered by `Datum::cmp_sql`; duplicates are allowed
//! (secondary index semantics: the payload is a tuple id).  The node fan-out
//! is sized so one node ≈ one 8 KiB page of fixed-width keys, making
//! `pages()` and node-visit counts meaningful units for the cost model.

use crate::error::{Error, Result};
use crate::index::{IndexInstance, IndexSearch};
use crate::storage::TupleId;
use crate::value::Datum;
use std::cmp::Ordering;

/// Max entries per node (≈ 8 KiB / ~64 B per entry).
const FANOUT: usize = 128;

#[derive(Debug)]
struct Leaf {
    keys: Vec<Datum>,
    tids: Vec<TupleId>,
    next: Option<usize>, // arena index of the right sibling
}

#[derive(Debug)]
struct Internal {
    /// `keys[i]` separates `children[i]` (< key) from `children[i+1]` (≥ key).
    keys: Vec<Datum>,
    children: Vec<usize>,
}

#[derive(Debug)]
enum Node {
    Leaf(Leaf),
    Internal(Internal),
}

/// The B+Tree index.
pub struct BTreeIndex {
    arena: Vec<Node>,
    root: usize,
    len: usize,
    height: usize,
}

impl Default for BTreeIndex {
    fn default() -> Self {
        Self::new()
    }
}

impl BTreeIndex {
    /// Empty tree.
    pub fn new() -> Self {
        BTreeIndex {
            arena: vec![Node::Leaf(Leaf {
                keys: Vec::new(),
                tids: Vec::new(),
                next: None,
            })],
            root: 0,
            len: 0,
            height: 1,
        }
    }

    /// Height of the tree (leaf-only tree = 1).
    pub fn height(&self) -> usize {
        self.height
    }

    /// Number of nodes.
    pub fn nodes(&self) -> usize {
        self.arena.len()
    }

    /// Find the leaf that should contain `key`, counting visited nodes.
    fn find_leaf(&self, key: &Datum, visits: &mut u64) -> usize {
        let mut idx = self.root;
        loop {
            *visits += 1;
            match &self.arena[idx] {
                Node::Leaf(_) => return idx,
                Node::Internal(int) => {
                    // Leftmost child whose range can contain the key
                    // (invariant: children[i] ≤ keys[i] ≤ children[i+1],
                    // non-strict on both sides because of duplicates).
                    let pos = int
                        .keys
                        .partition_point(|k| k.cmp_sql(key) == Ordering::Less);
                    idx = int.children[pos];
                }
            }
        }
    }

    /// Leftmost leaf (for full-range scans).
    fn leftmost_leaf(&self, visits: &mut u64) -> usize {
        let mut idx = self.root;
        loop {
            *visits += 1;
            match &self.arena[idx] {
                Node::Leaf(_) => return idx,
                Node::Internal(int) => idx = int.children[0],
            }
        }
    }

    fn insert_rec(&mut self, node: usize, key: &Datum, tid: TupleId) -> Option<(Datum, usize)> {
        match &mut self.arena[node] {
            Node::Leaf(leaf) => {
                let pos = leaf
                    .keys
                    .partition_point(|k| k.cmp_sql(key) == Ordering::Less);
                leaf.keys.insert(pos, key.clone());
                leaf.tids.insert(pos, tid);
                if leaf.keys.len() <= FANOUT {
                    return None;
                }
                // Split.
                let mid = leaf.keys.len() / 2;
                let right_keys = leaf.keys.split_off(mid);
                let right_tids = leaf.tids.split_off(mid);
                let old_next = leaf.next;
                let sep = right_keys[0].clone();
                let right_idx = self.arena.len();
                if let Node::Leaf(leaf) = &mut self.arena[node] {
                    leaf.next = Some(right_idx);
                }
                self.arena.push(Node::Leaf(Leaf {
                    keys: right_keys,
                    tids: right_tids,
                    next: old_next,
                }));
                Some((sep, right_idx))
            }
            Node::Internal(int) => {
                let pos = int
                    .keys
                    .partition_point(|k| k.cmp_sql(key) == Ordering::Less);
                let child = int.children[pos];
                if let Some((sep, new_child)) = self.insert_rec(child, key, tid) {
                    if let Node::Internal(int) = &mut self.arena[node] {
                        // The separator must sit exactly at the split
                        // child's position.  Re-searching by value would
                        // misplace it among duplicate separators and corrupt
                        // the subtree ranges.
                        int.keys.insert(pos, sep);
                        int.children.insert(pos + 1, new_child);
                        if int.keys.len() > FANOUT {
                            let mid = int.keys.len() / 2;
                            let sep_up = int.keys[mid].clone();
                            let right_keys = int.keys.split_off(mid + 1);
                            int.keys.pop(); // sep_up moves up
                            let right_children = int.children.split_off(mid + 1);
                            let right_idx = self.arena.len();
                            self.arena.push(Node::Internal(Internal {
                                keys: right_keys,
                                children: right_children,
                            }));
                            return Some((sep_up, right_idx));
                        }
                    }
                }
                None
            }
        }
    }

    /// Collect entries from `start_leaf` while `keep(key)`; `emit(key)`
    /// filters which of the scanned entries are returned.
    fn scan_from(
        &self,
        start_leaf: usize,
        search: &mut IndexSearch,
        mut keep: impl FnMut(&Datum) -> bool,
        mut emit: impl FnMut(&Datum) -> bool,
    ) {
        let mut leaf_idx = Some(start_leaf);
        while let Some(li) = leaf_idx {
            let Node::Leaf(leaf) = &self.arena[li] else {
                unreachable!("leaf chain links only leaves");
            };
            for (k, t) in leaf.keys.iter().zip(&leaf.tids) {
                search.comparisons += 1;
                if !keep(k) {
                    return;
                }
                if emit(k) {
                    search.tids.push(*t);
                }
            }
            leaf_idx = leaf.next;
            if leaf_idx.is_some() {
                search.node_visits += 1;
            }
        }
    }
}

impl IndexInstance for BTreeIndex {
    fn insert(&mut self, key: &Datum, tid: TupleId) -> Result<()> {
        if let Some((sep, right)) = self.insert_rec(self.root, key, tid) {
            let new_root = Internal {
                keys: vec![sep],
                children: vec![self.root, right],
            };
            self.arena.push(Node::Internal(new_root));
            self.root = self.arena.len() - 1;
            self.height += 1;
        }
        self.len += 1;
        Ok(())
    }

    fn delete(&mut self, key: &Datum, tid: TupleId) -> Result<()> {
        // Locate and remove the first exact (key, tid) match.  Underflow is
        // not rebalanced (PostgreSQL never merges B-Tree pages online
        // either); lookups remain correct.
        let mut visits = 0u64;
        let mut leaf_idx = Some(self.find_leaf(key, &mut visits));
        while let Some(li) = leaf_idx {
            let Node::Leaf(leaf) = &mut self.arena[li] else {
                unreachable!()
            };
            let mut found = None;
            for (i, (k, t)) in leaf.keys.iter().zip(&leaf.tids).enumerate() {
                match k.cmp_sql(key) {
                    Ordering::Less => continue,
                    Ordering::Equal => {
                        if *t == tid {
                            found = Some(i);
                            break;
                        }
                    }
                    Ordering::Greater => return Ok(()), // not present
                }
            }
            if let Some(i) = found {
                leaf.keys.remove(i);
                leaf.tids.remove(i);
                self.len -= 1;
                return Ok(());
            }
            leaf_idx = leaf.next;
        }
        Ok(())
    }

    fn search(&self, strategy: &str, probe: &Datum, _extra: &Datum) -> Result<IndexSearch> {
        let mut out = IndexSearch::default();
        match strategy {
            "eq" => {
                let leaf = self.find_leaf(probe, &mut out.node_visits);
                self.scan_from(
                    leaf,
                    &mut out,
                    |k| k.cmp_sql(probe) != Ordering::Greater,
                    |k| k.cmp_sql(probe) == Ordering::Equal,
                );
            }
            "ge" | "gt" => {
                let ordering_ok: fn(Ordering) -> bool = if strategy == "ge" {
                    |o| o != Ordering::Less
                } else {
                    |o| o == Ordering::Greater
                };
                let leaf = self.find_leaf(probe, &mut out.node_visits);
                self.scan_from(leaf, &mut out, |_| true, |k| ordering_ok(k.cmp_sql(probe)));
            }
            "lt" | "le" => {
                let ordering_ok: fn(Ordering) -> bool = if strategy == "le" {
                    |o| o != Ordering::Greater
                } else {
                    |o| o == Ordering::Less
                };
                let leaf = self.leftmost_leaf(&mut out.node_visits);
                self.scan_from(leaf, &mut out, |k| ordering_ok(k.cmp_sql(probe)), |_| true);
            }
            other => {
                return Err(Error::Execution(format!(
                    "btree does not support strategy {other:?}"
                )))
            }
        }
        Ok(out)
    }

    fn pages(&self) -> u64 {
        self.arena.len() as u64
    }

    fn len(&self) -> usize {
        self.len
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tid(n: u32) -> TupleId {
        TupleId { page: n, slot: 0 }
    }

    fn build(n: i64) -> BTreeIndex {
        let mut t = BTreeIndex::new();
        // Insert in a scrambled order to exercise splits everywhere.
        for i in 0..n {
            let k = (i * 7919) % n;
            t.insert(&Datum::Int(k), tid(k as u32)).unwrap();
        }
        t
    }

    #[test]
    fn eq_search_finds_exactly_one() {
        let t = build(10_000);
        for probe in [0i64, 1, 4999, 9999] {
            let r = t.search("eq", &Datum::Int(probe), &Datum::Null).unwrap();
            assert_eq!(r.tids, vec![tid(probe as u32)], "probe {probe}");
            assert!(r.node_visits as usize >= t.height());
        }
        let r = t.search("eq", &Datum::Int(123456), &Datum::Null).unwrap();
        assert!(r.tids.is_empty());
    }

    #[test]
    fn duplicates_all_returned() {
        let mut t = BTreeIndex::new();
        for i in 0..300u32 {
            t.insert(&Datum::Int(7), tid(i)).unwrap();
            t.insert(&Datum::Int(9), tid(1000 + i)).unwrap();
        }
        let r = t.search("eq", &Datum::Int(7), &Datum::Null).unwrap();
        assert_eq!(r.tids.len(), 300);
        assert!(r.tids.iter().all(|t| t.page < 300));
    }

    #[test]
    fn range_strategies() {
        let t = build(1000);
        let ge = t.search("ge", &Datum::Int(990), &Datum::Null).unwrap();
        assert_eq!(ge.tids.len(), 10);
        let gt = t.search("gt", &Datum::Int(990), &Datum::Null).unwrap();
        assert_eq!(gt.tids.len(), 9);
        let lt = t.search("lt", &Datum::Int(10), &Datum::Null).unwrap();
        assert_eq!(lt.tids.len(), 10);
        let le = t.search("le", &Datum::Int(10), &Datum::Null).unwrap();
        assert_eq!(le.tids.len(), 11);
    }

    #[test]
    fn tree_grows_log_height() {
        let t = build(50_000);
        assert!(t.height() >= 2 && t.height() <= 4, "height {}", t.height());
        assert_eq!(t.len(), 50_000);
        assert!(t.pages() > 50_000_u64 / FANOUT as u64);
    }

    #[test]
    fn eq_probe_visits_height_not_size() {
        let t = build(50_000);
        let r = t.search("eq", &Datum::Int(25_000), &Datum::Null).unwrap();
        assert!(
            r.node_visits <= t.height() as u64 + 2,
            "visits {} vs height {}",
            r.node_visits,
            t.height()
        );
    }

    #[test]
    fn delete_removes_single_entry() {
        let mut t = BTreeIndex::new();
        t.insert(&Datum::Int(1), tid(10)).unwrap();
        t.insert(&Datum::Int(1), tid(11)).unwrap();
        t.delete(&Datum::Int(1), tid(10)).unwrap();
        let r = t.search("eq", &Datum::Int(1), &Datum::Null).unwrap();
        assert_eq!(r.tids, vec![tid(11)]);
        assert_eq!(t.len(), 1);
        // Deleting a missing entry is a no-op.
        t.delete(&Datum::Int(99), tid(0)).unwrap();
        assert_eq!(t.len(), 1);
    }

    #[test]
    fn text_keys_order_correctly() {
        let mut t = BTreeIndex::new();
        for (i, w) in ["mango", "apple", "zebra", "kiwi"].iter().enumerate() {
            t.insert(&Datum::text(*w), tid(i as u32)).unwrap();
        }
        let r = t.search("lt", &Datum::text("m"), &Datum::Null).unwrap();
        assert_eq!(r.tids.len(), 2); // apple, kiwi
    }

    #[test]
    fn unknown_strategy_is_an_error() {
        let t = BTreeIndex::new();
        assert!(t.search("within", &Datum::Int(0), &Datum::Int(1)).is_err());
    }

    #[test]
    fn heavy_duplicates_across_internal_splits() {
        // Regression: with few distinct keys and enough volume to split
        // internal nodes, duplicate separators used to misplace the new
        // separator (searched by value instead of split position), losing
        // entries from eq scans.
        let mut t = BTreeIndex::new();
        let mut expected = vec![0usize; 50];
        for i in 0..60_000u32 {
            let k = (i * 7919) % 50;
            t.insert(&Datum::Int(k as i64), tid(i)).unwrap();
            expected[k as usize] += 1;
        }
        assert!(
            t.height() >= 3,
            "must split internal nodes, height {}",
            t.height()
        );
        for k in 0..50i64 {
            let r = t.search("eq", &Datum::Int(k), &Datum::Null).unwrap();
            assert_eq!(r.tids.len(), expected[k as usize], "key {k}");
        }
    }

    #[test]
    fn sorted_insertion_also_balanced() {
        let mut t = BTreeIndex::new();
        for i in 0..20_000i64 {
            t.insert(&Datum::Int(i), tid(i as u32)).unwrap();
        }
        let r = t.search("eq", &Datum::Int(19_999), &Datum::Null).unwrap();
        assert_eq!(r.tids.len(), 1);
        assert!(t.height() <= 4);
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(48))]
        #[test]
        fn matches_reference_multimap(ops in proptest::collection::vec((0i64..50, 0u32..8), 1..400)) {
            let mut t = BTreeIndex::new();
            let mut reference: Vec<(i64, u32)> = Vec::new();
            for (k, v) in ops {
                t.insert(&Datum::Int(k), TupleId { page: v, slot: 0 }).unwrap();
                reference.push((k, v));
            }
            for probe in 0..50i64 {
                let mut got: Vec<u32> = t
                    .search("eq", &Datum::Int(probe), &Datum::Null)
                    .unwrap()
                    .tids
                    .iter()
                    .map(|t| t.page)
                    .collect();
                got.sort_unstable();
                let mut expect: Vec<u32> = reference
                    .iter()
                    .filter(|&&(k, _)| k == probe)
                    .map(|&(_, v)| v)
                    .collect();
                expect.sort_unstable();
                prop_assert_eq!(got, expect);
            }
        }
    }
}
