//! Checkpoint snapshots: the durable catalog + heap image that bounds
//! recovery time.
//!
//! A checkpoint writes a *versioned* directory `chk-<lsn>/` containing a
//! copy of every heap file plus `snapshot.cat` (the encoded catalog), then
//! atomically repoints the `CHECKPOINT` pointer file and truncates the
//! WAL.  Recovery restores the data directory from the checkpoint copy and
//! replays only the WAL tail (records with LSN > the snapshot LSN).
//!
//! Copies — not the live heap files — are what recovery trusts.  The
//! buffer pool steals (dirty evictions mutate heap files between
//! checkpoints), so the live files can contain the effects of records
//! *after* the snapshot LSN; replaying the tail against them would apply
//! those records twice.  The `chk-` copy is immutable once the pointer is
//! durable, so snapshot + tail replay is exact.
//!
//! `snapshot.cat` layout (all integers little-endian, strings are
//! `u32 len ‖ UTF-8 bytes`):
//!
//! ```text
//! magic:"MLQLSNP2"  lsn:u64
//! n_tables:u32  { live:u8  name:str  heap_file:u32
//!                 n_cols:u32 { name:str  tag:u8 [ext_type_name:str] } }
//! n_indexes:u32 { name:str  table_id:u32  column:u32  am:str }
//! crc:u32   (over every preceding byte)
//! ```
//!
//! Dead (dropped) table slots are included with `live = 0`: table ids are
//! positions in the catalog's slot vector, so a post-snapshot `CREATE
//! TABLE` replayed from the tail must find the dropped slots still
//! occupying their positions to be assigned the id it originally got.

use crate::catalog::Catalog;
use crate::error::{Error, Result};
use crate::schema::{Column, Schema};
use crate::storage::crc32::Crc32;
use crate::storage::sync_parent_dir;
use crate::value::DataType;
use std::io::Write;
use std::path::{Path, PathBuf};

/// Magic bytes identifying a v2 snapshot file.
pub const SNAPSHOT_MAGIC: &[u8; 8] = b"MLQLSNP2";

/// Column type as persisted: extension types are recorded by *name* and
/// re-resolved after extension installation, because [`crate::value::ExtTypeId`]s are
/// assigned in registration order and are not stable across processes.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SnapType {
    /// Built-in BOOL.
    Bool,
    /// Built-in INT.
    Int,
    /// Built-in FLOAT.
    Float,
    /// Built-in TEXT.
    Text,
    /// Extension type, by registered name (e.g. `"unitext"`).
    Ext(String),
}

/// One table slot in the snapshot (dead slots included — see module docs).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SnapTable {
    /// Lower-cased table name.
    pub name: String,
    /// False for dropped tables that still occupy their id slot.
    pub live: bool,
    /// Backing heap file id.
    pub heap_file: u32,
    /// Column names and types.
    pub columns: Vec<(String, SnapType)>,
}

/// One index definition in the snapshot (the structure itself is rebuilt
/// from the heap — indexes are not WAL-logged, paper §4.2.1).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SnapIndex {
    /// Index name.
    pub name: String,
    /// Owning table id (slot position).
    pub table_id: u32,
    /// Indexed column position.
    pub column: u32,
    /// Access-method name.
    pub am: String,
}

/// A decoded catalog snapshot.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Snapshot {
    /// WAL LSN the snapshot covers: recovery replays only records with a
    /// larger LSN.
    pub lsn: u64,
    /// Table slots in id order.
    pub tables: Vec<SnapTable>,
    /// Index definitions.
    pub indexes: Vec<SnapIndex>,
}

impl Snapshot {
    /// Capture the current catalog state at `lsn`.
    pub fn capture(catalog: &Catalog, lsn: u64) -> Result<Snapshot> {
        let mut tables = Vec::new();
        for meta in catalog.table_slots() {
            let mut columns = Vec::with_capacity(meta.schema.len());
            for col in meta.schema.columns() {
                let ty = match col.ty {
                    DataType::Bool => SnapType::Bool,
                    DataType::Int => SnapType::Int,
                    DataType::Float => SnapType::Float,
                    DataType::Text => SnapType::Text,
                    DataType::Ext(id) => {
                        let def = catalog.type_by_id(id).ok_or_else(|| {
                            Error::Catalog(format!(
                                "snapshot: column {:?} has unregistered extension type {id:?}",
                                col.name
                            ))
                        })?;
                        SnapType::Ext(def.name.clone())
                    }
                };
                columns.push((col.name.clone(), ty));
            }
            tables.push(SnapTable {
                name: meta.name.clone(),
                live: catalog.is_live(meta.id),
                heap_file: meta.heap.file_id().0,
                columns,
            });
        }
        let indexes = catalog
            .all_indexes()
            .iter()
            .map(|idx| SnapIndex {
                name: idx.name.clone(),
                table_id: idx.table.0,
                column: idx.column as u32,
                am: idx.am.clone(),
            })
            .collect();
        Ok(Snapshot {
            lsn,
            tables,
            indexes,
        })
    }

    /// Serialize (with trailing CRC).
    pub fn encode(&self) -> Vec<u8> {
        fn put_str(out: &mut Vec<u8>, s: &str) {
            out.extend_from_slice(&(s.len() as u32).to_le_bytes());
            out.extend_from_slice(s.as_bytes());
        }
        let mut out = Vec::new();
        out.extend_from_slice(SNAPSHOT_MAGIC);
        out.extend_from_slice(&self.lsn.to_le_bytes());
        out.extend_from_slice(&(self.tables.len() as u32).to_le_bytes());
        for t in &self.tables {
            out.push(t.live as u8);
            put_str(&mut out, &t.name);
            out.extend_from_slice(&t.heap_file.to_le_bytes());
            out.extend_from_slice(&(t.columns.len() as u32).to_le_bytes());
            for (name, ty) in &t.columns {
                put_str(&mut out, name);
                match ty {
                    SnapType::Bool => out.push(0),
                    SnapType::Int => out.push(1),
                    SnapType::Float => out.push(2),
                    SnapType::Text => out.push(3),
                    SnapType::Ext(type_name) => {
                        out.push(4);
                        put_str(&mut out, type_name);
                    }
                }
            }
        }
        out.extend_from_slice(&(self.indexes.len() as u32).to_le_bytes());
        for i in &self.indexes {
            put_str(&mut out, &i.name);
            out.extend_from_slice(&i.table_id.to_le_bytes());
            out.extend_from_slice(&i.column.to_le_bytes());
            put_str(&mut out, &i.am);
        }
        let mut hasher = Crc32::new();
        hasher.update(&out);
        out.extend_from_slice(&hasher.finish().to_le_bytes());
        out
    }

    /// Parse and CRC-verify; `path` is only used in error messages.
    pub fn decode(bytes: &[u8], path: &Path) -> Result<Snapshot> {
        let corrupt = |detail: String| Error::SnapshotCorrupt {
            path: path.display().to_string(),
            detail,
        };
        if bytes.len() < SNAPSHOT_MAGIC.len() + 8 + 4 {
            return Err(corrupt(format!("truncated: {} bytes", bytes.len())));
        }
        let (body, crc_bytes) = bytes.split_at(bytes.len() - 4);
        let stored = u32::from_le_bytes(crc_bytes.try_into().expect("4 bytes"));
        let mut hasher = Crc32::new();
        hasher.update(body);
        if hasher.finish() != stored {
            return Err(corrupt("CRC mismatch".into()));
        }
        let mut pos = 0usize;
        let take = |pos: &mut usize, n: usize| -> Result<&[u8]> {
            let end = pos.checked_add(n).filter(|&e| e <= body.len());
            match end {
                Some(end) => {
                    let s = &body[*pos..end];
                    *pos = end;
                    Ok(s)
                }
                None => Err(Error::SnapshotCorrupt {
                    path: path.display().to_string(),
                    detail: format!("truncated body at offset {pos}", pos = *pos),
                }),
            }
        };
        let get_u32 = |pos: &mut usize| -> Result<u32> {
            Ok(u32::from_le_bytes(take(pos, 4)?.try_into().expect("4")))
        };
        let get_str = |pos: &mut usize| -> Result<String> {
            let len = get_u32(pos)? as usize;
            let raw = take(pos, len)?;
            String::from_utf8(raw.to_vec()).map_err(|_| Error::SnapshotCorrupt {
                path: path.display().to_string(),
                detail: "non-UTF-8 string".into(),
            })
        };
        if take(&mut pos, 8)? != SNAPSHOT_MAGIC {
            return Err(corrupt("bad magic".into()));
        }
        let lsn = u64::from_le_bytes(take(&mut pos, 8)?.try_into().expect("8"));
        let n_tables = get_u32(&mut pos)?;
        let mut tables = Vec::with_capacity(n_tables as usize);
        for _ in 0..n_tables {
            let live = take(&mut pos, 1)?[0] != 0;
            let name = get_str(&mut pos)?;
            let heap_file = get_u32(&mut pos)?;
            let n_cols = get_u32(&mut pos)?;
            let mut columns = Vec::with_capacity(n_cols as usize);
            for _ in 0..n_cols {
                let col_name = get_str(&mut pos)?;
                let tag = take(&mut pos, 1)?[0];
                let ty = match tag {
                    0 => SnapType::Bool,
                    1 => SnapType::Int,
                    2 => SnapType::Float,
                    3 => SnapType::Text,
                    4 => SnapType::Ext(get_str(&mut pos)?),
                    other => return Err(corrupt(format!("unknown type tag {other}"))),
                };
                columns.push((col_name, ty));
            }
            tables.push(SnapTable {
                name,
                live,
                heap_file,
                columns,
            });
        }
        let n_indexes = get_u32(&mut pos)?;
        let mut indexes = Vec::with_capacity(n_indexes as usize);
        for _ in 0..n_indexes {
            indexes.push(SnapIndex {
                name: get_str(&mut pos)?,
                table_id: get_u32(&mut pos)?,
                column: get_u32(&mut pos)?,
                am: get_str(&mut pos)?,
            });
        }
        if pos != body.len() {
            return Err(corrupt(format!(
                "{} trailing bytes after index section",
                body.len() - pos
            )));
        }
        Ok(Snapshot {
            lsn,
            tables,
            indexes,
        })
    }

    /// Resolve a snapshot column list into a [`Schema`], looking extension
    /// types up by name (extensions must be installed first).
    pub fn resolve_schema(catalog: &Catalog, columns: &[(String, SnapType)]) -> Result<Schema> {
        let mut cols = Vec::with_capacity(columns.len());
        for (name, ty) in columns {
            let dt = match ty {
                SnapType::Bool => DataType::Bool,
                SnapType::Int => DataType::Int,
                SnapType::Float => DataType::Float,
                SnapType::Text => DataType::Text,
                SnapType::Ext(type_name) => {
                    let (id, _) = catalog.type_by_name(type_name).ok_or_else(|| {
                        Error::Catalog(format!(
                            "snapshot references extension type {type_name:?}, which is not \
                             installed — open the database with its extensions"
                        ))
                    })?;
                    DataType::Ext(id)
                }
            };
            cols.push(Column::new(name.clone(), dt));
        }
        Ok(Schema::new(cols))
    }
}

// ------------------------------------------------------------------ layout

/// The WAL file under a database root.
pub fn wal_path(root: &Path) -> PathBuf {
    root.join("wal.log")
}

/// The live heap-file directory under a database root.
pub fn data_dir(root: &Path) -> PathBuf {
    root.join("data")
}

/// The checkpoint pointer file (names the current `chk-` directory).
pub fn pointer_path(root: &Path) -> PathBuf {
    root.join("CHECKPOINT")
}

/// The checkpoint directory for a given LSN.
pub fn chk_dir(root: &Path, lsn: u64) -> PathBuf {
    root.join(format!("chk-{lsn:016x}"))
}

/// Read the checkpoint pointer: the current checkpoint directory, or
/// `None` when no checkpoint has completed.  A pointer naming a missing
/// directory is corruption (the directory is made durable *before* the
/// pointer).
pub fn read_pointer(root: &Path) -> Result<Option<PathBuf>> {
    let p = pointer_path(root);
    let name = match std::fs::read_to_string(&p) {
        Ok(s) => s.trim().to_string(),
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Ok(None),
        Err(e) => return Err(e.into()),
    };
    if name.is_empty() || name.contains('/') || name.contains("..") {
        return Err(Error::SnapshotCorrupt {
            path: p.display().to_string(),
            detail: format!("pointer names invalid directory {name:?}"),
        });
    }
    let dir = root.join(&name);
    if !dir.is_dir() {
        return Err(Error::SnapshotCorrupt {
            path: p.display().to_string(),
            detail: format!("pointer names missing directory {name:?}"),
        });
    }
    Ok(Some(dir))
}

/// Write a complete checkpoint under `root`:
///
/// 1. create `chk-<lsn>/` and copy every `data/*.tbl` into it;
/// 2. write `snapshot.cat` (fsynced) and fsync the directory;
/// 3. atomically repoint `CHECKPOINT` (temp + rename + dir fsync);
/// 4. garbage-collect older `chk-` directories.
///
/// A crash at any step leaves either the old checkpoint or the new one
/// fully in force — never a half state (step 3 is the commit point).
/// WAL truncation is the *caller's* next step, after this returns.
pub fn write_checkpoint(root: &Path, snapshot: &Snapshot) -> Result<PathBuf> {
    let dir = chk_dir(root, snapshot.lsn);
    // A leftover directory from a crashed attempt at the same LSN is
    // incomplete (its pointer never committed): start over.
    if dir.exists() {
        std::fs::remove_dir_all(&dir)?;
    }
    std::fs::create_dir_all(&dir)?;
    let data = data_dir(root);
    for t in &snapshot.tables {
        let file_name = format!("{}.tbl", t.heap_file);
        let src = data.join(&file_name);
        let dst = dir.join(&file_name);
        if src.exists() {
            std::fs::copy(&src, &dst)?;
        } else {
            // Zero-page heaps may never have been written; recovery still
            // needs the file present for file-id continuity.
            std::fs::File::create(&dst)?;
        }
        // fsync the copy — fs::copy goes through the page cache.
        std::fs::OpenOptions::new()
            .read(true)
            .open(&dst)?
            .sync_all()?;
    }
    let cat = dir.join("snapshot.cat");
    {
        let mut f = std::fs::File::create(&cat)?;
        f.write_all(&snapshot.encode())?;
        f.sync_all()?;
    }
    if let Ok(d) = std::fs::File::open(&dir) {
        let _ = d.sync_all();
    }
    // Commit point: repoint atomically.
    let pointer = pointer_path(root);
    let tmp = root.join("CHECKPOINT.tmp");
    {
        let mut f = std::fs::File::create(&tmp)?;
        f.write_all(
            dir.file_name()
                .expect("chk dir has a name")
                .to_string_lossy()
                .as_bytes(),
        )?;
        f.sync_all()?;
    }
    std::fs::rename(&tmp, &pointer)?;
    sync_parent_dir(&pointer);
    // GC: every other chk- directory is now unreachable.
    if let Ok(entries) = std::fs::read_dir(root) {
        for entry in entries.flatten() {
            let name = entry.file_name();
            let Some(name) = name.to_str() else { continue };
            if name.starts_with("chk-") && entry.path() != dir {
                let _ = std::fs::remove_dir_all(entry.path());
            }
        }
    }
    Ok(dir)
}

/// Load and verify the snapshot inside a checkpoint directory.
pub fn load_snapshot(dir: &Path) -> Result<Snapshot> {
    let cat = dir.join("snapshot.cat");
    let bytes = std::fs::read(&cat).map_err(|e| {
        if e.kind() == std::io::ErrorKind::NotFound {
            Error::SnapshotCorrupt {
                path: cat.display().to_string(),
                detail: "snapshot.cat missing from checkpoint directory".into(),
            }
        } else {
            e.into()
        }
    })?;
    Snapshot::decode(&bytes, &cat)
}

/// Reset the data directory to the checkpoint's heap image: delete every
/// live `*.tbl` and copy the checkpoint's files in.  Called with the
/// engine not yet constructed, so no pages are cached.
pub fn restore_data_dir(root: &Path, checkpoint: &Path) -> Result<()> {
    let data = data_dir(root);
    std::fs::create_dir_all(&data)?;
    clear_data_dir(&data)?;
    for entry in std::fs::read_dir(checkpoint)? {
        let entry = entry?;
        let name = entry.file_name();
        let Some(name_str) = name.to_str() else {
            continue;
        };
        if name_str.ends_with(".tbl") {
            std::fs::copy(entry.path(), data.join(&name))?;
        }
    }
    Ok(())
}

/// Delete every heap file in a data directory (full-replay recovery starts
/// from empty heaps; snapshot recovery replaces them with checkpoint
/// copies).
pub fn clear_data_dir(data: &Path) -> Result<()> {
    if !data.exists() {
        return Ok(());
    }
    for entry in std::fs::read_dir(data)? {
        let entry = entry?;
        if entry
            .file_name()
            .to_str()
            .is_some_and(|n| n.ends_with(".tbl"))
        {
            std::fs::remove_file(entry.path())?;
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Snapshot {
        Snapshot {
            lsn: 42,
            tables: vec![
                SnapTable {
                    name: "book".into(),
                    live: true,
                    heap_file: 0,
                    columns: vec![
                        ("author".into(), SnapType::Ext("unitext".into())),
                        ("price".into(), SnapType::Float),
                    ],
                },
                SnapTable {
                    name: "dropped".into(),
                    live: false,
                    heap_file: 1,
                    columns: vec![("id".into(), SnapType::Int)],
                },
            ],
            indexes: vec![SnapIndex {
                name: "book_mt".into(),
                table_id: 0,
                column: 0,
                am: "mtree".into(),
            }],
        }
    }

    #[test]
    fn encode_decode_roundtrip() {
        let s = sample();
        let bytes = s.encode();
        let back = Snapshot::decode(&bytes, Path::new("test.cat")).unwrap();
        assert_eq!(back, s);
    }

    #[test]
    fn decode_rejects_bit_flip() {
        let mut bytes = sample().encode();
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0x40;
        let err = Snapshot::decode(&bytes, Path::new("t.cat")).unwrap_err();
        assert!(matches!(err, Error::SnapshotCorrupt { .. }), "{err}");
    }

    #[test]
    fn decode_rejects_truncation() {
        let bytes = sample().encode();
        for cut in [0, 5, bytes.len() / 2, bytes.len() - 1] {
            let err = Snapshot::decode(&bytes[..cut], Path::new("t.cat")).unwrap_err();
            assert!(matches!(err, Error::SnapshotCorrupt { .. }), "cut={cut}");
        }
    }

    #[test]
    fn pointer_roundtrip_and_missing_dir() {
        let root = std::env::temp_dir().join(format!("mlql-snapptr-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&root);
        std::fs::create_dir_all(&root).unwrap();
        assert!(read_pointer(&root).unwrap().is_none());
        let dir = chk_dir(&root, 7);
        std::fs::create_dir_all(&dir).unwrap();
        std::fs::write(pointer_path(&root), "chk-0000000000000007").unwrap();
        assert_eq!(read_pointer(&root).unwrap(), Some(dir.clone()));
        std::fs::remove_dir_all(&dir).unwrap();
        assert!(
            read_pointer(&root).is_err(),
            "dangling pointer is corruption"
        );
        std::fs::remove_dir_all(&root).unwrap();
    }
}
